// Scaling explorer: "How will my workload scale with the number of GPUs?
// Would upgrading to a faster network improve training throughput?" (§1).
//
// From ONE single-GPU profile, predicts the distributed iteration time for a
// grid of cluster shapes and network bandwidths — no cluster needed (§2.2).
#include <iostream>

#include "src/core/optimizations/distributed.h"
#include "src/core/predictor.h"
#include "src/runtime/ground_truth.h"
#include "src/util/string_util.h"
#include "src/util/table.h"

using namespace daydream;

int main(int argc, char** argv) {
  ModelId model = ModelId::kBertBase;
  if (argc > 1) {
    const std::string arg = argv[1];
    for (ModelId id : AllModels()) {
      if (arg == ModelName(id)) {
        model = id;
      }
    }
  }

  std::cout << "Profiling one iteration of " << ModelName(model) << " on a single GPU...\n";
  const Trace profile = CollectBaselineTrace(DefaultRunConfig(model));
  Daydream daydream(profile);
  std::cout << StrFormat("single-GPU iteration: %.1f ms (%zu trace events)\n\n",
                         ToMs(daydream.BaselineSimTime()), profile.size());

  const std::vector<int> workers = {1, 2, 4, 8};
  const std::vector<double> bandwidths = {10.0, 25.0, 40.0, 100.0};

  TablePrinter table({"workers", "10 Gbps", "25 Gbps", "40 Gbps", "100 Gbps"});
  std::cout << "predicted iteration time (ms) / scaling efficiency:\n";
  for (int n : workers) {
    std::vector<std::string> row = {StrFormat("%d x 1", n)};
    for (double gbps : bandwidths) {
      DistributedWhatIf opts;
      opts.cluster.machines = n;
      opts.cluster.gpus_per_machine = 1;
      opts.cluster.network.bandwidth_gbps = gbps;
      const PredictionResult r = daydream.Predict([&](DependencyGraph* g) {
        WhatIfDistributed(g, daydream.trace().gradients(), opts);
      });
      // Weak-scaling efficiency: single-GPU time / distributed time.
      const double efficiency =
          100.0 * static_cast<double>(r.baseline) / static_cast<double>(r.predicted);
      row.push_back(StrFormat("%.1f (%.0f%%)", ToMs(r.predicted), efficiency));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n(efficiency = per-iteration slowdown vs 1 GPU; samples/s scales with "
               "workers x efficiency)\n";
  return 0;
}

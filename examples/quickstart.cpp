// Quickstart: the paper's Figure 2 workflow end to end.
//
// 1. Profile one training iteration of ResNet-50 (CUPTI-style trace from the
//    synthetic training substrate).
// 2. Build the kernel-granularity dependency graph.
// 3. Ask a what-if question: "what if the network bandwidth doubles?" for a
//    4-machine deployment, plus "what if I enable mixed precision?".
// 4. Simulate and report predicted iteration times.
#include <cstdio>

#include "src/core/breakdown.h"
#include "src/core/critical_path.h"
#include "src/core/memory_model.h"
#include "src/core/optimizations/optimizations.h"
#include "src/core/predictor.h"
#include "src/runtime/ground_truth.h"
#include "src/util/string_util.h"
#include "src/util/table.h"

#include <iostream>

using namespace daydream;

int main() {
  // Phase 1: trace collection (one profiled iteration on a single GPU).
  RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  Trace trace = CollectBaselineTrace(config);
  const TraceValidation validation = trace.Validate();
  std::printf("trace: %zu events, %s\n", trace.size(), validation.Summary().c_str());

  // Phase 2: dependency-graph construction.
  Daydream daydream(trace);
  const DependencyGraph::Stats stats = daydream.graph().ComputeStats();
  std::printf("graph: %d tasks (%d cpu / %d gpu), %d edges, %d threads\n", stats.tasks,
              stats.cpu_tasks, stats.gpu_tasks, stats.edges, stats.threads);
  std::printf("baseline: measured %.2f ms, simulated %.2f ms\n", ToMs(trace.makespan()),
              ToMs(daydream.BaselineSimTime()));
  std::printf("breakdown: %s\n", ComputeBreakdown(trace).Summary().c_str());
  std::printf("%s\n", ComputeCriticalPath(daydream.graph()).Summary().c_str());
  const ModelGraph model = BuildModel(config.model, config.batch);
  std::printf("memory:   %s\n\n",
              EstimateTrainingMemory(model, config.optimizer).Summary().c_str());

  TablePrinter table({"what-if", "predicted iter (ms)", "vs baseline"});

  // What if we enable Automatic Mixed Precision?
  const PredictionResult amp = daydream.Predict([](DependencyGraph* g) { WhatIfAmp(g); });
  table.AddRow({"mixed precision (AMP)", StrFormat("%.2f", ToMs(amp.predicted)),
                StrFormat("%+.1f%%", -amp.SpeedupPct())});

  // What if we train on 4 machines x 1 GPU over 10 Gbps — and what if that
  // network were twice as fast?
  for (double gbps : {10.0, 20.0}) {
    DistributedWhatIf dist;
    dist.cluster.machines = 4;
    dist.cluster.gpus_per_machine = 1;
    dist.cluster.network.bandwidth_gbps = gbps;
    const PredictionResult r = daydream.Predict(
        [&](DependencyGraph* g) { WhatIfDistributed(g, daydream.trace().gradients(), dist); });
    table.AddRow({StrFormat("4 workers @ %.0f Gbps", gbps), StrFormat("%.2f", ToMs(r.predicted)),
                  StrFormat("%+.1f%%", -r.SpeedupPct())});
  }

  table.Print(std::cout);
  return validation.ok() ? 0 : 1;
}

// Custom what-if modeling with the raw primitives (§4.4).
//
// The built-in optimization models cover the paper's ten techniques, but the
// primitives compose into arbitrary what-ifs. Three examples on BERT base:
//   1. "What if my framework's Python overhead halved?"  (gap scaling)
//   2. "What if every elementwise kernel pair were fused?" (Select + Remove)
//   3. "What if the GPU had 2x memory bandwidth?"          (class-based shrink)
#include <iostream>

#include "src/core/predictor.h"
#include "src/core/transform.h"
#include "src/runtime/ground_truth.h"
#include "src/util/string_util.h"
#include "src/util/table.h"

using namespace daydream;

int main() {
  const Trace profile = CollectBaselineTrace(DefaultRunConfig(ModelId::kBertBase));
  Daydream daydream(profile);
  TablePrinter table({"custom what-if (BERT base)", "predicted (ms)", "speedup"});
  auto report = [&](const std::string& name, const PredictionResult& r) {
    table.AddRow({name, StrFormat("%.1f", ToMs(r.predicted)),
                  StrFormat("%.1f%%", r.SpeedupPct())});
  };

  report(StrFormat("baseline (simulated)"),
         PredictionResult{daydream.BaselineSimTime(), daydream.BaselineSimTime()});

  // 1. Halve the framework gaps: a faster CPU or a leaner framework. The gap
  //    field is exactly where that overhead lives (§4.2.1).
  report("framework overhead / 2", daydream.Predict([](DependencyGraph* g) {
    for (TaskId id : g->Select(IsOnCpu())) {
      g->task(id).gap /= 2;
    }
  }));

  // 2. Fuse adjacent elementwise kernels pairwise: every second elementwise
  //    GPU task (and its launch) is removed; the survivor absorbs the cost of
  //    one extra memory pass avoided (here: keeps its own duration — fusion
  //    saves the launch + one read/write round trip of the removed kernel).
  report("pairwise elementwise fusion", daydream.Predict([](DependencyGraph* g) {
    const std::vector<TaskId> elementwise =
        g->Select(All(IsOnGpu(), NameContains("elementwise")));
    for (size_t i = 1; i < elementwise.size(); i += 2) {
      const TaskId victim = elementwise[i];
      // Remove the victim's launch too — that is where the CPU time goes.
      for (TaskId p : std::vector<TaskId>(g->parents(victim))) {
        if (g->task(p).is_cpu() && g->task(p).api == ApiKind::kLaunchKernel) {
          g->Remove(p);
        }
      }
      // The surviving neighbour does the fused work: half the removed cost.
      g->task(elementwise[i - 1]).duration += g->task(victim).duration / 2;
      g->Remove(victim);
    }
  }));

  // 3. Double memory bandwidth: memory-bound kernels (everything that is not
  //    a gemm/convolution) halve; compute-bound kernels are untouched.
  report("2x memory bandwidth", daydream.Predict([](DependencyGraph* g) {
    ShrinkBy(g,
             g->Select(All(IsOnGpu(),
                           Not(Any(NameContains("sgemm"), NameContains("scudnn"))))),
             2.0);
  }));

  // 4. Infinitely fast GPU — the classic COZ-style upper bound: how much of
  //    the iteration is not GPU-limited at all?
  report("infinitely fast GPU", daydream.Predict([](DependencyGraph* g) {
    SetDurations(g, g->Select(IsOnGpu()), 0);
  }));

  table.Print(std::cout);
  std::cout << "\nEach what-if is a few lines of Select/Shrink/Insert/Remove on the "
               "dependency graph.\n";
  return 0;
}

// Timeline export: the paper's Figure 1 (NVProf timeline of ResNet-50) as a
// chrome://tracing / Perfetto JSON, plus the persisted Daydream trace format.
//
// Open resnet50_timeline.json in https://ui.perfetto.dev to see the two CPU
// threads, the compute stream and the memory copies of one training iteration.
#include <iostream>

#include "src/runtime/ground_truth.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/trace_io.h"
#include "src/util/string_util.h"

using namespace daydream;

int main() {
  const RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  const Trace trace = CollectBaselineTrace(config);

  int kernels = 0;
  int memcpys = 0;
  int apis = 0;
  for (const TraceEvent& e : trace.events()) {
    kernels += e.kind == EventKind::kKernel ? 1 : 0;
    memcpys += e.kind == EventKind::kMemcpy ? 1 : 0;
    apis += e.kind == EventKind::kRuntimeApi ? 1 : 0;
  }
  std::cout << StrFormat(
      "ResNet-50 iteration: %.1f ms\n"
      "  %d GPU kernels, %d memory copies, %d CUDA API calls\n"
      "  CPU threads: %zu, GPU streams: %zu\n",
      ToMs(trace.makespan()), kernels, memcpys, apis, trace.CpuThreadIds().size(),
      trace.GpuStreamIds().size());

  const std::string chrome_path = "resnet50_timeline.json";
  const std::string trace_path = "resnet50.ddtrace";
  if (!WriteChromeTraceFile(trace, chrome_path)) {
    std::cerr << "failed to write " << chrome_path << "\n";
    return 1;
  }
  if (!WriteTraceFile(trace, trace_path)) {
    std::cerr << "failed to write " << trace_path << "\n";
    return 1;
  }

  // Round-trip sanity: the persisted profile reloads losslessly, so analysis
  // can run on another machine (the paper's offline what-if workflow, §7.1).
  std::optional<Trace> reloaded = ReadTraceFile(trace_path);
  if (!reloaded.has_value() || reloaded->size() != trace.size()) {
    std::cerr << "trace round-trip failed\n";
    return 1;
  }

  std::cout << "wrote " << chrome_path << " (open in chrome://tracing or ui.perfetto.dev)\n";
  std::cout << "wrote " << trace_path << " (daydream trace format, round-trip verified)\n";
  return 0;
}

// Optimization advisor: rank every applicable built-in optimization for a
// model — the paper's headline use case ("Will optimization X improve the
// performance of my model?", §1) answered from one profile.
#include <iostream>

#include "src/core/memory_model.h"
#include "src/core/optimizations/optimizations.h"
#include "src/core/predictor.h"
#include "src/runtime/ground_truth.h"
#include "src/util/string_util.h"
#include "src/util/table.h"

#include <algorithm>

using namespace daydream;

int main(int argc, char** argv) {
  ModelId model = ModelId::kBertLarge;
  if (argc > 1) {
    const std::string arg = argv[1];
    for (ModelId id : AllModels()) {
      if (arg == ModelName(id)) {
        model = id;
      }
    }
  }
  const RunConfig config = DefaultRunConfig(model);
  const ModelGraph model_graph = BuildModel(config.model, config.batch);
  std::cout << "Profiling " << ModelName(model) << " and evaluating optimizations...\n\n";
  const Trace profile = CollectBaselineTrace(config);
  Daydream daydream(profile);

  struct Entry {
    std::string name;
    double speedup_pct;
    TimeNs predicted;
    std::string note;
  };
  std::vector<Entry> entries;
  auto evaluate = [&](const std::string& name, const std::string& note,
                      const std::function<void(DependencyGraph*)>& transform) {
    const PredictionResult r = daydream.Predict(transform);
    entries.push_back({name, r.SpeedupPct(), r.predicted, note});
  };

  evaluate("Automatic Mixed Precision", "Apex AMP, tensor cores",
           [](DependencyGraph* g) { WhatIfAmp(g); });
  if (config.optimizer == OptimizerKind::kAdam) {
    evaluate("FusedAdam", "Apex fused optimizer",
             [](DependencyGraph* g) { WhatIfFusedAdam(g); });
    evaluate("AMP + FusedAdam", "both together", [](DependencyGraph* g) {
      WhatIfAmp(g);
      WhatIfFusedAdam(g);
    });
  }
  evaluate("MetaFlow conv+BN fusion", "graph substitution",
           [&](DependencyGraph* g) { WhatIfMetaFlowFuseConvBn(g, model_graph); });
  const double gist_gib =
      static_cast<double>(GistActivationSavings(model_graph, /*lossy=*/false)) / kGiB;
  evaluate("Gist (lossless)", StrFormat("frees %.2f GiB of activations", gist_gib),
           [&](DependencyGraph* g) { WhatIfGist(g, model_graph); });
  const double vdnn_gib = static_cast<double>(VdnnActivationSavings(model_graph)) / kGiB;
  evaluate("vDNN conv offload", StrFormat("frees %.2f GiB of activations", vdnn_gib),
           [&](DependencyGraph* g) { WhatIfVdnn(g, model_graph); });

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.speedup_pct > b.speedup_pct; });

  std::cout << StrFormat("baseline iteration: %.1f ms\n\n", ToMs(daydream.BaselineSimTime()));
  TablePrinter table({"rank", "optimization", "predicted (ms)", "speedup", "notes"});
  int rank = 1;
  for (const Entry& e : entries) {
    table.AddRow({StrFormat("%d", rank++), e.name, StrFormat("%.1f", ToMs(e.predicted)),
                  StrFormat("%+.1f%%", e.speedup_pct), e.note});
  }
  table.Print(std::cout);
  std::cout << "\nNegative speedup = the optimization would slow this model down "
               "(it trades time for memory).\n";
  return 0;
}

#include <gtest/gtest.h>

#include "src/core/memory_model.h"
#include "src/models/model_zoo.h"
#include "src/runtime/config.h"

namespace daydream {
namespace {

TEST(MemoryModel, ComponentsPositive) {
  const ModelGraph g = BuildResNet50(32);
  const MemoryEstimate e = EstimateTrainingMemory(g, OptimizerKind::kSgdMomentum);
  EXPECT_GT(e.weights, 0);
  EXPECT_EQ(e.weights, e.gradients);
  EXPECT_EQ(e.optimizer_state, e.weights);  // one momentum buffer
  EXPECT_GT(e.activations, 0);
  EXPECT_EQ(e.total(), e.weights + e.gradients + e.optimizer_state + e.activations + e.workspace);
  EXPECT_FALSE(e.Summary().empty());
}

TEST(MemoryModel, AdamDoublesOptimizerState) {
  const ModelGraph g = BuildBertBase(8);
  const MemoryEstimate sgd = EstimateTrainingMemory(g, OptimizerKind::kSgdMomentum);
  const MemoryEstimate adam = EstimateTrainingMemory(g, OptimizerKind::kAdam);
  EXPECT_EQ(adam.optimizer_state, 2 * sgd.optimizer_state);
}

TEST(MemoryModel, ActivationsScaleWithBatch) {
  const MemoryEstimate small =
      EstimateTrainingMemory(BuildResNet50(16), OptimizerKind::kSgdMomentum);
  const MemoryEstimate big =
      EstimateTrainingMemory(BuildResNet50(32), OptimizerKind::kSgdMomentum);
  EXPECT_NEAR(static_cast<double>(big.activations), 2.0 * small.activations,
              0.01 * big.activations);
  EXPECT_EQ(big.weights, small.weights);  // parameters are batch-independent
}

TEST(MemoryModel, DefaultBatchesFitInElevenGiB) {
  // The paper's 2080 Ti has 11 GB; the default batches were chosen to fit.
  for (ModelId model : AllModels()) {
    const ModelGraph g = BuildModel(model);
    const MemoryEstimate e = EstimateTrainingMemory(g, DefaultOptimizer(model));
    EXPECT_LT(e.total(), 11LL * kGiB) << ModelName(model) << ": " << e.Summary();
  }
}

TEST(MemoryModel, VdnnSavingsBounded) {
  const ModelGraph g = BuildResNet50(64);
  const MemoryEstimate e = EstimateTrainingMemory(g, OptimizerKind::kSgdMomentum);
  const int64_t saved = VdnnActivationSavings(g);
  EXPECT_GT(saved, 0);
  EXPECT_LE(saved, e.activations);
}

TEST(MemoryModel, GistSavingsLossyGreater) {
  const ModelGraph g = BuildResNet50(64);
  const int64_t lossless = GistActivationSavings(g, /*lossy=*/false);
  const int64_t lossy = GistActivationSavings(g, /*lossy=*/true);
  EXPECT_GT(lossless, 0);
  EXPECT_GT(lossy, lossless);
}

TEST(MemoryModel, GistNoReluNoLosslessSavings) {
  // BERT uses GELU, not ReLU: Gist's lossless ReLU encoding finds nothing.
  const ModelGraph g = BuildBertBase(8);
  EXPECT_EQ(GistActivationSavings(g, /*lossy=*/false), 0);
}

TEST(MemoryModel, MaxBatchMonotoneInCapacity) {
  const int64_t small = MaxBatchForCapacity(ModelId::kResNet50, OptimizerKind::kSgdMomentum,
                                            4LL * kGiB);
  const int64_t big = MaxBatchForCapacity(ModelId::kResNet50, OptimizerKind::kSgdMomentum,
                                          16LL * kGiB);
  EXPECT_GT(small, 0);
  EXPECT_GT(big, small);
}

TEST(MemoryModel, MaxBatchZeroWhenNothingFits) {
  EXPECT_EQ(MaxBatchForCapacity(ModelId::kBertLarge, OptimizerKind::kAdam, 1LL * kGiB), 0);
}

TEST(MemoryModel, MaxBatchIsTight) {
  const int64_t capacity = 8LL * kGiB;
  const int64_t batch =
      MaxBatchForCapacity(ModelId::kVgg19, OptimizerKind::kSgdMomentum, capacity);
  ASSERT_GT(batch, 0);
  EXPECT_LE(EstimateTrainingMemory(BuildVgg19(batch), OptimizerKind::kSgdMomentum).total(),
            capacity);
  EXPECT_GT(EstimateTrainingMemory(BuildVgg19(batch + 1), OptimizerKind::kSgdMomentum).total(),
            capacity);
}

}  // namespace
}  // namespace daydream

// Service-layer tests: PlanCache policy (hit/miss/LRU/stamp invalidation),
// TraceSession warm-query reuse against the Daydream oracle, and the
// SessionManager table — including the multi-client stress the TSan CI job
// runs (many threads hammering one session's caches).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/optimizations/optimizations.h"
#include "src/core/predictor.h"
#include "src/runtime/ground_truth.h"
#include "src/service/plan_cache.h"
#include "src/service/session.h"

namespace daydream {
namespace {

// ---- PlanCache ----

std::shared_ptr<const SimPlan> DummyPlan() { return std::make_shared<const SimPlan>(); }

TEST(PlanCache, MissThenPutThenHit) {
  PlanCache cache(4);
  const PlanCache::Key key{1, "earliest_start", "amp"};
  EXPECT_EQ(cache.Get(key), nullptr);
  cache.Put(key, DummyPlan(), /*retimed=*/true);
  EXPECT_NE(cache.Get(key), nullptr);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.retimes, 1u);
  EXPECT_EQ(stats.compiles, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, KeySeparatesStampSchedulerAndSignature) {
  PlanCache cache(8);
  cache.Put({1, "earliest_start", "amp"}, DummyPlan(), false);
  // Timing variants over one shared structure: same stamp, same scheduler,
  // different signature — must not alias.
  EXPECT_EQ(cache.Get({1, "earliest_start", "other"}), nullptr);
  EXPECT_EQ(cache.Get({2, "earliest_start", "amp"}), nullptr);
  EXPECT_EQ(cache.Get({1, "critical_path", "amp"}), nullptr);
  EXPECT_NE(cache.Get({1, "earliest_start", "amp"}), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsedPastCapacity) {
  PlanCache cache(2);
  cache.Put({1, "s", "a"}, DummyPlan(), false);
  cache.Put({2, "s", "b"}, DummyPlan(), false);
  EXPECT_NE(cache.Get({1, "s", "a"}), nullptr);  // promote key 1
  cache.Put({3, "s", "c"}, DummyPlan(), false);  // evicts key 2, the LRU
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.Get({2, "s", "b"}), nullptr);
  EXPECT_NE(cache.Get({1, "s", "a"}), nullptr);
  EXPECT_NE(cache.Get({3, "s", "c"}), nullptr);
}

TEST(PlanCache, PutOnExistingKeyRefreshesInPlace) {
  PlanCache cache(2);
  const PlanCache::Key key{1, "s", "a"};
  cache.Put(key, DummyPlan(), false);
  cache.Put(key, DummyPlan(), true);  // a concurrent builder raced us
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().compiles, 1u);
  EXPECT_EQ(cache.stats().retimes, 1u);
}

TEST(PlanCache, EraseStampDropsEveryPlanForThatStructure) {
  PlanCache cache(8);
  cache.Put({1, "s", "amp"}, DummyPlan(), false);
  cache.Put({1, "s", "other"}, DummyPlan(), false);
  cache.Put({2, "s", "dist"}, DummyPlan(), false);
  cache.EraseStamp(1);  // the after-structural-mutation hook
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get({1, "s", "amp"}), nullptr);
  EXPECT_EQ(cache.Get({1, "s", "other"}), nullptr);
  EXPECT_NE(cache.Get({2, "s", "dist"}), nullptr);
}

TEST(PlanCache, EraseSignatureIsScopedToOneSignature) {
  PlanCache cache(8);
  cache.Put({1, "s", "amp"}, DummyPlan(), false);
  cache.Put({1, "s", "other"}, DummyPlan(), false);
  cache.Erase(1, "amp");
  EXPECT_EQ(cache.Get({1, "s", "amp"}), nullptr);
  EXPECT_NE(cache.Get({1, "s", "other"}), nullptr);
}

TEST(PlanCache, StampInvalidationAfterStructuralMutation) {
  // The end-to-end contract: timing-only edits preserve the structure stamp
  // (their plans stay reachable), structural mutation bumps it (every plan
  // compiled from the old structure becomes unreachable under the new stamp,
  // and EraseStamp reclaims the stale ones eagerly).
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp));
  const Daydream daydream(trace);
  PlanCache cache(4);

  DependencyGraph amp = daydream.CloneGraph();
  WhatIfAmp(&amp);  // timing-only: stamp preserved
  EXPECT_EQ(amp.structure_stamp(), daydream.graph().structure_stamp());

  DependencyGraph fused = daydream.CloneGraph();
  WhatIfFusedAdam(&fused);  // removes optimizer tasks: stamp bumped
  EXPECT_NE(fused.structure_stamp(), daydream.graph().structure_stamp());

  const Simulator simulator;
  cache.Put({amp.structure_stamp(), "s", "amp"},
            std::make_shared<const SimPlan>(
                simulator.Compile(amp, &daydream.baseline_plan())),
            /*retimed=*/true);
  cache.Put({fused.structure_stamp(), "s", "fused_adam"},
            std::make_shared<const SimPlan>(simulator.Compile(fused)),
            /*retimed=*/false);

  EXPECT_EQ(cache.Get({fused.structure_stamp(), "s", "amp"}), nullptr);
  cache.EraseStamp(amp.structure_stamp());
  EXPECT_EQ(cache.Get({amp.structure_stamp(), "s", "amp"}), nullptr);
  EXPECT_NE(cache.Get({fused.structure_stamp(), "s", "fused_adam"}), nullptr);
}

// ---- WhatIfRequest signatures ----

TEST(WhatIfRequestSignature, DistinguishesEveryTransformParameter) {
  WhatIfRequest amp;
  amp.what_if = "amp";
  WhatIfRequest dist;
  dist.what_if = "distributed";
  dist.cluster.machines = 2;
  dist.cluster.gpus_per_machine = 4;
  EXPECT_NE(amp.Signature(), dist.Signature());

  WhatIfRequest dist_fast = dist;
  dist_fast.cluster.network.bandwidth_gbps = 40.0;
  EXPECT_NE(dist.Signature(), dist_fast.Signature());

  // Engine and validate select how the answer is consumed, not which graph
  // is built — they must share one cached transform.
  WhatIfRequest amp_reference = amp;
  amp_reference.engine = EngineKind::kReference;
  amp_reference.validate = true;
  EXPECT_EQ(amp.Signature(), amp_reference.Signature());
}

// ---- TraceSession ----

class TraceSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp)));
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static std::shared_ptr<TraceSession> NewSession(
      SessionOptions options = SessionOptions{}) {
    std::string error;
    std::shared_ptr<TraceSession> session = TraceSession::Create(*trace_, options, &error);
    EXPECT_NE(session, nullptr) << error;
    return session;
  }

  static Trace* trace_;
};

Trace* TraceSessionTest::trace_ = nullptr;

TEST_F(TraceSessionTest, CreateRejectsEmptyTrace) {
  std::string error;
  EXPECT_EQ(TraceSession::Create(Trace{}, SessionOptions{}, &error), nullptr);
  EXPECT_NE(error.find("no events"), std::string::npos);
}

TEST_F(TraceSessionTest, PredictMatchesDaydreamOracle) {
  std::shared_ptr<TraceSession> session = NewSession();
  const Daydream oracle(*trace_);
  for (const char* name : {"amp", "fused_adam", "rbn", "metaflow", "gist", "vdnn"}) {
    WhatIfRequest request;
    request.what_if = name;
    PredictOutcome outcome;
    std::string error;
    ASSERT_EQ(session->Predict(request, &outcome, &error), SessionStatus::kOk)
        << name << ": " << error;

    std::function<void(DependencyGraph*)> transform;
    ASSERT_EQ(session->ResolveTransform(request, &transform, &error), SessionStatus::kOk)
        << name << ": " << error;
    const PredictionResult expected = oracle.Predict(transform);
    EXPECT_EQ(outcome.prediction.baseline, expected.baseline) << name;
    EXPECT_EQ(outcome.prediction.predicted, expected.predicted) << name;
  }
}

TEST_F(TraceSessionTest, RepeatedTimingOnlyQueryHitsPlanCacheViaRetime) {
  std::shared_ptr<TraceSession> session = NewSession();
  WhatIfRequest request;
  request.what_if = "amp";
  PredictOutcome first, second;
  std::string error;
  ASSERT_EQ(session->Predict(request, &first, &error), SessionStatus::kOk) << error;
  ASSERT_EQ(session->Predict(request, &second, &error), SessionStatus::kOk) << error;

  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(first.prediction.predicted, second.prediction.predicted);

  // AMP only edits timings, so the miss was filled by retiming the baseline
  // plan's structure block, never a full CSR compile.
  const PlanCacheStats stats = session->plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.retimes, 1u);
  EXPECT_EQ(stats.compiles, 0u);
}

TEST_F(TraceSessionTest, StructuralWhatIfCompilesOnceThenHits) {
  std::shared_ptr<TraceSession> session = NewSession();
  WhatIfRequest request;
  request.what_if = "distributed";
  request.cluster.machines = 2;
  request.cluster.gpus_per_machine = 2;
  PredictOutcome first, second;
  std::string error;
  ASSERT_EQ(session->Predict(request, &first, &error), SessionStatus::kOk) << error;
  ASSERT_EQ(session->Predict(request, &second, &error), SessionStatus::kOk) << error;
  EXPECT_FALSE(first.plan_cache_hit);
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_EQ(first.prediction.predicted, second.prediction.predicted);
  const PlanCacheStats stats = session->plan_cache_stats();
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.retimes, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(TraceSessionTest, DifferentClustersAreDifferentCacheEntries) {
  std::shared_ptr<TraceSession> session = NewSession();
  WhatIfRequest narrow, wide;
  narrow.what_if = wide.what_if = "distributed";
  narrow.cluster.machines = wide.cluster.machines = 2;
  narrow.cluster.gpus_per_machine = wide.cluster.gpus_per_machine = 2;
  narrow.cluster.network.bandwidth_gbps = 10.0;
  wide.cluster.network.bandwidth_gbps = 40.0;

  PredictOutcome a, b;
  std::string error;
  ASSERT_EQ(session->Predict(narrow, &a, &error), SessionStatus::kOk) << error;
  ASSERT_EQ(session->Predict(wide, &b, &error), SessionStatus::kOk) << error;
  EXPECT_FALSE(b.plan_cache_hit);  // a different question, not a warm hit
  EXPECT_LE(b.prediction.predicted, a.prediction.predicted);  // 40 Gbps >= 10
}

TEST_F(TraceSessionTest, TransformCacheEvictionInvalidatesCachedPlans) {
  SessionOptions options;
  options.plan_cache_capacity = 1;
  std::shared_ptr<TraceSession> session = NewSession(options);

  WhatIfRequest amp, dist;
  amp.what_if = "amp";
  dist.what_if = "distributed";
  PredictOutcome outcome;
  std::string error;
  ASSERT_EQ(session->Predict(amp, &outcome, &error), SessionStatus::kOk) << error;
  ASSERT_EQ(session->Predict(dist, &outcome, &error), SessionStatus::kOk) << error;
  // dist evicted amp's transform (capacity 1), which erased amp's plan by
  // stamp — so the repeat must rebuild instead of serving a stale hit.
  ASSERT_EQ(session->Predict(amp, &outcome, &error), SessionStatus::kOk) << error;
  EXPECT_FALSE(outcome.plan_cache_hit);
  const PlanCacheStats stats = session->plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST_F(TraceSessionTest, ReferenceEngineBypassesThePlanCache) {
  std::shared_ptr<TraceSession> session = NewSession();
  WhatIfRequest request;
  request.what_if = "amp";
  request.engine = EngineKind::kReference;
  PredictOutcome reference, event;
  std::string error;
  ASSERT_EQ(session->Predict(request, &reference, &error), SessionStatus::kOk) << error;
  EXPECT_FALSE(reference.plan_cache_hit);
  EXPECT_EQ(session->plan_cache_size(), 0u);

  request.engine = EngineKind::kEvent;
  ASSERT_EQ(session->Predict(request, &event, &error), SessionStatus::kOk) << error;
  // Differential check: both engines agree on the same transformed graph.
  EXPECT_EQ(reference.prediction.predicted, event.prediction.predicted);
}

TEST_F(TraceSessionTest, UnknownWhatIfIsReportedNotFatal) {
  std::shared_ptr<TraceSession> session = NewSession();
  WhatIfRequest request;
  request.what_if = "overclock";
  PredictOutcome outcome;
  std::string error;
  EXPECT_EQ(session->Predict(request, &outcome, &error), SessionStatus::kUnknownWhatIf);
  // p3 is deliberately not a graph transform either (it reports its own
  // steady-state metric; callers route it to PredictPsIterationTime).
  request.what_if = "p3";
  EXPECT_EQ(session->Predict(request, &outcome, &error), SessionStatus::kUnknownWhatIf);
}

TEST_F(TraceSessionTest, LayerStructuredWhatIfNeedsAKnownModel) {
  Trace renamed = *trace_;
  renamed.set_model_name("mystery-net");
  std::string error;
  std::shared_ptr<TraceSession> session =
      TraceSession::Create(renamed, SessionOptions{}, &error);
  ASSERT_NE(session, nullptr) << error;
  WhatIfRequest request;
  request.what_if = "rbn";
  PredictOutcome outcome;
  EXPECT_EQ(session->Predict(request, &outcome, &error), SessionStatus::kBadRequest);
  EXPECT_NE(error.find("known model name"), std::string::npos);
}

TEST_F(TraceSessionTest, ValidatedPredictRunsTheFullCatalog) {
  std::shared_ptr<TraceSession> session = NewSession();
  WhatIfRequest request;
  request.what_if = "amp";
  request.validate = true;
  PredictOutcome outcome;
  std::string error;
  EXPECT_EQ(session->Predict(request, &outcome, &error), SessionStatus::kOk) << error;
}

TEST_F(TraceSessionTest, LintCleanGraphRunsPlanPasses) {
  std::shared_ptr<TraceSession> session = NewSession();
  LintReport report;
  bool plan_passes_run = false;
  std::string error;
  ASSERT_EQ(session->Lint(nullptr, &report, &plan_passes_run, &error), SessionStatus::kOk);
  EXPECT_TRUE(plan_passes_run);
  EXPECT_EQ(report.errors(), 0);
}

TEST_F(TraceSessionTest, ReportTextNamesTheModel) {
  std::shared_ptr<TraceSession> session = NewSession();
  const std::string report = session->ReportText();
  EXPECT_NE(report.find(trace_->model_name()), std::string::npos);
  EXPECT_NE(report.find("hottest layer phases"), std::string::npos);
}

TEST_F(TraceSessionTest, SweepRunsTheStandardMatrix) {
  std::shared_ptr<TraceSession> session = NewSession();
  const std::vector<SweepCase> cases =
      BuildStandardSweep(session->trace(), {ClusterConfig{}});
  ASSERT_FALSE(cases.empty());
  const std::vector<SweepOutcome> outcomes = session->Sweep(cases, SweepOptions{});
  ASSERT_EQ(outcomes.size(), cases.size());
  for (const SweepOutcome& outcome : outcomes) {
    EXPECT_EQ(outcome.prediction.baseline, session->daydream().BaselineSimTime());
  }
}

TEST_F(TraceSessionTest, ConcurrentClientsShareTheCachesSafely) {
  // The TSan stress: N client threads fire mixed what-ifs at one session.
  // Every request must succeed and agree with the single-threaded answer.
  std::shared_ptr<TraceSession> session = NewSession();

  WhatIfRequest amp, fused, dist;
  amp.what_if = "amp";
  fused.what_if = "fused_adam";
  dist.what_if = "distributed";
  dist.cluster.machines = 2;
  dist.cluster.gpus_per_machine = 2;
  const std::vector<WhatIfRequest> requests = {amp, fused, dist};

  std::vector<TimeNs> expected;
  for (const WhatIfRequest& request : requests) {
    PredictOutcome outcome;
    std::string error;
    ASSERT_EQ(session->Predict(request, &outcome, &error), SessionStatus::kOk) << error;
    expected.push_back(outcome.prediction.predicted);
  }

  constexpr int kThreads = 8;
  constexpr int kIterations = 25;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t pick = static_cast<size_t>(t + i) % requests.size();
        PredictOutcome outcome;
        std::string error;
        if (session->Predict(requests[pick], &outcome, &error) != SessionStatus::kOk ||
            outcome.prediction.predicted != expected[pick]) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  // Every predict is exactly one cache probe, and warm queries dominate.
  const PlanCacheStats stats = session->plan_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kIterations + requests.size()));
  EXPECT_GE(stats.hits, stats.misses);
}

// ---- SessionManager ----

TEST_F(TraceSessionTest, SessionManagerHandsOutStableHandles) {
  SessionManager manager;
  const std::string first = manager.Open(NewSession());
  const std::string second = manager.Open(NewSession());
  EXPECT_NE(first, second);
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_NE(manager.Get(first), nullptr);
  EXPECT_NE(manager.Get(second), nullptr);
  EXPECT_EQ(manager.Get("nope"), nullptr);
  EXPECT_EQ(manager.Handles(), (std::vector<std::string>{first, second}));

  EXPECT_TRUE(manager.Close(first));
  EXPECT_FALSE(manager.Close(first));
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(manager.Get(first), nullptr);
}

TEST_F(TraceSessionTest, SessionManagerListsHandlesInInsertionOrder) {
  SessionManager manager;
  std::shared_ptr<TraceSession> session = NewSession();
  std::vector<std::string> opened;
  opened.reserve(11);
  for (int i = 0; i < 11; ++i) {
    opened.push_back(manager.Open(session));  // "s1" ... "s11"
  }
  // "s10"/"s11" must list after "s9" — insertion order, not lexicographic.
  EXPECT_EQ(manager.Handles(), opened);
}

TEST_F(TraceSessionTest, SessionManagerSurvivesConcurrentClients) {
  // M sessions opened/queried/closed from N threads; a session closed while
  // another thread holds its shared_ptr stays usable until released.
  SessionManager manager;
  std::shared_ptr<TraceSession> shared_session = NewSession();
  constexpr int kThreads = 6;
  constexpr int kSessionsPerThread = 4;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSessionsPerThread; ++i) {
        const std::string handle = manager.Open(shared_session);
        std::shared_ptr<TraceSession> session = manager.Get(handle);
        if (session == nullptr) {
          ++failures[t];
          continue;
        }
        WhatIfRequest request;
        request.what_if = "amp";
        PredictOutcome outcome;
        std::string error;
        if (session->Predict(request, &outcome, &error) != SessionStatus::kOk) {
          ++failures[t];
        }
        if (!manager.Close(handle)) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  EXPECT_EQ(manager.size(), 0u);
}

// ---- SessionManager quotas ----

TEST_F(TraceSessionTest, SessionManagerEvictsTheLeastRecentlyUsedSession) {
  SessionManager manager(SessionManagerLimits{/*max_sessions=*/2, /*max_resident_bytes=*/0});
  std::shared_ptr<TraceSession> session = NewSession();
  const std::string first = manager.Open(session);
  const std::string second = manager.Open(session);
  // Touching the first makes the second the LRU candidate.
  EXPECT_NE(manager.Get(first), nullptr);
  const std::string third = manager.Open(session);
  EXPECT_EQ(manager.size(), 2u);
  EXPECT_EQ(manager.evicted(), 1u);
  EXPECT_EQ(manager.Get(second), nullptr);  // evicted handle is gone
  EXPECT_NE(manager.Get(first), nullptr);
  EXPECT_NE(manager.Get(third), nullptr);
}

TEST_F(TraceSessionTest, SessionManagerNeverEvictsTheSessionBeingOpened) {
  // max_sessions=1 forces every Open to evict — but the incoming session must
  // survive its own admission, so each Open replaces the previous one.
  SessionManager manager(SessionManagerLimits{/*max_sessions=*/1, /*max_resident_bytes=*/0});
  std::shared_ptr<TraceSession> session = NewSession();
  const std::string first = manager.Open(session);
  const std::string second = manager.Open(session);
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(manager.Get(first), nullptr);
  EXPECT_NE(manager.Get(second), nullptr);
  EXPECT_EQ(manager.evicted(), 1u);
}

TEST_F(TraceSessionTest, SessionManagerEnforcesTheResidentBytesQuota) {
  std::shared_ptr<TraceSession> session = NewSession();
  ASSERT_GT(session->resident_bytes(), 0u);
  // A quota that fits exactly one copy of this trace: opening a second evicts
  // the first, and a session alone over quota is never evicted (it is `keep`).
  SessionManager manager(
      SessionManagerLimits{/*max_sessions=*/0, /*max_resident_bytes=*/session->resident_bytes()});
  const std::string first = manager.Open(session);
  EXPECT_EQ(manager.resident_bytes(), session->resident_bytes());
  const std::string second = manager.Open(session);
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(manager.evicted(), 1u);
  EXPECT_EQ(manager.Get(first), nullptr);
  EXPECT_NE(manager.Get(second), nullptr);
  EXPECT_EQ(manager.resident_bytes(), session->resident_bytes());
}

TEST_F(TraceSessionTest, SessionManagerResidentBytesTracksOpenAndClose) {
  SessionManager manager;  // unlimited
  std::shared_ptr<TraceSession> session = NewSession();
  const std::string first = manager.Open(session);
  const std::string second = manager.Open(session);
  EXPECT_EQ(manager.resident_bytes(), 2 * session->resident_bytes());
  EXPECT_TRUE(manager.Close(first));
  EXPECT_EQ(manager.resident_bytes(), session->resident_bytes());
  EXPECT_TRUE(manager.Close(second));
  EXPECT_EQ(manager.resident_bytes(), 0u);
  EXPECT_EQ(manager.evicted(), 0u);  // Close is not eviction
}

}  // namespace
}  // namespace daydream

// Importer suite: streaming tokenizer, CUPTI record streams, Chrome trace
// round trip, and the hostile-input corpus under tests/fuzz/.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/graph_builder.h"
#include "src/runtime/config.h"
#include "src/runtime/ground_truth.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/import_chrome.h"
#include "src/trace/import_cupti.h"
#include "src/trace/trace_io.h"
#include "src/util/json_stream.h"

namespace daydream {
namespace {

using TokenKind = JsonStreamTokenizer::TokenKind;

// ---------------------------------------------------------------------------
// Streaming tokenizer
// ---------------------------------------------------------------------------

std::vector<TokenKind> Kinds(const std::string& text) {
  std::stringstream in(text);
  JsonStreamTokenizer tok(in);
  std::vector<TokenKind> kinds;
  for (int guard = 0; guard < 1000; ++guard) {
    kinds.push_back(tok.Next().kind);
    if (kinds.back() == TokenKind::kEnd || kinds.back() == TokenKind::kError) {
      return kinds;
    }
  }
  ADD_FAILURE() << "tokenizer did not terminate";
  return kinds;
}

TEST(JsonStream, TokenizesNestedDocument) {
  const std::vector<TokenKind> kinds =
      Kinds(R"([{"a":1,"b":[true,null,"x"]},{"c":{"d":-2.5}}])");
  const std::vector<TokenKind> expected = {
      TokenKind::kBeginArray,  TokenKind::kBeginObject, TokenKind::kKey,
      TokenKind::kNumber,      TokenKind::kKey,         TokenKind::kBeginArray,
      TokenKind::kBool,        TokenKind::kNull,        TokenKind::kString,
      TokenKind::kEndArray,    TokenKind::kEndObject,   TokenKind::kBeginObject,
      TokenKind::kKey,         TokenKind::kBeginObject, TokenKind::kKey,
      TokenKind::kNumber,      TokenKind::kEndObject,   TokenKind::kEndObject,
      TokenKind::kEndArray,    TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(JsonStream, NumberTokensKeepRawText) {
  std::stringstream in(R"({"big":1152921504606846977})");
  JsonStreamTokenizer tok(in);
  EXPECT_EQ(tok.Next().kind, TokenKind::kBeginObject);
  EXPECT_EQ(tok.Next().kind, TokenKind::kKey);
  const auto& t = tok.Next();
  EXPECT_EQ(t.kind, TokenKind::kNumber);
  EXPECT_EQ(t.text, "1152921504606846977");  // exact past 2^53, no double trip
}

TEST(JsonStream, ErrorsAreStickyAndPositioned) {
  std::stringstream in(R"([{"a":)");
  JsonStreamTokenizer tok(in);
  while (tok.Next().kind != TokenKind::kError) {
  }
  EXPECT_EQ(tok.token().text, "unexpected end of input");
  EXPECT_EQ(tok.offset(), 6u);
  EXPECT_EQ(tok.Next().kind, TokenKind::kError);  // sticky
}

TEST(JsonStream, EndIsSticky) {
  std::stringstream in("[]");
  JsonStreamTokenizer tok(in);
  EXPECT_EQ(tok.Next().kind, TokenKind::kBeginArray);
  EXPECT_EQ(tok.Next().kind, TokenKind::kEndArray);
  EXPECT_EQ(tok.Next().kind, TokenKind::kEnd);
  EXPECT_EQ(tok.Next().kind, TokenKind::kEnd);
}

TEST(JsonStream, RejectsTrailingGarbage) {
  const std::vector<TokenKind> kinds = Kinds("[] x");
  EXPECT_EQ(kinds.back(), TokenKind::kError);
}

TEST(JsonStream, RejectsGrammarViolations) {
  for (const char* text : {"[1 2]", R"({"a" 1})", R"({"a":1,})", "[,1]", "[truth]", "{1:2}",
                           R"(["\q"])", "[+1]", "[1.2.3]", "[01x]"}) {
    EXPECT_EQ(Kinds(text).back(), TokenKind::kError) << text;
  }
}

TEST(JsonStream, DepthLimitStopsHostileNesting) {
  const std::string bomb(10000, '[');
  std::stringstream in(bomb);
  JsonStreamTokenizer tok(in);
  int depth = 0;
  while (tok.Next().kind == TokenKind::kBeginArray) {
    ++depth;
  }
  EXPECT_EQ(tok.token().kind, TokenKind::kError);
  EXPECT_EQ(depth, 32);  // default Limits::max_depth
}

TEST(JsonStream, StringAndNumberSizeLimits) {
  JsonStreamTokenizer::Limits limits;
  limits.max_string_bytes = 8;
  limits.max_number_bytes = 4;
  {
    std::stringstream in(R"(["123456789012345"])");
    JsonStreamTokenizer tok(in, limits);
    tok.Next();
    EXPECT_EQ(tok.Next().kind, TokenKind::kError);
  }
  {
    std::stringstream in("[123456789]");
    JsonStreamTokenizer tok(in, limits);
    tok.Next();
    EXPECT_EQ(tok.Next().kind, TokenKind::kError);
  }
}

// The bounded-memory guarantee: a document arbitrarily larger than the caps
// never inflates the transient buffer past one token + the depth stack.
TEST(JsonStream, BufferStaysBoundedOnLargeDocuments) {
  std::stringstream in;
  in << "[";
  for (int i = 0; i < 20000; ++i) {
    in << (i > 0 ? "," : "") << R"({"name":"event_)" << i << R"(","ts":)" << i * 1000 << "}";
  }
  in << "]";
  const uint64_t total = static_cast<uint64_t>(in.str().size());
  JsonStreamTokenizer tok(in);
  while (tok.Next().kind != TokenKind::kEnd) {
    ASSERT_NE(tok.token().kind, TokenKind::kError) << tok.token().text;
  }
  EXPECT_EQ(tok.offset(), total);
  EXPECT_LT(tok.max_buffered_bytes(), 256u);  // ~500KB document, <256B resident
}

TEST(JsonStream, ParseDecimalUsToNsIsExact) {
  EXPECT_EQ(ParseDecimalUsToNs("1.500"), 1500);
  EXPECT_EQ(ParseDecimalUsToNs("0.001"), 1);
  EXPECT_EQ(ParseDecimalUsToNs("1234"), 1234000);
  EXPECT_EQ(ParseDecimalUsToNs("-3.25"), -3250);
  EXPECT_EQ(ParseDecimalUsToNs("1.500000"), 1500);  // trailing zeros are fine
  // INT64_MAX / INT64_MIN nanoseconds, written as microseconds.
  EXPECT_EQ(ParseDecimalUsToNs("9223372036854775.807"), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseDecimalUsToNs("-9223372036854775.808"), std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(ParseDecimalUsToNs("9223372036854775.808").has_value());  // overflow
  EXPECT_FALSE(ParseDecimalUsToNs("1.0005").has_value());  // sub-ns precision
  EXPECT_FALSE(ParseDecimalUsToNs("1e3").has_value());
  EXPECT_FALSE(ParseDecimalUsToNs("1.").has_value());
  EXPECT_FALSE(ParseDecimalUsToNs(".5").has_value());
  EXPECT_FALSE(ParseDecimalUsToNs("12ab").has_value());
  EXPECT_FALSE(ParseDecimalUsToNs("").has_value());
}

// ---------------------------------------------------------------------------
// CUPTI record streams
// ---------------------------------------------------------------------------

std::optional<Trace> Cupti(const std::string& text, std::string* error = nullptr,
                           CuptiImportStats* stats = nullptr) {
  std::stringstream in(text);
  return ImportCuptiTrace(in, error, stats);
}

constexpr char kCuptiFixture[] = R"({"kind":"trace","model":"ResNet-50","config":"batch=64"}
{"kind":"gradient","layer":0,"bytes":1048576,"bucket":0}
{"kind":"marker","name":"conv1","layer":0,"phase":"forward","begin":true,"start":900,"threadId":1}
{"kind":"runtime","name":"cudaLaunchKernel_v7000","start":1000,"end":1500,"processId":7,"threadId":1,"correlationId":42}
{"kind":"runtime","name":"cudaMemcpyAsync","start":1600,"end":1700,"processId":7,"threadId":1,"correlationId":43}
{"kind":"kernel","name":"volta_sgemm","start":2100,"end":9000,"streamId":0,"correlationId":42}
{"kind":"memcpy","copyKind":"HtoD","bytes":4096,"start":9100,"end":9600,"streamId":1,"correlationId":43}
{"kind":"marker","name":"conv1","layer":0,"phase":"forward","begin":false,"start":9700,"threadId":1}
{"kind":"comm","commKind":"allReduce","channelId":0,"bytes":1048576,"start":9700,"end":12000}
{"kind":"dataload","name":"batch_0","start":0,"end":800,"threadId":2}
)";

TEST(CuptiImport, ReconstructsTraceAndMatchesCorrelations) {
  std::string error;
  CuptiImportStats stats;
  const std::optional<Trace> trace = Cupti(kCuptiFixture, &error, &stats);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->model_name(), "ResNet-50");
  EXPECT_EQ(trace->config(), "batch=64");
  ASSERT_EQ(trace->gradients().size(), 1u);
  EXPECT_EQ(trace->gradients()[0].bytes, 1048576);
  EXPECT_EQ(stats.records, 10u);
  EXPECT_EQ(stats.events, 8u);
  EXPECT_EQ(stats.matched, 2u);
  EXPECT_EQ(stats.unmatched_gpu + stats.unmatched_launch + stats.duplicate_gpu +
                stats.duplicate_launch,
            0u);
  EXPECT_TRUE(trace->Validate().ok());

  // Event order is record order: marker, launch, launch, kernel, memcpy,
  // marker, comm, dataload.
  const TraceEvent& launch = trace->events()[1];
  EXPECT_EQ(launch.kind, EventKind::kRuntimeApi);
  EXPECT_EQ(launch.api, ApiKind::kLaunchKernel);  // _v7000 suffix stripped
  EXPECT_EQ(launch.thread_id, 1);
  EXPECT_EQ(launch.duration, 500);
  const TraceEvent& copy = trace->events()[4];
  EXPECT_EQ(copy.kind, EventKind::kMemcpy);
  EXPECT_EQ(copy.memcpy_kind, MemcpyKind::kHostToDevice);
  EXPECT_EQ(copy.bytes, 4096);
  const TraceEvent& comm = trace->events()[6];
  EXPECT_EQ(comm.kind, EventKind::kCommunication);
  EXPECT_EQ(comm.comm_kind, CommKind::kAllReduce);
  EXPECT_EQ(comm.channel_id, 0);
}

// The acceptance check for §4.2.2: the imported stream must yield the
// CPU→GPU correlation edges when fed to the graph builder.
TEST(CuptiImport, GraphBuilderReconstructsCpuToGpuEdges) {
  const std::optional<Trace> trace = Cupti(kCuptiFixture);
  ASSERT_TRUE(trace.has_value());
  const DependencyGraph graph = BuildDependencyGraph(*trace);
  TaskId launch42 = kInvalidTask, kernel42 = kInvalidTask;
  TaskId launch43 = kInvalidTask, memcpy43 = kInvalidTask;
  for (TaskId id = 0; id < graph.capacity(); ++id) {
    if (!graph.alive(id)) {
      continue;
    }
    const Task& t = graph.task(id);
    if (t.correlation_id == 42) {
      (t.is_gpu() ? kernel42 : launch42) = id;
    }
    if (t.correlation_id == 43) {
      (t.is_gpu() ? memcpy43 : launch43) = id;
    }
  }
  ASSERT_NE(launch42, kInvalidTask);
  ASSERT_NE(kernel42, kInvalidTask);
  ASSERT_NE(launch43, kInvalidTask);
  ASSERT_NE(memcpy43, kInvalidTask);
  EXPECT_TRUE(graph.HasEdge(launch42, kernel42));
  EXPECT_TRUE(graph.HasEdge(launch43, memcpy43));
  EXPECT_FALSE(graph.HasEdge(launch42, memcpy43));
}

TEST(CuptiImport, MatchesOutOfOrderBufferFlushes) {
  CuptiImportStats stats;
  const std::optional<Trace> trace = Cupti(
      R"({"kind":"kernel","name":"k","start":2000,"end":3000,"streamId":0,"correlationId":5}
{"kind":"runtime","name":"cudaLaunchKernel","start":0,"end":100,"threadId":0,"correlationId":5}
)",
      nullptr, &stats);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(stats.matched, 1u);
  EXPECT_EQ(trace->events()[0].correlation_id, 5);
  EXPECT_TRUE(trace->Validate().ok());
}

TEST(CuptiImport, RepairsDuplicateAndUnmatchedCorrelations) {
  CuptiImportStats stats;
  const std::optional<Trace> trace = Cupti(
      R"({"kind":"runtime","name":"cudaLaunchKernel","start":0,"end":100,"threadId":0,"correlationId":5}
{"kind":"runtime","name":"cudaLaunchKernel","start":200,"end":300,"threadId":0,"correlationId":5}
{"kind":"kernel","name":"k1","start":2000,"end":3000,"streamId":0,"correlationId":5}
{"kind":"kernel","name":"k2","start":3000,"end":4000,"streamId":0,"correlationId":5}
{"kind":"kernel","name":"orphan","start":4000,"end":5000,"streamId":0,"correlationId":9}
{"kind":"runtime","name":"cudaLaunchKernel","start":400,"end":500,"threadId":0,"correlationId":6}
)",
      nullptr, &stats);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(stats.duplicate_launch, 1u);
  EXPECT_EQ(stats.duplicate_gpu, 1u);
  EXPECT_EQ(stats.unmatched_gpu, 1u);   // corr 9 never saw a launch
  EXPECT_EQ(stats.unmatched_launch, 1u);  // corr 6 never saw a GPU task
  EXPECT_EQ(stats.matched, 1u);
  // The repaired trace carries every event but no conflicting ids.
  EXPECT_EQ(trace->size(), 6u);
  EXPECT_EQ(trace->events()[1].correlation_id, 0);  // duplicate launch cleared
  EXPECT_EQ(trace->events()[3].correlation_id, 0);  // duplicate kernel cleared
  EXPECT_EQ(trace->events()[4].correlation_id, 0);  // orphan kernel cleared
  EXPECT_TRUE(trace->Validate().ok());
}

TEST(CuptiImport, CorrelationIdsExactPast2e53) {
  // 2^60 + 1 is not representable as a double; the importer must keep it.
  CuptiImportStats stats;
  const std::optional<Trace> trace = Cupti(
      R"({"kind":"runtime","name":"cudaLaunchKernel","start":0,"end":100,"threadId":0,"correlationId":1152921504606846977}
{"kind":"kernel","name":"k","start":200,"end":300,"streamId":0,"correlationId":1152921504606846977}
)",
      nullptr, &stats);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(stats.matched, 1u);
  EXPECT_EQ(trace->events()[0].correlation_id, INT64_C(1152921504606846977));
}

TEST(CuptiImport, AcceptsCrlfAndBlankLines) {
  const std::optional<Trace> trace = Cupti(
      "{\"kind\":\"trace\",\"model\":\"m\",\"config\":\"c\"}\r\n\r\n"
      "{\"kind\":\"dataload\",\"name\":\"b\",\"start\":0,\"end\":10,\"threadId\":0}\r\n");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->model_name(), "m");
  EXPECT_EQ(trace->size(), 1u);
}

TEST(CuptiImport, RejectsMalformedRecordsWithLineNumbers) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"{\"kind\":\"dataload\",\"start\":0,\"end\":10,\"threadId\":0}\nnot json\n", "line 2"},
      {R"({"kind":"warp_divergence","start":0,"end":1})", "unknown record kind"},
      {R"({"name":"x","start":0,"end":1})", "\"kind\""},
      {R"({"kind":"kernel","name":"k","start":100,"end":50,"streamId":0})", "end precedes start"},
      {R"({"kind":"kernel","name":"k","start":-5,"end":50,"streamId":0})", "negative start"},
      {R"({"kind":"kernel","name":"k","start":0,"end":50,"streamId":-3})", "streamId"},
      {R"({"kind":"dataload","name":"b","start":0,"end":10,"threadId":-2})", "threadId"},
      {R"({"kind":"dataload","name":"b","start":0,"end":10})", "threadId"},
      {R"({"kind":"runtime","name":"r","start":0,"end":1,"threadId":0,"correlationId":-4})",
       "negative correlationId"},
      {R"({"kind":"runtime","name":"r","start":0,"end":1,"threadId":0,"correlationId":1.5})",
       "correlationId"},
      {R"({"kind":"memcpy","name":"m","start":0,"end":1,"streamId":0,"copyKind":"sideways"})",
       "copyKind"},
      {R"({"kind":"memcpy","name":"m","start":0,"end":1,"streamId":0,"copyKind":"HtoD","bytes":-1})",
       "negative bytes"},
      {R"({"kind":"comm","name":"c","start":0,"end":1,"channelId":0,"commKind":"gossip"})",
       "commKind"},
      {R"({"kind":"marker","name":"l","start":5,"threadId":0,"layer":0,"phase":"forward"})",
       "begin"},
      {R"({"kind":"marker","name":"l","start":5,"threadId":0,"layer":0,"phase":"sideways","begin":true})",
       "phase"},
      {R"({"kind":"gradient","layer":0,"bytes":-5,"bucket":0})", "negative gradient bytes"},
      {"{\"kind\":\"runtime\",\"name\":\"r\",\"start\":0,\"end\":1,\"threadId\":0,\"processId\":1}\n"
       "{\"kind\":\"runtime\",\"name\":\"r\",\"start\":2,\"end\":3,\"threadId\":0,\"processId\":2}\n",
       "second processId"},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(Cupti(c.text, &error).has_value()) << c.text;
    EXPECT_NE(error.find(c.needle), std::string::npos) << error << "\n" << c.text;
  }
}

// ---------------------------------------------------------------------------
// Chrome trace round trip
// ---------------------------------------------------------------------------

std::optional<Trace> Chrome(const std::string& text, std::string* error = nullptr,
                            ChromeImportStats* stats = nullptr) {
  std::stringstream in(text);
  return ImportChromeTrace(in, error, stats);
}

std::string Dump(const Trace& trace) {
  std::stringstream out;
  WriteTrace(trace, out);
  return out.str();
}

// Every event kind, every lossy-prone field: sync target streams, comm
// kinds, memcpy kinds, markers whose names contain '/', gradients, metadata.
Trace FullCoverageTrace() {
  Trace t;
  t.set_model_name("TinyMLP");
  t.set_config("batch=8 iterations=1");
  GradientInfo g;
  g.layer_id = 3;
  g.bytes = 65536;
  g.bucket_id = 1;
  t.AddGradientInfo(g);

  TraceEvent marker;
  marker.kind = EventKind::kLayerMarker;
  marker.name = "fc1/relu";  // '/' in the name must survive the instant split
  marker.layer_id = 3;
  marker.phase = Phase::kForward;
  marker.marker_begin = true;
  marker.start = 100;
  marker.thread_id = 0;
  t.Add(marker);

  TraceEvent load;
  load.kind = EventKind::kDataLoad;
  load.name = "batch_0";
  load.phase = Phase::kDataLoad;
  load.start = 0;
  load.duration = 90;
  load.thread_id = 2;
  t.Add(load);

  TraceEvent launch;
  launch.kind = EventKind::kRuntimeApi;
  launch.api = ApiKind::kLaunchKernel;
  launch.name = "cudaLaunchKernel";
  launch.start = 200;
  launch.duration = 50;
  launch.thread_id = 0;
  launch.correlation_id = 42;
  launch.layer_id = 3;
  launch.phase = Phase::kForward;
  t.Add(launch);

  TraceEvent sync;
  sync.kind = EventKind::kRuntimeApi;
  sync.api = ApiKind::kStreamSynchronize;
  sync.name = "cudaStreamSynchronize";
  sync.start = 300;
  sync.duration = 400;
  sync.thread_id = 0;
  sync.stream_id = 7;  // the target stream the graph builder needs
  t.Add(sync);

  TraceEvent kernel;
  kernel.kind = EventKind::kKernel;
  kernel.name = "gemm";
  kernel.start = 260;
  kernel.duration = 400;
  kernel.stream_id = 7;
  kernel.correlation_id = 42;
  kernel.layer_id = 3;
  kernel.phase = Phase::kForward;
  t.Add(kernel);

  TraceEvent copy;
  copy.kind = EventKind::kMemcpy;
  copy.name = "memcpyDtoH";
  copy.memcpy_kind = MemcpyKind::kDeviceToHost;
  copy.start = 700;
  copy.duration = 120;
  copy.stream_id = 7;
  copy.bytes = 4096;
  t.Add(copy);

  TraceEvent comm;
  comm.kind = EventKind::kCommunication;
  comm.name = "allReduce";
  comm.comm_kind = CommKind::kAllReduce;
  comm.start = 900;
  comm.duration = 2000;
  comm.channel_id = 1;
  comm.bytes = 65536;
  comm.phase = Phase::kWeightUpdate;
  t.Add(comm);
  return t;
}

TEST(ChromeImport, RoundTripsEveryEventKindByteExactly) {
  const Trace original = FullCoverageTrace();
  std::stringstream chrome;
  WriteChromeTrace(original, chrome);
  std::string error;
  ChromeImportStats stats;
  const std::optional<Trace> imported = Chrome(chrome.str(), &error, &stats);
  ASSERT_TRUE(imported.has_value()) << error;
  EXPECT_EQ(Dump(*imported), Dump(original));
  EXPECT_EQ(stats.events, original.size());
  EXPECT_EQ(stats.gradients, 1u);
}

// End-to-end with the real collector: the model-zoo trace survives
// ddtrace -> chrome -> import with byte identity.
TEST(ChromeImport, RoundTripsCollectedModelZooTrace) {
  const Trace original = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp), 1);
  ASSERT_GT(original.size(), 0u);
  std::stringstream chrome;
  WriteChromeTrace(original, chrome);
  std::string error;
  const std::optional<Trace> imported = Chrome(chrome.str(), &error);
  ASSERT_TRUE(imported.has_value()) << error;
  EXPECT_EQ(Dump(*imported), Dump(original));
  EXPECT_TRUE(imported->Validate().ok());
}

TEST(ChromeImport, SkipsForeignMetadataRows) {
  ChromeImportStats stats;
  const std::optional<Trace> trace = Chrome(
      R"([{"name":"process_name","ph":"M","pid":1,"args":{"name":"python"}},)"
      R"({"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"CPU thread 0"}}])",
      nullptr, &stats);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->size(), 0u);
  EXPECT_EQ(stats.skipped_rows, 2u);
}

TEST(ChromeImport, RejectsHostileInputWithPositionedErrors) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"", "unexpected end of input"},
      {"[", "unexpected end of input"},
      {R"([{"name":"x","ph":"X","cat":"Kernel","tid":1000,"ts":1.0)", "unexpected end of input"},
      {R"({"name":"x"})", "must be an array"},
      {R"([42])", "must be an object"},
      {R"([{"name":"x","ph":"X","cat":"Kernel","tid":1000,"ts":1.0,"dur":1.0,"args":{}}] trailing)",
       "trailing"},
      {R"([{"ph":"B","name":"x"}])", "unsupported ph"},
      {R"([{"name":"x","cat":"Kernel","tid":1000,"ts":1.0,"dur":1.0}])", "missing \"ph\""},
      {R"([{"ph":"X","name":"x","cat":"Mystery","tid":1000,"ts":1.0,"dur":1.0}])", "unknown cat"},
      {R"([{"ph":"X","name":"x","cat":"Kernel","tid":3,"ts":1.0,"dur":1.0}])", "GPU row tid"},
      {R"([{"ph":"X","name":"x","cat":"RuntimeApi","tid":-2,"ts":1.0,"dur":1.0}])", "CPU row tid"},
      {R"([{"ph":"X","name":"x","cat":"Kernel","tid":1000,"ts":-5.0,"dur":1.0}])", "negative"},
      {R"([{"ph":"X","name":"x","cat":"Kernel","tid":1000,"ts":1.0,"dur":1.0,"args":{"corr":1.5}}])",
       "\"corr\""},
      {R"([{"ph":"X","name":"x","cat":"Kernel","tid":1000,"ts":1.0,"dur":1.0,"args":{"corr":-2}}])",
       "negative args.corr"},
      {R"([{"ph":"X","name":"x","cat":"Kernel","tid":1000,"ts":1.0,"dur":1.0,"args":{"api":"cudaFree"}}])",
       "args.api"},
      {R"([{"ph":"X","name":"x","cat":"Kernel","tid":1000,"ts":1.0,"dur":1.0,"args":{"nest":{}}}])",
       "args values must be scalars"},
      {R"([{"ph":"i","name":"nomarker","tid":0,"ts":1.0}])", "<name>/<phase>/<begin|end>"},
      {R"([{"ph":"i","name":"l/forward/maybe","tid":0,"ts":1.0}])", "/begin or /end"},
      {R"([{"ph":"i","name":"l/sideways/begin","tid":0,"ts":1.0}])", "unknown marker phase"},
      {R"([{"ph":"M","name":"daydream_gradient","pid":1,"args":{"layer":0}}])",
       "layer/bytes/bucket"},
      {R"([{"ph":"X","name":"x","cat":"Kernel","tid":1e2,"ts":1.0,"dur":1.0}])", "\"tid\""},
  };
  for (const auto& c : cases) {
    std::string error;
    EXPECT_FALSE(Chrome(c.text, &error).has_value()) << c.text;
    EXPECT_NE(error.find(c.needle), std::string::npos) << error << "\n" << c.text;
  }
}

TEST(ChromeImport, TimestampsSurvivePastDoublePrecision) {
  // 2^53 ns is ~104.6 days; CUPTI epoch timestamps live out there. %.3f µs
  // keeps ns exactness and the importer must decode it without a double.
  Trace t;
  TraceEvent k;
  k.kind = EventKind::kKernel;
  k.name = "late";
  k.start = INT64_C(9007199254740993);  // 2^53 + 1
  k.duration = 1;
  k.stream_id = 0;
  t.Add(k);
  std::stringstream chrome;
  WriteChromeTrace(t, chrome);
  std::string error;
  const std::optional<Trace> imported = Chrome(chrome.str(), &error);
  ASSERT_TRUE(imported.has_value()) << error;
  EXPECT_EQ(imported->events()[0].start, INT64_C(9007199254740993));
  EXPECT_EQ(imported->events()[0].duration, 1);
}

// ---------------------------------------------------------------------------
// Format dispatch
// ---------------------------------------------------------------------------

TEST(TraceFormat, ParsesNamesCaseInsensitively) {
  EXPECT_EQ(ParseTraceFormat("ddtrace"), TraceFormat::kDdtrace);
  EXPECT_EQ(ParseTraceFormat("CUPTI"), TraceFormat::kCupti);
  EXPECT_EQ(ParseTraceFormat("Chrome"), TraceFormat::kChrome);
  EXPECT_FALSE(ParseTraceFormat("nvprof").has_value());
  EXPECT_FALSE(ParseTraceFormat("").has_value());
  EXPECT_STREQ(ToString(TraceFormat::kCupti), "cupti");
}

TEST(TraceFormat, ReadTraceFileAsDispatches) {
  const std::string dir = ::testing::TempDir();
  const Trace original = FullCoverageTrace();
  const std::string ddtrace_path = dir + "/roundtrip.ddtrace";
  const std::string chrome_path = dir + "/roundtrip.chrome.json";
  ASSERT_TRUE(WriteTraceFile(original, ddtrace_path));
  ASSERT_TRUE(WriteChromeTraceFile(original, chrome_path));

  std::string error;
  const std::optional<Trace> native = ReadTraceFileAs(ddtrace_path, TraceFormat::kDdtrace, &error);
  ASSERT_TRUE(native.has_value()) << error;
  const std::optional<Trace> chrome = ReadTraceFileAs(chrome_path, TraceFormat::kChrome, &error);
  ASSERT_TRUE(chrome.has_value()) << error;
  EXPECT_EQ(Dump(*native), Dump(original));
  EXPECT_EQ(Dump(*chrome), Dump(original));

  EXPECT_FALSE(ReadTraceFileAs(chrome_path, TraceFormat::kCupti, &error).has_value());
  EXPECT_FALSE(ReadTraceFileAs(dir + "/missing.ddtrace", TraceFormat::kChrome, &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fuzz corpus: every committed hostile input must be rejected or parsed —
// never a crash, hang, or sanitizer report. Both importers eat every file
// regardless of which format the sample was written against.
// ---------------------------------------------------------------------------

TEST(FuzzCorpus, ImportersSurviveEveryCorpusFile) {
  const std::filesystem::path dir(DAYDREAM_FUZZ_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    ++files;
    const std::string path = entry.path().string();
    {
      std::ifstream in(path, std::ios::binary);
      std::string error;
      ImportCuptiTrace(in, &error);
    }
    {
      std::ifstream in(path, std::ios::binary);
      std::string error;
      ImportChromeTrace(in, &error);
    }
  }
  EXPECT_GE(files, 10u) << "fuzz corpus went missing";
}

}  // namespace
}  // namespace daydream

// Golden end-to-end fixtures: committed TinyMLP traces plus the exact
// `daydream predict --json` / `daydream sweep --json` outputs they must
// produce. The test shells out to the real CLI binary (path injected by CMake
// as DAYDREAM_CLI_PATH) so the whole pipeline — trace IO, graph construction,
// what-if transforms, both sweep engines, JSON serialization — is covered
// byte-for-byte. Everything downstream of the committed trace is integer
// simulation plus fixed-format printf, so the outputs are stable across
// machines.
//
// To regenerate the fixtures after an intentional behavior change:
//
//   cmake --build build -j --target golden_test daydream_cli
//   DAYDREAM_UPDATE_GOLDEN=1 ./build/golden_test
//   git diff tests/golden/   # review, then commit
//
// Update mode re-collects the traces in-process (the executor's RNG is fully
// self-contained, so collection is deterministic) and rewrites the expected
// JSON from the CLI's fresh output.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/ground_truth.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/trace_io.h"

namespace daydream {
namespace {

#ifndef DAYDREAM_CLI_PATH
#error "CMake must define DAYDREAM_CLI_PATH (see golden_test wiring)"
#endif
#ifndef DAYDREAM_GOLDEN_DIR
#error "CMake must define DAYDREAM_GOLDEN_DIR"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(DAYDREAM_GOLDEN_DIR) + "/" + name;
}

bool UpdateMode() { return std::getenv("DAYDREAM_UPDATE_GOLDEN") != nullptr; }

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path
                         << " (regenerate with DAYDREAM_UPDATE_GOLDEN=1 ./golden_test)";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs the CLI, asserting exit code 0; returns stdout.
std::string RunCli(const std::string& args) {
  const std::string out_path = ::testing::TempDir() + "golden_cli_stdout.txt";
  const std::string command =
      std::string(DAYDREAM_CLI_PATH) + " " + args + " > " + out_path + " 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_EQ(status, 0) << command << "\n" << ReadFileOrDie(out_path);
  return ReadFileOrDie(out_path);
}

struct GoldenCase {
  const char* trace;     // committed .ddtrace fixture
  const char* expected;  // committed expected JSON
  const char* args;      // CLI flags after --trace <fixture> --json <tmp>
  const char* command;   // predict | sweep
};

const std::vector<GoldenCase>& Cases() {
  static const std::vector<GoldenCase>* cases = new std::vector<GoldenCase>{
      {"tinymlp_i1.ddtrace", "tinymlp_i1_predict_amp.json", "--what-if amp", "predict"},
      {"tinymlp_i1.ddtrace", "tinymlp_i1_predict_pipeline.json",
       "--what-if pipeline --pipeline-stages 2 --microbatches 4 --schedule 1f1b", "predict"},
      {"tinymlp_i2.ddtrace", "tinymlp_i2_sweep.json",
       "--cluster 2x2,4x2 --gbps 10 --pipeline-stages 2,4 --microbatches 4 --schedule 1f1b",
       "sweep"},
  };
  return *cases;
}

// Update mode entry: regenerate every fixture, then fall through to the
// normal assertions (which must now trivially pass).
void MaybeRegenerate() {
  static bool done = false;
  if (done || !UpdateMode()) {
    return;
  }
  done = true;
  const Trace i1 = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp), /*iterations=*/1);
  const Trace i2 = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp), /*iterations=*/2);
  ASSERT_TRUE(WriteTraceFile(i1, GoldenPath("tinymlp_i1.ddtrace")));
  ASSERT_TRUE(WriteTraceFile(i2, GoldenPath("tinymlp_i2.ddtrace")));
  for (const GoldenCase& c : Cases()) {
    RunCli(std::string(c.command) + " --trace " + GoldenPath(c.trace) + " --json " +
           GoldenPath(c.expected) + " " + c.args);
  }
}

TEST(GoldenFixtures, CommittedTracesLoadAndValidate) {
  MaybeRegenerate();
  for (const char* name : {"tinymlp_i1.ddtrace", "tinymlp_i2.ddtrace"}) {
    const std::optional<Trace> trace = ReadTraceFile(GoldenPath(name));
    ASSERT_TRUE(trace.has_value()) << name;
    EXPECT_EQ(trace->model_name(), "TinyMLP");
    EXPECT_FALSE(trace->empty());
    EXPECT_FALSE(trace->gradients().empty());
    const TraceValidation validation = trace->Validate();
    EXPECT_TRUE(validation.ok()) << name << ": " << validation.Summary();
  }
}

TEST(GoldenFixtures, CliOutputMatchesCommittedJson) {
  MaybeRegenerate();
  for (const GoldenCase& c : Cases()) {
    const std::string fresh_path = ::testing::TempDir() + "golden_fresh.json";
    RunCli(std::string(c.command) + " --trace " + GoldenPath(c.trace) + " --json " + fresh_path +
           " " + c.args);
    const std::string fresh = ReadFileOrDie(fresh_path);
    const std::string expected = ReadFileOrDie(GoldenPath(c.expected));
    EXPECT_EQ(fresh, expected)
        << c.expected << " drifted from the CLI's output for `" << c.command << " " << c.args
        << "`.\nIf the change is intentional, regenerate with:\n"
        << "  DAYDREAM_UPDATE_GOLDEN=1 ./golden_test\nand commit the tests/golden/ diff.";
  }
}

// Trace-import acceptance: exporting the committed fixture to Chrome format
// and importing it back (both through `daydream import` and through
// `predict --format chrome` directly) must leave the analysis output
// byte-identical — the Chrome round trip is lossless end to end.
TEST(GoldenFixtures, ChromeRoundTripLeavesPredictOutputByteIdentical) {
  MaybeRegenerate();
  const std::optional<Trace> trace = ReadTraceFile(GoldenPath("tinymlp_i1.ddtrace"));
  ASSERT_TRUE(trace.has_value());
  const std::string chrome_path = ::testing::TempDir() + "golden_roundtrip.chrome.json";
  ASSERT_TRUE(WriteChromeTraceFile(*trace, chrome_path));

  const std::string expected = ReadFileOrDie(GoldenPath("tinymlp_i1_predict_amp.json"));

  // Route 1: explicit conversion through `daydream import`.
  const std::string ddtrace_path = ::testing::TempDir() + "golden_roundtrip.ddtrace";
  RunCli("import --in " + chrome_path + " --format chrome --out " + ddtrace_path);
  const std::string via_import = ::testing::TempDir() + "golden_roundtrip_import.json";
  RunCli("predict --trace " + ddtrace_path + " --json " + via_import + " --what-if amp");
  EXPECT_EQ(ReadFileOrDie(via_import), expected)
      << "chrome export -> `daydream import` -> predict drifted from the committed output";

  // Route 2: the analysis verb ingesting the Chrome file directly.
  const std::string via_format = ::testing::TempDir() + "golden_roundtrip_format.json";
  RunCli("predict --trace " + chrome_path + " --format chrome --json " + via_format +
         " --what-if amp");
  EXPECT_EQ(ReadFileOrDie(via_format), expected)
      << "`predict --format chrome` drifted from the committed output";
}

// The sweep fixture must rank the pipeline cases alongside the standard
// what-ifs — the end-to-end acceptance shape for `--pipeline-stages 2,4`.
TEST(GoldenFixtures, SweepFixtureCoversPipelineAndClusterCases) {
  MaybeRegenerate();
  const std::string sweep = ReadFileOrDie(GoldenPath("tinymlp_i2_sweep.json"));
  EXPECT_NE(sweep.find("\"pipeline 2st/4mb 1f1b\""), std::string::npos);
  EXPECT_NE(sweep.find("\"pipeline 4st/4mb 1f1b\""), std::string::npos);
  EXPECT_NE(sweep.find("distributed 2x2"), std::string::npos);
  EXPECT_NE(sweep.find("\"amp\""), std::string::npos);
  EXPECT_NE(sweep.find("\"baseline_ms\""), std::string::npos);
}

}  // namespace
}  // namespace daydream

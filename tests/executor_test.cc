#include <gtest/gtest.h>

#include "src/runtime/ground_truth.h"
#include "src/util/string_util.h"

namespace daydream {
namespace {

std::string ParamName(const ::testing::TestParamInfo<ModelId>& info) {
  std::string name = ModelName(info.param);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

class ExecutorModelTest : public ::testing::TestWithParam<ModelId> {};
INSTANTIATE_TEST_SUITE_P(ModelZoo, ExecutorModelTest, ::testing::ValuesIn(PaperModels()),
                         ParamName);

TEST_P(ExecutorModelTest, BaselineTraceIsValid) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const TraceValidation v = trace.Validate();
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_GT(trace.size(), 100u);
}

TEST_P(ExecutorModelTest, Deterministic) {
  const RunConfig config = DefaultRunConfig(GetParam());
  const ExecutionResult a = RunGroundTruth(config);
  const ExecutionResult b = RunGroundTruth(config);
  EXPECT_EQ(a.IterationTime(), b.IterationTime());
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.events()[i].start, b.trace.events()[i].start);
    EXPECT_EQ(a.trace.events()[i].duration, b.trace.events()[i].duration);
  }
}

TEST_P(ExecutorModelTest, IterationTimePlausible) {
  // Training iterations of these models on a 2080 Ti are O(100 ms) — not
  // microseconds, not minutes.
  const TimeNs t = RunGroundTruth(DefaultRunConfig(GetParam())).IterationTime();
  EXPECT_GT(t, Ms(20));
  EXPECT_LT(t, Ms(2000));
}

TEST_P(ExecutorModelTest, HasAllPhases) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  int fwd = 0;
  int bwd = 0;
  int wu = 0;
  for (const TraceEvent& e : trace.events()) {
    if (!e.is_gpu()) {
      continue;
    }
    fwd += e.phase == Phase::kForward ? 1 : 0;
    bwd += e.phase == Phase::kBackward ? 1 : 0;
    wu += e.phase == Phase::kWeightUpdate ? 1 : 0;
  }
  EXPECT_GT(fwd, 0);
  EXPECT_GT(bwd, 0);
  EXPECT_GT(wu, 0);
  EXPECT_GT(bwd, fwd);  // backward launches more kernels than forward
}

TEST_P(ExecutorModelTest, GradientInstrumentationAttached) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  EXPECT_FALSE(trace.gradients().empty());
  int64_t total = 0;
  for (const GradientInfo& g : trace.gradients()) {
    EXPECT_GE(g.bucket_id, 0);
    total += g.bytes;
  }
  const ModelGraph model = BuildModel(GetParam());
  EXPECT_EQ(total, model.TotalParamBytes());
}

TEST_P(ExecutorModelTest, AmpIsFaster) {
  RunConfig config = DefaultRunConfig(GetParam());
  const TimeNs fp32 = RunGroundTruth(config).IterationTime();
  config.gt.amp = true;
  const TimeNs fp16 = RunGroundTruth(config).IterationTime();
  EXPECT_LT(fp16, fp32);
}

TEST(Executor, MultiIterationBoundaries) {
  const RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  const ExecutionResult r = RunGroundTruth(config, /*iterations=*/3);
  ASSERT_EQ(r.iteration_ends.size(), 3u);
  EXPECT_LT(r.iteration_ends[0], r.iteration_ends[1]);
  EXPECT_LT(r.iteration_ends[1], r.iteration_ends[2]);
  // Steady-state iterations have identical structure => nearly equal spans.
  const TimeNs span1 = r.iteration_ends[1] - r.iteration_ends[0];
  const TimeNs span2 = r.iteration_ends[2] - r.iteration_ends[1];
  EXPECT_NEAR(static_cast<double>(span1), static_cast<double>(span2), 0.01 * span1);
}

TEST(Executor, BlockingLossReadbackCreatesSyncPoint) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  // The loss.item() DtoH API must end when its copy ends (CPU blocked).
  const TraceEvent* api = nullptr;
  const TraceEvent* copy = nullptr;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == EventKind::kRuntimeApi && StrContains(e.name, "loss_item")) {
      api = &e;
    }
    if (e.kind == EventKind::kMemcpy && StrContains(e.name, "loss_item")) {
      copy = &e;
    }
  }
  ASSERT_NE(api, nullptr);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(api->end(), copy->end());
  EXPECT_EQ(copy->memcpy_kind, MemcpyKind::kDeviceToHost);
}

TEST(Executor, DeviceSyncWaitsForGpu) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  TimeNs sync_end = 0;
  TimeNs last_gpu_end = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.api == ApiKind::kDeviceSynchronize) {
      sync_end = std::max(sync_end, e.end());
    }
    if (e.is_gpu()) {
      last_gpu_end = std::max(last_gpu_end, e.end());
    }
  }
  EXPECT_GE(sync_end, last_gpu_end);
}

TEST(Executor, KernelsStartAfterTheirLaunch) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kGnmt));
  std::map<int64_t, TimeNs> launch_end;
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == EventKind::kRuntimeApi && e.api == ApiKind::kLaunchKernel) {
      launch_end[e.correlation_id] = e.end();
    }
  }
  for (const TraceEvent& e : trace.events()) {
    if (e.kind == EventKind::kKernel) {
      auto it = launch_end.find(e.correlation_id);
      ASSERT_NE(it, launch_end.end()) << e.name;
      EXPECT_GE(e.start, it->second) << e.name;
    }
  }
}

TEST(Executor, AmpSpeedupFactors) {
  RunConfig config = DefaultRunConfig(ModelId::kBertLarge);
  config.gt.amp = true;
  Executor executor(config);
  Rng rng(1);

  KernelSpec wu;
  wu.phase = Phase::kWeightUpdate;
  wu.cls = KernelClass::kElementwise;
  EXPECT_NEAR(executor.AmpSpeedupFactor(wu, &rng), 1.15, 1e-9);

  KernelSpec big_gemm;
  big_gemm.cls = KernelClass::kGemm;
  big_gemm.flops = 20'000'000'000;
  big_gemm.phase = Phase::kForward;
  KernelSpec small_gemm = big_gemm;
  small_gemm.flops = 100'000'000;
  double big_avg = 0;
  double small_avg = 0;
  for (int i = 0; i < 200; ++i) {
    big_avg += executor.AmpSpeedupFactor(big_gemm, &rng);
    small_avg += executor.AmpSpeedupFactor(small_gemm, &rng);
  }
  EXPECT_GT(big_avg / 200, 2.8);   // near the advertised 3x
  EXPECT_LT(small_avg / 200, 2.8); // small gemms cannot fill tensor cores
}

TEST(Executor, FusedAdamCollapsesWeightUpdate) {
  RunConfig config = DefaultRunConfig(ModelId::kBertBase);
  const Trace baseline = RunGroundTruth(config).trace;
  config.gt.fused_adam = true;
  const Trace fused = RunGroundTruth(config).trace;
  auto count_wu = [](const Trace& t) {
    int n = 0;
    for (const TraceEvent& e : t.events()) {
      n += (e.kind == EventKind::kKernel && e.phase == Phase::kWeightUpdate) ? 1 : 0;
    }
    return n;
  };
  EXPECT_GT(count_wu(baseline), 2000);  // §6.3: thousands of pointwise kernels
  EXPECT_EQ(count_wu(fused), 1);        // a single multi-tensor kernel
}

TEST(Executor, RestructuredBnRemovesPostBnRelus) {
  RunConfig config = DefaultRunConfig(ModelId::kDenseNet121);
  const Trace baseline = RunGroundTruth(config).trace;
  config.gt.restructured_bn = true;
  const Trace rbn = RunGroundTruth(config).trace;
  auto count_relu = [](const Trace& t) {
    int n = 0;
    for (const TraceEvent& e : t.events()) {
      n += (e.kind == EventKind::kKernel && StrContains(e.name, "relu")) ? 1 : 0;
    }
    return n;
  };
  EXPECT_GT(count_relu(baseline), 0);
  EXPECT_EQ(count_relu(rbn), 0);
}

// ---- distributed ground truth ----

TEST(ExecutorDistributed, AllReduceRecordsOrdering) {
  RunConfig config = DefaultRunConfig(ModelId::kGnmt);
  config.comm = CommBackend::kNccl;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  const ExecutionResult r = RunGroundTruth(config);
  ASSERT_FALSE(r.allreduce_calls.empty());
  for (const AllReduceRecord& rec : r.allreduce_calls) {
    EXPECT_GT(rec.theoretical, 0);
    EXPECT_GT(rec.optimal, rec.theoretical);
    EXPECT_GE(rec.actual, static_cast<TimeNs>(rec.optimal * 0.99));
  }
}

TEST(ExecutorDistributed, OverlappedCallsSlower) {
  RunConfig config = DefaultRunConfig(ModelId::kGnmt);
  config.comm = CommBackend::kNccl;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  config.cluster.network.bandwidth_gbps = 40.0;
  const ExecutionResult r = RunGroundTruth(config);
  double overlapped_ratio = 0;
  int overlapped = 0;
  for (const AllReduceRecord& rec : r.allreduce_calls) {
    if (rec.overlapped) {
      overlapped_ratio += static_cast<double>(rec.actual) / rec.optimal;
      ++overlapped;
    }
  }
  ASSERT_GT(overlapped, 0);
  EXPECT_GT(overlapped_ratio / overlapped, 1.1);  // interference visible
}

TEST(ExecutorDistributed, SyncVariantRemovesInterference) {
  RunConfig config = DefaultRunConfig(ModelId::kGnmt);
  config.comm = CommBackend::kNccl;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  config.cluster.network.bandwidth_gbps = 40.0;
  const ExecutionResult base = RunGroundTruth(config);
  config.gt.sync_before_allreduce = true;
  const ExecutionResult sync = RunGroundTruth(config);
  ASSERT_EQ(base.allreduce_calls.size(), sync.allreduce_calls.size());
  TimeNs base_total = 0;
  TimeNs sync_total = 0;
  for (size_t i = 0; i < base.allreduce_calls.size(); ++i) {
    base_total += base.allreduce_calls[i].actual;
    sync_total += sync.allreduce_calls[i].actual;
  }
  EXPECT_LT(sync_total, base_total);
}

TEST(ExecutorDistributed, MoreWorkersSlowerIteration) {
  RunConfig config = DefaultRunConfig(ModelId::kVgg19);
  config.comm = CommBackend::kNccl;
  config.cluster.network.bandwidth_gbps = 10.0;
  config.cluster.gpus_per_machine = 1;
  config.cluster.machines = 2;
  const TimeNs two = RunGroundTruth(config).IterationTime();
  config.cluster.machines = 4;
  const TimeNs four = RunGroundTruth(config).IterationTime();
  EXPECT_GT(four, two);  // VGG is communication-bound at 10 Gbps
}

// ---- parameter-server ground truth ----

TEST(ExecutorPs, PullWaitsAppearInSteadyState) {
  RunConfig config = DefaultRunConfig(ModelId::kVgg19);
  config.gpu = GpuSpec::P4000();
  config.framework = FrameworkProfile::Mxnet();
  config.batch = 16;
  config.comm = CommBackend::kPs;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  config.cluster.network.bandwidth_gbps = 5.0;
  const ExecutionResult r = RunGroundTruth(config, /*iterations=*/3);
  int pushes = 0;
  int pulls = 0;
  TimeNs wait_time = 0;
  for (const TraceEvent& e : r.trace.events()) {
    pushes += e.comm_kind == CommKind::kPush ? 1 : 0;
    pulls += e.comm_kind == CommKind::kPull ? 1 : 0;
    if (StrContains(e.name, "kvstore_wait")) {
      wait_time += e.duration;
    }
  }
  EXPECT_GT(pushes, 0);
  EXPECT_EQ(pushes, pulls);
  EXPECT_GT(wait_time, Ms(10));  // VGG at 5 Gbps is communication-bound
}

TEST(ExecutorPs, P3FasterThanBaselinePsWhenCommBound) {
  RunConfig config = DefaultRunConfig(ModelId::kVgg19);
  config.gpu = GpuSpec::P4000();
  config.framework = FrameworkProfile::Mxnet();
  config.batch = 16;
  config.comm = CommBackend::kPs;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  config.cluster.network.bandwidth_gbps = 5.0;
  const TimeNs baseline = RunGroundTruth(config, 4).IterationTime();
  config.gt.p3 = true;
  const TimeNs p3 = RunGroundTruth(config, 4).IterationTime();
  EXPECT_LT(p3, baseline);
}

}  // namespace
}  // namespace daydream

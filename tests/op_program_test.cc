#include <gtest/gtest.h>

#include "src/comm/bucketing.h"
#include "src/comm/param_server.h"
#include "src/models/model_zoo.h"
#include "src/runtime/op_program.h"

#include <map>
#include "src/util/string_util.h"

namespace daydream {
namespace {

struct Built {
  ModelGraph model;
  OpProgram program;
};

Built Build(RunConfig config, int iterations = 1) {
  if (config.batch == 0) {
    config.batch = DefaultBatch(config.model);
  }
  ModelGraph model = BuildModel(config.model, config.batch);
  std::vector<GradientBucket> buckets = ComputeBuckets(model);
  std::vector<PsSlice> slices;
  if (config.comm == CommBackend::kPs) {
    slices = config.gt.p3 ? P3Slices(model, config.cluster.machines)
                          : WholeTensorSlices(model, config.cluster.machines);
  }
  OpProgram program = BuildTrainingProgram(model, config, iterations, buckets, slices);
  return {std::move(model), std::move(program)};
}

int Count(const OpProgram& p, OpKind kind) {
  int n = 0;
  for (const Op& op : p.main_ops) {
    n += op.kind == kind ? 1 : 0;
  }
  return n;
}

TEST(OpProgram, OneLoaderTaskPerIteration) {
  const Built b = Build(DefaultRunConfig(ModelId::kResNet50), 3);
  EXPECT_EQ(b.program.loader_ops.size(), 3u);
  EXPECT_EQ(Count(b.program, OpKind::kIterationEnd), 3);
  EXPECT_EQ(Count(b.program, OpKind::kDeviceSync), 3);
}

TEST(OpProgram, StructureOfOneIteration) {
  const Built b = Build(DefaultRunConfig(ModelId::kResNet50));
  EXPECT_EQ(Count(b.program, OpKind::kMemcpyHtoD), 1);  // input upload
  EXPECT_EQ(Count(b.program, OpKind::kMemcpyDtoH), 1);  // loss read-back (SGD: no clip)
  EXPECT_GT(Count(b.program, OpKind::kLaunchKernel), 500);
  EXPECT_EQ(Count(b.program, OpKind::kAllReduce), 0);  // single GPU
}

TEST(OpProgram, MarkersBracketEveryLayerPhase) {
  const Built b = Build(DefaultRunConfig(ModelId::kVgg19));
  std::map<std::pair<int, int>, int> depth;
  for (const Op& op : b.program.main_ops) {
    if (op.kind != OpKind::kMarker) {
      continue;
    }
    auto& d = depth[{op.layer_id, static_cast<int>(op.phase)}];
    d += op.marker_begin ? 1 : -1;
    EXPECT_GE(d, 0);
    EXPECT_LE(d, 1);
  }
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0);
  }
}

TEST(OpProgram, LaunchesCarryLayerAndPhase) {
  const Built b = Build(DefaultRunConfig(ModelId::kResNet50));
  int forward = 0;
  int backward = 0;
  int weight_update = 0;
  for (const Op& op : b.program.main_ops) {
    if (op.kind != OpKind::kLaunchKernel) {
      continue;
    }
    switch (op.kernel.phase) {
      case Phase::kForward:
        ++forward;
        break;
      case Phase::kBackward:
        ++backward;
        break;
      case Phase::kWeightUpdate:
        ++weight_update;
        break;
      default:
        break;
    }
  }
  EXPECT_GT(forward, 100);
  EXPECT_GT(backward, forward);
  // SGD momentum: 2 kernels per parameter tensor.
  EXPECT_EQ(weight_update, 2 * b.model.TotalParamTensors());
}

TEST(OpProgram, AdamModelsGetGradClipping) {
  RunConfig config = DefaultRunConfig(ModelId::kBertBase);
  ASSERT_TRUE(config.grad_clipping);
  const Built b = Build(config);
  int norm_kernels = 0;
  int readbacks = 0;
  for (const Op& op : b.program.main_ops) {
    if (op.kind == OpKind::kLaunchKernel && StrContains(op.kernel.name, "grad_norm")) {
      ++norm_kernels;
    }
    if (op.kind == OpKind::kMemcpyDtoH) {
      ++readbacks;
    }
  }
  EXPECT_EQ(norm_kernels, b.model.TotalParamTensors());
  EXPECT_EQ(readbacks, 2);  // loss.item() + grad_norm.item()
}

TEST(OpProgram, FusedAdamEmitsSingleUpdateLaunch) {
  RunConfig config = DefaultRunConfig(ModelId::kBertBase);
  config.gt.fused_adam = true;
  const Built b = Build(config);
  int wu_launches = 0;
  for (const Op& op : b.program.main_ops) {
    if (op.kind == OpKind::kLaunchKernel && op.kernel.phase == Phase::kWeightUpdate) {
      ++wu_launches;
      EXPECT_EQ(op.kernel.name, "multi_tensor_apply_adam_fused");
    }
  }
  EXPECT_EQ(wu_launches, 1);
}

TEST(OpProgram, AmpAddsLossScalingOps) {
  RunConfig config = DefaultRunConfig(ModelId::kBertBase);
  config.gt.amp = true;
  const Built b = Build(config);
  int unscale = 0;
  for (const Op& op : b.program.main_ops) {
    if (op.kind == OpKind::kLaunchKernel && StrContains(op.kernel.name, "unscale")) {
      ++unscale;
    }
  }
  EXPECT_EQ(unscale, 3);
  EXPECT_EQ(Count(b.program, OpKind::kMemcpyDtoH), 3);  // + overflow check
}

TEST(OpProgram, RbnSkipsPostBnRelusAndAddsOverheads) {
  RunConfig config = DefaultRunConfig(ModelId::kDenseNet121);
  const Built baseline = Build(config);
  config.gt.restructured_bn = true;
  const Built rbn = Build(config);
  auto count_named = [](const OpProgram& p, const char* needle) {
    int n = 0;
    for (const Op& op : p.main_ops) {
      if (op.kind == OpKind::kLaunchKernel && StrContains(op.kernel.name, needle)) {
        ++n;
      }
    }
    return n;
  };
  EXPECT_GT(count_named(baseline.program, "relu"), 0);
  EXPECT_EQ(count_named(rbn.program, "relu"), 0);
  EXPECT_GT(count_named(rbn.program, "_rbn"), 0);
  EXPECT_GT(Count(rbn.program, OpKind::kMallocLike), 100);  // per-BN workspace allocs
  EXPECT_EQ(Count(baseline.program, OpKind::kMallocLike), 0);
}

TEST(OpProgram, DdpEmitsOneAllReducePerBucketPlusSync) {
  RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  config.comm = CommBackend::kNccl;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  const Built b = Build(config);
  const std::vector<GradientBucket> buckets = ComputeBuckets(b.model);
  EXPECT_EQ(Count(b.program, OpKind::kAllReduce), static_cast<int>(buckets.size()));
  int nccl_syncs = 0;
  for (const Op& op : b.program.main_ops) {
    if (op.kind == OpKind::kStreamSync && op.stream == kNcclStream) {
      ++nccl_syncs;
    }
  }
  EXPECT_EQ(nccl_syncs, 1);
}

TEST(OpProgram, SyncVariantAddsPreReductionSyncs) {
  RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  config.comm = CommBackend::kNccl;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  config.gt.sync_before_allreduce = true;
  const Built b = Build(config);
  int compute_syncs = 0;
  for (const Op& op : b.program.main_ops) {
    if (op.kind == OpKind::kStreamSync && op.stream == kComputeStream) {
      ++compute_syncs;
    }
  }
  EXPECT_EQ(compute_syncs, Count(b.program, OpKind::kAllReduce));
}

TEST(OpProgram, PsModeDropsWeightUpdateAddsPushWait) {
  RunConfig config = DefaultRunConfig(ModelId::kVgg19);
  config.comm = CommBackend::kPs;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  const Built b = Build(config, 2);
  int wu_launches = 0;
  for (const Op& op : b.program.main_ops) {
    if (op.kind == OpKind::kLaunchKernel && op.kernel.phase == Phase::kWeightUpdate) {
      ++wu_launches;
    }
  }
  EXPECT_EQ(wu_launches, 0);  // the server owns the update
  int param_layers = 0;
  for (const Layer& l : b.model.layers()) {
    param_layers += l.has_params() ? 1 : 0;
  }
  EXPECT_EQ(Count(b.program, OpKind::kPsPush), 2 * param_layers);
  EXPECT_EQ(Count(b.program, OpKind::kPsWaitPull), 2 * param_layers);
}

TEST(OpProgram, InputBytesByModality) {
  const ModelGraph resnet = BuildModel(ModelId::kResNet50, 64);
  EXPECT_EQ(InputBytes(resnet), 64 * 3 * 224 * 224 * 4);
  const ModelGraph bert = BuildModel(ModelId::kBertBase, 8);
  EXPECT_EQ(InputBytes(bert), 8 * 384 * 8);  // token ids
  EXPECT_GT(DataLoadDuration(resnet), DataLoadDuration(bert));
}

}  // namespace
}  // namespace daydream

#include <gtest/gtest.h>

#include "src/kernels/cost_model.h"
#include "src/kernels/layer_kernels.h"
#include "src/models/model_zoo.h"
#include "src/util/string_util.h"

namespace daydream {
namespace {

KernelSpec Spec(KernelClass cls, int64_t flops, int64_t bytes) {
  KernelSpec k;
  k.name = "test";
  k.cls = cls;
  k.flops = flops;
  k.bytes = bytes;
  return k;
}

// ---- cost model ----

TEST(CostModel, FloorForTinyKernels) {
  CostModel cm(GpuSpec::Rtx2080Ti());
  EXPECT_GE(cm.KernelDuration(Spec(KernelClass::kElementwise, 1, 4), Precision::kFp32),
            CostModel::kKernelFloorNs);
}

TEST(CostModel, MonotonicInFlops) {
  CostModel cm(GpuSpec::Rtx2080Ti());
  const TimeNs small =
      cm.KernelDuration(Spec(KernelClass::kGemm, 10'000'000'000, 1 << 20), Precision::kFp32);
  const TimeNs big =
      cm.KernelDuration(Spec(KernelClass::kGemm, 20'000'000'000, 1 << 20), Precision::kFp32);
  EXPECT_GT(big, small);
}

TEST(CostModel, MonotonicInBytes) {
  CostModel cm(GpuSpec::Rtx2080Ti());
  const TimeNs small =
      cm.KernelDuration(Spec(KernelClass::kElementwise, 0, 100 << 20), Precision::kFp32);
  const TimeNs big =
      cm.KernelDuration(Spec(KernelClass::kElementwise, 0, 200 << 20), Precision::kFp32);
  EXPECT_GT(big, small);
}

TEST(CostModel, Fp16NeverSlower) {
  CostModel cm(GpuSpec::Rtx2080Ti());
  for (KernelClass cls : {KernelClass::kGemm, KernelClass::kConv, KernelClass::kElementwise,
                          KernelClass::kBatchNorm, KernelClass::kSoftmax}) {
    const KernelSpec k = Spec(cls, 8'000'000'000, 64 << 20);
    EXPECT_LE(cm.KernelDuration(k, Precision::kFp16), cm.KernelDuration(k, Precision::kFp32))
        << ToString(cls);
  }
}

TEST(CostModel, TensorCoresOnlyHelpComputeBound) {
  CostModel cm(GpuSpec::Rtx2080Ti());
  // A large compute-bound gemm gets close to 3x; a memory-bound elementwise
  // kernel only the 2x from halved traffic.
  const KernelSpec gemm = Spec(KernelClass::kGemm, 50'000'000'000, 8 << 20);
  const double gemm_ratio = static_cast<double>(cm.KernelDuration(gemm, Precision::kFp32)) /
                            cm.KernelDuration(gemm, Precision::kFp16);
  EXPECT_GT(gemm_ratio, 2.5);
  const KernelSpec ew = Spec(KernelClass::kElementwise, 0, 256 << 20);
  const double ew_ratio = static_cast<double>(cm.KernelDuration(ew, Precision::kFp32)) /
                          cm.KernelDuration(ew, Precision::kFp16);
  EXPECT_NEAR(ew_ratio, 2.0, 0.1);
}

TEST(CostModel, PascalHasNoTensorCoreBoost) {
  CostModel cm(GpuSpec::P4000());
  const KernelSpec gemm = Spec(KernelClass::kGemm, 50'000'000'000, 8 << 20);
  const double ratio = static_cast<double>(cm.KernelDuration(gemm, Precision::kFp32)) /
                       cm.KernelDuration(gemm, Precision::kFp16);
  EXPECT_LT(ratio, 1.3);  // only the memory-traffic halving remains
}

TEST(CostModel, SizeDependentEfficiency) {
  EXPECT_GT(CostModel::ComputeEfficiency(KernelClass::kGemm, 10'000'000'000),
            CostModel::ComputeEfficiency(KernelClass::kGemm, 100'000'000));
  EXPECT_GT(CostModel::ComputeEfficiency(KernelClass::kGemm, 1'000'000'000),
            CostModel::ComputeEfficiency(KernelClass::kGemm, 100'000'000));
}

TEST(CostModel, MemcpyScalesWithBytes) {
  CostModel cm(GpuSpec::Rtx2080Ti());
  EXPECT_GT(cm.MemcpyDuration(100 << 20), cm.MemcpyDuration(10 << 20));
  // 120 MB over ~12 GB/s PCIe is ~10 ms.
  EXPECT_NEAR(ToMs(cm.MemcpyDuration(120 * 1000 * 1000)), 10.0, 1.0);
}

TEST(CostModel, SlowerGpuIsSlower) {
  CostModel fast(GpuSpec::Rtx2080Ti());
  CostModel slow(GpuSpec::P4000());
  const KernelSpec k = Spec(KernelClass::kConv, 10'000'000'000, 32 << 20);
  EXPECT_GT(slow.KernelDuration(k, Precision::kFp32), fast.KernelDuration(k, Precision::kFp32));
}

// ---- layer expansion ----

TEST(LayerKernels, ConvExpansion) {
  const Layer conv = MakeConv2d("c", 8, 64, 56, 56, 64, 3, 1, 1);
  const LayerKernelSet set = ExpandLayer(conv);
  ASSERT_EQ(set.forward.size(), 1u);
  EXPECT_TRUE(StrContains(set.forward[0].name, "scudnn"));
  EXPECT_TRUE(StrContains(set.forward[0].name, "fprop"));
  ASSERT_EQ(set.backward.size(), 2u);  // dgrad + wgrad
  EXPECT_TRUE(StrContains(set.backward[0].name, "dgrad"));
  EXPECT_TRUE(StrContains(set.backward[1].name, "wgrad"));
}

TEST(LayerKernels, ConvWithBiasAddsKernels) {
  const Layer conv = MakeConv2d("c", 8, 64, 56, 56, 64, 3, 1, 1, /*bias=*/true);
  const LayerKernelSet set = ExpandLayer(conv);
  EXPECT_EQ(set.forward.size(), 2u);
  EXPECT_EQ(set.backward.size(), 3u);
}

TEST(LayerKernels, BatchNormExpansion) {
  const LayerKernelSet set = ExpandLayer(MakeBatchNorm("bn", 8, 64, 56, 56));
  ASSERT_EQ(set.forward.size(), 2u);
  EXPECT_TRUE(StrContains(set.forward[0].name, "batch_norm"));
  EXPECT_EQ(set.backward.size(), 2u);
}

TEST(LayerKernels, LinearUsesGemmNames) {
  const LayerKernelSet set = ExpandLayer(MakeLinear("fc", 8, 512, 512));
  EXPECT_TRUE(StrContains(set.forward[0].name, "sgemm"));
  // AMP's Select keys on these substrings (Algorithm 3).
  int gemms = 0;
  for (const KernelSpec& k : set.backward) {
    gemms += StrContains(k.name, "sgemm") ? 1 : 0;
  }
  EXPECT_EQ(gemms, 2);  // dgrad + wgrad
}

TEST(LayerKernels, LstmKernelCounts) {
  const Layer lstm = MakeLstm("l", 4, 10, 512, 512);
  const LayerKernelSet set = ExpandLayer(lstm);
  // fwd: 1 input gemm + per-step (recurrent gemm + cell) = 1 + 2*10.
  EXPECT_EQ(set.forward.size(), 1u + 2u * 10u);
  // bwd: per-step (cell bwd + recurrent dgrad) + input dgrad + 2 wgrads.
  EXPECT_EQ(set.backward.size(), 2u * 10u + 3u);
}

TEST(LayerKernels, BidirectionalLstmDoubles) {
  const Layer uni = MakeLstm("l", 4, 10, 512, 512, false);
  const Layer bi = MakeLstm("l", 4, 10, 512, 512, true);
  EXPECT_EQ(ExpandLayer(bi).forward.size(), 2 * ExpandLayer(uni).forward.size());
}

TEST(LayerKernels, AttentionHasGlueKernels) {
  const LayerKernelSet set = ExpandLayer(MakeAttention("att", 8, 12, 384, 64));
  int gemms = 0;
  int glue = 0;
  for (const KernelSpec& k : set.forward) {
    gemms += StrContains(k.name, "sgemm") ? 1 : 0;
    glue += StrContains(k.name, "elementwise") ? 1 : 0;
  }
  EXPECT_EQ(gemms, 2);  // QK^T and PV
  EXPECT_GE(glue, 6);   // permutes / scaling / masking / dropout
}

TEST(LayerKernels, EveryKernelTaggedWithLayerAndPhase) {
  const Layer conv = MakeConv2d("c", 8, 64, 56, 56, 64, 3, 1, 1);
  Layer tagged = conv;
  tagged.id = 17;
  const LayerKernelSet set = ExpandLayer(tagged);
  for (const KernelSpec& k : set.forward) {
    EXPECT_EQ(k.layer_id, 17);
    EXPECT_EQ(k.phase, Phase::kForward);
  }
  for (const KernelSpec& k : set.backward) {
    EXPECT_EQ(k.layer_id, 17);
    EXPECT_EQ(k.phase, Phase::kBackward);
  }
}

// ---- weight update ----

TEST(WeightUpdate, SgdTwoKernelsPerTensor) {
  const Layer conv = MakeConv2d("c", 8, 64, 56, 56, 64, 3, 1, 1);
  EXPECT_EQ(ExpandWeightUpdate(conv, OptimizerKind::kSgdMomentum).size(),
            2 * conv.param_tensor_elems.size());
}

TEST(WeightUpdate, AdamThirteenPlusDecay) {
  Layer fc = MakeLinear("fc", 8, 1024, 1024);  // weight (decayed) + bias (not)
  const std::vector<KernelSpec> wu = ExpandWeightUpdate(fc, OptimizerKind::kAdam);
  EXPECT_EQ(wu.size(), static_cast<size_t>(2 * kAdamKernelsPerTensor + 1));
}

TEST(WeightUpdate, NoParamsNoKernels) {
  EXPECT_TRUE(ExpandWeightUpdate(MakeReLU("r", 100), OptimizerKind::kAdam).empty());
}

TEST(WeightUpdate, BertAdamKernelCountsMatchPaper) {
  // §6.3: "2633 for BERT_BASE, 5164 for BERT_LARGE" unfused Adam kernels.
  const int base = CountWeightUpdateKernels(BuildBertBase(8), OptimizerKind::kAdam);
  const int large = CountWeightUpdateKernels(BuildBertLarge(2), OptimizerKind::kAdam);
  EXPECT_NEAR(base, 2633, 150);
  EXPECT_NEAR(large, 5164, 250);
}

TEST(WeightUpdate, AllKernelsAreElementwise) {
  for (const KernelSpec& k : ExpandWeightUpdate(MakeLinear("fc", 8, 256, 256),
                                                OptimizerKind::kAdam)) {
    EXPECT_EQ(k.cls, KernelClass::kElementwise);
    EXPECT_EQ(k.phase, Phase::kWeightUpdate);
    EXPECT_TRUE(StrContains(k.name, "elementwise"));
  }
}

// ---- sweep: expansion sanity over every layer of every model ----

class ExpansionSweep : public ::testing::TestWithParam<ModelId> {};

INSTANTIATE_TEST_SUITE_P(ModelZoo, ExpansionSweep, ::testing::ValuesIn(AllModels()),
                         [](const ::testing::TestParamInfo<ModelId>& info) {
                           std::string name = ModelName(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST_P(ExpansionSweep, EveryLayerExpandsToSomething) {
  const ModelGraph g = BuildModel(GetParam());
  for (const Layer& l : g.layers()) {
    const LayerKernelSet set = ExpandLayer(l);
    EXPECT_FALSE(set.forward.empty()) << l.name;
    EXPECT_FALSE(set.backward.empty()) << l.name;
    for (const KernelSpec& k : set.forward) {
      EXPECT_GE(k.flops, 0);
      EXPECT_GT(k.bytes, 0) << k.name;
    }
  }
}

TEST_P(ExpansionSweep, IsComputeBoundMatchesNames) {
  // The name-based Select in AMP (sgemm/scudnn) must agree with the class
  // taxonomy for all generated kernels, or predictions would misclassify.
  const ModelGraph g = BuildModel(GetParam());
  for (const Layer& l : g.layers()) {
    const LayerKernelSet set = ExpandLayer(l);
    for (const auto* list : {&set.forward, &set.backward}) {
      for (const KernelSpec& k : *list) {
        const bool name_compute = StrContains(k.name, "sgemm") || StrContains(k.name, "scudnn");
        EXPECT_EQ(name_compute, IsComputeBound(k.cls)) << k.name;
      }
    }
  }
}

}  // namespace
}  // namespace daydream

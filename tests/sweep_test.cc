#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/core/optimizations/optimizations.h"
#include "src/runtime/ground_truth.h"
#include "src/runtime/sweep.h"

namespace daydream {
namespace {

const Trace& ResNetTrace() {
  static const Trace* trace =
      new Trace(CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50)));
  return *trace;
}

std::vector<ClusterConfig> Clusters() {
  const std::vector<std::pair<int, int>> shapes = {{2, 1}, {2, 2}, {4, 1}, {4, 2}};
  std::vector<ClusterConfig> clusters;
  for (const auto& [machines, gpus] : shapes) {
    ClusterConfig c;
    c.machines = machines;
    c.gpus_per_machine = gpus;
    clusters.push_back(c);
  }
  return clusters;
}

TEST(StandardSweep, CoversAtLeastEightCases) {
  const std::vector<SweepCase> cases = BuildStandardSweep(ResNetTrace(), Clusters());
  // 2 framework what-ifs + 4 layer-structured (known model) + 4 distributed.
  EXPECT_GE(cases.size(), 10u);
  for (const SweepCase& c : cases) {
    EXPECT_FALSE(c.name.empty());
    EXPECT_TRUE(static_cast<bool>(c.transform));
  }
}

TEST(StandardSweep, UnknownModelStillSweepsFrameworkAndCluster) {
  Trace trace = ResNetTrace();
  trace.set_model_name("not-in-the-zoo");
  const std::vector<SweepCase> cases = BuildStandardSweep(trace, Clusters());
  EXPECT_EQ(cases.size(), 6u);  // amp + fused_adam + 4 clusters
}

TEST(SweepRunner, ParallelOutcomesMatchSerialPredictions) {
  const Daydream daydream(ResNetTrace());
  const std::vector<SweepCase> cases = BuildStandardSweep(ResNetTrace(), Clusters());

  SweepOptions options;
  options.num_threads = 4;
  const std::vector<SweepOutcome> parallel = SweepRunner(daydream, options).Run(cases);
  ASSERT_EQ(parallel.size(), cases.size());

  for (size_t i = 0; i < cases.size(); ++i) {
    const PredictionResult serial = daydream.Predict(cases[i].transform, cases[i].scheduler);
    EXPECT_EQ(parallel[i].name, cases[i].name);
    EXPECT_EQ(parallel[i].prediction.baseline, serial.baseline);
    EXPECT_EQ(parallel[i].prediction.predicted, serial.predicted) << cases[i].name;
    EXPECT_GT(parallel[i].tasks, 0);
  }
}

TEST(SweepRunner, ShardedDispatchMatchesSerialOutcomes) {
  const Daydream daydream(ResNetTrace());
  const std::vector<SweepCase> cases = BuildStandardSweep(ResNetTrace(), Clusters());

  SweepOptions serial_options;
  serial_options.num_threads = 1;
  const std::vector<SweepOutcome> serial = SweepRunner(daydream, serial_options).Run(cases);

  // sim_jobs shards every case's dispatch and shares the thread budget with
  // the case workers; predictions must not move by a nanosecond.
  for (const int sim_jobs : {2, 4}) {
    SweepOptions options;
    options.num_threads = 4;
    options.sim_jobs = sim_jobs;
    options.validate = true;  // also runs the shard-metadata lint per case
    const std::vector<SweepOutcome> sharded = SweepRunner(daydream, options).Run(cases);
    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(sharded[i].name, serial[i].name);
      EXPECT_EQ(sharded[i].prediction.predicted, serial[i].prediction.predicted)
          << serial[i].name << " sim_jobs=" << sim_jobs;
    }
  }
}

TEST(SweepRunner, ReferenceEngineMatchesCompiledPlans) {
  // --engine=reference differential: the pipelined plan path and the
  // Algorithm-1 scan must agree on every standard case.
  const Daydream daydream(ResNetTrace());
  const std::vector<SweepCase> cases = BuildStandardSweep(ResNetTrace(), Clusters());

  SweepOptions event_options;
  event_options.num_threads = 4;
  SweepOptions reference_options;
  reference_options.num_threads = 4;
  reference_options.engine = EngineKind::kReference;
  const std::vector<SweepOutcome> via_plan = SweepRunner(daydream, event_options).Run(cases);
  const std::vector<SweepOutcome> via_reference =
      SweepRunner(daydream, reference_options).Run(cases);
  ASSERT_EQ(via_plan.size(), via_reference.size());
  for (size_t i = 0; i < via_plan.size(); ++i) {
    EXPECT_EQ(via_plan[i].prediction.predicted, via_reference[i].prediction.predicted)
        << cases[i].name;
    EXPECT_EQ(via_plan[i].tasks, via_reference[i].tasks) << cases[i].name;
  }
}

TEST(SweepRunner, GraphBaselineConstructorSweepsWithoutATrace) {
  // The bench entry point: a pre-built baseline graph, no trace machinery.
  const Daydream daydream(ResNetTrace());
  const TimeNs baseline = daydream.BaselineSimTime();
  const SweepRunner runner(daydream.graph(), baseline);
  const std::vector<SweepOutcome> outcomes =
      runner.Run({{"amp", [](DependencyGraph* g) { WhatIfAmp(g); }, nullptr},
                  {"noop", nullptr, nullptr}});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].prediction.baseline, baseline);
  EXPECT_EQ(outcomes[0].prediction.predicted,
            daydream.Predict([](DependencyGraph* g) { WhatIfAmp(g); }).predicted);
  // The untransformed case retimes the baseline plan and must reproduce the
  // baseline simulation exactly.
  EXPECT_EQ(outcomes[1].prediction.predicted, baseline);
}

TEST(SweepRunner, SingleThreadAndEmptyCases) {
  const Daydream daydream(ResNetTrace());
  SweepOptions options;
  options.num_threads = 1;
  const SweepRunner runner(daydream, options);
  EXPECT_TRUE(runner.Run({}).empty());

  const std::vector<SweepOutcome> outcomes =
      runner.Run(BuildStandardSweep(ResNetTrace(), {}));
  ASSERT_EQ(outcomes.size(), 6u);  // no clusters: framework + layer what-ifs
  for (const SweepOutcome& o : outcomes) {
    EXPECT_EQ(o.prediction.baseline, daydream.BaselineSimTime());
    EXPECT_GT(o.prediction.predicted, 0);
  }
}

TEST(SweepRanking, SortsByPredictedAscending) {
  std::vector<SweepOutcome> outcomes(3);
  outcomes[0].name = "slow";
  outcomes[0].prediction = {Ms(100), Ms(90)};
  outcomes[1].name = "fast";
  outcomes[1].prediction = {Ms(100), Ms(50)};
  outcomes[2].name = "mid";
  outcomes[2].prediction = {Ms(100), Ms(70)};
  RankBySpeedup(&outcomes);
  EXPECT_EQ(outcomes[0].name, "fast");
  EXPECT_EQ(outcomes[1].name, "mid");
  EXPECT_EQ(outcomes[2].name, "slow");
}

TEST(SweepSerialization, EmptyOutcomesOmitBaseline) {
  const std::string json = SweepReportJson({});
  EXPECT_EQ(json.find("baseline_ms"), std::string::npos)
      << "no outcomes -> no fabricated 0.0 ms baseline";
  EXPECT_NE(json.find("\"cases\": ["), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(SweepSerialization, SingleCaseKeepsBaseline) {
  std::vector<SweepOutcome> outcomes(1);
  outcomes[0].name = "amp";
  outcomes[0].prediction = {Ms(100), Ms(80)};
  outcomes[0].tasks = 7;
  const std::string json = SweepReportJson(outcomes);
  EXPECT_NE(json.find("\"baseline_ms\": 100.000"), std::string::npos);
  EXPECT_NE(json.find("\"amp\""), std::string::npos);
  // The single case must not carry a trailing comma.
  EXPECT_EQ(json.find("},\n  ]"), std::string::npos);
}

TEST(SweepSerialization, JsonContainsEveryCase) {
  std::vector<SweepOutcome> outcomes(2);
  outcomes[0].name = "amp";
  outcomes[0].prediction = {Ms(100), Ms(80)};
  outcomes[0].tasks = 42;
  outcomes[1].name = "distributed 4x2 @ 10Gbps";
  outcomes[1].prediction = {Ms(100), Ms(120)};
  outcomes[1].tasks = 50;
  const std::string json = SweepReportJson(outcomes);
  EXPECT_NE(json.find("\"amp\""), std::string::npos);
  EXPECT_NE(json.find("distributed 4x2 @ 10Gbps"), std::string::npos);
  EXPECT_NE(json.find("\"baseline_ms\": 100.000"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(SweepSerialization, CsvRoundTrip) {
  std::vector<SweepOutcome> outcomes(2);
  outcomes[0].name = "amp";
  outcomes[0].prediction = {Ms(100), Ms(80)};
  outcomes[1].name = "vdnn";
  outcomes[1].prediction = {Ms(100), Ms(99)};
  const std::string path = ::testing::TempDir() + "/sweep_test.csv";
  ASSERT_TRUE(WriteSweepCsv(outcomes, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
  }
  EXPECT_EQ(lines, 3);  // header + 2 rows
  std::remove(path.c_str());

  EXPECT_FALSE(WriteSweepCsv(outcomes, "/nonexistent-dir/sweep.csv"));
}

// ---- PredictionResult guard rails (division-by-zero satellite) ----

TEST(PredictionResult, ZeroBaselineYieldsZeroSpeedupNotNan) {
  PredictionResult r;
  r.baseline = 0;
  r.predicted = 0;
  EXPECT_EQ(r.SpeedupPct(), 0.0);
  EXPECT_EQ(r.SpeedupRatio(), 0.0);

  r.predicted = Ms(10);
  EXPECT_EQ(r.SpeedupPct(), 0.0);
  EXPECT_EQ(r.SpeedupRatio(), 0.0);
}

TEST(PredictionResult, ZeroPredictedGuarded) {
  PredictionResult r;
  r.baseline = Ms(10);
  r.predicted = 0;
  EXPECT_EQ(r.SpeedupPct(), 100.0);
  EXPECT_EQ(r.SpeedupRatio(), 0.0);  // guarded, not inf
}

}  // namespace
}  // namespace daydream

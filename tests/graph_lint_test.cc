// GraphLint property suite: every defect class the verifier advertises is
// injected into a real graph (through the test-only corruptors) and must come
// back flagged by the advertised pass, naming the offending task/lane — plus
// the two acceptance gates: the pre-fix PR 5 bug class (cross-iteration
// anchors) is caught, and every shipping what-if transform passes the full
// lint catalog on 1- and 2-iteration traces of every zoo model.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/graph_builder.h"
#include "src/core/graph_lint.h"
#include "src/core/graph_testing.h"
#include "src/core/optimizations/optimizations.h"
#include "src/core/sim_plan.h"
#include "src/core/simulator.h"
#include "src/runtime/ground_truth.h"
#include "src/runtime/sweep.h"
#include "src/util/time_units.h"

namespace daydream {
namespace {

Task CpuTask(const std::string& name, TimeNs dur = Us(5), int thread = 0) {
  Task t;
  t.type = TaskType::kCpu;
  t.name = name;
  t.thread = ExecThread::Cpu(thread);
  t.duration = dur;
  return t;
}

Task GpuTask(const std::string& name, TimeNs dur = Us(50), int stream = 0) {
  Task t;
  t.type = TaskType::kGpu;
  t.name = name;
  t.thread = ExecThread::Gpu(stream);
  t.duration = dur;
  return t;
}

Task CommTask(const std::string& name, int64_t bytes, TimeNs dur, int channel = 0) {
  Task t;
  t.type = TaskType::kComm;
  t.name = name;
  t.thread = ExecThread::Comm(channel);
  t.duration = dur;
  t.bytes = bytes;
  return t;
}

// A small healthy graph: cpu -> gpu -> gpu chain across two lanes.
DependencyGraph SmallGraph() {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("launch"));
  const TaskId b = g.AddTask(GpuTask("fwd"));
  const TaskId c = g.AddTask(GpuTask("bwd"));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.LinkSequential();
  return g;
}

std::vector<const LintFinding*> FindingsIn(const LintReport& report, const std::string& pass) {
  std::vector<const LintFinding*> out;
  for (const LintFinding& f : report.findings) {
    if (f.pass == pass) {
      out.push_back(&f);
    }
  }
  return out;
}

// Asserts the advertised pass flags the graph, and returns its first finding
// for detail checks.
const LintFinding& ExpectFlaggedBy(const LintReport& report, const std::string& pass) {
  const auto findings = FindingsIn(report, pass);
  EXPECT_FALSE(findings.empty()) << "expected a '" << pass << "' finding; report:\n"
                                 << report.ToString();
  static const LintFinding empty;
  return findings.empty() ? empty : *findings.front();
}

bool NamesTask(const LintFinding& f, TaskId id) {
  return std::find(f.tasks.begin(), f.tasks.end(), id) != f.tasks.end();
}

const Trace& CachedTrace(ModelId model, int iterations = 1) {
  static std::map<std::pair<ModelId, int>, Trace>* cache =
      new std::map<std::pair<ModelId, int>, Trace>();
  const auto key = std::make_pair(model, iterations);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, CollectBaselineTrace(DefaultRunConfig(model), iterations)).first;
  }
  return it->second;
}

// ---- report plumbing ----

TEST(LintReport, CleanGraphRunsTheFullCatalog) {
  const DependencyGraph g = SmallGraph();
  const LintReport report = GraphLint::LintGraph(g);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.errors(), 0);
  EXPECT_EQ(report.warnings(), 0);
  EXPECT_EQ(report.FirstError(), nullptr);
  for (const char* pass :
       {"edge-integrity", "acyclic", "thread-sequence", "orphan-lane", "duration-sanity",
        "timestamp-monotone", "iteration-anchor", "schedule-smell"}) {
    EXPECT_NE(std::find(report.passes_run.begin(), report.passes_run.end(), pass),
              report.passes_run.end())
        << "pass " << pass << " did not run";
  }
  EXPECT_NE(report.Summary().find("clean"), std::string::npos);
}

TEST(LintReport, MaxFindingsCapSetsTruncated) {
  DependencyGraph g = SmallGraph();
  for (TaskId id : g.AliveTasks()) {
    GraphCorruptor::AddRawChild(&g, id, 9999);  // one dangling edge per task
  }
  LintOptions options;
  options.max_findings = 2;
  const LintReport report = GraphLint::LintGraph(g, options);
  EXPECT_EQ(report.findings.size(), 2u);
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.ok());
}

TEST(LintReport, JsonCarriesFindingsAndPasses) {
  DependencyGraph g = SmallGraph();
  GraphCorruptor::AddSelfEdge(&g, g.AliveTasks().front());
  const LintReport report = GraphLint::LintGraph(g);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pass\": \"edge-integrity\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"passes\": ["), std::string::npos) << json;
}

// ---- edge-integrity ----

TEST(GraphLintPass, DanglingEdgeOutOfRange) {
  DependencyGraph g = SmallGraph();
  const TaskId a = g.AliveTasks().front();
  GraphCorruptor::AddRawChild(&g, a, 9999);
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "edge-integrity");
  EXPECT_TRUE(NamesTask(f, a));
  EXPECT_NE(f.message.find("dangling"), std::string::npos);
}

TEST(GraphLintPass, DanglingEdgeToDeadTask) {
  DependencyGraph g = SmallGraph();
  const std::vector<TaskId> ids = g.AliveTasks();
  const TaskId victim = g.AddTask(GpuTask("victim", Us(1), 1));
  g.AddEdge(ids[0], victim);
  GraphCorruptor::DetachFromChain(&g, victim);  // isolate the edge defect
  GraphCorruptor::KillInPlace(&g, victim);
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "edge-integrity");
  EXPECT_TRUE(NamesTask(f, victim));
  EXPECT_NE(f.message.find("dead"), std::string::npos);
}

TEST(GraphLintPass, AsymmetricEdge) {
  DependencyGraph g = SmallGraph();
  const std::vector<TaskId> ids = g.AliveTasks();
  GraphCorruptor::AddRawChild(&g, ids[0], ids[2]);  // no parent back-link
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "edge-integrity");
  EXPECT_NE(f.message.find("asymmetric"), std::string::npos);
  EXPECT_TRUE(NamesTask(f, ids[0]));
  EXPECT_TRUE(NamesTask(f, ids[2]));
}

TEST(GraphLintPass, DuplicateEdge) {
  DependencyGraph g = SmallGraph();
  GraphCorruptor::DuplicateFirstChildEdge(&g, g.AliveTasks().front());
  const LintReport report = GraphLint::LintGraph(g);
  EXPECT_NE(ExpectFlaggedBy(report, "edge-integrity").message.find("duplicate"),
            std::string::npos);
}

TEST(GraphLintPass, SelfEdge) {
  DependencyGraph g = SmallGraph();
  const TaskId a = g.AliveTasks().front();
  GraphCorruptor::AddSelfEdge(&g, a);
  const LintReport report = GraphLint::LintGraph(g);
  EXPECT_NE(ExpectFlaggedBy(report, "edge-integrity").message.find("self edge"),
            std::string::npos);
}

// ---- acyclic ----

TEST(GraphLintPass, CycleIsReportedWithItsPath) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("a"));
  const TaskId b = g.AddTask(GpuTask("b"));
  const TaskId c = g.AddTask(GpuTask("c"));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "acyclic");
  // The cycle path closes on itself and names every member with its task name.
  ASSERT_GE(f.tasks.size(), 4u);
  EXPECT_EQ(f.tasks.front(), f.tasks.back());
  EXPECT_TRUE(NamesTask(f, a));
  EXPECT_TRUE(NamesTask(f, b));
  EXPECT_TRUE(NamesTask(f, c));
  EXPECT_NE(f.message.find("'b'"), std::string::npos) << f.message;
  // Feasibility fallout: the starved-task smell names the blast radius.
  EXPECT_NE(ExpectFlaggedBy(report, "schedule-smell").message.find("never become ready"),
            std::string::npos);
  // And the boolean API reports the same defect as "pass: message".
  std::string error;
  EXPECT_FALSE(g.Validate(&error));
  EXPECT_NE(error.find("acyclic: "), std::string::npos) << error;
}

// ---- thread-sequence / orphan-lane ----

TEST(GraphLintPass, DeadTaskStillLinked) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("a"));
  g.AddTask(GpuTask("b"));
  GraphCorruptor::KillInPlace(&g, a);  // dead but still spliced into its lane
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "thread-sequence");
  EXPECT_TRUE(NamesTask(f, a));
  EXPECT_NE(f.message.find("dead"), std::string::npos);
}

TEST(GraphLintPass, BrokenSpliceLink) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("a"));
  const TaskId b = g.AddTask(GpuTask("b"));
  g.AddEdge(a, b);
  GraphCorruptor::BreakSeqPrev(&g, b, a + 100);  // in-range bogus link
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "thread-sequence");
  EXPECT_TRUE(NamesTask(f, b));
  EXPECT_NE(f.message.find("asymmetric splice"), std::string::npos);
}

TEST(GraphLintPass, SequenceCycle) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("a"));
  const TaskId b = g.AddTask(GpuTask("b"));
  GraphCorruptor::BreakSeqNext(&g, b, a);  // b -> a while a -> b: chain loops
  const LintReport report = GraphLint::LintGraph(g);
  EXPECT_FALSE(FindingsIn(report, "thread-sequence").empty()) << report.ToString();
}

TEST(GraphLintPass, WrongThreadField) {
  DependencyGraph g = SmallGraph();
  const TaskId gpu_task = g.AliveTasks()[1];
  GraphCorruptor::SetLaneField(&g, gpu_task, 0);  // chained on gpu lane, claims cpu
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "thread-sequence");
  EXPECT_TRUE(NamesTask(f, gpu_task));
  // The phrase the legacy Validate() API (and its tests) key on.
  EXPECT_NE(f.message.find("wrong thread"), std::string::npos);
  EXPECT_FALSE(f.lane.empty());
}

TEST(GraphLintPass, StaleTail) {
  DependencyGraph g = SmallGraph();
  const TaskId gpu_lane_task = g.AliveTasks()[1];
  const int lane = GraphCorruptor::LaneOf(g, gpu_lane_task);
  GraphCorruptor::SetLaneTail(&g, lane, gpu_lane_task);  // real tail is ids[2]
  const LintReport report = GraphLint::LintGraph(g);
  EXPECT_NE(ExpectFlaggedBy(report, "thread-sequence").message.find("stale tail"),
            std::string::npos);
}

TEST(GraphLintPass, AliveCountDrift) {
  DependencyGraph g = SmallGraph();
  const int lane = GraphCorruptor::LaneOf(g, g.AliveTasks()[1]);
  GraphCorruptor::SetLaneAliveCount(&g, lane, 7);
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "thread-sequence");
  EXPECT_NE(f.message.find("alive-count drift"), std::string::npos);
  EXPECT_FALSE(f.lane.empty());
}

TEST(GraphLintPass, OrphanedTask) {
  DependencyGraph g = SmallGraph();
  const TaskId orphan = g.AliveTasks()[2];
  GraphCorruptor::DetachFromChain(&g, orphan);
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "orphan-lane");
  EXPECT_TRUE(NamesTask(f, orphan));
}

// ---- duration-sanity / timestamp-monotone / schedule-smell ----

TEST(GraphLintPass, NegativeDuration) {
  DependencyGraph g = SmallGraph();
  const TaskId a = g.AliveTasks().front();
  g.task(a).duration = -Us(1);
  const LintReport report = GraphLint::LintGraph(g);
  EXPECT_TRUE(NamesTask(ExpectFlaggedBy(report, "duration-sanity"), a));
}

TEST(GraphLintPass, BackwardTimestampIsAWarningNotAnError) {
  DependencyGraph g;
  Task first = GpuTask("first");
  first.start = Us(100);
  Task second = GpuTask("second");
  second.start = Us(50);  // measured, earlier than its chain predecessor
  const TaskId a = g.AddTask(first);
  const TaskId b = g.AddTask(second);
  g.LinkSequential();
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "timestamp-monotone");
  EXPECT_EQ(f.severity, LintSeverity::kWarning);
  EXPECT_TRUE(NamesTask(f, a));
  EXPECT_TRUE(NamesTask(f, b));
  EXPECT_TRUE(report.ok());  // warnings alone keep the graph legal
  EXPECT_EQ(report.warnings(), 1);
}

TEST(GraphLintPass, UnmeasuredTasksAreExemptFromTimingPasses) {
  DependencyGraph g;
  Task measured = GpuTask("measured");
  measured.start = Us(100);
  g.AddTask(measured);
  g.AddTask(GpuTask("inserted"));  // start == 0: the transform-inserted shape
  g.LinkSequential();
  EXPECT_TRUE(GraphLint::LintGraph(g).ok());
}

TEST(GraphLintPass, ZeroDurationPricedComm) {
  DependencyGraph g = SmallGraph();
  const TaskId comm = g.AddTask(CommTask("allreduce", /*bytes=*/1 << 20, /*dur=*/0));
  const LintReport report = GraphLint::LintGraph(g);
  const LintFinding& f = ExpectFlaggedBy(report, "schedule-smell");
  EXPECT_EQ(f.severity, LintSeverity::kWarning);
  EXPECT_TRUE(NamesTask(f, comm));
  EXPECT_TRUE(report.ok());
}

// ---- iteration-anchor: the PR 5 bug class ----

// A synthetic two-iteration profile: phase-tagged measured GPU work so
// IterationStarts() yields two windows, plus a weight update in window 0.
struct TwoIterationGraph {
  DependencyGraph graph;
  TaskId bwd_iter2 = kInvalidTask;  // measured backward in window 1
  TaskId wu_iter1 = kInvalidTask;   // measured weight update in window 0
};

TwoIterationGraph BuildTwoIterationGraph() {
  TwoIterationGraph out;
  auto phase_task = [](const char* name, Phase phase, TimeNs start, int stream) {
    Task t = GpuTask(name, Us(10), stream);
    t.phase = phase;
    t.start = start;
    return t;
  };
  DependencyGraph& g = out.graph;
  g.AddTask(phase_task("fwd_i1", Phase::kForward, Us(10), 0));
  g.AddTask(phase_task("bwd_i1", Phase::kBackward, Us(20), 0));
  g.AddTask(phase_task("fwd_i2", Phase::kForward, Us(40), 0));
  out.bwd_iter2 = g.AddTask(phase_task("bwd_i2", Phase::kBackward, Us(50), 0));
  // The weight update lives on its own stream, so no sequential edge gives
  // the backward a path back to it — the backward-in-time edge below is NOT
  // a cycle, which is exactly why acyclicity alone missed this bug class.
  out.wu_iter1 = g.AddTask(phase_task("wu_i1", Phase::kWeightUpdate, Us(30), 1));
  g.LinkSequential();
  return out;
}

TEST(GraphLintPass, CrossIterationAnchorWithoutCycleIsCaught) {
  TwoIterationGraph t = BuildTwoIterationGraph();
  // The pre-fix WhatIfDistributed shape: gradient communication anchored on
  // the *global* last backward (iteration 2) feeding the *global* first
  // weight update (iteration 1) — backward in time, yet acyclic.
  t.graph.AddEdge(t.bwd_iter2, t.wu_iter1);
  const LintReport report = GraphLint::LintGraph(t.graph);
  EXPECT_TRUE(FindingsIn(report, "acyclic").empty()) << report.ToString();
  const LintFinding& f = ExpectFlaggedBy(report, "iteration-anchor");
  EXPECT_EQ(f.severity, LintSeverity::kError);
  EXPECT_TRUE(NamesTask(f, t.bwd_iter2));
  EXPECT_TRUE(NamesTask(f, t.wu_iter1));
  EXPECT_NE(f.message.find("backward across iteration windows"), std::string::npos);
}

TEST(GraphLintPass, ForwardCrossIterationEdgesAreLegal) {
  TwoIterationGraph t = BuildTwoIterationGraph();
  t.graph.AddEdge(t.wu_iter1, t.bwd_iter2);  // window 0 -> window 1: fine
  EXPECT_TRUE(GraphLint::LintGraph(t.graph).ok());
}

// Regression: emulate the pre-fix WhatIfGist anchor bug on a real
// two-iteration trace. Gist anchored encode/decode on global first/last
// selections; on a 2-iteration profile the "last forward" is in iteration 2
// and the "first backward" in iteration 1, so the anchor edge pointed
// backward in time and (via the stream's sequential chain) closed a cycle.
// Both passes must catch it, with a concrete path.
TEST(GraphLintRegression, PreFixGistAnchorOnTwoIterationTraceIsCaught) {
  const Trace& trace = CachedTrace(ModelId::kTinyMlp, /*iterations=*/2);
  DependencyGraph g = BuildDependencyGraph(trace);

  // Global anchors, resolved over the whole trace — the pre-fix behavior.
  TaskId last_fwd = kInvalidTask;
  TaskId first_bwd = kInvalidTask;
  for (TaskId id : g.AliveTasks()) {
    const Task& t = g.task(id);
    if (t.type != TaskType::kGpu) {
      continue;
    }
    if (t.phase == Phase::kForward &&
        (last_fwd == kInvalidTask || t.start > g.task(last_fwd).start)) {
      last_fwd = id;
    }
    if (t.phase == Phase::kBackward &&
        (first_bwd == kInvalidTask || t.start < g.task(first_bwd).start)) {
      first_bwd = id;
    }
  }
  ASSERT_NE(last_fwd, kInvalidTask);
  ASSERT_NE(first_bwd, kInvalidTask);
  ASSERT_GT(g.task(last_fwd).start, g.task(first_bwd).start)
      << "trace is not actually multi-iteration";

  g.AddEdge(last_fwd, first_bwd);  // iteration 2 -> iteration 1

  const LintReport report = GraphLint::LintGraph(g);
  EXPECT_FALSE(report.ok());
  // The edge points backward across IterationStarts windows...
  const LintFinding& anchor = ExpectFlaggedBy(report, "iteration-anchor");
  EXPECT_TRUE(NamesTask(anchor, last_fwd));
  EXPECT_TRUE(NamesTask(anchor, first_bwd));
  // ...and closes a cycle through the stream's sequential chain, reported
  // with a concrete path.
  const LintFinding& cycle = ExpectFlaggedBy(report, "acyclic");
  EXPECT_GE(cycle.tasks.size(), 3u);
  EXPECT_EQ(cycle.tasks.front(), cycle.tasks.back());
}

// ---- acceptance gate: every shipping what-if passes strict lint ----

struct WhatIfCase {
  const char* name;
  std::function<void(DependencyGraph*, const ModelGraph&, const Trace&)> apply;
};

const std::vector<WhatIfCase>& WhatIfs() {
  static const std::vector<WhatIfCase>* cases = new std::vector<WhatIfCase>{
      {"baseline", [](DependencyGraph*, const ModelGraph&, const Trace&) {}},
      {"amp", [](DependencyGraph* g, const ModelGraph&, const Trace&) { WhatIfAmp(g); }},
      {"fused_adam",
       [](DependencyGraph* g, const ModelGraph&, const Trace&) { WhatIfFusedAdam(g); }},
      {"rbn",
       [](DependencyGraph* g, const ModelGraph& m, const Trace&) {
         WhatIfRestructuredBatchnorm(g, m);
       }},
      {"metaflow",
       [](DependencyGraph* g, const ModelGraph& m, const Trace&) {
         WhatIfMetaFlowFuseConvBn(g, m);
       }},
      {"gist", [](DependencyGraph* g, const ModelGraph& m, const Trace&) { WhatIfGist(g, m); }},
      {"vdnn", [](DependencyGraph* g, const ModelGraph& m, const Trace&) { WhatIfVdnn(g, m); }},
      {"distributed_4x2",
       [](DependencyGraph* g, const ModelGraph&, const Trace& t) {
         DistributedWhatIf opts;
         opts.cluster.machines = 4;
         opts.cluster.gpus_per_machine = 2;
         WhatIfDistributed(g, t.gradients(), opts);
       }},
  };
  return *cases;
}

class WhatIfLint : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WhatIfLint, TransformOutputPassesStrictLint) {
  const ModelId model = AllModels()[static_cast<size_t>(std::get<0>(GetParam()))];
  const int iterations = std::get<1>(GetParam());
  const WhatIfCase& what_if = WhatIfs()[static_cast<size_t>(std::get<2>(GetParam()))];

  const Trace& trace = CachedTrace(model, iterations);
  const ModelGraph model_graph = BuildModel(model);
  DependencyGraph graph = BuildDependencyGraph(trace);
  what_if.apply(&graph, model_graph, trace);

  const LintReport report = GraphLint::LintGraph(graph);
  EXPECT_EQ(report.errors(), 0) << what_if.name << " on a " << iterations
                                << "-iteration trace fails lint:\n"
                                << report.ToString();

  const SimPlan plan = Simulator().Compile(graph);
  const LintReport plan_report = GraphLint::LintPlan(plan, graph);
  EXPECT_EQ(plan_report.errors(), 0) << plan_report.ToString();
}

std::string WhatIfLintName(const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  std::string name = ModelName(AllModels()[static_cast<size_t>(std::get<0>(info.param))]);
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  name.erase(std::remove(name.begin(), name.end(), '_'), name.end());
  return name + "_i" + std::to_string(std::get<1>(info.param)) + "_" +
         WhatIfs()[static_cast<size_t>(std::get<2>(info.param))].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsBothDepths, WhatIfLint,
    ::testing::Combine(::testing::Range(0, static_cast<int>(AllModels().size())),
                       ::testing::Values(1, 2),
                       ::testing::Range(0, static_cast<int>(WhatIfs().size()))),
    WhatIfLintName);

// ---- plan passes ----

TEST(PlanLint, CleanPlanIsClean) {
  const DependencyGraph g = SmallGraph();
  const SimPlan plan = Simulator().Compile(g);
  const LintReport report = GraphLint::LintPlan(plan, g);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.passes_run.size(), 4u);
}

TEST(PlanLint, StructuralMutationAfterCompileIsStale) {
  DependencyGraph g = SmallGraph();
  const SimPlan plan = Simulator().Compile(g);
  const std::vector<TaskId> ids = g.AliveTasks();
  g.AddEdge(ids[0], ids[2]);  // bumps structure_stamp
  const LintReport report = GraphLint::LintPlan(plan, g);
  EXPECT_NE(ExpectFlaggedBy(report, "plan-stamp").message.find("stale structure stamp"),
            std::string::npos);
}

TEST(PlanLint, MissedRetimeIsCaught) {
  DependencyGraph g = SmallGraph();
  const SimPlan plan = Simulator().Compile(g);
  const TaskId a = g.AliveTasks().front();
  g.task(a).duration += Us(3);  // timing edit: stamp unchanged, plan stale
  const LintReport report = GraphLint::LintPlan(plan, g);
  const LintFinding& f = ExpectFlaggedBy(report, "plan-timing");
  EXPECT_TRUE(NamesTask(f, a));
  EXPECT_NE(f.message.find("Retime"), std::string::npos);
}

TEST(PlanLint, CorruptedPredCount) {
  const DependencyGraph g = SmallGraph();
  SimPlan plan = Simulator().Compile(g);
  PlanCorruptor::BreakPredCount(&plan, 1, 5);
  const LintReport report = GraphLint::LintPlan(plan, g);
  EXPECT_NE(ExpectFlaggedBy(report, "plan-csr").message.find("pred-count"), std::string::npos);
}

TEST(PlanLint, RedirectedSuccessor) {
  const DependencyGraph g = SmallGraph();
  SimPlan plan = Simulator().Compile(g);
  PlanCorruptor::RedirectSucc(&plan, 0, 0);
  const LintReport report = GraphLint::LintPlan(plan, g);
  EXPECT_FALSE(FindingsIn(report, "plan-csr").empty()) << report.ToString();
}

TEST(PlanLint, CorruptedLaneAssignment) {
  const DependencyGraph g = SmallGraph();
  SimPlan plan = Simulator().Compile(g);
  PlanCorruptor::BreakLane(&plan, 0, 1);
  const LintReport report = GraphLint::LintPlan(plan, g);
  EXPECT_FALSE(FindingsIn(report, "plan-lane").empty()) << report.ToString();
}

TEST(PlanLint, CorruptedDuration) {
  const DependencyGraph g = SmallGraph();
  SimPlan plan = Simulator().Compile(g);
  PlanCorruptor::BreakDuration(&plan, 0, Us(999));
  const LintReport report = GraphLint::LintPlan(plan, g);
  EXPECT_FALSE(FindingsIn(report, "plan-timing").empty()) << report.ToString();
}

TEST(PlanLint, ForgedStampIsCaught) {
  const DependencyGraph g = SmallGraph();
  SimPlan plan = Simulator().Compile(g);
  PlanCorruptor::BumpGraphStamp(&plan);
  const LintReport report = GraphLint::LintPlan(plan, g);
  EXPECT_FALSE(FindingsIn(report, "plan-stamp").empty()) << report.ToString();
}

// ---- shard passes ----

// Two GPU streams feeding an allreduce: the comm boundary cuts the lane
// partition, so the shard plan really has multiple shards and real
// cross-shard window entries for the corruptors to break. Durations are
// distinct so the two window bounds differ (SwapWindowBounds must not be a
// no-op).
DependencyGraph ShardableGraph() {
  DependencyGraph g;
  const TaskId a0 = g.AddTask(GpuTask("fwd0", Us(40), /*stream=*/0));
  const TaskId a1 = g.AddTask(GpuTask("bwd0", Us(30), /*stream=*/0));
  const TaskId b0 = g.AddTask(GpuTask("fwd1", Us(50), /*stream=*/1));
  const TaskId b1 = g.AddTask(GpuTask("bwd1", Us(35), /*stream=*/1));
  const TaskId c = g.AddTask(CommTask("allreduce", /*bytes=*/1 << 20, /*dur=*/Us(80)));
  g.AddEdge(a0, a1);
  g.AddEdge(b0, b1);
  g.AddEdge(a1, c);
  g.AddEdge(b1, c);
  g.LinkSequential();
  return g;
}

ShardPlan CompileShards(const DependencyGraph& g, int num_shards = 4) {
  auto plan = std::make_shared<const SimPlan>(Simulator().Compile(g));
  return ShardPlan::Compile(std::move(plan), num_shards);
}

TEST(ShardLint, CleanShardPlanIsClean) {
  const ShardPlan shards = CompileShards(ShardableGraph());
  EXPECT_GE(shards.num_shards(), 2);
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.passes_run.size(), 3u);
}

TEST(ShardLint, CleanZooShardPlansAreClean) {
  const Trace& trace = CachedTrace(ModelId::kResNet50);
  const Daydream daydream(trace);
  for (const int jobs : {2, 8}) {
    const ShardPlan shards = CompileShards(daydream.graph(), jobs);
    const LintReport report = GraphLint::LintShards(shards);
    EXPECT_TRUE(report.ok()) << "sim_jobs=" << jobs << "\n" << report.ToString();
  }
}

TEST(ShardLint, EmptyShardPlanIsFlagged) {
  const ShardPlan shards;
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_NE(ExpectFlaggedBy(report, "shard-partition").message.find("empty"),
            std::string::npos);
}

TEST(ShardLint, ReassignedLaneBreaksPartition) {
  ShardPlan shards = CompileShards(ShardableGraph());
  // Point lane 0 at a shard no grouped list claims; the disjoint-cover walk
  // must notice the disagreement.
  ShardCorruptor::BreakLaneShard(&shards, 0, shards.num_shards());
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_FALSE(FindingsIn(report, "shard-partition").empty()) << report.ToString();
}

TEST(ShardLint, ForgedTaskCountBreaksPartition) {
  ShardPlan shards = CompileShards(ShardableGraph());
  ShardCorruptor::BreakTaskCount(&shards, 0, 9999);
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_NE(ExpectFlaggedBy(report, "shard-partition").message.find("tasks"),
            std::string::npos);
}

TEST(ShardLint, RedirectedWindowEntryBreaksEdges) {
  ShardPlan shards = CompileShards(ShardableGraph());
  // Whatever slot 0 is, pointing it at a wild window position is wrong: an
  // intra-shard edge may carry no entry, and no shard's range holds 1 << 20.
  ShardCorruptor::RedirectWindowEntry(&shards, 0, 1 << 20);
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_FALSE(FindingsIn(report, "shard-edges").empty()) << report.ToString();
}

TEST(ShardLint, ForgedWindowSourceBreaksEdges) {
  ShardPlan shards = CompileShards(ShardableGraph());
  ShardCorruptor::BreakWindowSource(&shards, 0, 1 << 20);
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_FALSE(FindingsIn(report, "shard-edges").empty()) << report.ToString();
}

TEST(ShardLint, CorruptedStaticBoundBreaksHorizon) {
  ShardPlan shards = CompileShards(ShardableGraph());
  ShardCorruptor::BreakStaticBound(&shards, 0, Us(999));
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_NE(ExpectFlaggedBy(report, "shard-horizon").message.find("longest-path"),
            std::string::npos);
}

TEST(ShardLint, SwappedWindowBoundsBreakHorizon) {
  ShardPlan shards = CompileShards(ShardableGraph());
  // The allreduce shard holds both cross-shard entries, sorted ascending by
  // bound (70us, 85us); swapping them moves the horizon backward.
  ShardCorruptor::SwapWindowBounds(&shards, 0, 1);
  const LintReport report = GraphLint::LintShards(shards);
  EXPECT_FALSE(FindingsIn(report, "shard-horizon").empty()) << report.ToString();
}

// ---- strict sweep mode ----

TEST(SweepValidate, StandardSweepPassesStrictValidation) {
  const Trace& trace = CachedTrace(ModelId::kTinyMlp);
  const Daydream daydream(trace);
  ClusterConfig cluster;
  cluster.machines = 2;
  cluster.gpus_per_machine = 2;
  const std::vector<SweepCase> cases = BuildStandardSweep(trace, {cluster});
  SweepOptions options;
  options.validate = true;  // full catalog + plan lint per case
  options.num_threads = 2;
  const std::vector<SweepOutcome> outcomes = SweepRunner(daydream, options).Run(cases);
  ASSERT_EQ(outcomes.size(), cases.size());
  for (const SweepOutcome& o : outcomes) {
    EXPECT_GT(o.prediction.predicted, 0) << o.name;
  }
}

}  // namespace
}  // namespace daydream

#include <gtest/gtest.h>

#include "src/core/optimizations/optimizations.h"
#include "src/core/predictor.h"
#include "src/core/transform.h"
#include "src/runtime/ground_truth.h"
#include "src/util/string_util.h"

namespace daydream {
namespace {

// Shared fixtures: baseline profiles are expensive-ish, build once.
class OptimizationsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    resnet_trace_ = new Trace(CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50)));
    resnet_ = new Daydream(*resnet_trace_);
    resnet_model_ = new ModelGraph(BuildModel(ModelId::kResNet50));
    bert_trace_ = new Trace(CollectBaselineTrace(DefaultRunConfig(ModelId::kBertBase)));
    bert_ = new Daydream(*bert_trace_);
  }
  static void TearDownTestSuite() {
    delete resnet_;
    delete resnet_trace_;
    delete resnet_model_;
    delete bert_;
    delete bert_trace_;
  }

  static Trace* resnet_trace_;
  static Daydream* resnet_;
  static ModelGraph* resnet_model_;
  static Trace* bert_trace_;
  static Daydream* bert_;
};

Trace* OptimizationsTest::resnet_trace_ = nullptr;
Daydream* OptimizationsTest::resnet_ = nullptr;
ModelGraph* OptimizationsTest::resnet_model_ = nullptr;
Trace* OptimizationsTest::bert_trace_ = nullptr;
Daydream* OptimizationsTest::bert_ = nullptr;

// ---- AMP (Algorithm 3) ----

TEST_F(OptimizationsTest, AmpShrinksByNameClass) {
  DependencyGraph g = resnet_->CloneGraph();
  std::map<TaskId, TimeNs> before;
  for (TaskId id : g.Select(IsOnGpu())) {
    before[id] = g.task(id).duration;
  }
  WhatIfAmp(&g);
  for (const auto& [id, dur] : before) {
    const Task& t = g.task(id);
    const bool compute = StrContains(t.name, "sgemm") || StrContains(t.name, "scudnn");
    EXPECT_EQ(t.duration, static_cast<TimeNs>(dur / (compute ? 3.0 : 2.0))) << t.name;
  }
}

TEST_F(OptimizationsTest, AmpLeavesCpuAlone) {
  DependencyGraph g = resnet_->CloneGraph();
  std::map<TaskId, TimeNs> before;
  for (TaskId id : g.Select(IsOnCpu())) {
    before[id] = g.task(id).duration;
  }
  WhatIfAmp(&g);
  for (const auto& [id, dur] : before) {
    EXPECT_EQ(g.task(id).duration, dur);
  }
}

TEST_F(OptimizationsTest, AmpPredictsSpeedupBelowTheoretical) {
  const PredictionResult r = resnet_->Predict([](DependencyGraph* g) { WhatIfAmp(g); });
  EXPECT_GT(r.SpeedupRatio(), 1.3);  // clearly beneficial...
  EXPECT_LT(r.SpeedupRatio(), 3.0);  // ...but below the per-kernel 3x (§6.2)
}

// ---- FusedAdam (Algorithm 4) ----

TEST_F(OptimizationsTest, FusedAdamLeavesSingleWuKernel) {
  DependencyGraph g = bert_->CloneGraph();
  const int wu_before =
      static_cast<int>(g.Select(All(IsOnGpu(), PhaseIs(Phase::kWeightUpdate))).size());
  WhatIfFusedAdam(&g);
  const std::vector<TaskId> wu_after = g.Select(All(IsOnGpu(), PhaseIs(Phase::kWeightUpdate)));
  EXPECT_GT(wu_before, 2000);
  ASSERT_EQ(wu_after.size(), 1u);
  EXPECT_EQ(g.task(wu_after[0]).name, "multi_tensor_apply_adam_fused");
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(OptimizationsTest, FusedAdamRemovesWuLaunches) {
  DependencyGraph g = bert_->CloneGraph();
  WhatIfFusedAdam(&g);
  EXPECT_EQ(g.Select(All(IsOnCpu(), PhaseIs(Phase::kWeightUpdate))).size(), 1u);
}

TEST_F(OptimizationsTest, FusedAdamSpeedsUpBert) {
  const PredictionResult r = bert_->Predict([](DependencyGraph* g) { WhatIfFusedAdam(g); });
  EXPECT_GT(r.SpeedupPct(), 10.0);  // §6.3: the WU phase is ~30% of BERT base
}

TEST_F(OptimizationsTest, FusedAdamNoopWithoutWeightUpdate) {
  DependencyGraph g;
  Task t;
  t.type = TaskType::kGpu;
  t.thread = ExecThread::Gpu(0);
  t.duration = Us(10);
  g.AddTask(std::move(t));
  WhatIfFusedAdam(&g);  // must not crash
  EXPECT_EQ(g.num_alive(), 1);
}

// ---- Reconstructing Batchnorm (Algorithm 5) ----

TEST_F(OptimizationsTest, RbnRemovesRelusHalvesBn) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kDenseNet121));
  const ModelGraph model = BuildModel(ModelId::kDenseNet121);
  Daydream dd(trace);
  DependencyGraph g = dd.CloneGraph();
  const TimeNs bn_before = TotalDuration(g, g.Select(All(IsOnGpu(), NameContains("batch_norm"))));
  WhatIfRestructuredBatchnorm(&g, model);
  EXPECT_TRUE(g.Select(All(IsOnGpu(), NameContains("relu"))).empty());
  const TimeNs bn_after = TotalDuration(g, g.Select(All(IsOnGpu(), NameContains("batch_norm"))));
  EXPECT_NEAR(static_cast<double>(bn_after), static_cast<double>(bn_before) / 2, 1e4);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

// ---- Distributed (Algorithm 6) ----

TEST_F(OptimizationsTest, DistributedInsertsOneAllReducePerBucket) {
  DependencyGraph g = resnet_->CloneGraph();
  DistributedWhatIf opts;
  opts.cluster.machines = 4;
  opts.cluster.gpus_per_machine = 1;
  WhatIfDistributed(&g, resnet_trace_->gradients(), opts);
  std::set<int> buckets;
  for (const GradientInfo& gi : resnet_trace_->gradients()) {
    buckets.insert(gi.bucket_id);
  }
  const std::vector<TaskId> comm =
      g.Select([](const Task& t) { return t.comm == CommKind::kAllReduce; });
  EXPECT_EQ(comm.size(), buckets.size());
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(OptimizationsTest, DistributedAllReduceFeedsWeightUpdate) {
  DependencyGraph g = resnet_->CloneGraph();
  DistributedWhatIf opts;
  opts.cluster.machines = 2;
  opts.cluster.gpus_per_machine = 1;
  WhatIfDistributed(&g, resnet_trace_->gradients(), opts);
  for (TaskId id : g.Select(IsComm())) {
    bool feeds_wu = false;
    for (TaskId c : g.children(id)) {
      feeds_wu |= g.task(c).phase == Phase::kWeightUpdate;
    }
    bool has_bwd_parent = false;
    for (TaskId p : g.parents(id)) {
      has_bwd_parent |= g.task(p).is_gpu() && g.task(p).phase == Phase::kBackward;
    }
    EXPECT_TRUE(feeds_wu) << g.task(id).name;
    EXPECT_TRUE(has_bwd_parent || g.task(id).name != "allReduce_bucket0")
        << g.task(id).name;
  }
}

TEST_F(OptimizationsTest, DistributedSingleGpuNoop) {
  DependencyGraph g = resnet_->CloneGraph();
  const int before = g.num_alive();
  DistributedWhatIf opts;  // 1x1
  WhatIfDistributed(&g, resnet_trace_->gradients(), opts);
  EXPECT_EQ(g.num_alive(), before);
}

TEST_F(OptimizationsTest, DistributedSlowerNetworkPredictsSlower) {
  DistributedWhatIf slow;
  slow.cluster.machines = 4;
  slow.cluster.gpus_per_machine = 1;
  slow.cluster.network.bandwidth_gbps = 10.0;
  DistributedWhatIf fast = slow;
  fast.cluster.network.bandwidth_gbps = 40.0;
  const PredictionResult p_slow = resnet_->Predict(
      [&](DependencyGraph* g) { WhatIfDistributed(g, resnet_trace_->gradients(), slow); });
  const PredictionResult p_fast = resnet_->Predict(
      [&](DependencyGraph* g) { WhatIfDistributed(g, resnet_trace_->gradients(), fast); });
  EXPECT_GE(p_slow.predicted, p_fast.predicted);
  EXPECT_GE(p_fast.predicted, p_fast.baseline);  // comm never speeds up 1 GPU
}

TEST_F(OptimizationsTest, PredictAllReduceDurationCalibration) {
  DistributedWhatIf opts;
  opts.cluster.machines = 4;
  opts.cluster.gpus_per_machine = 1;
  const TimeNs calibrated = PredictAllReduceDuration(64 << 20, opts);
  opts.calibrate_nccl_overhead = false;
  const TimeNs raw = PredictAllReduceDuration(64 << 20, opts);
  EXPECT_GT(calibrated, raw);
}

// ---- P3 (Algorithm 7) ----

class P3Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    RunConfig config = DefaultRunConfig(ModelId::kVgg19);
    config.gpu = GpuSpec::P4000();
    config.framework = FrameworkProfile::Mxnet();
    config.batch = 16;
    trace_ = new Trace(CollectBaselineTrace(config, /*iterations=*/2));
    daydream_ = new Daydream(*trace_);
    model_ = new ModelGraph(BuildModel(ModelId::kVgg19, 16));
  }
  static void TearDownTestSuite() {
    delete daydream_;
    delete trace_;
    delete model_;
  }
  static PsWhatIf Options(double gbps) {
    PsWhatIf opts;
    opts.network.bandwidth_gbps = gbps;
    opts.num_servers = 4;
    return opts;
  }
  static Trace* trace_;
  static Daydream* daydream_;
  static ModelGraph* model_;
};

Trace* P3Test::trace_ = nullptr;
Daydream* P3Test::daydream_ = nullptr;
ModelGraph* P3Test::model_ = nullptr;

TEST_F(P3Test, InsertsPrioritizedPushPullChains) {
  DependencyGraph g = daydream_->CloneGraph();
  WhatIfP3(&g, *model_, Options(10.0));
  const std::vector<TaskId> pushes =
      g.Select([](const Task& t) { return t.comm == CommKind::kPush; });
  const std::vector<TaskId> pulls =
      g.Select([](const Task& t) { return t.comm == CommKind::kPull; });
  EXPECT_EQ(pushes.size(), pulls.size());
  EXPECT_GT(pushes.size(), 500u);  // VGG's 575MB sliced at 512KB
  // Every pull has a push parent and a forward-GPU child.
  for (TaskId id : pulls) {
    bool push_parent = false;
    for (TaskId p : g.parents(id)) {
      push_parent |= g.task(p).comm == CommKind::kPush;
    }
    EXPECT_TRUE(push_parent);
  }
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(P3Test, RemovesWorkerWeightUpdate) {
  DependencyGraph g = daydream_->CloneGraph();
  WhatIfP3(&g, *model_, Options(10.0));
  EXPECT_TRUE(g.Select(PhaseIs(Phase::kWeightUpdate)).empty());
}

TEST_F(P3Test, EarlierLayersGetHigherPriority) {
  DependencyGraph g = daydream_->CloneGraph();
  WhatIfP3(&g, *model_, Options(10.0));
  int conv1_priority = 0;
  int fc8_priority = 0;
  for (TaskId id : g.Select([](const Task& t) { return t.comm == CommKind::kPush; })) {
    const Task& t = g.task(id);
    if (StrContains(t.name, StrFormat("layer%d_", model_->layers().front().id))) {
      conv1_priority = t.priority;
    }
  }
  for (TaskId id : g.Select([](const Task& t) { return t.comm == CommKind::kPush; })) {
    const Task& t = g.task(id);
    if (t.priority < conv1_priority) {
      fc8_priority = t.priority;
    }
  }
  EXPECT_GT(conv1_priority, fc8_priority);
}

TEST_F(P3Test, PredictionTracksBandwidth) {
  const TimeNs slow = PredictPsIterationTime(*daydream_, *model_, Options(5.0));
  const TimeNs fast = PredictPsIterationTime(*daydream_, *model_, Options(25.0));
  EXPECT_GT(slow, fast);
}

TEST_F(P3Test, PrioritizationHelps) {
  PsWhatIf p3 = Options(10.0);
  PsWhatIf fifo = Options(10.0);
  fifo.slice_bytes = 0;  // whole tensors
  fifo.prioritize = false;
  const TimeNs with_p3 = PredictPsIterationTime(*daydream_, *model_, p3);
  const TimeNs baseline = PredictPsIterationTime(*daydream_, *model_, fifo);
  EXPECT_LT(with_p3, baseline);
}

// ---- BlueConnect (Algorithm 8) ----

TEST_F(OptimizationsTest, BlueConnectDecomposesAllReduces) {
  DependencyGraph g = resnet_->CloneGraph();
  DistributedWhatIf opts;
  opts.cluster.machines = 4;
  opts.cluster.gpus_per_machine = 4;
  opts.cluster.network.bandwidth_gbps = 10.0;
  WhatIfDistributed(&g, resnet_trace_->gradients(), opts);
  const size_t allreduces =
      g.Select([](const Task& t) { return t.comm == CommKind::kAllReduce; }).size();
  WhatIfBlueConnect(&g, opts.cluster);
  EXPECT_TRUE(g.Select([](const Task& t) { return t.comm == CommKind::kAllReduce; }).empty());
  const size_t rs = g.Select([](const Task& t) { return t.comm == CommKind::kReduceScatter; }).size();
  const size_t ag = g.Select([](const Task& t) { return t.comm == CommKind::kAllGather; }).size();
  // Per allReduce: 1 intra + g inter reduce-scatters (and the same gathers).
  EXPECT_EQ(rs, allreduces * (1 + 4));
  EXPECT_EQ(ag, allreduces * (1 + 4));
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(OptimizationsTest, BlueConnectFasterOnHierarchicalCluster) {
  DistributedWhatIf opts;
  opts.cluster.machines = 4;
  opts.cluster.gpus_per_machine = 4;
  opts.cluster.network.bandwidth_gbps = 10.0;
  const PredictionResult flat = resnet_->Predict(
      [&](DependencyGraph* g) { WhatIfDistributed(g, resnet_trace_->gradients(), opts); });
  const PredictionResult blue = resnet_->Predict([&](DependencyGraph* g) {
    WhatIfDistributed(g, resnet_trace_->gradients(), opts);
    WhatIfBlueConnect(g, opts.cluster);
  });
  EXPECT_LT(blue.predicted, flat.predicted);
}

// ---- MetaFlow (Algorithm 9) ----

TEST_F(OptimizationsTest, MetaFlowRemoveLayer) {
  DependencyGraph g = resnet_->CloneGraph();
  // Find a BN layer id from the model.
  int bn_layer = -1;
  for (const Layer& l : resnet_model_->layers()) {
    if (l.kind == LayerKind::kBatchNorm) {
      bn_layer = l.id;
      break;
    }
  }
  ASSERT_GE(bn_layer, 0);
  ASSERT_FALSE(g.Select(All(IsOnGpu(), LayerIs(bn_layer))).empty());
  MetaFlowRemoveLayer(&g, bn_layer);
  EXPECT_TRUE(g.Select(All(IsOnGpu(), LayerIs(bn_layer))).empty());
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(OptimizationsTest, MetaFlowFuseConvBnSpeedsUp) {
  const PredictionResult r = resnet_->Predict(
      [&](DependencyGraph* g) { WhatIfMetaFlowFuseConvBn(g, *resnet_model_); });
  EXPECT_GT(r.SpeedupPct(), 2.0);
  EXPECT_LT(r.SpeedupPct(), 50.0);
}

// ---- vDNN (Algorithm 10) ----

TEST_F(OptimizationsTest, VdnnInsertsOffloadAndPrefetchPairs) {
  DependencyGraph g = resnet_->CloneGraph();
  WhatIfVdnn(&g, *resnet_model_);
  const size_t offloads = g.Select(NameContains("vdnn_offload")).size();
  const size_t prefetches = g.Select(NameContains("vdnn_prefetch")).size();
  // Two tasks per copy (launch + memcpy), one pair per conv layer.
  const size_t convs = static_cast<size_t>(resnet_model_->CountKind(LayerKind::kConv2d));
  EXPECT_EQ(offloads, 2 * convs);
  EXPECT_EQ(prefetches, 2 * convs);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(OptimizationsTest, VdnnCostsTime) {
  // vDNN trades performance for memory: the what-if must predict overhead.
  const PredictionResult r =
      resnet_->Predict([&](DependencyGraph* g) { WhatIfVdnn(g, *resnet_model_); });
  EXPECT_GT(r.predicted, r.baseline);
}

// ---- Gist (Algorithm 11) ----

TEST_F(OptimizationsTest, GistInsertsCodecs) {
  DependencyGraph g = resnet_->CloneGraph();
  WhatIfGist(&g, *resnet_model_);
  EXPECT_GT(g.Select(NameContains("gist_encode")).size(), 0u);
  EXPECT_EQ(g.Select(NameContains("gist_encode_ssdc")).size() +
                g.Select(NameContains("gist_encode_binarize")).size(),
            g.Select(NameContains("gist_encode")).size());
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(OptimizationsTest, GistOverheadPredicted) {
  const PredictionResult r =
      resnet_->Predict([&](DependencyGraph* g) { WhatIfGist(g, *resnet_model_); });
  EXPECT_GT(r.predicted, r.baseline);
  EXPECT_LT(r.predicted, static_cast<TimeNs>(r.baseline * 1.5));  // moderate overhead
}

// Regression: on a multi-iteration profile, Gist used to wire the encode of
// the LAST iteration's forward into the FIRST iteration's backward — an edge
// backward in time, i.e. a cycle. Codec pairs must stay within one iteration.
TEST_F(OptimizationsTest, GistStaysAcyclicOnTwoIterationTraces) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp), /*iterations=*/2);
  const ModelGraph model = BuildModel(ModelId::kTinyMlp);
  DependencyGraph g = BuildDependencyGraph(trace);
  WhatIfGist(&g, model);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
  // One encode kernel per ReLU layer per iteration.
  EXPECT_EQ(g.Select(All(IsOnGpu(), NameContains("gist_encode"))).size(),
            2u * static_cast<size_t>(model.CountKind(LayerKind::kReLU)));
  EXPECT_GT(Simulator().Run(g).makespan, 0);
}

TEST_F(OptimizationsTest, GistLossyAddsDprKernels) {
  DependencyGraph g = resnet_->CloneGraph();
  GistWhatIf opts;
  opts.lossy = true;
  WhatIfGist(&g, *resnet_model_, opts);
  EXPECT_GT(g.Select(NameContains("gist_encode_dpr")).size(), 0u);
}

// Regression: the DDP what-if resolved "last backward" and "first weight
// update" globally, which on a 2-iteration profile wired iteration-2
// gradients into iteration-1's optimizer step (a cycle). One allReduce
// schedule per iteration window keeps the graph acyclic.
TEST_F(OptimizationsTest, DistributedStaysAcyclicOnTwoIterationTraces) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp), /*iterations=*/2);
  DependencyGraph g = BuildDependencyGraph(trace);
  EXPECT_EQ(IterationStarts(g).size(), 2u);
  DistributedWhatIf dist;
  dist.cluster.machines = 2;
  dist.cluster.gpus_per_machine = 2;
  const int before = g.num_alive();
  WhatIfDistributed(&g, trace.gradients(), dist);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
  // One allReduce per bucket per iteration.
  const int buckets = static_cast<int>(g.Select(All(IsComm(), CommIs(CommKind::kAllReduce))).size());
  EXPECT_EQ(g.num_alive(), before + buckets);
  EXPECT_EQ(buckets % 2, 0);
  EXPECT_GT(buckets, 0);
  EXPECT_GT(Simulator().Run(g).makespan, 0);
}

// ---- DGC (Algorithm 12) ----

TEST_F(OptimizationsTest, DgcShrinksCommAndAddsCodecs) {
  DependencyGraph g = resnet_->CloneGraph();
  DistributedWhatIf dist;
  dist.cluster.machines = 4;
  dist.cluster.gpus_per_machine = 1;
  dist.cluster.network.bandwidth_gbps = 10.0;
  WhatIfDistributed(&g, resnet_trace_->gradients(), dist);
  const TimeNs comm_before = TotalDuration(g, g.Select(IsComm()));

  DgcWhatIf dgc;
  dgc.cluster = dist.cluster;
  dgc.compression_ratio = 0.01;
  WhatIfDgc(&g, dgc);
  const TimeNs comm_after = TotalDuration(g, g.Select(IsComm()));
  EXPECT_LT(comm_after, comm_before / 10);
  EXPECT_GT(g.Select(NameContains("dgc_compress")).size(), 0u);
  EXPECT_GT(g.Select(NameContains("dgc_decompress")).size(), 0u);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_F(OptimizationsTest, DgcHelpsWhenCommBound) {
  DistributedWhatIf dist;
  dist.cluster.machines = 4;
  dist.cluster.gpus_per_machine = 1;
  dist.cluster.network.bandwidth_gbps = 5.0;  // comm-bound
  const PredictionResult without = resnet_->Predict(
      [&](DependencyGraph* g) { WhatIfDistributed(g, resnet_trace_->gradients(), dist); });
  DgcWhatIf dgc;
  dgc.cluster = dist.cluster;
  const PredictionResult with = resnet_->Predict([&](DependencyGraph* g) {
    WhatIfDistributed(g, resnet_trace_->gradients(), dist);
    WhatIfDgc(g, dgc);
  });
  EXPECT_LT(with.predicted, without.predicted);
}

TEST_F(OptimizationsTest, EstimateElementwiseDurationScales) {
  const DependencyGraph& g = resnet_->graph();
  const TimeNs small = EstimateElementwiseDuration(g, 1 << 20);
  const TimeNs big = EstimateElementwiseDuration(g, 64 << 20);
  EXPECT_LT(small, big);
}

}  // namespace
}  // namespace daydream

// `daydream serve` protocol tests: RequestExecutor request/response envelopes
// (driven with plain strings, no transport) and the stdio front end end to
// end over string streams. Flat responses are parsed back with the protocol's
// own ParseJsonObject — the daemon must emit what its parser accepts.
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/ground_truth.h"
#include "src/service/request_executor.h"
#include "src/service/serve.h"
#include "src/service/version.h"
#include "src/trace/trace_io.h"
#include "src/util/fault.h"
#include "src/util/json.h"

namespace daydream {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_path_ = new std::string(::testing::TempDir() + "serve_test_tinymlp.ddtrace");
    const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp));
    ASSERT_TRUE(WriteTraceFile(trace, *trace_path_));
  }
  static void TearDownTestSuite() {
    delete trace_path_;
    trace_path_ = nullptr;
  }

  // Parses a flat response line with the protocol's own parser.
  static JsonObject Parse(const std::string& line) {
    std::string error;
    const std::optional<JsonObject> object = ParseJsonObject(line, &error);
    EXPECT_TRUE(object.has_value()) << error << "\nline: " << line;
    return object.value_or(JsonObject{});
  }

  // Issues `open` and returns the handle.
  static std::string Open(RequestExecutor* executor) {
    const JsonObject response = Parse(
        executor->Handle("{\"verb\": \"open\", \"trace\": \"" + *trace_path_ + "\"}").line);
    EXPECT_TRUE(response.GetBool("ok"));
    const std::string handle = response.GetString("session");
    EXPECT_FALSE(handle.empty());
    return handle;
  }

  static std::string* trace_path_;
};

std::string* ServeTest::trace_path_ = nullptr;

// ---- RequestExecutor envelopes ----

TEST_F(ServeTest, PingEchoesTheRequestId) {
  RequestExecutor executor;
  // A number id round-trips as its source token, a string id re-quoted, a
  // missing id is omitted.
  EXPECT_EQ(executor.Handle("{\"id\": 7, \"verb\": \"ping\"}").line,
            "{\"id\": 7, \"ok\": true}");
  EXPECT_EQ(executor.Handle("{\"id\": \"req-1\", \"verb\": \"ping\"}").line,
            "{\"id\": \"req-1\", \"ok\": true}");
  EXPECT_EQ(executor.Handle("{\"verb\": \"ping\"}").line, "{\"ok\": true}");
}

TEST_F(ServeTest, MalformedLineGetsAParseErrorEnvelope) {
  RequestExecutor executor;
  const JsonObject response = Parse(executor.Handle("this is not json").line);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "parse_error");
  // Nested containers are outside the flat request subset.
  const JsonObject nested =
      Parse(executor.Handle("{\"verb\": \"ping\", \"extra\": [1]}").line);
  EXPECT_EQ(nested.GetString("code"), "parse_error");
  EXPECT_NE(nested.GetString("error").find("nested"), std::string::npos);
}

TEST_F(ServeTest, MissingVerbIsABadRequest) {
  RequestExecutor executor;
  const JsonObject response = Parse(executor.Handle("{\"id\": 1}").line);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "bad_request");
}

TEST_F(ServeTest, UnknownVerbNamesItselfAndTheCatalog) {
  RequestExecutor executor;
  const JsonObject response =
      Parse(executor.Handle("{\"id\": 2, \"verb\": \"frobnicate\"}").line);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "unknown_verb");
  EXPECT_NE(response.GetString("error").find("frobnicate"), std::string::npos);
  EXPECT_NE(response.GetString("error").find("predict"), std::string::npos);
  EXPECT_NE(response.GetString("error").find("shutdown"), std::string::npos);
}

TEST_F(ServeTest, VersionVerbMatchesTheBuildIdentity) {
  RequestExecutor executor;
  const JsonObject response = Parse(executor.Handle("{\"verb\": \"version\"}").line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetString("version"), DaydreamVersionString());
  EXPECT_EQ(response.GetNumber("protocol"), kServeProtocolVersion);
  EXPECT_EQ(response.GetString("trace_schema"), kTraceSchemaVersion);
}

TEST_F(ServeTest, OpenRejectsMissingAndUnreadableTraces) {
  RequestExecutor executor;
  const JsonObject missing = Parse(executor.Handle("{\"verb\": \"open\"}").line);
  EXPECT_EQ(missing.GetString("code"), "bad_request");
  const JsonObject unreadable = Parse(
      executor.Handle("{\"verb\": \"open\", \"trace\": \"/nonexistent.ddtrace\"}").line);
  EXPECT_EQ(unreadable.GetString("code"), "bad_request");
  EXPECT_NE(unreadable.GetString("error").find("/nonexistent.ddtrace"), std::string::npos);
  const JsonObject bad_capacity = Parse(
      executor
          .Handle("{\"verb\": \"open\", \"trace\": \"" + *trace_path_ +
                  "\", \"cache_capacity\": 0}")
          .line);
  EXPECT_EQ(bad_capacity.GetString("code"), "bad_request");
  EXPECT_EQ(executor.sessions().size(), 0u);
}

TEST_F(ServeTest, OpenDescribesTheLoadedSession) {
  RequestExecutor executor;
  const JsonObject response = Parse(
      executor.Handle("{\"id\": 1, \"verb\": \"open\", \"trace\": \"" + *trace_path_ + "\"}")
          .line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetString("session"), "s1");
  EXPECT_EQ(response.GetString("model"), "TinyMLP");
  EXPECT_GT(response.GetNumber("events"), 0.0);
  EXPECT_GT(response.GetNumber("tasks"), 0.0);
  EXPECT_GT(response.GetNumber("baseline_ms"), 0.0);
}

TEST_F(ServeTest, SessionVerbsRejectUnknownHandles) {
  RequestExecutor executor;
  for (const char* verb : {"close", "stats", "report", "predict", "lint", "sweep"}) {
    const JsonObject response = Parse(
        executor.Handle(std::string("{\"verb\": \"") + verb + "\", \"session\": \"s9\"}").line);
    EXPECT_FALSE(response.GetBool("ok", true)) << verb;
    EXPECT_EQ(response.GetString("code"), "unknown_session") << verb;
  }
}

TEST_F(ServeTest, WarmPredictHitsThePlanCache) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);

  const std::string predict =
      "{\"verb\": \"predict\", \"session\": \"" + handle + "\", \"what_if\": \"amp\"}";
  const JsonObject cold = Parse(executor.Handle(predict).line);
  EXPECT_TRUE(cold.GetBool("ok"));
  EXPECT_EQ(cold.GetString("what_if"), "amp");
  EXPECT_FALSE(cold.GetBool("cache_hit", true));
  const JsonObject warm = Parse(executor.Handle(predict).line);
  EXPECT_TRUE(warm.GetBool("cache_hit"));
  EXPECT_EQ(warm.GetNumber("predicted_ms"), cold.GetNumber("predicted_ms"));

  // AMP is timing-only: the stats verb must show the miss was filled by a
  // retime of the baseline structure, not a CSR compile.
  const JsonObject stats =
      Parse(executor.Handle("{\"verb\": \"stats\", \"session\": \"" + handle + "\"}").line);
  EXPECT_EQ(stats.GetNumber("plan_cache_hits"), 1.0);
  EXPECT_EQ(stats.GetNumber("plan_cache_misses"), 1.0);
  EXPECT_EQ(stats.GetNumber("plan_cache_retimes"), 1.0);
  EXPECT_EQ(stats.GetNumber("plan_cache_compiles"), 0.0);
}

TEST_F(ServeTest, SimJobsIsConsumptionOnly) {
  // A daemon sized 2 workers × default 4 shards: the executor clamps the
  // effective shard count to the machine, requests may override it, and none
  // of that may change the answer or fragment the plan cache.
  RequestExecutor executor(SessionOptions{}, /*workers=*/2, /*default_sim_jobs=*/4);
  const std::string handle = Open(&executor);

  const std::string base =
      "{\"verb\": \"predict\", \"session\": \"" + handle + "\", \"what_if\": \"amp\"";
  const JsonObject serial = Parse(executor.Handle(base + ", \"sim_jobs\": 1}").line);
  EXPECT_TRUE(serial.GetBool("ok"));
  const JsonObject sharded = Parse(executor.Handle(base + ", \"sim_jobs\": 8}").line);
  EXPECT_TRUE(sharded.GetBool("ok"));
  EXPECT_EQ(sharded.GetNumber("predicted_ms"), serial.GetNumber("predicted_ms"));
  // Same cache entry: sim_jobs is not part of the request signature.
  EXPECT_TRUE(sharded.GetBool("cache_hit"));

  const JsonObject stats =
      Parse(executor.Handle("{\"verb\": \"stats\", \"session\": \"" + handle + "\"}").line);
  EXPECT_EQ(stats.GetNumber("serve_workers"), 2.0);
  EXPECT_GE(stats.GetNumber("hardware_concurrency"), 1.0);
  EXPECT_GE(stats.GetNumber("sim_jobs_cap"), 1.0);
}

TEST_F(ServeTest, PredictReportsUnknownWhatIfsAndBadFlags) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  const JsonObject unknown = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"overclock\"}")
          .line);
  EXPECT_EQ(unknown.GetString("code"), "unknown_what_if");
  const JsonObject bad_flag = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"distributed\", \"cluster\": \"banana\"}")
          .line);
  EXPECT_EQ(bad_flag.GetString("code"), "bad_request");
}

TEST_F(ServeTest, P3PredictBypassesTheTransformMachinery) {
  RequestExecutor executor;
  // The session fixture is a 1-iteration trace: the daemon must refuse with
  // an envelope (the library would abort), naming the collect fix.
  const std::string handle = Open(&executor);
  const JsonObject refused = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"p3\", \"cluster\": \"2x1\"}")
          .line);
  EXPECT_EQ(refused.GetString("code"), "bad_request");
  EXPECT_NE(refused.GetString("error").find("--iterations 2"), std::string::npos);

  // A 2-iteration profile takes the PS path and reports its own metric.
  const std::string p3_path = ::testing::TempDir() + "serve_test_tinymlp_2it.ddtrace";
  ASSERT_TRUE(WriteTraceFile(
      CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp), /*iterations=*/2), p3_path));
  const JsonObject opened =
      Parse(executor.Handle("{\"verb\": \"open\", \"trace\": \"" + p3_path + "\"}").line);
  ASSERT_TRUE(opened.GetBool("ok"));
  const JsonObject response = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + opened.GetString("session") +
                  "\", \"what_if\": \"p3\", \"cluster\": \"2x1\"}")
          .line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetString("what_if"), "p3");
  EXPECT_GT(response.GetNumber("p3_iteration_ms"), 0.0);
}

TEST_F(ServeTest, LintVerbReportsACleanSession) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  const JsonObject response =
      Parse(executor.Handle("{\"verb\": \"lint\", \"session\": \"" + handle + "\"}").line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetNumber("errors", -1.0), 0.0);
  EXPECT_TRUE(response.GetBool("clean"));
  EXPECT_TRUE(response.GetBool("plan_passes_run"));
}

TEST_F(ServeTest, ReportVerbCarriesTheAnalysisText) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  const JsonObject response =
      Parse(executor.Handle("{\"verb\": \"report\", \"session\": \"" + handle + "\"}").line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_NE(response.GetString("report").find("TinyMLP"), std::string::npos);
  EXPECT_NE(response.GetString("report").find("hottest layer phases"), std::string::npos);
}

TEST_F(ServeTest, SweepVerbRanksCases) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  // The cases array nests, so this response is checked textually (requests
  // are flat; responses need not be).
  const RequestExecutor::Response response =
      executor.Handle("{\"id\": 9, \"verb\": \"sweep\", \"session\": \"" + handle + "\"}");
  EXPECT_NE(response.line.find("\"id\": 9, \"ok\": true"), std::string::npos);
  EXPECT_NE(response.line.find("\"cases\": [{\"name\": "), std::string::npos);
  EXPECT_NE(response.line.find("\"speedup_pct\": "), std::string::npos);
}

TEST_F(ServeTest, SessionsVerbListsHandlesInOrderAndCloseRemoves) {
  RequestExecutor executor;
  const std::string first = Open(&executor);
  const std::string second = Open(&executor);
  EXPECT_EQ(executor.Handle("{\"verb\": \"sessions\"}").line,
            "{\"ok\": true, \"sessions\": [\"" + first + "\", \"" + second + "\"]}");
  const JsonObject closed = Parse(
      executor.Handle("{\"verb\": \"close\", \"session\": \"" + first + "\"}").line);
  EXPECT_TRUE(closed.GetBool("closed"));
  EXPECT_EQ(executor.Handle("{\"verb\": \"sessions\"}").line,
            "{\"ok\": true, \"sessions\": [\"" + second + "\"]}");
}

TEST_F(ServeTest, ShutdownVerbFlagsTheTransport) {
  RequestExecutor executor;
  const RequestExecutor::Response response =
      executor.Handle("{\"id\": 1, \"verb\": \"shutdown\"}");
  EXPECT_TRUE(response.shutdown);
  const JsonObject parsed = Parse(response.line);
  EXPECT_TRUE(parsed.GetBool("ok"));
  EXPECT_TRUE(parsed.GetBool("shutting_down"));
  // Everything else leaves the flag unset.
  EXPECT_FALSE(executor.Handle("{\"verb\": \"ping\"}").shutdown);
}

// ---- RunServeStdio ----

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST_F(ServeTest, StdioSessionLifecycle) {
  std::istringstream in(
      "{\"id\": 1, \"verb\": \"open\", \"trace\": \"" + *trace_path_ + "\"}\n"
      "\n"  // blank keep-alive, not a request
      "{\"id\": 2, \"verb\": \"predict\", \"session\": \"s1\", \"what_if\": \"amp\"}\n"
      "{\"id\": 3, \"verb\": \"predict\", \"session\": \"s1\", \"what_if\": \"amp\"}\n"
      "not json at all\n"
      "{\"id\": 5, \"verb\": \"shutdown\"}\n");
  std::ostringstream out;
  ServeOptions options;
  options.workers = 1;  // strictly in-order responses
  EXPECT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0], ServeHelloBanner());

  const JsonObject opened = Parse(lines[1]);
  EXPECT_EQ(opened.GetNumber("id"), 1.0);
  EXPECT_EQ(opened.GetString("session"), "s1");

  const JsonObject cold = Parse(lines[2]);
  EXPECT_EQ(cold.GetNumber("id"), 2.0);
  EXPECT_FALSE(cold.GetBool("cache_hit", true));
  const JsonObject warm = Parse(lines[3]);
  EXPECT_EQ(warm.GetNumber("id"), 3.0);
  EXPECT_TRUE(warm.GetBool("cache_hit"));
  EXPECT_EQ(warm.GetNumber("predicted_ms"), cold.GetNumber("predicted_ms"));

  // The malformed line got its envelope and did not stop the daemon.
  const JsonObject bad = Parse(lines[4]);
  EXPECT_EQ(bad.GetString("code"), "parse_error");
  const JsonObject shutdown = Parse(lines[5]);
  EXPECT_EQ(shutdown.GetNumber("id"), 5.0);
  EXPECT_TRUE(shutdown.GetBool("shutting_down"));
}

TEST_F(ServeTest, StdioEofDrainsWithoutAShutdownVerb) {
  std::istringstream in("{\"id\": 1, \"verb\": \"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(RunServeStdio(in, out), 0);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], ServeHelloBanner());
  EXPECT_EQ(lines[1], "{\"id\": 1, \"ok\": true}");
}

TEST_F(ServeTest, StdioAnswersEveryRequestUnderConcurrency) {
  // Several workers: responses may interleave out of request order, but every
  // id must be answered exactly once before the drain returns.
  constexpr int kRequests = 24;
  std::string input;
  for (int i = 1; i <= kRequests; ++i) {
    input += "{\"id\": " + std::to_string(i) + ", \"verb\": \"ping\"}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  ServeOptions options;
  options.workers = 4;
  EXPECT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests) + 1);
  EXPECT_EQ(lines[0], ServeHelloBanner());
  std::vector<int> answered(kRequests + 1, 0);
  for (size_t i = 1; i < lines.size(); ++i) {
    const JsonObject response = Parse(lines[i]);
    EXPECT_TRUE(response.GetBool("ok")) << lines[i];
    const int id = static_cast<int>(response.GetNumber("id", -1.0));
    ASSERT_GE(id, 1) << lines[i];
    ASSERT_LE(id, kRequests) << lines[i];
    ++answered[id];
  }
  for (int i = 1; i <= kRequests; ++i) {
    EXPECT_EQ(answered[i], 1) << "id " << i;
  }
}

TEST_F(ServeTest, HelloBannerEmbedsTheVersionJson) {
  const std::string banner = ServeHelloBanner();
  EXPECT_NE(banner.find("\"daydream\": \"serve\""), std::string::npos);
  EXPECT_NE(banner.find(DaydreamVersionJson()), std::string::npos);
}

// ---- Admission control, deadlines, quotas ----

// Restores the process-global injector even when an assertion bails out.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::Global().Disarm(); }
};

TEST_F(ServeTest, OversizedStdioLineAnswersOneEnvelopeAndContinues) {
  ServeOptions options;
  options.workers = 1;
  options.limits.max_line_bytes = 64;
  std::istringstream in(std::string(200, 'x') + "\n{\"id\": 1, \"verb\": \"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(RunServeStdio(in, out, options), 0);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  const JsonObject oversized = Parse(lines[1]);
  EXPECT_FALSE(oversized.GetBool("ok", true));
  EXPECT_EQ(oversized.GetString("code"), "bad_request");
  EXPECT_NE(oversized.GetString("error").find("max_line_bytes"), std::string::npos);
  // The oversized line is discarded through its newline; the stream (and the
  // daemon) keep going.
  EXPECT_EQ(Parse(lines[2]).GetNumber("id"), 1.0);
}

TEST_F(ServeTest, FullQueueShedsWithOverloadedEnvelopes) {
  FaultGuard guard;
  std::string error;
  // One worker held for ~40ms per request makes the flood outrun the queue.
  ASSERT_TRUE(FaultInjector::Global().ArmSpec("worker_execute:delay:1:40", &error)) << error;

  constexpr int kRequests = 10;
  std::string input;
  for (int i = 1; i <= kRequests; ++i) {
    input += "{\"id\": " + std::to_string(i) + ", \"verb\": \"ping\"}\n";
  }
  ServeOptions options;
  options.workers = 1;
  options.limits.max_queue = 1;
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests) + 1);
  std::vector<int> answered(kRequests + 1, 0);
  int ok = 0;
  int overloaded = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    const JsonObject response = Parse(lines[i]);
    const int id = static_cast<int>(response.GetNumber("id", -1.0));
    ASSERT_GE(id, 1) << lines[i];
    ASSERT_LE(id, kRequests) << lines[i];
    ++answered[id];
    if (response.GetBool("ok", false)) {
      ++ok;
    } else {
      EXPECT_EQ(response.GetString("code"), "overloaded") << lines[i];
      ++overloaded;
    }
  }
  // Exactly one envelope per request — shed or served, never dropped, never
  // doubled — and the flood must actually have shed something.
  for (int i = 1; i <= kRequests; ++i) {
    EXPECT_EQ(answered[i], 1) << "id " << i;
  }
  EXPECT_EQ(ok + overloaded, kRequests);
  EXPECT_GE(overloaded, 1);
  EXPECT_GE(ok, 1);  // the in-flight and queued requests still answer
}

TEST_F(ServeTest, QueuedRequestPastItsDeadlineIsAnsweredWithoutExecuting) {
  FaultGuard guard;
  std::string error;
  // The first request holds the only worker for ~40ms; the second's 5ms
  // admission deadline expires while it waits and it must be answered at
  // dequeue, not executed.
  ASSERT_TRUE(FaultInjector::Global().ArmSpec("worker_execute:delay:1:40", &error)) << error;

  ServeOptions options;
  options.workers = 1;
  options.limits.request_timeout_ms = 5;
  std::istringstream in(
      "{\"id\": 1, \"verb\": \"ping\"}\n"
      "{\"id\": 2, \"verb\": \"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  const JsonObject first = Parse(lines[1]);
  EXPECT_EQ(first.GetNumber("id"), 1.0);
  EXPECT_TRUE(first.GetBool("ok")) << lines[1];
  const JsonObject second = Parse(lines[2]);
  EXPECT_EQ(second.GetNumber("id"), 2.0);
  EXPECT_FALSE(second.GetBool("ok", true));
  EXPECT_EQ(second.GetString("code"), "deadline_exceeded");
}

TEST_F(ServeTest, PerRequestTimeoutCancelsInsidePredict) {
  FaultGuard guard;
  std::string error;
  // A 50ms stall at the compile stage against a 5ms request budget: the
  // deadline check after the stage must answer deadline_exceeded instead of
  // dispatching the plan.
  ASSERT_TRUE(FaultInjector::Global().ArmSpec("plan_compile:delay:1:50", &error)) << error;

  RequestExecutor executor;
  const std::string handle = Open(&executor);
  const JsonObject response = Parse(
      executor
          .Handle("{\"id\": 1, \"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"amp\", \"timeout_ms\": 5}")
          .line);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "deadline_exceeded");

  // With the budget gone the worker is free immediately; the same request
  // without a timeout completes.
  FaultInjector::Global().Disarm();
  const JsonObject retried = Parse(
      executor
          .Handle("{\"id\": 2, \"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"amp\"}")
          .line);
  EXPECT_TRUE(retried.GetBool("ok")) << retried.GetString("error");

  // Validation: timeout_ms must be a positive number.
  const JsonObject bad = Parse(
      executor
          .Handle("{\"id\": 3, \"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"amp\", \"timeout_ms\": 0}")
          .line);
  EXPECT_EQ(bad.GetString("code"), "bad_request");
}

TEST_F(ServeTest, SessionQuotaEvictsLruAndSessionCloseAliasWorks) {
  ServeLimits limits;
  limits.max_sessions = 2;
  RequestExecutor executor(SessionOptions{}, /*workers=*/1, /*default_sim_jobs=*/1, limits);
  const std::string first = Open(&executor);
  const std::string second = Open(&executor);
  // Touch the first so the second is the LRU candidate when the third opens.
  EXPECT_TRUE(
      Parse(executor.Handle("{\"verb\": \"stats\", \"session\": \"" + first + "\"}").line)
          .GetBool("ok"));
  const std::string third = Open(&executor);
  EXPECT_EQ(executor.sessions().size(), 2u);

  const JsonObject evicted = Parse(
      executor.Handle("{\"verb\": \"report\", \"session\": \"" + second + "\"}").line);
  EXPECT_EQ(evicted.GetString("code"), "unknown_session");
  const JsonObject survivor = Parse(
      executor.Handle("{\"verb\": \"report\", \"session\": \"" + first + "\"}").line);
  EXPECT_TRUE(survivor.GetBool("ok"));

  const JsonObject stats = Parse(
      executor.Handle("{\"verb\": \"stats\", \"session\": \"" + first + "\"}").line);
  EXPECT_EQ(stats.GetNumber("sessions_open"), 2.0);
  EXPECT_EQ(stats.GetNumber("sessions_evicted"), 1.0);
  EXPECT_GT(stats.GetNumber("resident_bytes"), 0.0);
  EXPECT_EQ(stats.GetNumber("max_sessions"), 2.0);

  // session.close is the namespaced alias of close.
  const JsonObject closed = Parse(
      executor.Handle("{\"verb\": \"session.close\", \"session\": \"" + third + "\"}").line);
  EXPECT_TRUE(closed.GetBool("closed"));
  EXPECT_EQ(executor.sessions().size(), 1u);
}

TEST_F(ServeTest, StatsReportsTheConfiguredLimits) {
  ServeLimits limits;
  limits.max_queue = 7;
  limits.request_timeout_ms = 1234;
  limits.max_line_bytes = 4096;
  limits.max_connections = 3;
  RequestExecutor executor(SessionOptions{}, 1, 1, limits);
  const std::string handle = Open(&executor);
  const JsonObject stats =
      Parse(executor.Handle("{\"verb\": \"stats\", \"session\": \"" + handle + "\"}").line);
  EXPECT_EQ(stats.GetNumber("max_queue"), 7.0);
  EXPECT_EQ(stats.GetNumber("request_timeout_ms"), 1234.0);
  EXPECT_EQ(stats.GetNumber("max_line_bytes"), 4096.0);
  EXPECT_EQ(stats.GetNumber("max_connections"), 3.0);
  EXPECT_EQ(stats.GetNumber("shed"), 0.0);
  EXPECT_EQ(stats.GetNumber("deadline_exceeded"), 0.0);
  EXPECT_EQ(stats.GetNumber("oversized_lines"), 0.0);
  EXPECT_EQ(stats.GetNumber("connections_refused"), 0.0);
  EXPECT_EQ(stats.GetNumber("active_connections"), 0.0);
  EXPECT_EQ(stats.GetString("faults"), "");
  // faults_fired is cumulative for the process, so other tests in this binary
  // may have bumped it; just require the field to be present and sane.
  EXPECT_GE(stats.GetNumber("faults_fired", -1.0), 0.0);
}

// ---- Graceful drain (subprocess) ----

#ifdef DAYDREAM_CLI_PATH

// SIGTERM to a live daemon must drain, not kill: every accepted request's
// response is flushed and the process exits 0. Runs the real CLI binary —
// signal disposition is process state the in-process tests must not touch.
TEST_F(ServeTest, SigtermDrainsTheStdioDaemonCleanly) {
  int to_child[2];
  int from_child[2];
  ASSERT_EQ(::pipe(to_child), 0);
  ASSERT_EQ(::pipe(from_child), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(to_child[0], 0);
    ::dup2(from_child[1], 1);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execl(DAYDREAM_CLI_PATH, DAYDREAM_CLI_PATH, "serve", "--jobs", "2",
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  // Line reader with a poll() timeout so a wedged daemon fails the test
  // instead of hanging the suite.
  std::string buffered;
  auto read_line = [&buffered, &from_child](std::string* line) -> bool {
    for (int spins = 0; spins < 200; ++spins) {
      const size_t newline = buffered.find('\n');
      if (newline != std::string::npos) {
        *line = buffered.substr(0, newline);
        buffered.erase(0, newline + 1);
        return true;
      }
      struct pollfd pfd = {from_child[0], POLLIN, 0};
      if (::poll(&pfd, 1, 100) <= 0) {
        continue;
      }
      char chunk[4096];
      const ssize_t n = ::read(from_child[0], chunk, sizeof(chunk));
      if (n <= 0) {
        return false;  // EOF: the daemon closed stdout
      }
      buffered.append(chunk, static_cast<size_t>(n));
    }
    return false;
  };

  std::string line;
  ASSERT_TRUE(read_line(&line)) << "no hello banner";
  EXPECT_NE(line.find("\"daydream\": \"serve\""), std::string::npos);
  const std::string ping = "{\"id\": 1, \"verb\": \"ping\"}\n{\"id\": 2, \"verb\": \"ping\"}\n";
  ASSERT_EQ(::write(to_child[1], ping.data(), ping.size()), static_cast<ssize_t>(ping.size()));
  ASSERT_TRUE(read_line(&line)) << "first response never arrived";
  EXPECT_NE(line.find("\"ok\": true"), std::string::npos);
  ASSERT_TRUE(read_line(&line)) << "second response never arrived";
  EXPECT_NE(line.find("\"ok\": true"), std::string::npos);

  // Drain: the daemon is blocked reading stdin; SIGTERM must unblock it and
  // exit 0 without losing the already-flushed responses above.
  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  pid_t waited = 0;
  for (int spins = 0; spins < 200; ++spins) {
    waited = ::waitpid(pid, &status, WNOHANG);
    if (waited == pid) {
      break;
    }
    ::poll(nullptr, 0, 50);  // portable sub-second sleep
  }
  if (waited != pid) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    FAIL() << "daemon did not exit within 10s of SIGTERM";
  }
  EXPECT_TRUE(WIFEXITED(status)) << "daemon was killed, not drained (status " << status << ")";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::close(to_child[1]);
  ::close(from_child[0]);
}

#endif  // DAYDREAM_CLI_PATH

}  // namespace
}  // namespace daydream

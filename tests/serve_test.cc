// `daydream serve` protocol tests: RequestExecutor request/response envelopes
// (driven with plain strings, no transport) and the stdio front end end to
// end over string streams. Flat responses are parsed back with the protocol's
// own ParseJsonObject — the daemon must emit what its parser accepts.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/ground_truth.h"
#include "src/service/request_executor.h"
#include "src/service/serve.h"
#include "src/service/version.h"
#include "src/trace/trace_io.h"
#include "src/util/json.h"

namespace daydream {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_path_ = new std::string(::testing::TempDir() + "serve_test_tinymlp.ddtrace");
    const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp));
    ASSERT_TRUE(WriteTraceFile(trace, *trace_path_));
  }
  static void TearDownTestSuite() {
    delete trace_path_;
    trace_path_ = nullptr;
  }

  // Parses a flat response line with the protocol's own parser.
  static JsonObject Parse(const std::string& line) {
    std::string error;
    const std::optional<JsonObject> object = ParseJsonObject(line, &error);
    EXPECT_TRUE(object.has_value()) << error << "\nline: " << line;
    return object.value_or(JsonObject{});
  }

  // Issues `open` and returns the handle.
  static std::string Open(RequestExecutor* executor) {
    const JsonObject response = Parse(
        executor->Handle("{\"verb\": \"open\", \"trace\": \"" + *trace_path_ + "\"}").line);
    EXPECT_TRUE(response.GetBool("ok"));
    const std::string handle = response.GetString("session");
    EXPECT_FALSE(handle.empty());
    return handle;
  }

  static std::string* trace_path_;
};

std::string* ServeTest::trace_path_ = nullptr;

// ---- RequestExecutor envelopes ----

TEST_F(ServeTest, PingEchoesTheRequestId) {
  RequestExecutor executor;
  // A number id round-trips as its source token, a string id re-quoted, a
  // missing id is omitted.
  EXPECT_EQ(executor.Handle("{\"id\": 7, \"verb\": \"ping\"}").line,
            "{\"id\": 7, \"ok\": true}");
  EXPECT_EQ(executor.Handle("{\"id\": \"req-1\", \"verb\": \"ping\"}").line,
            "{\"id\": \"req-1\", \"ok\": true}");
  EXPECT_EQ(executor.Handle("{\"verb\": \"ping\"}").line, "{\"ok\": true}");
}

TEST_F(ServeTest, MalformedLineGetsAParseErrorEnvelope) {
  RequestExecutor executor;
  const JsonObject response = Parse(executor.Handle("this is not json").line);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "parse_error");
  // Nested containers are outside the flat request subset.
  const JsonObject nested =
      Parse(executor.Handle("{\"verb\": \"ping\", \"extra\": [1]}").line);
  EXPECT_EQ(nested.GetString("code"), "parse_error");
  EXPECT_NE(nested.GetString("error").find("nested"), std::string::npos);
}

TEST_F(ServeTest, MissingVerbIsABadRequest) {
  RequestExecutor executor;
  const JsonObject response = Parse(executor.Handle("{\"id\": 1}").line);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "bad_request");
}

TEST_F(ServeTest, UnknownVerbNamesItselfAndTheCatalog) {
  RequestExecutor executor;
  const JsonObject response =
      Parse(executor.Handle("{\"id\": 2, \"verb\": \"frobnicate\"}").line);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "unknown_verb");
  EXPECT_NE(response.GetString("error").find("frobnicate"), std::string::npos);
  EXPECT_NE(response.GetString("error").find("predict"), std::string::npos);
  EXPECT_NE(response.GetString("error").find("shutdown"), std::string::npos);
}

TEST_F(ServeTest, VersionVerbMatchesTheBuildIdentity) {
  RequestExecutor executor;
  const JsonObject response = Parse(executor.Handle("{\"verb\": \"version\"}").line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetString("version"), DaydreamVersionString());
  EXPECT_EQ(response.GetNumber("protocol"), kServeProtocolVersion);
  EXPECT_EQ(response.GetString("trace_schema"), kTraceSchemaVersion);
}

TEST_F(ServeTest, OpenRejectsMissingAndUnreadableTraces) {
  RequestExecutor executor;
  const JsonObject missing = Parse(executor.Handle("{\"verb\": \"open\"}").line);
  EXPECT_EQ(missing.GetString("code"), "bad_request");
  const JsonObject unreadable = Parse(
      executor.Handle("{\"verb\": \"open\", \"trace\": \"/nonexistent.ddtrace\"}").line);
  EXPECT_EQ(unreadable.GetString("code"), "bad_request");
  EXPECT_NE(unreadable.GetString("error").find("/nonexistent.ddtrace"), std::string::npos);
  const JsonObject bad_capacity = Parse(
      executor
          .Handle("{\"verb\": \"open\", \"trace\": \"" + *trace_path_ +
                  "\", \"cache_capacity\": 0}")
          .line);
  EXPECT_EQ(bad_capacity.GetString("code"), "bad_request");
  EXPECT_EQ(executor.sessions().size(), 0u);
}

TEST_F(ServeTest, OpenDescribesTheLoadedSession) {
  RequestExecutor executor;
  const JsonObject response = Parse(
      executor.Handle("{\"id\": 1, \"verb\": \"open\", \"trace\": \"" + *trace_path_ + "\"}")
          .line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetString("session"), "s1");
  EXPECT_EQ(response.GetString("model"), "TinyMLP");
  EXPECT_GT(response.GetNumber("events"), 0.0);
  EXPECT_GT(response.GetNumber("tasks"), 0.0);
  EXPECT_GT(response.GetNumber("baseline_ms"), 0.0);
}

TEST_F(ServeTest, SessionVerbsRejectUnknownHandles) {
  RequestExecutor executor;
  for (const char* verb : {"close", "stats", "report", "predict", "lint", "sweep"}) {
    const JsonObject response = Parse(
        executor.Handle(std::string("{\"verb\": \"") + verb + "\", \"session\": \"s9\"}").line);
    EXPECT_FALSE(response.GetBool("ok", true)) << verb;
    EXPECT_EQ(response.GetString("code"), "unknown_session") << verb;
  }
}

TEST_F(ServeTest, WarmPredictHitsThePlanCache) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);

  const std::string predict =
      "{\"verb\": \"predict\", \"session\": \"" + handle + "\", \"what_if\": \"amp\"}";
  const JsonObject cold = Parse(executor.Handle(predict).line);
  EXPECT_TRUE(cold.GetBool("ok"));
  EXPECT_EQ(cold.GetString("what_if"), "amp");
  EXPECT_FALSE(cold.GetBool("cache_hit", true));
  const JsonObject warm = Parse(executor.Handle(predict).line);
  EXPECT_TRUE(warm.GetBool("cache_hit"));
  EXPECT_EQ(warm.GetNumber("predicted_ms"), cold.GetNumber("predicted_ms"));

  // AMP is timing-only: the stats verb must show the miss was filled by a
  // retime of the baseline structure, not a CSR compile.
  const JsonObject stats =
      Parse(executor.Handle("{\"verb\": \"stats\", \"session\": \"" + handle + "\"}").line);
  EXPECT_EQ(stats.GetNumber("plan_cache_hits"), 1.0);
  EXPECT_EQ(stats.GetNumber("plan_cache_misses"), 1.0);
  EXPECT_EQ(stats.GetNumber("plan_cache_retimes"), 1.0);
  EXPECT_EQ(stats.GetNumber("plan_cache_compiles"), 0.0);
}

TEST_F(ServeTest, SimJobsIsConsumptionOnly) {
  // A daemon sized 2 workers × default 4 shards: the executor clamps the
  // effective shard count to the machine, requests may override it, and none
  // of that may change the answer or fragment the plan cache.
  RequestExecutor executor(SessionOptions{}, /*workers=*/2, /*default_sim_jobs=*/4);
  const std::string handle = Open(&executor);

  const std::string base =
      "{\"verb\": \"predict\", \"session\": \"" + handle + "\", \"what_if\": \"amp\"";
  const JsonObject serial = Parse(executor.Handle(base + ", \"sim_jobs\": 1}").line);
  EXPECT_TRUE(serial.GetBool("ok"));
  const JsonObject sharded = Parse(executor.Handle(base + ", \"sim_jobs\": 8}").line);
  EXPECT_TRUE(sharded.GetBool("ok"));
  EXPECT_EQ(sharded.GetNumber("predicted_ms"), serial.GetNumber("predicted_ms"));
  // Same cache entry: sim_jobs is not part of the request signature.
  EXPECT_TRUE(sharded.GetBool("cache_hit"));

  const JsonObject stats =
      Parse(executor.Handle("{\"verb\": \"stats\", \"session\": \"" + handle + "\"}").line);
  EXPECT_EQ(stats.GetNumber("serve_workers"), 2.0);
  EXPECT_GE(stats.GetNumber("hardware_concurrency"), 1.0);
  EXPECT_GE(stats.GetNumber("sim_jobs_cap"), 1.0);
}

TEST_F(ServeTest, PredictReportsUnknownWhatIfsAndBadFlags) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  const JsonObject unknown = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"overclock\"}")
          .line);
  EXPECT_EQ(unknown.GetString("code"), "unknown_what_if");
  const JsonObject bad_flag = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"distributed\", \"cluster\": \"banana\"}")
          .line);
  EXPECT_EQ(bad_flag.GetString("code"), "bad_request");
}

TEST_F(ServeTest, P3PredictBypassesTheTransformMachinery) {
  RequestExecutor executor;
  // The session fixture is a 1-iteration trace: the daemon must refuse with
  // an envelope (the library would abort), naming the collect fix.
  const std::string handle = Open(&executor);
  const JsonObject refused = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + handle +
                  "\", \"what_if\": \"p3\", \"cluster\": \"2x1\"}")
          .line);
  EXPECT_EQ(refused.GetString("code"), "bad_request");
  EXPECT_NE(refused.GetString("error").find("--iterations 2"), std::string::npos);

  // A 2-iteration profile takes the PS path and reports its own metric.
  const std::string p3_path = ::testing::TempDir() + "serve_test_tinymlp_2it.ddtrace";
  ASSERT_TRUE(WriteTraceFile(
      CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp), /*iterations=*/2), p3_path));
  const JsonObject opened =
      Parse(executor.Handle("{\"verb\": \"open\", \"trace\": \"" + p3_path + "\"}").line);
  ASSERT_TRUE(opened.GetBool("ok"));
  const JsonObject response = Parse(
      executor
          .Handle("{\"verb\": \"predict\", \"session\": \"" + opened.GetString("session") +
                  "\", \"what_if\": \"p3\", \"cluster\": \"2x1\"}")
          .line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetString("what_if"), "p3");
  EXPECT_GT(response.GetNumber("p3_iteration_ms"), 0.0);
}

TEST_F(ServeTest, LintVerbReportsACleanSession) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  const JsonObject response =
      Parse(executor.Handle("{\"verb\": \"lint\", \"session\": \"" + handle + "\"}").line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_EQ(response.GetNumber("errors", -1.0), 0.0);
  EXPECT_TRUE(response.GetBool("clean"));
  EXPECT_TRUE(response.GetBool("plan_passes_run"));
}

TEST_F(ServeTest, ReportVerbCarriesTheAnalysisText) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  const JsonObject response =
      Parse(executor.Handle("{\"verb\": \"report\", \"session\": \"" + handle + "\"}").line);
  EXPECT_TRUE(response.GetBool("ok"));
  EXPECT_NE(response.GetString("report").find("TinyMLP"), std::string::npos);
  EXPECT_NE(response.GetString("report").find("hottest layer phases"), std::string::npos);
}

TEST_F(ServeTest, SweepVerbRanksCases) {
  RequestExecutor executor;
  const std::string handle = Open(&executor);
  // The cases array nests, so this response is checked textually (requests
  // are flat; responses need not be).
  const RequestExecutor::Response response =
      executor.Handle("{\"id\": 9, \"verb\": \"sweep\", \"session\": \"" + handle + "\"}");
  EXPECT_NE(response.line.find("\"id\": 9, \"ok\": true"), std::string::npos);
  EXPECT_NE(response.line.find("\"cases\": [{\"name\": "), std::string::npos);
  EXPECT_NE(response.line.find("\"speedup_pct\": "), std::string::npos);
}

TEST_F(ServeTest, SessionsVerbListsHandlesInOrderAndCloseRemoves) {
  RequestExecutor executor;
  const std::string first = Open(&executor);
  const std::string second = Open(&executor);
  EXPECT_EQ(executor.Handle("{\"verb\": \"sessions\"}").line,
            "{\"ok\": true, \"sessions\": [\"" + first + "\", \"" + second + "\"]}");
  const JsonObject closed = Parse(
      executor.Handle("{\"verb\": \"close\", \"session\": \"" + first + "\"}").line);
  EXPECT_TRUE(closed.GetBool("closed"));
  EXPECT_EQ(executor.Handle("{\"verb\": \"sessions\"}").line,
            "{\"ok\": true, \"sessions\": [\"" + second + "\"]}");
}

TEST_F(ServeTest, ShutdownVerbFlagsTheTransport) {
  RequestExecutor executor;
  const RequestExecutor::Response response =
      executor.Handle("{\"id\": 1, \"verb\": \"shutdown\"}");
  EXPECT_TRUE(response.shutdown);
  const JsonObject parsed = Parse(response.line);
  EXPECT_TRUE(parsed.GetBool("ok"));
  EXPECT_TRUE(parsed.GetBool("shutting_down"));
  // Everything else leaves the flag unset.
  EXPECT_FALSE(executor.Handle("{\"verb\": \"ping\"}").shutdown);
}

// ---- RunServeStdio ----

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST_F(ServeTest, StdioSessionLifecycle) {
  std::istringstream in(
      "{\"id\": 1, \"verb\": \"open\", \"trace\": \"" + *trace_path_ + "\"}\n"
      "\n"  // blank keep-alive, not a request
      "{\"id\": 2, \"verb\": \"predict\", \"session\": \"s1\", \"what_if\": \"amp\"}\n"
      "{\"id\": 3, \"verb\": \"predict\", \"session\": \"s1\", \"what_if\": \"amp\"}\n"
      "not json at all\n"
      "{\"id\": 5, \"verb\": \"shutdown\"}\n");
  std::ostringstream out;
  ServeOptions options;
  options.workers = 1;  // strictly in-order responses
  EXPECT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0], ServeHelloBanner());

  const JsonObject opened = Parse(lines[1]);
  EXPECT_EQ(opened.GetNumber("id"), 1.0);
  EXPECT_EQ(opened.GetString("session"), "s1");

  const JsonObject cold = Parse(lines[2]);
  EXPECT_EQ(cold.GetNumber("id"), 2.0);
  EXPECT_FALSE(cold.GetBool("cache_hit", true));
  const JsonObject warm = Parse(lines[3]);
  EXPECT_EQ(warm.GetNumber("id"), 3.0);
  EXPECT_TRUE(warm.GetBool("cache_hit"));
  EXPECT_EQ(warm.GetNumber("predicted_ms"), cold.GetNumber("predicted_ms"));

  // The malformed line got its envelope and did not stop the daemon.
  const JsonObject bad = Parse(lines[4]);
  EXPECT_EQ(bad.GetString("code"), "parse_error");
  const JsonObject shutdown = Parse(lines[5]);
  EXPECT_EQ(shutdown.GetNumber("id"), 5.0);
  EXPECT_TRUE(shutdown.GetBool("shutting_down"));
}

TEST_F(ServeTest, StdioEofDrainsWithoutAShutdownVerb) {
  std::istringstream in("{\"id\": 1, \"verb\": \"ping\"}\n");
  std::ostringstream out;
  EXPECT_EQ(RunServeStdio(in, out), 0);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], ServeHelloBanner());
  EXPECT_EQ(lines[1], "{\"id\": 1, \"ok\": true}");
}

TEST_F(ServeTest, StdioAnswersEveryRequestUnderConcurrency) {
  // Several workers: responses may interleave out of request order, but every
  // id must be answered exactly once before the drain returns.
  constexpr int kRequests = 24;
  std::string input;
  for (int i = 1; i <= kRequests; ++i) {
    input += "{\"id\": " + std::to_string(i) + ", \"verb\": \"ping\"}\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  ServeOptions options;
  options.workers = 4;
  EXPECT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests) + 1);
  EXPECT_EQ(lines[0], ServeHelloBanner());
  std::vector<int> answered(kRequests + 1, 0);
  for (size_t i = 1; i < lines.size(); ++i) {
    const JsonObject response = Parse(lines[i]);
    EXPECT_TRUE(response.GetBool("ok")) << lines[i];
    const int id = static_cast<int>(response.GetNumber("id", -1.0));
    ASSERT_GE(id, 1) << lines[i];
    ASSERT_LE(id, kRequests) << lines[i];
    ++answered[id];
  }
  for (int i = 1; i <= kRequests; ++i) {
    EXPECT_EQ(answered[i], 1) << "id " << i;
  }
}

TEST_F(ServeTest, HelloBannerEmbedsTheVersionJson) {
  const std::string banner = ServeHelloBanner();
  EXPECT_NE(banner.find("\"daydream\": \"serve\""), std::string::npos);
  EXPECT_NE(banner.find(DaydreamVersionJson()), std::string::npos);
}

}  // namespace
}  // namespace daydream

// End-to-end accuracy tests: Daydream's predictions vs the ground-truth
// executor, asserting the paper's headline accuracy claims (with modest
// slack for our synthetic substrate).
#include <gtest/gtest.h>

#include "src/core/optimizations/optimizations.h"
#include "src/core/predictor.h"
#include "src/runtime/ground_truth.h"
#include "src/util/stats.h"

namespace daydream {
namespace {

double PredErr(TimeNs predicted, TimeNs ground_truth) {
  return RelErrorPct(static_cast<double>(predicted), static_cast<double>(ground_truth));
}

// ---- Figure 5: AMP ----

TEST(PaperAccuracy, AmpErrorsUnderBound) {
  for (ModelId model :
       {ModelId::kBertBase, ModelId::kBertLarge, ModelId::kGnmt, ModelId::kResNet50}) {
    const RunConfig config = DefaultRunConfig(model);
    const ExecutionResult baseline = RunGroundTruth(config);
    RunConfig amp = config;
    amp.gt.amp = true;
    const TimeNs gt = RunGroundTruth(amp).IterationTime();
    Daydream dd(baseline.trace);
    const PredictionResult pred = dd.Predict([](DependencyGraph* g) { WhatIfAmp(g); });
    EXPECT_LT(PredErr(pred.predicted, gt), 14.0) << ModelName(model);  // paper: <13%
    // The prediction must detect the optimization as beneficial.
    EXPECT_GT(pred.SpeedupPct(), 0.0) << ModelName(model);
  }
}

TEST(PaperAccuracy, BertLargeAmpModerateGain) {
  // §1 / Figure 5: BERT_LARGE gains ~17.2% from AMP — far below the 2-3x
  // kernel-level speedups, because the CPU becomes the bottleneck.
  RunConfig config = DefaultRunConfig(ModelId::kBertLarge);
  const TimeNs fp32 = RunGroundTruth(config).IterationTime();
  config.gt.amp = true;
  const TimeNs fp16 = RunGroundTruth(config).IterationTime();
  const double speedup_pct = 100.0 * (1.0 - static_cast<double>(fp16) / fp32);
  EXPECT_GT(speedup_pct, 10.0);
  EXPECT_LT(speedup_pct, 28.0);
}

// ---- Figure 7: FusedAdam ----

TEST(PaperAccuracy, FusedAdamErrorsUnderBound) {
  for (ModelId model : {ModelId::kBertBase, ModelId::kBertLarge, ModelId::kGnmt}) {
    const RunConfig config = DefaultRunConfig(model);
    const ExecutionResult baseline = RunGroundTruth(config);
    RunConfig fused = config;
    fused.gt.fused_adam = true;
    const TimeNs gt = RunGroundTruth(fused).IterationTime();
    Daydream dd(baseline.trace);
    const PredictionResult pred = dd.Predict([](DependencyGraph* g) { WhatIfFusedAdam(g); });
    EXPECT_LT(PredErr(pred.predicted, gt), 13.0) << ModelName(model);
  }
}

TEST(PaperAccuracy, FusedAdamBertLargeBigGnmtSmall) {
  // §6.3: BERT_LARGE improves ~38.7% (WU is ~45% of its iteration and
  // launches ~5.2k kernels); GNMT improves little (WU < 10%).
  auto gt_speedup = [](ModelId model) {
    RunConfig config = DefaultRunConfig(model);
    const TimeNs base = RunGroundTruth(config).IterationTime();
    config.gt.fused_adam = true;
    const TimeNs fused = RunGroundTruth(config).IterationTime();
    return 100.0 * (1.0 - static_cast<double>(fused) / base);
  };
  const double bert_large = gt_speedup(ModelId::kBertLarge);
  const double gnmt = gt_speedup(ModelId::kGnmt);
  EXPECT_GT(bert_large, 30.0);
  EXPECT_LT(gnmt, 12.0);
  EXPECT_GT(bert_large, 3.0 * gnmt);
}

TEST(PaperAccuracy, BertWeightUpdateFractions) {
  // §6.3: WU is ~30% of BERT base iteration time and ~45% for BERT large.
  auto wu_fraction = [](ModelId model) {
    const Trace trace = CollectBaselineTrace(DefaultRunConfig(model));
    const std::vector<LayerSpan> spans = trace.ExtractLayerSpans();
    TimeNs wu = 0;
    for (const LayerSpan& s : spans) {
      if (s.phase == Phase::kWeightUpdate) {
        wu += s.end - s.begin;
      }
    }
    return static_cast<double>(wu) / trace.makespan();
  };
  EXPECT_NEAR(wu_fraction(ModelId::kBertBase), 0.30, 0.10);
  EXPECT_NEAR(wu_fraction(ModelId::kBertLarge), 0.45, 0.10);
}

// ---- §6.4: Reconstructing Batchnorm ----

TEST(PaperAccuracy, RbnPredictionOptimisticVsGroundTruth) {
  const RunConfig config = DefaultRunConfig(ModelId::kDenseNet121);
  const ModelGraph model = BuildModel(config.model, config.batch);
  const ExecutionResult baseline = RunGroundTruth(config);
  RunConfig rbn = config;
  rbn.gt.restructured_bn = true;
  const TimeNs gt = RunGroundTruth(rbn).IterationTime();
  Daydream dd(baseline.trace);
  const PredictionResult pred =
      dd.Predict([&](DependencyGraph* g) { WhatIfRestructuredBatchnorm(g, model); });
  const double gt_speedup = 100.0 * (1.0 - static_cast<double>(gt) / baseline.IterationTime());
  // The paper's qualitative result: both show a moderate gain, and the
  // prediction overestimates it (12.7% predicted vs 7% measured).
  EXPECT_GT(gt_speedup, 3.0);
  EXPECT_GT(pred.SpeedupPct(), gt_speedup);
  EXPECT_LT(pred.SpeedupPct(), 2.2 * gt_speedup);
}

// ---- Figure 8: distributed ----

TEST(PaperAccuracy, DistributedPredictionErrors) {
  const RunConfig base_config = DefaultRunConfig(ModelId::kGnmt);
  const Trace baseline = CollectBaselineTrace(base_config);
  Daydream dd(baseline);
  RunningStats errors;
  for (double gbps : {10.0, 40.0}) {
    for (int machines : {2, 4}) {
      ClusterConfig cluster;
      cluster.machines = machines;
      cluster.gpus_per_machine = 1;
      cluster.network.bandwidth_gbps = gbps;
      RunConfig dist = base_config;
      dist.comm = CommBackend::kNccl;
      dist.cluster = cluster;
      const TimeNs gt = RunGroundTruth(dist).IterationTime();
      DistributedWhatIf opts;
      opts.cluster = cluster;
      const PredictionResult pred = dd.Predict(
          [&](DependencyGraph* g) { WhatIfDistributed(g, dd.trace().gradients(), opts); });
      errors.Add(PredErr(pred.predicted, gt));
    }
  }
  EXPECT_LT(errors.max(), 11.0);  // paper: at most ~10% in most configurations
}

TEST(PaperAccuracy, DistributedScalingShape) {
  // Iteration time grows with worker count at fixed bandwidth (comm overhead)
  // and shrinks with bandwidth at fixed worker count.
  const Trace baseline = CollectBaselineTrace(DefaultRunConfig(ModelId::kVgg19));
  Daydream dd(baseline);
  auto predict = [&](int machines, double gbps) {
    DistributedWhatIf opts;
    opts.cluster.machines = machines;
    opts.cluster.gpus_per_machine = 1;
    opts.cluster.network.bandwidth_gbps = gbps;
    return dd
        .Predict([&](DependencyGraph* g) { WhatIfDistributed(g, dd.trace().gradients(), opts); })
        .predicted;
  };
  EXPECT_LT(predict(2, 10.0), predict(4, 10.0));
  EXPECT_GT(predict(4, 10.0), predict(4, 40.0));
}

// ---- Figure 9: NCCL interference ----

TEST(PaperAccuracy, NcclInterferenceRatios) {
  RunConfig config = DefaultRunConfig(ModelId::kGnmt);
  config.comm = CommBackend::kNccl;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  config.cluster.network.bandwidth_gbps = 40.0;
  const ExecutionResult base = RunGroundTruth(config);
  config.gt.sync_before_allreduce = true;
  const ExecutionResult sync = RunGroundTruth(config);

  RunningStats over_theory;
  for (const AllReduceRecord& r : base.allreduce_calls) {
    over_theory.Add(static_cast<double>(r.actual) / r.theoretical);
  }
  // Paper: ground truth ~34% above theoretical on average.
  EXPECT_GT(over_theory.mean(), 1.15);
  EXPECT_LT(over_theory.mean(), 1.45);
  // Sync never hurts end-to-end and can help (paper: up to 22%).
  EXPECT_LE(sync.IterationTime(), static_cast<TimeNs>(base.IterationTime() * 1.01));
}

// ---- general: the tool's raison d'etre ----

TEST(PaperAccuracy, RanksOptimizationsCorrectly) {
  // Daydream's purpose: distinguish effective optimizations from weak ones
  // (§1). For BERT large, FusedAdam >> AMP ~ moderate > Gist (a slowdown).
  const RunConfig config = DefaultRunConfig(ModelId::kBertLarge);
  const Trace baseline = CollectBaselineTrace(config);
  Daydream dd(baseline);
  const double fused =
      dd.Predict([](DependencyGraph* g) { WhatIfFusedAdam(g); }).SpeedupPct();
  const double amp = dd.Predict([](DependencyGraph* g) { WhatIfAmp(g); }).SpeedupPct();
  EXPECT_GT(fused, amp);
  EXPECT_GT(amp, 0.0);
}

TEST(PaperAccuracy, PredictionsAreDeterministic) {
  const RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  const Trace t1 = CollectBaselineTrace(config);
  const Trace t2 = CollectBaselineTrace(config);
  Daydream a(t1);
  Daydream b(t2);
  EXPECT_EQ(a.BaselineSimTime(), b.BaselineSimTime());
  EXPECT_EQ(a.Predict([](DependencyGraph* g) { WhatIfAmp(g); }).predicted,
            b.Predict([](DependencyGraph* g) { WhatIfAmp(g); }).predicted);
}

TEST(PaperAccuracy, BaselineSimulationReproducesMeasurement) {
  // Phase-2 fidelity across every model: the simulated untransformed graph
  // must match the measured iteration (the paper's implicit correctness bar).
  for (ModelId model : PaperModels()) {
    const Trace trace = CollectBaselineTrace(DefaultRunConfig(model));
    Daydream dd(trace);
    EXPECT_LT(RelErrorPct(static_cast<double>(dd.BaselineSimTime()),
                          static_cast<double>(trace.makespan())),
              0.5)
        << ModelName(model);
  }
}

}  // namespace
}  // namespace daydream

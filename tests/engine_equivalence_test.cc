// Differential test between the two simulator engines: the compiled-plan
// event engine (Simulator::Run with a comparator-based scheduler, or an
// explicit SimPlan) must reproduce the reference Algorithm-1 scan
// (Simulator::RunReference) *exactly* — same makespan, same per-task
// start/end, same per-lane accounting — on every model in the zoo under every
// what-if transformation, on P3's priority-scheduled parameter-server graphs,
// on replicated multi-worker cluster graphs, and on seeded random DAGs. The
// plan Retime path (shared structure block, rebuilt timings/keys) gets the
// same treatment.
#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/event_engine.h"
#include "src/core/graph_builder.h"
#include "src/core/optimizations/optimizations.h"
#include "src/core/predictor.h"
#include "src/core/sim_plan.h"
#include "src/core/transform.h"
#include "src/runtime/ground_truth.h"
#include "src/util/thread_pool.h"

namespace daydream {
namespace {

void ExpectSameResult(const SimResult& reference, const SimResult& event) {
  EXPECT_EQ(reference.makespan, event.makespan);
  EXPECT_EQ(reference.start, event.start);
  EXPECT_EQ(reference.end, event.end);
  EXPECT_EQ(reference.lane_threads, event.lane_threads);
  EXPECT_EQ(reference.lane_busy, event.lane_busy);
  EXPECT_EQ(reference.lane_end, event.lane_end);
  EXPECT_EQ(reference.thread_busy(), event.thread_busy());
  EXPECT_EQ(reference.thread_end(), event.thread_end());
  EXPECT_EQ(reference.dispatched, event.dispatched);
}

// Traces are expensive to collect; cache one per (model, iterations).
const Trace& CachedTrace(ModelId model, int iterations = 1) {
  static std::map<std::pair<ModelId, int>, Trace>* cache =
      new std::map<std::pair<ModelId, int>, Trace>();
  const auto key = std::make_pair(model, iterations);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, CollectBaselineTrace(DefaultRunConfig(model), iterations)).first;
  }
  return it->second;
}

struct WhatIfCase {
  const char* name;
  // Applies the transformation; receives the model graph for layer-structured
  // what-ifs and the trace for gradient metadata.
  std::function<void(DependencyGraph*, const ModelGraph&, const Trace&)> apply;
};

const std::vector<WhatIfCase>& WhatIfs() {
  static const std::vector<WhatIfCase>* cases = new std::vector<WhatIfCase>{
      {"baseline", [](DependencyGraph*, const ModelGraph&, const Trace&) {}},
      {"amp", [](DependencyGraph* g, const ModelGraph&, const Trace&) { WhatIfAmp(g); }},
      {"fused_adam",
       [](DependencyGraph* g, const ModelGraph&, const Trace&) { WhatIfFusedAdam(g); }},
      {"rbn",
       [](DependencyGraph* g, const ModelGraph& m, const Trace&) {
         WhatIfRestructuredBatchnorm(g, m);
       }},
      {"metaflow",
       [](DependencyGraph* g, const ModelGraph& m, const Trace&) { WhatIfMetaFlowFuseConvBn(g, m); }},
      {"gist", [](DependencyGraph* g, const ModelGraph& m, const Trace&) { WhatIfGist(g, m); }},
      {"vdnn", [](DependencyGraph* g, const ModelGraph& m, const Trace&) { WhatIfVdnn(g, m); }},
      {"distributed_4x2",
       [](DependencyGraph* g, const ModelGraph&, const Trace& t) {
         DistributedWhatIf opts;
         opts.cluster.machines = 4;
         opts.cluster.gpus_per_machine = 2;
         WhatIfDistributed(g, t.gradients(), opts);
       }},
      {"distributed_2x2_25gbps",
       [](DependencyGraph* g, const ModelGraph&, const Trace& t) {
         DistributedWhatIf opts;
         opts.cluster.machines = 2;
         opts.cluster.gpus_per_machine = 2;
         opts.cluster.network.bandwidth_gbps = 25.0;
         WhatIfDistributed(g, t.gradients(), opts);
       }},
  };
  return *cases;
}

class EngineEquivalence : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EngineEquivalence, EventEngineReproducesReference) {
  const ModelId model = AllModels()[static_cast<size_t>(std::get<0>(GetParam()))];
  const WhatIfCase& what_if = WhatIfs()[static_cast<size_t>(std::get<1>(GetParam()))];

  const Trace& trace = CachedTrace(model);
  const ModelGraph model_graph = BuildModel(model);
  DependencyGraph graph = BuildDependencyGraph(trace);
  what_if.apply(&graph, model_graph, trace);

  const Simulator simulator;  // EarliestStart: comparator-based
  ExpectSameResult(simulator.RunReference(graph), simulator.Run(graph));
}

std::string CaseName(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  std::string name = ModelName(AllModels()[static_cast<size_t>(std::get<0>(info.param))]);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name + "__" + WhatIfs()[static_cast<size_t>(std::get<1>(info.param))].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllWhatIfs, EngineEquivalence,
    ::testing::Combine(::testing::Range(0, static_cast<int>(AllModels().size())),
                       ::testing::Range(0, static_cast<int>(WhatIfs().size()))),
    CaseName);

// The priority scheduler drives P3's parameter-server graphs: push/pull chains
// with per-slice priorities on two communication channels.
TEST(EngineEquivalencePriority, P3ParameterServerGraphs) {
  for (ModelId model : {ModelId::kResNet50, ModelId::kGnmt, ModelId::kVgg19}) {
    const Trace& trace = CachedTrace(model, /*iterations=*/2);
    const Daydream daydream(trace);
    DependencyGraph graph = daydream.CloneGraph();
    PsWhatIf options;
    WhatIfP3(&graph, BuildModel(model), options);

    const Simulator priority(std::make_shared<PriorityCommScheduler>());
    ExpectSameResult(priority.RunReference(graph), priority.Run(graph));
  }
}

TEST(EngineEquivalencePriority, DistributedGraphs) {
  for (ModelId model : {ModelId::kResNet50, ModelId::kBertBase}) {
    const Trace& trace = CachedTrace(model);
    DependencyGraph graph = BuildDependencyGraph(trace);
    DistributedWhatIf opts;
    opts.cluster.machines = 4;
    opts.cluster.gpus_per_machine = 2;
    WhatIfDistributed(&graph, trace.gradients(), opts);

    const Simulator priority(std::make_shared<PriorityCommScheduler>());
    ExpectSameResult(priority.RunReference(graph), priority.Run(graph));
  }
}

// Random DAGs: tasks on realistic lane kinds (comm tasks on comm channels),
// random forward edges, zero durations and gaps included — the adversarial
// shapes for ready-structure bookkeeping.
DependencyGraph RandomGraph(int seed, bool with_priorities) {
  std::mt19937 rng(static_cast<unsigned>(seed));
  DependencyGraph g;
  const int cpu_threads = 1 + static_cast<int>(rng() % 3);
  const int gpu_streams = 1 + static_cast<int>(rng() % 3);
  const int comm_channels = 1 + static_cast<int>(rng() % 2);
  const int num_tasks = 120 + static_cast<int>(rng() % 80);

  std::vector<TaskId> ids;
  for (int i = 0; i < num_tasks; ++i) {
    Task t;
    const int lane = static_cast<int>(rng() % 10);
    if (lane < 4) {
      t.type = TaskType::kCpu;
      t.thread = ExecThread::Cpu(static_cast<int>(rng()) % cpu_threads);
    } else if (lane < 8) {
      t.type = TaskType::kGpu;
      t.thread = ExecThread::Gpu(static_cast<int>(rng()) % gpu_streams);
    } else {
      t.type = TaskType::kComm;
      t.thread = ExecThread::Comm(static_cast<int>(rng()) % comm_channels);
      if (with_priorities) {
        t.priority = static_cast<int>(rng() % 5);
      }
    }
    t.duration = static_cast<TimeNs>(rng() % 50) * Us(1);  // zero durations included
    t.gap = static_cast<TimeNs>(rng() % 4) * Us(1);
    ids.push_back(g.AddTask(std::move(t)));
  }
  for (int i = 0; i < num_tasks; ++i) {
    for (int j = i + 1; j < num_tasks; ++j) {
      if (rng() % 100 < 3) {  // sparse forward edges keep the frontier wide
        g.AddEdge(ids[static_cast<size_t>(i)], ids[static_cast<size_t>(j)]);
      }
    }
  }
  return g;
}

class RandomGraphEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphEquivalence, EarliestStart) {
  const DependencyGraph g = RandomGraph(GetParam(), /*with_priorities=*/false);
  const Simulator simulator;
  ExpectSameResult(simulator.RunReference(g), simulator.Run(g));
}

TEST_P(RandomGraphEquivalence, PriorityComm) {
  const DependencyGraph g = RandomGraph(GetParam() + 1000, /*with_priorities=*/true);
  const Simulator simulator(std::make_shared<PriorityCommScheduler>());
  ExpectSameResult(simulator.RunReference(g), simulator.Run(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphEquivalence, ::testing::Range(1, 13));

// ---- Pipeline-parallel schedules ----
//
// Every generated pipeline graph (stages x micro-batches x schedule kind)
// must dispatch identically on the compiled-plan event engine and the
// reference Algorithm-1 scan: the lane count scales with stages and the
// schedule is pinned by lane order, which makes these the widest-frontier
// graphs a what-if produces from a single profile.
class PipelineDifferential
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};  // stages, mb, schedule

TEST_P(PipelineDifferential, EventEngineReproducesReference) {
  const int stages = std::get<0>(GetParam());
  const int microbatches = std::get<1>(GetParam());
  const auto kind = std::get<2>(GetParam()) == 0 ? PipelineScheduleKind::kGPipe
                                                 : PipelineScheduleKind::k1F1B;

  const Trace& trace = CachedTrace(ModelId::kTinyMlp);
  const ModelGraph model = BuildModel(ModelId::kTinyMlp);
  DependencyGraph graph = BuildDependencyGraph(trace);
  PipelineWhatIf options;
  options.num_stages = stages;
  options.num_microbatches = microbatches;
  options.schedule = kind;
  WhatIfPipeline(&graph, model, options);

  const Simulator simulator;
  ExpectSameResult(simulator.RunReference(graph), simulator.Run(graph));
}

std::string PipelineCaseName(const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  return std::string(std::get<2>(info.param) == 0 ? "gpipe" : "fb") + "_s" +
         std::to_string(std::get<0>(info.param)) + "_m" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(StagesByMicrobatches, PipelineDifferential,
                         ::testing::Combine(::testing::Values(2, 3, 4, 8),
                                            ::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(0, 1)),
                         PipelineCaseName);

// The same differential on a paper model, at the shapes the CLI sweeps.
TEST(PipelineDifferentialModels, GnmtPipelines) {
  const Trace& trace = CachedTrace(ModelId::kGnmt);
  const ModelGraph model = BuildModel(ModelId::kGnmt);
  for (const auto kind : {PipelineScheduleKind::kGPipe, PipelineScheduleKind::k1F1B}) {
    for (const int stages : {2, 4}) {
      DependencyGraph graph = BuildDependencyGraph(trace);
      PipelineWhatIf options;
      options.num_stages = stages;
      options.num_microbatches = 4;
      options.schedule = kind;
      WhatIfPipeline(&graph, model, options);
      const Simulator simulator;
      ExpectSameResult(simulator.RunReference(graph), simulator.Run(graph));
    }
  }
}

// Random retimes of a pipeline plan: the shared-structure Retime path must
// stay exact on stage-by-micro-batch lane layouts.
TEST(PipelineDifferentialRetime, RandomRetimesMatchReference) {
  const Trace& trace = CachedTrace(ModelId::kTinyMlp);
  const ModelGraph model = BuildModel(ModelId::kTinyMlp);
  std::mt19937 rng(20260730);
  for (int round = 0; round < 6; ++round) {
    DependencyGraph graph = BuildDependencyGraph(trace);
    PipelineWhatIf options;
    options.num_stages = 2 + round % 3;
    options.num_microbatches = 1 + round;
    options.schedule =
        round % 2 == 0 ? PipelineScheduleKind::kGPipe : PipelineScheduleKind::k1F1B;
    WhatIfPipeline(&graph, model, options);

    const SimPlan donor = SimPlan::Compile(graph, EarliestStartScheduler());
    DependencyGraph scaled = graph.Clone();
    for (TaskId id : scaled.AliveTasks()) {
      Task& t = scaled.task(id);
      t.duration = t.duration / (1 + static_cast<TimeNs>(rng() % 4));
      if (rng() % 3 == 0) {
        t.gap = static_cast<TimeNs>(rng() % 20) * Us(1);
      }
    }
    ASSERT_TRUE(donor.CompatibleWith(scaled));
    const SimPlan retimed = SimPlan::Retime(donor, scaled, EarliestStartScheduler());
    ExpectSameResult(Simulator().RunReference(scaled), retimed.Run());
  }
}

// ---- Compiled-plan specifics: explicit Compile / Retime / invalidation ----

TEST(SimPlanDifferential, ClusterGraphsMatchReferenceUnderBothSchedulers) {
  // Distributed data-parallel cluster graphs: the single-worker profile
  // replicated across workers (the shared ReplicateWorkers helper perf_core
  // benches with), plus the allReduce schedule of the what-if.
  const Trace& trace = CachedTrace(ModelId::kResNet50);
  DependencyGraph worker = BuildDependencyGraph(trace);
  DistributedWhatIf opts;
  opts.cluster.machines = 2;
  opts.cluster.gpus_per_machine = 2;
  WhatIfDistributed(&worker, trace.gradients(), opts);
  const DependencyGraph cluster = ReplicateWorkers(worker, 4);

  for (const auto& scheduler : {std::shared_ptr<Scheduler>(new EarliestStartScheduler()),
                                std::shared_ptr<Scheduler>(new PriorityCommScheduler())}) {
    const Simulator simulator(scheduler);
    const SimPlan plan = simulator.Compile(cluster);
    EXPECT_EQ(plan.num_tasks(), cluster.num_alive());
    EXPECT_EQ(plan.num_lanes(), cluster.num_lanes());
    ExpectSameResult(simulator.RunReference(cluster), plan.Run());
  }
}

TEST(SimPlanDifferential, RetimeMatchesFreshCompileAndReference) {
  const Trace& trace = CachedTrace(ModelId::kGnmt);
  const Daydream daydream(trace);

  // A timing-only what-if: AMP-style duration scaling plus gap and priority
  // edits — everything Retime must re-read, nothing that bumps the stamp.
  DependencyGraph transformed = daydream.CloneGraph();
  ASSERT_EQ(transformed.structure_stamp(), daydream.graph().structure_stamp());
  WhatIfAmp(&transformed);
  int flip = 0;
  for (TaskId id : transformed.Select(IsOnCpu())) {
    Task& t = transformed.task(id);
    t.gap = t.gap / 2;
    t.priority = (++flip % 3) - 1;
  }
  ASSERT_EQ(transformed.structure_stamp(), daydream.graph().structure_stamp());
  ASSERT_TRUE(daydream.baseline_plan().CompatibleWith(transformed));

  for (const auto& scheduler : {std::shared_ptr<Scheduler>(new EarliestStartScheduler()),
                                std::shared_ptr<Scheduler>(new PriorityCommScheduler())}) {
    const Simulator simulator(scheduler);
    const SimPlan retimed = simulator.Compile(transformed, &daydream.baseline_plan());
    const SimPlan fresh = SimPlan::Compile(transformed, *scheduler);
    const SimResult reference = simulator.RunReference(transformed);
    ExpectSameResult(reference, retimed.Run());
    ExpectSameResult(reference, fresh.Run());
  }
}

TEST(SimPlanDifferential, StructuralMutationInvalidatesCompatibility) {
  const Trace& trace = CachedTrace(ModelId::kResNet50);
  const Daydream daydream(trace);

  DependencyGraph timing_only = daydream.CloneGraph();
  WhatIfAmp(&timing_only);
  EXPECT_TRUE(daydream.baseline_plan().CompatibleWith(timing_only));

  DependencyGraph structural = daydream.CloneGraph();
  WhatIfFusedAdam(&structural);  // removes tasks
  EXPECT_FALSE(daydream.baseline_plan().CompatibleWith(structural));

  // Simulator::Compile silently falls back to a full compile — and the full
  // compile still matches the reference engine on the mutated graph.
  const Simulator simulator;
  const SimPlan plan = simulator.Compile(structural, &daydream.baseline_plan());
  ExpectSameResult(simulator.RunReference(structural), plan.Run());
}

// A comparator-based scheduler without a StaticPlanKey: longest duration
// first, ties by id. Exercises the compile-time rank-by-sort fallback.
class LongestFirstScheduler : public Scheduler {
 public:
  size_t Pick(const std::vector<TaskId>& frontier, const Context& context) override {
    // The reference engine's scan over this scheduler's own tie-break order
    // (earliest feasible first, then TieBreakLess, then id).
    size_t best = 0;
    for (size_t i = 1; i < frontier.size(); ++i) {
      const TimeNs t = context.FeasibleTime(frontier[i]);
      const TimeNs best_time = context.FeasibleTime(frontier[best]);
      const Task& candidate = context.graph->task(frontier[i]);
      const Task& current = context.graph->task(frontier[best]);
      if (t < best_time ||
          (t == best_time && (TieBreakLess(candidate, current) ||
                              (!TieBreakLess(current, candidate) &&
                               frontier[i] < frontier[best])))) {
        best = i;
      }
    }
    return best;
  }
  bool comparator_based() const override { return true; }
  bool TieBreakLess(const Task& a, const Task& b) const override {
    if (a.duration != b.duration) {
      return a.duration > b.duration;
    }
    return a.id < b.id;
  }
};

TEST(SimPlanDifferential, RankFallbackSchedulerMatchesStaticKeyOrder) {
  // Oracle: a PriorityComm clone that withholds its static key must produce
  // the identical plan order via the rank fallback.
  class RankedPriorityComm : public PriorityCommScheduler {
   public:
    bool StaticPlanKey(const Task&, uint32_t*) const override { return false; }
  };
  for (int seed = 1; seed <= 6; ++seed) {
    const DependencyGraph g = RandomGraph(seed + 500, /*with_priorities=*/true);
    const SimResult via_static =
        SimPlan::Compile(g, PriorityCommScheduler()).Run();
    const SimResult via_rank = SimPlan::Compile(g, RankedPriorityComm()).Run();
    ExpectSameResult(via_static, via_rank);
  }
}

TEST(SimPlanDifferential, RankFallbackCustomOrderOnRandomGraphs) {
  for (int seed = 1; seed <= 6; ++seed) {
    const DependencyGraph g = RandomGraph(seed + 700, /*with_priorities=*/false);
    const Simulator simulator(std::make_shared<LongestFirstScheduler>());
    ExpectSameResult(simulator.RunReference(g), simulator.Run(g));
  }
}

TEST(SimPlanDifferential, RandomGraphRetime) {
  std::mt19937 rng(4242);
  for (int seed = 1; seed <= 8; ++seed) {
    const DependencyGraph base = RandomGraph(seed + 900, /*with_priorities=*/true);
    const SimPlan donor = SimPlan::Compile(base, EarliestStartScheduler());
    DependencyGraph scaled = base.Clone();
    for (TaskId id : scaled.AliveTasks()) {
      Task& t = scaled.task(id);
      t.duration = t.duration / (1 + static_cast<TimeNs>(rng() % 3));
      if (rng() % 4 == 0) {
        t.gap = 0;
      }
    }
    ASSERT_TRUE(donor.CompatibleWith(scaled));
    const EarliestStartScheduler scheduler;
    const SimPlan retimed = SimPlan::Retime(donor, scaled, scheduler);
    ExpectSameResult(Simulator().RunReference(scaled), retimed.Run());
  }
}

// ---- Deterministic tie-break regression ----
//
// Equal feasible times on one lane must dispatch in ascending task id (the
// documented determinism contract), identically across engines and runs.
TEST(TieBreakRegression, SameLaneTiesDispatchInIdOrder) {
  DependencyGraph g;
  std::vector<TaskId> ids;
  for (int i = 0; i < 6; ++i) {
    Task t;
    t.type = TaskType::kGpu;
    t.thread = ExecThread::Gpu(0);
    t.duration = Us(10);
    ids.push_back(g.AddTask(std::move(t)));
  }
  const Simulator simulator;
  const SimResult a = simulator.Run(g);
  const SimResult b = simulator.Run(g);
  EXPECT_EQ(a.start, b.start);
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(a.start[static_cast<size_t>(ids[i - 1])], a.start[static_cast<size_t>(ids[i])]);
  }
  ExpectSameResult(simulator.RunReference(g), a);
}

TEST(TieBreakRegression, PriorityBeatsIdOnCommChannel) {
  DependencyGraph g;
  Task low;
  low.type = TaskType::kComm;
  low.thread = ExecThread::Comm(0);
  low.duration = Us(10);
  low.priority = 1;
  const TaskId low_id = g.AddTask(std::move(low));
  Task high;
  high.type = TaskType::kComm;
  high.thread = ExecThread::Comm(0);
  high.duration = Us(10);
  high.priority = 7;
  const TaskId high_id = g.AddTask(std::move(high));

  const Simulator priority(std::make_shared<PriorityCommScheduler>());
  const SimResult r = priority.Run(g);
  EXPECT_LT(r.start[static_cast<size_t>(high_id)], r.start[static_cast<size_t>(low_id)]);
  ExpectSameResult(priority.RunReference(g), r);
}

// A task that becomes ready while its lane is still busy joins the tie-break
// pool and must lose the id tie-break it would have won on bound order alone.
TEST(TieBreakRegression, LateReadyTaskJoinsTiePool) {
  DependencyGraph g;
  // Lane occupier: busy until 30us with a 20us trailing gap -> progress 50us.
  Task busy;
  busy.type = TaskType::kGpu;
  busy.thread = ExecThread::Gpu(0);
  busy.duration = Us(30);
  busy.gap = Us(20);
  const TaskId busy_id = g.AddTask(std::move(busy));

  // Gate on another lane finishing at 40us, feeding the later-id task.
  Task gate;
  gate.type = TaskType::kCpu;
  gate.thread = ExecThread::Cpu(0);
  gate.duration = Us(40);
  const TaskId gate_id = g.AddTask(std::move(gate));

  Task first;  // ready at t=0, id smaller
  first.type = TaskType::kGpu;
  first.thread = ExecThread::Gpu(0);
  first.duration = Us(10);
  const TaskId first_id = g.AddTask(std::move(first));

  Task second;  // becomes ready at 40us < progress 50us -> same tie pool
  second.type = TaskType::kGpu;
  second.thread = ExecThread::Gpu(0);
  second.duration = Us(10);
  const TaskId second_id = g.AddTask(std::move(second));
  g.AddEdge(gate_id, second_id);

  const Simulator simulator;
  const SimResult r = simulator.Run(g);
  EXPECT_EQ(r.start[static_cast<size_t>(busy_id)], 0);
  // Both become feasible at progress=50us; lower id dispatches first.
  EXPECT_EQ(r.start[static_cast<size_t>(first_id)], Us(50));
  EXPECT_EQ(r.start[static_cast<size_t>(second_id)], Us(60));
  ExpectSameResult(simulator.RunReference(g), r);
}

// ---- Sharded parallel dispatch ----
//
// The windowed barrier engine must be *exactly* equal to both oracles — the
// reference scan and the serial plan dispatch — at every sim_jobs level. The
// contract is byte-identical SimResults, not approximate equality, so the
// whole zoo x what-if matrix runs through ExpectSameResult, and the random
// DAGs (zero durations, bound ties, cross-lane webs) hammer the shard
// boundaries and the stall fallback.

const std::vector<int>& ShardJobLevels() {
  static const std::vector<int>* levels = new std::vector<int>{1, 2, 4, 8};
  return *levels;
}

// Runs the full differential at every job level: parallel vs reference and
// parallel vs serial plan dispatch.
void ExpectShardedMatches(const DependencyGraph& graph, std::shared_ptr<Scheduler> scheduler) {
  const SimPlan plan = SimPlan::Compile(graph, *scheduler);
  const SimResult serial = plan.Run();
  ExpectSameResult(Simulator(std::move(scheduler)).RunReference(graph), serial);
  for (const int jobs : ShardJobLevels()) {
    const ShardPlan shards = ShardPlan::Compile(plan, jobs);
    EXPECT_LE(shards.num_shards(), std::max(1, jobs));
    ThreadPool pool(shards.num_shards() - 1);
    ExpectSameResult(serial, shards.Run(&pool));
    // Pool-less path (orchestrator thread runs every shard) must match too.
    ExpectSameResult(serial, shards.Run(nullptr));
  }
}

class ShardDifferential : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShardDifferential, ParallelDispatchReproducesReference) {
  const ModelId model = AllModels()[static_cast<size_t>(std::get<0>(GetParam()))];
  const WhatIfCase& what_if = WhatIfs()[static_cast<size_t>(std::get<1>(GetParam()))];

  const Trace& trace = CachedTrace(model);
  const ModelGraph model_graph = BuildModel(model);
  DependencyGraph graph = BuildDependencyGraph(trace);
  what_if.apply(&graph, model_graph, trace);

  ExpectShardedMatches(graph, std::make_shared<EarliestStartScheduler>());
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllWhatIfs, ShardDifferential,
    ::testing::Combine(::testing::Range(0, static_cast<int>(AllModels().size())),
                       ::testing::Range(0, static_cast<int>(WhatIfs().size()))),
    CaseName);

class ShardRandomGraph : public ::testing::TestWithParam<int> {};

TEST_P(ShardRandomGraph, EarliestStart) {
  ExpectShardedMatches(RandomGraph(GetParam() + 2000, /*with_priorities=*/false),
                       std::make_shared<EarliestStartScheduler>());
}

TEST_P(ShardRandomGraph, PriorityComm) {
  ExpectShardedMatches(RandomGraph(GetParam() + 3000, /*with_priorities=*/true),
                       std::make_shared<PriorityCommScheduler>());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardRandomGraph, ::testing::Range(1, 13));

TEST(ShardDifferentialCluster, ReplicatedDistributedWorkers) {
  // The target workload shape: replicated workers joined by an all-reduce
  // channel — the partition that gives real multi-shard parallelism.
  const Trace& trace = CachedTrace(ModelId::kResNet50);
  DependencyGraph worker = BuildDependencyGraph(trace);
  DistributedWhatIf opts;
  opts.cluster.machines = 2;
  opts.cluster.gpus_per_machine = 2;
  DependencyGraph cluster = ReplicateWorkers(worker, 4);
  WhatIfDistributed(&cluster, trace.gradients(), opts);

  const SimPlan plan = SimPlan::Compile(cluster, EarliestStartScheduler());
  const SimResult serial = plan.Run();
  for (const int jobs : ShardJobLevels()) {
    const ShardPlan shards = ShardPlan::Compile(plan, jobs);
    if (jobs > 1) {
      // 4 worker components + comm channels: sharding must actually split.
      EXPECT_GE(shards.num_shards(), std::min(jobs, 2));
    }
    ThreadPool pool(shards.num_shards() - 1);
    ExpectSameResult(serial, shards.Run(&pool));
  }
  ExpectSameResult(Simulator().RunReference(cluster), serial);
}

TEST(ShardDifferentialRetime, RetimedPlansReshardExactly) {
  // Retime invalidates a ShardPlan's window bounds (timing changed), so the
  // supported pattern is recompile-from-retimed-plan; the result must track
  // the reference on the scaled graph at every job level.
  std::mt19937 rng(77);
  for (int seed = 1; seed <= 6; ++seed) {
    const DependencyGraph base = RandomGraph(seed + 4000, /*with_priorities=*/false);
    const SimPlan donor = SimPlan::Compile(base, EarliestStartScheduler());
    DependencyGraph scaled = base.Clone();
    for (TaskId id : scaled.AliveTasks()) {
      Task& t = scaled.task(id);
      t.duration = t.duration / (1 + static_cast<TimeNs>(rng() % 3));
    }
    ASSERT_TRUE(donor.CompatibleWith(scaled));
    const SimPlan retimed = SimPlan::Retime(donor, scaled, EarliestStartScheduler());
    const SimResult oracle = Simulator().RunReference(scaled);
    for (const int jobs : ShardJobLevels()) {
      ExpectSameResult(oracle, RunPlanParallel(retimed, jobs));
    }
  }
}

TEST(ShardDifferentialDeterminism, RepeatedRunsAreByteIdentical) {
  // Same plan, same job level, repeated runs: thread scheduling must never
  // leak into the result (the serve smoke depends on byte-identical JSON).
  const DependencyGraph g = RandomGraph(31337, /*with_priorities=*/true);
  const SimPlan plan = SimPlan::Compile(g, PriorityCommScheduler());
  const ShardPlan shards = ShardPlan::Compile(plan, 4);
  ThreadPool pool(3);
  const SimResult first = shards.Run(&pool);
  for (int rep = 0; rep < 8; ++rep) {
    ExpectSameResult(first, shards.Run(&pool));
  }
}

}  // namespace
}  // namespace daydream

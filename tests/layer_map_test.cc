#include <gtest/gtest.h>

#include "src/core/layer_map.h"
#include "src/runtime/ground_truth.h"

namespace daydream {
namespace {

std::string ParamName(const ::testing::TestParamInfo<ModelId>& info) {
  std::string name = ModelName(info.param);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

class LayerMapModelTest : public ::testing::TestWithParam<ModelId> {};
INSTANTIATE_TEST_SUITE_P(ModelZoo, LayerMapModelTest, ::testing::ValuesIn(PaperModels()),
                         ParamName);

TEST_P(LayerMapModelTest, MatchesExecutorGroundTruth) {
  // The executor stamps every kernel event with the layer/phase it belongs
  // to. The synchronization-free mapping must recover the same assignment
  // using only markers, timestamps and correlation ids (§4.3 / Figure 3).
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const LayerMap map = LayerMap::Compute(trace);
  int checked = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace.events()[i];
    if (!e.is_gpu() || e.layer_id < 0) {
      continue;
    }
    const LayerAssignment& a = map.assignment(i);
    EXPECT_EQ(a.layer_id, e.layer_id) << e.DebugString();
    EXPECT_EQ(a.phase, e.phase) << e.DebugString();
    ++checked;
  }
  EXPECT_GT(checked, 100);
}

TEST_P(LayerMapModelTest, HighGpuCoverage) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const LayerMap map = LayerMap::Compute(trace);
  // Everything except framework-level kernels outside layer windows (input
  // upload, loss read-back, gradient clipping) maps to a layer.
  EXPECT_GT(map.GpuCoverage(trace), 0.88);
}

TEST(LayerMap, HandMadeWindow) {
  Trace t;
  TraceEvent begin;
  begin.kind = EventKind::kLayerMarker;
  begin.name = "conv1";
  begin.layer_id = 7;
  begin.phase = Phase::kForward;
  begin.marker_begin = true;
  begin.start = 100;
  begin.thread_id = 0;
  t.Add(begin);

  TraceEvent launch;
  launch.kind = EventKind::kRuntimeApi;
  launch.api = ApiKind::kLaunchKernel;
  launch.name = "cudaLaunchKernel";
  launch.start = 120;
  launch.duration = 5;
  launch.thread_id = 0;
  launch.correlation_id = 42;
  t.Add(launch);

  TraceEvent end = begin;
  end.marker_begin = false;
  end.start = 200;
  t.Add(end);

  // The kernel starts long after the window closed — assignment must come
  // from the correlation id, not the kernel's own timestamp.
  TraceEvent kernel;
  kernel.kind = EventKind::kKernel;
  kernel.name = "scudnn_fprop";
  kernel.start = 500;
  kernel.duration = 100;
  kernel.stream_id = 0;
  kernel.correlation_id = 42;
  t.Add(kernel);

  const LayerMap map = LayerMap::Compute(t);
  EXPECT_EQ(map.assignment(1).layer_id, 7);   // the launch
  EXPECT_EQ(map.assignment(3).layer_id, 7);   // the kernel, via correlation
  EXPECT_EQ(map.assignment(3).phase, Phase::kForward);
}

TEST(LayerMap, EventsOutsideWindowsUnassigned) {
  Trace t;
  TraceEvent launch;
  launch.kind = EventKind::kRuntimeApi;
  launch.api = ApiKind::kLaunchKernel;
  launch.name = "cudaLaunchKernel";
  launch.start = 10;
  launch.duration = 5;
  launch.thread_id = 0;
  launch.correlation_id = 1;
  t.Add(launch);
  const LayerMap map = LayerMap::Compute(t);
  EXPECT_EQ(map.assignment(0).layer_id, -1);
}

TEST(LayerMap, MultipleIterationsKeepPerWindowAssignment) {
  // The same layer profiled twice (2-iteration trace): launches in the first
  // window and the second window both map to the layer.
  Trace t;
  auto add_window = [&](TimeNs begin, TimeNs end, int64_t corr) {
    TraceEvent b;
    b.kind = EventKind::kLayerMarker;
    b.name = "fc";
    b.layer_id = 3;
    b.phase = Phase::kForward;
    b.marker_begin = true;
    b.start = begin;
    b.thread_id = 0;
    t.Add(b);
    TraceEvent launch;
    launch.kind = EventKind::kRuntimeApi;
    launch.api = ApiKind::kLaunchKernel;
    launch.name = "cudaLaunchKernel";
    launch.start = begin + 5;
    launch.duration = 5;
    launch.thread_id = 0;
    launch.correlation_id = corr;
    t.Add(launch);
    TraceEvent e = b;
    e.marker_begin = false;
    e.start = end;
    t.Add(e);
  };
  add_window(0, 100, 1);
  add_window(1000, 1100, 2);
  const LayerMap map = LayerMap::Compute(t);
  EXPECT_EQ(map.assignment(1).layer_id, 3);
  EXPECT_EQ(map.assignment(4).layer_id, 3);
}

}  // namespace
}  // namespace daydream

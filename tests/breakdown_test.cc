#include <gtest/gtest.h>

#include "src/core/breakdown.h"
#include "src/runtime/ground_truth.h"

namespace daydream {
namespace {

TraceEvent Api(ApiKind api, const std::string& name, TimeNs start, TimeNs dur) {
  TraceEvent e;
  e.kind = EventKind::kRuntimeApi;
  e.api = api;
  e.name = name;
  e.start = start;
  e.duration = dur;
  e.thread_id = 0;
  return e;
}

TraceEvent Gpu(TimeNs start, TimeNs dur) {
  TraceEvent e;
  e.kind = EventKind::kKernel;
  e.name = "k";
  e.start = start;
  e.duration = dur;
  e.stream_id = 0;
  e.correlation_id = 0;
  return e;
}

TEST(Breakdown, EmptyTrace) {
  const RuntimeBreakdown b = ComputeBreakdown(Trace{});
  EXPECT_EQ(b.total, 0);
}

TEST(Breakdown, PureCpu) {
  Trace t;
  t.Add(Api(ApiKind::kOther, "op", 0, 100));
  const RuntimeBreakdown b = ComputeBreakdown(t);
  EXPECT_EQ(b.total, 100);
  EXPECT_EQ(b.cpu_only, 100);
  EXPECT_EQ(b.gpu_only, 0);
  EXPECT_EQ(b.overlap, 0);
}

TEST(Breakdown, GpuWhileCpuWaits) {
  // CPU launches (0-10), GPU runs (10-110), CPU blocks in a sync (10-110).
  Trace t;
  t.Add(Api(ApiKind::kLaunchKernel, "cudaLaunchKernel", 0, 10));
  t.Add(Gpu(10, 100));
  t.Add(Api(ApiKind::kDeviceSynchronize, "sync", 10, 100));
  const RuntimeBreakdown b = ComputeBreakdown(t);
  EXPECT_EQ(b.total, 110);
  EXPECT_EQ(b.cpu_only, 10);    // total - gpu busy
  EXPECT_EQ(b.gpu_only, 100);   // the sync window counts as waiting
  EXPECT_EQ(b.overlap, 0);
}

TEST(Breakdown, TrueOverlap) {
  // CPU keeps launching while the GPU computes: that's CPU+GPU.
  Trace t;
  t.Add(Api(ApiKind::kLaunchKernel, "l1", 0, 50));
  t.Add(Gpu(10, 60));
  const RuntimeBreakdown b = ComputeBreakdown(t);
  EXPECT_EQ(b.total, 70);
  EXPECT_EQ(b.cpu_only, 10);
  EXPECT_EQ(b.gpu_only, 0);  // no wait API in flight
  EXPECT_EQ(b.overlap, 60);
}

TEST(Breakdown, ComponentsSumToTotal) {
  Trace t;
  t.Add(Api(ApiKind::kLaunchKernel, "l", 0, 30));
  t.Add(Gpu(5, 40));
  t.Add(Api(ApiKind::kDeviceSynchronize, "sync", 30, 15));
  const RuntimeBreakdown b = ComputeBreakdown(t);
  EXPECT_EQ(b.cpu_only + b.gpu_only + b.overlap, b.total);
}

TEST(Breakdown, LoaderThreadExcluded) {
  Trace t;
  t.Add(Api(ApiKind::kOther, "op", 0, 10));
  TraceEvent load;
  load.kind = EventKind::kDataLoad;
  load.name = "dataloader";
  load.start = 0;
  load.duration = 100000;
  load.thread_id = 1;  // loader thread
  t.Add(load);
  EXPECT_EQ(ComputeBreakdown(t).total, 10);
}

TEST(Breakdown, PercentagesConsistent) {
  Trace t;
  t.Add(Api(ApiKind::kLaunchKernel, "l", 0, 30));
  t.Add(Gpu(5, 40));
  const RuntimeBreakdown b = ComputeBreakdown(t);
  EXPECT_NEAR(b.CpuOnlyPct() + b.GpuOnlyPct() + b.OverlapPct(), 100.0, 1e-9);
  EXPECT_FALSE(b.Summary().empty());
}

TEST(Breakdown, RealTraceComponentsSum) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  const RuntimeBreakdown b = ComputeBreakdown(trace);
  EXPECT_EQ(b.cpu_only + b.gpu_only + b.overlap, b.total);
  EXPECT_GT(b.total, 0);
}

TEST(Breakdown, AmpShiftsGpuOnlyToCpuOnly) {
  // Figure 6's headline effect: FP16 shrinks GPU-only time; CPU-only grows
  // as a share.
  RunConfig config = DefaultRunConfig(ModelId::kBertLarge);
  const RuntimeBreakdown fp32 = ComputeBreakdown(RunGroundTruth(config).trace);
  config.gt.amp = true;
  const RuntimeBreakdown fp16 = ComputeBreakdown(RunGroundTruth(config).trace);
  EXPECT_LT(fp16.total, fp32.total);
  EXPECT_GT(fp16.CpuOnlyPct(), fp32.CpuOnlyPct());
}

}  // namespace
}  // namespace daydream

// Property-based sweeps: invariants that must hold across whole parameter
// grids, not just single configurations.
#include <gtest/gtest.h>

#include <limits>

#include "src/comm/collectives.h"
#include "src/core/graph_builder.h"
#include "src/core/optimizations/distributed.h"
#include "src/core/predictor.h"
#include "src/core/simulator.h"
#include "src/core/transform.h"
#include "src/runtime/ground_truth.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace daydream {
namespace {

// ---- executor invariants across batch sizes ----

class BatchSweep : public ::testing::TestWithParam<int64_t> {};
INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep, ::testing::Values<int64_t>(8, 16, 32, 64, 128));

TEST_P(BatchSweep, ResNetTraceValidAndMonotone) {
  RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  config.batch = GetParam();
  const ExecutionResult r = RunGroundTruth(config);
  EXPECT_TRUE(r.trace.Validate().ok());
  if (GetParam() > 8) {
    RunConfig smaller = config;
    smaller.batch = GetParam() / 2;
    // Larger batches take longer per iteration...
    EXPECT_GT(r.IterationTime(), RunGroundTruth(smaller).IterationTime());
  }
}

TEST_P(BatchSweep, ReplayFidelityHoldsAtAnyBatch) {
  RunConfig config = DefaultRunConfig(ModelId::kResNet50);
  config.batch = GetParam();
  const Trace trace = CollectBaselineTrace(config);
  const SimResult sim = Simulator().Run(BuildDependencyGraph(trace));
  EXPECT_LT(RelErrorPct(static_cast<double>(sim.makespan),
                        static_cast<double>(trace.makespan())),
            0.5);
}

// ---- framework profiles ----

TEST(FrameworkSweep, GapsDriveIterationTime) {
  // Heavier frameworks (bigger gaps) can only slow an identical workload.
  RunConfig caffe = DefaultRunConfig(ModelId::kResNet50);
  caffe.framework = FrameworkProfile::Caffe();
  caffe.cpu_scale = 1.0;
  RunConfig pytorch = caffe;
  pytorch.framework = FrameworkProfile::PyTorch();
  EXPECT_LE(RunGroundTruth(caffe).IterationTime(), RunGroundTruth(pytorch).IterationTime());
}

TEST(FrameworkSweep, CpuScaleMonotone) {
  RunConfig base = DefaultRunConfig(ModelId::kBertBase);
  base.cpu_scale = 0.5;
  RunConfig heavy = base;
  heavy.cpu_scale = 2.0;
  EXPECT_LT(RunGroundTruth(base).IterationTime(), RunGroundTruth(heavy).IterationTime());
}

// ---- collective-cost grid ----

TEST(CollectiveGrid, AllReduceMonotoneOverFullGrid) {
  for (int machines : {1, 2, 3, 4}) {
    for (int gpus : {1, 2, 4}) {
      for (double gbps : {5.0, 10.0, 25.0, 40.0}) {
        ClusterConfig c;
        c.machines = machines;
        c.gpus_per_machine = gpus;
        c.network.bandwidth_gbps = gbps;
        const TimeNs t1 = RingAllReduceTime(8 << 20, c);
        const TimeNs t2 = RingAllReduceTime(16 << 20, c);
        if (c.total_gpus() == 1) {
          EXPECT_EQ(t1, 0);
          continue;
        }
        EXPECT_GT(t1, 0) << c.Label();
        EXPECT_LT(t1, t2) << c.Label();  // more bytes, more time
        // BlueConnect wins when the NIC is the bottleneck; once inter-node
        // bandwidth approaches PCIe speed its extra intra-node phases are
        // pure overhead, so only assert the win on slow networks.
        if (gbps <= 25.0) {
          EXPECT_LE(BlueConnectAllReduceTime(16 << 20, c), static_cast<TimeNs>(t2 * 1.05))
              << c.Label();
        } else {
          EXPECT_GT(BlueConnectAllReduceTime(16 << 20, c), 0) << c.Label();
        }
      }
    }
  }
}

// ---- random-graph simulator properties ----

class RandomGraphSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep, ::testing::Range(1, 9));

DependencyGraph RandomDag(uint64_t seed, int tasks) {
  Rng rng(seed);
  DependencyGraph g;
  for (int i = 0; i < tasks; ++i) {
    Task t;
    const int lane = static_cast<int>(rng.NextBelow(4));
    t.type = lane < 2 ? TaskType::kCpu : TaskType::kGpu;
    t.thread = lane < 2 ? ExecThread::Cpu(lane) : ExecThread::Gpu(lane - 2);
    t.duration = static_cast<TimeNs>(Us(1) + rng.NextBelow(Us(40)));
    t.gap = static_cast<TimeNs>(rng.NextBelow(Us(5)));
    g.AddTask(std::move(t));
  }
  g.LinkSequential();
  // Random forward edges keep the graph acyclic (low id -> high id only).
  for (int i = 0; i < tasks / 2; ++i) {
    const TaskId a = static_cast<TaskId>(rng.NextBelow(static_cast<uint64_t>(tasks - 1)));
    const TaskId b =
        a + 1 + static_cast<TaskId>(rng.NextBelow(static_cast<uint64_t>(tasks - a - 1)));
    g.AddEdge(a, b);
  }
  return g;
}

TEST_P(RandomGraphSweep, ValidAndDeterministic) {
  const DependencyGraph g = RandomDag(static_cast<uint64_t>(GetParam()), 120);
  std::string error;
  ASSERT_TRUE(g.Validate(&error)) << error;
  const SimResult a = Simulator().Run(g);
  const SimResult b = Simulator().Run(g);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.start, b.start);
}

TEST_P(RandomGraphSweep, MakespanLowerBounds) {
  const DependencyGraph g = RandomDag(static_cast<uint64_t>(GetParam()), 120);
  const SimResult r = Simulator().Run(g);
  // Lower bound 1: busiest lane.
  for (size_t lane = 0; lane < r.lane_busy.size(); ++lane) {
    EXPECT_GE(r.makespan, r.lane_busy[lane]) << r.lane_threads[lane].Label();
  }
  // Lower bound 2: every edge is respected.
  for (TaskId id : g.AliveTasks()) {
    for (TaskId c : g.children(id)) {
      EXPECT_GE(r.start[static_cast<size_t>(c)], r.EndOf(id));
    }
  }
}

TEST_P(RandomGraphSweep, ShrinkNeverIncreasesMakespan) {
  // Monotonicity of the what-if machinery: shrinking any subset of GPU tasks
  // cannot make the (work-conserving, deterministic) simulation slower.
  DependencyGraph g = RandomDag(static_cast<uint64_t>(GetParam()), 120);
  const TimeNs before = Simulator().Run(g).makespan;
  ShrinkBy(&g, g.Select(IsOnGpu()), 2.0);
  EXPECT_LE(Simulator().Run(g).makespan, before);
}

TEST_P(RandomGraphSweep, RemoveNeverIncreasesMakespan) {
  DependencyGraph g = RandomDag(static_cast<uint64_t>(GetParam()), 120);
  const TimeNs before = Simulator().Run(g).makespan;
  // Remove every 7th GPU task.
  const std::vector<TaskId> gpus = g.Select(IsOnGpu());
  for (size_t i = 0; i < gpus.size(); i += 7) {
    g.Remove(gpus[i]);
  }
  std::string error;
  ASSERT_TRUE(g.Validate(&error)) << error;
  EXPECT_LE(Simulator().Run(g).makespan, before);
}

// ---- distributed prediction grid ----

TEST(DistributedGrid, PredictionMonotoneInBandwidth) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kVgg19));
  Daydream dd(trace);
  for (int machines : {2, 4}) {
    TimeNs previous = std::numeric_limits<TimeNs>::max();
    for (double gbps : {5.0, 10.0, 20.0, 40.0}) {
      DistributedWhatIf opts;
      opts.cluster.machines = machines;
      opts.cluster.gpus_per_machine = 1;
      opts.cluster.network.bandwidth_gbps = gbps;
      const TimeNs predicted =
          dd.Predict([&](DependencyGraph* g) {
              WhatIfDistributed(g, dd.trace().gradients(), opts);
            }).predicted;
      EXPECT_LE(predicted, previous) << machines << "x1 @ " << gbps;
      previous = predicted;
    }
  }
}

}  // namespace
}  // namespace daydream

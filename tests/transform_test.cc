#include <gtest/gtest.h>

#include "src/core/transform.h"

namespace daydream {
namespace {

Task GpuTask(const std::string& name, TimeNs dur, Phase phase = Phase::kForward,
             int layer = -1) {
  Task t;
  t.type = TaskType::kGpu;
  t.name = name;
  t.thread = ExecThread::Gpu(0);
  t.duration = dur;
  t.phase = phase;
  t.layer_id = layer;
  return t;
}

Task CpuTask(const std::string& name, TimeNs dur = Us(5)) {
  Task t;
  t.type = TaskType::kCpu;
  t.name = name;
  t.thread = ExecThread::Cpu(0);
  t.duration = dur;
  t.api = ApiKind::kLaunchKernel;
  return t;
}

TEST(Predicates, Basics) {
  Task gpu = GpuTask("volta_sgemm_128x64_nn", Us(10), Phase::kBackward, 3);
  EXPECT_TRUE(IsOnGpu()(gpu));
  EXPECT_FALSE(IsOnCpu()(gpu));
  EXPECT_FALSE(IsComm()(gpu));
  EXPECT_TRUE(NameContains("sgemm")(gpu));
  EXPECT_FALSE(NameContains("scudnn")(gpu));
  EXPECT_TRUE(PhaseIs(Phase::kBackward)(gpu));
  EXPECT_TRUE(LayerIs(3)(gpu));
  EXPECT_FALSE(LayerIs(4)(gpu));
}

TEST(Predicates, Combinators) {
  Task gpu = GpuTask("volta_sgemm", Us(10));
  EXPECT_TRUE(All(IsOnGpu(), NameContains("sgemm"))(gpu));
  EXPECT_FALSE(All(IsOnGpu(), NameContains("conv"))(gpu));
  EXPECT_TRUE(Any(NameContains("conv"), NameContains("sgemm"))(gpu));
  EXPECT_FALSE(Not(IsOnGpu())(gpu));
}

TEST(Predicates, ApiIs) {
  Task cpu = CpuTask("cudaLaunchKernel");
  EXPECT_TRUE(ApiIs(ApiKind::kLaunchKernel)(cpu));
  EXPECT_FALSE(ApiIs(ApiKind::kDeviceSynchronize)(cpu));
}

TEST(Predicates, CommIs) {
  Task comm;
  comm.type = TaskType::kComm;
  comm.comm = CommKind::kAllReduce;
  EXPECT_TRUE(CommIs(CommKind::kAllReduce)(comm));
  EXPECT_FALSE(CommIs(CommKind::kPush)(comm));
  EXPECT_FALSE(CommIs(CommKind::kAllReduce)(GpuTask("k", Us(1))));
}

TEST(Predicates, QueriesExposeStructuredKeys) {
  const TaskQuery q = All(IsOnGpu(), All(LayerIs(3), PhaseIs(Phase::kBackward)));
  ASSERT_TRUE(q.phase.has_value());
  EXPECT_EQ(*q.phase, Phase::kBackward);
  ASSERT_TRUE(q.layer_id.has_value());
  EXPECT_EQ(*q.layer_id, 3);
  EXPECT_EQ(q.type_mask, TaskTypeBit(TaskType::kGpu));
  EXPECT_FALSE(q.impossible);
}

TEST(Predicates, ContradictoryTypeMasksAreImpossible) {
  const TaskQuery q = All(IsOnGpu(), IsComm());
  EXPECT_TRUE(q.impossible);
  EXPECT_FALSE(q(GpuTask("k", Us(1))));
}

TEST(Predicates, ContradictoryAllMatchesNothing) {
  const TaskQuery q = All(PhaseIs(Phase::kForward), PhaseIs(Phase::kBackward));
  EXPECT_TRUE(q.impossible);
  EXPECT_FALSE(q(GpuTask("k", Us(1), Phase::kForward)));
  DependencyGraph g;
  g.AddTask(GpuTask("k", Us(1), Phase::kForward));
  EXPECT_TRUE(g.Select(q).empty());
}

TEST(Transform, SelectLayerGpuSortedByStart) {
  DependencyGraph g;
  Task late = GpuTask("late", Us(10), Phase::kBackward, 2);
  late.start = Us(50);
  Task early = GpuTask("early", Us(10), Phase::kBackward, 2);
  early.start = Us(10);
  Task other = GpuTask("other_layer", Us(10), Phase::kBackward, 3);
  const TaskId l = g.AddTask(std::move(late));
  const TaskId e = g.AddTask(std::move(early));
  g.AddTask(std::move(other));
  EXPECT_EQ(SelectLayerGpuSortedByStart(g, 2, Phase::kBackward), (std::vector<TaskId>{e, l}));
  EXPECT_TRUE(SelectLayerGpuSortedByStart(g, 2, Phase::kForward).empty());
}

TEST(Transform, ShrinkBy) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("k", Us(90)));
  ShrinkBy(&g, {a}, 3.0);
  EXPECT_EQ(g.task(a).duration, Us(30));
}

TEST(Transform, ScaleBy) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("k", Us(10)));
  ScaleBy(&g, {a}, 2.5);
  EXPECT_EQ(g.task(a).duration, Us(25));
}

TEST(Transform, SetDurations) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("k", Us(10)));
  const TaskId b = g.AddTask(GpuTask("k2", Us(20)));
  SetDurations(&g, {a, b}, Us(7));
  EXPECT_EQ(g.task(a).duration, Us(7));
  EXPECT_EQ(g.task(b).duration, Us(7));
}

TEST(Transform, RemoveAllTolerant) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("k", Us(10)));
  RemoveAll(&g, {a, a});  // second removal is a no-op, not a crash
  EXPECT_FALSE(g.alive(a));
}

TEST(Transform, TotalDuration) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("k", Us(10)));
  const TaskId b = g.AddTask(GpuTask("k2", Us(15)));
  EXPECT_EQ(TotalDuration(g, {a, b}), Us(25));
  EXPECT_EQ(TotalDuration(g, {}), 0);
}

TEST(Transform, InsertKernelAfterWiresLaunchAndStream) {
  // Figure 4b: inserting a GPU task also inserts its launching CPU task.
  DependencyGraph g;
  const TaskId launch1 = g.AddTask(CpuTask("launch1"));
  const TaskId launch2 = g.AddTask(CpuTask("launch2"));
  const TaskId k1 = g.AddTask(GpuTask("k1", Us(10)));
  const TaskId k2 = g.AddTask(GpuTask("k2", Us(10)));
  g.LinkSequential();
  g.AddEdge(launch1, k1);
  g.AddEdge(launch2, k2);

  Task inserted = GpuTask("new_kernel", Us(30));
  const InsertedKernel ins = InsertKernelAfter(&g, launch1, k1, std::move(inserted));

  EXPECT_TRUE(g.alive(ins.launch));
  EXPECT_TRUE(g.alive(ins.kernel));
  EXPECT_TRUE(g.HasEdge(ins.launch, ins.kernel));      // correlation
  EXPECT_TRUE(g.HasEdge(launch1, ins.launch));          // CPU splice
  EXPECT_TRUE(g.HasEdge(ins.launch, launch2));
  EXPECT_TRUE(g.HasEdge(k1, ins.kernel));                // stream splice
  EXPECT_TRUE(g.HasEdge(ins.kernel, k2));
  EXPECT_FALSE(g.HasEdge(k1, k2));
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
  EXPECT_EQ(g.task(ins.launch).api, ApiKind::kLaunchKernel);
}

TEST(Transform, SelectThenShrinkPipeline) {
  // The canonical What-If shape: Select + Shrink (Algorithm 3 in miniature).
  DependencyGraph g;
  g.AddTask(GpuTask("volta_sgemm_a", Us(30)));
  g.AddTask(GpuTask("elementwise_b", Us(30)));
  g.AddTask(CpuTask("launch"));
  ShrinkBy(&g, g.Select(All(IsOnGpu(), NameContains("sgemm"))), 3.0);
  ShrinkBy(&g, g.Select(All(IsOnGpu(), Not(NameContains("sgemm")))), 2.0);
  EXPECT_EQ(g.task(0).duration, Us(10));
  EXPECT_EQ(g.task(1).duration, Us(15));
  EXPECT_EQ(g.task(2).duration, Us(5));  // CPU untouched
}

}  // namespace
}  // namespace daydream

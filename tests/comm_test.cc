#include <gtest/gtest.h>

#include "src/comm/bucketing.h"
#include "src/comm/collectives.h"
#include "src/comm/param_server.h"
#include "src/models/model_zoo.h"

namespace daydream {
namespace {

ClusterConfig Cluster(int machines, int gpus, double gbps = 10.0) {
  ClusterConfig c;
  c.machines = machines;
  c.gpus_per_machine = gpus;
  c.network.bandwidth_gbps = gbps;
  return c;
}

// ---- ring formulas ----

TEST(Collectives, SingleGpuIsFree) {
  EXPECT_EQ(RingAllReduceTime(100 << 20, Cluster(1, 1)), 0);
}

TEST(Collectives, MonotonicInBytes) {
  const ClusterConfig c = Cluster(4, 1);
  EXPECT_LT(RingAllReduceTime(10 << 20, c), RingAllReduceTime(20 << 20, c));
}

TEST(Collectives, MonotonicInWorkers) {
  // 2(n-1)/n grows with n at fixed bottleneck bandwidth.
  EXPECT_LT(RingAllReduceTime(100 << 20, Cluster(2, 1)),
            RingAllReduceTime(100 << 20, Cluster(4, 1)));
}

TEST(Collectives, FasterNetworkIsFaster) {
  EXPECT_GT(RingAllReduceTime(100 << 20, Cluster(4, 1, 10.0)),
            RingAllReduceTime(100 << 20, Cluster(4, 1, 40.0)));
}

TEST(Collectives, MatchesRingFormula) {
  // 4 workers, 100 MB, 10 Gbps: 2 * 3/4 * 100MB / 1.25 GB/s = 120 ms + latency.
  const ClusterConfig c = Cluster(4, 1, 10.0);
  const int64_t bytes = 100 * 1000 * 1000;
  const TimeNs expected_wire = Ms(120);
  const TimeNs latency = 2 * 3 * c.network.inter_node_latency;
  EXPECT_NEAR(static_cast<double>(RingAllReduceTime(bytes, c)),
              static_cast<double>(expected_wire + latency), 1e6);
}

TEST(Collectives, IntraNodeUsesPcie) {
  // Single machine, multiple GPUs: bottleneck is PCIe, not the NIC.
  const TimeNs one_machine = RingAllReduceTime(100 << 20, Cluster(1, 4, 10.0));
  const TimeNs four_machines = RingAllReduceTime(100 << 20, Cluster(4, 1, 10.0));
  EXPECT_LT(one_machine, four_machines);  // 10 GB/s PCIe >> 1.25 GB/s NIC
}

TEST(Collectives, ReduceScatterPlusAllGatherEqualsAllReduceWire) {
  // RS + AG = 2 * (n-1)/n * S / bw: the ring allReduce decomposition.
  const double bw = 1.25;
  const TimeNs lat = Us(20);
  const int64_t bytes = 64 << 20;
  const TimeNs rs = ReduceScatterTime(bytes, 4, bw, lat);
  const TimeNs ag = AllGatherTime(bytes, 4, bw, lat);
  const TimeNs ar = RingAllReduceTime(bytes, Cluster(4, 1, 10.0));
  EXPECT_NEAR(static_cast<double>(rs + ag), static_cast<double>(ar), 1e5);
}

TEST(Collectives, PartialCollectiveSingleRankFree) {
  EXPECT_EQ(ReduceScatterTime(1 << 20, 1, 1.0, Us(20)), 0);
  EXPECT_EQ(AllGatherTime(1 << 20, 1, 1.0, Us(20)), 0);
}

TEST(Collectives, BlueConnectBeatsFlatRingOnHierarchy) {
  // On a multi-GPU-per-machine cluster, moving only 1/g of the data across
  // the NIC (per channel) beats the flat ring that pays full traffic on it.
  const ClusterConfig c = Cluster(4, 4, 10.0);
  EXPECT_LT(BlueConnectAllReduceTime(100 << 20, c), RingAllReduceTime(100 << 20, c));
}

TEST(Collectives, BlueConnectSingleGpuFree) {
  EXPECT_EQ(BlueConnectAllReduceTime(100 << 20, Cluster(1, 1)), 0);
}

TEST(Collectives, NcclExclusiveAboveTheoretical) {
  const TimeNs theory = Ms(10);
  EXPECT_GT(NcclExclusiveTime(theory), theory);
  EXPECT_LT(NcclExclusiveTime(theory), static_cast<TimeNs>(theory * 1.2));
}

TEST(Collectives, PsTransferWireTime) {
  NetworkSpec net;
  net.bandwidth_gbps = 8.0;  // 1 GB/s
  const TimeNs t = PsTransferTime(100 * 1000 * 1000, net);
  EXPECT_NEAR(static_cast<double>(t), static_cast<double>(Ms(100) + net.inter_node_latency), 1e6);
}

// ---- bucketing ----

TEST(Bucketing, CoversEveryParamLayerExactlyOnce) {
  const ModelGraph g = BuildResNet50(32);
  const std::vector<GradientBucket> buckets = ComputeBuckets(g);
  std::vector<int> seen(static_cast<size_t>(g.num_layers()), 0);
  for (const GradientBucket& b : buckets) {
    for (int id : b.layer_ids) {
      seen[static_cast<size_t>(id)]++;
    }
  }
  for (const Layer& l : g.layers()) {
    EXPECT_EQ(seen[static_cast<size_t>(l.id)], l.has_params() ? 1 : 0) << l.name;
  }
}

TEST(Bucketing, BytesAddUp) {
  const ModelGraph g = BuildVgg19(32);
  int64_t total = 0;
  for (const GradientBucket& b : ComputeBuckets(g)) {
    total += b.bytes;
  }
  EXPECT_EQ(total, g.TotalParamBytes());
}

TEST(Bucketing, BucketsFilledInBackwardOrder) {
  const ModelGraph g = BuildBertBase(8);
  const std::vector<GradientBucket> buckets = ComputeBuckets(g);
  // Bucket 0 holds the layers closest to the loss; trigger layers decrease.
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i].trigger_layer_id, buckets[i - 1].trigger_layer_id);
  }
}

TEST(Bucketing, TriggerIsEarliestLayerInBucket) {
  const ModelGraph g = BuildResNet50(32);
  for (const GradientBucket& b : ComputeBuckets(g)) {
    int min_layer = b.layer_ids.front();
    for (int id : b.layer_ids) {
      min_layer = std::min(min_layer, id);
    }
    EXPECT_EQ(b.trigger_layer_id, min_layer);
  }
}

TEST(Bucketing, RespectsCapExceptSingleTensors) {
  const ModelGraph g = BuildResNet50(32);
  const std::vector<GradientBucket> buckets = ComputeBuckets(g, 25 * 1024 * 1024);
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].layer_ids.size() > 1) {
      // A multi-layer bucket only exceeds the cap by its last layer.
      EXPECT_LT(buckets[i].bytes, 2 * 25 * 1024 * 1024) << i;
    }
  }
}

TEST(Bucketing, SmallerCapMoreBuckets) {
  const ModelGraph g = BuildResNet50(32);
  EXPECT_GT(ComputeBuckets(g, 5 * 1024 * 1024).size(), ComputeBuckets(g, 50 * 1024 * 1024).size());
}

TEST(Bucketing, LayerToBucketInverse) {
  const ModelGraph g = BuildGnmt(64);
  const std::vector<GradientBucket> buckets = ComputeBuckets(g);
  const std::vector<int> map = LayerToBucket(g, buckets);
  for (const GradientBucket& b : buckets) {
    for (int id : b.layer_ids) {
      EXPECT_EQ(map[static_cast<size_t>(id)], b.id);
    }
  }
  for (const Layer& l : g.layers()) {
    if (!l.has_params()) {
      EXPECT_EQ(map[static_cast<size_t>(l.id)], -1);
    }
  }
}

// ---- parameter-server slicing ----

TEST(ParamServer, WholeTensorOnePerLayer) {
  const ModelGraph g = BuildVgg19(32);
  const std::vector<PsSlice> slices = WholeTensorSlices(g, 4);
  size_t param_layers = 0;
  for (const Layer& l : g.layers()) {
    param_layers += l.has_params() ? 1 : 0;
  }
  EXPECT_EQ(slices.size(), param_layers);
}

TEST(ParamServer, P3SliceSizesBounded) {
  const ModelGraph g = BuildVgg19(32);
  for (const PsSlice& s : P3Slices(g, 4, 512 * 1024)) {
    EXPECT_GT(s.bytes, 0);
    EXPECT_LE(s.bytes, 512 * 1024);
  }
}

TEST(ParamServer, P3BytesAddUp) {
  const ModelGraph g = BuildResNet50(32);
  int64_t total = 0;
  for (const PsSlice& s : P3Slices(g, 4)) {
    total += s.bytes;
  }
  EXPECT_EQ(total, g.TotalParamBytes());
}

TEST(ParamServer, EarlierLayersHigherPriority) {
  const ModelGraph g = BuildVgg19(32);
  const std::vector<PsSlice> slices = P3Slices(g, 4);
  int first_layer_priority = -1;
  int last_layer_priority = -1;
  for (const PsSlice& s : slices) {
    if (first_layer_priority < 0) {
      first_layer_priority = s.priority;
    }
    last_layer_priority = s.priority;
  }
  EXPECT_GT(first_layer_priority, last_layer_priority);
}

TEST(ParamServer, SlicesSpreadOverServers) {
  const ModelGraph g = BuildVgg19(32);
  std::set<int> servers;
  for (const PsSlice& s : P3Slices(g, 4)) {
    servers.insert(s.server);
    EXPECT_GE(s.server, 0);
    EXPECT_LT(s.server, 4);
  }
  EXPECT_EQ(servers.size(), 4u);
}

TEST(ClusterConfig, Label) {
  EXPECT_EQ(Cluster(2, 2, 20.0).Label(), "2x2 @ 20Gbps");
  EXPECT_EQ(Cluster(4, 1).total_gpus(), 4);
  EXPECT_TRUE(Cluster(2, 1).multi_machine());
  EXPECT_FALSE(Cluster(1, 4).multi_machine());
}

TEST(NetworkSpec, UnitConversions) {
  NetworkSpec net;
  net.bandwidth_gbps = 10.0;
  EXPECT_DOUBLE_EQ(net.nic_bytes_per_ns(), 1.25);
  net.intra_node_gbs = 12.0;
  EXPECT_DOUBLE_EQ(net.pcie_bytes_per_ns(), 12.0);
}

}  // namespace
}  // namespace daydream

// Chaos suite: the serve stack under armed fault injection.
//
// The hardening contract (docs/serve.md, "Limits & fault tolerance") is
// behavioral, not structural: with every fault site armed, hundreds of mixed
// requests — valid, invalid, heavy, trivial — must each get exactly one
// well-formed envelope, the daemon must neither crash nor deadlock, and once
// the faults are disarmed the very next request must succeed. These tests
// drive the full stdio transport (worker pool, admission control, executor)
// rather than the executor alone, because the invariant lives in the
// transport plumbing: a dropped or doubled response is precisely the bug
// class this suite exists to catch.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/ground_truth.h"
#include "src/service/serve.h"
#include "src/service/session.h"
#include "src/trace/trace_io.h"
#include "src/util/fault.h"
#include "src/util/json.h"
#include "src/util/string_util.h"

namespace daydream {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_path_ = new std::string(::testing::TempDir() + "chaos_test_tinymlp.ddtrace");
    const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp));
    ASSERT_TRUE(WriteTraceFile(trace, *trace_path_));
  }
  static void TearDownTestSuite() {
    delete trace_path_;
    trace_path_ = nullptr;
  }

  // Every test leaves the process-global injector clean, armed or not.
  void TearDown() override { FaultInjector::Global().Disarm(); }

  static std::vector<std::string> Lines(const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) {
      if (!line.empty()) {
        lines.push_back(line);
      }
    }
    return lines;
  }

  static std::string* trace_path_;
};

std::string* ChaosTest::trace_path_ = nullptr;

// The core chaos invariant: N mixed requests with distinct ids through the
// stdio transport, every fault site armed at meaningful rates, four workers
// racing. Every id must come back exactly once, every line must parse, and
// the stream must end with a clean drain.
TEST_F(ChaosTest, EveryAcceptedLineGetsExactlyOneEnvelopeUnderFaults) {
  std::string error;
  ASSERT_TRUE(FaultInjector::Global().ArmSpec(
      "trace_load:fail:0.3,plan_compile:fail:0.3,plan_cache_insert:fail:0.5,"
      "worker_execute:fail:0.2,worker_execute:delay:0.3:2,socket_write:fail:0.3",
      &error))
      << error;

  constexpr int kRequests = 250;
  std::ostringstream input;
  // A standing session opened before the storm; its open may itself be
  // faulted, so requests against it tolerate unknown_session too.
  input << "{\"id\": \"warm\", \"verb\": \"open\", \"trace\": \"" << *trace_path_ << "\"}\n";
  for (int i = 0; i < kRequests; ++i) {
    const std::string id = StrFormat("\"r%d\"", i);
    switch (i % 10) {
      case 0:
        input << "{\"id\": " << id << ", \"verb\": \"open\", \"trace\": \"" << *trace_path_
              << "\"}\n";
        break;
      case 1:
        input << "{\"id\": " << id
              << ", \"verb\": \"predict\", \"session\": \"s1\", \"what_if\": \"amp\"}\n";
        break;
      case 2:
        input << "{\"id\": " << id
              << ", \"verb\": \"predict\", \"session\": \"s1\", \"what_if\": \"fused_adam\", "
                 "\"sim_jobs\": 2}\n";
        break;
      case 3:
        input << "{\"id\": " << id << ", \"verb\": \"sweep\", \"session\": \"s1\"}\n";
        break;
      case 4:
        input << "{\"id\": " << id << ", \"verb\": \"lint\", \"session\": \"s1\"}\n";
        break;
      case 5:
        input << "{\"id\": " << id << ", \"verb\": \"stats\", \"session\": \"s1\"}\n";
        break;
      case 6:
        input << "{\"id\": " << id << ", \"verb\": \"ping\"}\n";
        break;
      case 7:
        input << "{\"id\": " << id << ", \"verb\": \"no_such_verb\"}\n";
        break;
      case 8:
        // Malformed on purpose: answered parse_error, id unrecoverable.
        input << "this is not json at all (" << i << ")\n";
        break;
      case 9:
        input << "{\"id\": " << id
              << ", \"verb\": \"predict\", \"session\": \"nope\", \"what_if\": \"amp\"}\n";
        break;
    }
  }

  ServeOptions options;
  options.workers = 4;
  options.limits.max_queue = 0;  // no shedding: this test counts envelopes 1:1
  std::istringstream in(input.str());
  std::ostringstream out;
  ASSERT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_FALSE(lines.empty());
  // Banner + one envelope per non-empty input line (the malformed ones too).
  const size_t expected = 1 + 1 + static_cast<size_t>(kRequests);
  EXPECT_EQ(lines.size(), expected);

  std::map<std::string, int> seen;  // id -> envelopes carrying it
  int parse_errors = 0;
  for (size_t i = 1; i < lines.size(); ++i) {  // skip the banner
    std::string parse_error;
    const std::optional<JsonObject> response = ParseJsonObject(lines[i], &parse_error);
    if (response.has_value()) {
      ASSERT_TRUE(response->Has("ok")) << lines[i];
      if (!response->GetBool("ok", false)) {
        EXPECT_FALSE(response->GetString("code").empty()) << lines[i];
      }
      if (response->Has("id")) {
        ++seen[response->GetString("id")];
      } else {
        ++parse_errors;  // only the malformed lines lose their id
      }
      continue;
    }
    // Sweep payloads nest a `cases` array, which is outside the flat parser's
    // subset; error envelopes never nest, so a non-flat line must be an ok
    // response with an id.
    ASSERT_NE(parse_error.find("nested"), std::string::npos)
        << parse_error << "\nline: " << lines[i];
    EXPECT_NE(lines[i].find("\"ok\": true"), std::string::npos) << lines[i];
    const std::string prefix = "{\"id\": \"";
    ASSERT_EQ(lines[i].rfind(prefix, 0), 0u) << lines[i];
    const size_t end = lines[i].find('"', prefix.size());
    ASSERT_NE(end, std::string::npos) << lines[i];
    ++seen[lines[i].substr(prefix.size(), end - prefix.size())];
  }
  EXPECT_EQ(parse_errors, kRequests / 10);
  EXPECT_EQ(seen["warm"], 1);
  for (int i = 0; i < kRequests; ++i) {
    if (i % 10 == 8) {
      continue;  // malformed; counted via parse_errors
    }
    EXPECT_EQ(seen[StrFormat("r%d", i)], 1) << "id r" << i;
  }

  // Chaos must actually have happened — otherwise this test proves nothing.
  EXPECT_GT(FaultInjector::Global().fired(), 0u);

  // Recovery: disarm and the next request succeeds end to end. One worker —
  // the predict addresses the session the preceding open creates, so the two
  // must not race through the pool.
  FaultInjector::Global().Disarm();
  ServeOptions recovery = options;
  recovery.workers = 1;
  std::istringstream in2("{\"id\": \"after\", \"verb\": \"open\", \"trace\": \"" + *trace_path_ +
                         "\"}\n{\"id\": \"after2\", \"verb\": \"predict\", \"session\": \"s1\", "
                         "\"what_if\": \"amp\"}\n");
  std::ostringstream out2;
  ASSERT_EQ(RunServeStdio(in2, out2, recovery), 0);
  const std::vector<std::string> after = Lines(out2.str());
  ASSERT_EQ(after.size(), 3u);
  std::string parse_error;
  const std::optional<JsonObject> opened = ParseJsonObject(after[1], &parse_error);
  ASSERT_TRUE(opened.has_value()) << parse_error;
  EXPECT_TRUE(opened->GetBool("ok")) << after[1];
  const std::optional<JsonObject> predicted = ParseJsonObject(after[2], &parse_error);
  ASSERT_TRUE(predicted.has_value()) << parse_error;
  EXPECT_TRUE(predicted->GetBool("ok")) << after[2];
}

// plan_cache_insert is the graceful-degradation site: the insert is dropped
// but the request that compiled the plan still answers ok — repeatedly, since
// the cache never warms.
TEST_F(ChaosTest, DroppedCacheInsertsStillAnswer) {
  std::string error;
  ASSERT_TRUE(FaultInjector::Global().ArmSpec("plan_cache_insert:fail", &error)) << error;

  ServeOptions options;
  options.workers = 1;  // deterministic response order
  std::ostringstream input;
  input << "{\"id\": 0, \"verb\": \"open\", \"trace\": \"" << *trace_path_ << "\"}\n";
  for (int i = 1; i <= 3; ++i) {
    input << "{\"id\": " << i
          << ", \"verb\": \"predict\", \"session\": \"s1\", \"what_if\": \"amp\"}\n";
  }
  std::istringstream in(input.str());
  std::ostringstream out;
  ASSERT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 5u);
  for (size_t i = 2; i < lines.size(); ++i) {
    std::string parse_error;
    const std::optional<JsonObject> response = ParseJsonObject(lines[i], &parse_error);
    ASSERT_TRUE(response.has_value()) << parse_error;
    EXPECT_TRUE(response->GetBool("ok")) << lines[i];
    // Every predict misses: the faulted Put never populated the cache.
    EXPECT_FALSE(response->GetBool("cache_hit", true)) << lines[i];
  }
}

// Fault visibility: the stats verb reports the armed spec and a nonzero fired
// counter once sites start firing.
TEST_F(ChaosTest, StatsReportsArmedFaults) {
  std::string error;
  ASSERT_TRUE(FaultInjector::Global().ArmSpec("plan_compile:fail:1", &error)) << error;

  ServeOptions options;
  options.workers = 1;
  std::istringstream in("{\"id\": 0, \"verb\": \"open\", \"trace\": \"" + *trace_path_ +
                        "\"}\n{\"id\": 1, \"verb\": \"predict\", \"session\": \"s1\", "
                        "\"what_if\": \"amp\"}\n{\"id\": 2, \"verb\": \"stats\", \"session\": "
                        "\"s1\"}\n");
  std::ostringstream out;
  ASSERT_EQ(RunServeStdio(in, out, options), 0);

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  std::string parse_error;
  const std::optional<JsonObject> predicted = ParseJsonObject(lines[2], &parse_error);
  ASSERT_TRUE(predicted.has_value()) << parse_error;
  EXPECT_FALSE(predicted->GetBool("ok", true));
  EXPECT_EQ(predicted->GetString("code"), "unavailable");
  const std::optional<JsonObject> stats = ParseJsonObject(lines[3], &parse_error);
  ASSERT_TRUE(stats.has_value()) << parse_error;
  EXPECT_TRUE(stats->GetBool("ok"));
  EXPECT_NE(stats->GetString("faults").find("plan_compile:fail"), std::string::npos);
  EXPECT_GE(stats->GetNumber("faults_fired", 0), 1.0);
}

// Spec validation: unknown sites and malformed kinds/rates are rejected with
// a diagnostic, and entries before the bad one stay armed.
TEST_F(ChaosTest, ArmSpecRejectsTyposLoudly) {
  FaultInjector& injector = FaultInjector::Global();
  std::string error;
  EXPECT_FALSE(injector.ArmSpec("no_such_site:fail", &error));
  EXPECT_NE(error.find("no_such_site"), std::string::npos);
  EXPECT_FALSE(injector.ArmSpec("plan_compile:explode", &error));
  EXPECT_NE(error.find("explode"), std::string::npos);
  EXPECT_FALSE(injector.ArmSpec("plan_compile:fail:2.0", &error));
  EXPECT_FALSE(injector.ArmSpec("plan_compile:fail:0.5:-3", &error));
  EXPECT_TRUE(injector.ArmSpec("plan_compile:fail:0.5,worker_execute:delay", &error)) << error;
  EXPECT_TRUE(injector.armed());
  EXPECT_NE(injector.SpecString().find("worker_execute:delay"), std::string::npos);
}

}  // namespace
}  // namespace daydream

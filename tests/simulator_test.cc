#include <gtest/gtest.h>

#include "src/core/simulator.h"

namespace daydream {
namespace {

Task Make(TaskType type, ExecThread thread, TimeNs dur, TimeNs gap = 0, int priority = 0) {
  Task t;
  t.type = type;
  t.thread = thread;
  t.duration = dur;
  t.gap = gap;
  t.priority = priority;
  return t;
}

TEST(Simulator, EmptyGraph) {
  DependencyGraph g;
  const SimResult r = Simulator().Run(g);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_EQ(r.dispatched, 0);
}

TEST(Simulator, SingleTask) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  const SimResult r = Simulator().Run(g);
  EXPECT_EQ(r.makespan, Us(10));
  EXPECT_EQ(r.start[static_cast<size_t>(a)], 0);
  EXPECT_EQ(r.EndOf(a), Us(10));
}

TEST(Simulator, ChainOnOneThread) {
  DependencyGraph g;
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(20)));
  g.LinkSequential();
  EXPECT_EQ(Simulator().Run(g).makespan, Us(30));
}

TEST(Simulator, GapOccupiesThreadButNotChildren) {
  // Alg. 1 line 13: thread progress advances by duration + gap; our deviation
  // from line 16: cross-thread children start at end (without the gap).
  DependencyGraph g;
  const TaskId launch =
      g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(5), /*gap=*/Us(50)));
  const TaskId next_cpu = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(5)));
  const TaskId kernel = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(10)));
  g.LinkSequential();
  g.AddEdge(launch, kernel);
  const SimResult r = Simulator().Run(g);
  EXPECT_EQ(r.start[static_cast<size_t>(kernel)], Us(5));     // right after the launch
  EXPECT_EQ(r.start[static_cast<size_t>(next_cpu)], Us(55));  // after the gap
}

TEST(Simulator, ParallelThreadsOverlap) {
  DependencyGraph g;
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(30)));
  g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(40)));
  EXPECT_EQ(Simulator().Run(g).makespan, Us(40));
}

TEST(Simulator, DiamondDependency) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  const TaskId b = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(20)));
  const TaskId c = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(1), Us(30)));
  const TaskId d = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(1), Us(5)));
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  const SimResult r = Simulator().Run(g);
  EXPECT_EQ(r.start[static_cast<size_t>(d)], Us(40));  // max(10+20, 10+30)
  EXPECT_EQ(r.makespan, Us(45));
}

TEST(Simulator, MakespanAtLeastCriticalPath) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  const TaskId b = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(100)));
  const TaskId c = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  EXPECT_EQ(Simulator().Run(g).makespan, Us(120));
}

TEST(Simulator, MakespanAtLeastPerThreadWork) {
  DependencyGraph g;
  for (int i = 0; i < 5; ++i) {
    g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(10)));
  }
  EXPECT_GE(Simulator().Run(g).makespan, Us(50));  // one lane serializes
}

TEST(Simulator, ThreadBusyAccounting) {
  DependencyGraph g;
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(15)));
  const SimResult r = Simulator().Run(g);
  // Flat lane-indexed accounting plus the map-shaped compatibility view.
  ASSERT_EQ(r.lane_busy.size(), 1u);
  EXPECT_EQ(r.lane_threads[0], ExecThread::Cpu(0));
  EXPECT_EQ(r.lane_busy[0], Us(25));
  EXPECT_EQ(r.lane_end[0], Us(25));
  EXPECT_EQ(r.thread_busy().at(ExecThread::Cpu(0)), Us(25));
  EXPECT_EQ(r.thread_end().at(ExecThread::Cpu(0)), Us(25));
}

TEST(Simulator, LanesThatNeverDispatchStayOutOfTheMapViews) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(10)));
  g.Remove(a);  // lane 0 stays interned but has no alive tasks
  const SimResult r = Simulator().Run(g);
  ASSERT_EQ(r.lane_end.size(), 2u);
  EXPECT_EQ(r.lane_end[0], -1);
  EXPECT_EQ(r.lane_busy[0], 0);
  EXPECT_EQ(r.thread_busy().count(ExecThread::Cpu(0)), 0u);
  EXPECT_EQ(r.thread_end().count(ExecThread::Cpu(0)), 0u);
  EXPECT_EQ(r.thread_end().at(ExecThread::Gpu(0)), Us(10));
}

TEST(Simulator, DispatchCountsAliveOnly) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  g.Remove(a);
  EXPECT_EQ(Simulator().Run(g).dispatched, 1);
}

TEST(Simulator, EarliestStartPolicyDeterministic) {
  DependencyGraph g;
  for (int i = 0; i < 10; ++i) {
    g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(i % 2), Us(10 + i)));
  }
  const SimResult a = Simulator().Run(g);
  const SimResult b = Simulator().Run(g);
  EXPECT_EQ(a.start, b.start);
}

TEST(Simulator, PrioritySchedulerPrefersHighPriorityComm) {
  // Two comm tasks on the same channel, both ready at t=0: the priority
  // scheduler must dispatch the high-priority one first (P3's core mechanism).
  DependencyGraph g;
  const TaskId low = g.AddTask(Make(TaskType::kComm, ExecThread::Comm(0), Us(100), 0, /*prio=*/1));
  const TaskId high = g.AddTask(Make(TaskType::kComm, ExecThread::Comm(0), Us(100), 0, /*prio=*/9));

  const SimResult fifo = Simulator().Run(g);
  EXPECT_LT(fifo.start[static_cast<size_t>(low)], fifo.start[static_cast<size_t>(high)]);

  const SimResult prio =
      Simulator(std::make_shared<PriorityCommScheduler>()).Run(g);
  EXPECT_LT(prio.start[static_cast<size_t>(high)], prio.start[static_cast<size_t>(low)]);
}

TEST(Simulator, PrioritySchedulerStillHonorsReadiness) {
  // A high-priority task that becomes ready later cannot start before an
  // already-running transfer finishes (non-preemptive channel).
  DependencyGraph g;
  const TaskId gate = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(50)));
  const TaskId low = g.AddTask(Make(TaskType::kComm, ExecThread::Comm(0), Us(100), 0, 1));
  const TaskId high = g.AddTask(Make(TaskType::kComm, ExecThread::Comm(0), Us(100), 0, 9));
  g.AddEdge(gate, high);  // high priority ready only at t=50
  const SimResult r = Simulator(std::make_shared<PriorityCommScheduler>()).Run(g);
  EXPECT_EQ(r.start[static_cast<size_t>(low)], 0);
  EXPECT_EQ(r.start[static_cast<size_t>(high)], Us(100));
}

TEST(Simulator, CustomSchedulerInvoked) {
  class CountingScheduler : public Scheduler {
   public:
    size_t Pick(const std::vector<TaskId>& frontier, const Context& context) override {
      ++picks;
      return EarliestStartScheduler().Pick(frontier, context);
    }
    int picks = 0;
  };
  auto scheduler = std::make_shared<CountingScheduler>();
  DependencyGraph g;
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(1)));
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(1)));
  Simulator(scheduler).Run(g);
  EXPECT_EQ(scheduler->picks, 2);
}

TEST(Simulator, BuiltInSchedulersAreComparatorBased) {
  // Both built-ins run on the event-driven engine; a custom Pick-only policy
  // (like CountingScheduler above) keeps the reference path.
  EXPECT_TRUE(EarliestStartScheduler().comparator_based());
  EXPECT_TRUE(PriorityCommScheduler().comparator_based());
  class PickOnly : public EarliestStartScheduler {
   public:
    bool comparator_based() const override { return false; }
  };
  EXPECT_FALSE(PickOnly().comparator_based());
}

TEST(Simulator, ReferenceEngineAgreesOnDiamond) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  const TaskId b = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(20)));
  const TaskId c = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(1), Us(30)));
  const TaskId d = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(1), Us(5)));
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  const Simulator simulator;
  const SimResult run = simulator.Run(g);
  const SimResult reference = simulator.RunReference(g);
  EXPECT_EQ(run.start, reference.start);
  EXPECT_EQ(run.end, reference.end);
  EXPECT_EQ(run.makespan, reference.makespan);
}

TEST(Simulator, StartTimesRespectEdges) {
  DependencyGraph g;
  std::vector<TaskId> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(i % 3), Us(1 + i % 7))));
  }
  for (int i = 1; i < 50; i += 3) {
    g.AddEdge(ids[static_cast<size_t>(i - 1)], ids[static_cast<size_t>(i)]);
  }
  const SimResult r = Simulator().Run(g);
  for (TaskId id : g.AliveTasks()) {
    for (TaskId child : g.children(id)) {
      EXPECT_GE(r.start[static_cast<size_t>(child)], r.EndOf(id));
    }
  }
}

}  // namespace
}  // namespace daydream

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/chrome_trace.h"
#include "src/trace/trace.h"
#include "src/trace/trace_io.h"

namespace daydream {
namespace {

TraceEvent Kernel(const std::string& name, TimeNs start, TimeNs dur, int stream, int64_t corr) {
  TraceEvent e;
  e.kind = EventKind::kKernel;
  e.name = name;
  e.start = start;
  e.duration = dur;
  e.stream_id = stream;
  e.correlation_id = corr;
  return e;
}

TraceEvent Launch(TimeNs start, TimeNs dur, int tid, int64_t corr) {
  TraceEvent e;
  e.kind = EventKind::kRuntimeApi;
  e.api = ApiKind::kLaunchKernel;
  e.name = "cudaLaunchKernel";
  e.start = start;
  e.duration = dur;
  e.thread_id = tid;
  e.correlation_id = corr;
  return e;
}

TraceEvent Marker(int layer, Phase phase, bool begin, TimeNs at, int tid = 0) {
  TraceEvent e;
  e.kind = EventKind::kLayerMarker;
  e.name = "layer";
  e.layer_id = layer;
  e.phase = phase;
  e.marker_begin = begin;
  e.start = at;
  e.thread_id = tid;
  return e;
}

Trace ValidTwoKernelTrace() {
  Trace t;
  t.Add(Launch(0, 5, 0, 1));
  t.Add(Launch(10, 5, 0, 2));
  t.Add(Kernel("k1", 6, 20, 0, 1));
  t.Add(Kernel("k2", 26, 10, 0, 2));
  return t;
}

TEST(TraceEvent, Classification) {
  EXPECT_TRUE(Launch(0, 1, 0, 1).is_cpu());
  EXPECT_FALSE(Launch(0, 1, 0, 1).is_gpu());
  EXPECT_TRUE(Kernel("k", 0, 1, 0, 1).is_gpu());
  TraceEvent comm;
  comm.kind = EventKind::kCommunication;
  EXPECT_TRUE(comm.is_comm());
}

TEST(TraceEvent, EndTime) { EXPECT_EQ(Kernel("k", 10, 5, 0, 1).end(), 15); }

TEST(TraceEvent, ToStringCoverage) {
  EXPECT_STREQ(ToString(EventKind::kKernel), "Kernel");
  EXPECT_STREQ(ToString(ApiKind::kDeviceSynchronize), "cudaDeviceSynchronize");
  EXPECT_STREQ(ToString(MemcpyKind::kDeviceToHost), "DtoH");
  EXPECT_STREQ(ToString(CommKind::kAllReduce), "allReduce");
  EXPECT_STREQ(ToString(Phase::kWeightUpdate), "weight_update");
}

TEST(Trace, BoundsAndMakespan) {
  Trace t = ValidTwoKernelTrace();
  EXPECT_EQ(t.begin_time(), 0);
  EXPECT_EQ(t.end_time(), 36);
  EXPECT_EQ(t.makespan(), 36);
}

TEST(Trace, ViewsByLane) {
  Trace t = ValidTwoKernelTrace();
  EXPECT_EQ(t.CpuEvents(0).size(), 2u);
  EXPECT_EQ(t.GpuEvents(0).size(), 2u);
  EXPECT_EQ(t.CpuThreadIds(), std::vector<int>{0});
  EXPECT_EQ(t.GpuStreamIds(), std::vector<int>{0});
  EXPECT_EQ(t.CountKind(EventKind::kKernel), 2);
}

TEST(Trace, SortByStart) {
  Trace t;
  t.Add(Kernel("late", 50, 5, 0, 2));
  t.Add(Kernel("early", 10, 5, 0, 1));
  t.SortByStart();
  EXPECT_EQ(t.events()[0].name, "early");
}

TEST(TraceValidation, ValidTracePasses) {
  EXPECT_TRUE(ValidTwoKernelTrace().Validate().ok());
}

TEST(TraceValidation, DetectsCpuOverlap) {
  Trace t;
  t.Add(Launch(0, 10, 0, 1));
  t.Add(Launch(5, 10, 0, 2));
  t.Add(Kernel("a", 12, 1, 0, 1));
  t.Add(Kernel("b", 16, 1, 0, 2));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceValidation, DetectsGpuOverlap) {
  Trace t;
  t.Add(Launch(0, 1, 0, 1));
  t.Add(Launch(2, 1, 0, 2));
  t.Add(Kernel("a", 5, 10, 0, 1));
  t.Add(Kernel("b", 8, 10, 0, 2));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceValidation, DetectsOrphanGpuTask) {
  Trace t;
  t.Add(Kernel("orphan", 0, 5, 0, 99));
  const TraceValidation v = t.Validate();
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.Summary().find("no launching API"), std::string::npos);
}

TEST(TraceValidation, DetectsKernelBeforeLaunch) {
  Trace t;
  t.Add(Launch(10, 5, 0, 1));
  t.Add(Kernel("early", 2, 3, 0, 1));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceValidation, DetectsDuplicateCorrelation) {
  Trace t;
  t.Add(Launch(0, 1, 0, 1));
  t.Add(Launch(5, 1, 0, 1));  // duplicate id
  t.Add(Kernel("k", 10, 1, 0, 1));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceValidation, DetectsNegativeDuration) {
  Trace t;
  TraceEvent e = Launch(0, 1, 0, 0);
  e.duration = -5;
  t.Add(e);
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceValidation, DetectsUnmatchedMarkers) {
  Trace t;
  t.Add(Marker(3, Phase::kForward, /*begin=*/true, 0));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TraceValidation, DetectsEndWithoutBegin) {
  Trace t;
  t.Add(Marker(3, Phase::kForward, /*begin=*/false, 0));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(Trace, ExtractLayerSpans) {
  Trace t;
  t.Add(Marker(1, Phase::kForward, true, 100));
  t.Add(Marker(1, Phase::kForward, false, 250));
  t.Add(Marker(1, Phase::kBackward, true, 300));
  t.Add(Marker(1, Phase::kBackward, false, 420));
  const std::vector<LayerSpan> spans = t.ExtractLayerSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].layer_id, 1);
  EXPECT_EQ(spans[0].phase, Phase::kForward);
  EXPECT_EQ(spans[0].begin, 100);
  EXPECT_EQ(spans[0].end, 250);
  EXPECT_EQ(spans[1].phase, Phase::kBackward);
}

TEST(Trace, RepeatedSpansForSameLayer) {
  Trace t;
  for (int iter = 0; iter < 2; ++iter) {
    t.Add(Marker(4, Phase::kForward, true, 100 * iter));
    t.Add(Marker(4, Phase::kForward, false, 100 * iter + 50));
  }
  EXPECT_EQ(t.ExtractLayerSpans().size(), 2u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(Trace, GradientInfoSideChannel) {
  Trace t;
  t.AddGradientInfo({/*layer_id=*/5, /*bytes=*/1024, /*bucket_id=*/0});
  ASSERT_EQ(t.gradients().size(), 1u);
  EXPECT_EQ(t.gradients()[0].bytes, 1024);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  Trace t = ValidTwoKernelTrace();
  t.set_model_name("ResNet-50");
  t.set_config("b=64 pytorch");
  t.AddGradientInfo({3, 4096, 1});
  TraceEvent m = Marker(2, Phase::kBackward, true, 40);
  t.Add(m);
  TraceEvent comm;
  comm.kind = EventKind::kCommunication;
  comm.comm_kind = CommKind::kPush;
  comm.name = "push with spaces";
  comm.start = 50;
  comm.duration = 7;
  comm.channel_id = 1;
  comm.bytes = 12345;
  t.Add(comm);

  std::stringstream ss;
  WriteTrace(t, ss);
  std::optional<Trace> back = ReadTrace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->model_name(), "ResNet-50");
  EXPECT_EQ(back->config(), "b=64 pytorch");
  ASSERT_EQ(back->size(), t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    const TraceEvent& a = t.events()[i];
    const TraceEvent& b = back->events()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.thread_id, b.thread_id);
    EXPECT_EQ(a.stream_id, b.stream_id);
    EXPECT_EQ(a.channel_id, b.channel_id);
    EXPECT_EQ(a.correlation_id, b.correlation_id);
    EXPECT_EQ(a.layer_id, b.layer_id);
    EXPECT_EQ(a.phase, b.phase);
    EXPECT_EQ(a.marker_begin, b.marker_begin);
    EXPECT_EQ(a.bytes, b.bytes);
  }
  ASSERT_EQ(back->gradients().size(), 1u);
  EXPECT_EQ(back->gradients()[0].layer_id, 3);
}

TEST(TraceIo, RoundTripSurvivesHostileNames) {
  // Tabs/newlines in free-text fields must not break the line-oriented
  // format; the writer replaces them with spaces and the reader accepts it.
  Trace t = ValidTwoKernelTrace();
  t.set_model_name("evil\tmodel\nname");
  t.set_config("b=64\tcudnn\r\nbenchmark");
  TraceEvent hostile = t.events()[0];
  hostile.name = "kernel\twith\ntabs\rand newlines";
  hostile.start = 100;
  t.Add(hostile);

  std::stringstream ss;
  WriteTrace(t, ss);
  std::optional<Trace> back = ReadTrace(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->model_name(), "evil model name");
  EXPECT_EQ(back->config(), "b=64 cudnn  benchmark");
  ASSERT_EQ(back->size(), t.size());
  EXPECT_EQ(back->events().back().name, "kernel with tabs and newlines");
  EXPECT_EQ(back->events().back().start, 100);
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream ss("not a trace\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
}

TEST(TraceIo, RejectsMalformedEvent) {
  std::stringstream ss("daydream-trace v1\nev\t1\t2\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
}

// One syntactically valid event line ("ev" + 15 fields) whose field at
// `index` (0 = the "ev" tag) is replaced by `value`. Field order:
// kind api memcpy comm start duration thread stream channel corr layer
// phase marker bytes name.
std::string EventLineWith(size_t index, const std::string& value) {
  // Kernel event: the GPU lane (stream) is set, thread/channel are the -1
  // sentinel — the kind-vs-lane rule ingestion enforces.
  std::vector<std::string> fields = {"ev", "1", "1", "0", "0", "0",  "10", "-1", "0",
                                     "-1", "7", "-1", "0", "0", "64", "k"};
  fields[index] = value;
  std::string line = "daydream-trace v1\n";
  for (size_t i = 0; i < fields.size(); ++i) {
    line += fields[i];
    line += i + 1 < fields.size() ? "\t" : "\n";
  }
  return line;
}

TEST(TraceIo, AcceptsControlEventLine) {
  std::stringstream ss(EventLineWith(0, "ev"));
  const std::optional<Trace> trace = ReadTrace(ss);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), 1u);
  EXPECT_EQ(trace->events()[0].kind, EventKind::kKernel);
  EXPECT_EQ(trace->events()[0].bytes, 64);
}

TEST(TraceIo, RejectsOutOfRangeEnums) {
  // Out-of-range integers must not be cast into invalid enum values that
  // downstream switches mishandle.
  const struct {
    size_t field;
    const char* value;
  } corrupt[] = {
      {1, "6"},  {1, "-1"}, {1, "99"},   // EventKind
      {2, "10"}, {2, "-2"},              // ApiKind
      {3, "4"},                          // MemcpyKind
      {4, "7"},                          // CommKind (6 = kP2p is the last valid value)
      {12, "5"}, {12, "-1"},             // Phase
  };
  for (const auto& c : corrupt) {
    std::stringstream ss(EventLineWith(c.field, c.value));
    EXPECT_FALSE(ReadTrace(ss).has_value())
        << "field " << c.field << " = " << c.value << " must reject the file";
  }
}

TEST(TraceIo, RejectsNegativeTimesAndSizes) {
  // Negative start/duration/bytes violate simulator invariants (progress
  // would move backward); the file must be rejected, not simulated.
  const struct {
    size_t field;
    const char* value;
  } corrupt[] = {
      {5, "-1"},     // start
      {6, "-10"},    // duration
      {14, "-64"},   // bytes
  };
  for (const auto& c : corrupt) {
    std::stringstream ss(EventLineWith(c.field, c.value));
    EXPECT_FALSE(ReadTrace(ss).has_value())
        << "field " << c.field << " = " << c.value << " must reject the file";
  }
}

TEST(TraceIo, RejectsNegativeGradientBytes) {
  std::stringstream ss("daydream-trace v1\ngrad\t3\t-4096\t1\n");
  EXPECT_FALSE(ReadTrace(ss).has_value());
}

// Regression: files that crossed a Windows toolchain arrive with CRLF line
// endings. The header compare used to fail on "daydream-trace v1\r", and a
// body-only CRLF file silently appended '\r' to every event name.
TEST(TraceIo, AcceptsCrlfLineEndings) {
  const Trace original = ValidTwoKernelTrace();
  std::stringstream unix_file;
  WriteTrace(original, unix_file);
  std::string crlf = unix_file.str();
  size_t at = 0;
  while ((at = crlf.find('\n', at)) != std::string::npos) {
    crlf.replace(at, 1, "\r\n");
    at += 2;
  }
  std::stringstream ss(crlf);
  const std::optional<Trace> trace = ReadTrace(ss);
  ASSERT_TRUE(trace.has_value());
  ASSERT_EQ(trace->size(), original.size());
  EXPECT_EQ(trace->events()[2].name, "k1");  // no trailing '\r'
  // And the reparse round-trips byte-identically to the LF original.
  std::stringstream again;
  WriteTrace(*trace, again);
  EXPECT_EQ(again.str(), unix_file.str());
}

// Regression: lane ids below the -1 sentinel used to be ingested verbatim;
// stream_id=-500 aliased the Chrome-export row bands and broke lane
// assignment. An event must also carry the lane its kind runs on.
TEST(TraceIo, RejectsCorruptLaneIds) {
  const struct {
    size_t field;
    const char* value;
  } corrupt[] = {
      {7, "-500"},  // thread_id below the sentinel
      {8, "-2"},    // stream_id below the sentinel
      {8, "-1"},    // GPU event with its required lane unset
      {9, "-1000"},  // channel_id below the sentinel
  };
  for (const auto& c : corrupt) {
    std::stringstream ss(EventLineWith(c.field, c.value));
    EXPECT_FALSE(ReadTrace(ss).has_value())
        << "field " << c.field << " = " << c.value << " must reject the file";
  }
  // A CPU event with no thread and a comm event with no channel also reject.
  std::stringstream cpu(EventLineWith(1, "0"));  // RuntimeApi, thread_id=-1
  EXPECT_FALSE(ReadTrace(cpu).has_value());
}

// Regression: numeric fields were parsed with std::stoi/stoll, which accept
// leading whitespace and trailing garbage — "1abc" misparsed as 1 and the
// corrupt record was ingested instead of rejected.
TEST(TraceIo, RejectsTrailingGarbageInNumericFields) {
  const struct {
    size_t field;
    const char* value;
  } corrupt[] = {
      {1, "1abc"},    // kind
      {5, "100x"},    // start
      {6, " 10"},     // duration (leading whitespace)
      {10, "7abc"},   // correlation id
      {14, "64kb"},   // bytes
      {14, ""},       // empty field
  };
  for (const auto& c : corrupt) {
    std::stringstream ss(EventLineWith(c.field, c.value));
    EXPECT_FALSE(ReadTrace(ss).has_value())
        << "field " << c.field << " = '" << c.value << "' must reject the file";
  }
  std::stringstream grad("daydream-trace v1\ngrad\t3\t4096abc\t1\n");
  EXPECT_FALSE(ReadTrace(grad).has_value());
}

TEST(ChromeTrace, ProducesJsonArray) {
  Trace t = ValidTwoKernelTrace();
  std::stringstream ss;
  WriteChromeTrace(t, ss);
  const std::string out = ss.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("cudaLaunchKernel"), std::string::npos);
}

TEST(ChromeTrace, JsonEscape) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

TEST(ChromeTrace, JsonEscapeControlCharacters) {
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonEscape(std::string("a\rb")), "a\\u000db");
  EXPECT_EQ(JsonEscape(std::string("a\x01z")), "a\\u0001z");
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\\u0000");
  // Printable text and non-ASCII bytes pass through untouched.
  EXPECT_EQ(JsonEscape("plain_kernel<128>"), "plain_kernel<128>");
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

// Every execution row — CPU threads, GPU streams AND communication channels —
// must carry thread_name metadata; comm rows used to be emitted without it,
// so viewers showed bare "2000"-range tids for distributed traces.
TEST(ChromeTrace, CommChannelRowsGetThreadNames) {
  Trace t = ValidTwoKernelTrace();
  TraceEvent comm;
  comm.kind = EventKind::kCommunication;
  comm.comm_kind = CommKind::kAllReduce;
  comm.name = "ncclAllReduce";
  comm.start = 50;
  comm.duration = 20;
  comm.channel_id = 3;
  comm.bytes = 4096;
  t.Add(comm);

  std::stringstream ss;
  WriteChromeTrace(t, ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find(R"({"name":"thread_name","ph":"M","pid":1,"tid":2003,)"
                     R"("args":{"name":"comm channel 3"}})"),
            std::string::npos)
      << out;
  // The comm event itself lands on the same tid as its metadata row.
  EXPECT_NE(out.find(R"("name":"ncclAllReduce","cat":"Communication","ph":"X","pid":1,"tid":2003)"),
            std::string::npos)
      << out;
  EXPECT_EQ(t.CommChannelIds(), std::vector<int>{3});
}

// Golden snippet: byte-exact complete-event ("ph":"X") line for one kernel.
TEST(ChromeTrace, CompleteEventGoldenLine) {
  Trace t;
  TraceEvent k = Kernel("volta_sgemm_128x64", /*start=*/1500, /*dur=*/2500, /*stream=*/7,
                        /*corr=*/42);
  k.layer_id = 5;
  k.phase = Phase::kForward;
  k.bytes = 1024;
  t.Add(k);

  std::stringstream ss;
  WriteChromeTrace(t, ss);
  const std::string expected =
      R"({"name":"volta_sgemm_128x64","cat":"Kernel","ph":"X","pid":1,"tid":1007,)"
      R"("ts":1.500,"dur":2.500,"args":{"layer":5,"phase":"forward","corr":42,"bytes":1024}})";
  EXPECT_NE(ss.str().find(expected), std::string::npos) << ss.str();
}

// Layer markers become instantaneous events ("ph":"i"), not complete events.
TEST(ChromeTrace, MarkerVersusCompleteEvents) {
  Trace t;
  t.Add(Marker(/*layer=*/2, Phase::kBackward, /*begin=*/true, /*at=*/3000, /*tid=*/4));
  TraceEvent k = Kernel("elementwise_kernel", 3500, 100, /*stream=*/0, /*corr=*/7);
  t.Add(k);

  std::stringstream ss;
  WriteChromeTrace(t, ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find(R"({"name":"layer/backward/begin","ph":"i","pid":1,"tid":4,"ts":3.000,)"
                     R"("s":"t","args":{"layer":2}})"),
            std::string::npos)
      << out;
  // Markers carry no "dur"; complete events do.
  EXPECT_EQ(out.find(R"("ph":"i","pid":1,"tid":4,"ts":3.000,"dur")"), std::string::npos);
  EXPECT_NE(out.find(R"("name":"elementwise_kernel","cat":"Kernel","ph":"X")"),
            std::string::npos);
}

}  // namespace
}  // namespace daydream

#include "tools/cli_args.h"

#include <gtest/gtest.h>

#include <vector>

namespace daydream {
namespace {

Args ParseVec(const std::vector<const char*>& argv) {
  return ParseArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ParseArgs, CommandAndFlags) {
  const Args args = ParseVec({"daydream", "predict", "--trace", "p.ddtrace", "--what-if", "amp"});
  EXPECT_TRUE(args.ok());
  EXPECT_EQ(args.command, "predict");
  EXPECT_EQ(args.Get("trace"), "p.ddtrace");
  EXPECT_EQ(args.Get("what-if"), "amp");
  EXPECT_EQ(args.Get("missing", "fallback"), "fallback");
}

TEST(ParseArgs, NoArguments) {
  const Args args = ParseVec({"daydream"});
  EXPECT_TRUE(args.ok());
  EXPECT_TRUE(args.command.empty());
  EXPECT_TRUE(args.flags.empty());
}

TEST(ParseArgs, TrailingFlagWithoutValueIsAnError) {
  const Args args = ParseVec({"daydream", "report", "--trace"});
  EXPECT_FALSE(args.ok());
  EXPECT_EQ(args.error, "flag --trace requires a value");
}

TEST(ParseArgs, PositionalTokenIsAnError) {
  // A forgotten flag name must not shift the whole command line by one.
  const Args args = ParseVec({"daydream", "predict", "p.ddtrace", "--what-if", "amp"});
  EXPECT_FALSE(args.ok());
  EXPECT_EQ(args.error, "unexpected argument 'p.ddtrace' (flags look like --name value)");
}

TEST(ParseInt, AcceptsIntegers) {
  EXPECT_EQ(ParseInt("0"), 0);
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-7"), -7);
}

TEST(ParseInt, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("4xa").has_value());
  EXPECT_FALSE(ParseInt("fast").has_value());
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("99999999999999999999").has_value());
  EXPECT_FALSE(ParseInt(" 42").has_value());
  EXPECT_FALSE(ParseInt("0x10").has_value());
}

TEST(ParseDouble, AcceptsNumbers) {
  EXPECT_EQ(ParseDouble("10"), 10.0);
  EXPECT_EQ(ParseDouble("2.5"), 2.5);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("fast").has_value());
  EXPECT_FALSE(ParseDouble("10Gbps").has_value());
  EXPECT_FALSE(ParseDouble(" 42").has_value());
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("0x10").has_value());
  EXPECT_FALSE(ParseDouble("1e999").has_value());
}

TEST(ParseCluster, ParsesShapeAndBandwidth) {
  Args args;
  args.flags["cluster"] = "4x2";
  args.flags["gbps"] = "25";
  const std::optional<ClusterConfig> cluster = ParseCluster(args);
  ASSERT_TRUE(cluster.has_value());
  EXPECT_EQ(cluster->machines, 4);
  EXPECT_EQ(cluster->gpus_per_machine, 2);
  EXPECT_DOUBLE_EQ(cluster->network.bandwidth_gbps, 25.0);
}

TEST(ParseCluster, DefaultsWhenFlagsAbsent) {
  const std::optional<ClusterConfig> cluster = ParseCluster(Args{});
  ASSERT_TRUE(cluster.has_value());
  EXPECT_EQ(cluster->machines, 4);
  EXPECT_EQ(cluster->gpus_per_machine, 1);
  EXPECT_DOUBLE_EQ(cluster->network.bandwidth_gbps, 10.0);
}

TEST(ParseCluster, RejectsMalformedShape) {
  for (const char* bad : {"4xa", "ax2", "4", "4x2x1", "0x2", "4x0", "-1x2", ""}) {
    Args args;
    args.flags["cluster"] = bad;
    EXPECT_FALSE(ParseCluster(args).has_value()) << "--cluster " << bad;
  }
}

TEST(ParseCluster, RejectsMalformedBandwidth) {
  for (const char* bad : {"fast", "0", "-5", "10Gbps"}) {
    Args args;
    args.flags["cluster"] = "4x2";
    args.flags["gbps"] = bad;
    EXPECT_FALSE(ParseCluster(args).has_value()) << "--gbps " << bad;
  }
}

TEST(ParseClusterList, DefaultsToFourShapesAtTenGbps) {
  const std::optional<std::vector<ClusterConfig>> clusters = ParseClusterList(Args{});
  ASSERT_TRUE(clusters.has_value());
  ASSERT_EQ(clusters->size(), 4u);
  EXPECT_EQ((*clusters)[0].machines, 2);
  EXPECT_EQ((*clusters)[0].gpus_per_machine, 1);
  EXPECT_EQ((*clusters)[3].machines, 4);
  EXPECT_EQ((*clusters)[3].gpus_per_machine, 2);
  for (const ClusterConfig& c : *clusters) {
    EXPECT_DOUBLE_EQ(c.network.bandwidth_gbps, 10.0);
  }
}

TEST(ParseClusterList, CrossProductOfShapesAndBandwidths) {
  Args args;
  args.flags["cluster"] = "2x2,4x4";
  args.flags["gbps"] = "10,25,40";
  const std::optional<std::vector<ClusterConfig>> clusters = ParseClusterList(args);
  ASSERT_TRUE(clusters.has_value());
  ASSERT_EQ(clusters->size(), 6u);
  EXPECT_EQ((*clusters)[0].machines, 2);
  EXPECT_DOUBLE_EQ((*clusters)[0].network.bandwidth_gbps, 10.0);
  EXPECT_DOUBLE_EQ((*clusters)[2].network.bandwidth_gbps, 40.0);
  EXPECT_EQ((*clusters)[3].machines, 4);
  EXPECT_EQ((*clusters)[3].gpus_per_machine, 4);
}

TEST(ParseEngineKind, DefaultsToEvent) {
  EXPECT_EQ(ParseEngineKind(Args{}), EngineKind::kEvent);
}

TEST(ParseEngineKind, AcceptsBothEngines) {
  Args args;
  args.flags["engine"] = "event";
  EXPECT_EQ(ParseEngineKind(args), EngineKind::kEvent);
  args.flags["engine"] = "reference";
  EXPECT_EQ(ParseEngineKind(args), EngineKind::kReference);
}

TEST(ParseEngineKind, RejectsUnknownValues) {
  for (const char* bad : {"Event", "ref", "plan", "", " event"}) {
    Args args;
    args.flags["engine"] = bad;
    EXPECT_FALSE(ParseEngineKind(args).has_value()) << "--engine '" << bad << "'";
  }
}

TEST(ParseClusterList, RejectsAnyBadEntry) {
  for (const char* bad : {"2x2,4xa", "2x2,", ",2x2", "0x1"}) {
    Args args;
    args.flags["cluster"] = bad;
    EXPECT_FALSE(ParseClusterList(args).has_value()) << "--cluster " << bad;
  }
  Args args;
  args.flags["cluster"] = "2x2";
  args.flags["gbps"] = "10,zoom";
  EXPECT_FALSE(ParseClusterList(args).has_value());
}

TEST(ParsePipelineFlags, DisabledWhenStagesAbsent) {
  const std::optional<PipelineFlags> flags = ParsePipelineFlags(Args{});
  ASSERT_TRUE(flags.has_value());
  EXPECT_FALSE(flags->enabled);
}

TEST(ParsePipelineFlags, ParsesStagesMicrobatchesAndSchedule) {
  Args args;
  args.flags["pipeline-stages"] = "2,4,8";
  args.flags["microbatches"] = "16";
  args.flags["schedule"] = "gpipe";
  const std::optional<PipelineFlags> flags = ParsePipelineFlags(args);
  ASSERT_TRUE(flags.has_value());
  EXPECT_TRUE(flags->enabled);
  EXPECT_EQ(flags->stages, (std::vector<int>{2, 4, 8}));
  EXPECT_EQ(flags->microbatches, 16);
  ASSERT_EQ(flags->schedules.size(), 1u);
  EXPECT_EQ(flags->schedules.front(), PipelineScheduleKind::kGPipe);
}

TEST(ParsePipelineFlags, DefaultsToFourMicrobatchesAndBothSchedules) {
  Args args;
  args.flags["pipeline-stages"] = "2";
  const std::optional<PipelineFlags> flags = ParsePipelineFlags(args);
  ASSERT_TRUE(flags.has_value());
  EXPECT_EQ(flags->microbatches, 4);
  EXPECT_TRUE(flags->schedules.empty());  // empty = both kinds
}

TEST(ParsePipelineFlags, RejectsMalformedValues) {
  for (const char* bad : {"0", "-2", "2,", "2,x", "fast"}) {
    Args args;
    args.flags["pipeline-stages"] = bad;
    EXPECT_FALSE(ParsePipelineFlags(args).has_value()) << "--pipeline-stages " << bad;
  }
  Args bad_mb;
  bad_mb.flags["pipeline-stages"] = "2";
  bad_mb.flags["microbatches"] = "0";
  EXPECT_FALSE(ParsePipelineFlags(bad_mb).has_value());
  Args bad_schedule;
  bad_schedule.flags["pipeline-stages"] = "2";
  bad_schedule.flags["schedule"] = "warp";
  EXPECT_FALSE(ParsePipelineFlags(bad_schedule).has_value());
}

TEST(ParsePipelineFlags, ScheduleWithoutStagesIsAnError) {
  Args args;
  args.flags["schedule"] = "1f1b";
  EXPECT_FALSE(ParsePipelineFlags(args).has_value());
  Args mb;
  mb.flags["microbatches"] = "4";
  EXPECT_FALSE(ParsePipelineFlags(mb).has_value());
}


TEST(KnownCommands, MatchUsageOrder) {
  const std::vector<std::string> expected = {"models", "collect", "import", "report", "predict",
                                             "lint",   "sweep",   "serve",  "version"};
  EXPECT_EQ(KnownCommands(), expected);
}

TEST(UnknownCommandMessage, NamesTheAttemptAndTheCatalog) {
  const std::string message = UnknownCommandMessage("frobnicate");
  EXPECT_NE(message.find("unknown command 'frobnicate'"), std::string::npos);
  for (const std::string& command : KnownCommands()) {
    EXPECT_NE(message.find(command), std::string::npos) << command;
  }
}

TEST(ParseArgs, BooleanFlagsTakeNoValue) {
  // --json is boolean only for `version`; for every other command it names
  // an output file and must consume a value.
  const Args version = ParseVec({"daydream", "version", "--json"});
  EXPECT_TRUE(version.ok());
  EXPECT_TRUE(version.Has("json"));
  const Args predict = ParseVec({"daydream", "predict", "--json"});
  EXPECT_FALSE(predict.ok());
  EXPECT_EQ(predict.error, "flag --json requires a value");
  const Args lint = ParseVec({"daydream", "lint", "--strict", "--trace", "p.ddtrace"});
  EXPECT_TRUE(lint.ok());
  EXPECT_TRUE(lint.Has("strict"));
  EXPECT_EQ(lint.Get("trace"), "p.ddtrace");
}

TEST(ParseWhatIfRequest, BuildsTheSessionRequest) {
  Args args;
  args.command = "predict";
  args.flags["what-if"] = "distributed";
  args.flags["cluster"] = "2x4";
  args.flags["gbps"] = "25";
  args.flags["engine"] = "reference";
  args.flags["validate"] = "1";
  WhatIfRequest request;
  std::string error;
  ASSERT_TRUE(ParseWhatIfRequest(args, &request, &error)) << error;
  EXPECT_EQ(request.what_if, "distributed");
  EXPECT_EQ(request.cluster.machines, 2);
  EXPECT_EQ(request.cluster.gpus_per_machine, 4);
  EXPECT_DOUBLE_EQ(request.cluster.network.bandwidth_gbps, 25.0);
  EXPECT_EQ(request.engine, EngineKind::kReference);
  EXPECT_TRUE(request.validate);
}

TEST(ParseWhatIfRequest, SimJobsDefaultsToSerialAndRejectsGarbage) {
  Args args;
  args.command = "predict";
  args.flags["what-if"] = "amp";
  WhatIfRequest request;
  std::string error;
  ASSERT_TRUE(ParseWhatIfRequest(args, &request, &error)) << error;
  EXPECT_EQ(request.sim_jobs, 1);

  args.flags["sim-jobs"] = "4";
  ASSERT_TRUE(ParseWhatIfRequest(args, &request, &error)) << error;
  EXPECT_EQ(request.sim_jobs, 4);

  for (const char* bad : {"0", "-2", "fast"}) {
    args.flags["sim-jobs"] = bad;
    EXPECT_FALSE(ParseWhatIfRequest(args, &request, &error)) << bad;
    EXPECT_NE(error.find("--sim-jobs"), std::string::npos);
  }
}

TEST(ParseWhatIfRequest, UnknownNamesParseResolutionIsTheSessionsJob) {
  Args args;
  args.command = "predict";
  args.flags["what-if"] = "overclock";
  WhatIfRequest request;
  std::string error;
  EXPECT_TRUE(ParseWhatIfRequest(args, &request, &error)) << error;
  EXPECT_EQ(request.what_if, "overclock");
}

TEST(ParseWhatIfRequest, PipelineNeedsASingleStageAndSchedule) {
  Args args;
  args.command = "predict";
  args.flags["what-if"] = "pipeline";
  WhatIfRequest request;
  std::string error;
  EXPECT_FALSE(ParseWhatIfRequest(args, &request, &error));
  EXPECT_NE(error.find("--pipeline-stages"), std::string::npos);

  args.flags["pipeline-stages"] = "2,4";  // a sweep list, not a single value
  EXPECT_FALSE(ParseWhatIfRequest(args, &request, &error));
  EXPECT_NE(error.find("single"), std::string::npos);

  args.flags["pipeline-stages"] = "4";
  args.flags["microbatches"] = "8";
  args.flags["schedule"] = "1f1b";
  ASSERT_TRUE(ParseWhatIfRequest(args, &request, &error)) << error;
  EXPECT_EQ(request.what_if, "pipeline");
  EXPECT_EQ(request.pipeline.num_stages, 4);
  EXPECT_EQ(request.pipeline.num_microbatches, 8);
  EXPECT_EQ(request.pipeline.schedule, PipelineScheduleKind::k1F1B);
}

TEST(ParseWhatIfRequest, RejectsMalformedClusterFlags) {
  Args args;
  args.command = "predict";
  args.flags["what-if"] = "distributed";
  args.flags["cluster"] = "banana";
  WhatIfRequest request;
  std::string error;
  EXPECT_FALSE(ParseWhatIfRequest(args, &request, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace daydream

#include <gtest/gtest.h>

#include "src/models/model_zoo.h"

namespace daydream {
namespace {

// ---- structural checks against the published architectures ----

TEST(ResNet50, LayerCounts) {
  const ModelGraph g = BuildResNet50(32);
  // 1 stem + 16 bottlenecks x 3 + 4 downsample projections = 53 convolutions.
  EXPECT_EQ(g.CountKind(LayerKind::kConv2d), 53);
  EXPECT_EQ(g.CountKind(LayerKind::kBatchNorm), 53);
  EXPECT_EQ(g.CountKind(LayerKind::kLinear), 1);
  EXPECT_EQ(g.CountKind(LayerKind::kAdd), 16);  // one residual add per bottleneck
}

TEST(ResNet50, ParameterCount) {
  const ModelGraph g = BuildResNet50(32);
  // torchvision resnet50: 25.56M parameters.
  EXPECT_NEAR(static_cast<double>(g.TotalParamElems()), 25.56e6, 0.4e6);
}

TEST(Vgg19, LayerCounts) {
  const ModelGraph g = BuildVgg19(32);
  EXPECT_EQ(g.CountKind(LayerKind::kConv2d), 16);
  EXPECT_EQ(g.CountKind(LayerKind::kLinear), 3);
  EXPECT_EQ(g.CountKind(LayerKind::kMaxPool), 5);
}

TEST(Vgg19, ParameterCount) {
  const ModelGraph g = BuildVgg19(32);
  // torchvision vgg19: 143.67M parameters.
  EXPECT_NEAR(static_cast<double>(g.TotalParamElems()), 143.67e6, 1.5e6);
}

TEST(Vgg19, FcLayersDominateParameters) {
  const ModelGraph g = BuildVgg19(32);
  int64_t fc_params = 0;
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kLinear) {
      fc_params += l.param_elems();
    }
  }
  // The communication skew P3 exploits (Figure 10b): FCs hold ~86% of params.
  EXPECT_GT(static_cast<double>(fc_params) / g.TotalParamElems(), 0.8);
}

TEST(DenseNet121, LayerCounts) {
  const ModelGraph g = BuildDenseNet121(32);
  // 1 stem + 58 dense layers x 2 + 3 transitions = 120 convolutions (+1 fc).
  EXPECT_EQ(g.CountKind(LayerKind::kConv2d), 120);
  EXPECT_EQ(g.CountKind(LayerKind::kLinear), 1);
  // BN: 1 stem + 58x2 + 3 transitions + 1 final = 121... the stem + final
  // bookend the 116 block BNs and 3 transition BNs.
  EXPECT_EQ(g.CountKind(LayerKind::kBatchNorm), 121);
  EXPECT_EQ(g.CountKind(LayerKind::kConcat), 58);
}

TEST(DenseNet121, ParameterCount) {
  const ModelGraph g = BuildDenseNet121(32);
  // torchvision densenet121: 7.98M parameters.
  EXPECT_NEAR(static_cast<double>(g.TotalParamElems()), 7.98e6, 0.3e6);
}

TEST(DenseNet121, EveryPostBnReluExists) {
  // Reconstructing Batchnorm removes exactly the ReLUs that follow a BN; in
  // DenseNet every ReLU follows a BN.
  const ModelGraph g = BuildDenseNet121(32);
  int relu_after_bn = 0;
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kReLU) {
      ASSERT_FALSE(l.inputs.empty());
      if (g.layer(l.inputs[0]).kind == LayerKind::kBatchNorm) {
        ++relu_after_bn;
      }
    }
  }
  EXPECT_EQ(relu_after_bn, g.CountKind(LayerKind::kReLU));
}

TEST(Gnmt, Structure) {
  const ModelGraph g = BuildGnmt(128);
  EXPECT_EQ(g.CountKind(LayerKind::kLstm), 8);       // 4 encoder + 4 decoder
  EXPECT_EQ(g.CountKind(LayerKind::kEmbedding), 2);  // encoder + decoder vocab
  EXPECT_EQ(g.CountKind(LayerKind::kAttention), 1);
  int bidir = 0;
  for (const Layer& l : g.layers()) {
    if (l.kind == LayerKind::kLstm && l.bidirectional) {
      ++bidir;
    }
  }
  EXPECT_EQ(bidir, 1);  // only the first encoder layer
}

TEST(Gnmt, ParameterCount) {
  const ModelGraph g = BuildGnmt(128);
  // GNMT-v2 with 32k vocab and hidden 1024: ~130-180M parameters.
  EXPECT_GT(g.TotalParamElems(), 120e6);
  EXPECT_LT(g.TotalParamElems(), 200e6);
}

TEST(BertBase, Structure) {
  const ModelGraph g = BuildBertBase(8);
  EXPECT_EQ(g.CountKind(LayerKind::kAttention), 12);
  EXPECT_EQ(g.CountKind(LayerKind::kLayerNorm), 12 * 2 + 1);
  // 4 attention linears + 2 FFN linears per block, + qa head.
  EXPECT_EQ(g.CountKind(LayerKind::kLinear), 12 * 6 + 1);
}

TEST(BertBase, ParameterCount) {
  const ModelGraph g = BuildBertBase(8);
  // BERT base: ~110M parameters.
  EXPECT_NEAR(static_cast<double>(g.TotalParamElems()), 110e6, 6e6);
}

TEST(BertLarge, ParameterCount) {
  const ModelGraph g = BuildBertLarge(2);
  // BERT large: ~335M parameters.
  EXPECT_NEAR(static_cast<double>(g.TotalParamElems()), 335e6, 12e6);
}

TEST(BertLarge, ParameterTensorCount) {
  const ModelGraph g = BuildBertLarge(2);
  // 16 tensors per block x 24 blocks + embeddings/layernorm/qa head: the
  // tensor count drives the ~5.2k unfused Adam kernels of §6.3.
  EXPECT_GE(g.TotalParamTensors(), 380);
  EXPECT_LE(g.TotalParamTensors(), 400);
}

// ---- generic properties over all models ----

class AllModelsTest : public ::testing::TestWithParam<ModelId> {};

INSTANTIATE_TEST_SUITE_P(ModelZoo, AllModelsTest, ::testing::ValuesIn(AllModels()),
                         [](const ::testing::TestParamInfo<ModelId>& info) {
                           std::string name = ModelName(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST_P(AllModelsTest, GraphIsValid) {
  const ModelGraph g = BuildModel(GetParam());
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST_P(AllModelsTest, EveryLayerButFirstHasInputs) {
  const ModelGraph g = BuildModel(GetParam());
  int roots = 0;
  for (const Layer& l : g.layers()) {
    if (l.inputs.empty()) {
      ++roots;
    }
  }
  // Image models: one input root; text models: up to two embedding roots.
  EXPECT_GE(roots, 1);
  EXPECT_LE(roots, 2);
}

TEST_P(AllModelsTest, PositiveComputeAndOutput) {
  const ModelGraph g = BuildModel(GetParam());
  for (const Layer& l : g.layers()) {
    EXPECT_GT(l.output_elems, 0) << l.name;
    EXPECT_GE(l.fwd_flops, 0) << l.name;
    EXPECT_GT(l.fwd_bytes, 0) << l.name;
  }
  EXPECT_GT(g.TotalFwdFlops(), 0);
}

TEST_P(AllModelsTest, ParamLayersBackwardOrderIsReversed) {
  const ModelGraph g = BuildModel(GetParam());
  const std::vector<int> order = g.ParamLayersInBackwardOrder();
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i], order[i - 1]);
  }
  size_t with_params = 0;
  for (const Layer& l : g.layers()) {
    with_params += l.has_params() ? 1 : 0;
  }
  EXPECT_EQ(order.size(), with_params);
}

TEST_P(AllModelsTest, BatchScalesFlops) {
  const ModelId id = GetParam();
  const int64_t b = DefaultBatch(id);
  const ModelGraph small = BuildModel(id, b);
  const ModelGraph big = BuildModel(id, 2 * b);
  EXPECT_GT(big.TotalFwdFlops(), small.TotalFwdFlops());
  // Parameters do not depend on batch size.
  EXPECT_EQ(big.TotalParamElems(), small.TotalParamElems());
}

TEST_P(AllModelsTest, DefaultBatchPositive) { EXPECT_GT(DefaultBatch(GetParam()), 0); }

TEST(ModelGraph, AddLayerWiresInputs) {
  ModelGraph g("test", 1);
  const int a = g.AddLayer(MakeReLU("a", 16), {});
  const int b = g.AddLayer(MakeReLU("b", 16), {a});
  EXPECT_EQ(g.layer(b).inputs, std::vector<int>{a});
  EXPECT_EQ(g.num_layers(), 2);
}

TEST(LayerFactories, ConvShapeMath) {
  const Layer conv = MakeConv2d("c", 2, 3, 224, 224, 64, 7, 2, 3);
  EXPECT_EQ(conv.output_elems, 2 * 64 * 112 * 112);
  EXPECT_EQ(conv.param_tensor_elems.size(), 1u);  // no bias
  EXPECT_EQ(conv.param_elems(), 64 * 3 * 7 * 7);
  EXPECT_EQ(conv.fwd_flops, 2 * conv.output_elems * 3 * 49);
}

TEST(LayerFactories, LinearShapeMath) {
  const Layer fc = MakeLinear("fc", 8, 512, 1000);
  EXPECT_EQ(fc.output_elems, 8 * 1000);
  EXPECT_EQ(fc.param_elems(), 512 * 1000 + 1000);
  EXPECT_EQ(fc.aux_in, 512);
  EXPECT_EQ(fc.aux_out, 1000);
}

TEST(LayerFactories, LstmParamLayout) {
  const Layer lstm = MakeLstm("l", 4, 10, 512, 1024, /*bidirectional=*/true);
  // 4 tensors per direction (w_ih, w_hh, b_ih, b_hh).
  EXPECT_EQ(lstm.param_tensor_elems.size(), 8u);
  EXPECT_TRUE(lstm.bidirectional);
  EXPECT_EQ(lstm.seq_len, 10);
}

}  // namespace
}  // namespace daydream

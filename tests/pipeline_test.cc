// Tests for the pipeline-parallel subsystem (src/parallel/pipeline.h and the
// WhatIfPipeline transform): partitioner invariants (every layer in exactly
// one stage, optimal-bottleneck balance bound), schedule-shape properties
// (1F1B keeps at most S micro-batches in flight; GPipe's bubble matches the
// closed form), emitted-graph validity, and the measured-cost plumbing of the
// what-if transform.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "src/comm/collectives.h"
#include "src/core/graph_builder.h"
#include "src/core/optimizations/pipeline_transform.h"
#include "src/core/simulator.h"
#include "src/core/transform.h"
#include "src/models/model_zoo.h"
#include "src/parallel/pipeline.h"
#include "src/runtime/ground_truth.h"

namespace daydream {
namespace {

std::vector<PipelineLayerCost> UniformCosts(int layers, TimeNs fwd, TimeNs bwd) {
  std::vector<PipelineLayerCost> costs(static_cast<size_t>(layers));
  for (auto& c : costs) {
    c.fwd = fwd;
    c.bwd = bwd;
    c.param_bytes = 1000;
    c.activation_bytes = 0;
  }
  return costs;
}

std::vector<PipelineLayerCost> RandomCosts(int layers, int seed) {
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::vector<PipelineLayerCost> costs(static_cast<size_t>(layers));
  for (auto& c : costs) {
    c.fwd = static_cast<TimeNs>(rng() % 5000) * Us(1);
    c.bwd = static_cast<TimeNs>(rng() % 9000) * Us(1);
    c.param_bytes = static_cast<int64_t>(rng() % 100) * 4096;
    c.activation_bytes = static_cast<int64_t>(rng() % 64) * 4096;
  }
  return costs;
}

// Zero-overhead schedule options: no comm payload, no latency, no launches —
// the setting in which the closed-form bubble model is exact.
PipelineScheduleOptions BareOptions(int microbatches, PipelineScheduleKind kind) {
  PipelineScheduleOptions options;
  options.num_microbatches = microbatches;
  options.schedule = kind;
  options.network.inter_node_latency = 0;
  options.launch_overhead = 0;
  return options;
}

// ---- Partitioner ----

TEST(StagePartitionTest, EveryLayerInExactlyOneStage) {
  for (const int num_stages : {1, 2, 3, 5, 8}) {
    const std::vector<PipelineLayerCost> costs = RandomCosts(23, /*seed=*/num_stages);
    const StagePartition partition = PartitionBalanced(costs, num_stages);
    std::string error;
    ASSERT_TRUE(partition.Validate(&error)) << error;
    EXPECT_EQ(partition.num_stages(), num_stages);

    std::vector<int> seen(23, 0);
    for (int s = 0; s < partition.num_stages(); ++s) {
      EXPECT_LT(partition.layer_begin(s), partition.layer_end(s)) << "empty stage " << s;
      for (int l = partition.layer_begin(s); l < partition.layer_end(s); ++l) {
        ++seen[static_cast<size_t>(l)];
        EXPECT_EQ(partition.StageOf(l), s);
      }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](int n) { return n == 1; }));
  }
}

TEST(StagePartitionTest, BalanceBound) {
  // The optimal contiguous partition's bottleneck is at most the fluid lower
  // bound (total / S) plus one maximal layer — the classical greedy bound,
  // which the exact DP can only improve on.
  for (int seed = 1; seed <= 10; ++seed) {
    const std::vector<PipelineLayerCost> costs = RandomCosts(31, seed);
    TimeNs total = 0;
    TimeNs max_layer = 0;
    for (const auto& c : costs) {
      total += c.compute();
      max_layer = std::max(max_layer, c.compute());
    }
    for (const int num_stages : {2, 4, 7}) {
      const StagePartition partition = PartitionBalanced(costs, num_stages);
      TimeNs bottleneck = 0;
      for (int s = 0; s < num_stages; ++s) {
        bottleneck = std::max(bottleneck, partition.StageCost(costs, s));
      }
      EXPECT_LE(bottleneck, total / num_stages + max_layer)
          << "seed " << seed << " stages " << num_stages;
      // And never below the fluid bound.
      EXPECT_GE(bottleneck, (total + num_stages - 1) / num_stages);
    }
  }
}

TEST(StagePartitionTest, ExactlyOptimalOnSmallInstances) {
  // Brute-force all contiguous 3-partitions of 9 layers and compare.
  for (int seed = 1; seed <= 5; ++seed) {
    const std::vector<PipelineLayerCost> costs = RandomCosts(9, seed + 100);
    auto range_cost = [&](int begin, int end) {
      TimeNs t = 0;
      for (int l = begin; l < end; ++l) {
        t += costs[static_cast<size_t>(l)].compute();
      }
      return t;
    };
    TimeNs best = std::numeric_limits<TimeNs>::max();
    for (int a = 1; a < 8; ++a) {
      for (int b = a + 1; b < 9; ++b) {
        best = std::min(best, std::max({range_cost(0, a), range_cost(a, b), range_cost(b, 9)}));
      }
    }
    const StagePartition partition = PartitionBalanced(costs, 3);
    const TimeNs dp = std::max({partition.StageCost(costs, 0), partition.StageCost(costs, 1),
                                partition.StageCost(costs, 2)});
    EXPECT_EQ(dp, best) << "seed " << seed;
  }
}

TEST(StagePartitionTest, ExplicitBoundaries) {
  const StagePartition partition = PartitionAtBoundaries(10, {3, 7});
  EXPECT_EQ(partition.num_stages(), 3);
  EXPECT_EQ(partition.layer_begin(0), 0);
  EXPECT_EQ(partition.layer_end(0), 3);
  EXPECT_EQ(partition.layer_begin(1), 3);
  EXPECT_EQ(partition.layer_end(1), 7);
  EXPECT_EQ(partition.layer_begin(2), 7);
  EXPECT_EQ(partition.layer_end(2), 10);
  EXPECT_EQ(partition.StageOf(0), 0);
  EXPECT_EQ(partition.StageOf(3), 1);
  EXPECT_EQ(partition.StageOf(9), 2);

  const StagePartition single = PartitionAtBoundaries(4, {});
  EXPECT_EQ(single.num_stages(), 1);
  EXPECT_EQ(single.layer_end(0), 4);
}

TEST(StagePartitionTest, ValidateRejectsMalformedPartitions) {
  StagePartition p;
  p.num_layers = 5;
  EXPECT_FALSE(p.Validate());  // no stages
  p.first_layer = {1};
  EXPECT_FALSE(p.Validate());  // must start at layer 0
  p.first_layer = {0, 3, 3};
  EXPECT_FALSE(p.Validate());  // non-ascending boundary (stage 2 empty)
  p.first_layer = {0, 7};
  EXPECT_FALSE(p.Validate());  // boundary past the last layer
  p.first_layer = {0, 3};
  std::string error;
  EXPECT_TRUE(p.Validate(&error)) << error;
}

TEST(StagePartitionTest, EstimatedModelCostsDrivePartitioning) {
  // The trace-free mode: per-layer costs priced by the roofline kernel cost
  // model straight off the model graph — what a user partitions with before
  // any profile exists.
  const ModelGraph model = BuildModel(ModelId::kVgg19);
  const CostModel cost_model(GpuSpec::Rtx2080Ti());
  const std::vector<PipelineLayerCost> costs = EstimateLayerCosts(model, cost_model);
  ASSERT_EQ(static_cast<int>(costs.size()), model.num_layers());
  for (size_t l = 0; l < costs.size(); ++l) {
    EXPECT_GT(costs[l].fwd, 0) << model.layer(static_cast<int>(l)).name;
    EXPECT_GE(costs[l].bwd, 0);
    EXPECT_EQ(costs[l].activation_bytes, model.layer(static_cast<int>(l)).output_elems * 4);
    EXPECT_EQ(costs[l].param_bytes, model.layer(static_cast<int>(l)).param_bytes_fp32());
  }

  const StagePartition partition = PartitionBalanced(costs, 4);
  std::string error;
  ASSERT_TRUE(partition.Validate(&error)) << error;
  PipelineScheduleOptions options;
  options.num_microbatches = 4;
  const PipelineBuild build = BuildPipelineGraph(costs, partition, options);
  EXPECT_GT(Simulator().Run(build.graph).makespan, 0);
}

// ---- Schedule shapes ----

TEST(PipelineScheduleTest, GraphIsValidAcrossShapes) {
  for (const auto kind : {PipelineScheduleKind::kGPipe, PipelineScheduleKind::k1F1B}) {
    for (const int stages : {1, 2, 3, 5}) {
      for (const int microbatches : {1, 2, 4, 9}) {
        const std::vector<PipelineLayerCost> costs = RandomCosts(11, stages * 100 + microbatches);
        const StagePartition partition = PartitionBalanced(costs, stages);
        PipelineScheduleOptions options;
        options.num_microbatches = microbatches;
        options.schedule = kind;
        options.weight_update_total = Us(500);
        const PipelineBuild build = BuildPipelineGraph(costs, partition, options);
        std::string error;
        EXPECT_TRUE(build.graph.Validate(&error))
            << ToString(kind) << " S=" << stages << " M=" << microbatches << ": " << error;
        // Lane inventory: S GPU, S CPU, 2(S-1) comm channels.
        EXPECT_EQ(build.graph.num_lanes(), 2 * stages + 2 * (stages - 1));
        // 2M compute + 1 weight update per stage, same count of launches, and
        // 2M transfer tasks per link.
        EXPECT_EQ(build.graph.num_alive(),
                  2 * stages * (2 * microbatches + 1) + (stages - 1) * 2 * microbatches);
      }
    }
  }
}

TEST(PipelineScheduleTest, UniformMakespanMatchesClosedForm) {
  const TimeNs f = Us(200);
  const TimeNs b = Us(350);
  for (const auto kind : {PipelineScheduleKind::kGPipe, PipelineScheduleKind::k1F1B}) {
    for (const int stages : {1, 2, 4}) {
      for (const int microbatches : {1, 4, 8}) {
        // One layer per stage, full-batch cost M * per-micro-batch cost.
        const std::vector<PipelineLayerCost> costs =
            UniformCosts(stages, f * microbatches, b * microbatches);
        const StagePartition partition = PartitionBalanced(costs, stages);
        const PipelineBuild build =
            BuildPipelineGraph(costs, partition, BareOptions(microbatches, kind));
        const SimResult result = Simulator().Run(build.graph);
        EXPECT_EQ(result.makespan, UniformPipelineMakespan(stages, microbatches, f, b))
            << ToString(kind) << " S=" << stages << " M=" << microbatches;
      }
    }
  }
}

TEST(PipelineScheduleTest, GPipeBubbleMatchesClosedForm) {
  // Idle time per stage = makespan - M*(f+b) = (S-1)*(f+b): the bubble is
  // PipelineBubbleSlots(S) slots of the average compute time.
  const TimeNs f = Us(100);
  const TimeNs b = Us(100);
  const int microbatches = 6;
  for (const int stages : {2, 3, 5}) {
    const std::vector<PipelineLayerCost> costs =
        UniformCosts(stages, f * microbatches, b * microbatches);
    const PipelineBuild build =
        BuildPipelineGraph(costs, PartitionBalanced(costs, stages),
                           BareOptions(microbatches, PipelineScheduleKind::kGPipe));
    const SimResult result = Simulator().Run(build.graph);
    const TimeNs ideal = static_cast<TimeNs>(microbatches) * (f + b);
    EXPECT_EQ(result.makespan - ideal, PipelineBubbleSlots(stages) / 2 * (f + b));
  }
}

// Micro-batches in flight at stage s at any instant (forward started, own
// backward not yet finished), from the simulated timeline.
int MaxInFlight(const PipelineBuild& build, const SimResult& result, int stage) {
  const auto& fwd = build.forward[static_cast<size_t>(stage)];
  const auto& bwd = build.backward[static_cast<size_t>(stage)];
  int max_in_flight = 0;
  for (size_t m = 0; m < fwd.size(); ++m) {
    // Count intervals overlapping the instant F(stage, m) completes (a
    // maximal-overlap witness always occurs at an interval start; using the
    // forward's *end* avoids the boundary case of a backward finishing
    // exactly when the next forward starts).
    const TimeNs at = result.end[static_cast<size_t>(fwd[m])];
    int in_flight = 0;
    for (size_t k = 0; k < fwd.size(); ++k) {
      if (result.start[static_cast<size_t>(fwd[k])] < at &&
          result.end[static_cast<size_t>(bwd[k])] >= at) {
        ++in_flight;
      }
    }
    max_in_flight = std::max(max_in_flight, in_flight);
  }
  return max_in_flight;
}

TEST(PipelineScheduleTest, OneFOneBBoundsInFlightMicrobatches) {
  const int stages = 4;
  const int microbatches = 12;
  const std::vector<PipelineLayerCost> costs =
      UniformCosts(stages, Us(100) * microbatches, Us(150) * microbatches);
  const StagePartition partition = PartitionBalanced(costs, stages);

  const PipelineBuild fb = BuildPipelineGraph(
      costs, partition, BareOptions(microbatches, PipelineScheduleKind::k1F1B));
  const SimResult fb_result = Simulator().Run(fb.graph);
  for (int s = 0; s < stages; ++s) {
    // 1F1B steady state: stage s holds at most S - s un-retired micro-batches
    // (so never more than S anywhere).
    EXPECT_LE(MaxInFlight(fb, fb_result, s), stages - s) << "stage " << s;
  }

  // Contrast: under GPipe, stage 0 accumulates every micro-batch before the
  // first backward retires anything.
  const PipelineBuild gp = BuildPipelineGraph(
      costs, partition, BareOptions(microbatches, PipelineScheduleKind::kGPipe));
  const SimResult gp_result = Simulator().Run(gp.graph);
  EXPECT_EQ(MaxInFlight(gp, gp_result, 0), microbatches);
}

TEST(PipelineScheduleTest, TransfersCarryMicrobatchPayload) {
  const int stages = 3;
  const int microbatches = 4;
  std::vector<PipelineLayerCost> costs = UniformCosts(6, Us(400), Us(400));
  for (size_t l = 0; l < costs.size(); ++l) {
    costs[l].activation_bytes = 8 * kMiB;
  }
  PipelineScheduleOptions options;
  options.num_microbatches = microbatches;
  options.network.bandwidth_gbps = 10.0;
  const PipelineBuild build =
      BuildPipelineGraph(costs, PartitionBalanced(costs, stages), options);

  const TimeNs wire = PsTransferTime(8 * kMiB / microbatches, options.network);
  for (int link = 0; link + 1 < stages; ++link) {
    const size_t li = static_cast<size_t>(link);
    for (int m = 0; m < microbatches; ++m) {
      const Task& act = build.graph.task(build.act_send[li][static_cast<size_t>(m)]);
      EXPECT_EQ(act.bytes, 8 * kMiB / microbatches);
      EXPECT_EQ(act.duration, wire);
      EXPECT_EQ(act.comm, CommKind::kP2p);
      EXPECT_TRUE(act.thread == ExecThread::Comm(link));
      const Task& grad = build.graph.task(build.grad_send[li][static_cast<size_t>(m)]);
      EXPECT_TRUE(grad.thread == ExecThread::Comm(kPipelineGradChannelBase + link));
      EXPECT_EQ(grad.duration, wire);
    }
  }

  // A slower link strictly lengthens the pipeline.
  PipelineScheduleOptions slow = options;
  slow.network.bandwidth_gbps = 1.0;
  const PipelineBuild slow_build =
      BuildPipelineGraph(costs, PartitionBalanced(costs, stages), slow);
  EXPECT_GT(Simulator().Run(slow_build.graph).makespan,
            Simulator().Run(build.graph).makespan);
}

TEST(PipelineScheduleTest, WeightUpdateSplitsByParamBytes) {
  std::vector<PipelineLayerCost> costs = UniformCosts(4, Us(100), Us(100));
  costs[0].param_bytes = 3000;
  costs[1].param_bytes = 1000;
  costs[2].param_bytes = 0;
  costs[3].param_bytes = 4000;
  PipelineScheduleOptions options = BareOptions(2, PipelineScheduleKind::k1F1B);
  options.weight_update_total = Us(800);
  const PipelineBuild build =
      BuildPipelineGraph(costs, PartitionAtBoundaries(4, {2}), options);
  // Stage 0 owns 4000 of 8000 bytes, stage 1 the other 4000.
  const Task& wu0 = build.graph.task(build.weight_update[0]);
  const Task& wu1 = build.graph.task(build.weight_update[1]);
  EXPECT_EQ(wu0.duration, Us(400));
  EXPECT_EQ(wu1.duration, Us(400));
  EXPECT_EQ(wu0.phase, Phase::kWeightUpdate);
  // The update runs after the stage's last backward.
  const SimResult result = Simulator().Run(build.graph);
  EXPECT_GE(result.start[static_cast<size_t>(build.weight_update[0])],
            result.end[static_cast<size_t>(build.backward[0].back())]);
}

// ---- The what-if transform over a real profile ----

class PipelineWhatIfTest : public ::testing::Test {
 protected:
  static const Trace& trace() {
    static const Trace* trace =
        new Trace(CollectBaselineTrace(DefaultRunConfig(ModelId::kTinyMlp)));
    return *trace;
  }
};

TEST_F(PipelineWhatIfTest, MeasuredCostsMatchProfiledGpuTime) {
  const DependencyGraph graph = BuildDependencyGraph(trace());
  const ModelGraph model = BuildModel(ModelId::kTinyMlp);
  const std::vector<PipelineLayerCost> costs = MeasureLayerCosts(graph, model);
  ASSERT_EQ(static_cast<int>(costs.size()), model.num_layers());

  // Attributed + spread unattributed time conserves the profiled totals
  // (within 1 ns per layer of integer rounding).
  auto phase_total = [&](Phase phase) {
    TimeNs total = 0;
    graph.ForEachSelected(All(IsOnGpu(), PhaseIs(phase)),
                          [&](const Task& t) { total += t.duration; });
    return total;
  };
  TimeNs fwd = 0;
  TimeNs bwd = 0;
  for (const auto& c : costs) {
    fwd += c.fwd;
    bwd += c.bwd;
  }
  EXPECT_NEAR(static_cast<double>(fwd), static_cast<double>(phase_total(Phase::kForward)),
              static_cast<double>(costs.size()));
  EXPECT_NEAR(static_cast<double>(bwd), static_cast<double>(phase_total(Phase::kBackward)),
              static_cast<double>(costs.size()));
  // Sizes come from the model graph.
  EXPECT_EQ(costs[0].param_bytes, model.layer(0).param_bytes_fp32());
  EXPECT_EQ(costs[0].activation_bytes, model.layer(0).output_elems * 4);
}

TEST_F(PipelineWhatIfTest, TransformReplacesGraphWithValidPipeline) {
  const ModelGraph model = BuildModel(ModelId::kTinyMlp);
  for (const auto kind : {PipelineScheduleKind::kGPipe, PipelineScheduleKind::k1F1B}) {
    DependencyGraph graph = BuildDependencyGraph(trace());
    PipelineWhatIf options;
    options.num_stages = 3;
    options.num_microbatches = 4;
    options.schedule = kind;
    WhatIfPipeline(&graph, model, options);

    std::string error;
    EXPECT_TRUE(graph.Validate(&error)) << error;
    // 3 stages: 2*(2*4+1) tasks per stage + 2 links * 8 transfers.
    EXPECT_EQ(graph.num_alive(), 3 * 2 * 9 + 2 * 8);
    const SimResult result = Simulator().Run(graph);
    EXPECT_GT(result.makespan, 0);
  }
}

TEST_F(PipelineWhatIfTest, ExplicitBoundariesAndStageClamping) {
  const ModelGraph model = BuildModel(ModelId::kTinyMlp);
  DependencyGraph graph = BuildDependencyGraph(trace());
  PipelineWhatIf options;
  options.boundaries = {2, 5};  // 3 explicit stages
  const PipelineBuild build = BuildPipelineWhatIf(graph, model, options);
  EXPECT_EQ(build.partition.num_stages(), 3);
  EXPECT_EQ(build.partition.layer_begin(1), 2);
  EXPECT_EQ(build.partition.layer_begin(2), 5);

  // More stages than layers clamps to one stage per layer.
  PipelineWhatIf wide;
  wide.num_stages = 1000;
  const PipelineBuild clamped = BuildPipelineWhatIf(graph, model, wide);
  EXPECT_EQ(clamped.partition.num_stages(), model.num_layers());
}

TEST_F(PipelineWhatIfTest, MoreMicrobatchesShrinkTheBubble) {
  // With fixed stages, growing M amortizes the (S-1) warm-up/drain slots, so
  // the predicted iteration should not get slower (transfer latency per
  // micro-batch is the only counter-force; TinyMLP payloads are tiny).
  const ModelGraph model = BuildModel(ModelId::kTinyMlp);
  const DependencyGraph profiled = BuildDependencyGraph(trace());
  TimeNs previous = std::numeric_limits<TimeNs>::max();
  for (const int microbatches : {1, 2, 4}) {
    PipelineWhatIf options;
    options.num_stages = 2;
    options.num_microbatches = microbatches;
    // Isolate the bubble effect: zero per-transfer latency and launch cost so
    // integer rounding is the only non-monotonic term.
    options.network.inter_node_latency = 0;
    options.launch_overhead = 0;
    PipelineBuild build = BuildPipelineWhatIf(profiled, model, options);
    const TimeNs makespan = Simulator().Run(build.graph).makespan;
    EXPECT_LE(makespan, previous) << "M=" << microbatches;
    previous = makespan;
  }
}

}  // namespace
}  // namespace daydream

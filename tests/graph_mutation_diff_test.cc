// Randomized differential test for DependencyGraph's mutation layer.
//
// The production graph stores thread sequences intrusively (prev/next links +
// an interned thread table) and answers structured selects from lazily
// maintained phase/layer indexes. This test drives identical operation
// sequences through the production graph and through ReferenceGraph — a
// deliberately naive transcription of the pre-change storage model
// (std::map<ExecThread, std::vector<TaskId>> sequences, linear-scan selects) —
// and asserts the two agree on every observable: thread sets and sequences,
// adjacency, topological order, select results, and Validate.
//
// Runs in every ctest config, including -DDAYDREAM_SANITIZE=ON, which makes it
// the ASan/UBSan stress for the intrusive link surgery.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <random>
#include <vector>

#include "src/core/transform.h"

namespace daydream {
namespace {

// Faithful copy of the pre-change DependencyGraph semantics, kept naive on
// purpose: correctness oracle, not a performance target.
class ReferenceGraph {
 public:
  TaskId AddTask(Task task) {
    const TaskId id = static_cast<TaskId>(tasks_.size());
    task.id = id;
    sequences_[task.thread].push_back(id);
    tasks_.push_back({std::move(task), {}, {}, true});
    return id;
  }

  void AddEdge(TaskId from, TaskId to) {
    if (from == to) {
      return;
    }
    auto& children = tasks_[static_cast<size_t>(from)].children;
    if (std::find(children.begin(), children.end(), to) != children.end()) {
      return;
    }
    children.push_back(to);
    tasks_[static_cast<size_t>(to)].parents.push_back(from);
  }

  void RemoveEdge(TaskId from, TaskId to) {
    auto& children = tasks_[static_cast<size_t>(from)].children;
    auto cit = std::find(children.begin(), children.end(), to);
    if (cit == children.end()) {
      return;
    }
    children.erase(cit);
    auto& parents = tasks_[static_cast<size_t>(to)].parents;
    parents.erase(std::find(parents.begin(), parents.end(), from));
  }

  bool HasEdge(TaskId from, TaskId to) const {
    const auto& children = tasks_[static_cast<size_t>(from)].children;
    return std::find(children.begin(), children.end(), to) != children.end();
  }

  void LinkSequential() {
    for (const auto& [thread, seq] : sequences_) {
      TaskId prev = kInvalidTask;
      for (TaskId id : seq) {
        if (!alive(id)) {
          continue;
        }
        if (prev != kInvalidTask) {
          AddEdge(prev, id);
        }
        prev = id;
      }
    }
  }

  TaskId InsertAfter(TaskId anchor, Task task) {
    const ExecThread thread = task.thread;
    const TaskId id = static_cast<TaskId>(tasks_.size());
    task.id = id;
    tasks_.push_back({std::move(task), {}, {}, true});
    auto& seq = sequences_[thread];
    auto pos = std::find(seq.begin(), seq.end(), anchor);
    if (pos != seq.end()) {
      TaskId next = kInvalidTask;
      for (auto it = pos + 1; it != seq.end(); ++it) {
        if (alive(*it)) {
          next = *it;
          break;
        }
      }
      seq.insert(pos + 1, id);
      if (next != kInvalidTask && HasEdge(anchor, next)) {
        RemoveEdge(anchor, next);
      }
      AddEdge(anchor, id);
      if (next != kInvalidTask) {
        AddEdge(id, next);
      }
    } else {
      TaskId tail = kInvalidTask;
      for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
        if (alive(*it)) {
          tail = *it;
          break;
        }
      }
      seq.push_back(id);
      if (tail != kInvalidTask) {
        AddEdge(tail, id);
      }
      AddEdge(anchor, id);
    }
    return id;
  }

  TaskId InsertBefore(TaskId anchor, Task task) {
    const ExecThread thread = task.thread;
    const TaskId id = static_cast<TaskId>(tasks_.size());
    task.id = id;
    tasks_.push_back({std::move(task), {}, {}, true});
    auto& seq = sequences_[thread];
    auto pos = std::find(seq.begin(), seq.end(), anchor);
    TaskId prev = kInvalidTask;
    for (auto it = seq.begin(); it != pos; ++it) {
      if (alive(*it)) {
        prev = *it;
      }
    }
    seq.insert(pos, id);
    if (prev != kInvalidTask && HasEdge(prev, anchor)) {
      RemoveEdge(prev, anchor);
    }
    if (prev != kInvalidTask) {
      AddEdge(prev, id);
    }
    AddEdge(id, anchor);
    return id;
  }

  void Remove(TaskId id) {
    Entry& n = tasks_[static_cast<size_t>(id)];
    const std::vector<TaskId> parents = n.parents;
    const std::vector<TaskId> children = n.children;
    for (TaskId p : parents) {
      RemoveEdge(p, id);
    }
    for (TaskId c : children) {
      RemoveEdge(id, c);
    }
    for (TaskId p : parents) {
      for (TaskId c : children) {
        AddEdge(p, c);
      }
    }
    n.alive = false;
    auto& seq = sequences_[n.task.thread];
    seq.erase(std::find(seq.begin(), seq.end(), id));
  }

  std::vector<TaskId> Select(const TaskQuery& query) const {
    std::vector<TaskId> out;
    for (const Entry& n : tasks_) {
      if (n.alive && query.Matches(n.task)) {
        out.push_back(n.task.id);
      }
    }
    return out;
  }

  bool alive(TaskId id) const {
    return id >= 0 && id < static_cast<TaskId>(tasks_.size()) &&
           tasks_[static_cast<size_t>(id)].alive;
  }
  Task& task(TaskId id) { return tasks_[static_cast<size_t>(id)].task; }
  const std::vector<TaskId>& parents(TaskId id) const {
    return tasks_[static_cast<size_t>(id)].parents;
  }
  const std::vector<TaskId>& children(TaskId id) const {
    return tasks_[static_cast<size_t>(id)].children;
  }
  int capacity() const { return static_cast<int>(tasks_.size()); }

  std::vector<ExecThread> Threads() const {
    std::vector<ExecThread> out;
    for (const auto& [thread, seq] : sequences_) {
      for (TaskId id : seq) {
        if (alive(id)) {
          out.push_back(thread);
          break;
        }
      }
    }
    return out;
  }

  std::vector<TaskId> ThreadSequence(const ExecThread& thread) const {
    std::vector<TaskId> out;
    auto it = sequences_.find(thread);
    if (it == sequences_.end()) {
      return out;
    }
    for (TaskId id : it->second) {
      if (alive(id)) {
        out.push_back(id);
      }
    }
    return out;
  }

  std::vector<TaskId> TopologicalOrder() const {
    std::vector<int> refs(tasks_.size(), 0);
    std::queue<TaskId> ready;
    int alive_count = 0;
    for (const Entry& n : tasks_) {
      if (!n.alive) {
        continue;
      }
      ++alive_count;
      refs[static_cast<size_t>(n.task.id)] = static_cast<int>(n.parents.size());
      if (n.parents.empty()) {
        ready.push(n.task.id);
      }
    }
    std::vector<TaskId> order;
    while (!ready.empty()) {
      const TaskId id = ready.front();
      ready.pop();
      order.push_back(id);
      for (TaskId c : tasks_[static_cast<size_t>(id)].children) {
        if (--refs[static_cast<size_t>(c)] == 0) {
          ready.push(c);
        }
      }
    }
    if (static_cast<int>(order.size()) != alive_count) {
      return {};
    }
    return order;
  }

 private:
  struct Entry {
    Task task;
    std::vector<TaskId> parents;
    std::vector<TaskId> children;
    bool alive = true;
  };
  std::vector<Entry> tasks_;
  std::map<ExecThread, std::vector<TaskId>> sequences_;
};

// ---- the randomized driver ----

struct Fuzzer {
  std::mt19937 rng;
  DependencyGraph graph;
  ReferenceGraph reference;
  std::vector<TaskId> live;

  explicit Fuzzer(uint32_t seed) : rng(seed) {}

  int RandInt(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(rng); }

  ExecThread RandThread() {
    switch (RandInt(0, 2)) {
      case 0:
        return ExecThread::Cpu(RandInt(0, 3));
      case 1:
        return ExecThread::Gpu(RandInt(0, 3));
      default:
        return ExecThread::Comm(RandInt(0, 1));
    }
  }

  Task RandTask() {
    Task t;
    switch (RandInt(0, 3)) {
      case 0:
        t.type = TaskType::kCpu;
        break;
      case 1:
        t.type = TaskType::kGpu;
        break;
      case 2:
        t.type = TaskType::kDataLoad;
        break;
      default:
        t.type = TaskType::kComm;
        break;
    }
    t.thread = RandThread();
    t.duration = RandInt(1, 100);
    t.start = RandInt(0, 1000);
    t.layer_id = RandInt(-1, 6);
    t.phase = static_cast<Phase>(RandInt(0, 4));
    t.name = RandInt(0, 1) != 0 ? "elementwise_kernel" : "volta_sgemm";
    return t;
  }

  TaskId RandLive() { return live[static_cast<size_t>(RandInt(0, (int)live.size() - 1))]; }

  // BFS over the reference adjacency. The driver must only perform insertions
  // and edge additions that keep the graph acyclic (as real transformations
  // do), so cycle-closing ops are skipped.
  bool Reachable(TaskId from, TaskId to) {
    if (from == to) {
      return true;
    }
    std::vector<TaskId> stack = {from};
    std::vector<bool> seen(static_cast<size_t>(reference.capacity()), false);
    seen[static_cast<size_t>(from)] = true;
    while (!stack.empty()) {
      const TaskId id = stack.back();
      stack.pop_back();
      for (TaskId c : reference.children(id)) {
        if (c == to) {
          return true;
        }
        if (!seen[static_cast<size_t>(c)]) {
          seen[static_cast<size_t>(c)] = true;
          stack.push_back(c);
        }
      }
    }
    return false;
  }

  void AddBoth() {
    Task t = RandTask();
    const TaskId a = graph.AddTask(t);
    const TaskId b = reference.AddTask(std::move(t));
    ASSERT_EQ(a, b);
    live.push_back(a);
  }

  void AddEdgeBoth() {
    if (live.size() < 2) {
      return;
    }
    TaskId x = RandLive();
    TaskId y = RandLive();
    if (x == y || Reachable(y, x)) {
      return;
    }
    graph.AddEdge(x, y);
    reference.AddEdge(x, y);
  }

  void RemoveEdgeBoth() {
    if (live.empty()) {
      return;
    }
    const TaskId x = RandLive();
    const auto& children = reference.children(x);
    if (children.empty()) {
      return;
    }
    const TaskId y = children[static_cast<size_t>(RandInt(0, (int)children.size() - 1))];
    graph.RemoveEdge(x, y);
    reference.RemoveEdge(x, y);
  }

  void InsertAfterBoth() {
    if (live.empty()) {
      return;
    }
    const TaskId anchor = RandLive();
    Task t = RandTask();
    if (RandInt(0, 1) != 0) {
      // Same-thread insertion exercises the splice path.
      t.thread = graph.task(anchor).thread;
    }
    if (t.thread == graph.task(anchor).thread) {
      const TaskId next = graph.NextInThread(anchor);
      if (next != kInvalidTask && Reachable(next, anchor)) {
        return;  // the splice's id -> next edge would close a cycle
      }
    }
    const TaskId a = graph.InsertAfter(anchor, t);
    const TaskId b = reference.InsertAfter(anchor, std::move(t));
    ASSERT_EQ(a, b);
    live.push_back(a);
  }

  void InsertBeforeBoth() {
    if (live.empty()) {
      return;
    }
    const TaskId anchor = RandLive();
    Task t = RandTask();
    t.thread = graph.task(anchor).thread;  // InsertBefore requires the anchor's thread
    const TaskId prev = graph.PrevInThread(anchor);
    if (prev != kInvalidTask && Reachable(anchor, prev)) {
      return;  // the splice's id -> anchor edge would close a cycle
    }
    const TaskId a = graph.InsertBefore(anchor, t);
    const TaskId b = reference.InsertBefore(anchor, std::move(t));
    ASSERT_EQ(a, b);
    live.push_back(a);
  }

  void RemoveBoth() {
    if (live.size() <= 2) {
      return;
    }
    const size_t slot = static_cast<size_t>(RandInt(0, (int)live.size() - 1));
    const TaskId id = live[slot];
    graph.Remove(id);
    reference.Remove(id);
    live.erase(live.begin() + static_cast<ptrdiff_t>(slot));
  }

  // Mutating fields through the mutable accessor must re-bucket the task in
  // the production graph's select indexes.
  void MutateFieldsBoth() {
    if (live.empty()) {
      return;
    }
    const TaskId id = RandLive();
    const int layer = RandInt(-1, 6);
    const Phase phase = static_cast<Phase>(RandInt(0, 4));
    graph.task(id).layer_id = layer;
    graph.task(id).phase = phase;
    reference.task(id).layer_id = layer;
    reference.task(id).phase = phase;
  }

  void CheckEquivalent() {
    ASSERT_EQ(graph.capacity(), reference.capacity());
    ASSERT_EQ(graph.num_alive(), static_cast<int>(live.size()));

    const std::vector<ExecThread> threads = graph.Threads();
    ASSERT_EQ(threads, reference.Threads());
    int chained = 0;
    for (const ExecThread& thread : threads) {
      const std::vector<TaskId> seq = graph.ThreadSequence(thread);
      ASSERT_EQ(seq, reference.ThreadSequence(thread)) << thread.Label();
      chained += static_cast<int>(seq.size());
      // Intrusive navigation agrees with the materialized sequence.
      for (size_t i = 0; i < seq.size(); ++i) {
        ASSERT_EQ(graph.PrevInThread(seq[i]), i == 0 ? kInvalidTask : seq[i - 1]);
        ASSERT_EQ(graph.NextInThread(seq[i]), i + 1 == seq.size() ? kInvalidTask : seq[i + 1]);
      }
    }
    ASSERT_EQ(chained, graph.num_alive());

    for (TaskId id : live) {
      ASSERT_EQ(graph.parents(id), reference.parents(id)) << "parents of " << id;
      ASSERT_EQ(graph.children(id), reference.children(id)) << "children of " << id;
    }
    ASSERT_EQ(graph.TopologicalOrder(), reference.TopologicalOrder());

    std::string error;
    ASSERT_TRUE(graph.Validate(&error)) << error;
  }

  void CheckSelects() {
    const std::vector<TaskQuery> queries = {
        IsOnGpu(),
        IsOnCpu(),
        IsComm(),
        PhaseIs(Phase::kBackward),
        PhaseIs(static_cast<Phase>(RandInt(0, 4))),
        LayerIs(RandInt(-1, 6)),
        All(IsOnGpu(), PhaseIs(Phase::kForward)),
        All(IsOnGpu(), All(LayerIs(RandInt(-1, 6)), PhaseIs(Phase::kBackward))),
        All(PhaseIs(Phase::kForward), PhaseIs(Phase::kBackward)),  // impossible
        Any(IsComm(), NameContains("sgemm")),
        Not(IsOnGpu()),
        CommIs(CommKind::kAllReduce),
    };
    for (const TaskQuery& q : queries) {
      ASSERT_EQ(graph.Select(q), reference.Select(q));
      std::vector<TaskId> streamed;
      graph.ForEachSelected(q, [&](const Task& t) { streamed.push_back(t.id); });
      ASSERT_EQ(streamed, reference.Select(q));
    }
  }

  void Run(int steps) {
    for (int i = 0; i < 8; ++i) {
      AddBoth();
    }
    graph.LinkSequential();
    reference.LinkSequential();
    CheckEquivalent();
    // Warm the production indexes early in half the runs so mutations hit the
    // maintenance path, not the build path.
    if (RandInt(0, 1) != 0) {
      graph.EnsureSelectIndexes();
    }
    for (int step = 0; step < steps; ++step) {
      switch (RandInt(0, 6)) {
        case 0:
          AddBoth();
          break;
        case 1:
          AddEdgeBoth();
          break;
        case 2:
          RemoveEdgeBoth();
          break;
        case 3:
          InsertAfterBoth();
          break;
        case 4:
          InsertBeforeBoth();
          break;
        case 5:
          RemoveBoth();
          break;
        default:
          MutateFieldsBoth();
          break;
      }
      if (step % 7 == 0) {
        CheckSelects();
      }
      if (step % 11 == 0) {
        CheckEquivalent();
      }
    }
    CheckEquivalent();
    CheckSelects();
  }
};

TEST(GraphMutationDiff, RandomizedAgainstReference) {
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    Fuzzer fuzzer(seed);
    fuzzer.Run(400);
    if (testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(GraphMutationDiff, CloneMatchesOriginalAndStaysIndependent) {
  Fuzzer fuzzer(99);
  fuzzer.Run(200);
  if (testing::Test::HasFatalFailure()) {
    return;
  }
  DependencyGraph clone = fuzzer.graph.Clone();
  ASSERT_EQ(clone.capacity(), fuzzer.graph.capacity());
  ASSERT_EQ(clone.num_alive(), fuzzer.graph.num_alive());
  ASSERT_EQ(clone.TopologicalOrder(), fuzzer.graph.TopologicalOrder());
  for (const ExecThread& thread : fuzzer.graph.Threads()) {
    ASSERT_EQ(clone.ThreadSequence(thread), fuzzer.graph.ThreadSequence(thread));
  }
  for (TaskId id : fuzzer.graph.AliveTasks()) {
    ASSERT_EQ(clone.parents(id), fuzzer.graph.parents(id));
    ASSERT_EQ(clone.children(id), fuzzer.graph.children(id));
    ASSERT_EQ(clone.task(id).name, fuzzer.graph.task(id).name);
  }
  std::string error;
  ASSERT_TRUE(clone.Validate(&error)) << error;

  // Mutating the clone must not leak into the original (and vice versa).
  const std::vector<TaskId> alive = clone.AliveTasks();
  const TaskId anchor = alive.front();
  Task extra;
  extra.thread = clone.task(anchor).thread;
  extra.name = "clone_only";
  clone.InsertAfter(anchor, std::move(extra));
  ASSERT_EQ(clone.num_alive(), fuzzer.graph.num_alive() + 1);
  ASSERT_TRUE(clone.Validate(&error)) << error;
  ASSERT_TRUE(fuzzer.graph.Validate(&error)) << error;
  fuzzer.CheckEquivalent();  // original still matches the reference
}

}  // namespace
}  // namespace daydream

#include <gtest/gtest.h>

#include "src/core/critical_path.h"
#include "src/core/graph_builder.h"
#include "src/core/layer_report.h"
#include "src/core/optimizations/amp.h"
#include "src/core/optimizations/distributed.h"
#include "src/core/predictor.h"
#include "src/runtime/ground_truth.h"
#include "src/trace/trace_io.h"

#include <sstream>

namespace daydream {
namespace {

Task Make(TaskType type, ExecThread thread, TimeNs dur, TimeNs gap = 0) {
  Task t;
  t.type = type;
  t.thread = thread;
  t.duration = dur;
  t.gap = gap;
  return t;
}

// ---- critical path: hand-built graphs ----

TEST(CriticalPath, EmptyGraph) {
  DependencyGraph g;
  const CriticalPathReport r = ComputeCriticalPath(g);
  EXPECT_EQ(r.makespan, 0);
  EXPECT_TRUE(r.path.empty());
}

TEST(CriticalPath, SimpleChain) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  const TaskId b = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(40)));
  g.AddEdge(a, b);
  const CriticalPathReport r = ComputeCriticalPath(g);
  EXPECT_EQ(r.path, (std::vector<TaskId>{a, b}));
  EXPECT_EQ(r.makespan, Us(50));
  EXPECT_EQ(r.cpu_time, Us(10));
  EXPECT_EQ(r.gpu_time, Us(40));
}

TEST(CriticalPath, PicksLongerBranch) {
  DependencyGraph g;
  const TaskId a = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  const TaskId fast = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(0), Us(5)));
  const TaskId slow = g.AddTask(Make(TaskType::kGpu, ExecThread::Gpu(1), Us(100)));
  const TaskId join = g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(1)));
  g.AddEdge(a, fast);
  g.AddEdge(a, slow);
  g.AddEdge(fast, join);
  g.AddEdge(slow, join);
  const CriticalPathReport r = ComputeCriticalPath(g);
  EXPECT_EQ(r.path, (std::vector<TaskId>{a, slow, join}));
}

TEST(CriticalPath, GapsAttributed) {
  DependencyGraph g;
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10), /*gap=*/Us(30)));
  g.AddTask(Make(TaskType::kCpu, ExecThread::Cpu(0), Us(10)));
  g.LinkSequential();
  const CriticalPathReport r = ComputeCriticalPath(g);
  EXPECT_EQ(r.makespan, Us(50));
  EXPECT_EQ(r.gap_time, Us(30));
  EXPECT_EQ(r.cpu_time, Us(20));
}

TEST(CriticalPath, AttributionCoversMakespan) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  const DependencyGraph g = BuildDependencyGraph(trace);
  const CriticalPathReport r = ComputeCriticalPath(g);
  const TimeNs accounted = r.cpu_time + r.gpu_time + r.comm_time + r.gap_time + r.wait_time;
  EXPECT_NEAR(static_cast<double>(accounted), static_cast<double>(r.makespan),
              0.02 * r.makespan);
  EXPECT_FALSE(r.Summary().empty());
}

TEST(CriticalPath, GpuBoundModelIsGpuDominated) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  const CriticalPathReport r = ComputeCriticalPath(BuildDependencyGraph(trace));
  EXPECT_GT(r.GpuPct(), 50.0);
}

TEST(CriticalPath, AmpShiftsPathTowardCpu) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kBertLarge));
  DependencyGraph g = BuildDependencyGraph(trace);
  const CriticalPathReport before = ComputeCriticalPath(g);
  WhatIfAmp(&g);
  const CriticalPathReport after = ComputeCriticalPath(g);
  EXPECT_LT(after.GpuPct(), before.GpuPct());
  EXPECT_GT(after.GapPct() + after.CpuPct(), before.GapPct() + before.CpuPct());
}

TEST(CriticalPath, CommShowsUpWhenNetworkSlow) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kVgg19));
  Daydream dd(trace);
  DependencyGraph g = dd.CloneGraph();
  DistributedWhatIf opts;
  opts.cluster.machines = 4;
  opts.cluster.gpus_per_machine = 1;
  opts.cluster.network.bandwidth_gbps = 5.0;
  WhatIfDistributed(&g, trace.gradients(), opts);
  const CriticalPathReport r = ComputeCriticalPath(g);
  EXPECT_GT(r.CommPct(), 10.0);  // VGG at 5 Gbps is communication-bound
}

// ---- layer report ----

TEST(LayerReport, RowsCoverPhases) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  const LayerReport report = BuildLayerReport(trace);
  EXPECT_GT(report.GpuBusy(Phase::kForward), 0);
  EXPECT_GT(report.GpuBusy(Phase::kBackward), 0);
  EXPECT_GT(report.GpuBusy(Phase::kWeightUpdate), 0);
  EXPECT_GT(report.GpuBusy(Phase::kBackward), report.GpuBusy(Phase::kForward));
}

TEST(LayerReport, GpuBusySumsMatchTrace) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  const LayerReport report = BuildLayerReport(trace);
  TimeNs mapped = 0;
  for (const LayerPhaseStats& row : report.rows) {
    mapped += row.gpu_busy;
  }
  TimeNs total = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.is_gpu()) {
      total += e.duration;
    }
  }
  // Nearly all GPU time is attributable to a layer.
  EXPECT_GT(static_cast<double>(mapped) / total, 0.95);
  EXPECT_LE(mapped, total);
}

TEST(LayerReport, TopByGpuTimeSortedAndBounded) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kBertBase));
  const LayerReport report = BuildLayerReport(trace);
  const std::vector<LayerPhaseStats> top = report.TopByGpuTime(5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].gpu_busy, top[i].gpu_busy);
  }
  EXPECT_FALSE(report.ToString().empty());
}

TEST(LayerReport, LaunchCountsMatchKernels) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  const LayerReport report = BuildLayerReport(trace);
  for (const LayerPhaseStats& row : report.rows) {
    // Every mapped kernel was launched inside the layer window.
    EXPECT_GE(row.launches, row.kernels) << row.layer_name;
  }
}

TEST(LayerReport, WorksOnReloadedTrace) {
  // The report only needs markers + correlation ids, so it survives the
  // serialize/deserialize round trip (offline analysis).
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(ModelId::kResNet50));
  std::stringstream ss;
  WriteTrace(trace, ss);
  std::optional<Trace> reloaded = ReadTrace(ss);
  ASSERT_TRUE(reloaded.has_value());
  const LayerReport a = BuildLayerReport(trace);
  const LayerReport b = BuildLayerReport(*reloaded);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.GpuBusy(Phase::kForward), b.GpuBusy(Phase::kForward));
}

}  // namespace
}  // namespace daydream

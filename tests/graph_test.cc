#include <gtest/gtest.h>

#include "src/core/graph_builder.h"
#include "src/core/simulator.h"
#include "src/runtime/ground_truth.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

namespace daydream {
namespace {

Task CpuTask(const std::string& name, TimeNs dur = Us(5), int thread = 0) {
  Task t;
  t.type = TaskType::kCpu;
  t.name = name;
  t.thread = ExecThread::Cpu(thread);
  t.duration = dur;
  return t;
}

Task GpuTask(const std::string& name, TimeNs dur = Us(50), int stream = 0) {
  Task t;
  t.type = TaskType::kGpu;
  t.name = name;
  t.thread = ExecThread::Gpu(stream);
  t.duration = dur;
  return t;
}

// ---- graph primitives ----

TEST(DependencyGraph, AddTaskAndEdges) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  g.AddEdge(a, b);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_EQ(g.children(a), std::vector<TaskId>{b});
  EXPECT_EQ(g.parents(b), std::vector<TaskId>{a});
  EXPECT_EQ(g.num_alive(), 2);
}

TEST(DependencyGraph, EdgeDeduplication) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  EXPECT_EQ(g.children(a).size(), 1u);
}

TEST(DependencyGraph, SelfEdgeIgnored) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  g.AddEdge(a, a);
  EXPECT_TRUE(g.children(a).empty());
}

TEST(DependencyGraph, RemoveEdge) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  g.AddEdge(a, b);
  g.RemoveEdge(a, b);
  EXPECT_FALSE(g.HasEdge(a, b));
  EXPECT_TRUE(g.parents(b).empty());
}

TEST(DependencyGraph, LinkSequential) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  const TaskId c = g.AddTask(GpuTask("k"));
  g.LinkSequential();
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_FALSE(g.HasEdge(b, c));  // different lanes are not linked
}

TEST(DependencyGraph, RemoveRewiresParentsToChildren) {
  // Figure 4: removing a task reconnects its neighbours.
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  const TaskId c = g.AddTask(CpuTask("c"));
  g.LinkSequential();
  g.Remove(b);
  EXPECT_FALSE(g.alive(b));
  EXPECT_TRUE(g.HasEdge(a, c));
  EXPECT_EQ(g.ThreadSequence(ExecThread::Cpu(0)), (std::vector<TaskId>{a, c}));
}

TEST(DependencyGraph, InsertAfterSplicesSequence) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId c = g.AddTask(CpuTask("c"));
  g.LinkSequential();
  const TaskId b = g.InsertAfter(a, CpuTask("b"));
  EXPECT_EQ(g.ThreadSequence(ExecThread::Cpu(0)), (std::vector<TaskId>{a, b, c}));
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, c));
  EXPECT_FALSE(g.HasEdge(a, c));
}

TEST(DependencyGraph, InsertBeforeSplicesSequence) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId c = g.AddTask(CpuTask("c"));
  g.LinkSequential();
  const TaskId b = g.InsertBefore(c, CpuTask("b"));
  EXPECT_EQ(g.ThreadSequence(ExecThread::Cpu(0)), (std::vector<TaskId>{a, b, c}));
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, c));
}

TEST(DependencyGraph, InsertAfterCrossThread) {
  DependencyGraph g;
  const TaskId launch = g.AddTask(CpuTask("launch"));
  const TaskId k1 = g.AddTask(GpuTask("k1"));
  g.LinkSequential();
  Task k2 = GpuTask("k2");
  const TaskId id = g.InsertAfter(launch, std::move(k2));  // GPU task, CPU anchor
  EXPECT_TRUE(g.HasEdge(launch, id));
  EXPECT_TRUE(g.HasEdge(k1, id));  // appended to the stream tail
}

TEST(DependencyGraph, SelectByPredicate) {
  DependencyGraph g;
  g.AddTask(CpuTask("a"));
  g.AddTask(GpuTask("k"));
  const std::vector<TaskId> gpus = g.Select([](const Task& t) { return t.is_gpu(); });
  EXPECT_EQ(gpus.size(), 1u);
  EXPECT_EQ(g.task(gpus[0]).name, "k");
}

TEST(DependencyGraph, ValidateDetectsCycle) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  EXPECT_FALSE(g.Validate());
  EXPECT_TRUE(g.TopologicalOrder().empty());
}

TEST(DependencyGraph, TopologicalOrderRespectsEdges) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  const TaskId c = g.AddTask(GpuTask("c"));
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  const std::vector<TaskId> order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), c);
}

TEST(DependencyGraph, StatsCount) {
  DependencyGraph g;
  g.AddTask(CpuTask("a"));
  g.AddTask(GpuTask("k"));
  Task comm;
  comm.type = TaskType::kComm;
  comm.thread = ExecThread::Comm(0);
  g.AddTask(std::move(comm));
  const DependencyGraph::Stats s = g.ComputeStats();
  EXPECT_EQ(s.tasks, 3);
  EXPECT_EQ(s.cpu_tasks, 1);
  EXPECT_EQ(s.gpu_tasks, 1);
  EXPECT_EQ(s.comm_tasks, 1);
  EXPECT_EQ(s.threads, 3);
}

TEST(DependencyGraph, IntrusiveNeighbours) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  const TaskId c = g.AddTask(CpuTask("c"));
  g.LinkSequential();
  EXPECT_EQ(g.PrevInThread(a), kInvalidTask);
  EXPECT_EQ(g.NextInThread(a), b);
  EXPECT_EQ(g.PrevInThread(c), b);
  EXPECT_EQ(g.NextInThread(c), kInvalidTask);
  g.Remove(b);
  EXPECT_EQ(g.NextInThread(a), c);
  EXPECT_EQ(g.PrevInThread(c), a);
}

TEST(DependencyGraph, RemoveHeadAndTailRelink) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  const TaskId c = g.AddTask(CpuTask("c"));
  g.LinkSequential();
  g.Remove(a);
  g.Remove(c);
  EXPECT_EQ(g.ThreadSequence(ExecThread::Cpu(0)), (std::vector<TaskId>{b}));
  const TaskId d = g.AddTask(CpuTask("d"));
  EXPECT_EQ(g.ThreadSequence(ExecThread::Cpu(0)), (std::vector<TaskId>{b, d}));
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST(DependencyGraph, RemoveDeduplicatesRewiredEdges) {
  // a -> b -> c plus a direct a -> c edge: removing b must not duplicate a->c.
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  const TaskId c = g.AddTask(CpuTask("c"));
  g.LinkSequential();
  g.AddEdge(a, c);
  g.Remove(b);
  EXPECT_EQ(g.children(a), std::vector<TaskId>{c});
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST(DependencyGraph, ThreadsSortedByExecThreadOrder) {
  DependencyGraph g;
  Task comm;
  comm.type = TaskType::kComm;
  comm.thread = ExecThread::Comm(0);
  g.AddTask(std::move(comm));
  g.AddTask(GpuTask("k"));
  g.AddTask(CpuTask("a"));
  const std::vector<ExecThread> threads = g.Threads();
  ASSERT_EQ(threads.size(), 3u);
  EXPECT_TRUE(threads[0] < threads[1]);
  EXPECT_TRUE(threads[1] < threads[2]);
}

TEST(DependencyGraph, CloneCompactsDeadNodesAndStaysIndependent) {
  DependencyGraph g;
  const TaskId a = g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  const TaskId c = g.AddTask(CpuTask("c"));
  g.LinkSequential();
  g.Remove(b);

  DependencyGraph clone = g.Clone();
  EXPECT_EQ(clone.capacity(), g.capacity());  // ids keep their meaning
  EXPECT_FALSE(clone.alive(b));
  EXPECT_TRUE(clone.task(b).name.empty());  // dead payload dropped
  EXPECT_EQ(clone.ThreadSequence(ExecThread::Cpu(0)), (std::vector<TaskId>{a, c}));
  EXPECT_TRUE(clone.HasEdge(a, c));

  clone.Remove(c);
  EXPECT_TRUE(g.alive(c));  // originals unaffected
  std::string error;
  EXPECT_TRUE(clone.Validate(&error)) << error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

TEST(DependencyGraph, IndexedSelectTracksFieldMutations) {
  DependencyGraph g;
  const TaskId a = g.AddTask(GpuTask("k1"));
  const TaskId b = g.AddTask(GpuTask("k2"));
  g.task(a).phase = Phase::kForward;
  g.task(a).layer_id = 1;
  g.task(b).phase = Phase::kForward;
  g.task(b).layer_id = 2;
  g.EnsureSelectIndexes();
  TaskQuery forward;
  forward.phase = Phase::kForward;
  EXPECT_EQ(g.Select(forward), (std::vector<TaskId>{a, b}));

  // Re-assign through the mutable accessor: the next structured Select must
  // see the move between buckets.
  g.task(b).phase = Phase::kBackward;
  g.task(b).layer_id = 5;
  TaskQuery backward;
  backward.phase = Phase::kBackward;
  TaskQuery layer5;
  layer5.layer_id = 5;
  EXPECT_EQ(g.Select(forward), std::vector<TaskId>{a});
  EXPECT_EQ(g.Select(backward), std::vector<TaskId>{b});
  EXPECT_EQ(g.Select(layer5), std::vector<TaskId>{b});

  // And back again, which exercises bucket re-entry + sort/unique.
  g.task(b).phase = Phase::kForward;
  EXPECT_EQ(g.Select(forward), (std::vector<TaskId>{a, b}));
  EXPECT_EQ(g.Select(forward), (std::vector<TaskId>{a, b}));  // stable on re-read
}

TEST(DependencyGraph, ValidateCatchesThreadFieldDesync) {
  DependencyGraph g;
  g.AddTask(CpuTask("a"));
  const TaskId b = g.AddTask(CpuTask("b"));
  EXPECT_TRUE(g.Validate());
  g.task(b).thread = ExecThread::Gpu(3);  // desync: node stays filed under cpu:0
  std::string error;
  EXPECT_FALSE(g.Validate(&error));
  EXPECT_NE(error.find("wrong thread"), std::string::npos);
}

TEST(ExecThread, OrderingAndLabels) {
  EXPECT_LT(ExecThread::Cpu(0), ExecThread::Gpu(0));
  EXPECT_LT(ExecThread::Gpu(0), ExecThread::Comm(0));
  EXPECT_LT(ExecThread::Cpu(0), ExecThread::Cpu(1));
  EXPECT_EQ(ExecThread::Gpu(2).Label(), "gpu:2");
}

// ---- builder on real traces: the five dependency types (§4.2.2) ----

class BuilderModelTest : public ::testing::TestWithParam<ModelId> {};

std::string BuilderParamName(const ::testing::TestParamInfo<ModelId>& info) {
  std::string name = ModelName(info.param);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(ModelZoo, BuilderModelTest, ::testing::ValuesIn(PaperModels()),
                         BuilderParamName);

TEST_P(BuilderModelTest, GraphValidAndComplete) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const DependencyGraph g = BuildDependencyGraph(trace);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
  // Every non-marker event becomes a task.
  int expected = 0;
  for (const TraceEvent& e : trace.events()) {
    expected += e.kind != EventKind::kLayerMarker ? 1 : 0;
  }
  EXPECT_EQ(g.num_alive(), expected);
}

TEST_P(BuilderModelTest, ReplayMatchesMeasuredMakespan) {
  // The central fidelity property: simulating the *untransformed* graph
  // reproduces the measured execution.
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const DependencyGraph g = BuildDependencyGraph(trace);
  const SimResult sim = Simulator().Run(g);
  EXPECT_LT(RelErrorPct(static_cast<double>(sim.makespan),
                        static_cast<double>(trace.makespan())),
            0.5)
      << "sim " << ToMs(sim.makespan) << "ms vs measured " << ToMs(trace.makespan()) << "ms";
}

TEST_P(BuilderModelTest, EveryGpuTaskHasALaunchParent) {
  // Dependency type 3: correlation edges.
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const DependencyGraph g = BuildDependencyGraph(trace);
  for (TaskId id : g.Select([](const Task& t) { return t.is_gpu(); })) {
    bool has_launch_parent = false;
    for (TaskId p : g.parents(id)) {
      const Task& parent = g.task(p);
      if (parent.is_cpu() && (parent.api == ApiKind::kLaunchKernel ||
                              parent.api == ApiKind::kMemcpyAsync)) {
        has_launch_parent = true;
      }
    }
    EXPECT_TRUE(has_launch_parent) << g.task(id).DebugString();
  }
}

TEST_P(BuilderModelTest, SequentialChainsExist) {
  // Dependency types 1 and 2.
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const DependencyGraph g = BuildDependencyGraph(trace);
  for (const ExecThread& thread : g.Threads()) {
    const std::vector<TaskId> seq = g.ThreadSequence(thread);
    for (size_t i = 0; i + 1 < seq.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(seq[i], seq[i + 1]))
          << thread.Label() << " position " << i;
    }
  }
}

TEST_P(BuilderModelTest, BlockingApisClippedWithGpuEdges) {
  // Dependency type 4: sync APIs keep only their overhead as duration; the
  // measured wait is reproduced through a GPU -> CPU edge to the next task.
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const GraphBuildOptions options;
  const DependencyGraph g = BuildDependencyGraph(trace);
  bool found_sync = false;
  for (TaskId id : g.Select(
           [](const Task& t) { return t.api == ApiKind::kDeviceSynchronize; })) {
    found_sync = true;
    EXPECT_LE(g.task(id).duration, options.sync_api_floor);
  }
  EXPECT_TRUE(found_sync);
  // Some CPU task has a GPU parent (the wait edge).
  bool gpu_to_cpu = false;
  for (TaskId id : g.Select([](const Task& t) { return t.is_cpu(); })) {
    for (TaskId p : g.parents(id)) {
      gpu_to_cpu |= g.task(p).is_gpu();
    }
  }
  EXPECT_TRUE(gpu_to_cpu);
}

TEST_P(BuilderModelTest, GapsNonNegativeAndBounded) {
  const Trace trace = CollectBaselineTrace(DefaultRunConfig(GetParam()));
  const DependencyGraph g = BuildDependencyGraph(trace);
  for (TaskId id : g.AliveTasks()) {
    const Task& t = g.task(id);
    EXPECT_GE(t.gap, 0) << t.DebugString();
    if (t.is_gpu()) {
      EXPECT_EQ(t.gap, 0) << "GPU tasks carry no gap";
    }
  }
}

TEST(Builder, CommunicationEventsBecomeCommTasks) {
  RunConfig config = DefaultRunConfig(ModelId::kVgg19);
  config.gpu = GpuSpec::P4000();
  config.framework = FrameworkProfile::Mxnet();
  config.batch = 16;
  config.comm = CommBackend::kPs;
  config.cluster.machines = 4;
  config.cluster.gpus_per_machine = 1;
  config.cluster.network.bandwidth_gbps = 5.0;
  const ExecutionResult r = RunGroundTruth(config, 3);
  const DependencyGraph g = BuildDependencyGraph(r.trace);
  const DependencyGraph::Stats s = g.ComputeStats();
  EXPECT_GT(s.comm_tasks, 0);
  std::string error;
  EXPECT_TRUE(g.Validate(&error)) << error;
}

}  // namespace
}  // namespace daydream

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <thread>

#include "src/util/csv.h"
#include "src/util/deadline.h"
#include "src/util/fault.h"
#include "src/util/json.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"
#include "src/util/table.h"
#include "src/util/time_units.h"

namespace daydream {
namespace {

// ---- time units ----

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(Us(1.0), 1000);
  EXPECT_EQ(Ms(1.0), 1000000);
  EXPECT_DOUBLE_EQ(ToUs(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToMs(2500000), 2.5);
  EXPECT_DOUBLE_EQ(ToSec(kSecond), 1.0);
}

TEST(TimeUnits, ByteConstants) {
  EXPECT_EQ(kMiB, 1024 * 1024);
  EXPECT_EQ(kGiB, 1024 * kMiB);
}

// ---- rng ----

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DeterministicFromKey) {
  Rng a(std::string_view("model/kernel"));
  Rng b(std::string_view("model/kernel"));
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentKeysDiffer) {
  Rng a(std::string_view("alpha"));
  Rng b(std::string_view("beta"));
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NormalMeanApproximates) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NextBelow) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(Rng, HashKeyStable) {
  EXPECT_EQ(Rng::HashKey("abc"), Rng::HashKey("abc"));
  EXPECT_NE(Rng::HashKey("abc"), Rng::HashKey("abd"));
}

// ---- stats ----

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Stats, Stddev) {
  EXPECT_DOUBLE_EQ(Stddev({2.0, 2.0, 2.0}), 0.0);
  EXPECT_NEAR(Stddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Stddev({5.0}), 0.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, 1.0, 2.0}), 3.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 99), 42.0);
}

TEST(Stats, RelErrorPct) {
  EXPECT_DOUBLE_EQ(RelErrorPct(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(RelErrorPct(90, 100), 10.0);
  EXPECT_DOUBLE_EQ(RelErrorPct(0, 0), 0.0);
}

TEST(Stats, RunningStats) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

// ---- strings ----

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtil, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtil, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b"}, "+"), "a+b");
  EXPECT_EQ(StrJoin({}, "+"), "");
}

TEST(StringUtil, Predicates) {
  EXPECT_TRUE(StrContains("volta_sgemm_128x64", "sgemm"));
  EXPECT_FALSE(StrContains("elementwise", "sgemm"));
  EXPECT_TRUE(StartsWith("cudaLaunchKernel", "cuda"));
  EXPECT_FALSE(StartsWith("cuda", "cudaLaunch"));
  EXPECT_TRUE(EndsWith("kernel_rbn", "_rbn"));
  EXPECT_FALSE(EndsWith("rbn_kernel", "_rbn"));
}

TEST(StringUtil, ToLower) { EXPECT_EQ(ToLower("AbC"), "abc"); }

TEST(StringUtil, ParseInt64ConsumesTheFullField) {
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_EQ(ParseInt64("-0"), 0);
  EXPECT_EQ(ParseInt64("+7"), 7);
  EXPECT_EQ(ParseInt64("-42"), -42);
  // Anything short of a complete integer field is a parse failure — trace
  // ingestion must not silently accept "1abc" the way std::stoll would.
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("+").has_value());
  EXPECT_FALSE(ParseInt64("-").has_value());
  EXPECT_FALSE(ParseInt64("+-3").has_value());
  EXPECT_FALSE(ParseInt64("1abc").has_value());
  EXPECT_FALSE(ParseInt64("100x").has_value());
  EXPECT_FALSE(ParseInt64(" 42").has_value());
  EXPECT_FALSE(ParseInt64("42 ").has_value());
  EXPECT_FALSE(ParseInt64("0x10").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
}

TEST(StringUtil, ParseInt64HoldsTheExactBoundaries) {
  EXPECT_EQ(ParseInt64("9223372036854775807"), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(ParseInt64("-9223372036854775808"), std::numeric_limits<int64_t>::min());
  EXPECT_FALSE(ParseInt64("9223372036854775808").has_value());
  EXPECT_FALSE(ParseInt64("+9223372036854775808").has_value());
  EXPECT_FALSE(ParseInt64("-9223372036854775809").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

TEST(StringUtil, ParseInt32EnforcesIntRange) {
  EXPECT_EQ(ParseInt32("2147483647"), std::numeric_limits<int>::max());
  EXPECT_EQ(ParseInt32("-2147483648"), std::numeric_limits<int>::min());
  EXPECT_FALSE(ParseInt32("2147483648").has_value());
  EXPECT_FALSE(ParseInt32("-2147483649").has_value());
  EXPECT_FALSE(ParseInt32("12ab").has_value());
}

// ---- table ----

TEST(Table, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xx", "1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| a  | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| xx | 1           |"), std::string::npos);
}

TEST(Table, SeparatorRows) {
  TablePrinter t({"c"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.ToString();
  // header line + 3 separators around content = at least 4 '+--' lines.
  size_t count = 0;
  for (size_t pos = out.find("+-"); pos != std::string::npos; pos = out.find("+-", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, 4u);
}

// ---- csv ----

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::Escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(CsvWriter::Escape("a\r\nb"), "\"a\r\nb\"");
}

TEST(Csv, ReportsOpenFailureInsteadOfAborting) {
  CsvWriter w("/nonexistent-dir/out.csv", {"x", "y"});
  EXPECT_FALSE(w.ok());
  w.AddRow({"1", "2"});  // inert, not a crash
  EXPECT_FALSE(w.ok());
}

TEST(Csv, WritesRows) {
  const std::string path = ::testing::TempDir() + "/test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    EXPECT_TRUE(w.ok());
    w.AddRow({"1", "2"});
    EXPECT_TRUE(w.ok());
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}


// ---- flat JSON (the serve request protocol) ----

TEST(Json, ParsesTheFlatValueKinds) {
  std::string error;
  const std::optional<JsonObject> object = ParseJsonObject(
      "{\"verb\": \"predict\", \"id\": 7, \"gbps\": 12.5, \"validate\": true, "
      "\"note\": null}",
      &error);
  ASSERT_TRUE(object.has_value()) << error;
  EXPECT_EQ(object->GetString("verb"), "predict");
  EXPECT_EQ(object->GetNumber("id"), 7.0);
  EXPECT_EQ(object->Find("id")->raw, "7");  // source token survives for echoes
  EXPECT_DOUBLE_EQ(object->GetNumber("gbps"), 12.5);
  EXPECT_TRUE(object->GetBool("validate"));
  ASSERT_TRUE(object->Has("note"));
  EXPECT_EQ(object->Find("note")->kind, JsonValue::Kind::kNull);
  EXPECT_FALSE(object->Has("absent"));
}

TEST(Json, TypedGettersFallBackOnWrongTypes) {
  const std::optional<JsonObject> object = ParseJsonObject("{\"n\": 3, \"s\": \"x\"}");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->GetString("n", "fallback"), "fallback");
  EXPECT_EQ(object->GetNumber("s", -1.0), -1.0);
  EXPECT_TRUE(object->GetBool("n", true));
}

TEST(Json, GetInt64IsExactPastDoublePrecision) {
  const std::optional<JsonObject> object = ParseJsonObject(
      "{\"big\": 9007199254740993, \"max\": 9223372036854775807,"
      " \"min\": -9223372036854775808, \"frac\": 1.5, \"exp\": 1e3,"
      " \"small\": 7, \"s\": \"12\"}");
  ASSERT_TRUE(object.has_value());
  // 2^53 + 1 is not representable as a double; GetNumber rounds it while
  // GetInt64 re-parses the raw token and keeps every bit.
  EXPECT_EQ(object->GetInt64("big"), INT64_C(9007199254740993));
  EXPECT_NE(static_cast<int64_t>(object->GetNumber("big")), INT64_C(9007199254740993));
  EXPECT_EQ(object->GetInt64("max"), std::numeric_limits<int64_t>::max());
  EXPECT_EQ(object->GetInt64("min"), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(object->GetInt64("small"), 7);
  // Non-integer numerics and non-numbers fall back.
  EXPECT_EQ(object->GetInt64("frac", -1), -1);
  EXPECT_EQ(object->GetInt64("exp", -1), -1);
  EXPECT_EQ(object->GetInt64("s", -1), -1);
  EXPECT_EQ(object->GetInt64("missing", -1), -1);
  const JsonValue* frac = object->Find("frac");
  ASSERT_NE(frac, nullptr);
  EXPECT_FALSE(frac->AsInt64().has_value());
  const JsonValue* big = object->Find("big");
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->AsInt64(), INT64_C(9007199254740993));
}

TEST(Json, DecodesEscapes) {
  const std::optional<JsonObject> object = ParseJsonObject(
      "{\"s\": \"a\\\"b\\\\c\\n\\t\\u00e9\"}");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->GetString("s"), "a\"b\\c\n\t\u00e9");
}

TEST(Json, AcceptsTheEmptyObjectAndIgnoresWhitespace) {
  EXPECT_TRUE(ParseJsonObject("{}").has_value());
  EXPECT_TRUE(ParseJsonObject("  { \"a\" : 1 , \"b\" : 2 }  ").has_value());
}

TEST(Json, NamesTheOffendingConstructOnParseErrors) {
  const std::pair<const char*, const char*> cases[] = {
      {"", "expected '{'"},
      {"predict", "expected '{'"},
      {"{1: 2}", "expected '\"'"},
      {"{\"a\" 1}", "expected ':' after key 'a'"},
      {"{\"a\": 1, \"a\": 2}", "duplicate key 'a'"},
      {"{\"a\": [1]}", "nested containers are not part of the flat request protocol"},
      {"{\"a\": {\"b\": 1}}", "nested containers are not part of the flat request protocol"},
      {"{\"a\": 1 \"b\": 2}", "expected ',' or '}' in object"},
      {"{\"a\": 1} trailing", "trailing characters after the object"},
      {"{\"a\": \"unterminated}", "unterminated string"},
      {"{\"a\": \"bad\\x\"}", "invalid escape '\\x'"},
      {"{\"a\": \"bad\\u12\"}", "invalid \\u escape"},
      {"{\"a\": 1e}", "invalid number '1e'"},
      {"{\"a\": nope}", "expected a value"},
      {"{\"a\": 1", "expected ',' or '}' in object"},
  };
  for (const auto& [text, expected] : cases) {
    std::string error;
    EXPECT_FALSE(ParseJsonObject(text, &error).has_value()) << text;
    EXPECT_NE(error.find(expected), std::string::npos)
        << "input: " << text << "\ngot: " << error;
  }
}

TEST(Json, RejectsUnescapedControlCharacters) {
  std::string error;
  EXPECT_FALSE(ParseJsonObject("{\"a\": \"b\x01c\"}", &error).has_value());
  EXPECT_NE(error.find("unescaped control character"), std::string::npos);
}

// ---- Deadline ----

TEST(DeadlineTest, DefaultConstructedIsUnbounded) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.bounded());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.RemainingMs(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, AfterMsExpiresOnceTheBudgetIsSpent) {
  const Deadline generous = Deadline::AfterMs(60'000);
  EXPECT_TRUE(generous.bounded());
  EXPECT_FALSE(generous.Expired());
  EXPECT_GT(generous.RemainingMs(), 0.0);
  EXPECT_LE(generous.RemainingMs(), 60'000.0);

  const Deadline spent = Deadline::AfterMs(0);
  EXPECT_TRUE(spent.Expired());
  EXPECT_EQ(spent.RemainingMs(), 0.0);

  const Deadline tiny = Deadline::AfterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(tiny.Expired());
}

TEST(DeadlineTest, SoonerPicksTheTighterBudget) {
  const Deadline unbounded;
  const Deadline close = Deadline::AfterMs(10);
  const Deadline far = Deadline::AfterMs(60'000);
  // An unbounded deadline never wins against a bounded one.
  EXPECT_TRUE(Deadline::Sooner(unbounded, close).bounded());
  EXPECT_TRUE(Deadline::Sooner(close, unbounded).bounded());
  EXPECT_FALSE(Deadline::Sooner(unbounded, unbounded).bounded());
  EXPECT_LE(Deadline::Sooner(close, far).RemainingMs(), close.RemainingMs() + 1.0);
  EXPECT_LE(Deadline::Sooner(far, close).RemainingMs(), close.RemainingMs() + 1.0);
}

// ---- FaultInjector ----

// The process-global injector needs restoring even when an assertion fails.
struct FaultDisarmGuard {
  ~FaultDisarmGuard() { FaultInjector::Global().Disarm(); }
};

TEST(FaultInjectorTest, KnownSitesCoverTheServeStack) {
  const std::vector<std::string>& sites = FaultInjector::KnownSites();
  for (const char* site : {"trace_load", "plan_compile", "plan_cache_insert",
                           "worker_execute", "socket_write"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end()) << site;
  }
}

TEST(FaultInjectorTest, CertainFailEntryAlwaysFires) {
  FaultDisarmGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  injector.Disarm();
  std::string error;
  ASSERT_TRUE(injector.ArmSpec("plan_compile:fail", &error)) << error;
  EXPECT_TRUE(injector.armed());
  const uint64_t before = injector.fired();
  EXPECT_TRUE(injector.ShouldFail("plan_compile"));
  EXPECT_FALSE(injector.ShouldFail("trace_load"));  // other sites untouched
  EXPECT_EQ(injector.fired(), before + 1);
}

TEST(FaultInjectorTest, ZeroRateEntryNeverFires) {
  FaultDisarmGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  injector.Disarm();
  std::string error;
  ASSERT_TRUE(injector.ArmSpec("trace_load:fail:0", &error)) << error;
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(injector.ShouldFail("trace_load"));
  }
}

TEST(FaultInjectorTest, DelayEntriesReportTheirSleepBudget) {
  FaultDisarmGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  injector.Disarm();
  std::string error;
  ASSERT_TRUE(injector.ArmSpec("worker_execute:delay:1:2", &error)) << error;
  const FaultAction action = injector.Fire("worker_execute");
  EXPECT_FALSE(action.fail);  // delay stalls, it does not fail the site
  EXPECT_EQ(action.delay_ms, 2);
}

TEST(FaultInjectorTest, SpecStringRoundTripsAndDisarmClears) {
  FaultDisarmGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  injector.Disarm();
  std::string error;
  ASSERT_TRUE(injector.ArmSpec("plan_compile:fail:0.5,worker_execute:delay:1:3", &error)) << error;
  const std::string spec = injector.SpecString();
  EXPECT_NE(spec.find("plan_compile:fail"), std::string::npos);
  EXPECT_NE(spec.find("worker_execute:delay"), std::string::npos);
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.SpecString(), "");
  EXPECT_FALSE(injector.ShouldFail("plan_compile"));
}

}  // namespace
}  // namespace daydream

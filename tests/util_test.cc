#include <gtest/gtest.h>

#include <sstream>

#include "src/util/csv.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"
#include "src/util/table.h"
#include "src/util/time_units.h"

namespace daydream {
namespace {

// ---- time units ----

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(Us(1.0), 1000);
  EXPECT_EQ(Ms(1.0), 1000000);
  EXPECT_DOUBLE_EQ(ToUs(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToMs(2500000), 2.5);
  EXPECT_DOUBLE_EQ(ToSec(kSecond), 1.0);
}

TEST(TimeUnits, ByteConstants) {
  EXPECT_EQ(kMiB, 1024 * 1024);
  EXPECT_EQ(kGiB, 1024 * kMiB);
}

// ---- rng ----

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DeterministicFromKey) {
  Rng a(std::string_view("model/kernel"));
  Rng b(std::string_view("model/kernel"));
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentKeysDiffer) {
  Rng a(std::string_view("alpha"));
  Rng b(std::string_view("beta"));
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(3.0, 5.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, NormalMeanApproximates) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NextBelow) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(Rng, HashKeyStable) {
  EXPECT_EQ(Rng::HashKey("abc"), Rng::HashKey("abc"));
  EXPECT_NE(Rng::HashKey("abc"), Rng::HashKey("abd"));
}

// ---- stats ----

TEST(Stats, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Stats, Stddev) {
  EXPECT_DOUBLE_EQ(Stddev({2.0, 2.0, 2.0}), 0.0);
  EXPECT_NEAR(Stddev({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Stddev({5.0}), 0.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(Min({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, 1.0, 2.0}), 3.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({42.0}, 99), 42.0);
}

TEST(Stats, RelErrorPct) {
  EXPECT_DOUBLE_EQ(RelErrorPct(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(RelErrorPct(90, 100), 10.0);
  EXPECT_DOUBLE_EQ(RelErrorPct(0, 0), 0.0);
}

TEST(Stats, RunningStats) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

// ---- strings ----

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtil, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtil, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b"}, "+"), "a+b");
  EXPECT_EQ(StrJoin({}, "+"), "");
}

TEST(StringUtil, Predicates) {
  EXPECT_TRUE(StrContains("volta_sgemm_128x64", "sgemm"));
  EXPECT_FALSE(StrContains("elementwise", "sgemm"));
  EXPECT_TRUE(StartsWith("cudaLaunchKernel", "cuda"));
  EXPECT_FALSE(StartsWith("cuda", "cudaLaunch"));
  EXPECT_TRUE(EndsWith("kernel_rbn", "_rbn"));
  EXPECT_FALSE(EndsWith("rbn_kernel", "_rbn"));
}

TEST(StringUtil, ToLower) { EXPECT_EQ(ToLower("AbC"), "abc"); }

// ---- table ----

TEST(Table, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xx", "1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| a  | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| xx | 1           |"), std::string::npos);
}

TEST(Table, SeparatorRows) {
  TablePrinter t({"c"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.ToString();
  // header line + 3 separators around content = at least 4 '+--' lines.
  size_t count = 0;
  for (size_t pos = out.find("+-"); pos != std::string::npos; pos = out.find("+-", pos + 1)) {
    ++count;
  }
  EXPECT_GE(count, 4u);
}

// ---- csv ----

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(CsvWriter::Escape("a\rb"), "\"a\rb\"");
  EXPECT_EQ(CsvWriter::Escape("a\r\nb"), "\"a\r\nb\"");
}

TEST(Csv, ReportsOpenFailureInsteadOfAborting) {
  CsvWriter w("/nonexistent-dir/out.csv", {"x", "y"});
  EXPECT_FALSE(w.ok());
  w.AddRow({"1", "2"});  // inert, not a crash
  EXPECT_FALSE(w.ok());
}

TEST(Csv, WritesRows) {
  const std::string path = ::testing::TempDir() + "/test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    EXPECT_TRUE(w.ok());
    w.AddRow({"1", "2"});
    EXPECT_TRUE(w.ok());
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

}  // namespace
}  // namespace daydream

#include "src/parallel/pipeline.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/comm/collectives.h"
#include "src/kernels/layer_kernels.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

const char* ToString(PipelineScheduleKind kind) {
  switch (kind) {
    case PipelineScheduleKind::kGPipe:
      return "gpipe";
    case PipelineScheduleKind::k1F1B:
      return "1f1b";
  }
  return "?";
}

std::vector<PipelineLayerCost> EstimateLayerCosts(const ModelGraph& model,
                                                  const CostModel& cost_model) {
  std::vector<PipelineLayerCost> costs;
  costs.reserve(static_cast<size_t>(model.num_layers()));
  for (const Layer& layer : model.layers()) {
    PipelineLayerCost c;
    const LayerKernelSet kernels = ExpandLayer(layer);
    for (const KernelSpec& k : kernels.forward) {
      c.fwd += cost_model.KernelDuration(k, Precision::kFp32);
    }
    for (const KernelSpec& k : kernels.backward) {
      c.bwd += cost_model.KernelDuration(k, Precision::kFp32);
    }
    c.param_bytes = layer.param_bytes_fp32();
    c.activation_bytes = layer.output_elems * 4;
    costs.push_back(c);
  }
  return costs;
}

int StagePartition::StageOf(int layer) const {
  DD_CHECK(layer >= 0 && layer < num_layers) << "layer " << layer << " out of range";
  // first_layer is ascending: the stage is the last boundary <= layer.
  const auto it = std::upper_bound(first_layer.begin(), first_layer.end(), layer);
  return static_cast<int>(it - first_layer.begin()) - 1;
}

TimeNs StagePartition::StageCost(const std::vector<PipelineLayerCost>& costs, int stage) const {
  TimeNs total = 0;
  for (int l = layer_begin(stage); l < layer_end(stage); ++l) {
    total += costs[static_cast<size_t>(l)].compute();
  }
  return total;
}

int64_t StagePartition::StageParamBytes(const std::vector<PipelineLayerCost>& costs,
                                        int stage) const {
  int64_t total = 0;
  for (int l = layer_begin(stage); l < layer_end(stage); ++l) {
    total += costs[static_cast<size_t>(l)].param_bytes;
  }
  return total;
}

int64_t StagePartition::BoundaryActivationBytes(const std::vector<PipelineLayerCost>& costs,
                                                int stage) const {
  const int last = layer_end(stage) - 1;
  return costs[static_cast<size_t>(last)].activation_bytes;
}

bool StagePartition::Validate(std::string* error) const {
  auto fail = [error](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  if (num_layers <= 0) {
    return fail("num_layers must be positive");
  }
  if (first_layer.empty()) {
    return fail("no stages");
  }
  if (first_layer.front() != 0) {
    return fail("stage 0 must start at layer 0");
  }
  for (size_t s = 0; s < first_layer.size(); ++s) {
    if (first_layer[s] < 0 || first_layer[s] >= num_layers) {
      return fail(StrFormat("stage %zu starts at out-of-range layer %d", s, first_layer[s]));
    }
    if (s > 0 && first_layer[s] <= first_layer[s - 1]) {
      return fail(StrFormat("stage %zu boundary %d not ascending", s, first_layer[s]));
    }
  }
  return true;
}

StagePartition PartitionBalanced(const std::vector<PipelineLayerCost>& costs, int num_stages) {
  const int n = static_cast<int>(costs.size());
  DD_CHECK_GE(num_stages, 1) << "need at least one stage";
  DD_CHECK_GE(n, num_stages) << "more stages than layers";

  // prefix[i] = cost of layers [0, i).
  std::vector<TimeNs> prefix(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    prefix[static_cast<size_t>(i) + 1] = prefix[static_cast<size_t>(i)] + costs[static_cast<size_t>(i)].compute();
  }
  auto range_cost = [&](int begin, int end) {
    return prefix[static_cast<size_t>(end)] - prefix[static_cast<size_t>(begin)];
  };

  // best[s][i]: minimal bottleneck cost splitting layers [0, i) into s+1
  // stages, each non-empty. split[s][i]: first layer of the last stage.
  constexpr TimeNs kInf = std::numeric_limits<TimeNs>::max();
  const size_t num_s = static_cast<size_t>(num_stages);
  std::vector<std::vector<TimeNs>> best(num_s, std::vector<TimeNs>(static_cast<size_t>(n) + 1, kInf));
  std::vector<std::vector<int>> split(num_s, std::vector<int>(static_cast<size_t>(n) + 1, 0));
  for (int i = 1; i <= n; ++i) {
    best[0][static_cast<size_t>(i)] = range_cost(0, i);
  }
  for (int s = 1; s < num_stages; ++s) {
    for (int i = s + 1; i <= n; ++i) {
      // Last stage covers [j, i); previous s stages cover [0, j).
      for (int j = s; j < i; ++j) {
        const TimeNs left = best[static_cast<size_t>(s) - 1][static_cast<size_t>(j)];
        if (left == kInf) {
          continue;
        }
        const TimeNs candidate = std::max(left, range_cost(j, i));
        if (candidate < best[static_cast<size_t>(s)][static_cast<size_t>(i)]) {
          best[static_cast<size_t>(s)][static_cast<size_t>(i)] = candidate;
          split[static_cast<size_t>(s)][static_cast<size_t>(i)] = j;
        }
      }
    }
  }

  StagePartition partition;
  partition.num_layers = n;
  partition.first_layer.assign(static_cast<size_t>(num_stages), 0);
  int end = n;
  for (int s = num_stages - 1; s >= 1; --s) {
    const int begin = split[static_cast<size_t>(s)][static_cast<size_t>(end)];
    partition.first_layer[static_cast<size_t>(s)] = begin;
    end = begin;
  }
  std::string error;
  DD_CHECK(partition.Validate(&error)) << "balanced partition invalid: " << error;
  return partition;
}

StagePartition PartitionAtBoundaries(int num_layers, const std::vector<int>& boundaries) {
  StagePartition partition;
  partition.num_layers = num_layers;
  partition.first_layer.push_back(0);
  partition.first_layer.insert(partition.first_layer.end(), boundaries.begin(), boundaries.end());
  std::string error;
  DD_CHECK(partition.Validate(&error)) << "explicit partition invalid: " << error;
  return partition;
}

namespace {

// One compute slot of a stage's schedule.
struct ScheduleOp {
  Phase phase = Phase::kForward;  // kForward or kBackward
  int microbatch = 0;
};

// Per-stage op order. GPipe: every forward, then every backward. 1F1B: warm
// up with min(M, S - s) forwards, then alternate backward/forward until the
// forwards run out, then drain the remaining backwards. Backwards retire in
// micro-batch order under both schedules, which keeps the per-link gradient
// channels' sequential order consistent with the data dependencies.
std::vector<ScheduleOp> StageOps(PipelineScheduleKind kind, int stage, int num_stages,
                                 int microbatches) {
  std::vector<ScheduleOp> ops;
  ops.reserve(static_cast<size_t>(microbatches) * 2);
  if (kind == PipelineScheduleKind::kGPipe) {
    for (int m = 0; m < microbatches; ++m) {
      ops.push_back({Phase::kForward, m});
    }
    for (int m = 0; m < microbatches; ++m) {
      ops.push_back({Phase::kBackward, m});
    }
    return ops;
  }
  const int warmup = std::min(microbatches, num_stages - stage);
  int next_fwd = 0;
  int next_bwd = 0;
  for (; next_fwd < warmup; ++next_fwd) {
    ops.push_back({Phase::kForward, next_fwd});
  }
  while (next_fwd < microbatches) {
    ops.push_back({Phase::kBackward, next_bwd++});
    ops.push_back({Phase::kForward, next_fwd++});
  }
  while (next_bwd < microbatches) {
    ops.push_back({Phase::kBackward, next_bwd++});
  }
  return ops;
}

}  // namespace

TimeNs UniformPipelineMakespan(int num_stages, int num_microbatches, TimeNs fwd_per_microbatch,
                               TimeNs bwd_per_microbatch) {
  return static_cast<TimeNs>(num_microbatches + num_stages - 1) *
         (fwd_per_microbatch + bwd_per_microbatch);
}

int PipelineBubbleSlots(int num_stages) { return 2 * (num_stages - 1); }

PipelineBuild BuildPipelineGraph(const std::vector<PipelineLayerCost>& costs,
                                 const StagePartition& partition,
                                 const PipelineScheduleOptions& options) {
  std::string error;
  DD_CHECK(partition.Validate(&error)) << error;
  DD_CHECK_EQ(partition.num_layers, static_cast<int>(costs.size()));
  DD_CHECK_GE(options.num_microbatches, 1) << "need at least one micro-batch";
  DD_CHECK(options.microbatch_efficiency > 0.0) << "micro-batch efficiency must be positive";

  const int num_stages = partition.num_stages();
  const int microbatches = options.num_microbatches;

  PipelineBuild build;
  build.partition = partition;
  build.options = options;
  auto per_stage_ids = [&] {
    return std::vector<std::vector<TaskId>>(static_cast<size_t>(num_stages),
                                            std::vector<TaskId>(static_cast<size_t>(microbatches), kInvalidTask));
  };
  build.forward = per_stage_ids();
  build.backward = per_stage_ids();
  const size_t num_links = static_cast<size_t>(std::max(0, num_stages - 1));
  build.act_send.assign(num_links, std::vector<TaskId>(static_cast<size_t>(microbatches), kInvalidTask));
  build.grad_send.assign(num_links, std::vector<TaskId>(static_cast<size_t>(microbatches), kInvalidTask));
  build.weight_update.assign(static_cast<size_t>(num_stages), kInvalidTask);

  // Per-micro-batch compute durations, with the (optional) small-batch
  // efficiency discount.
  auto microbatch_time = [&](TimeNs full_batch) {
    const double scaled = static_cast<double>(full_batch) /
                          (static_cast<double>(microbatches) * options.microbatch_efficiency);
    return static_cast<TimeNs>(scaled);
  };
  std::vector<TimeNs> stage_fwd(static_cast<size_t>(num_stages), 0);
  std::vector<TimeNs> stage_bwd(static_cast<size_t>(num_stages), 0);
  int64_t total_param_bytes = 0;
  for (int s = 0; s < num_stages; ++s) {
    TimeNs fwd = 0;
    TimeNs bwd = 0;
    for (int l = partition.layer_begin(s); l < partition.layer_end(s); ++l) {
      fwd += costs[static_cast<size_t>(l)].fwd;
      bwd += costs[static_cast<size_t>(l)].bwd;
    }
    stage_fwd[static_cast<size_t>(s)] = microbatch_time(fwd);
    stage_bwd[static_cast<size_t>(s)] = microbatch_time(bwd);
    total_param_bytes += partition.StageParamBytes(costs, s);
  }

  DependencyGraph& graph = build.graph;
  const int ops_per_stage = 2 * microbatches + (options.weight_update_total > 0 ? 1 : 0);
  graph.Reserve(num_stages * 2 * ops_per_stage +
                static_cast<int>(num_links) * 2 * microbatches);

  // Lane insertion order IS the schedule; compute the per-stage op orders
  // once and emit CPU launches, GPU compute, then the per-link transfers in
  // that order so LinkSequential() pins each lane to the interleaving.
  std::vector<std::vector<ScheduleOp>> stage_ops(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    stage_ops[static_cast<size_t>(s)] =
        StageOps(options.schedule, s, num_stages, microbatches);
  }

  // CPU dispatch lanes: one launch task per compute op, same order.
  std::vector<std::vector<TaskId>> launch_of(static_cast<size_t>(num_stages));
  for (int s = 0; s < num_stages; ++s) {
    auto& launches = launch_of[static_cast<size_t>(s)];
    for (const ScheduleOp& op : stage_ops[static_cast<size_t>(s)]) {
      Task launch;
      launch.type = TaskType::kCpu;
      launch.api = ApiKind::kLaunchKernel;
      launch.name = StrFormat("launch_%s_s%d_m%d", op.phase == Phase::kForward ? "fwd" : "bwd", s,
                              op.microbatch);
      launch.thread = ExecThread::Cpu(s);
      launch.duration = options.launch_overhead;
      launch.phase = op.phase;
      launches.push_back(graph.AddTask(std::move(launch)));
    }
    if (options.weight_update_total > 0) {
      Task launch;
      launch.type = TaskType::kCpu;
      launch.api = ApiKind::kLaunchKernel;
      launch.name = StrFormat("launch_wu_s%d", s);
      launch.thread = ExecThread::Cpu(s);
      launch.duration = options.launch_overhead;
      launch.phase = Phase::kWeightUpdate;
      launches.push_back(graph.AddTask(std::move(launch)));
    }
  }

  // GPU compute lanes.
  for (int s = 0; s < num_stages; ++s) {
    for (const ScheduleOp& op : stage_ops[static_cast<size_t>(s)]) {
      Task compute;
      compute.type = TaskType::kGpu;
      compute.name = StrFormat("%s_s%d_m%d", op.phase == Phase::kForward ? "fwd" : "bwd", s,
                               op.microbatch);
      compute.thread = ExecThread::Gpu(s);
      compute.duration = op.phase == Phase::kForward ? stage_fwd[static_cast<size_t>(s)]
                                                     : stage_bwd[static_cast<size_t>(s)];
      compute.phase = op.phase;
      compute.layer_id = partition.layer_begin(s);
      const TaskId id = graph.AddTask(std::move(compute));
      auto& table = op.phase == Phase::kForward ? build.forward : build.backward;
      table[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)] = id;
    }
    if (options.weight_update_total > 0) {
      Task wu;
      wu.type = TaskType::kGpu;
      wu.name = StrFormat("weight_update_s%d", s);
      wu.thread = ExecThread::Gpu(s);
      wu.phase = Phase::kWeightUpdate;
      wu.layer_id = partition.layer_begin(s);
      wu.duration = total_param_bytes > 0
                        ? options.weight_update_total * partition.StageParamBytes(costs, s) /
                              total_param_bytes
                        : options.weight_update_total / num_stages;
      build.weight_update[static_cast<size_t>(s)] = graph.AddTask(std::move(wu));
    }
  }

  // Per-link transfer lanes, micro-batch order (consistent with both schedule
  // kinds: forwards and backwards retire in micro-batch order on every stage).
  for (size_t link = 0; link < num_links; ++link) {
    const int64_t payload =
        build.partition.BoundaryActivationBytes(costs, static_cast<int>(link)) / microbatches;
    const TimeNs wire = PsTransferTime(payload, options.network);
    for (int m = 0; m < microbatches; ++m) {
      Task send;
      send.type = TaskType::kComm;
      send.comm = CommKind::kP2p;
      send.name = StrFormat("act_send_l%zu_m%d", link, m);
      send.thread = ExecThread::Comm(static_cast<int>(link));
      send.duration = wire;
      send.bytes = payload;
      send.phase = Phase::kForward;
      build.act_send[link][static_cast<size_t>(m)] = graph.AddTask(std::move(send));
    }
    for (int m = 0; m < microbatches; ++m) {
      Task send;
      send.type = TaskType::kComm;
      send.comm = CommKind::kP2p;
      send.name = StrFormat("grad_send_l%zu_m%d", link, m);
      send.thread = ExecThread::Comm(kPipelineGradChannelBase + static_cast<int>(link));
      send.duration = wire;  // activation-gradients mirror the activation payload
      send.bytes = payload;
      send.phase = Phase::kBackward;
      build.grad_send[link][static_cast<size_t>(m)] = graph.AddTask(std::move(send));
    }
  }

  // Sequential edges along every lane: this pins the schedule interleaving.
  graph.LinkSequential();

  // Semantic edges.
  for (int s = 0; s < num_stages; ++s) {
    const auto& ops = stage_ops[static_cast<size_t>(s)];
    for (size_t i = 0; i < ops.size(); ++i) {
      const ScheduleOp& op = ops[i];
      const TaskId compute = op.phase == Phase::kForward
                                 ? build.forward[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)]
                                 : build.backward[static_cast<size_t>(s)][static_cast<size_t>(op.microbatch)];
      // Launch correlation.
      graph.AddEdge(launch_of[static_cast<size_t>(s)][i], compute);
    }
    if (build.weight_update[static_cast<size_t>(s)] != kInvalidTask) {
      graph.AddEdge(launch_of[static_cast<size_t>(s)].back(),
                    build.weight_update[static_cast<size_t>(s)]);
    }
  }
  for (size_t link = 0; link < num_links; ++link) {
    const int s = static_cast<int>(link);
    for (int m = 0; m < microbatches; ++m) {
      const size_t mi = static_cast<size_t>(m);
      // Activations: fwd(s, m) -> send -> fwd(s+1, m).
      graph.AddEdge(build.forward[static_cast<size_t>(s)][mi], build.act_send[link][mi]);
      graph.AddEdge(build.act_send[link][mi], build.forward[static_cast<size_t>(s) + 1][mi]);
      // Activation gradients: bwd(s+1, m) -> send -> bwd(s, m).
      graph.AddEdge(build.backward[static_cast<size_t>(s) + 1][mi], build.grad_send[link][mi]);
      graph.AddEdge(build.grad_send[link][mi], build.backward[static_cast<size_t>(s)][mi]);
    }
  }

  DD_CHECK(build.graph.Validate(&error)) << "pipeline graph invalid: " << error;
  return build;
}

}  // namespace daydream

// Pipeline-parallel what-if machinery: stage partitioning over a layer DAG
// and GPipe / 1F1B micro-batch schedules emitted as dependency-graph lanes.
//
// Pipeline parallelism (GPipe, Huang et al.; PipeDream's 1F1B, Harlap et al.)
// splits the model into S contiguous stages, each owning one GPU, and streams
// M micro-batches through them. Whether it beats data parallelism for a given
// model/cluster is exactly the kind of question Daydream targets: answerable
// from a single-GPU profile, before anyone implements the partitioned trainer.
//
// The subsystem has three parts:
//   1. per-layer costs (PipelineLayerCost) — estimated from the model via the
//      roofline kernel cost model, or measured from a profiled dependency
//      graph (src/core/optimizations/pipeline_transform.h does the latter);
//   2. a stage partitioner — balanced-by-cost (exact contiguous-partition DP
//      minimizing the bottleneck stage) or explicit layer boundaries;
//   3. a schedule builder that expands (partition, schedule kind, M) into a
//      DependencyGraph: per-stage GPU streams and CPU dispatch threads,
//      micro-batch compute tasks in schedule order, and inter-stage
//      activation/gradient P2P transfers on per-link communication channels
//      priced by comm/network_spec wire time.
//
// The emitted graph is a normal Daydream graph: both simulator engines run
// it, SimPlan compiles it, and SweepRunner treats it as one more what-if case.
#ifndef SRC_PARALLEL_PIPELINE_H_
#define SRC_PARALLEL_PIPELINE_H_

#include <string>
#include <vector>

#include "src/comm/network_spec.h"
#include "src/core/dependency_graph.h"
#include "src/kernels/cost_model.h"
#include "src/models/model_graph.h"

namespace daydream {

enum class PipelineScheduleKind {
  kGPipe,  // all forwards, then all backwards (per stage)
  k1F1B,   // warm-up forwards, then alternate one-backward-one-forward
};

const char* ToString(PipelineScheduleKind kind);

// Per-layer inputs to the partitioner and schedule builder. Times are for the
// FULL mini-batch; the schedule builder divides by the micro-batch count.
struct PipelineLayerCost {
  TimeNs fwd = 0;
  TimeNs bwd = 0;
  int64_t param_bytes = 0;       // parameter/gradient volume owned by the layer
  int64_t activation_bytes = 0;  // full-batch activation output (the P2P payload)

  TimeNs compute() const { return fwd + bwd; }
};

// Model-only estimate via the roofline cost model: every kernel of the
// layer's forward/backward expansion priced at FP32.
std::vector<PipelineLayerCost> EstimateLayerCosts(const ModelGraph& model,
                                                  const CostModel& cost_model);

// Contiguous assignment of layers to stages. Stage s covers the half-open
// layer range [first_layer[s], first_layer[s+1]) (the last stage ends at
// num_layers), so every layer belongs to exactly one stage by construction —
// Validate() checks the representation invariants that guarantee it.
struct StagePartition {
  std::vector<int> first_layer;  // ascending; first_layer[0] == 0
  int num_layers = 0;

  int num_stages() const { return static_cast<int>(first_layer.size()); }
  int layer_begin(int stage) const { return first_layer[static_cast<size_t>(stage)]; }
  int layer_end(int stage) const {
    return stage + 1 < num_stages() ? first_layer[static_cast<size_t>(stage) + 1] : num_layers;
  }
  int StageOf(int layer) const;

  // Sum of fwd+bwd cost over the stage's layers.
  TimeNs StageCost(const std::vector<PipelineLayerCost>& costs, int stage) const;
  int64_t StageParamBytes(const std::vector<PipelineLayerCost>& costs, int stage) const;
  // Activation payload crossing the link after `stage` (the last layer's
  // full-batch activation output).
  int64_t BoundaryActivationBytes(const std::vector<PipelineLayerCost>& costs, int stage) const;

  // first_layer[0] == 0, strictly ascending, all within [0, num_layers), and
  // num_layers > 0 — together: every layer is in exactly one stage.
  bool Validate(std::string* error = nullptr) const;
};

// Balanced-by-cost: the contiguous partition minimizing the maximum per-stage
// fwd+bwd cost (exact interval-partition DP, O(S * L^2)). Requires
// 1 <= num_stages <= costs.size(). Ties prefer earlier boundaries.
StagePartition PartitionBalanced(const std::vector<PipelineLayerCost>& costs, int num_stages);

// Explicit mode: `boundaries` lists the first layer of stages 1..S-1 (strictly
// ascending, in (0, num_layers)). An empty list yields a single stage.
StagePartition PartitionAtBoundaries(int num_layers, const std::vector<int>& boundaries);

// Lane layout of the emitted graph, for S stages:
//   ExecThread::Gpu(s)               stage s compute stream
//   ExecThread::Cpu(s)               stage s dispatch thread
//   ExecThread::Comm(s)              activations over link s (stage s -> s+1)
//   ExecThread::Comm(kPipelineGradChannelBase + s)
//                                    gradients over link s (stage s+1 -> s)
// Links are full-duplex: each direction is its own serialized channel.
inline constexpr int kPipelineGradChannelBase = 1000;

struct PipelineScheduleOptions {
  int num_microbatches = 4;
  PipelineScheduleKind schedule = PipelineScheduleKind::k1F1B;
  // Inter-stage P2P link; transfers are priced as wire time + latency
  // (PsTransferTime), one transfer at a time per direction.
  NetworkSpec network;
  // CPU-side dispatch cost per compute task (cudaLaunchKernel-sized).
  TimeNs launch_overhead = 7 * kMicrosecond;
  // Total optimizer-step GPU time for the whole model, split across stages
  // proportionally to their parameter bytes. 0 = no weight-update tasks.
  TimeNs weight_update_total = 0;
  // Compute-efficiency discount for small micro-batches: per-micro-batch
  // compute time is (full_batch_time / M) / efficiency. 1.0 = perfectly
  // linear micro-batch scaling (optimistic; documented in docs/pipeline.md).
  double microbatch_efficiency = 1.0;
};

// The emitted graph plus the task-id maps tests and analyses need.
struct PipelineBuild {
  DependencyGraph graph;
  StagePartition partition;
  PipelineScheduleOptions options;
  // [stage][microbatch] -> GPU compute task id.
  std::vector<std::vector<TaskId>> forward;
  std::vector<std::vector<TaskId>> backward;
  // [link][microbatch] -> communication task id (links: 0..S-2).
  std::vector<std::vector<TaskId>> act_send;
  std::vector<std::vector<TaskId>> grad_send;
  // Per-stage optimizer task (kInvalidTask when weight_update_total == 0).
  std::vector<TaskId> weight_update;
};

// Expands (costs, partition, options) into the pipeline dependency graph.
// Task order within each lane *is* the schedule: LinkSequential pins it, so
// the simulator replays exactly the requested interleaving.
PipelineBuild BuildPipelineGraph(const std::vector<PipelineLayerCost>& costs,
                                 const StagePartition& partition,
                                 const PipelineScheduleOptions& options);

// Closed-form bubble model (uniform stage cost f+b, zero comm/launch): both
// GPipe and non-interleaved 1F1B idle for (S-1) forward and (S-1) backward
// slots per stage, so the iteration spans (M + S - 1) * (f + b) — verified
// against the simulator in tests/pipeline_test.cc.
TimeNs UniformPipelineMakespan(int num_stages, int num_microbatches, TimeNs fwd_per_microbatch,
                               TimeNs bwd_per_microbatch);
// Idle compute slots per stage under uniform costs: 2 * (S - 1).
int PipelineBubbleSlots(int num_stages);

}  // namespace daydream

#endif  // SRC_PARALLEL_PIPELINE_H_

#include "src/util/csv.h"

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  if (!out_.good()) {
    DD_LOG(Error) << "cannot open " << path;
    return;
  }
  AddRow(header);
}

CsvWriter::~CsvWriter() { out_.flush(); }

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  DD_CHECK_EQ(cells.size(), columns_);
  if (!ok()) {
    return;
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ",";
    }
    out_ << Escape(cells[i]);
  }
  out_ << "\n";
}

std::string CsvWriter::Escape(const std::string& cell) {
  if (!StrContains(cell, ",") && !StrContains(cell, "\"") && !StrContains(cell, "\n") &&
      !StrContains(cell, "\r")) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += "\"";
  return out;
}

}  // namespace daydream

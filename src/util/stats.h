// Small descriptive-statistics helpers used by benches and tests.
#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace daydream {

double Mean(const std::vector<double>& xs);
double Stddev(const std::vector<double>& xs);
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);
// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::vector<double> xs, double p);

// Relative error |measured - reference| / reference, in percent.
double RelErrorPct(double measured, double reference);

// Online accumulator for mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace daydream

#endif  // SRC_UTIL_STATS_H_

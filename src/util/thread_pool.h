// A shared work-crew for nested data parallelism.
//
// The sharded dispatch engine (src/core/event_engine.cc) fans each
// synchronization round out over shards, and SweepRunner fans cases out over
// workers — and a case may itself run sharded. Naive per-layer thread
// spawning would multiply: `cases x shards` threads for a budget of
// `hardware_concurrency`. This pool makes the budget explicit and nesting
// safe:
//   - ParallelFor is caller-participating: the calling thread claims indices
//     alongside the pool's workers, so a ParallelFor issued from inside
//     another ParallelFor body (or from a pool with zero threads) always
//     completes — the caller alone can drain its own job. No job ever waits
//     on a free worker, so nesting cannot deadlock.
//   - Workers steal indices from any active job, so concurrent ParallelFor
//     calls from different threads (sweep cases running sharded dispatch)
//     share the same physical threads instead of oversubscribing.
//
// Completion counts are published under the pool mutex, which is what makes
// the join a happens-before edge: every write a worker made while running
// body(i) is visible to the caller when ParallelFor returns. The sharded
// engine's phase barriers lean on exactly that guarantee.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace daydream {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped at 0). A zero-thread pool is valid and
  // useful: ParallelFor degrades to an inline serial loop.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs body(i) for every i in [0, n), returning once all n calls finished.
  // The caller participates, so this is safe to call from inside another
  // ParallelFor body on the same pool. Bodies must not throw.
  void ParallelFor(int n, const std::function<void(int)>& body);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  struct Job {
    Job(int size, const std::function<void(int)>& fn) : n(size), body(fn) {}
    const int n;
    const std::function<void(int)>& body;  // lives across ParallelFor only
    std::atomic<int> next{0};   // next unclaimed index
    int completed = 0;          // guarded by the pool mutex
    std::condition_variable done;
  };

  // Claims and runs indices of `job` until none remain; publishes completions
  // under the lock. Returns with the lock held.
  void RunIndices(std::unique_lock<std::mutex>& lock, const std::shared_ptr<Job>& job);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;  // jobs with unclaimed indices
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace daydream

#endif  // SRC_UTIL_THREAD_POOL_H_

#include "src/util/rng.h"

#include <cmath>

namespace daydream {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

Rng::Rng(std::string_view key) : Rng(HashKey(key)) {}

uint64_t Rng::HashKey(std::string_view key) {
  // FNV-1a, 64-bit.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Normal(double mean, double stddev) {
  // Box–Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::NextBelow(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  return NextU64() % n;
}

}  // namespace daydream

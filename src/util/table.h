// ASCII table printer for bench output (paper-style result tables).
#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace daydream {

// Collects rows of cells and prints them with aligned columns:
//
//   TablePrinter t({"model", "baseline(ms)", "pred(ms)", "err(%)"});
//   t.AddRow({"ResNet-50", "201.3", "199.8", "0.7"});
//   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Inserts a horizontal separator line before the next row.
  void AddSeparator();

  void Print(std::ostream& os) const;
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace daydream

#endif  // SRC_UTIL_TABLE_H_

#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace daydream {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(xs);
  double accum = 0.0;
  for (double x : xs) {
    accum += (x - mean) * (x - mean);
  }
  return std::sqrt(accum / static_cast<double>(xs.size() - 1));
}

double Min(const std::vector<double>& xs) {
  DD_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  DD_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Percentile(std::vector<double> xs, double p) {
  DD_CHECK(!xs.empty());
  DD_CHECK_GE(p, 0.0);
  DD_CHECK_LE(p, 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) {
    return xs[0];
  }
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double RelErrorPct(double measured, double reference) {
  if (reference == 0.0) {
    return measured == 0.0 ? 0.0 : 100.0;
  }
  return std::abs(measured - reference) / std::abs(reference) * 100.0;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace daydream

// Deadline: a wall-clock budget carried through the serve request path.
//
// A request admitted to `daydream serve` gets a deadline (the daemon-wide
// --request-timeout-ms, possibly tightened by the request's own `timeout_ms`
// field). The deadline is checked at cheap, well-defined points — at queue
// dequeue before any work starts, between pipeline stages inside
// TraceSession::Predict, between cases inside SweepRunner::Run, and between
// synchronization horizons inside the sharded dispatch engine — so a request
// that ran out of budget answers a `deadline_exceeded` envelope and frees its
// worker instead of hogging it for the rest of an unbounded simulation.
//
// The default-constructed Deadline is unbounded (never expires): callers that
// do not care — the CLI, tests, benchmarks — pass it through for free.
#ifndef SRC_UTIL_DEADLINE_H_
#define SRC_UTIL_DEADLINE_H_

#include <chrono>
#include <limits>

namespace daydream {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  // Unbounded: Expired() is always false.
  Deadline() = default;

  static Deadline AfterMs(long long ms) {
    Deadline d;
    d.bounded_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool bounded() const { return bounded_; }

  bool Expired() const { return bounded_ && Clock::now() >= at_; }

  // Milliseconds left; +inf when unbounded, clamped at 0 once expired.
  double RemainingMs() const {
    if (!bounded_) {
      return std::numeric_limits<double>::infinity();
    }
    const auto left = std::chrono::duration<double, std::milli>(at_ - Clock::now()).count();
    return left > 0.0 ? left : 0.0;
  }

  // The tighter of the two (an unbounded deadline never wins).
  static Deadline Sooner(const Deadline& a, const Deadline& b) {
    if (!a.bounded_) {
      return b;
    }
    if (!b.bounded_) {
      return a;
    }
    return a.at_ <= b.at_ ? a : b;
  }

 private:
  bool bounded_ = false;
  Clock::time_point at_{};
};

}  // namespace daydream

#endif  // SRC_UTIL_DEADLINE_H_

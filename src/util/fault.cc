#include "src/util/fault.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "src/util/string_util.h"

namespace daydream {

namespace {

// Splits on `sep`, keeping empty tokens (a trailing ':' is a spec error the
// parser should see, not silently swallow).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

}  // namespace

const std::vector<std::string>& FaultInjector::KnownSites() {
  static const std::vector<std::string> kSites = {
      "trace_load", "plan_compile", "plan_cache_insert", "worker_execute", "socket_write",
  };
  return kSites;
}

FaultInjector::FaultInjector() : rng_(0x6461796472u /* fixed seed: deterministic in distribution */) {
  const char* env = std::getenv("DAYDREAM_FAULTS");
  if (env != nullptr && env[0] != '\0') {
    std::string error;
    if (!ArmSpec(env, &error)) {
      std::cerr << "DAYDREAM_FAULTS: " << error << "\n";
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

bool FaultInjector::ArmSpec(const std::string& spec, std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  for (const std::string& token : Split(spec, ',')) {
    if (token.empty()) {
      continue;  // tolerate "a,,b" and trailing commas
    }
    const std::vector<std::string> parts = Split(token, ':');
    if (parts.size() < 2 || parts.size() > 4) {
      return fail("bad fault entry '" + token + "' (expected site:kind[:rate[:delay_ms]])");
    }
    Entry entry;
    entry.site = parts[0];
    bool known = false;
    for (const std::string& site : KnownSites()) {
      known = known || site == entry.site;
    }
    if (!known) {
      std::string sites;
      for (const std::string& site : KnownSites()) {
        sites += sites.empty() ? site : ", " + site;
      }
      return fail("unknown fault site '" + entry.site + "' (sites: " + sites + ")");
    }
    if (parts[1] == "fail") {
      entry.is_delay = false;
    } else if (parts[1] == "delay") {
      entry.is_delay = true;
    } else {
      return fail("bad fault kind '" + parts[1] + "' in '" + token + "' (kinds: fail, delay)");
    }
    if (parts.size() >= 3) {
      char* end = nullptr;
      entry.rate = std::strtod(parts[2].c_str(), &end);
      if (parts[2].empty() || end == nullptr || *end != '\0' || entry.rate < 0.0 ||
          entry.rate > 1.0) {
        return fail("bad fault rate '" + parts[2] + "' in '" + token + "' (expected 0..1)");
      }
    }
    if (parts.size() == 4) {
      char* end = nullptr;
      const long ms = std::strtol(parts[3].c_str(), &end, 10);
      if (parts[3].empty() || end == nullptr || *end != '\0' || ms < 0 || ms > 60000) {
        return fail("bad fault delay '" + parts[3] + "' in '" + token +
                    "' (expected 0..60000 ms)");
      }
      entry.delay_ms = static_cast<int>(ms);
    }
    std::lock_guard<std::mutex> lock(mu_);
    entries_.push_back(std::move(entry));
  }
  return true;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

FaultAction FaultInjector::Fire(const std::string& site) {
  FaultAction action;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : entries_) {
    if (entry.site != site) {
      continue;
    }
    if (entry.rate < 1.0) {
      std::uniform_real_distribution<double> roll(0.0, 1.0);
      if (roll(rng_) >= entry.rate) {
        continue;
      }
    }
    ++fired_;
    if (entry.is_delay) {
      action.delay_ms += entry.delay_ms;
    } else {
      action.fail = true;
    }
  }
  return action;
}

bool FaultInjector::ShouldFail(const std::string& site) {
  const FaultAction action = Fire(site);
  if (action.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(action.delay_ms));
  }
  return action.fail;
}

uint64_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !entries_.empty();
}

std::string FaultInjector::SpecString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string spec;
  for (const Entry& entry : entries_) {
    if (!spec.empty()) {
      spec += ",";
    }
    spec += StrFormat("%s:%s:%g", entry.site.c_str(), entry.is_delay ? "delay" : "fail",
                      entry.rate);
    if (entry.is_delay) {
      spec += StrFormat(":%d", entry.delay_ms);
    }
  }
  return spec;
}

}  // namespace daydream

// Minimal JSON parsing for the service protocol (docs/serve.md).
//
// `daydream serve` speaks line-delimited JSON: every request is one *flat*
// JSON object — string / number / boolean / null values only, no nested
// containers. That restriction keeps the parser small enough to audit against
// hostile input (the daemon reads untrusted bytes off a socket) while still
// covering the whole protocol; responses, which we only ever *write*, are
// free to nest. Anything outside the subset — nesting, duplicate keys,
// trailing garbage, bad escapes, unterminated strings — is a parse error
// with a message naming the offending construct, never a crash or a
// silently-misread request.
#ifndef SRC_UTIL_JSON_H_
#define SRC_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace daydream {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  // The untouched source token for numbers, so an echoed field (e.g. a
  // request id of 7) round-trips as "7", not "7.000000".
  std::string raw;

  // Exact integer decode from the preserved source token. `number` is a
  // double, which silently rounds int64 values past 2^53 — precisely the
  // range of nanosecond timestamps and CUPTI correlation ids the importers
  // carry. Returns nullopt unless the token is a plain decimal integer
  // (no fraction, no exponent) that fits int64.
  std::optional<int64_t> AsInt64() const;
};

class JsonObject {
 public:
  bool Has(const std::string& key) const { return fields_.count(key) != 0; }
  const JsonValue* Find(const std::string& key) const;

  // Typed getters with fallbacks; a present-but-differently-typed field
  // returns the fallback (callers that must distinguish use Find).
  std::string GetString(const std::string& key, const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0.0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;
  // Exact int64 getter (see JsonValue::AsInt64): the fallback also covers
  // present-but-fractional ("1.5") and out-of-range tokens.
  int64_t GetInt64(const std::string& key, int64_t fallback = 0) const;

  const std::map<std::string, JsonValue>& fields() const { return fields_; }

  void Set(std::string key, JsonValue value) { fields_[std::move(key)] = std::move(value); }

 private:
  std::map<std::string, JsonValue> fields_;
};

// Parses one flat JSON object. Returns nullopt and sets *error (when given)
// on anything outside the subset described above.
std::optional<JsonObject> ParseJsonObject(std::string_view text, std::string* error = nullptr);

}  // namespace daydream

#endif  // SRC_UTIL_JSON_H_

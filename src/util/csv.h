// CSV writer so bench results can be post-processed / plotted externally.
#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace daydream {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Fails the process if
  // the file cannot be created (bench outputs are required artifacts).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  void AddRow(const std::vector<std::string>& cells);

  static std::string Escape(const std::string& cell);

 private:
  std::ofstream out_;
  size_t columns_;
};

}  // namespace daydream

#endif  // SRC_UTIL_CSV_H_

// CSV writer so bench results can be post-processed / plotted externally.
#ifndef SRC_UTIL_CSV_H_
#define SRC_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

namespace daydream {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Check ok() afterwards:
  // an unopenable path leaves the writer inert (AddRow becomes a no-op)
  // instead of aborting, so callers can surface the failure themselves.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;
  ~CsvWriter();

  // False when the output file could not be opened or a write failed.
  bool ok() const { return out_.good(); }

  // Pushes buffered rows to disk; call before reading ok() as a final
  // verdict (the destructor flushes too, but by then it is too late to
  // report a flush-time failure).
  void Flush() { out_.flush(); }

  void AddRow(const std::vector<std::string>& cells);

  static std::string Escape(const std::string& cell);

 private:
  std::ofstream out_;
  size_t columns_;
};

}  // namespace daydream

#endif  // SRC_UTIL_CSV_H_

#include "src/util/json_stream.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace daydream {

JsonStreamTokenizer::JsonStreamTokenizer(std::istream& in) : JsonStreamTokenizer(in, Limits()) {}

JsonStreamTokenizer::JsonStreamTokenizer(std::istream& in, Limits limits)
    : in_(in), limits_(limits) {}

int JsonStreamTokenizer::GetChar() {
  const int c = in_.rdbuf() != nullptr ? in_.rdbuf()->sbumpc() : -1;
  if (c == std::char_traits<char>::eof()) {
    return -1;
  }
  ++offset_;
  return c;
}

int JsonStreamTokenizer::PeekChar() {
  const int c = in_.rdbuf() != nullptr ? in_.rdbuf()->sgetc() : -1;
  return c == std::char_traits<char>::eof() ? -1 : c;
}

void JsonStreamTokenizer::SkipSpace() {
  int c;
  while ((c = PeekChar()) == ' ' || c == '\t' || c == '\n' || c == '\r') {
    GetChar();
  }
}

void JsonStreamTokenizer::NoteBuffered(size_t bytes) {
  const size_t total = bytes + stack_.size();
  if (total > max_buffered_) {
    max_buffered_ = total;
  }
}

const JsonStreamTokenizer::Token& JsonStreamTokenizer::Fail(const std::string& message) {
  token_.kind = TokenKind::kError;
  token_.text = message;
  token_.boolean = false;
  return token_;
}

const JsonStreamTokenizer::Token& JsonStreamTokenizer::Emit(TokenKind kind, std::string text,
                                                            bool boolean) {
  NoteBuffered(text.size());
  token_.kind = kind;
  token_.text = std::move(text);
  token_.boolean = boolean;
  return token_;
}

// Decodes the remainder of a string after the opening '"'. Same escape rules
// as the flat parser (src/util/json.cc); decoded size capped by the limits.
bool JsonStreamTokenizer::LexString(std::string* out) {
  out->clear();
  while (true) {
    const int raw = GetChar();
    if (raw < 0) {
      Fail("unterminated string");
      return false;
    }
    const unsigned char c = static_cast<unsigned char>(raw);
    if (c == '"') {
      NoteBuffered(out->size());
      return true;
    }
    if (c < 0x20) {
      Fail("unescaped control character in string");
      return false;
    }
    if (out->size() >= limits_.max_string_bytes) {
      Fail("string exceeds the size limit");
      return false;
    }
    if (c != '\\') {
      out->push_back(static_cast<char>(c));
      continue;
    }
    const int esc = GetChar();
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const int h = GetChar();
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            Fail(h < 0 ? "truncated \\u escape" : "invalid \\u escape");
            return false;
          }
        }
        // BMP-only UTF-8 encode, matching the flat parser: surrogate halves
        // pass through as-is rather than corrupting the text.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        Fail(esc < 0 ? "truncated escape sequence"
                     : std::string("invalid escape '\\") + static_cast<char>(esc) + "'");
        return false;
    }
  }
}

bool JsonStreamTokenizer::LexNumber(std::string* out, int first) {
  out->clear();
  out->push_back(static_cast<char>(first));
  int c;
  while ((c = PeekChar()) >= 0 &&
         (std::isdigit(c) || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')) {
    if (out->size() >= limits_.max_number_bytes) {
      Fail("number exceeds the size limit");
      return false;
    }
    out->push_back(static_cast<char>(GetChar()));
  }
  // Lexing is permissive; strtod over the whole token is the validator,
  // exactly as in the flat parser.
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(out->c_str(), &end);
  if (end != out->c_str() + out->size() || !std::isfinite(parsed)) {
    Fail("invalid number '" + *out + "'");
    return false;
  }
  return true;
}

bool JsonStreamTokenizer::LexWord(std::string_view word, int first) {
  if (first != word[0]) {
    Fail("expected a value");
    return false;
  }
  for (size_t i = 1; i < word.size(); ++i) {
    if (GetChar() != word[i]) {
      Fail("invalid literal");
      return false;
    }
  }
  return true;
}

// Reads `"key":` and emits the kKey token. The caller consumed the quote.
const JsonStreamTokenizer::Token& JsonStreamTokenizer::EmitKey() {
  std::string key;
  if (!LexString(&key)) {
    return token_;
  }
  SkipSpace();
  if (GetChar() != ':') {
    return Fail("expected ':' after key '" + key + "'");
  }
  state_ = State::kValueStart;
  return Emit(TokenKind::kKey, std::move(key));
}

const JsonStreamTokenizer::Token& JsonStreamTokenizer::Next() {
  if (token_.kind == TokenKind::kError) {
    return token_;  // sticky
  }
  switch (state_) {
    case State::kAfterValue: {
      SkipSpace();
      if (stack_.empty()) {
        if (PeekChar() >= 0) {
          return Fail("trailing characters after the document");
        }
        return Emit(TokenKind::kEnd);
      }
      const int c = GetChar();
      if (c < 0) {
        return Fail("unexpected end of input");
      }
      if (stack_.back() == Context::kObject) {
        if (c == '}') {
          stack_.pop_back();
          return Emit(TokenKind::kEndObject);
        }
        if (c != ',') {
          return Fail("expected ',' or '}' in object");
        }
        SkipSpace();
        if (GetChar() != '"') {
          return Fail("expected a string key");
        }
        return EmitKey();
      }
      if (c == ']') {
        stack_.pop_back();
        return Emit(TokenKind::kEndArray);
      }
      if (c != ',') {
        return Fail("expected ',' or ']' in array");
      }
      break;  // fall through to the next array element
    }
    case State::kObjectFirst: {
      SkipSpace();
      const int c = GetChar();
      if (c == '}') {
        stack_.pop_back();
        state_ = State::kAfterValue;
        return Emit(TokenKind::kEndObject);
      }
      if (c != '"') {
        return Fail(c < 0 ? "unexpected end of input" : "expected a string key");
      }
      return EmitKey();
    }
    case State::kArrayFirst:
      SkipSpace();
      if (PeekChar() == ']') {
        GetChar();
        stack_.pop_back();
        state_ = State::kAfterValue;
        return Emit(TokenKind::kEndArray);
      }
      break;  // fall through to the first array element
    case State::kValueStart:
      break;
  }

  // A value starts here.
  SkipSpace();
  const int c = GetChar();
  if (c < 0) {
    return Fail("unexpected end of input");
  }
  switch (c) {
    case '{':
      if (stack_.size() >= limits_.max_depth) {
        return Fail("nesting exceeds the depth limit");
      }
      stack_.push_back(Context::kObject);
      NoteBuffered(0);
      state_ = State::kObjectFirst;
      return Emit(TokenKind::kBeginObject);
    case '[':
      if (stack_.size() >= limits_.max_depth) {
        return Fail("nesting exceeds the depth limit");
      }
      stack_.push_back(Context::kArray);
      NoteBuffered(0);
      state_ = State::kArrayFirst;
      return Emit(TokenKind::kBeginArray);
    case '"': {
      std::string text;
      if (!LexString(&text)) {
        return token_;
      }
      state_ = State::kAfterValue;
      return Emit(TokenKind::kString, std::move(text));
    }
    case 't':
      if (!LexWord("true", c)) {
        return token_;
      }
      state_ = State::kAfterValue;
      return Emit(TokenKind::kBool, "true", true);
    case 'f':
      if (!LexWord("false", c)) {
        return token_;
      }
      state_ = State::kAfterValue;
      return Emit(TokenKind::kBool, "false", false);
    case 'n':
      if (!LexWord("null", c)) {
        return token_;
      }
      state_ = State::kAfterValue;
      return Emit(TokenKind::kNull);
    default: {
      if (c != '-' && !std::isdigit(c)) {
        return Fail("expected a value");
      }
      std::string text;
      if (!LexNumber(&text, c)) {
        return token_;
      }
      state_ = State::kAfterValue;
      return Emit(TokenKind::kNumber, std::move(text));
    }
  }
}

std::optional<int64_t> ParseDecimalUsToNs(std::string_view token) {
  size_t i = 0;
  bool negative = false;
  if (i < token.size() && (token[i] == '+' || token[i] == '-')) {
    negative = token[i] == '-';
    ++i;
  }
  const size_t digits_start = i;
  // Accumulate negatively (|INT64_MIN| > INT64_MAX) so both signs fit.
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  int64_t value = 0;  // nanoseconds so far, non-positive
  auto push_digit = [&](char c) {
    const int digit = c - '0';
    if (value < (kMin + digit) / 10) {
      return false;
    }
    value = value * 10 - digit;
    return true;
  };
  while (i < token.size() && token[i] >= '0' && token[i] <= '9') {
    if (!push_digit(token[i])) {
      return std::nullopt;
    }
    ++i;
  }
  if (i == digits_start) {
    return std::nullopt;  // no integer digits
  }
  int frac_digits = 0;
  if (i < token.size() && token[i] == '.') {
    ++i;
    const size_t frac_start = i;
    while (i < token.size() && token[i] >= '0' && token[i] <= '9') {
      if (frac_digits < 3) {
        if (!push_digit(token[i])) {
          return std::nullopt;
        }
        ++frac_digits;
      } else if (token[i] != '0') {
        return std::nullopt;  // sub-nanosecond precision
      }
      ++i;
    }
    if (i == frac_start) {
      return std::nullopt;  // "1." with no digits
    }
  }
  if (i != token.size()) {
    return std::nullopt;  // exponent or trailing garbage
  }
  // Scale microseconds to nanoseconds: three fractional digits were already
  // folded in, pad the rest.
  for (; frac_digits < 3; ++frac_digits) {
    if (value < kMin / 10) {
      return std::nullopt;
    }
    value *= 10;
  }
  if (!negative) {
    if (value == kMin) {
      return std::nullopt;
    }
    value = -value;
  }
  return value;
}

}  // namespace daydream

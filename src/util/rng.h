// Deterministic random number generation.
//
// Every stochastic effect in the ground-truth executor (per-kernel FP16 speedup
// variance, interference jitter, server overhead noise) draws from an Rng seeded
// by a stable string key, so repeated runs — and runs of different experiments
// touching the same kernels — are bit-identical.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstdint>
#include <string_view>

namespace daydream {

// xoshiro256** with splitmix64 seeding. Not cryptographic; stable across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);
  // Seeds from a string key via FNV-1a, e.g. Rng("amp/bert_large/sgemm_128x64").
  explicit Rng(std::string_view key);

  uint64_t NextU64();
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Gaussian via Box–Muller.
  double Normal(double mean, double stddev);
  // Uniform integer in [0, n).
  uint64_t NextBelow(uint64_t n);

  static uint64_t HashKey(std::string_view key);

 private:
  uint64_t state_[4];
};

}  // namespace daydream

#endif  // SRC_UTIL_RNG_H_

// FaultInjector: named chaos sites for exercising the daemon's failure paths.
//
// A robustness claim ("every accepted line gets exactly one envelope, the
// daemon never crashes") is only worth something if the failure paths actually
// run. The injector is a process-wide registry of *sites* — named points the
// serve stack consults on its way through a request — that tests and
// operators can arm to fail or stall probabilistically:
//
//   site              where it fires                    effect of `fail`
//   ----------------  --------------------------------  ----------------------
//   trace_load        `open` verb, before ReadTraceFile  `unavailable` envelope
//   plan_compile      TraceSession::Predict, cache miss  `unavailable` envelope
//   plan_cache_insert PlanCache::Put                     insert dropped (plan
//                                                        stays uncached; the
//                                                        request still answers)
//   worker_execute    RequestPool worker, pre-dispatch   `unavailable` envelope
//   socket_write      TCP write_line, per send() call    send clamped to one
//                                                        byte (the retry loop
//                                                        must finish the line)
//
// Armed via the DAYDREAM_FAULTS environment variable or programmatically:
//
//   DAYDREAM_FAULTS="site:kind[:rate[:delay_ms]][,more...]"
//     kind      fail | delay
//     rate      firing probability in [0, 1]; default 1
//     delay_ms  sleep length for `delay` entries; default 1
//
// e.g. DAYDREAM_FAULTS="plan_compile:fail:0.3,worker_execute:delay:0.5:2".
// Several entries may share a site. `delay` entries sleep (scheduling jitter
// for the chaos suite); `fail` entries tell the site to take its failure
// path. All entry points are thread-safe; firing is deterministic in
// distribution (fixed-seed RNG) but not in interleaving.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

namespace daydream {

// What the armed entries decided for one visit to a site.
struct FaultAction {
  bool fail = false;
  int delay_ms = 0;  // summed across firing `delay` entries
};

class FaultInjector {
 public:
  // The process-wide injector, armed from DAYDREAM_FAULTS on first use
  // (malformed entries are reported on stderr once and skipped).
  static FaultInjector& Global();

  // The site catalog. Arming an unknown site is an error — a typo in
  // DAYDREAM_FAULTS must not silently arm nothing.
  static const std::vector<std::string>& KnownSites();

  // Parses and appends a comma-separated spec (see file comment). Returns
  // false with *error set on the first malformed entry; entries before it
  // stay armed.
  bool ArmSpec(const std::string& spec, std::string* error = nullptr);

  // Removes every armed entry (tests restore a clean process between cases).
  void Disarm();

  // Rolls every armed entry for `site` and merges the outcome. Cheap when
  // nothing is armed (one mutex acquire, no RNG).
  FaultAction Fire(const std::string& site);

  // Fire() plus sleeping through any delay action; returns action.fail. The
  // one-liner form every site uses.
  bool ShouldFail(const std::string& site);

  uint64_t fired() const;           // actions taken (fail or delay) since arm
  std::string SpecString() const;   // armed entries, re-serialized for stats
  bool armed() const;

 private:
  struct Entry {
    std::string site;
    bool is_delay = false;
    double rate = 1.0;
    int delay_ms = 1;
  };

  FaultInjector();

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::mt19937_64 rng_;
  uint64_t fired_ = 0;
};

}  // namespace daydream

#endif  // SRC_UTIL_FAULT_H_

#include "src/util/thread_pool.h"

#include <algorithm>

namespace daydream {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(0, threads);
  threads_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& body) {
  if (n <= 0) {
    return;
  }
  if (n == 1 || threads_.empty()) {
    for (int i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  auto job = std::make_shared<Job>(n, body);
  std::unique_lock<std::mutex> lock(mu_);
  jobs_.push_back(job);
  work_cv_.notify_all();
  // Claim indices alongside the workers; RunIndices re-acquires the lock.
  RunIndices(lock, job);
  job->done.wait(lock, [&] { return job->completed == job->n; });
}

void ThreadPool::RunIndices(std::unique_lock<std::mutex>& lock, const std::shared_ptr<Job>& job) {
  lock.unlock();
  int ran = 0;
  for (;;) {
    const int i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) {
      break;
    }
    job->body(i);
    ++ran;
  }
  lock.lock();
  // Drop the job from the queue once every index has been claimed; the last
  // claimant to get here may not be the one that noticed exhaustion first,
  // so erase idempotently.
  const auto it = std::find(jobs_.begin(), jobs_.end(), job);
  if (it != jobs_.end()) {
    jobs_.erase(it);
  }
  job->completed += ran;
  if (job->completed == job->n) {
    job->done.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    std::shared_ptr<Job> job;
    for (const std::shared_ptr<Job>& candidate : jobs_) {
      if (candidate->next.load(std::memory_order_relaxed) < candidate->n) {
        job = candidate;
        break;
      }
    }
    if (job != nullptr) {
      RunIndices(lock, job);
      continue;
    }
    if (stopping_) {
      return;
    }
    work_cv_.wait(lock);
  }
}

}  // namespace daydream

#include "src/util/string_util.h"

#include <cctype>
#include <cstdio>
#include <limits>

namespace daydream {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

bool StrContains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<int64_t> ParseInt64(std::string_view text) {
  size_t i = 0;
  bool negative = false;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    negative = text[i] == '-';
    ++i;
  }
  if (i >= text.size()) {
    return std::nullopt;  // empty or a bare sign
  }
  // Accumulate into a negative value: |INT64_MIN| > INT64_MAX, so the
  // negative range covers both directions without overflowing on the way.
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  int64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const int digit = c - '0';
    if (value < (kMin + digit) / 10) {
      return std::nullopt;  // would overflow
    }
    value = value * 10 - digit;
  }
  if (!negative) {
    if (value == kMin) {
      return std::nullopt;  // +9223372036854775808
    }
    value = -value;
  }
  return value;
}

std::optional<int> ParseInt32(std::string_view text) {
  const std::optional<int64_t> value = ParseInt64(text);
  if (!value.has_value() || *value < std::numeric_limits<int>::min() ||
      *value > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(*value);
}

}  // namespace daydream

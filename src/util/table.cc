#include "src/util/table.h"

#include <algorithm>
#include <sstream>

#include "src/util/logging.h"

namespace daydream {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DD_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{{}, true}); }

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  std::ostringstream os;
  auto print_line = [&] {
    os << "+";
    for (size_t w : widths) {
      os << std::string(w + 2, '-') << "+";
    }
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      os << " " << cells[i] << std::string(widths[i] - cells[i].size(), ' ') << " |";
    }
    os << "\n";
  };

  print_line();
  print_cells(header_);
  print_line();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_line();
    } else {
      print_cells(row.cells);
    }
  }
  print_line();
  return os.str();
}

}  // namespace daydream

// String helpers: formatting, splitting, predicates used by task selection.
#ifndef SRC_UTIL_STRING_UTIL_H_
#define SRC_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace daydream {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> StrSplit(std::string_view text, char sep);
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

bool StrContains(std::string_view haystack, std::string_view needle);
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

std::string ToLower(std::string_view text);

// Strict decimal integer parsing: the whole string must be `[+-]?[0-9]+` and
// fit the target type. Returns nullopt (never throws) on garbage like "1abc",
// " 42", "", "+-3", "0x10" or out-of-range values — std::stoi/stoll silently
// accept leading whitespace and trailing garbage, which is exactly how
// corrupt trace records used to misparse instead of rejecting.
std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<int> ParseInt32(std::string_view text);

}  // namespace daydream

#endif  // SRC_UTIL_STRING_UTIL_H_

// String helpers: formatting, splitting, predicates used by task selection.
#ifndef SRC_UTIL_STRING_UTIL_H_
#define SRC_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace daydream {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> StrSplit(std::string_view text, char sep);
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

bool StrContains(std::string_view haystack, std::string_view needle);
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

std::string ToLower(std::string_view text);

}  // namespace daydream

#endif  // SRC_UTIL_STRING_UTIL_H_

#include "src/util/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/util/string_util.h"

namespace daydream {

std::optional<int64_t> JsonValue::AsInt64() const {
  if (kind != Kind::kNumber) {
    return std::nullopt;
  }
  // `raw` holds the verbatim source token; ParseInt64 accepts exactly the
  // integer subset ([+-]?digits) and range-checks, so "1e3", "1.0" and
  // 20-digit overflows all return nullopt instead of a rounded double.
  return ParseInt64(raw);
}

const JsonValue* JsonObject::Find(const std::string& key) const {
  auto it = fields_.find(key);
  return it == fields_.end() ? nullptr : &it->second;
}

std::string JsonObject::GetString(const std::string& key, const std::string& fallback) const {
  const JsonValue* value = Find(key);
  return (value != nullptr && value->kind == JsonValue::Kind::kString) ? value->string : fallback;
}

double JsonObject::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* value = Find(key);
  return (value != nullptr && value->kind == JsonValue::Kind::kNumber) ? value->number : fallback;
}

bool JsonObject::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* value = Find(key);
  return (value != nullptr && value->kind == JsonValue::Kind::kBool) ? value->boolean : fallback;
}

int64_t JsonObject::GetInt64(const std::string& key, int64_t fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    return fallback;
  }
  return value->AsInt64().value_or(fallback);
}

namespace {

// Recursive-descent over the flat subset; `pos` always points at the next
// unconsumed byte. Errors set *error once (first failure wins).
class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonObject> ParseObject() {
    SkipSpace();
    if (!Consume('{')) {
      return Fail("expected '{'");
    }
    JsonObject object;
    SkipSpace();
    if (Consume('}')) {
      return FinishAt(object);
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return Fail("expected a string key");
      }
      if (object.Has(key)) {
        return Fail("duplicate key '" + key + "'");
      }
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':' after key '" + key + "'");
      }
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return std::nullopt;
      }
      object.Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return FinishAt(object);
      }
      return Fail("expected ',' or '}' in object");
    }
  }

 private:
  std::optional<JsonObject> FinishAt(JsonObject& object) {
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the object");
    }
    return std::move(object);
  }

  std::optional<JsonObject> Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message;
    }
    return std::nullopt;
  }

  bool FailValue(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* value) {
    if (pos_ >= text_.size()) {
      return FailValue("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '"') {
      value->kind = JsonValue::Kind::kString;
      return ParseString(&value->string);
    }
    if (c == '{' || c == '[') {
      return FailValue("nested containers are not part of the flat request protocol");
    }
    if (ConsumeWord("true")) {
      value->kind = JsonValue::Kind::kBool;
      value->boolean = true;
      return true;
    }
    if (ConsumeWord("false")) {
      value->kind = JsonValue::Kind::kBool;
      value->boolean = false;
      return true;
    }
    if (ConsumeWord("null")) {
      value->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(value);
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return FailValue("expected '\"'");
    }
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return FailValue("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') {
        return true;
      }
      if (c < 0x20) {
        return FailValue("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) {
        return FailValue("truncated escape sequence");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) {
            return false;
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return FailValue(std::string("invalid escape '\\") + esc + "'");
      }
    }
  }

  bool ParseHex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) {
      return FailValue("truncated \\u escape");
    }
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return FailValue("invalid \\u escape");
      }
    }
    pos_ += 4;
    *code = value;
    return true;
  }

  // Encodes a BMP code point (surrogates pass through as-is: the protocol
  // never carries them, and replacing them would silently corrupt an echo).
  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue* value) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      return FailValue("expected a value");
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size() || !std::isfinite(parsed)) {
      return FailValue("invalid number '" + token + "'");
    }
    value->kind = JsonValue::Kind::kNumber;
    value->number = parsed;
    value->raw = token;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonObject> ParseJsonObject(std::string_view text, std::string* error) {
  std::string scratch;
  Parser parser(text, error != nullptr ? error : &scratch);
  return parser.ParseObject();
}

}  // namespace daydream

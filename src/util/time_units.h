// Time representation used across the library.
//
// All timestamps and durations are int64_t nanoseconds. Traces produced by the
// runtime executor, dependency-graph tasks and simulator results all share this
// unit, which keeps every computation deterministic and exactly reproducible
// (the paper's CUPTI timestamps are integer nanoseconds as well).
#ifndef SRC_UTIL_TIME_UNITS_H_
#define SRC_UTIL_TIME_UNITS_H_

#include <cstdint>
#include <string>

namespace daydream {

using TimeNs = int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1000;
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
inline constexpr TimeNs kSecond = 1000 * kMillisecond;

constexpr TimeNs Us(double us) { return static_cast<TimeNs>(us * kMicrosecond); }
constexpr TimeNs Ms(double ms) { return static_cast<TimeNs>(ms * kMillisecond); }

constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / kMillisecond; }
constexpr double ToSec(TimeNs t) { return static_cast<double>(t) / kSecond; }

// Bytes helpers (sizes of tensors, gradients, network transfers).
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

}  // namespace daydream

#endif  // SRC_UTIL_TIME_UNITS_H_

// Streaming JSON tokenizer for trace import.
//
// The flat-object parser in src/util/json.h is deliberately restricted to the
// serve protocol's one-line requests; Chrome trace files are multi-megabyte
// *nested* documents (an array of event objects, each with an `args` object)
// that must not be materialized whole. This tokenizer pulls one token at a
// time straight off a std::istream: the only buffered state is the current
// token's text plus a depth stack, both hard-capped by Limits, so peak
// resident memory is bounded no matter how large the file is.
//
// Grammar checking is strict (commas, colons, nesting, one top-level value,
// no trailing garbage); anything malformed — truncated input, bad escapes,
// absurd nesting depth, oversized strings — surfaces as a kError token with
// a message and the byte offset, never a crash. Number tokens keep their raw
// text so callers can decode int64-exact values (nanosecond timestamps,
// correlation ids past 2^53) without a lossy double round trip.
#ifndef SRC_UTIL_JSON_STREAM_H_
#define SRC_UTIL_JSON_STREAM_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace daydream {

class JsonStreamTokenizer {
 public:
  enum class TokenKind {
    kBeginObject,
    kEndObject,
    kBeginArray,
    kEndArray,
    kKey,     // object member key; the member's value tokens follow
    kString,  // decoded string value
    kNumber,  // raw source token in `text` (validated as a JSON number)
    kBool,
    kNull,
    kEnd,    // whole document consumed cleanly
    kError,  // sticky; `text` holds the message, offset() the position
  };

  struct Token {
    TokenKind kind = TokenKind::kEnd;
    std::string text;
    bool boolean = false;
  };

  // Caps on the transient per-token state. Exceeding one is a parse error,
  // not an allocation: hostile input cannot make the tokenizer grow.
  struct Limits {
    size_t max_string_bytes = 1 << 20;  // one decoded string/key
    size_t max_number_bytes = 64;       // one number token
    size_t max_depth = 32;              // nested containers
  };

  explicit JsonStreamTokenizer(std::istream& in);
  JsonStreamTokenizer(std::istream& in, Limits limits);

  // Advances to and returns the next token. After kEnd or kError every
  // further call returns the same token.
  const Token& Next();
  const Token& token() const { return token_; }

  // Bytes consumed from the stream so far (error positions).
  uint64_t offset() const { return offset_; }

  // High-water mark of the transient buffer (token text + depth stack), the
  // quantity the bounded-memory tests assert on.
  size_t max_buffered_bytes() const { return max_buffered_; }

 private:
  enum class Context : uint8_t { kObject, kArray };
  enum class State : uint8_t {
    kValueStart,   // a value must start here
    kObjectFirst,  // just after '{': first key or '}'
    kArrayFirst,   // just after '[': first value or ']'
    kAfterValue,   // a value closed: separator, container close, or kEnd
  };

  const Token& Fail(const std::string& message);
  const Token& Emit(TokenKind kind, std::string text = "", bool boolean = false);
  const Token& EmitKey();  // after the key's opening quote was consumed

  int GetChar();   // -1 on EOF
  int PeekChar();  // does not consume
  void SkipSpace();
  bool LexString(std::string* out);  // after the opening quote was consumed
  bool LexNumber(std::string* out, int first);
  bool LexWord(std::string_view word, int first);
  void NoteBuffered(size_t bytes);

  std::istream& in_;
  const Limits limits_;
  Token token_;
  std::vector<Context> stack_;  // innermost last; empty once the value closed
  State state_ = State::kValueStart;
  uint64_t offset_ = 0;
  size_t max_buffered_ = 0;
};

// Exact Chrome-timestamp decode: microseconds written as a plain decimal
// ("1.500", "-3.25", "1234") to integer nanoseconds, by integer arithmetic on
// the digits — no double in the path, so values far past 2^53 ns stay exact.
// More than three fractional digits are accepted only when the extras are
// zeros (sub-nanosecond precision cannot be represented). Returns nullopt on
// exponents, garbage, or int64 overflow.
std::optional<int64_t> ParseDecimalUsToNs(std::string_view token);

}  // namespace daydream

#endif  // SRC_UTIL_JSON_STREAM_H_

// Minimal logging and invariant-checking macros.
//
// CHECK-style macros abort on violation; they guard graph invariants that the
// paper assumes (acyclicity, per-thread total order, correlation consistency).
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace daydream {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
    stream_ << SeverityTag(severity) << " " << Basename(file) << ":" << line << "] ";
  }

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityTag(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo:
        return "I";
      case LogSeverity::kWarning:
        return "W";
      case LogSeverity::kError:
        return "E";
      case LogSeverity::kFatal:
        return "F";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    return base;
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a CHECK passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace daydream

#define DD_LOG(severity) \
  ::daydream::LogMessage(::daydream::LogSeverity::k##severity, __FILE__, __LINE__).stream()

#define DD_CHECK(cond)                                                                \
  if (cond) {                                                                         \
  } else                                                                              \
    ::daydream::LogMessage(::daydream::LogSeverity::kFatal, __FILE__, __LINE__)       \
        .stream()                                                                     \
        << "Check failed: " #cond " "

#define DD_CHECK_OP(lhs, rhs, op)                                                     \
  if ((lhs)op(rhs)) {                                                                 \
  } else                                                                              \
    ::daydream::LogMessage(::daydream::LogSeverity::kFatal, __FILE__, __LINE__)       \
        .stream()                                                                     \
        << "Check failed: " #lhs " " #op " " #rhs " (" << (lhs) << " vs " << (rhs)    \
        << ") "

#define DD_CHECK_EQ(lhs, rhs) DD_CHECK_OP(lhs, rhs, ==)
#define DD_CHECK_NE(lhs, rhs) DD_CHECK_OP(lhs, rhs, !=)
#define DD_CHECK_LT(lhs, rhs) DD_CHECK_OP(lhs, rhs, <)
#define DD_CHECK_LE(lhs, rhs) DD_CHECK_OP(lhs, rhs, <=)
#define DD_CHECK_GT(lhs, rhs) DD_CHECK_OP(lhs, rhs, >)
#define DD_CHECK_GE(lhs, rhs) DD_CHECK_OP(lhs, rhs, >=)

#endif  // SRC_UTIL_LOGGING_H_

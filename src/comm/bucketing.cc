#include "src/comm/bucketing.h"

#include "src/util/logging.h"

namespace daydream {

std::vector<GradientBucket> ComputeBuckets(const ModelGraph& model, int64_t bucket_bytes) {
  DD_CHECK_GT(bucket_bytes, 0);
  std::vector<GradientBucket> buckets;
  GradientBucket current;
  current.id = 0;

  // Parameter layers in the order their gradients become ready (reverse of
  // forward order). DDP's first bucket is usually small (it fills fast and
  // overlaps early); we follow the plain greedy policy.
  for (int layer_id : model.ParamLayersInBackwardOrder()) {
    const Layer& layer = model.layer(layer_id);
    current.layer_ids.push_back(layer_id);
    current.bytes += layer.param_bytes_fp32();
    current.trigger_layer_id = layer_id;  // latest-ready layer so far
    if (current.bytes >= bucket_bytes) {
      buckets.push_back(std::move(current));
      current = GradientBucket{};
      current.id = static_cast<int>(buckets.size());
    }
  }
  if (!current.layer_ids.empty()) {
    buckets.push_back(std::move(current));
  }
  return buckets;
}

std::vector<int> LayerToBucket(const ModelGraph& model,
                               const std::vector<GradientBucket>& buckets) {
  std::vector<int> map(static_cast<size_t>(model.num_layers()), -1);
  for (const GradientBucket& b : buckets) {
    for (int layer_id : b.layer_ids) {
      map[static_cast<size_t>(layer_id)] = b.id;
    }
  }
  return map;
}

}  // namespace daydream

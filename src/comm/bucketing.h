// PyTorch-DDP-style gradient bucketing.
//
// PyTorch groups gradients from multiple layers into fixed-size buckets and
// issues one NCCL allReduce per bucket as soon as the bucket's last gradient
// is produced (wait-free backpropagation, §4.2.2 "Communication"). The paper
// instruments the framework to extract exactly this layer->bucket mapping;
// here we compute it from the model the same way DDP does: walk parameter
// tensors in backward order and close a bucket when it exceeds the cap.
#ifndef SRC_COMM_BUCKETING_H_
#define SRC_COMM_BUCKETING_H_

#include <cstdint>
#include <vector>

#include "src/models/model_graph.h"

namespace daydream {

inline constexpr int64_t kDefaultBucketBytes = 25 * 1024 * 1024;  // DDP default

struct GradientBucket {
  int id = -1;
  std::vector<int> layer_ids;  // layers whose gradients land in this bucket
  int64_t bytes = 0;
  // The layer whose backward pass completes the bucket (the *earliest* layer
  // in forward order, since backprop runs back-to-front). The bucket's
  // allReduce depends on this layer's backward GPU tasks.
  int trigger_layer_id = -1;
};

// Buckets in the order their allReduces are issued during backprop.
std::vector<GradientBucket> ComputeBuckets(const ModelGraph& model,
                                           int64_t bucket_bytes = kDefaultBucketBytes);

// Map layer_id -> bucket_id (-1 for layers without parameters).
std::vector<int> LayerToBucket(const ModelGraph& model, const std::vector<GradientBucket>& buckets);

}  // namespace daydream

#endif  // SRC_COMM_BUCKETING_H_

// Collective-communication cost models.
//
// Implements the ring-algorithm formulas from the NCCL performance notes the
// paper cites as its "Theoretical" series (Figure 9):
//
//   allReduce:      t = 2 * (n-1)/n * S / busBW
//   reduceScatter:  t =     (n-1)/n * S / busBW
//   allGather:      t =     (n-1)/n * S / busBW
//
// where busBW is the bandwidth of the bottleneck link along the ring: the NIC
// for multi-machine rings (a well-constructed ring crosses each NIC exactly
// once in each direction), PCIe for single-machine rings. A per-hop latency
// term covers the 2(n-1) ring steps.
#ifndef SRC_COMM_COLLECTIVES_H_
#define SRC_COMM_COLLECTIVES_H_

#include <cstdint>

#include "src/comm/network_spec.h"
#include "src/util/time_units.h"

namespace daydream {

// Bandwidth of the bottleneck link of a ring spanning the cluster, bytes/ns.
double RingBusBandwidth(const ClusterConfig& cluster);

// Per-hop latency of one ring step.
TimeNs RingStepLatency(const ClusterConfig& cluster);

// Time for one ring allReduce of `bytes` across all GPUs in the cluster.
// Returns 0 when the cluster has a single GPU (no communication needed).
TimeNs RingAllReduceTime(int64_t bytes, const ClusterConfig& cluster);

// Reduce-scatter / all-gather over a subgroup of `group_size` ranks connected
// by `bytes_per_ns` links (building blocks for BlueConnect's decomposition).
TimeNs ReduceScatterTime(int64_t bytes, int group_size, double bytes_per_ns, TimeNs step_latency);
TimeNs AllGatherTime(int64_t bytes, int group_size, double bytes_per_ns, TimeNs step_latency);

// BlueConnect (Cho et al.): decompose one allReduce over an (m machines x g
// GPUs) hierarchy into intra-node reduce-scatter, inter-node reduce-scatter,
// inter-node all-gather, intra-node all-gather, with the inter-node phases
// running on g parallel NIC channels (one per local GPU), each moving 1/g of
// the data. Returns the end-to-end time.
TimeNs BlueConnectAllReduceTime(int64_t bytes, const ClusterConfig& cluster);

// Parameter-server transfer time for one slice over the worker NIC
// (pure wire time; server-side processing is a ground-truth-only effect).
TimeNs PsTransferTime(int64_t bytes, const NetworkSpec& network);

// NCCL-kernel overhead over the theoretical ring time when a collective runs
// exclusively (no compute interference). The paper's "Optimal" series in
// Figure 9; also the calibration Daydream applies to predicted allReduces.
TimeNs NcclExclusiveTime(TimeNs theoretical);

}  // namespace daydream

#endif  // SRC_COMM_COLLECTIVES_H_

#include "src/comm/param_server.h"

#include <algorithm>

#include "src/util/logging.h"

namespace daydream {

std::vector<PsSlice> WholeTensorSlices(const ModelGraph& model, int num_servers) {
  DD_CHECK_GE(num_servers, 1);
  std::vector<PsSlice> slices;
  int server = 0;
  for (const Layer& layer : model.layers()) {
    if (!layer.has_params()) {
      continue;
    }
    PsSlice s;
    s.layer_id = layer.id;
    s.slice_index = 0;
    s.bytes = layer.param_bytes_fp32();
    s.server = server;
    s.priority = model.num_layers() - layer.id;  // earlier layer => higher
    slices.push_back(s);
    server = (server + 1) % num_servers;
  }
  return slices;
}

std::vector<PsSlice> P3Slices(const ModelGraph& model, int num_servers, int64_t slice_bytes) {
  DD_CHECK_GE(num_servers, 1);
  DD_CHECK_GT(slice_bytes, 0);
  std::vector<PsSlice> slices;
  int server = 0;
  for (const Layer& layer : model.layers()) {
    if (!layer.has_params()) {
      continue;
    }
    int64_t remaining = layer.param_bytes_fp32();
    int index = 0;
    while (remaining > 0) {
      PsSlice s;
      s.layer_id = layer.id;
      s.slice_index = index++;
      s.bytes = std::min(remaining, slice_bytes);
      s.server = server;
      s.priority = model.num_layers() - layer.id;
      slices.push_back(s);
      server = (server + 1) % num_servers;
      remaining -= s.bytes;
    }
  }
  return slices;
}

}  // namespace daydream

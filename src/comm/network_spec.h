// Cluster and network descriptions for distributed-training experiments.
//
// Matches the paper's testbed shapes: up to 4 machines x up to 4 GPUs,
// inter-node Ethernet/InfiniBand at 10/20/40 Gbps, intra-node PCIe 3.0.
#ifndef SRC_COMM_NETWORK_SPEC_H_
#define SRC_COMM_NETWORK_SPEC_H_

#include <string>

#include "src/util/time_units.h"

namespace daydream {

struct NetworkSpec {
  double bandwidth_gbps = 10.0;     // inter-node NIC bandwidth, Gigabits/s
  TimeNs inter_node_latency = 20 * kMicrosecond;
  double intra_node_gbs = 10.0;     // GPU<->GPU over PCIe, GigaBYTES/s
  TimeNs intra_node_latency = 5 * kMicrosecond;

  // Bytes per nanosecond over the NIC (1 Gbps = 0.125 bytes/ns).
  double nic_bytes_per_ns() const { return bandwidth_gbps / 8.0; }
  double pcie_bytes_per_ns() const { return intra_node_gbs; }
};

// "M x G" deployment: M machines with G GPUs each (paper Figure 8 x-axis).
struct ClusterConfig {
  int machines = 1;
  int gpus_per_machine = 1;
  NetworkSpec network;

  int total_gpus() const { return machines * gpus_per_machine; }
  bool multi_machine() const { return machines > 1; }
  std::string Label() const;  // e.g. "2x2 @ 10Gbps"
};

}  // namespace daydream

#endif  // SRC_COMM_NETWORK_SPEC_H_

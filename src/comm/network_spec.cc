#include "src/comm/network_spec.h"

#include "src/util/string_util.h"

namespace daydream {

std::string ClusterConfig::Label() const {
  return StrFormat("%dx%d @ %.0fGbps", machines, gpus_per_machine, network.bandwidth_gbps);
}

}  // namespace daydream

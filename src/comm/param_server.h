// Parameter-server (MXNet kvstore) communication layout, used by the P3
// experiments (Figure 10).
//
// Each parameter tensor is sharded across the server processes (one per
// machine). Baseline MXNet sends whole tensors; P3 slices tensors into
// fixed-size chunks and prioritizes slices needed earliest by the next
// forward pass (Jayarajan et al.). This module computes the slice layout; the
// scheduling itself lives in the executor (ground truth) and in the P3 graph
// transformation (prediction).
#ifndef SRC_COMM_PARAM_SERVER_H_
#define SRC_COMM_PARAM_SERVER_H_

#include <cstdint>
#include <vector>

#include "src/models/model_graph.h"

namespace daydream {

// P3's default slice granularity (the paper's implementation slices tensors
// into sub-tensors of a few hundred KB to enable pipelining).
inline constexpr int64_t kDefaultSliceBytes = 512 * 1024;

struct PsSlice {
  int layer_id = -1;
  int slice_index = 0;   // within the layer
  int64_t bytes = 0;
  int server = 0;        // which server process owns this slice
  // P3 priority: layers closer to the input get higher priority because the
  // next iteration's forward pass needs them first. Higher value = higher
  // priority.
  int priority = 0;
};

// Whole-tensor-per-layer layout (baseline MXNet kvstore).
std::vector<PsSlice> WholeTensorSlices(const ModelGraph& model, int num_servers);

// P3 layout: every parameter layer's gradients split into `slice_bytes` chunks,
// round-robined over servers, prioritized by distance from the output.
std::vector<PsSlice> P3Slices(const ModelGraph& model, int num_servers,
                              int64_t slice_bytes = kDefaultSliceBytes);

}  // namespace daydream

#endif  // SRC_COMM_PARAM_SERVER_H_

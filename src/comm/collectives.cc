#include "src/comm/collectives.h"

#include <algorithm>

#include "src/util/logging.h"

namespace daydream {

double RingBusBandwidth(const ClusterConfig& cluster) {
  if (cluster.multi_machine()) {
    return cluster.network.nic_bytes_per_ns();
  }
  return cluster.network.pcie_bytes_per_ns();
}

TimeNs RingStepLatency(const ClusterConfig& cluster) {
  return cluster.multi_machine() ? cluster.network.inter_node_latency
                                 : cluster.network.intra_node_latency;
}

TimeNs RingAllReduceTime(int64_t bytes, const ClusterConfig& cluster) {
  const int n = cluster.total_gpus();
  DD_CHECK_GE(n, 1);
  if (n == 1) {
    return 0;
  }
  const double bus = RingBusBandwidth(cluster);
  const double wire_ns = 2.0 * (n - 1) / n * static_cast<double>(bytes) / bus;
  const TimeNs latency = 2 * (n - 1) * RingStepLatency(cluster);
  return static_cast<TimeNs>(wire_ns) + latency;
}

namespace {

TimeNs PartialCollectiveTime(int64_t bytes, int group_size, double bytes_per_ns,
                             TimeNs step_latency) {
  DD_CHECK_GE(group_size, 1);
  if (group_size == 1) {
    return 0;
  }
  const double wire_ns =
      static_cast<double>(group_size - 1) / group_size * static_cast<double>(bytes) / bytes_per_ns;
  return static_cast<TimeNs>(wire_ns) + (group_size - 1) * step_latency;
}

}  // namespace

TimeNs ReduceScatterTime(int64_t bytes, int group_size, double bytes_per_ns,
                         TimeNs step_latency) {
  return PartialCollectiveTime(bytes, group_size, bytes_per_ns, step_latency);
}

TimeNs AllGatherTime(int64_t bytes, int group_size, double bytes_per_ns, TimeNs step_latency) {
  return PartialCollectiveTime(bytes, group_size, bytes_per_ns, step_latency);
}

TimeNs BlueConnectAllReduceTime(int64_t bytes, const ClusterConfig& cluster) {
  const int g = cluster.gpus_per_machine;
  const int m = cluster.machines;
  if (cluster.total_gpus() <= 1) {
    return 0;
  }
  const NetworkSpec& net = cluster.network;

  // Phase 1/4: intra-node reduce-scatter / all-gather over g GPUs (PCIe).
  const TimeNs intra_rs =
      ReduceScatterTime(bytes, g, net.pcie_bytes_per_ns(), net.intra_node_latency);
  const TimeNs intra_ag =
      AllGatherTime(bytes, g, net.pcie_bytes_per_ns(), net.intra_node_latency);

  // Phase 2/3: inter-node reduce-scatter / all-gather over m machines. Each of
  // the g concurrent channels carries bytes/g, but they share one NIC, so the
  // per-channel effective bandwidth is nic/g — the two cancel out unless g==1.
  const double per_channel_bw = net.nic_bytes_per_ns() / std::max(g, 1);
  const int64_t per_channel_bytes = bytes / std::max(g, 1);
  const TimeNs inter_rs =
      ReduceScatterTime(per_channel_bytes, m, per_channel_bw, net.inter_node_latency);
  const TimeNs inter_ag =
      AllGatherTime(per_channel_bytes, m, per_channel_bw, net.inter_node_latency);

  return intra_rs + inter_rs + inter_ag + intra_ag;
}

TimeNs PsTransferTime(int64_t bytes, const NetworkSpec& network) {
  return static_cast<TimeNs>(static_cast<double>(bytes) / network.nic_bytes_per_ns()) +
         network.inter_node_latency;
}

TimeNs NcclExclusiveTime(TimeNs theoretical) {
  return static_cast<TimeNs>(static_cast<double>(theoretical) * 1.08) + 25 * kMicrosecond;
}

}  // namespace daydream

// RequestExecutor: one line-delimited-JSON request in, one response line out.
//
// This is the protocol half of `daydream serve` (docs/serve.md), factored
// away from any transport so tests drive it with plain strings and both the
// stdio and TCP front ends share one implementation. Requests are flat JSON
// objects (src/util/json.h); every response is a single line that echoes the
// request's `id` and carries either `"ok": true` plus the verb's payload or
// `"ok": false` with a machine-readable `code` and a human-readable `error`.
// A malformed line, an unknown verb, or a request that would abort the
// library (bad trace, bad what-if flags) all produce error envelopes — the
// daemon never crashes on input.
//
// The executor also owns the daemon's admission-control state (ServeLimits /
// ServeCounters, src/service/limits.h): the transports call the shed/expiry
// helpers so a request rejected before execution still gets exactly one
// envelope, and the `stats` verb reports the limits next to the counters that
// show them firing.
//
// Handle() is thread-safe: the serve front ends run it from a worker pool so
// predict/sweep/lint requests against warm sessions execute concurrently.
#ifndef SRC_SERVICE_REQUEST_EXECUTOR_H_
#define SRC_SERVICE_REQUEST_EXECUTOR_H_

#include <string>

#include "src/service/limits.h"
#include "src/service/session.h"
#include "src/util/deadline.h"

namespace daydream {

class RequestExecutor {
 public:
  struct Response {
    std::string line;      // single-line JSON, no trailing newline
    bool shutdown = false; // the request asked the daemon to stop
  };

  // `workers` is the serve worker-pool width this executor is driven from and
  // `default_sim_jobs` the per-request shard count when a request carries no
  // sim_jobs field. Both feed the executor's thread-budget clamp: effective
  // sim_jobs is capped at hardware_concurrency / workers, so concurrent
  // requests × shards never oversubscribe the machine (`stats` reports the
  // effective cap as sim_jobs_cap). `limits` configures admission control;
  // the session quotas inside it feed the SessionManager.
  explicit RequestExecutor(SessionOptions session_options = SessionOptions{}, int workers = 1,
                           int default_sim_jobs = 1, ServeLimits limits = ServeLimits{});

  // Handles one request line (the line terminator may be included or not).
  // `deadline` is the transport-assigned budget (stamped at admission when
  // --request-timeout-ms is set); a request's own `timeout_ms` field — its
  // budget measured from execution start — can only tighten it. Expiry is
  // checked before the heavy verbs and at cooperative points inside them.
  Response Handle(const std::string& line, const Deadline& deadline = Deadline());

  // Pre-execution rejection envelopes for the transports. Each parses `line`
  // only to echo its `id` (a malformed line still gets an envelope, without
  // an id) and bumps the matching counter.
  std::string OverloadedResponse(const std::string& line);       // queue/connection shed
  std::string ExpiredResponse(const std::string& line);          // died waiting in queue
  std::string FaultedResponse(const std::string& line,
                              const std::string& site);          // injected worker fault
  std::string OversizedResponse();                               // line over max_line_bytes

  SessionManager& sessions() { return sessions_; }
  const ServeLimits& limits() const { return limits_; }
  ServeCounters& counters() { return counters_; }

  int sim_jobs_cap() const { return sim_jobs_cap_; }

 private:
  const SessionOptions session_options_;
  const int workers_;
  const int sim_jobs_cap_;
  const int default_sim_jobs_;  // pre-clamped to [1, sim_jobs_cap_]
  const ServeLimits limits_;
  ServeCounters counters_;
  SessionManager sessions_;
};

}  // namespace daydream

#endif  // SRC_SERVICE_REQUEST_EXECUTOR_H_

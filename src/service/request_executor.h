// RequestExecutor: one line-delimited-JSON request in, one response line out.
//
// This is the protocol half of `daydream serve` (docs/serve.md), factored
// away from any transport so tests drive it with plain strings and both the
// stdio and TCP front ends share one implementation. Requests are flat JSON
// objects (src/util/json.h); every response is a single line that echoes the
// request's `id` and carries either `"ok": true` plus the verb's payload or
// `"ok": false` with a machine-readable `code` and a human-readable `error`.
// A malformed line, an unknown verb, or a request that would abort the
// library (bad trace, bad what-if flags) all produce error envelopes — the
// daemon never crashes on input.
//
// Handle() is thread-safe: the serve front ends run it from a worker pool so
// predict/sweep/lint requests against warm sessions execute concurrently.
#ifndef SRC_SERVICE_REQUEST_EXECUTOR_H_
#define SRC_SERVICE_REQUEST_EXECUTOR_H_

#include <string>

#include "src/service/session.h"

namespace daydream {

class RequestExecutor {
 public:
  struct Response {
    std::string line;      // single-line JSON, no trailing newline
    bool shutdown = false; // the request asked the daemon to stop
  };

  // `workers` is the serve worker-pool width this executor is driven from and
  // `default_sim_jobs` the per-request shard count when a request carries no
  // sim_jobs field. Both feed the executor's thread-budget clamp: effective
  // sim_jobs is capped at hardware_concurrency / workers, so concurrent
  // requests × shards never oversubscribe the machine (`stats` reports the
  // effective cap as sim_jobs_cap).
  explicit RequestExecutor(SessionOptions session_options = SessionOptions{}, int workers = 1,
                           int default_sim_jobs = 1);

  // Handles one request line (the line terminator may be included or not).
  Response Handle(const std::string& line);

  SessionManager& sessions() { return sessions_; }

  int sim_jobs_cap() const { return sim_jobs_cap_; }

 private:
  const SessionOptions session_options_;
  const int workers_;
  const int sim_jobs_cap_;
  const int default_sim_jobs_;  // pre-clamped to [1, sim_jobs_cap_]
  SessionManager sessions_;
};

}  // namespace daydream

#endif  // SRC_SERVICE_REQUEST_EXECUTOR_H_

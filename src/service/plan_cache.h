// PlanCache: warm compiled SimPlans for the prediction service.
//
// A TraceSession answers repeated what-if queries against one profiled trace;
// the expensive step per query is freezing the transformed graph into a
// SimPlan (CSR compile: ~100 ms at cluster scale). The cache keys plans on
// the transformed graph's DependencyGraph::structure_stamp() plus the
// scheduler's identity, so a repeated query is a lookup + plan dispatch
// instead of a recompile. Timing-only what-ifs (AMP-style duration edits)
// share the baseline structure stamp — their plans differ only in the SoA
// timing arrays — so the key carries the request signature as a third
// component to keep timing variants of one structure apart. The stamp is
// what *invalidation* checks: structural mutation bumps it, making every
// cached plan for the old stamp unreachable (EraseStamp reclaims them
// eagerly).
//
// Bounded LRU with hit/miss/eviction/retime/compile counters; all entry
// points are thread-safe (the RequestExecutor hits one cache from many
// client threads).
#ifndef SRC_SERVICE_PLAN_CACHE_H_
#define SRC_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/sim_plan.h"

namespace daydream {

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  // How the misses were filled: Retime over a donor structure block
  // (timing-only what-ifs) vs a full CSR compile.
  uint64_t retimes = 0;
  uint64_t compiles = 0;
};

class PlanCache {
 public:
  struct Key {
    uint64_t stamp = 0;       // transformed graph's structure_stamp()
    std::string scheduler;    // scheduler identity (e.g. "earliest_start")
    std::string signature;    // canonical what-if signature; disambiguates
                              // timing variants over one shared structure
    bool operator==(const Key& other) const = default;
  };

  explicit PlanCache(size_t capacity = 64);

  // Counts a hit or a miss; nullptr on miss.
  std::shared_ptr<const SimPlan> Get(const Key& key);

  // Inserts (or refreshes) a plan, evicting the least-recently-used entry
  // past capacity. `retimed` records how the miss was filled (stats only).
  void Put(const Key& key, std::shared_ptr<const SimPlan> plan, bool retimed);

  // Invalidation hooks. EraseStamp drops every plan compiled from a given
  // structure (the after-structural-mutation hook); Erase drops one
  // signature's plans across schedulers (transform-cache eviction).
  void EraseStamp(uint64_t stamp);
  void Erase(uint64_t stamp, const std::string& signature);
  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  // Most-recent first; Entry pairs the key back so eviction can erase from
  // the index.
  using LruList = std::list<std::pair<Key, std::shared_ptr<const SimPlan>>>;

  void EraseMatching(const std::function<bool(const Key&)>& predicate);

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  PlanCacheStats stats_;
};

}  // namespace daydream

#endif  // SRC_SERVICE_PLAN_CACHE_H_

#include "src/service/session.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "src/core/breakdown.h"
#include "src/core/critical_path.h"
#include "src/core/graph_builder.h"
#include "src/core/layer_report.h"
#include "src/core/optimizations/optimizations.h"
#include "src/util/fault.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

// The default scheduler's identity in PlanCache keys. Custom schedulers are
// not reachable through the service API yet; the key field exists so adding
// them never aliases a cached plan.
constexpr char kDefaultSchedulerKey[] = "earliest_start";

std::optional<ModelId> LookupModel(const std::string& name) {
  for (ModelId id : AllModels()) {
    if (name == ModelName(id)) {
      return id;
    }
  }
  return std::nullopt;
}

std::string NetworkSignature(const NetworkSpec& network) {
  return StrFormat("%.17g/%lld/%.17g/%lld", network.bandwidth_gbps,
                   static_cast<long long>(network.inter_node_latency), network.intra_node_gbs,
                   static_cast<long long>(network.intra_node_latency));
}

}  // namespace

std::string WhatIfRequest::Signature() const {
  // Only parameters that shape the transform belong here: engine/validate
  // select how a transformed graph is consumed, not what it is, and must not
  // fragment the transform cache.
  if (what_if == "distributed") {
    return StrFormat("distributed:%dx%d:%s", cluster.machines, cluster.gpus_per_machine,
                     NetworkSignature(cluster.network).c_str());
  }
  if (what_if == "pipeline") {
    std::string boundaries;
    for (int b : pipeline.boundaries) {
      boundaries += StrFormat(",%d", b);
    }
    return StrFormat("pipeline:%d:%d:%d:%s:%s:%lld:%.17g", pipeline.num_stages,
                     pipeline.num_microbatches, static_cast<int>(pipeline.schedule),
                     boundaries.c_str(), NetworkSignature(pipeline.network).c_str(),
                     static_cast<long long>(pipeline.launch_overhead),
                     pipeline.microbatch_efficiency);
  }
  return what_if;
}

std::shared_ptr<TraceSession> TraceSession::Create(Trace trace, SessionOptions options,
                                                   std::string* error) {
  if (trace.empty()) {
    if (error != nullptr) {
      *error = "trace contains no events; nothing to analyze (re-run `daydream collect`?)";
    }
    return nullptr;
  }
  DependencyGraph graph = BuildDependencyGraph(trace);
  // Refuse here, with the lint report, rather than letting the Daydream
  // constructor DD_CHECK-abort the process on a malformed graph.
  const LintReport report = GraphLint::LintStructure(graph);
  if (!report.ok()) {
    if (error != nullptr) {
      *error = "trace produces an invalid dependency graph:\n" + report.ToString();
    }
    return nullptr;
  }
  return std::shared_ptr<TraceSession>(
      new TraceSession(std::move(trace), std::move(graph), options));
}

TraceSession::TraceSession(Trace trace, DependencyGraph graph, SessionOptions options)
    : options_(options),
      daydream_(std::move(trace), std::move(graph)),
      layer_map_(LayerMap::Compute(daydream_.trace())),
      model_id_(LookupModel(daydream_.trace().model_name())),
      plan_cache_(options.plan_cache_capacity) {
  if (model_id_.has_value()) {
    model_graph_ = std::make_shared<const ModelGraph>(BuildModel(*model_id_));
  }
  resident_bytes_ = daydream_.trace().size() * sizeof(TraceEvent) +
                    static_cast<size_t>(daydream_.graph().num_alive()) * sizeof(Task);
}

SessionStatus TraceSession::ResolveTransform(const WhatIfRequest& request,
                                             std::function<void(DependencyGraph*)>* transform,
                                             std::string* error) const {
  const std::string& what_if = request.what_if;
  if (what_if == "amp") {
    *transform = [](DependencyGraph* g) { WhatIfAmp(g); };
    return SessionStatus::kOk;
  }
  if (what_if == "fused_adam") {
    *transform = [](DependencyGraph* g) { WhatIfFusedAdam(g); };
    return SessionStatus::kOk;
  }
  if (what_if == "rbn" || what_if == "metaflow" || what_if == "gist" || what_if == "vdnn") {
    if (model_graph_ == nullptr) {
      *error = "trace lacks a known model name (needed for layer kinds)";
      return SessionStatus::kBadRequest;
    }
    // The layer-structured what-ifs need the model graph for layer kinds.
    std::shared_ptr<const ModelGraph> model = model_graph_;
    if (what_if == "rbn") {
      *transform = [model](DependencyGraph* g) { WhatIfRestructuredBatchnorm(g, *model); };
    } else if (what_if == "metaflow") {
      *transform = [model](DependencyGraph* g) { WhatIfMetaFlowFuseConvBn(g, *model); };
    } else if (what_if == "gist") {
      *transform = [model](DependencyGraph* g) { WhatIfGist(g, *model); };
    } else {
      *transform = [model](DependencyGraph* g) { WhatIfVdnn(g, *model); };
    }
    return SessionStatus::kOk;
  }
  if (what_if == "pipeline") {
    if (model_graph_ == nullptr) {
      *error = "trace lacks a known model name (needed for activation/parameter sizes)";
      return SessionStatus::kBadRequest;
    }
    std::shared_ptr<const ModelGraph> model = model_graph_;
    const PipelineWhatIf opts = request.pipeline;
    *transform = [model, opts](DependencyGraph* g) { WhatIfPipeline(g, *model, opts); };
    return SessionStatus::kOk;
  }
  if (what_if == "distributed") {
    DistributedWhatIf opts;
    opts.cluster = request.cluster;
    const std::vector<GradientInfo> gradients = daydream_.trace().gradients();
    *transform = [opts, gradients](DependencyGraph* g) {
      WhatIfDistributed(g, gradients, opts);
    };
    return SessionStatus::kOk;
  }
  // p3 lands here on purpose: it is not a graph transform (it reports its own
  // metric through PredictPsIterationTime against session->daydream()).
  *error = StrFormat("unknown what-if '%s'", what_if.c_str());
  return SessionStatus::kUnknownWhatIf;
}

SessionStatus TraceSession::TransformedGraph(
    const WhatIfRequest& request, const std::function<void(DependencyGraph*)>& transform,
    std::shared_ptr<const DependencyGraph>* graph, int* tasks, std::string* error) {
  const std::string signature = request.Signature();
  {
    std::lock_guard<std::mutex> lock(transforms_mu_);
    auto it = transforms_.find(signature);
    if (it != transforms_.end()) {
      it->second.sequence = ++transform_sequence_;
      *graph = it->second.graph;
      *tasks = it->second.tasks;
      return SessionStatus::kOk;
    }
  }

  // Build outside the lock: clone + transform can take tens of milliseconds
  // and the baseline graph supports concurrent const access (the SweepRunner
  // contract).
  auto transformed = std::make_shared<DependencyGraph>(daydream_.CloneGraph());
  transform(transformed.get());
  // Structural lint before anyone compiles this graph — SimPlan::Compile
  // DD_CHECKs on a broken structure, and a daemon must refuse, not abort.
  const LintReport report = GraphLint::LintStructure(*transformed);
  if (!report.ok()) {
    *error = StrFormat("what-if '%s' produced an invalid graph:\n", request.what_if.c_str()) +
             report.ToString();
    return SessionStatus::kLintFailed;
  }

  std::lock_guard<std::mutex> lock(transforms_mu_);
  auto it = transforms_.find(signature);
  if (it == transforms_.end()) {
    CachedTransform entry;
    entry.graph = std::move(transformed);
    entry.tasks = entry.graph->num_alive();
    entry.sequence = ++transform_sequence_;
    it = transforms_.emplace(signature, std::move(entry)).first;
    while (transforms_.size() > options_.plan_cache_capacity) {
      auto victim = std::min_element(transforms_.begin(), transforms_.end(),
                                     [](const auto& a, const auto& b) {
                                       return a.second.sequence < b.second.sequence;
                                     });
      if (victim == it) {
        break;
      }
      // The victim's graph is unreachable now, so its cached plans are too.
      plan_cache_.EraseStamp(victim->second.graph->structure_stamp());
      transforms_.erase(victim);
    }
  } else {
    // A concurrent builder raced us to this signature. Its graph carries a
    // different structure stamp, so adopt the winner's — mixing the two
    // would split the plan cache over stamps that denote the same request.
    it->second.sequence = ++transform_sequence_;
  }
  *graph = it->second.graph;
  *tasks = it->second.tasks;
  return SessionStatus::kOk;
}

SessionStatus TraceSession::Predict(const WhatIfRequest& request, PredictOutcome* outcome,
                                    std::string* error, const Deadline& deadline) {
  std::function<void(DependencyGraph*)> transform;
  const SessionStatus resolved = ResolveTransform(request, &transform, error);
  if (resolved != SessionStatus::kOk) {
    return resolved;
  }

  std::shared_ptr<const DependencyGraph> graph;
  int tasks = 0;
  const SessionStatus built = TransformedGraph(request, transform, &graph, &tasks, error);
  if (built != SessionStatus::kOk) {
    return built;
  }
  if (deadline.Expired()) {
    *error = "deadline expired after the what-if transform";
    return SessionStatus::kDeadlineExceeded;
  }

  if (request.validate) {
    // Strict mode (`predict --validate`): the full lint catalog over the
    // transformed graph, with every finding reported, before any prediction.
    const LintReport report = GraphLint::LintGraph(*graph);
    if (!report.ok()) {
      *error = StrFormat("what-if '%s' fails lint:\n", request.what_if.c_str()) +
               report.ToString();
      return SessionStatus::kLintFailed;
    }
  }

  outcome->tasks = tasks;
  outcome->prediction.baseline = daydream_.BaselineSimTime();

  if (request.engine == EngineKind::kReference) {
    // The Algorithm-1 differential-debugging scan has no compiled plan to
    // cache; it bypasses the PlanCache entirely.
    outcome->plan_cache_hit = false;
    const Simulator simulator(std::make_shared<EarliestStartScheduler>(), EngineKind::kReference);
    outcome->prediction.predicted = simulator.Run(*graph).makespan;
    return SessionStatus::kOk;
  }

  const PlanCache::Key key{graph->structure_stamp(), kDefaultSchedulerKey, request.Signature()};
  std::shared_ptr<const SimPlan> plan = plan_cache_.Get(key);
  outcome->plan_cache_hit = plan != nullptr;
  if (plan == nullptr) {
    if (FaultInjector::Global().ShouldFail("plan_compile")) {
      *error = "injected fault at plan_compile";
      return SessionStatus::kUnavailable;
    }
    // Timing-only transforms leave the baseline structure stamp intact, so
    // the baseline plan donates its structure block (Retime); anything else
    // pays the full CSR compile.
    const bool retime = daydream_.baseline_plan().CompatibleWith(*graph);
    const Simulator simulator;
    plan = std::make_shared<const SimPlan>(
        simulator.Compile(*graph, retime ? &daydream_.baseline_plan() : nullptr));
    plan_cache_.Put(key, plan, retime);
  }
  if (deadline.Expired()) {
    *error = "deadline expired before plan dispatch";
    return SessionStatus::kDeadlineExceeded;
  }
  // sim_jobs is clamped to the machine here (the serve executor additionally
  // caps it against its own worker count before the request reaches us).
  const int sim_jobs =
      std::clamp(request.sim_jobs, 1,
                 std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
  if (sim_jobs > 1) {
    // The sharded engine checks the deadline between synchronization
    // horizons — the only dispatch path with a cooperative mid-run exit.
    bool deadline_hit = false;
    outcome->prediction.predicted =
        RunPlanParallel(*plan, sim_jobs, nullptr, &deadline, &deadline_hit).makespan;
    if (deadline_hit) {
      *error = "deadline expired during sharded plan dispatch";
      return SessionStatus::kDeadlineExceeded;
    }
  } else {
    outcome->prediction.predicted = plan->Run().makespan;
  }
  return SessionStatus::kOk;
}

std::vector<SweepOutcome> TraceSession::Sweep(const std::vector<SweepCase>& cases,
                                              const SweepOptions& options,
                                              bool* deadline_exceeded) const {
  return SweepRunner(daydream_, options).Run(cases, deadline_exceeded);
}

SessionStatus TraceSession::Lint(const WhatIfRequest* request, LintReport* report,
                                 bool* plan_passes_run, std::string* error) const {
  std::function<void(DependencyGraph*)> transform;
  if (request != nullptr) {
    const SessionStatus resolved = ResolveTransform(*request, &transform, error);
    if (resolved != SessionStatus::kOk) {
      return resolved;
    }
  }

  DependencyGraph graph = daydream_.CloneGraph();
  if (transform) {
    transform(&graph);
  }
  *report = GraphLint::LintGraph(graph);

  // Lint the compiled plan too — but only for a graph whose structure held
  // up, since Compile DD_CHECKs on (and a cyclic graph would wedge it).
  *plan_passes_run = report->ok();
  if (report->ok()) {
    const SimPlan plan = Simulator().Compile(graph);
    const LintReport plan_report = GraphLint::LintPlan(plan, graph);
    report->findings.insert(report->findings.end(), plan_report.findings.begin(),
                            plan_report.findings.end());
    report->passes_run.insert(report->passes_run.end(), plan_report.passes_run.begin(),
                              plan_report.passes_run.end());
    report->truncated = report->truncated || plan_report.truncated;
    report->num_errors += plan_report.num_errors;
    report->num_warnings += plan_report.num_warnings;
  }
  return SessionStatus::kOk;
}

std::string TraceSession::ReportText() const {
  const Trace& trace = daydream_.trace();
  std::string out;
  out += "model:  " + trace.model_name() + "\n";
  out += "config: " + trace.config() + "\n";
  out += StrFormat("events: %zu over %.1f ms\n\n", trace.size(), ToMs(trace.makespan()));
  out += ComputeBreakdown(trace).Summary() + "\n";
  out += ComputeCriticalPath(daydream_.graph()).Summary() + "\n\n";
  out += "hottest layer phases by GPU time:\n" + BuildLayerReport(trace).ToString(12);
  return out;
}

void SessionManager::EnforceQuotasLocked(const std::string& keep) {
  auto over_quota = [this] {
    if (limits_.max_sessions != 0 && sessions_.size() > limits_.max_sessions) {
      return true;
    }
    if (limits_.max_resident_bytes != 0) {
      size_t resident = 0;
      for (const Entry& entry : sessions_) {
        resident += entry.session->resident_bytes();
      }
      return resident > limits_.max_resident_bytes;
    }
    return false;
  };
  while (over_quota()) {
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->handle == keep) {
        continue;  // the just-opened session must survive its own admission
      }
      if (victim == sessions_.end() || it->last_use < victim->last_use) {
        victim = it;
      }
    }
    if (victim == sessions_.end()) {
      break;  // only `keep` is left; a single over-budget session is admitted
    }
    sessions_.erase(victim);
    ++evicted_;
  }
}

std::string SessionManager::Open(std::shared_ptr<TraceSession> session) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string handle = StrFormat("s%llu", static_cast<unsigned long long>(++next_handle_));
  sessions_.push_back(Entry{handle, std::move(session), ++use_clock_});
  EnforceQuotasLocked(handle);
  return handle;
}

std::shared_ptr<TraceSession> SessionManager::Get(const std::string& handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& entry : sessions_) {
    if (entry.handle == handle) {
      entry.last_use = ++use_clock_;  // LRU bump: active sessions evict last
      return entry.session;
    }
  }
  return nullptr;
}

bool SessionManager::Close(const std::string& handle) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->handle == handle) {
      sessions_.erase(it);
      return true;
    }
  }
  return false;
}

size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

uint64_t SessionManager::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

size_t SessionManager::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t resident = 0;
  for (const Entry& entry : sessions_) {
    resident += entry.session->resident_bytes();
  }
  return resident;
}

std::vector<std::string> SessionManager::Handles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> handles;
  handles.reserve(sessions_.size());
  for (const Entry& entry : sessions_) {
    handles.push_back(entry.handle);
  }
  return handles;
}

}  // namespace daydream

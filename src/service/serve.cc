#include "src/service/serve.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/service/request_executor.h"
#include "src/service/version.h"

namespace daydream {

namespace {

// Executes request lines on a bounded worker pool and hands each response to
// a sink (which serializes writes). Drain() is the graceful-shutdown barrier:
// every accepted line gets its response before the transport closes.
class RequestPool {
 public:
  using Sink = std::function<void(const RequestExecutor::Response&)>;

  RequestPool(RequestExecutor* executor, int workers, Sink sink)
      : executor_(executor), sink_(std::move(sink)) {
    const int count = workers < 1 ? 1 : workers;
    threads_.reserve(count);
    for (int i = 0; i < count; ++i) {
      threads_.emplace_back([this] { Worker(); });
    }
  }

  ~RequestPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& thread : threads_) {
      thread.join();
    }
  }

  void Submit(std::string line) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(line));
      ++pending_;
    }
    ready_.notify_one();
  }

  // Blocks until every submitted line has produced its response.
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return pending_ == 0; });
  }

  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  void Worker() {
    for (;;) {
      std::string line;
      {
        std::unique_lock<std::mutex> lock(mu_);
        ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // stopping_, and nothing left to do
        }
        line = std::move(queue_.front());
        queue_.pop_front();
      }
      const RequestExecutor::Response response = executor_->Handle(line);
      if (response.shutdown) {
        shutdown_requested_.store(true);
      }
      sink_(response);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
      }
      drained_.notify_all();
    }
  }

  RequestExecutor* executor_;
  Sink sink_;
  std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable drained_;
  std::deque<std::string> queue_;
  int pending_ = 0;
  bool stopping_ = false;
  std::atomic<bool> shutdown_requested_{false};
  std::vector<std::thread> threads_;
};

}  // namespace

std::string ServeHelloBanner() {
  return "{\"daydream\": \"serve\", \"hello\": " + DaydreamVersionJson() + "}";
}

int RunServeStdio(std::istream& in, std::ostream& out, const ServeOptions& options) {
  RequestExecutor executor(options.session, options.workers, options.sim_jobs);
  std::mutex out_mu;
  {
    std::lock_guard<std::mutex> lock(out_mu);
    out << ServeHelloBanner() << "\n" << std::flush;
  }
  RequestPool pool(&executor, options.workers,
                   [&out, &out_mu](const RequestExecutor::Response& response) {
                     std::lock_guard<std::mutex> lock(out_mu);
                     out << response.line << "\n" << std::flush;
                   });
  std::string line;
  while (!pool.shutdown_requested() && std::getline(in, line)) {
    if (line.empty()) {
      continue;  // blank lines are keep-alives, not requests
    }
    pool.Submit(std::move(line));
    line.clear();
  }
  pool.Drain();
  return 0;
}

namespace {

// One TCP connection: banner, then line-in/line-out against the shared
// executor until the peer closes or a shutdown verb lands.
void ServeConnection(int fd, RequestExecutor* executor, const ServeOptions& options,
                     const std::function<void()>& on_shutdown) {
  std::mutex out_mu;
  auto write_line = [fd, &out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mu);
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        return;  // peer went away; nothing useful to do with the rest
      }
      sent += static_cast<size_t>(n);
    }
  };
  write_line(ServeHelloBanner());

  RequestPool pool(executor, options.workers,
                   [&write_line](const RequestExecutor::Response& response) {
                     write_line(response.line);
                   });
  std::string buffer;
  char chunk[4096];
  while (!pool.shutdown_requested()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t newline = buffer.find('\n', start); newline != std::string::npos;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (!line.empty()) {
        pool.Submit(std::move(line));
      }
    }
    buffer.erase(0, start);
  }
  pool.Drain();
  if (pool.shutdown_requested()) {
    on_shutdown();
  }
  ::close(fd);
}

}  // namespace

int RunServeTcp(int port, const ServeOptions& options) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::cerr << "serve: cannot listen on port " << port << ": " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::cout << "daydream serve listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n"
            << std::flush;

  RequestExecutor executor(options.session, options.workers, options.sim_jobs);
  std::atomic<bool> shutting_down{false};
  // A shutdown verb stops the accept loop by shutting the listener down;
  // the blocked accept() then fails and the loop exits.
  auto on_shutdown = [&shutting_down, listen_fd] {
    shutting_down.store(true);
    ::shutdown(listen_fd, SHUT_RDWR);
  };

  std::vector<std::thread> connections;
  while (!shutting_down.load()) {
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      break;  // listener shut down (or hard error); stop accepting
    }
    connections.emplace_back(
        [conn_fd, &executor, &options, &on_shutdown] {
          ServeConnection(conn_fd, &executor, options, on_shutdown);
        });
  }
  for (std::thread& connection : connections) {
    connection.join();
  }
  ::close(listen_fd);
  return 0;
}

}  // namespace daydream

#include "src/service/serve.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <functional>
#include <iostream>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/service/request_executor.h"
#include "src/service/version.h"
#include "src/util/deadline.h"
#include "src/util/fault.h"

namespace daydream {

namespace {

// --- Graceful drain -------------------------------------------------------
//
// SIGINT/SIGTERM request a drain, not an exit: stop accepting new input,
// answer everything already accepted, return 0. The handler is async-signal-
// safe (a flag store and one pipe write); the transports notice either
// through the self-pipe (TCP poll loop) or through the EINTR the handler
// causes in a blocked read (stdio — sa_flags deliberately omits SA_RESTART).

std::atomic<bool> g_drain{false};
int g_drain_pipe[2] = {-1, -1};

void DrainSignalHandler(int /*signum*/) {
  g_drain.store(true, std::memory_order_relaxed);
  if (g_drain_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(g_drain_pipe[1], &byte, 1);
  }
}

bool DrainRequested() { return g_drain.load(std::memory_order_relaxed); }

void InstallDrainHandlers() {
  static bool installed = false;
  if (installed) {
    return;
  }
  installed = true;
  if (::pipe(g_drain_pipe) != 0) {
    g_drain_pipe[0] = g_drain_pipe[1] = -1;
  }
  struct sigaction action {};
  action.sa_handler = DrainSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocked reads must EINTR so loops notice
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

// --- Worker pool ----------------------------------------------------------

// Executes request lines on a bounded worker pool and hands each response to
// a sink (which serializes writes). Admission control happens at Submit: a
// full queue sheds the request with an `overloaded` envelope instead of
// buffering without bound, and an admission-stamped deadline rides along so a
// request that died waiting is answered `deadline_exceeded` without burning a
// worker on it. Drain() is the graceful-shutdown barrier: every accepted
// line gets its response before the transport closes.
class RequestPool {
 public:
  using Sink = std::function<void(const RequestExecutor::Response&)>;

  RequestPool(RequestExecutor* executor, int workers, Sink sink)
      : executor_(executor), sink_(std::move(sink)) {
    const int count = workers < 1 ? 1 : workers;
    threads_.reserve(count);
    for (int i = 0; i < count; ++i) {
      threads_.emplace_back([this] { Worker(); });
    }
  }

  ~RequestPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    ready_.notify_all();
    for (std::thread& thread : threads_) {
      thread.join();
    }
  }

  void Submit(std::string line) {
    const ServeLimits& limits = executor_->limits();
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (limits.max_queue > 0 && static_cast<int>(queue_.size()) >= limits.max_queue) {
        shed = true;
      } else {
        Item item;
        item.line = std::move(line);
        if (limits.request_timeout_ms > 0) {
          item.deadline = Deadline::AfterMs(limits.request_timeout_ms);
        }
        queue_.push_back(std::move(item));
        ++pending_;
        executor_->counters().RecordQueueDepth(static_cast<int>(queue_.size()));
      }
    }
    if (shed) {
      // Outside the lock: the envelope write is the sink's problem, the
      // queue must not serialize behind it. Shed requests never enter
      // pending_, so Drain() does not wait on them.
      RequestExecutor::Response response;
      response.line = executor_->OverloadedResponse(line);
      sink_(response);
      return;
    }
    ready_.notify_one();
  }

  // Blocks until every submitted line has produced its response.
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return pending_ == 0; });
  }

  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  struct Item {
    std::string line;
    Deadline deadline;  // stamped at admission; unbounded without a timeout
  };

  void Worker() {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // stopping_, and nothing left to do
        }
        item = std::move(queue_.front());
        queue_.pop_front();
      }
      RequestExecutor::Response response;
      if (item.deadline.Expired()) {
        // Died waiting in the queue: answer without executing, freeing this
        // worker for requests that can still make their deadline.
        response.line = executor_->ExpiredResponse(item.line);
      } else if (FaultInjector::Global().ShouldFail("worker_execute")) {
        response.line = executor_->FaultedResponse(item.line, "worker_execute");
      } else {
        response = executor_->Handle(item.line, item.deadline);
      }
      if (response.shutdown) {
        shutdown_requested_.store(true);
      }
      sink_(response);
      {
        std::lock_guard<std::mutex> lock(mu_);
        --pending_;
      }
      drained_.notify_all();
    }
  }

  RequestExecutor* executor_;
  Sink sink_;
  std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable drained_;
  std::deque<Item> queue_;
  int pending_ = 0;
  bool stopping_ = false;
  std::atomic<bool> shutdown_requested_{false};
  std::vector<std::thread> threads_;
};

// --- Bounded line reading (stdio) -----------------------------------------

enum class LineStatus { kLine, kEof, kOversized };

// getline with a length bound: an oversized line is discarded through its
// newline (the stream stays usable) and reported so the caller can answer
// one `bad_request` envelope instead of buffering an unbounded line.
LineStatus ReadBoundedLine(std::istream& in, std::string* line, size_t max_bytes) {
  line->clear();
  std::streambuf* buf = in.rdbuf();
  if (buf == nullptr) {
    in.setstate(std::ios::badbit);
    return LineStatus::kEof;
  }
  for (;;) {
    const int c = buf->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      return line->empty() ? LineStatus::kEof : LineStatus::kLine;
    }
    if (c == '\n') {
      return LineStatus::kLine;
    }
    if (max_bytes > 0 && line->size() >= max_bytes) {
      for (int d = buf->sbumpc();
           d != std::char_traits<char>::eof() && d != '\n'; d = buf->sbumpc()) {
      }
      return LineStatus::kOversized;
    }
    line->push_back(static_cast<char>(c));
  }
}

}  // namespace

std::string ServeHelloBanner() {
  return "{\"daydream\": \"serve\", \"hello\": " + DaydreamVersionJson() + "}";
}

int RunServeStdio(std::istream& in, std::ostream& out, const ServeOptions& options) {
  if (options.install_signal_handlers) {
    InstallDrainHandlers();
  }
  RequestExecutor executor(options.session, options.workers, options.sim_jobs, options.limits);
  std::mutex out_mu;
  auto emit = [&out, &out_mu](const std::string& text) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << text << "\n" << std::flush;
  };
  emit(ServeHelloBanner());
  RequestPool pool(&executor, options.workers,
                   [&emit](const RequestExecutor::Response& response) { emit(response.line); });
  std::string line;
  while (!pool.shutdown_requested() && !DrainRequested()) {
    const LineStatus status = ReadBoundedLine(in, &line, options.limits.max_line_bytes);
    if (status == LineStatus::kOversized) {
      emit(executor.OversizedResponse());
      continue;
    }
    if (status == LineStatus::kEof) {
      break;
    }
    if (!line.empty()) {  // blank lines are keep-alives, not requests
      pool.Submit(std::move(line));
      line.clear();
    }
    if (!in.good()) {
      break;  // EOF after a final unterminated line, or an EINTR'd drain
    }
  }
  pool.Drain();
  return 0;
}

namespace {

// One TCP connection: banner, then line-in/line-out against the shared
// executor until the peer closes, a limit trips, or a shutdown verb lands.
void ServeConnection(int fd, RequestExecutor* executor, const ServeOptions& options,
                     const std::function<void()>& on_shutdown) {
  executor->counters().active_connections.fetch_add(1, std::memory_order_relaxed);
  std::mutex out_mu;
  auto write_line = [fd, &out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mu);
    const std::string framed = line + "\n";
    // Fault site: socket_write degrades each send to one byte, exercising
    // the short-write retry path — the line must still go out whole (the
    // exactly-one-envelope invariant is on this loop).
    const size_t max_chunk =
        FaultInjector::Global().ShouldFail("socket_write") ? 1 : framed.size();
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + sent,
                               std::min(framed.size() - sent, max_chunk), MSG_NOSIGNAL);
      if (n <= 0) {
        return;  // peer went away; nothing useful to do with the rest
      }
      sent += static_cast<size_t>(n);
    }
  };
  write_line(ServeHelloBanner());

  RequestPool pool(executor, options.workers,
                   [&write_line](const RequestExecutor::Response& response) {
                     write_line(response.line);
                   });
  const size_t max_line = options.limits.max_line_bytes;
  bool oversized = false;
  std::string buffer;
  char chunk[4096];
  while (!pool.shutdown_requested()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t newline = buffer.find('\n', start); newline != std::string::npos;
         newline = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      if (max_line > 0 && line.size() > max_line) {
        oversized = true;
        break;
      }
      if (!line.empty()) {
        pool.Submit(std::move(line));
      }
    }
    buffer.erase(0, start);
    // A peer streaming a newline-less line used to grow `buffer` without
    // bound — the single-client OOM this limit exists for.
    if (!oversized && max_line > 0 && buffer.size() > max_line) {
      oversized = true;
    }
    if (oversized) {
      write_line(executor->OversizedResponse());
      break;  // protocol framing is gone; close after draining
    }
  }
  pool.Drain();
  if (pool.shutdown_requested()) {
    on_shutdown();
  }
  ::close(fd);
  executor->counters().active_connections.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

int RunServeTcp(int port, const ServeOptions& options) {
  if (options.install_signal_handlers) {
    InstallDrainHandlers();
  }
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::cerr << "serve: cannot listen on port " << port << ": " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::cout << "daydream serve listening on 127.0.0.1:" << ntohs(addr.sin_port) << "\n"
            << std::flush;

  RequestExecutor executor(options.session, options.workers, options.sim_jobs, options.limits);
  std::atomic<bool> shutting_down{false};
  // A shutdown verb stops the accept loop by shutting the listener down;
  // poll() then reports the listener readable and accept() fails.
  auto on_shutdown = [&shutting_down, listen_fd] {
    shutting_down.store(true);
    ::shutdown(listen_fd, SHUT_RDWR);
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::list<std::unique_ptr<Connection>> connections;
  auto reap = [&connections] {
    for (auto it = connections.begin(); it != connections.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        (*it)->thread.join();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (!shutting_down.load() && !DrainRequested()) {
    // Finished connection threads are joined here, in the accept loop, so a
    // long-lived daemon does not accumulate one zombie thread per past
    // client. The poll timeout bounds how long a completed thread lingers
    // when no new connection arrives.
    reap();
    struct pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    nfds_t nfds = 1;
    if (g_drain_pipe[0] >= 0) {
      fds[1] = {g_drain_pipe[0], POLLIN, 0};
      nfds = 2;
    }
    const int rc = ::poll(fds, nfds, 250);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;  // signal; the loop condition re-checks the drain flag
      }
      break;
    }
    if (rc == 0) {
      continue;  // timeout: loop to reap and re-check flags
    }
    if (nfds == 2 && (fds[1].revents & POLLIN) != 0) {
      break;  // drain signal via the self-pipe
    }
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
      continue;
    }
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener shut down (or hard error); stop accepting
    }
    if (options.limits.max_connections > 0 &&
        static_cast<int>(connections.size()) >= options.limits.max_connections) {
      // Refuse with one well-formed line so the client sees backpressure,
      // not a silent hangup.
      executor.counters().connections_refused.fetch_add(1, std::memory_order_relaxed);
      const std::string refusal =
          "{\"ok\": false, \"code\": \"overloaded\", "
          "\"error\": \"connection limit reached; retry later\"}\n";
      size_t sent = 0;
      while (sent < refusal.size()) {
        const ssize_t n =
            ::send(conn_fd, refusal.data() + sent, refusal.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
          break;
        }
        sent += static_cast<size_t>(n);
      }
      ::close(conn_fd);
      continue;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = conn_fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([raw, &executor, &options, &on_shutdown] {
      ServeConnection(raw->fd, &executor, options, on_shutdown);
      raw->done.store(true, std::memory_order_release);
    });
    connections.push_back(std::move(connection));
  }
  // Drain: no new input on any live connection (recv unblocks and returns 0),
  // but every already-accepted request still flushes its response before the
  // connection thread exits — the exactly-one-envelope guarantee holds
  // through shutdown.
  for (const auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RD);
  }
  for (const auto& connection : connections) {
    connection->thread.join();
  }
  ::close(listen_fd);
  return 0;
}

}  // namespace daydream

// Build/protocol version identity, shared by `daydream version --json` and
// the `daydream serve` hello banner so service clients can check
// compatibility before issuing requests.
#ifndef SRC_SERVICE_VERSION_H_
#define SRC_SERVICE_VERSION_H_

#include <string>

namespace daydream {

// Bumped whenever the serve request/response protocol changes incompatibly
// (field renames, envelope shape); additive fields do not bump it.
inline constexpr int kServeProtocolVersion = 1;

// The .ddtrace header this build reads/writes (src/trace/trace_io.cc).
inline constexpr char kTraceSchemaVersion[] = "daydream-trace v1";

// `git describe --always --dirty --tags` captured at configure time,
// "unknown" when the build tree had no git metadata.
std::string DaydreamVersionString();

// Single-line JSON: {"version": ..., "protocol": N, "trace_schema": ...,
// "hardware_concurrency": N}. Embedded verbatim in the serve hello banner and
// printed by `daydream version --json`.
std::string DaydreamVersionJson();

}  // namespace daydream

#endif  // SRC_SERVICE_VERSION_H_

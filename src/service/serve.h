// `daydream serve` front ends: the long-lived prediction daemon.
//
// Both transports speak the same protocol (docs/serve.md, implemented by
// RequestExecutor): a hello banner on connect, then one response line per
// request line. Requests are executed by a small worker pool, so several
// predict/sweep queries against warm sessions run concurrently and responses
// may interleave out of request order — clients correlate by `id`.
//
//   - RunServeStdio reads requests from `in` until EOF or a shutdown verb;
//     tests drive it with string streams, and `daydream serve` without
//     --port wires it to stdin/stdout for inetd-style embedding.
//   - RunServeTcp listens on 127.0.0.1:<port> (port 0 picks a free port,
//     announced on stdout) and serves each connection on its own thread
//     against one shared session table, until a shutdown verb stops the
//     accept loop and drains open connections.
//
// Hardening (docs/serve.md, "Limits & fault tolerance"): both transports
// enforce ServeOptions::limits — bounded request queues that shed with
// `overloaded` envelopes, bounded line lengths, a TCP connection cap, and
// per-request deadlines — and both drain gracefully on SIGINT/SIGTERM when
// install_signal_handlers is set: stop accepting input, answer everything
// already accepted, exit 0.
#ifndef SRC_SERVICE_SERVE_H_
#define SRC_SERVICE_SERVE_H_

#include <iosfwd>

#include "src/service/limits.h"
#include "src/service/session.h"

namespace daydream {

struct ServeOptions {
  // Request worker threads per transport stream; 1 = strictly in-order
  // responses.
  int workers = 4;
  // Default shards per predict/sweep plan dispatch (`daydream serve
  // --sim-jobs`); requests may override with their own sim_jobs field. The
  // executor clamps the effective value so workers × sim_jobs stays within
  // hardware_concurrency (the `stats` verb reports the cap).
  int sim_jobs = 1;
  SessionOptions session;
  // Admission control and resource quotas (src/service/limits.h).
  ServeLimits limits;
  // Install SIGINT/SIGTERM handlers that trigger a graceful drain (self-pipe;
  // the handlers are process-global). The CLI sets this; tests that run the
  // transports in-process leave it off and drive shutdown via the protocol.
  bool install_signal_handlers = false;
};

// The hello banner (single line, no trailing newline): identifies the
// protocol and embeds the same version JSON `daydream version --json` prints.
std::string ServeHelloBanner();

// Returns 0 after a clean drain (EOF, shutdown verb, or drain signal).
int RunServeStdio(std::istream& in, std::ostream& out, const ServeOptions& options = {});

// Returns 0 on clean shutdown, 1 when the socket could not be set up (the
// error is printed to stderr).
int RunServeTcp(int port, const ServeOptions& options = {});

}  // namespace daydream

#endif  // SRC_SERVICE_SERVE_H_

#include "src/service/version.h"

#include <algorithm>
#include <thread>

#include "src/trace/chrome_trace.h"  // JsonEscape
#include "src/util/string_util.h"

#ifndef DAYDREAM_GIT_VERSION
#define DAYDREAM_GIT_VERSION "unknown"
#endif

namespace daydream {

std::string DaydreamVersionString() { return DAYDREAM_GIT_VERSION; }

std::string DaydreamVersionJson() {
  // hardware_concurrency is additive (no protocol bump): clients sizing
  // --sim-jobs / --jobs read the machine width from the hello banner instead
  // of guessing.
  return StrFormat("{\"version\": \"%s\", \"protocol\": %d, \"trace_schema\": \"%s\", "
                   "\"hardware_concurrency\": %d}",
                   JsonEscape(DaydreamVersionString()).c_str(), kServeProtocolVersion,
                   kTraceSchemaVersion,
                   std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
}

}  // namespace daydream

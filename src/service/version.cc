#include "src/service/version.h"

#include "src/trace/chrome_trace.h"  // JsonEscape
#include "src/util/string_util.h"

#ifndef DAYDREAM_GIT_VERSION
#define DAYDREAM_GIT_VERSION "unknown"
#endif

namespace daydream {

std::string DaydreamVersionString() { return DAYDREAM_GIT_VERSION; }

std::string DaydreamVersionJson() {
  return StrFormat("{\"version\": \"%s\", \"protocol\": %d, \"trace_schema\": \"%s\"}",
                   JsonEscape(DaydreamVersionString()).c_str(), kServeProtocolVersion,
                   kTraceSchemaVersion);
}

}  // namespace daydream

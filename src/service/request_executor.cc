#include "src/service/request_executor.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/optimizations/p3.h"
#include "src/core/transform.h"
#include "src/models/model_zoo.h"
#include "src/service/version.h"
#include "src/trace/chrome_trace.h"
#include "src/trace/trace_io.h"
#include "src/util/fault.h"
#include "src/util/json.h"
#include "src/util/string_util.h"
#include "src/util/time_units.h"
#include "tools/cli_args.h"

namespace daydream {

namespace {

// Builds one single-line JSON response object. Values arrive pre-formatted
// (AddRaw) or are escaped/formatted here; keys are trusted literals.
// StrFormat (out-of-line) instead of operator+ chains: GCC 12's -Wrestrict
// misfires on inlined literal-string concatenation (PR105651).
class ResponseWriter {
 public:
  void AddRaw(const std::string& key, const std::string& raw) {
    body_ += separator();
    body_ += StrFormat("\"%s\": %s", key.c_str(), raw.c_str());
  }
  void AddString(const std::string& key, const std::string& value) {
    AddRaw(key, StrFormat("\"%s\"", JsonEscape(value).c_str()));
  }
  void AddBool(const std::string& key, bool value) { AddRaw(key, value ? "true" : "false"); }
  void AddInt(const std::string& key, long long value) {
    AddRaw(key, StrFormat("%lld", value));
  }
  void AddMs(const std::string& key, TimeNs value) {
    AddRaw(key, StrFormat("%.3f", ToMs(value)));
  }
  void AddDouble(const std::string& key, const char* fmt, double value) {
    AddRaw(key, StrFormat(fmt, value));
  }

  std::string Finish() const { return "{" + body_ + "}"; }

 private:
  const char* separator() { return body_.empty() ? "" : ", "; }
  std::string body_;
};

// The verb catalog, for the unknown-verb diagnostic. session.close is the
// namespaced alias of close (the session-layer verbs may grow siblings).
constexpr char kVerbs[] =
    "open, close, session.close, sessions, predict, sweep, lint, report, stats, version, ping, "
    "shutdown";

// The request id, re-encoded for the response. Numbers echo their untouched
// source token; strings are re-escaped; anything else (or no id) is omitted.
std::optional<std::string> IdToken(const JsonObject& request) {
  const JsonValue* id = request.Find("id");
  if (id == nullptr) {
    return std::nullopt;
  }
  switch (id->kind) {
    case JsonValue::Kind::kNumber:
      return id->raw;
    case JsonValue::Kind::kString:
      return StrFormat("\"%s\"", JsonEscape(id->string).c_str());
    case JsonValue::Kind::kBool:
      return std::string(id->boolean ? "true" : "false");
    case JsonValue::Kind::kNull:
      return std::nullopt;
  }
  return std::nullopt;
}

ResponseWriter BeginResponse(const std::optional<std::string>& id, bool ok) {
  ResponseWriter writer;
  if (id.has_value()) {
    writer.AddRaw("id", *id);
  }
  writer.AddBool("ok", ok);
  return writer;
}

std::string ErrorResponse(const std::optional<std::string>& id, const std::string& code,
                          const std::string& message) {
  ResponseWriter writer = BeginResponse(id, /*ok=*/false);
  writer.AddString("code", code);
  writer.AddString("error", message);
  return writer.Finish();
}

// Lowers a request's extra fields onto the CLI flag map so the serve
// protocol and the command line share one parsing path (tools/cli_args.h):
// `what_if` → --what-if, numbers keep their source token, `true` booleans
// become presence. Transport-level fields (id/verb/session/trace) are not
// flags.
Args RequestToArgs(const JsonObject& request, const std::string& verb) {
  Args args;
  args.command = verb;
  for (const auto& [key, value] : request.fields()) {
    if (key == "id" || key == "verb" || key == "session" || key == "trace" || key == "format" ||
        key == "cache_capacity" || key == "timeout_ms") {
      continue;
    }
    std::string name = key;
    for (char& c : name) {
      if (c == '_') {
        c = '-';
      }
    }
    switch (value.kind) {
      case JsonValue::Kind::kString:
        args.flags[name] = value.string;
        break;
      case JsonValue::Kind::kNumber:
        args.flags[name] = value.raw;
        break;
      case JsonValue::Kind::kBool:
        if (value.boolean) {
          args.flags.insert_or_assign(name, std::string("1"));
        }
        break;
      case JsonValue::Kind::kNull:
        break;
    }
  }
  return args;
}

std::string StatusCode(SessionStatus status) {
  switch (status) {
    case SessionStatus::kOk:
      return "ok";
    case SessionStatus::kUnknownWhatIf:
      return "unknown_what_if";
    case SessionStatus::kBadRequest:
      return "bad_request";
    case SessionStatus::kLintFailed:
      return "lint_failed";
    case SessionStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case SessionStatus::kUnavailable:
      return "unavailable";
  }
  return "internal";
}

// The per-request shard budget: with `workers` requests potentially running
// at once, each may fan out to at most hw/workers shard threads before the
// daemon oversubscribes the machine.
int SimJobsCap(int workers) {
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return std::max(1, hw / std::max(1, workers));
}

// Best-effort id extraction for the pre-execution rejection envelopes: the
// line may be arbitrary garbage, in which case the envelope goes out without
// an id (same as parse_error).
std::optional<std::string> IdOfLine(const std::string& line) {
  std::string ignored;
  const std::optional<JsonObject> request = ParseJsonObject(line, &ignored);
  if (!request.has_value()) {
    return std::nullopt;
  }
  return IdToken(*request);
}

}  // namespace

RequestExecutor::RequestExecutor(SessionOptions session_options, int workers,
                                 int default_sim_jobs, ServeLimits limits)
    : session_options_(session_options),
      workers_(std::max(1, workers)),
      sim_jobs_cap_(SimJobsCap(workers)),
      default_sim_jobs_(std::clamp(default_sim_jobs, 1, sim_jobs_cap_)),
      limits_(limits),
      sessions_(SessionManagerLimits{limits.max_sessions, limits.max_resident_bytes}) {}

std::string RequestExecutor::OverloadedResponse(const std::string& line) {
  counters_.shed.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(IdOfLine(line), "overloaded",
                       "request queue is full; retry later or lower the request rate");
}

std::string RequestExecutor::ExpiredResponse(const std::string& line) {
  counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(IdOfLine(line), "deadline_exceeded",
                       "request deadline expired before execution started");
}

std::string RequestExecutor::FaultedResponse(const std::string& line, const std::string& site) {
  return ErrorResponse(IdOfLine(line), "unavailable", "injected fault at " + site);
}

std::string RequestExecutor::OversizedResponse() {
  counters_.oversized_lines.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(std::nullopt, "bad_request",
                       StrFormat("request line exceeds max_line_bytes (%zu)",
                                 limits_.max_line_bytes));
}

RequestExecutor::Response RequestExecutor::Handle(const std::string& line,
                                                  const Deadline& transport_deadline) {
  Response response;

  std::string parse_error;
  const std::optional<JsonObject> request = ParseJsonObject(line, &parse_error);
  if (!request.has_value()) {
    response.line = ErrorResponse(std::nullopt, "parse_error", parse_error);
    return response;
  }
  const std::optional<std::string> id = IdToken(*request);

  // The effective budget: the transport deadline (admission-stamped when the
  // daemon runs with --request-timeout-ms) tightened by the request's own
  // timeout_ms, which counts from execution start — a queued request cannot
  // consult its body before a worker picks it up.
  Deadline deadline = transport_deadline;
  if (request->Has("timeout_ms")) {
    const double timeout_ms = request->GetNumber("timeout_ms", -1.0);
    if (timeout_ms < 1.0) {
      response.line =
          ErrorResponse(id, "bad_request", "bad timeout_ms (expected a positive integer)");
      return response;
    }
    deadline = Deadline::Sooner(deadline, Deadline::AfterMs(static_cast<long long>(timeout_ms)));
  }

  const std::string verb = request->GetString("verb");
  if (verb.empty()) {
    response.line = ErrorResponse(id, "bad_request", "request needs a \"verb\" string field");
    return response;
  }

  if (verb == "ping") {
    response.line = BeginResponse(id, /*ok=*/true).Finish();
    return response;
  }
  if (verb == "version") {
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddString("version", DaydreamVersionString());
    writer.AddInt("protocol", kServeProtocolVersion);
    writer.AddString("trace_schema", kTraceSchemaVersion);
    response.line = writer.Finish();
    return response;
  }
  if (verb == "shutdown") {
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddBool("shutting_down", true);
    response.line = writer.Finish();
    response.shutdown = true;
    return response;
  }
  if (verb == "sessions") {
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    std::string list = "[";
    for (const std::string& handle : sessions_.Handles()) {
      if (list.size() > 1) {
        list += ", ";
      }
      list += StrFormat("\"%s\"", JsonEscape(handle).c_str());
    }
    list += "]";
    writer.AddRaw("sessions", list);
    response.line = writer.Finish();
    return response;
  }

  // Cooperative cancellation, first checkpoint: a request whose budget is
  // already gone must not start a heavy verb (the cheap verbs above always
  // answer — a ping should succeed even with an absurd timeout).
  const bool heavy = verb == "open" || verb == "predict" || verb == "sweep" || verb == "lint" ||
                     verb == "report";
  if (heavy && deadline.Expired()) {
    counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    response.line =
        ErrorResponse(id, "deadline_exceeded", "deadline expired before '" + verb + "' started");
    return response;
  }

  if (verb == "open") {
    if (FaultInjector::Global().ShouldFail("trace_load")) {
      response.line = ErrorResponse(id, "unavailable", "injected fault at trace_load");
      return response;
    }
    const std::string path = request->GetString("trace");
    if (path.empty()) {
      response.line = ErrorResponse(id, "bad_request", "open needs a \"trace\" path field");
      return response;
    }
    // Optional "format" field: ddtrace (default), cupti, or chrome — the
    // same importers `daydream import` uses (docs/trace.md).
    const std::string format_text = request->GetString("format", "ddtrace");
    const std::optional<TraceFormat> format = ParseTraceFormat(format_text);
    if (!format.has_value()) {
      response.line = ErrorResponse(
          id, "bad_request", "bad format '" + format_text + "' (expected ddtrace, cupti or chrome)");
      return response;
    }
    std::string read_error;
    std::optional<Trace> trace = ReadTraceFileAs(path, *format, &read_error);
    if (!trace.has_value()) {
      response.line =
          ErrorResponse(id, "bad_request", "cannot read trace from " + path + ": " + read_error);
      return response;
    }
    SessionOptions options = session_options_;
    if (request->Has("cache_capacity")) {
      const double capacity = request->GetNumber("cache_capacity", -1.0);
      if (capacity < 1.0) {
        response.line = ErrorResponse(id, "bad_request",
                                      "bad cache_capacity (expected a positive integer)");
        return response;
      }
      options.plan_cache_capacity = static_cast<size_t>(capacity);
    }
    std::string error;
    std::shared_ptr<TraceSession> session = TraceSession::Create(std::move(*trace), options, &error);
    if (session == nullptr) {
      response.line = ErrorResponse(id, "bad_request", error);
      return response;
    }
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddString("session", sessions_.Open(session));
    writer.AddString("model", session->trace().model_name());
    writer.AddString("config", session->trace().config());
    writer.AddInt("events", static_cast<long long>(session->trace().size()));
    writer.AddInt("tasks", session->daydream().graph().num_alive());
    writer.AddMs("baseline_ms", session->daydream().BaselineSimTime());
    response.line = writer.Finish();
    return response;
  }

  if (verb != "close" && verb != "session.close" && verb != "stats" && verb != "report" &&
      verb != "predict" && verb != "lint" && verb != "sweep") {
    response.line = ErrorResponse(
        id, "unknown_verb", "unknown verb '" + verb + "' (verbs: " + std::string(kVerbs) + ")");
    return response;
  }

  // Every remaining verb addresses an open session.
  const std::string handle = request->GetString("session");
  std::shared_ptr<TraceSession> session = sessions_.Get(handle);
  if (session == nullptr) {
    response.line = ErrorResponse(id, "unknown_session", "unknown session '" + handle + "'");
    return response;
  }

  if (verb == "close" || verb == "session.close") {
    sessions_.Close(handle);
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddBool("closed", true);
    response.line = writer.Finish();
    return response;
  }

  if (verb == "stats") {
    const PlanCacheStats stats = session->plan_cache_stats();
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddInt("plan_cache_size", static_cast<long long>(session->plan_cache_size()));
    writer.AddInt("plan_cache_hits", static_cast<long long>(stats.hits));
    writer.AddInt("plan_cache_misses", static_cast<long long>(stats.misses));
    writer.AddInt("plan_cache_evictions", static_cast<long long>(stats.evictions));
    writer.AddInt("plan_cache_retimes", static_cast<long long>(stats.retimes));
    writer.AddInt("plan_cache_compiles", static_cast<long long>(stats.compiles));
    // The daemon's effective thread budget, so clients can see how a
    // requested sim_jobs will be clamped before sending it.
    writer.AddInt("serve_workers", workers_);
    writer.AddInt("hardware_concurrency",
                  std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
    writer.AddInt("sim_jobs_cap", sim_jobs_cap_);
    // Admission control: the configured limits next to the counters that
    // show them firing (docs/serve.md, "Limits & fault tolerance").
    writer.AddInt("max_queue", limits_.max_queue);
    writer.AddInt("request_timeout_ms", limits_.request_timeout_ms);
    writer.AddInt("max_line_bytes", static_cast<long long>(limits_.max_line_bytes));
    writer.AddInt("max_connections", limits_.max_connections);
    writer.AddInt("max_sessions", static_cast<long long>(limits_.max_sessions));
    writer.AddInt("max_resident_bytes", static_cast<long long>(limits_.max_resident_bytes));
    writer.AddInt("shed", static_cast<long long>(counters_.shed.load(std::memory_order_relaxed)));
    writer.AddInt("deadline_exceeded",
                  static_cast<long long>(
                      counters_.deadline_exceeded.load(std::memory_order_relaxed)));
    writer.AddInt("oversized_lines",
                  static_cast<long long>(counters_.oversized_lines.load(std::memory_order_relaxed)));
    writer.AddInt("connections_refused",
                  static_cast<long long>(
                      counters_.connections_refused.load(std::memory_order_relaxed)));
    writer.AddInt("queue_high_water",
                  counters_.queue_high_water.load(std::memory_order_relaxed));
    writer.AddInt("active_connections",
                  counters_.active_connections.load(std::memory_order_relaxed));
    writer.AddInt("sessions_open", static_cast<long long>(sessions_.size()));
    writer.AddInt("sessions_evicted", static_cast<long long>(sessions_.evicted()));
    writer.AddInt("resident_bytes", static_cast<long long>(sessions_.resident_bytes()));
    // Fault-injection visibility: the armed spec (empty when unarmed) and how
    // many times any site fired — the chaos suite's liveness probe.
    writer.AddString("faults", FaultInjector::Global().SpecString());
    writer.AddInt("faults_fired",
                  static_cast<long long>(FaultInjector::Global().fired()));
    response.line = writer.Finish();
    return response;
  }

  if (verb == "report") {
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddString("report", session->ReportText());
    response.line = writer.Finish();
    return response;
  }

  const Args args = RequestToArgs(*request, verb);

  if (verb == "predict") {
    WhatIfRequest what_if;
    std::string error;
    if (!ParseWhatIfRequest(args, &what_if, &error)) {
      response.line = ErrorResponse(id, "bad_request", error);
      return response;
    }
    if (what_if.what_if == "p3") {
      // P3 is not a graph transform — it reports its own metric (the
      // steady-state parameter-server iteration), so it bypasses the plan
      // cache and the session's transform machinery entirely.
      if (!session->model_id().has_value()) {
        response.line = ErrorResponse(id, "bad_request", "trace lacks a known model name");
        return response;
      }
      // PredictPsIterationTime aborts on anything but a 2-iteration profile;
      // the daemon must refuse with an envelope instead.
      const size_t boundaries =
          session->daydream()
              .graph()
              .Select(All(ApiIs(ApiKind::kDeviceSynchronize), NameContains("iter_end")))
              .size();
      if (boundaries != 2) {
        response.line = ErrorResponse(
            id, "bad_request",
            "p3 needs a 2-iteration trace (re-run `daydream collect --iterations 2`)");
        return response;
      }
      PsWhatIf opts;
      opts.network = what_if.cluster.network;
      opts.num_servers = what_if.cluster.machines;
      const ModelGraph model =
          BuildModel(*session->model_id(), DefaultBatch(*session->model_id()));
      const TimeNs predicted = PredictPsIterationTime(session->daydream(), model, opts);
      ResponseWriter writer = BeginResponse(id, /*ok=*/true);
      writer.AddString("what_if", "p3");
      writer.AddMs("p3_iteration_ms", predicted);
      response.line = writer.Finish();
      return response;
    }
    // Thread-budget clamp: a request's sim_jobs (or the daemon default) may
    // not push workers × shards past the machine. Consumption-only — the
    // response carries no sim_jobs echo, so answers stay byte-identical
    // across shard counts.
    if (!args.Has("sim-jobs")) {
      what_if.sim_jobs = default_sim_jobs_;
    }
    what_if.sim_jobs = std::clamp(what_if.sim_jobs, 1, sim_jobs_cap_);
    PredictOutcome outcome;
    const SessionStatus status = session->Predict(what_if, &outcome, &error, deadline);
    if (status != SessionStatus::kOk) {
      if (status == SessionStatus::kDeadlineExceeded) {
        counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      }
      response.line = ErrorResponse(id, StatusCode(status), error);
      return response;
    }
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddString("what_if", what_if.what_if);
    writer.AddMs("baseline_ms", outcome.prediction.baseline);
    writer.AddMs("predicted_ms", outcome.prediction.predicted);
    writer.AddDouble("speedup_pct", "%.2f", outcome.prediction.SpeedupPct());
    writer.AddDouble("speedup_ratio", "%.3f", outcome.prediction.SpeedupRatio());
    writer.AddInt("tasks", outcome.tasks);
    writer.AddBool("cache_hit", outcome.plan_cache_hit);
    response.line = writer.Finish();
    return response;
  }

  if (verb == "lint") {
    std::string error;
    WhatIfRequest what_if;
    const bool has_what_if = !args.Get("what-if").empty();
    if (has_what_if && !ParseWhatIfRequest(args, &what_if, &error)) {
      response.line = ErrorResponse(id, "bad_request", error);
      return response;
    }
    LintReport report;
    bool plan_passes_run = false;
    const SessionStatus status =
        session->Lint(has_what_if ? &what_if : nullptr, &report, &plan_passes_run, &error);
    if (status == SessionStatus::kUnknownWhatIf) {
      response.line = ErrorResponse(id, "bad_request",
                                    "cannot lint what-if '" + what_if.what_if +
                                        "' (not a graph transform; see `predict`)");
      return response;
    }
    if (status != SessionStatus::kOk) {
      response.line = ErrorResponse(id, StatusCode(status), error);
      return response;
    }
    const bool strict = args.Has("strict");
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddInt("errors", report.errors());
    writer.AddInt("warnings", report.warnings());
    writer.AddBool("clean", report.errors() == 0 && (!strict || report.warnings() == 0));
    writer.AddBool("plan_passes_run", plan_passes_run);
    writer.AddString("report", report.ToString());
    response.line = writer.Finish();
    return response;
  }

  if (verb == "sweep") {
    std::string error;
    const std::optional<std::vector<ClusterConfig>> clusters = ParseClusterList(args, &error);
    if (!clusters.has_value()) {
      response.line = ErrorResponse(id, "bad_request", error);
      return response;
    }
    const std::optional<int> jobs = ParseInt(args.Get("jobs", "0"));
    if (!jobs.has_value() || *jobs < 0) {
      response.line = ErrorResponse(
          id, "bad_request",
          "bad jobs '" + args.Get("jobs") + "' (expected a non-negative integer)");
      return response;
    }
    const std::optional<EngineKind> engine = ParseEngineKind(args, &error);
    if (!engine.has_value()) {
      response.line = ErrorResponse(id, "bad_request", error);
      return response;
    }
    const std::optional<PipelineFlags> pipeline = ParsePipelineFlags(args, &error);
    if (!pipeline.has_value()) {
      response.line = ErrorResponse(id, "bad_request", error);
      return response;
    }
    std::vector<SweepCase> cases = BuildStandardSweep(session->trace(), *clusters);
    if (pipeline->enabled) {
      PipelineSweepSpec spec;
      spec.stages = pipeline->stages;
      spec.microbatches = pipeline->microbatches;
      spec.schedules = pipeline->schedules;
      spec.network = pipeline->network;
      if (!AppendPipelineSweep(&cases, session->trace(), spec)) {
        response.line = ErrorResponse(
            id, "bad_request", "trace lacks a known model name (needed for pipeline_stages)");
        return response;
      }
    }
    const std::optional<int> sim_jobs =
        ParseInt(args.Get("sim-jobs", StrFormat("%d", default_sim_jobs_)));
    if (!sim_jobs.has_value() || *sim_jobs < 1) {
      response.line = ErrorResponse(
          id, "bad_request",
          "bad sim_jobs '" + args.Get("sim-jobs") + "' (expected a positive integer)");
      return response;
    }
    SweepOptions options;
    options.num_threads = *jobs;
    options.engine = *engine;
    options.validate = args.Has("validate");
    options.sim_jobs = std::clamp(*sim_jobs, 1, sim_jobs_cap_);
    options.deadline = deadline;
    bool sweep_expired = false;
    std::vector<SweepOutcome> outcomes = session->Sweep(cases, options, &sweep_expired);
    if (sweep_expired) {
      counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      response.line = ErrorResponse(id, "deadline_exceeded",
                                    "deadline expired inside the sweep matrix");
      return response;
    }
    RankBySpeedup(&outcomes);
    ResponseWriter writer = BeginResponse(id, /*ok=*/true);
    writer.AddMs("baseline_ms", session->daydream().BaselineSimTime());
    std::string list = "[";
    for (const SweepOutcome& outcome : outcomes) {
      if (list.size() > 1) {
        list += ", ";
      }
      list += StrFormat("{\"name\": \"%s\", \"predicted_ms\": %.3f, \"speedup_pct\": %.2f, "
                        "\"speedup_ratio\": %.3f, \"tasks\": %d}",
                        JsonEscape(outcome.name).c_str(), ToMs(outcome.prediction.predicted),
                        outcome.prediction.SpeedupPct(), outcome.prediction.SpeedupRatio(),
                        outcome.tasks);
    }
    list += "]";
    writer.AddRaw("cases", list);
    response.line = writer.Finish();
    return response;
  }

  // Unreachable: the verb whitelist above is exhaustive.
  response.line = ErrorResponse(id, "internal", "verb dispatch fell through");
  return response;
}

}  // namespace daydream

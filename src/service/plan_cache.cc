#include "src/service/plan_cache.h"

#include <algorithm>
#include <functional>

#include "src/util/fault.h"

namespace daydream {

size_t PlanCache::KeyHash::operator()(const Key& key) const {
  size_t seed = std::hash<uint64_t>{}(key.stamp);
  auto mix = [&seed](size_t h) {
    seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  };
  mix(std::hash<std::string>{}(key.scheduler));
  mix(std::hash<std::string>{}(key.signature));
  return seed;
}

PlanCache::PlanCache(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

std::shared_ptr<const SimPlan> PlanCache::Get(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to most-recent
  return it->second->second;
}

void PlanCache::Put(const Key& key, std::shared_ptr<const SimPlan> plan, bool retimed) {
  // Fault site: a failed insert degrades gracefully — the request that built
  // the plan still answers from its local copy, the cache just stays cold.
  if (FaultInjector::Global().ShouldFail("plan_cache_insert")) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (retimed) {
    ++stats_.retimes;
  } else {
    ++stats_.compiles;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A concurrent builder raced us to the same key; keep the newest plan.
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PlanCache::EraseMatching(const std::function<bool(const Key&)>& predicate) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (predicate(it->first)) {
      index_.erase(it->first);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanCache::EraseStamp(uint64_t stamp) {
  EraseMatching([stamp](const Key& key) { return key.stamp == stamp; });
}

void PlanCache::Erase(uint64_t stamp, const std::string& signature) {
  EraseMatching([stamp, &signature](const Key& key) {
    return key.stamp == stamp && key.signature == signature;
  });
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace daydream

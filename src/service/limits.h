// ServeLimits / ServeCounters: the admission-control contract of the daemon.
//
// Every limit here exists because its absence is a single-client denial of
// service: an unbounded request queue buffers a flood until OOM, an unbounded
// line buffer lets one newline-less peer do the same, unlimited connections
// accumulate threads, unlimited sessions pin every trace ever opened. The
// limits are enforced at the edges (serve.cc transports, RequestExecutor,
// SessionManager) and reported — together with the counters that show them
// working — by the `stats` verb, so operators can see shedding, timeouts and
// eviction instead of guessing.
#ifndef SRC_SERVICE_LIMITS_H_
#define SRC_SERVICE_LIMITS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace daydream {

struct ServeLimits {
  // Queued-but-unstarted requests per transport stream; excess load is
  // answered with an `overloaded` envelope (shed, not buffered). 0 disables
  // the bound (tests only — a production daemon should always bound it).
  int max_queue = 256;
  // Per-request wall-clock budget measured from admission (enqueue); 0 = no
  // daemon-wide deadline. A request's own `timeout_ms` field can only
  // tighten it. Expired requests answer `deadline_exceeded`.
  int request_timeout_ms = 0;
  // Longest accepted request line, both transports. Oversized input answers
  // one `bad_request` envelope (and, on TCP, closes the connection).
  size_t max_line_bytes = 1 << 20;
  // Concurrent TCP connections; a connection past the cap is answered with a
  // single `overloaded` line and closed.
  int max_connections = 64;
  // Open sessions; opening past the cap evicts the least-recently-used
  // session (its handle answers `unknown_session` afterwards).
  size_t max_sessions = 16;
  // Resident trace-memory estimate across open sessions, in bytes; 0 = no
  // bound. Enforced by the same LRU eviction as max_sessions.
  size_t max_resident_bytes = 0;
};

// Shared monotone counters, written by the transports and the worker pool,
// read by the `stats` verb. Plain relaxed atomics: these are tallies, not
// synchronization.
struct ServeCounters {
  std::atomic<uint64_t> shed{0};               // requests answered `overloaded`
  std::atomic<uint64_t> deadline_exceeded{0};  // requests answered `deadline_exceeded`
  std::atomic<uint64_t> oversized_lines{0};    // lines rejected for length
  std::atomic<uint64_t> connections_refused{0};  // TCP accepts past the cap
  std::atomic<int> queue_high_water{0};        // deepest queue seen
  std::atomic<int> active_connections{0};      // live TCP connection threads

  void RecordQueueDepth(int depth) {
    int seen = queue_high_water.load(std::memory_order_relaxed);
    while (depth > seen &&
           !queue_high_water.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace daydream

#endif  // SRC_SERVICE_LIMITS_H_

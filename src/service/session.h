// TraceSession: the load-once / query-many lifecycle behind the prediction
// service.
//
// Every `daydream` CLI invocation used to re-read the trace, rebuild the
// dependency graph and recompile SimPlans from scratch. A TraceSession does
// that work exactly once — trace, built graph, layer map, baseline plan and
// baseline simulation — and then answers an arbitrary number of
// predict/sweep/lint queries against it:
//
//   - Predict resolves a WhatIfRequest to a graph transform (the resolution
//     logic that used to be inlined in the CLI), caches the transformed graph
//     per request signature, and serves the compiled plan from the PlanCache:
//     a repeated query is a lookup + plan dispatch; a timing-only what-if
//     that misses fills the cache through SimPlan::Retime over the baseline
//     structure instead of a full CSR compile.
//   - Sweep runs a case matrix through the existing SweepRunner pipeline over
//     this session's shared Daydream instance.
//   - Lint runs the GraphLint catalog over the session graph (optionally
//     after a what-if transform) plus the compiled plan.
//
// All entry points are thread-safe: the RequestExecutor drives one session
// from many client threads, and the in-process CLI path is the single-client
// special case of the same API. Sessions are addressed by handle through the
// SessionManager (the `daydream serve` session table).
#ifndef SRC_SERVICE_SESSION_H_
#define SRC_SERVICE_SESSION_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/comm/network_spec.h"
#include "src/core/graph_lint.h"
#include "src/core/layer_map.h"
#include "src/core/optimizations/pipeline_transform.h"
#include "src/core/predictor.h"
#include "src/models/model_zoo.h"
#include "src/runtime/sweep.h"
#include "src/service/plan_cache.h"
#include "src/util/deadline.h"

namespace daydream {

// One what-if query against a session — the parameters `daydream predict`
// used to scatter across flags, as data so the CLI and the serve protocol
// build the same request.
struct WhatIfRequest {
  std::string what_if;       // amp|fused_adam|rbn|metaflow|gist|vdnn|distributed|pipeline
  ClusterConfig cluster;     // distributed
  PipelineWhatIf pipeline;   // pipeline
  EngineKind engine = EngineKind::kEvent;
  bool validate = false;     // full lint catalog over the transformed graph
  // Shards for the plan dispatch (sharded parallel engine; 1 = serial).
  // Consumption-only, like engine/validate: it changes how fast the answer
  // arrives, never the answer, so it must not enter Signature() — requests
  // differing only in sim_jobs share cached transforms and plans.
  int sim_jobs = 1;

  // Canonical cache signature: every parameter that shapes the transform.
  std::string Signature() const;
};

struct PredictOutcome {
  PredictionResult prediction;
  int tasks = 0;            // alive tasks in the transformed graph
  bool plan_cache_hit = false;  // served straight from the PlanCache
};

// How a session call failed; the CLI maps these onto its historical exit
// codes (unknown what-if -> usage, lint findings -> 1, the rest -> 2).
// kDeadlineExceeded: the request's Deadline expired at a cooperative
// cancellation point. kUnavailable: an armed fault site (src/util/fault.h)
// failed the operation — the graceful-degradation path the chaos suite
// drives.
enum class SessionStatus {
  kOk,
  kUnknownWhatIf,
  kBadRequest,
  kLintFailed,
  kDeadlineExceeded,
  kUnavailable,
};

struct SessionOptions {
  // Bounds both the PlanCache and the per-signature transformed-graph cache.
  size_t plan_cache_capacity = 64;
};

class TraceSession {
 public:
  // Builds the load-once state. Returns nullptr with *error set when the
  // trace is empty or produces a graph that fails structural lint — the
  // daemon must refuse bad input with an envelope, never abort.
  static std::shared_ptr<TraceSession> Create(Trace trace,
                                              SessionOptions options = SessionOptions{},
                                              std::string* error = nullptr);

  const Trace& trace() const { return daydream_.trace(); }
  const Daydream& daydream() const { return daydream_; }
  const LayerMap& layer_map() const { return layer_map_; }
  std::optional<ModelId> model_id() const { return model_id_; }

  // Resolves request.what_if to a graph transform (p3 is not a graph
  // transform — it reports its own metric; see PredictPsIterationTime).
  SessionStatus ResolveTransform(const WhatIfRequest& request,
                                 std::function<void(DependencyGraph*)>* transform,
                                 std::string* error) const;

  // One what-if prediction with warm-plan reuse (see file comment).
  // `deadline` is checked between the pipeline's stages (after the transform,
  // after the compile, between shard horizons when the dispatch is sharded):
  // an expired budget returns kDeadlineExceeded instead of finishing.
  SessionStatus Predict(const WhatIfRequest& request, PredictOutcome* outcome,
                        std::string* error, const Deadline& deadline = Deadline());

  // The sweep matrix over this session's shared Daydream. When
  // options.deadline expires mid-matrix the runner stops claiming cases and
  // sets *deadline_exceeded (remaining outcomes are left blank).
  std::vector<SweepOutcome> Sweep(const std::vector<SweepCase>& cases,
                                  const SweepOptions& options,
                                  bool* deadline_exceeded = nullptr) const;

  // GraphLint catalog over the session graph — after `request`'s transform
  // when non-null — plus the compiled plan when the graph passes structural
  // lint (*plan_passes_run records whether it did).
  SessionStatus Lint(const WhatIfRequest* request, LintReport* report, bool* plan_passes_run,
                     std::string* error) const;

  // The `daydream report` analyses (breakdown, critical path, hottest
  // layers), verbatim.
  std::string ReportText() const;

  PlanCacheStats plan_cache_stats() const { return plan_cache_.stats(); }
  size_t plan_cache_size() const { return plan_cache_.size(); }

  // Estimated resident footprint (trace events + alive graph tasks), the
  // quantity SessionManager's max_resident_bytes quota sums. An estimate on
  // purpose: eviction needs a stable relative ordering, not an allocator
  // audit.
  size_t resident_bytes() const { return resident_bytes_; }

 private:
  struct CachedTransform {
    std::shared_ptr<const DependencyGraph> graph;
    int tasks = 0;
    uint64_t sequence = 0;  // LRU clock
  };

  TraceSession(Trace trace, DependencyGraph graph, SessionOptions options);

  // Returns the cached transformed graph for the request signature, building
  // (clone + transform + structural lint) on miss. kLintFailed when the
  // transform output is rejected.
  SessionStatus TransformedGraph(const WhatIfRequest& request,
                                 const std::function<void(DependencyGraph*)>& transform,
                                 std::shared_ptr<const DependencyGraph>* graph, int* tasks,
                                 std::string* error);

  const SessionOptions options_;
  Daydream daydream_;
  LayerMap layer_map_;
  std::optional<ModelId> model_id_;
  // Layer-structured what-ifs need the model graph; built once, shared by
  // every resolved transform (read-only, as in BuildStandardSweep).
  std::shared_ptr<const ModelGraph> model_graph_;

  PlanCache plan_cache_;
  size_t resident_bytes_ = 0;
  mutable std::mutex transforms_mu_;
  std::map<std::string, CachedTransform> transforms_;  // signature -> graph
  uint64_t transform_sequence_ = 0;
};

// Resource quotas for the session table; zero disables a bound.
struct SessionManagerLimits {
  size_t max_sessions = 0;
  size_t max_resident_bytes = 0;
};

// The serve session table: handles ("s1", "s2", ...) -> sessions.
// Thread-safe; a session closed while requests are in flight stays alive
// until the last shared_ptr drops. Opening a session past the quotas evicts
// the least-recently-used session (Get bumps recency); an evicted handle
// answers `unknown_session` afterwards — clients re-`open`, which is cheap
// compared to wedging the daemon on resident traces nobody queries.
class SessionManager {
 public:
  SessionManager() = default;
  explicit SessionManager(SessionManagerLimits limits) : limits_(limits) {}

  std::string Open(std::shared_ptr<TraceSession> session);
  std::shared_ptr<TraceSession> Get(const std::string& handle) const;
  bool Close(const std::string& handle);
  size_t size() const;
  // Handles in insertion order (stable listing for the `sessions` verb).
  std::vector<std::string> Handles() const;

  uint64_t evicted() const;        // sessions dropped by quota eviction
  size_t resident_bytes() const;   // summed session estimates

 private:
  struct Entry {
    std::string handle;
    std::shared_ptr<TraceSession> session;
    uint64_t last_use = 0;  // LRU clock; bumped by Get
  };

  // Drops LRU entries until the quotas hold, never evicting `keep` (the
  // just-opened session must survive its own admission). Called under mu_.
  void EnforceQuotasLocked(const std::string& keep);

  const SessionManagerLimits limits_;
  mutable std::mutex mu_;
  // Insertion-ordered (handle "s10" must list after "s9", which a map keyed
  // on the handle string would not give); session counts are small.
  mutable std::vector<Entry> sessions_;
  uint64_t next_handle_ = 0;
  mutable uint64_t use_clock_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace daydream

#endif  // SRC_SERVICE_SESSION_H_

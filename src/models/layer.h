// Layer intermediate representation for the model zoo.
//
// A Layer records everything the kernel cost model (src/kernels) needs to
// expand it into cuDNN/cuBLAS-style kernel sequences, and everything the
// communication substrate needs for gradient bucketing: forward FLOPs,
// forward memory traffic, activation size and the list of parameter tensors.
#ifndef SRC_MODELS_LAYER_H_
#define SRC_MODELS_LAYER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace daydream {

enum class LayerKind {
  kConv2d,
  kBatchNorm,
  kReLU,
  kMaxPool,
  kAvgPool,
  kLinear,
  kAdd,         // residual addition
  kConcat,      // DenseNet feature concatenation
  kEmbedding,
  kLstm,        // one full (multi-timestep) LSTM layer
  kAttention,   // scaled dot-product attention (scores + softmax + context)
  kLayerNorm,
  kGelu,
  kDropout,
  kSoftmaxLoss, // classifier softmax + loss
};

const char* ToString(LayerKind kind);

struct Layer {
  int id = -1;
  std::string name;
  LayerKind kind = LayerKind::kConv2d;
  std::vector<int> inputs;  // ids of producer layers (empty for the first layer)

  int64_t batch = 1;
  // Forward-pass compute characteristics. Backward is derived by the kernel
  // expansion (dgrad + wgrad for parameterized layers, ~2x the traffic for
  // elementwise layers).
  int64_t fwd_flops = 0;
  int64_t fwd_bytes = 0;      // DRAM traffic of the forward pass
  int64_t output_elems = 0;   // activation elements produced

  // Parameter tensors (element counts), e.g. {weight, bias}. Drives the
  // per-tensor Adam kernel counts and the DDP gradient sizes.
  std::vector<int64_t> param_tensor_elems;

  // Recurrence / attention shape extras.
  int seq_len = 1;
  int heads = 1;
  // Generic shape carriers used by the kernel expansion:
  //   linear:    aux_in = in_features,  aux_out = out_features
  //   lstm:      aux_in = input_size,   aux_out = hidden (per direction)
  //   attention: aux_out = head_dim
  int64_t aux_in = 0;
  int64_t aux_out = 0;
  bool bidirectional = false;

  int64_t param_elems() const;
  int64_t param_bytes_fp32() const { return param_elems() * 4; }
  bool has_params() const { return !param_tensor_elems.empty(); }
};

// Factory helpers. All of them compute fwd_flops / fwd_bytes / output_elems /
// param tensors from the shape arguments; `inputs` wiring is left to the
// builder. Sizes follow the usual conventions (NCHW, fp32 = 4 bytes).
Layer MakeConv2d(std::string name, int64_t batch, int64_t c_in, int64_t h_in, int64_t w_in,
                 int64_t c_out, int64_t kernel, int64_t stride, int64_t pad, bool bias = false);
Layer MakeBatchNorm(std::string name, int64_t batch, int64_t channels, int64_t h, int64_t w);
Layer MakeReLU(std::string name, int64_t elems);
Layer MakeMaxPool(std::string name, int64_t batch, int64_t channels, int64_t h_in, int64_t w_in,
                  int64_t kernel, int64_t stride);
Layer MakeAvgPool(std::string name, int64_t batch, int64_t channels, int64_t h_in, int64_t w_in,
                  int64_t kernel, int64_t stride);
Layer MakeLinear(std::string name, int64_t rows, int64_t in_features, int64_t out_features,
                 bool bias = true);
Layer MakeAdd(std::string name, int64_t elems);
Layer MakeConcat(std::string name, int64_t elems_out);
Layer MakeEmbedding(std::string name, int64_t rows, int64_t vocab, int64_t hidden,
                    int64_t extra_tables_elems = 0);
Layer MakeLstm(std::string name, int64_t batch, int64_t seq_len, int64_t input_size,
               int64_t hidden, bool bidirectional = false);
Layer MakeAttention(std::string name, int64_t batch, int64_t heads, int64_t seq_len,
                    int64_t head_dim);
Layer MakeLayerNorm(std::string name, int64_t rows, int64_t hidden);
Layer MakeGelu(std::string name, int64_t elems);
Layer MakeDropout(std::string name, int64_t elems);
Layer MakeSoftmaxLoss(std::string name, int64_t batch, int64_t classes);

}  // namespace daydream

#endif  // SRC_MODELS_LAYER_H_

// TinyMLP: a deliberately small MNIST-scale MLP for fast end-to-end fixtures.
//
// Not part of the paper's evaluation set — it exists so golden-fixture tests
// and pipeline-schedule differentials can collect, persist and re-simulate a
// complete trace in milliseconds, with committed fixtures small enough to
// diff. Three hidden linear layers of decreasing width give the stage
// partitioner genuinely unbalanced per-layer costs.
#include "src/models/model_zoo.h"

namespace daydream {

ModelGraph BuildTinyMlp(int64_t batch) {
  ModelGraph g("TinyMLP", batch);
  int prev = g.AddLayer(MakeLinear("fc1", batch, 784, 256), {});
  prev = g.AddLayer(MakeReLU("fc1.relu", batch * 256), {prev});
  prev = g.AddLayer(MakeLinear("fc2", batch, 256, 128), {prev});
  prev = g.AddLayer(MakeReLU("fc2.relu", batch * 128), {prev});
  prev = g.AddLayer(MakeLinear("fc3", batch, 128, 64), {prev});
  prev = g.AddLayer(MakeReLU("fc3.relu", batch * 64), {prev});
  prev = g.AddLayer(MakeLinear("fc4", batch, 64, 10), {prev});
  g.AddLayer(MakeSoftmaxLoss("loss", batch, 10), {prev});
  return g;
}

}  // namespace daydream

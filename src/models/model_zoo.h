// Model zoo: the DNNs used in the paper's evaluation (Table 2).
//
//   Image classification: VGG-19, DenseNet-121, ResNet-50 (ImageNet)
//   Machine translation:  GNMT (WMT16)
//   Language modeling:    BERT base / BERT large (SQuAD)
//
// Plus TinyMLP, a milliseconds-scale smoke model (not in the paper) used by
// the golden-fixture and pipeline-schedule tests.
//
// Builders produce layer graphs with the real layer counts and parameter
// shapes of the published architectures; parameter totals are asserted
// against the literature values in tests/models_test.cc.
#ifndef SRC_MODELS_MODEL_ZOO_H_
#define SRC_MODELS_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "src/models/model_graph.h"

namespace daydream {

enum class ModelId {
  kResNet50,
  kVgg19,
  kDenseNet121,
  kGnmt,
  kBertBase,
  kBertLarge,
  kTinyMlp,
};

const char* ModelName(ModelId id);
std::vector<ModelId> AllModels();
// The paper's evaluation set (Table 2): AllModels() without TinyMLP. Tests
// that assert paper-scale magnitudes (iteration times, accuracy bounds,
// sample-count floors) iterate these.
std::vector<ModelId> PaperModels();

// Per-GPU mini-batch sizes matching the paper's 11 GB RTX 2080 Ti budget.
int64_t DefaultBatch(ModelId id);

ModelGraph BuildModel(ModelId id, int64_t batch);
ModelGraph BuildModel(ModelId id);  // with DefaultBatch

// Individual builders (also usable directly).
ModelGraph BuildResNet50(int64_t batch);
ModelGraph BuildVgg19(int64_t batch);
ModelGraph BuildDenseNet121(int64_t batch);
// GNMT v2-style: 4-layer encoder (first layer bidirectional), 4-layer decoder
// with attention, 1024 hidden, 32k vocab.
ModelGraph BuildGnmt(int64_t batch, int64_t seq_len = 32);
// BERT for SQuAD: 384-token sequences.
ModelGraph BuildBertBase(int64_t batch, int64_t seq_len = 384);
ModelGraph BuildBertLarge(int64_t batch, int64_t seq_len = 384);
// Four small linear layers + loss; the fast smoke/fixture model.
ModelGraph BuildTinyMlp(int64_t batch);

}  // namespace daydream

#endif  // SRC_MODELS_MODEL_ZOO_H_

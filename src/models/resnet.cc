// ResNet-50 (He et al., 2015), ImageNet configuration.
//
// Structure check: 53 convolutions (1 stem + 48 bottleneck + 4 downsample),
// 53 batchnorms, ~25.56 M parameters.
#include "src/models/model_zoo.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

struct Tensor4d {
  int layer_id;
  int64_t c;
  int64_t h;
  int64_t w;
};

class ResNetBuilder {
 public:
  explicit ResNetBuilder(int64_t batch) : graph_("ResNet-50", batch), batch_(batch) {}

  ModelGraph Build() {
    // Stem: 7x7/2 conv, bn, relu, 3x3/2 maxpool.
    Tensor4d x = Conv("conv1", {/*layer_id=*/-1, 3, 224, 224}, 64, 7, 2, 3, {});
    x = Bn("bn1", x);
    x = Relu("relu1", x);
    x = MaxPool("maxpool", x, 3, 2);

    x = Stage("layer1", x, /*planes=*/64, /*blocks=*/3, /*stride=*/1);
    x = Stage("layer2", x, 128, 4, 2);
    x = Stage("layer3", x, 256, 6, 2);
    x = Stage("layer4", x, 512, 3, 2);

    x = AvgPool("avgpool", x, static_cast<int>(x.h), 1);
    const int fc =
        graph_.AddLayer(MakeLinear("fc", batch_, x.c, 1000, /*bias=*/true), {x.layer_id});
    graph_.AddLayer(MakeSoftmaxLoss("loss", batch_, 1000), {fc});
    return std::move(graph_);
  }

 private:
  Tensor4d Conv(const std::string& name, Tensor4d in, int64_t c_out, int64_t k, int64_t stride,
                int64_t pad, std::vector<int> producer_override) {
    std::vector<int> inputs =
        producer_override.empty()
            ? (in.layer_id >= 0 ? std::vector<int>{in.layer_id} : std::vector<int>{})
            : producer_override;
    const int id = graph_.AddLayer(MakeConv2d(name, batch_, in.c, in.h, in.w, c_out, k, stride,
                                              pad, /*bias=*/false),
                                   std::move(inputs));
    const int64_t h_out = (in.h + 2 * pad - k) / stride + 1;
    const int64_t w_out = (in.w + 2 * pad - k) / stride + 1;
    return {id, c_out, h_out, w_out};
  }

  Tensor4d Bn(const std::string& name, Tensor4d in) {
    const int id =
        graph_.AddLayer(MakeBatchNorm(name, batch_, in.c, in.h, in.w), {in.layer_id});
    return {id, in.c, in.h, in.w};
  }

  Tensor4d Relu(const std::string& name, Tensor4d in) {
    const int id = graph_.AddLayer(MakeReLU(name, batch_ * in.c * in.h * in.w), {in.layer_id});
    return {id, in.c, in.h, in.w};
  }

  Tensor4d MaxPool(const std::string& name, Tensor4d in, int64_t k, int64_t stride) {
    const int id =
        graph_.AddLayer(MakeMaxPool(name, batch_, in.c, in.h, in.w, k, stride), {in.layer_id});
    return {id, in.c, (in.h - k) / stride + 1, (in.w - k) / stride + 1};
  }

  Tensor4d AvgPool(const std::string& name, Tensor4d in, int64_t k, int64_t stride) {
    const int id =
        graph_.AddLayer(MakeAvgPool(name, batch_, in.c, in.h, in.w, k, stride), {in.layer_id});
    return {id, in.c, (in.h - k) / stride + 1, (in.w - k) / stride + 1};
  }

  Tensor4d Bottleneck(const std::string& prefix, Tensor4d in, int64_t planes, int64_t stride,
                      bool downsample) {
    const int64_t expansion = 4;
    Tensor4d x = Conv(prefix + ".conv1", in, planes, 1, 1, 0, {});
    x = Bn(prefix + ".bn1", x);
    x = Relu(prefix + ".relu1", x);
    x = Conv(prefix + ".conv2", x, planes, 3, stride, 1, {});
    x = Bn(prefix + ".bn2", x);
    x = Relu(prefix + ".relu2", x);
    x = Conv(prefix + ".conv3", x, planes * expansion, 1, 1, 0, {});
    x = Bn(prefix + ".bn3", x);

    Tensor4d identity = in;
    if (downsample) {
      identity = Conv(prefix + ".downsample.conv", in, planes * expansion, 1, stride, 0, {});
      identity = Bn(prefix + ".downsample.bn", identity);
    }
    const int add = graph_.AddLayer(MakeAdd(prefix + ".add", batch_ * x.c * x.h * x.w),
                                    {x.layer_id, identity.layer_id});
    Tensor4d out = {add, x.c, x.h, x.w};
    return Relu(prefix + ".relu3", out);
  }

  Tensor4d Stage(const std::string& prefix, Tensor4d in, int64_t planes, int blocks, int stride) {
    Tensor4d x = Bottleneck(StrFormat("%s.0", prefix.c_str()), in, planes, stride,
                            /*downsample=*/true);
    for (int b = 1; b < blocks; ++b) {
      x = Bottleneck(StrFormat("%s.%d", prefix.c_str(), b), x, planes, 1, /*downsample=*/false);
    }
    return x;
  }

  ModelGraph graph_;
  int64_t batch_;
};

}  // namespace

ModelGraph BuildResNet50(int64_t batch) { return ResNetBuilder(batch).Build(); }

}  // namespace daydream

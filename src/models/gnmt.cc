// GNMT (Wu et al., 2016) — the paper's "Seq2Seq" machine-translation model,
// in the GNMT-v2 configuration used by MLPerf and the paper's GNMT runs:
// 4-layer LSTM encoder (first layer bidirectional), 4-layer LSTM decoder with
// additive attention, hidden 1024, vocab 32k. ~160 M parameters.
//
// The LSTM layers dominate runtime with seq_len x (2 gemm + pointwise) small
// kernels; the classifier (1024x32k projection) is the largest single gemm.
#include "src/models/model_zoo.h"
#include "src/util/string_util.h"

namespace daydream {

ModelGraph BuildGnmt(int64_t batch, int64_t seq_len) {
  ModelGraph g("GNMT", batch);
  const int64_t hidden = 1024;
  const int64_t vocab = 32000;
  const int64_t rows = batch * seq_len;

  // Encoder.
  int enc_embed = g.AddLayer(MakeEmbedding("encoder.embedding", rows, vocab, hidden), {});
  int prev = g.AddLayer(
      MakeLstm("encoder.lstm0(bidir)", batch, seq_len, hidden, hidden, /*bidirectional=*/true),
      {enc_embed});
  // Bidirectional output is 2*hidden wide; subsequent layers take it back to hidden.
  int64_t in_size = 2 * hidden;
  for (int l = 1; l < 4; ++l) {
    prev = g.AddLayer(
        MakeLstm(StrFormat("encoder.lstm%d", l), batch, seq_len, in_size, hidden), {prev});
    in_size = hidden;
    if (l >= 2) {
      // Residual connections from layer 2 on (GNMT v2).
      prev = g.AddLayer(MakeAdd(StrFormat("encoder.residual%d", l), rows * hidden), {prev});
    }
  }
  const int encoder_out = prev;

  // Decoder.
  int dec_embed = g.AddLayer(MakeEmbedding("decoder.embedding", rows, vocab, hidden), {});
  prev = g.AddLayer(MakeLstm("decoder.lstm0", batch, seq_len, hidden, hidden), {dec_embed});

  // Additive (Bahdanau) attention over encoder states, queried once per step.
  const int att_q =
      g.AddLayer(MakeLinear("attention.linear_q", rows, hidden, hidden, /*bias=*/false), {prev});
  const int att_k = g.AddLayer(
      MakeLinear("attention.linear_k", rows, hidden, hidden, /*bias=*/false), {encoder_out});
  const int att = g.AddLayer(MakeAttention("attention.score", batch, 1, seq_len, hidden),
                             {att_q, att_k});
  prev = g.AddLayer(MakeConcat("decoder.att_concat", rows * 2 * hidden), {att, prev});

  in_size = 2 * hidden;
  for (int l = 1; l < 4; ++l) {
    prev = g.AddLayer(
        MakeLstm(StrFormat("decoder.lstm%d", l), batch, seq_len, in_size, hidden), {prev});
    in_size = hidden;
    if (l >= 2) {
      prev = g.AddLayer(MakeAdd(StrFormat("decoder.residual%d", l), rows * hidden), {prev});
    }
  }

  const int classifier = g.AddLayer(MakeLinear("classifier", rows, hidden, vocab), {prev});
  g.AddLayer(MakeSoftmaxLoss("loss", rows, vocab), {classifier});
  return g;
}

}  // namespace daydream

// ModelGraph: a DAG of layers in topological order.
#ifndef SRC_MODELS_MODEL_GRAPH_H_
#define SRC_MODELS_MODEL_GRAPH_H_

#include <string>
#include <vector>

#include "src/models/layer.h"

namespace daydream {

class ModelGraph {
 public:
  ModelGraph(std::string name, int64_t batch) : name_(std::move(name)), batch_(batch) {}

  // Appends a layer wired to the given producer ids and returns its id.
  // Producers must already exist (topological insertion order).
  int AddLayer(Layer layer, std::vector<int> inputs = {});

  const std::string& name() const { return name_; }
  int64_t batch() const { return batch_; }
  const std::vector<Layer>& layers() const { return layers_; }
  const Layer& layer(int id) const;
  int num_layers() const { return static_cast<int>(layers_.size()); }

  int64_t TotalParamElems() const;
  int64_t TotalParamBytes() const { return TotalParamElems() * 4; }
  int TotalParamTensors() const;
  int64_t TotalFwdFlops() const;
  int CountKind(LayerKind kind) const;

  // Ids of layers that own parameters, in reverse order (the order their
  // gradients become ready during backprop — used by gradient bucketing).
  std::vector<int> ParamLayersInBackwardOrder() const;

  // Checks topological wiring: every input id is a smaller, existing id.
  bool Validate(std::string* error = nullptr) const;

 private:
  std::string name_;
  int64_t batch_;
  std::vector<Layer> layers_;
};

}  // namespace daydream

#endif  // SRC_MODELS_MODEL_GRAPH_H_

#include "src/models/layer.h"

#include "src/util/logging.h"

namespace daydream {

namespace {
constexpr int64_t kFp32 = 4;  // bytes per element
}

const char* ToString(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv2d:
      return "conv2d";
    case LayerKind::kBatchNorm:
      return "batchnorm";
    case LayerKind::kReLU:
      return "relu";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kAvgPool:
      return "avgpool";
    case LayerKind::kLinear:
      return "linear";
    case LayerKind::kAdd:
      return "add";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kEmbedding:
      return "embedding";
    case LayerKind::kLstm:
      return "lstm";
    case LayerKind::kAttention:
      return "attention";
    case LayerKind::kLayerNorm:
      return "layernorm";
    case LayerKind::kGelu:
      return "gelu";
    case LayerKind::kDropout:
      return "dropout";
    case LayerKind::kSoftmaxLoss:
      return "softmax_loss";
  }
  return "?";
}

int64_t Layer::param_elems() const {
  int64_t total = 0;
  for (int64_t t : param_tensor_elems) {
    total += t;
  }
  return total;
}

Layer MakeConv2d(std::string name, int64_t batch, int64_t c_in, int64_t h_in, int64_t w_in,
                 int64_t c_out, int64_t kernel, int64_t stride, int64_t pad, bool bias) {
  DD_CHECK_GT(stride, 0);
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConv2d;
  l.batch = batch;
  const int64_t h_out = (h_in + 2 * pad - kernel) / stride + 1;
  const int64_t w_out = (w_in + 2 * pad - kernel) / stride + 1;
  DD_CHECK_GT(h_out, 0);
  DD_CHECK_GT(w_out, 0);
  l.output_elems = batch * c_out * h_out * w_out;
  l.fwd_flops = 2 * l.output_elems * c_in * kernel * kernel;
  const int64_t in_elems = batch * c_in * h_in * w_in;
  const int64_t weight_elems = c_out * c_in * kernel * kernel;
  l.fwd_bytes = (in_elems + l.output_elems + weight_elems) * kFp32;
  l.param_tensor_elems.push_back(weight_elems);
  if (bias) {
    l.param_tensor_elems.push_back(c_out);
  }
  return l;
}

Layer MakeBatchNorm(std::string name, int64_t batch, int64_t channels, int64_t h, int64_t w) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kBatchNorm;
  l.batch = batch;
  l.output_elems = batch * channels * h * w;
  // Two passes over the data in training mode (statistics + normalize).
  l.fwd_flops = 8 * l.output_elems;
  l.fwd_bytes = 3 * l.output_elems * kFp32;
  l.param_tensor_elems = {channels, channels};  // gamma, beta
  return l;
}

Layer MakeReLU(std::string name, int64_t elems) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kReLU;
  l.output_elems = elems;
  l.fwd_flops = elems;
  l.fwd_bytes = 2 * elems * kFp32;
  return l;
}

namespace {
Layer MakePool(std::string name, LayerKind kind, int64_t batch, int64_t channels, int64_t h_in,
               int64_t w_in, int64_t kernel, int64_t stride) {
  Layer l;
  l.name = std::move(name);
  l.kind = kind;
  l.batch = batch;
  const int64_t h_out = (h_in - kernel) / stride + 1;
  const int64_t w_out = (w_in - kernel) / stride + 1;
  l.output_elems = batch * channels * std::max<int64_t>(h_out, 1) * std::max<int64_t>(w_out, 1);
  l.fwd_flops = l.output_elems * kernel * kernel;
  l.fwd_bytes = (batch * channels * h_in * w_in + l.output_elems) * kFp32;
  return l;
}
}  // namespace

Layer MakeMaxPool(std::string name, int64_t batch, int64_t channels, int64_t h_in, int64_t w_in,
                  int64_t kernel, int64_t stride) {
  return MakePool(std::move(name), LayerKind::kMaxPool, batch, channels, h_in, w_in, kernel,
                  stride);
}

Layer MakeAvgPool(std::string name, int64_t batch, int64_t channels, int64_t h_in, int64_t w_in,
                  int64_t kernel, int64_t stride) {
  return MakePool(std::move(name), LayerKind::kAvgPool, batch, channels, h_in, w_in, kernel,
                  stride);
}

Layer MakeLinear(std::string name, int64_t rows, int64_t in_features, int64_t out_features,
                 bool bias) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kLinear;
  l.batch = rows;
  l.output_elems = rows * out_features;
  l.fwd_flops = 2 * rows * in_features * out_features;
  l.fwd_bytes = (rows * in_features + l.output_elems + in_features * out_features) * kFp32;
  l.aux_in = in_features;
  l.aux_out = out_features;
  l.param_tensor_elems.push_back(in_features * out_features);
  if (bias) {
    l.param_tensor_elems.push_back(out_features);
  }
  return l;
}

Layer MakeAdd(std::string name, int64_t elems) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kAdd;
  l.output_elems = elems;
  l.fwd_flops = elems;
  l.fwd_bytes = 3 * elems * kFp32;
  return l;
}

Layer MakeConcat(std::string name, int64_t elems_out) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kConcat;
  l.output_elems = elems_out;
  l.fwd_flops = 0;
  l.fwd_bytes = 2 * elems_out * kFp32;
  return l;
}

Layer MakeEmbedding(std::string name, int64_t rows, int64_t vocab, int64_t hidden,
                    int64_t extra_tables_elems) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kEmbedding;
  l.batch = rows;
  l.output_elems = rows * hidden;
  l.fwd_flops = 0;  // gather
  l.fwd_bytes = 2 * l.output_elems * kFp32;
  l.param_tensor_elems.push_back(vocab * hidden);
  if (extra_tables_elems > 0) {
    l.param_tensor_elems.push_back(extra_tables_elems);
  }
  return l;
}

Layer MakeLstm(std::string name, int64_t batch, int64_t seq_len, int64_t input_size,
               int64_t hidden, bool bidirectional) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kLstm;
  l.batch = batch;
  l.seq_len = static_cast<int>(seq_len);
  const int64_t dirs = bidirectional ? 2 : 1;
  l.output_elems = batch * seq_len * hidden * dirs;
  // Per timestep per direction: input gemm (4h x in) + recurrent gemm (4h x h)
  // + pointwise gate math.
  const int64_t per_step =
      2 * batch * 4 * hidden * (input_size + hidden) + 10 * batch * hidden;
  l.fwd_flops = per_step * seq_len * dirs;
  l.fwd_bytes =
      (batch * seq_len * (input_size + hidden * dirs) + 4 * hidden * (input_size + hidden)) * kFp32;
  l.aux_in = input_size;
  l.aux_out = hidden;
  l.bidirectional = bidirectional;
  // PyTorch LSTM parameter layout: weight_ih, weight_hh, bias_ih, bias_hh per direction.
  for (int64_t d = 0; d < dirs; ++d) {
    l.param_tensor_elems.push_back(4 * hidden * input_size);
    l.param_tensor_elems.push_back(4 * hidden * hidden);
    l.param_tensor_elems.push_back(4 * hidden);
    l.param_tensor_elems.push_back(4 * hidden);
  }
  return l;
}

Layer MakeAttention(std::string name, int64_t batch, int64_t heads, int64_t seq_len,
                    int64_t head_dim) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kAttention;
  l.batch = batch;
  l.heads = static_cast<int>(heads);
  l.seq_len = static_cast<int>(seq_len);
  l.output_elems = batch * heads * seq_len * head_dim;
  // QK^T and PV batched gemms + softmax over scores.
  l.fwd_flops = 2 * batch * heads * seq_len * seq_len * head_dim * 2 +
                5 * batch * heads * seq_len * seq_len;
  l.fwd_bytes = (2 * batch * heads * seq_len * seq_len + 3 * l.output_elems) * kFp32;
  l.aux_out = head_dim;
  return l;
}

Layer MakeLayerNorm(std::string name, int64_t rows, int64_t hidden) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kLayerNorm;
  l.output_elems = rows * hidden;
  l.fwd_flops = 8 * l.output_elems;
  l.fwd_bytes = 2 * l.output_elems * kFp32;
  l.param_tensor_elems = {hidden, hidden};
  return l;
}

Layer MakeGelu(std::string name, int64_t elems) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kGelu;
  l.output_elems = elems;
  l.fwd_flops = 8 * elems;
  l.fwd_bytes = 2 * elems * kFp32;
  return l;
}

Layer MakeDropout(std::string name, int64_t elems) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kDropout;
  l.output_elems = elems;
  l.fwd_flops = elems;
  l.fwd_bytes = 2 * elems * kFp32;
  return l;
}

Layer MakeSoftmaxLoss(std::string name, int64_t batch, int64_t classes) {
  Layer l;
  l.name = std::move(name);
  l.kind = LayerKind::kSoftmaxLoss;
  l.batch = batch;
  l.output_elems = batch;
  l.fwd_flops = 5 * batch * classes;
  l.fwd_bytes = 2 * batch * classes * kFp32;
  return l;
}

}  // namespace daydream

// BERT (Devlin et al., 2018) for SQuAD fine-tuning.
//
//   base:  12 transformer blocks, hidden 768,  12 heads, FFN 3072  (~109 M params)
//   large: 24 transformer blocks, hidden 1024, 16 heads, FFN 4096  (~335 M params)
//
// Per block there are 16 parameter tensors (4 attention linears, 2 layernorms,
// 2 FFN linears — each weight+bias), which is what produces the thousands of
// tiny Adam weight-update kernels the paper measures (2633 for base, 5164 for
// large; §6.3).
#include "src/models/model_zoo.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

ModelGraph BuildBert(const std::string& name, int64_t batch, int64_t seq_len, int num_blocks,
                     int64_t hidden, int heads, int64_t ffn) {
  ModelGraph g(name, batch);
  const int64_t vocab = 30522;
  const int64_t rows = batch * seq_len;
  const int64_t head_dim = hidden / heads;

  // Embeddings: word + position + token-type tables, then layernorm + dropout.
  int prev = g.AddLayer(MakeEmbedding("embeddings.word", rows, vocab, hidden,
                                      /*extra_tables_elems=*/(512 + 2) * hidden),
                        {});
  prev = g.AddLayer(MakeLayerNorm("embeddings.layernorm", rows, hidden), {prev});
  prev = g.AddLayer(MakeDropout("embeddings.dropout", rows * hidden), {prev});

  for (int b = 0; b < num_blocks; ++b) {
    const std::string p = StrFormat("encoder.layer%d", b);
    const int block_in = prev;

    const int q = g.AddLayer(MakeLinear(p + ".attention.query", rows, hidden, hidden), {block_in});
    const int k = g.AddLayer(MakeLinear(p + ".attention.key", rows, hidden, hidden), {block_in});
    const int v = g.AddLayer(MakeLinear(p + ".attention.value", rows, hidden, hidden), {block_in});
    const int att =
        g.AddLayer(MakeAttention(p + ".attention.self", batch, heads, seq_len, head_dim),
                   {q, k, v});
    prev = g.AddLayer(MakeLinear(p + ".attention.output", rows, hidden, hidden), {att});
    prev = g.AddLayer(MakeDropout(p + ".attention.dropout", rows * hidden), {prev});
    prev = g.AddLayer(MakeAdd(p + ".attention.residual", rows * hidden), {prev, block_in});
    prev = g.AddLayer(MakeLayerNorm(p + ".attention.layernorm", rows, hidden), {prev});
    const int att_out = prev;

    prev = g.AddLayer(MakeLinear(p + ".intermediate", rows, hidden, ffn), {att_out});
    prev = g.AddLayer(MakeGelu(p + ".gelu", rows * ffn), {prev});
    prev = g.AddLayer(MakeLinear(p + ".output", rows, ffn, hidden), {prev});
    prev = g.AddLayer(MakeDropout(p + ".output.dropout", rows * hidden), {prev});
    prev = g.AddLayer(MakeAdd(p + ".output.residual", rows * hidden), {prev, att_out});
    prev = g.AddLayer(MakeLayerNorm(p + ".output.layernorm", rows, hidden), {prev});
  }

  // SQuAD span-prediction head: hidden -> 2 logits per token.
  const int qa = g.AddLayer(MakeLinear("qa_outputs", rows, hidden, 2), {prev});
  g.AddLayer(MakeSoftmaxLoss("loss", rows, 2), {qa});
  return g;
}

}  // namespace

ModelGraph BuildBertBase(int64_t batch, int64_t seq_len) {
  return BuildBert("BERT_Base", batch, seq_len, 12, 768, 12, 3072);
}

ModelGraph BuildBertLarge(int64_t batch, int64_t seq_len) {
  return BuildBert("BERT_Large", batch, seq_len, 24, 1024, 16, 4096);
}

}  // namespace daydream

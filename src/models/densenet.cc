// DenseNet-121 (Huang et al., 2017), ImageNet configuration.
//
// Growth rate 32, block config {6, 12, 24, 16}; each dense layer is
// BN-ReLU-Conv1x1(4k)-BN-ReLU-Conv3x3(k); transitions halve channels and
// spatial dims. ~7.98 M parameters, 121 weighted layers (120 conv + 1 fc).
//
// DenseNet is the paper's Reconstructing-Batchnorm workload (§6.4): it is
// dominated by many small BN/ReLU layers, exactly what that optimization
// targets.
#include "src/models/model_zoo.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

struct T {
  int id;
  int64_t c;
  int64_t hw;
};

}  // namespace

ModelGraph BuildDenseNet121(int64_t batch) {
  ModelGraph g("DenseNet-121", batch);
  const int64_t growth = 32;
  const std::vector<int> blocks = {6, 12, 24, 16};

  auto conv = [&](const std::string& name, T in, int64_t c_out, int64_t k, int64_t stride,
                  int64_t pad) -> T {
    const int id = g.AddLayer(MakeConv2d(name, batch, in.c, in.hw, in.hw, c_out, k, stride, pad),
                              in.id >= 0 ? std::vector<int>{in.id} : std::vector<int>{});
    return {id, c_out, (in.hw + 2 * pad - k) / stride + 1};
  };
  auto bn = [&](const std::string& name, T in) -> T {
    return {g.AddLayer(MakeBatchNorm(name, batch, in.c, in.hw, in.hw), {in.id}), in.c, in.hw};
  };
  auto relu = [&](const std::string& name, T in) -> T {
    return {g.AddLayer(MakeReLU(name, batch * in.c * in.hw * in.hw), {in.id}), in.c, in.hw};
  };

  T x = conv("conv0", {-1, 3, 224}, 64, 7, 2, 3);
  x = bn("bn0", x);
  x = relu("relu0", x);
  x = {g.AddLayer(MakeMaxPool("pool0", batch, x.c, x.hw, x.hw, 2, 2), {x.id}), x.c, x.hw / 2};

  for (size_t b = 0; b < blocks.size(); ++b) {
    // Dense block: each layer consumes the concatenation of all previous
    // feature maps in the block and emits `growth` channels.
    for (int l = 0; l < blocks[b]; ++l) {
      const std::string p = StrFormat("dense%zu.layer%d", b + 1, l + 1);
      T y = bn(p + ".bn1", x);
      y = relu(p + ".relu1", y);
      y = conv(p + ".conv1", y, 4 * growth, 1, 1, 0);
      y = bn(p + ".bn2", y);
      y = relu(p + ".relu2", y);
      y = conv(p + ".conv2", y, growth, 3, 1, 1);
      const int64_t c_cat = x.c + growth;
      const int cat =
          g.AddLayer(MakeConcat(p + ".concat", batch * c_cat * x.hw * x.hw), {x.id, y.id});
      x = {cat, c_cat, x.hw};
    }
    if (b + 1 < blocks.size()) {
      const std::string p = StrFormat("transition%zu", b + 1);
      T y = bn(p + ".bn", x);
      y = relu(p + ".relu", y);
      y = conv(p + ".conv", y, x.c / 2, 1, 1, 0);
      const int pool =
          g.AddLayer(MakeAvgPool(p + ".pool", batch, y.c, y.hw, y.hw, 2, 2), {y.id});
      x = {pool, y.c, y.hw / 2};
    }
  }

  x = bn("bn_final", x);
  x = relu("relu_final", x);
  const int pool = g.AddLayer(MakeAvgPool("global_pool", batch, x.c, x.hw, x.hw, x.hw, 1), {x.id});
  const int fc = g.AddLayer(MakeLinear("classifier", batch, x.c, 1000), {pool});
  g.AddLayer(MakeSoftmaxLoss("loss", batch, 1000), {fc});
  return g;
}

}  // namespace daydream

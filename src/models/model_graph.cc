#include "src/models/model_graph.h"

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

int ModelGraph::AddLayer(Layer layer, std::vector<int> inputs) {
  const int id = static_cast<int>(layers_.size());
  layer.id = id;
  layer.inputs = std::move(inputs);
  for (int in : layer.inputs) {
    DD_CHECK_GE(in, 0);
    DD_CHECK_LT(in, id) << "layer '" << layer.name << "' wired to a non-existing producer";
  }
  layers_.push_back(std::move(layer));
  return id;
}

const Layer& ModelGraph::layer(int id) const {
  DD_CHECK_GE(id, 0);
  DD_CHECK_LT(id, static_cast<int>(layers_.size()));
  return layers_[static_cast<size_t>(id)];
}

int64_t ModelGraph::TotalParamElems() const {
  int64_t total = 0;
  for (const Layer& l : layers_) {
    total += l.param_elems();
  }
  return total;
}

int ModelGraph::TotalParamTensors() const {
  int total = 0;
  for (const Layer& l : layers_) {
    total += static_cast<int>(l.param_tensor_elems.size());
  }
  return total;
}

int64_t ModelGraph::TotalFwdFlops() const {
  int64_t total = 0;
  for (const Layer& l : layers_) {
    total += l.fwd_flops;
  }
  return total;
}

int ModelGraph::CountKind(LayerKind kind) const {
  int n = 0;
  for (const Layer& l : layers_) {
    if (l.kind == kind) {
      ++n;
    }
  }
  return n;
}

std::vector<int> ModelGraph::ParamLayersInBackwardOrder() const {
  std::vector<int> ids;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    if (it->has_params()) {
      ids.push_back(it->id);
    }
  }
  return ids;
}

bool ModelGraph::Validate(std::string* error) const {
  for (const Layer& l : layers_) {
    for (int in : l.inputs) {
      if (in < 0 || in >= l.id) {
        if (error != nullptr) {
          *error = StrFormat("layer %d ('%s') has invalid input %d", l.id, l.name.c_str(), in);
        }
        return false;
      }
    }
    if (l.id != &l - layers_.data()) {
      if (error != nullptr) {
        *error = StrFormat("layer id %d does not match position", l.id);
      }
      return false;
    }
  }
  return true;
}

}  // namespace daydream

// VGG-19 (Simonyan & Zisserman, 2014), ImageNet configuration "E".
//
// 16 convolutions + 3 fully-connected layers, ~143.67 M parameters. The three
// huge FC layers (25088x4096, 4096x4096, 4096x1000) dominate the gradient
// volume, which is what makes VGG the communication-bound model in the
// paper's P3 evaluation (Figure 10b).
#include "src/models/model_zoo.h"
#include "src/util/string_util.h"

namespace daydream {

ModelGraph BuildVgg19(int64_t batch) {
  ModelGraph g("VGG-19", batch);
  // Configuration E: 64,64,M,128,128,M,256x4,M,512x4,M,512x4,M.
  const std::vector<std::vector<int64_t>> stages = {
      {64, 64}, {128, 128}, {256, 256, 256, 256}, {512, 512, 512, 512}, {512, 512, 512, 512}};

  int64_t c = 3;
  int64_t hw = 224;
  int prev = -1;
  int conv_idx = 0;
  for (size_t s = 0; s < stages.size(); ++s) {
    for (int64_t c_out : stages[s]) {
      const std::string name = StrFormat("conv%d", ++conv_idx);
      prev = g.AddLayer(MakeConv2d(name, batch, c, hw, hw, c_out, 3, 1, 1, /*bias=*/true),
                        prev >= 0 ? std::vector<int>{prev} : std::vector<int>{});
      prev = g.AddLayer(MakeReLU(name + ".relu", batch * c_out * hw * hw), {prev});
      c = c_out;
    }
    prev = g.AddLayer(MakeMaxPool(StrFormat("pool%zu", s + 1), batch, c, hw, hw, 2, 2), {prev});
    hw /= 2;
  }

  // Classifier: 512*7*7 -> 4096 -> 4096 -> 1000.
  prev = g.AddLayer(MakeLinear("fc6", batch, c * hw * hw, 4096), {prev});
  prev = g.AddLayer(MakeReLU("fc6.relu", batch * 4096), {prev});
  prev = g.AddLayer(MakeDropout("fc6.dropout", batch * 4096), {prev});
  prev = g.AddLayer(MakeLinear("fc7", batch, 4096, 4096), {prev});
  prev = g.AddLayer(MakeReLU("fc7.relu", batch * 4096), {prev});
  prev = g.AddLayer(MakeDropout("fc7.dropout", batch * 4096), {prev});
  prev = g.AddLayer(MakeLinear("fc8", batch, 4096, 1000), {prev});
  g.AddLayer(MakeSoftmaxLoss("loss", batch, 1000), {prev});
  return g;
}

}  // namespace daydream

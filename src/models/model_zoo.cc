#include "src/models/model_zoo.h"

#include "src/util/logging.h"

namespace daydream {

const char* ModelName(ModelId id) {
  switch (id) {
    case ModelId::kResNet50:
      return "ResNet-50";
    case ModelId::kVgg19:
      return "VGG-19";
    case ModelId::kDenseNet121:
      return "DenseNet-121";
    case ModelId::kGnmt:
      return "GNMT";
    case ModelId::kBertBase:
      return "BERT_Base";
    case ModelId::kBertLarge:
      return "BERT_Large";
    case ModelId::kTinyMlp:
      return "TinyMLP";
  }
  return "?";
}

std::vector<ModelId> AllModels() {
  return {ModelId::kResNet50, ModelId::kVgg19,    ModelId::kDenseNet121, ModelId::kGnmt,
          ModelId::kBertBase, ModelId::kBertLarge, ModelId::kTinyMlp};
}

std::vector<ModelId> PaperModels() {
  return {ModelId::kResNet50, ModelId::kVgg19,    ModelId::kDenseNet121,
          ModelId::kGnmt,     ModelId::kBertBase, ModelId::kBertLarge};
}

int64_t DefaultBatch(ModelId id) {
  switch (id) {
    case ModelId::kResNet50:
      return 64;
    case ModelId::kVgg19:
      return 32;
    case ModelId::kDenseNet121:
      return 32;
    case ModelId::kGnmt:
      return 128;
    case ModelId::kBertBase:
      return 8;
    case ModelId::kBertLarge:
      return 2;  // 11 GB with 384-token sequences
    case ModelId::kTinyMlp:
      return 32;
  }
  DD_LOG(Fatal) << "unknown model";
  return 1;
}

ModelGraph BuildModel(ModelId id, int64_t batch) {
  switch (id) {
    case ModelId::kResNet50:
      return BuildResNet50(batch);
    case ModelId::kVgg19:
      return BuildVgg19(batch);
    case ModelId::kDenseNet121:
      return BuildDenseNet121(batch);
    case ModelId::kGnmt:
      return BuildGnmt(batch);
    case ModelId::kBertBase:
      return BuildBertBase(batch);
    case ModelId::kBertLarge:
      return BuildBertLarge(batch);
    case ModelId::kTinyMlp:
      return BuildTinyMlp(batch);
  }
  DD_LOG(Fatal) << "unknown model";
  return ModelGraph("invalid", 1);
}

ModelGraph BuildModel(ModelId id) { return BuildModel(id, DefaultBatch(id)); }

}  // namespace daydream

#include "src/trace/import_cupti.h"

#include <fstream>
#include <limits>
#include <map>

#include "src/util/json.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

// One JSON-lines record may not exceed this; a multi-gigabyte "line" is an
// attack (or a corrupt file), not a record, and must fail before it is
// buffered whole.
constexpr size_t kMaxLineBytes = 1 << 20;

// getline with a hard cap: reads into *out until '\n' or EOF, failing once
// the cap is hit so hostile input cannot balloon the line buffer.
// Returns false at EOF with nothing read.
bool BoundedGetline(std::istream& in, std::string* out, bool* too_long) {
  out->clear();
  *too_long = false;
  std::streambuf* buf = in.rdbuf();
  if (buf == nullptr) {
    return false;
  }
  int c;
  while ((c = buf->sbumpc()) != std::char_traits<char>::eof()) {
    if (c == '\n') {
      return true;
    }
    if (out->size() >= kMaxLineBytes) {
      *too_long = true;
      return true;
    }
    out->push_back(static_cast<char>(c));
  }
  return !out->empty();
}

// CUPTI runtime records name the cbid ("cudaLaunchKernel_v7000",
// "cudaMemcpyAsync_ptsz_v7000"); match on the base name.
ApiKind ApiFromName(const std::string& name) {
  static const std::map<std::string, ApiKind>* kByName = new std::map<std::string, ApiKind>{
      {"cudaLaunchKernel", ApiKind::kLaunchKernel},
      {"cudaMemcpyAsync", ApiKind::kMemcpyAsync},
      {"cudaMemcpy", ApiKind::kMemcpySync},
      {"cudaDeviceSynchronize", ApiKind::kDeviceSynchronize},
      {"cudaStreamSynchronize", ApiKind::kStreamSynchronize},
      {"cudaEventRecord", ApiKind::kEventRecord},
      {"cudaMalloc", ApiKind::kMalloc},
      {"cudaFree", ApiKind::kFree},
  };
  const size_t cut = name.find('_');
  const std::string base = cut == std::string::npos ? name : name.substr(0, cut);
  const auto it = kByName->find(base);
  return it == kByName->end() ? ApiKind::kOther : it->second;
}

std::optional<Phase> PhaseFromName(const std::string& name) {
  for (const Phase phase : {Phase::kUnknown, Phase::kDataLoad, Phase::kForward, Phase::kBackward,
                            Phase::kWeightUpdate}) {
    if (name == ToString(phase)) {
      return phase;
    }
  }
  return std::nullopt;
}

std::optional<MemcpyKind> CopyKindFromName(const std::string& name) {
  for (const MemcpyKind kind :
       {MemcpyKind::kHostToDevice, MemcpyKind::kDeviceToHost, MemcpyKind::kDeviceToDevice}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<CommKind> CommKindFromName(const std::string& name) {
  for (const CommKind kind : {CommKind::kAllReduce, CommKind::kReduceScatter, CommKind::kAllGather,
                              CommKind::kPush, CommKind::kPull, CommKind::kP2p}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

// Per-correlation-id matching state; indexes into Trace::mutable_events()
// defer the unmatched-GPU repair to end-of-stream (flush order is arbitrary).
struct CorrState {
  bool launch_seen = false;
  bool gpu_seen = false;
};

class Importer {
 public:
  explicit Importer(CuptiImportStats* stats) : stats_(stats) {}

  bool Record(const JsonObject& record, uint64_t line, std::string* error) {
    const std::string kind = record.GetString("kind");
    if (kind.empty()) {
      return Fail(line, "record needs a string \"kind\" field", error);
    }
    ++stats_->records;
    if (kind == "trace") {
      trace_.set_model_name(record.GetString("model"));
      trace_.set_config(record.GetString("config"));
      return true;
    }
    if (kind == "gradient") {
      GradientInfo g;
      int64_t layer = 0;
      int64_t bytes = 0;
      int64_t bucket = 0;
      if (!RequireInt(record, "layer", line, &layer, error) ||
          !RequireInt(record, "bytes", line, &bytes, error) ||
          !RequireInt(record, "bucket", line, &bucket, error)) {
        return false;
      }
      if (bytes < 0) {
        return Fail(line, "negative gradient bytes", error);
      }
      g.layer_id = static_cast<int>(layer);
      g.bytes = bytes;
      g.bucket_id = static_cast<int>(bucket);
      trace_.AddGradientInfo(g);
      return true;
    }

    // Event records. All carry start (ns); all but markers carry end (ns).
    TraceEvent e;
    e.name = record.GetString("name");
    int64_t start = 0;
    if (!RequireInt(record, "start", line, &start, error)) {
      return false;
    }
    if (start < 0) {
      return Fail(line, "negative start timestamp", error);
    }
    e.start = start;
    const bool is_marker = kind == "marker";
    if (is_marker) {
      // Markers are instantaneous instrumentation stamps; "end" is optional
      // and must equal start when present.
      e.duration = 0;
      if (record.Has("end") && record.GetInt64("end", -1) != start) {
        return Fail(line, "marker with end != start", error);
      }
    } else {
      int64_t end = 0;
      if (!RequireInt(record, "end", line, &end, error)) {
        return false;
      }
      if (end < start) {
        return Fail(line, "end precedes start", error);
      }
      e.duration = end - start;
    }

    // Single-process streams only: a second processId is a different capture.
    if (record.Has("processId")) {
      const int64_t pid = record.GetInt64("processId", -1);
      if (pid < 0) {
        return Fail(line, "bad processId", error);
      }
      if (process_id_ < 0) {
        process_id_ = pid;
      } else if (pid != process_id_) {
        return Fail(line, "record from a second processId (single-process streams only)", error);
      }
    }

    if (kind == "runtime" || kind == "driver") {
      e.kind = EventKind::kRuntimeApi;
      e.api = ApiFromName(e.name);
      if (!RequireId(record, "threadId", line, &e.thread_id, error) ||
          !ReadCorrelation(record, line, &e, error) ||
          !ReadOptionalLayer(record, line, &e, error)) {
        return false;
      }
      // cudaStreamSynchronize targets a stream; the optional streamId names it.
      if (record.Has("streamId") && !RequireId(record, "streamId", line, &e.stream_id, error)) {
        return false;
      }
      if (e.correlation_id != 0 &&
          (e.api == ApiKind::kLaunchKernel || e.api == ApiKind::kMemcpyAsync ||
           e.api == ApiKind::kMemcpySync)) {
        CorrState& state = corr_[e.correlation_id];
        if (state.launch_seen) {
          ++stats_->duplicate_launch;
          e.correlation_id = 0;
        } else {
          state.launch_seen = true;
        }
      }
    } else if (kind == "kernel" || kind == "concurrent_kernel" || kind == "memcpy") {
      e.kind = kind == "memcpy" ? EventKind::kMemcpy : EventKind::kKernel;
      if (!RequireId(record, "streamId", line, &e.stream_id, error) ||
          !ReadCorrelation(record, line, &e, error) ||
          !ReadOptionalLayer(record, line, &e, error)) {
        return false;
      }
      if (e.kind == EventKind::kMemcpy) {
        const std::optional<MemcpyKind> copy = CopyKindFromName(record.GetString("copyKind"));
        if (!copy.has_value()) {
          return Fail(line, "memcpy needs copyKind HtoD|DtoH|DtoD", error);
        }
        e.memcpy_kind = *copy;
        if (!ReadOptionalBytes(record, line, &e, error)) {
          return false;
        }
      }
      if (e.correlation_id != 0) {
        CorrState& state = corr_[e.correlation_id];
        if (state.gpu_seen) {
          ++stats_->duplicate_gpu;
          e.correlation_id = 0;
        } else {
          state.gpu_seen = true;
        }
      }
    } else if (is_marker) {
      e.kind = EventKind::kLayerMarker;
      int64_t layer = 0;
      if (!RequireId(record, "threadId", line, &e.thread_id, error) ||
          !RequireInt(record, "layer", line, &layer, error)) {
        return false;
      }
      e.layer_id = static_cast<int>(layer);
      const JsonValue* begin = record.Find("begin");
      if (begin == nullptr || begin->kind != JsonValue::Kind::kBool) {
        return Fail(line, "marker needs a boolean \"begin\" field", error);
      }
      e.marker_begin = begin->boolean;
      const std::optional<Phase> phase = PhaseFromName(record.GetString("phase"));
      if (!phase.has_value()) {
        return Fail(line, "marker needs phase dataload|forward|backward|weight_update", error);
      }
      e.phase = *phase;
    } else if (kind == "dataload") {
      e.kind = EventKind::kDataLoad;
      e.phase = Phase::kDataLoad;
      if (!RequireId(record, "threadId", line, &e.thread_id, error)) {
        return false;
      }
    } else if (kind == "comm") {
      e.kind = EventKind::kCommunication;
      const std::optional<CommKind> comm = CommKindFromName(record.GetString("commKind"));
      if (!comm.has_value()) {
        return Fail(line, "comm needs commKind allReduce|reduceScatter|allGather|push|pull|p2p",
                    error);
      }
      e.comm_kind = *comm;
      if (!RequireId(record, "channelId", line, &e.channel_id, error) ||
          !ReadOptionalBytes(record, line, &e, error) || !ReadOptionalLayer(record, line, &e, error)) {
        return false;
      }
    } else {
      return Fail(line, "unknown record kind '" + kind + "'", error);
    }

    ++stats_->events;
    trace_.Add(std::move(e));
    return true;
  }

  // End-of-stream repair + bookkeeping: GPU activities whose id never saw a
  // launch cannot contribute a dependency edge; clearing the id keeps the
  // trace self-consistent (Trace::Validate) instead of failing downstream.
  Trace Finish() {
    for (const auto& [id, state] : corr_) {
      if (state.launch_seen && state.gpu_seen) {
        ++stats_->matched;
      } else if (state.launch_seen) {
        ++stats_->unmatched_launch;
      }
    }
    for (TraceEvent& e : trace_.mutable_events()) {
      if (e.is_gpu() && e.correlation_id != 0 && !corr_[e.correlation_id].launch_seen) {
        e.correlation_id = 0;
        ++stats_->unmatched_gpu;
      }
    }
    return std::move(trace_);
  }

 private:
  static bool Fail(uint64_t line, const std::string& message, std::string* error) {
    if (error != nullptr) {
      *error = StrFormat("line %llu: %s", static_cast<unsigned long long>(line), message.c_str());
    }
    return false;
  }

  static bool RequireInt(const JsonObject& record, const char* key, uint64_t line, int64_t* out,
                         std::string* error) {
    const JsonValue* value = record.Find(key);
    const std::optional<int64_t> parsed =
        value != nullptr ? value->AsInt64() : std::optional<int64_t>();
    if (!parsed.has_value()) {
      return Fail(line, std::string("record needs an integer \"") + key + "\" field", error);
    }
    *out = *parsed;
    return true;
  }

  // Lane ids must be non-negative (same guard as .ddtrace ingestion).
  static bool RequireId(const JsonObject& record, const char* key, uint64_t line, int* out,
                        std::string* error) {
    int64_t value = 0;
    if (!RequireInt(record, key, line, &value, error)) {
      return false;
    }
    if (value < 0 || value > std::numeric_limits<int>::max()) {
      return Fail(line, std::string("bad \"") + key + "\" (expected a non-negative id)", error);
    }
    *out = static_cast<int>(value);
    return true;
  }

  bool ReadCorrelation(const JsonObject& record, uint64_t line, TraceEvent* e,
                       std::string* error) {
    if (!record.Has("correlationId")) {
      return true;
    }
    int64_t corr = 0;
    if (!RequireInt(record, "correlationId", line, &corr, error)) {
      return false;
    }
    if (corr < 0) {
      return Fail(line, "negative correlationId", error);
    }
    e->correlation_id = corr;
    return true;
  }

  bool ReadOptionalBytes(const JsonObject& record, uint64_t line, TraceEvent* e,
                         std::string* error) {
    if (!record.Has("bytes")) {
      return true;
    }
    int64_t bytes = 0;
    if (!RequireInt(record, "bytes", line, &bytes, error)) {
      return false;
    }
    if (bytes < 0) {
      return Fail(line, "negative bytes", error);
    }
    e->bytes = bytes;
    return true;
  }

  // Optional layer/phase attribution (the paper's framework instrumentation
  // stamps them; raw CUPTI streams lack them and rely on markers instead).
  bool ReadOptionalLayer(const JsonObject& record, uint64_t line, TraceEvent* e,
                         std::string* error) {
    if (record.Has("layer")) {
      int64_t layer = 0;
      if (!RequireInt(record, "layer", line, &layer, error)) {
        return false;
      }
      e->layer_id = static_cast<int>(layer);
    }
    if (record.Has("phase")) {
      const std::optional<Phase> phase = PhaseFromName(record.GetString("phase"));
      if (!phase.has_value()) {
        return Fail(line, "bad phase", error);
      }
      e->phase = *phase;
    }
    return true;
  }

  CuptiImportStats* stats_;
  Trace trace_;
  std::map<int64_t, CorrState> corr_;
  int64_t process_id_ = -1;
};

}  // namespace

std::optional<Trace> ImportCuptiTrace(std::istream& in, std::string* error,
                                      CuptiImportStats* stats) {
  CuptiImportStats scratch;
  Importer importer(stats != nullptr ? stats : &scratch);
  std::string line;
  uint64_t line_number = 0;
  bool too_long = false;
  while (BoundedGetline(in, &line, &too_long)) {
    ++line_number;
    if (too_long) {
      if (error != nullptr) {
        *error = StrFormat("line %llu: exceeds the %zu-byte line limit",
                           static_cast<unsigned long long>(line_number), kMaxLineBytes);
      }
      return std::nullopt;
    }
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // CRLF streams
    }
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    const std::optional<JsonObject> record = ParseJsonObject(line, &parse_error);
    if (!record.has_value()) {
      if (error != nullptr) {
        *error = StrFormat("line %llu: %s", static_cast<unsigned long long>(line_number),
                           parse_error.c_str());
      }
      return std::nullopt;
    }
    if (!importer.Record(*record, line_number, error)) {
      return std::nullopt;
    }
  }
  return importer.Finish();
}

std::optional<Trace> ImportCuptiTraceFile(const std::string& path, std::string* error,
                                          CuptiImportStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  return ImportCuptiTrace(in, error, stats);
}

}  // namespace daydream

#include "src/trace/import_chrome.h"

#include <fstream>
#include <limits>

#include "src/util/json_stream.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

using Token = JsonStreamTokenizer::Token;
using TokenKind = JsonStreamTokenizer::TokenKind;

std::optional<EventKind> KindFromCat(const std::string& cat) {
  for (const EventKind kind : {EventKind::kRuntimeApi, EventKind::kKernel, EventKind::kMemcpy,
                               EventKind::kLayerMarker, EventKind::kDataLoad,
                               EventKind::kCommunication}) {
    if (cat == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<ApiKind> ApiFromArg(const std::string& name) {
  for (const ApiKind kind :
       {ApiKind::kNone, ApiKind::kLaunchKernel, ApiKind::kMemcpyAsync, ApiKind::kMemcpySync,
        ApiKind::kDeviceSynchronize, ApiKind::kStreamSynchronize, ApiKind::kEventRecord,
        ApiKind::kMalloc, ApiKind::kFree, ApiKind::kOther}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<MemcpyKind> CopyFromArg(const std::string& name) {
  for (const MemcpyKind kind : {MemcpyKind::kHostToDevice, MemcpyKind::kDeviceToHost,
                                MemcpyKind::kDeviceToDevice}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<CommKind> CommFromArg(const std::string& name) {
  for (const CommKind kind : {CommKind::kAllReduce, CommKind::kReduceScatter, CommKind::kAllGather,
                              CommKind::kPush, CommKind::kPull, CommKind::kP2p}) {
    if (name == ToString(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::optional<Phase> PhaseFromArg(const std::string& name) {
  for (const Phase phase : {Phase::kUnknown, Phase::kDataLoad, Phase::kForward, Phase::kBackward,
                            Phase::kWeightUpdate}) {
    if (name == ToString(phase)) {
      return phase;
    }
  }
  return std::nullopt;
}

// Everything one trace-event object can carry; filled key by key, validated
// whole once the object closes (key order in the file does not matter).
struct RowFields {
  std::string ph;
  std::string name;
  std::string cat;
  bool has_tid = false;
  int64_t tid = 0;
  bool has_ts = false;
  int64_t ts_ns = 0;
  bool has_dur = false;
  int64_t dur_ns = 0;
  // args members
  bool has_layer = false;
  int64_t layer = 0;
  bool has_phase = false;
  std::string phase;
  bool has_corr = false;
  int64_t corr = 0;
  bool has_bytes = false;
  int64_t bytes = 0;
  std::string api;
  std::string copy;
  std::string comm;
  bool has_stream = false;
  int64_t stream = 0;
  std::string model;
  std::string config;
  bool has_bucket = false;
  int64_t bucket = 0;
};

bool IsScalar(TokenKind kind) {
  return kind == TokenKind::kString || kind == TokenKind::kNumber || kind == TokenKind::kBool ||
         kind == TokenKind::kNull;
}

class ChromeImporter {
 public:
  ChromeImporter(std::istream& in, ChromeImportStats* stats) : tok_(in), stats_(stats) {}

  std::optional<Trace> Run(std::string* error) {
    bool ok = Parse();
    if (!ok) {
      if (error != nullptr) {
        *error = error_;
      }
      return std::nullopt;
    }
    return std::move(trace_);
  }

 private:
  bool Parse() {
    if (!ExpectNext(TokenKind::kBeginArray, "top-level value must be an array")) {
      return false;
    }
    while (true) {
      const Token& t = tok_.Next();
      if (t.kind == TokenKind::kEndArray) {
        break;
      }
      if (t.kind != TokenKind::kBeginObject) {
        return FailToken(t, "every trace row must be an object");
      }
      ++row_;
      if (!ParseRow()) {
        return false;
      }
    }
    return ExpectNext(TokenKind::kEnd, "trailing content after the trace array");
  }

  bool ParseRow() {
    RowFields f;
    while (true) {
      const Token& t = tok_.Next();
      if (t.kind == TokenKind::kEndObject) {
        break;
      }
      if (t.kind != TokenKind::kKey) {
        return FailToken(t, "expected a member key");
      }
      const std::string key = t.text;
      const Token& v = tok_.Next();
      if (v.kind == TokenKind::kBeginObject) {
        if (key != "args") {
          return Fail("unexpected object value for \"" + key + "\"");
        }
        if (!ParseArgs(&f)) {
          return false;
        }
        continue;
      }
      if (!IsScalar(v.kind)) {
        return FailToken(v, "expected a scalar value for \"" + key + "\"");
      }
      if (!SetRowField(&f, key, v)) {
        return false;
      }
    }
    return FinishRow(f);
  }

  bool ParseArgs(RowFields* f) {
    while (true) {
      const Token& t = tok_.Next();
      if (t.kind == TokenKind::kEndObject) {
        return true;
      }
      if (t.kind != TokenKind::kKey) {
        return FailToken(t, "expected an args key");
      }
      const std::string key = t.text;
      const Token& v = tok_.Next();
      if (!IsScalar(v.kind)) {
        return FailToken(v, "args values must be scalars (got a container for \"" + key + "\")");
      }
      if (!SetArgField(f, key, v)) {
        return false;
      }
    }
  }

  bool SetRowField(RowFields* f, const std::string& key, const Token& v) {
    if (key == "ph" || key == "name" || key == "cat" || key == "s") {
      if (v.kind != TokenKind::kString) {
        return Fail("\"" + key + "\" must be a string");
      }
      if (key == "ph") {
        f->ph = v.text;
      } else if (key == "name") {
        f->name = v.text;
      } else if (key == "cat") {
        f->cat = v.text;
      }
      return true;
    }
    if (key == "tid") {
      return ReadInt(v, key, &f->tid, &f->has_tid);
    }
    if (key == "ts") {
      return ReadUs(v, key, &f->ts_ns, &f->has_ts);
    }
    if (key == "dur") {
      return ReadUs(v, key, &f->dur_ns, &f->has_dur);
    }
    if (key == "pid") {
      int64_t ignored = 0;
      bool has = false;
      return ReadInt(v, key, &ignored, &has);
    }
    return true;  // unknown scalar members are ignored (foreign tools add them)
  }

  bool SetArgField(RowFields* f, const std::string& key, const Token& v) {
    if (key == "layer") {
      return ReadInt(v, key, &f->layer, &f->has_layer);
    }
    if (key == "corr") {
      return ReadInt(v, key, &f->corr, &f->has_corr);
    }
    if (key == "bytes") {
      return ReadInt(v, key, &f->bytes, &f->has_bytes);
    }
    if (key == "stream") {
      return ReadInt(v, key, &f->stream, &f->has_stream);
    }
    if (key == "bucket") {
      return ReadInt(v, key, &f->bucket, &f->has_bucket);
    }
    if (key == "phase" || key == "api" || key == "copy" || key == "comm" || key == "model" ||
        key == "config") {
      if (v.kind != TokenKind::kString) {
        return Fail("args." + key + " must be a string");
      }
      if (key == "phase") {
        f->phase = v.text;
        f->has_phase = true;
      } else if (key == "api") {
        f->api = v.text;
      } else if (key == "copy") {
        f->copy = v.text;
      } else if (key == "comm") {
        f->comm = v.text;
      } else if (key == "model") {
        f->model = v.text;
      } else {
        f->config = v.text;
      }
      return true;
    }
    return true;  // e.g. thread_name's args.name
  }

  bool ReadInt(const Token& v, const std::string& key, int64_t* out, bool* has) {
    if (v.kind != TokenKind::kNumber) {
      return Fail("\"" + key + "\" must be a number");
    }
    const std::optional<int64_t> parsed = ParseInt64(v.text);
    if (!parsed.has_value()) {
      return Fail("\"" + key + "\" must be an integer (got \"" + v.text + "\")");
    }
    *out = *parsed;
    *has = true;
    return true;
  }

  bool ReadUs(const Token& v, const std::string& key, int64_t* out, bool* has) {
    if (v.kind != TokenKind::kNumber) {
      return Fail("\"" + key + "\" must be a number");
    }
    const std::optional<int64_t> ns = ParseDecimalUsToNs(v.text);
    if (!ns.has_value()) {
      return Fail("\"" + key + "\" is not exactly representable in ns (got \"" + v.text + "\")");
    }
    *out = *ns;
    *has = true;
    return true;
  }

  bool FinishRow(const RowFields& f) {
    if (f.ph == "M") {
      return FinishMetadata(f);
    }
    if (f.ph == "X") {
      return FinishComplete(f);
    }
    if (f.ph == "i") {
      return FinishInstant(f);
    }
    if (f.ph.empty()) {
      return Fail("row is missing \"ph\"");
    }
    return Fail("unsupported ph \"" + f.ph + "\"");
  }

  bool FinishMetadata(const RowFields& f) {
    if (f.name == "daydream_trace") {
      trace_.set_model_name(f.model);
      trace_.set_config(f.config);
      return true;
    }
    if (f.name == "daydream_gradient") {
      if (!f.has_layer || !f.has_bytes || !f.has_bucket) {
        return Fail("daydream_gradient needs args layer/bytes/bucket");
      }
      if (f.bytes < 0) {
        return Fail("negative gradient bytes");
      }
      if (f.layer < std::numeric_limits<int>::min() || f.layer > std::numeric_limits<int>::max() ||
          f.bucket < std::numeric_limits<int>::min() ||
          f.bucket > std::numeric_limits<int>::max()) {
        return Fail("gradient layer/bucket out of range");
      }
      GradientInfo g;
      g.layer_id = static_cast<int>(f.layer);
      g.bytes = f.bytes;
      g.bucket_id = static_cast<int>(f.bucket);
      trace_.AddGradientInfo(g);
      ++stats_->gradients;
      return true;
    }
    ++stats_->skipped_rows;  // thread_name, process_name, foreign metadata
    return true;
  }

  bool FinishComplete(const RowFields& f) {
    const std::optional<EventKind> kind = KindFromCat(f.cat);
    if (!kind.has_value()) {
      return Fail("unknown cat \"" + f.cat + "\"");
    }
    if (*kind == EventKind::kLayerMarker) {
      return Fail("layer markers are ph:\"i\" rows, not X");
    }
    if (!f.has_tid || !f.has_ts || !f.has_dur) {
      return Fail("X row needs tid/ts/dur");
    }
    TraceEvent e;
    e.kind = *kind;
    e.name = f.name;
    if (f.ts_ns < 0 || f.dur_ns < 0) {
      return Fail("negative ts/dur");
    }
    e.start = f.ts_ns;
    e.duration = f.dur_ns;
    if (!DecodeLane(f.tid, &e)) {
      return false;
    }
    if (f.has_layer) {
      if (f.layer < -1 || f.layer > std::numeric_limits<int>::max()) {
        return Fail("bad args.layer");
      }
      e.layer_id = static_cast<int>(f.layer);
    }
    if (f.has_phase) {
      const std::optional<Phase> phase = PhaseFromArg(f.phase);
      if (!phase.has_value()) {
        return Fail("unknown args.phase \"" + f.phase + "\"");
      }
      e.phase = *phase;
    }
    if (f.has_corr) {
      if (f.corr < 0) {
        return Fail("negative args.corr");
      }
      e.correlation_id = f.corr;
    }
    if (f.has_bytes) {
      if (f.bytes < 0) {
        return Fail("negative args.bytes");
      }
      e.bytes = f.bytes;
    }
    if (!f.api.empty()) {
      if (e.kind != EventKind::kRuntimeApi) {
        return Fail("args.api on a non-RuntimeApi row");
      }
      const std::optional<ApiKind> api = ApiFromArg(f.api);
      if (!api.has_value()) {
        return Fail("unknown args.api \"" + f.api + "\"");
      }
      e.api = *api;
    }
    if (!f.copy.empty()) {
      if (e.kind != EventKind::kMemcpy) {
        return Fail("args.copy on a non-Memcpy row");
      }
      const std::optional<MemcpyKind> copy = CopyFromArg(f.copy);
      if (!copy.has_value()) {
        return Fail("unknown args.copy \"" + f.copy + "\"");
      }
      e.memcpy_kind = *copy;
    }
    if (!f.comm.empty()) {
      if (e.kind != EventKind::kCommunication) {
        return Fail("args.comm on a non-Communication row");
      }
      const std::optional<CommKind> comm = CommFromArg(f.comm);
      if (!comm.has_value()) {
        return Fail("unknown args.comm \"" + f.comm + "\"");
      }
      e.comm_kind = *comm;
    }
    if (f.has_stream) {
      // Target stream of a CPU-side synchronization call (the exporter only
      // emits args.stream for CPU rows; GPU rows carry the stream in the tid).
      if (!e.is_cpu()) {
        return Fail("args.stream on a non-CPU row");
      }
      if (f.stream < 0 || f.stream > std::numeric_limits<int>::max()) {
        return Fail("bad args.stream");
      }
      e.stream_id = static_cast<int>(f.stream);
    }
    trace_.Add(std::move(e));
    ++stats_->events;
    return true;
  }

  bool FinishInstant(const RowFields& f) {
    if (!f.has_tid || !f.has_ts) {
      return Fail("instant row needs tid/ts");
    }
    // "<name>/<phase>/<begin|end>"; the marker's own name may contain '/',
    // so the phase and edge are the LAST two segments.
    const size_t edge_cut = f.name.rfind('/');
    const size_t phase_cut = edge_cut == std::string::npos || edge_cut == 0
                                 ? std::string::npos
                                 : f.name.rfind('/', edge_cut - 1);
    if (edge_cut == std::string::npos || phase_cut == std::string::npos) {
      return Fail("instant name must be \"<name>/<phase>/<begin|end>\"");
    }
    const std::string edge = f.name.substr(edge_cut + 1);
    const std::string phase_name = f.name.substr(phase_cut + 1, edge_cut - phase_cut - 1);
    TraceEvent e;
    e.kind = EventKind::kLayerMarker;
    e.name = f.name.substr(0, phase_cut);
    if (edge == "begin") {
      e.marker_begin = true;
    } else if (edge == "end") {
      e.marker_begin = false;
    } else {
      return Fail("instant name must end in /begin or /end");
    }
    const std::optional<Phase> phase = PhaseFromArg(phase_name);
    if (!phase.has_value()) {
      return Fail("unknown marker phase \"" + phase_name + "\"");
    }
    e.phase = *phase;
    if (f.ts_ns < 0) {
      return Fail("negative ts");
    }
    e.start = f.ts_ns;
    e.duration = 0;
    if (f.tid < 0 || f.tid >= 1000) {
      return Fail("marker tid outside the CPU row band [0, 1000)");
    }
    e.thread_id = static_cast<int>(f.tid);
    if (f.has_layer) {
      if (f.layer < -1 || f.layer > std::numeric_limits<int>::max()) {
        return Fail("bad args.layer");
      }
      e.layer_id = static_cast<int>(f.layer);
    }
    trace_.Add(std::move(e));
    ++stats_->events;
    return true;
  }

  // The exporter's RowTid bands: CPU thread = tid, GPU stream = 1000 + id,
  // comm channel = 2000 + id. The band must agree with the cat.
  bool DecodeLane(int64_t tid, TraceEvent* e) {
    if (e->is_cpu()) {
      if (tid < 0 || tid >= 1000) {
        return Fail("CPU row tid outside [0, 1000)");
      }
      e->thread_id = static_cast<int>(tid);
      return true;
    }
    if (e->is_gpu()) {
      if (tid < 1000 || tid >= 2000) {
        return Fail("GPU row tid outside [1000, 2000)");
      }
      e->stream_id = static_cast<int>(tid - 1000);
      return true;
    }
    if (tid < 2000 || tid - 2000 > std::numeric_limits<int>::max()) {
      return Fail("comm row tid below 2000");
    }
    e->channel_id = static_cast<int>(tid - 2000);
    return true;
  }

  bool ExpectNext(TokenKind kind, const std::string& message) {
    const Token& t = tok_.Next();
    if (t.kind == kind) {
      return true;
    }
    return FailToken(t, message);
  }

  // Tokenizer errors carry their own message; grammar surprises get ours.
  bool FailToken(const Token& t, const std::string& message) {
    return Fail(t.kind == TokenKind::kError ? t.text : message);
  }

  bool Fail(const std::string& message) {
    error_ = StrFormat("row %llu (offset %llu): %s", static_cast<unsigned long long>(row_),
                       static_cast<unsigned long long>(tok_.offset()), message.c_str());
    return false;
  }

  JsonStreamTokenizer tok_;
  ChromeImportStats* stats_;
  Trace trace_;
  std::string error_;
  uint64_t row_ = 0;
};

}  // namespace

std::optional<Trace> ImportChromeTrace(std::istream& in, std::string* error,
                                       ChromeImportStats* stats) {
  ChromeImportStats scratch;
  ChromeImporter importer(in, stats != nullptr ? stats : &scratch);
  return importer.Run(error);
}

std::optional<Trace> ImportChromeTraceFile(const std::string& path, std::string* error,
                                           ChromeImportStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  return ImportChromeTrace(in, error, stats);
}

}  // namespace daydream

#include "src/trace/trace_event.h"

#include "src/util/string_util.h"

namespace daydream {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kRuntimeApi:
      return "RuntimeApi";
    case EventKind::kKernel:
      return "Kernel";
    case EventKind::kMemcpy:
      return "Memcpy";
    case EventKind::kLayerMarker:
      return "LayerMarker";
    case EventKind::kDataLoad:
      return "DataLoad";
    case EventKind::kCommunication:
      return "Communication";
  }
  return "?";
}

const char* ToString(ApiKind kind) {
  switch (kind) {
    case ApiKind::kNone:
      return "none";
    case ApiKind::kLaunchKernel:
      return "cudaLaunchKernel";
    case ApiKind::kMemcpyAsync:
      return "cudaMemcpyAsync";
    case ApiKind::kMemcpySync:
      return "cudaMemcpy";
    case ApiKind::kDeviceSynchronize:
      return "cudaDeviceSynchronize";
    case ApiKind::kStreamSynchronize:
      return "cudaStreamSynchronize";
    case ApiKind::kEventRecord:
      return "cudaEventRecord";
    case ApiKind::kMalloc:
      return "cudaMalloc";
    case ApiKind::kFree:
      return "cudaFree";
    case ApiKind::kOther:
      return "other";
  }
  return "?";
}

const char* ToString(MemcpyKind kind) {
  switch (kind) {
    case MemcpyKind::kNone:
      return "none";
    case MemcpyKind::kHostToDevice:
      return "HtoD";
    case MemcpyKind::kDeviceToHost:
      return "DtoH";
    case MemcpyKind::kDeviceToDevice:
      return "DtoD";
  }
  return "?";
}

const char* ToString(CommKind kind) {
  switch (kind) {
    case CommKind::kNone:
      return "none";
    case CommKind::kAllReduce:
      return "allReduce";
    case CommKind::kReduceScatter:
      return "reduceScatter";
    case CommKind::kAllGather:
      return "allGather";
    case CommKind::kPush:
      return "push";
    case CommKind::kPull:
      return "pull";
    case CommKind::kP2p:
      return "p2p";
  }
  return "?";
}

const char* ToString(Phase phase) {
  switch (phase) {
    case Phase::kUnknown:
      return "unknown";
    case Phase::kDataLoad:
      return "dataload";
    case Phase::kForward:
      return "forward";
    case Phase::kBackward:
      return "backward";
    case Phase::kWeightUpdate:
      return "weight_update";
  }
  return "?";
}

std::string TraceEvent::DebugString() const {
  return StrFormat("[%s %s start=%.3fus dur=%.3fus tid=%d stream=%d chan=%d corr=%lld layer=%d %s]",
                   ToString(kind), name.c_str(), ToUs(start), ToUs(duration), thread_id,
                   stream_id, channel_id, static_cast<long long>(correlation_id), layer_id,
                   ToString(phase));
}

}  // namespace daydream

// Trace persistence: a line-oriented text format with exact round-tripping.
//
// The paper's workflow separates trace collection (run once on the target
// machine) from what-if analysis (run many times offline, §7.1). Persisting
// traces makes that split real: `examples/timeline_export` dumps a trace,
// analysis tools reload it.
#ifndef SRC_TRACE_TRACE_IO_H_
#define SRC_TRACE_TRACE_IO_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "src/trace/trace.h"

namespace daydream {

// Format (one record per line, tab-separated):
//   daydream-trace v1
//   model <name>
//   config <string>
//   grad <layer_id> <bytes> <bucket_id>
//   ev <kind> <api> <memcpy> <comm> <start> <dur> <tid> <stream> <chan> <corr>
//      <layer> <phase> <marker_begin> <bytes> <name>
void WriteTrace(const Trace& trace, std::ostream& os);
bool WriteTraceFile(const Trace& trace, const std::string& path);

// Returns nullopt on parse errors (malformed header, bad field counts).
std::optional<Trace> ReadTrace(std::istream& is);
std::optional<Trace> ReadTraceFile(const std::string& path);

// The ingestion formats `daydream import` / `--format` accept. kDdtrace is
// the native dump above; the other two are real-profiler formats handled by
// the streaming importers in src/trace/import_cupti.h / import_chrome.h.
enum class TraceFormat {
  kDdtrace,
  kCupti,   // CUPTI-style JSON-lines record stream
  kChrome,  // Chrome trace-event JSON array (round-trips WriteChromeTrace)
};

// Parses "ddtrace" / "cupti" / "chrome" (case-insensitive).
std::optional<TraceFormat> ParseTraceFormat(const std::string& name);
const char* ToString(TraceFormat format);

// Reads `path` in the given format. On failure returns nullopt with *error
// (when given) describing the problem; the native format reports its
// historical generic message, the importers report position + cause.
std::optional<Trace> ReadTraceFileAs(const std::string& path, TraceFormat format,
                                     std::string* error = nullptr);

}  // namespace daydream

#endif  // SRC_TRACE_TRACE_IO_H_

// CUPTI-style record-stream importer.
//
// The paper's Phase-1 instrumentation reads CUPTI activity records — CPU-side
// runtime API calls `{kind, name, start/end ns, processId, threadId,
// correlationId}` and GPU-side kernel/memcpy activities `{streamId,
// correlationId}` — and reconstructs CPU→GPU launch dependencies by matching
// correlation ids (§4.2.2). This importer accepts that record shape as JSON
// lines: one flat JSON object per line, e.g.
//
//   {"kind":"runtime","name":"cudaLaunchKernel","start":1000,"end":1500,
//    "processId":7,"threadId":1,"correlationId":42}
//   {"kind":"kernel","name":"volta_sgemm","start":2100,"end":9000,
//    "streamId":0,"correlationId":42}
//   {"kind":"memcpy","copyKind":"HtoD","bytes":4096,"start":...,"end":...,
//    "streamId":1,"correlationId":43}
//   {"kind":"marker","name":"conv1","layer":0,"phase":"forward","begin":true,
//    "start":900,"threadId":1}
//   {"kind":"gradient","layer":0,"bytes":1048576,"bucket":0}
//   {"kind":"trace","model":"ResNet-50","config":"batch=64"}
//
// Streaming by construction: records are parsed line by line (the flat
// parser from src/util/json.h), so peak memory is the output Trace plus one
// line plus the correlation table — never the file. Timestamps and
// correlation ids decode through JsonObject::GetInt64, exact past 2^53.
//
// Correlation matching is one pass: each launching API (cudaLaunchKernel /
// cudaMemcpyAsync / cudaMemcpy) registers its id; GPU records pair with it
// in either arrival order (CUPTI buffers flush out of order). Records that
// would corrupt the dependency graph — a second GPU activity or a second
// launch on one id, or a GPU activity whose id never sees a launch — keep
// their event but have the correlation id cleared, and the repair is
// reported in CuptiImportStats. Malformed lines reject the whole import with
// a line-numbered error: a profiler dump is either trustworthy or not.
#ifndef SRC_TRACE_IMPORT_CUPTI_H_
#define SRC_TRACE_IMPORT_CUPTI_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <string>

#include "src/trace/trace.h"

namespace daydream {

struct CuptiImportStats {
  uint64_t records = 0;            // accepted records (events + side channel)
  uint64_t events = 0;             // TraceEvents produced
  uint64_t matched = 0;            // correlation ids with launch + GPU task
  uint64_t unmatched_gpu = 0;      // GPU activity without a launch: id cleared
  uint64_t unmatched_launch = 0;   // launch whose GPU activity never arrived
  uint64_t duplicate_gpu = 0;      // extra GPU activity on one id: id cleared
  uint64_t duplicate_launch = 0;   // extra launch on one id: id cleared
};

// Returns nullopt with *error naming the line and cause on malformed input.
std::optional<Trace> ImportCuptiTrace(std::istream& in, std::string* error = nullptr,
                                      CuptiImportStats* stats = nullptr);
std::optional<Trace> ImportCuptiTraceFile(const std::string& path, std::string* error = nullptr,
                                          CuptiImportStats* stats = nullptr);

}  // namespace daydream

#endif  // SRC_TRACE_IMPORT_CUPTI_H_

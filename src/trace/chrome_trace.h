// Chrome-trace (chrome://tracing / Perfetto) JSON export.
//
// Gives the same visual as the paper's Figure 1 (NVProf timeline of ResNet-50):
// CPU threads, GPU streams and communication channels as separate rows.
#ifndef SRC_TRACE_CHROME_TRACE_H_
#define SRC_TRACE_CHROME_TRACE_H_

#include <ostream>
#include <string>

#include "src/trace/trace.h"

namespace daydream {

// Writes the trace as a Chrome trace-event JSON array ("X" complete events).
void WriteChromeTrace(const Trace& trace, std::ostream& os);

// Convenience: writes to `path`, returns false if the file cannot be opened.
bool WriteChromeTraceFile(const Trace& trace, const std::string& path);

// Escapes a string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& text);

}  // namespace daydream

#endif  // SRC_TRACE_CHROME_TRACE_H_

#include "src/trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "src/util/string_util.h"

namespace daydream {

namespace {

constexpr char kHeader[] = "daydream-trace v1";

// The format is line- and tab-delimited, so free-text fields (event names,
// model name, config) must not contain tabs, newlines, or carriage returns.
// Replace them with spaces on write to keep the round trip lossless enough
// that ReadTrace never rejects a file we produced.
std::string SanitizeField(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

// Names may contain spaces but not tabs/newlines; they go last on the line.
void WriteEvent(const TraceEvent& e, std::ostream& os) {
  os << "ev\t" << static_cast<int>(e.kind) << "\t" << static_cast<int>(e.api) << "\t"
     << static_cast<int>(e.memcpy_kind) << "\t" << static_cast<int>(e.comm_kind) << "\t"
     << e.start << "\t" << e.duration << "\t" << e.thread_id << "\t" << e.stream_id << "\t"
     << e.channel_id << "\t" << e.correlation_id << "\t" << e.layer_id << "\t"
     << static_cast<int>(e.phase) << "\t" << (e.marker_begin ? 1 : 0) << "\t" << e.bytes << "\t"
     << SanitizeField(e.name) << "\n";
}

// Range-checked enum decode: an out-of-range integer (corrupt or
// foreign-version file) must reject the record, not produce an enum value no
// switch in the pipeline handles. `last` is the enum's maximum enumerator.
template <typename E>
std::optional<E> ParseEnum(const std::string& field, E last) {
  const int value = std::stoi(field);  // throws on garbage; caught by ParseEvent
  if (value < 0 || value > static_cast<int>(last)) {
    return std::nullopt;
  }
  return static_cast<E>(value);
}

std::optional<TraceEvent> ParseEvent(const std::vector<std::string>& f) {
  // "ev" + 15 fields.
  if (f.size() != 16) {
    return std::nullopt;
  }
  try {
    TraceEvent e;
    const auto kind = ParseEnum(f[1], EventKind::kCommunication);
    const auto api = ParseEnum(f[2], ApiKind::kOther);
    const auto memcpy_kind = ParseEnum(f[3], MemcpyKind::kDeviceToDevice);
    const auto comm_kind = ParseEnum(f[4], CommKind::kP2p);
    const auto phase = ParseEnum(f[12], Phase::kWeightUpdate);
    if (!kind || !api || !memcpy_kind || !comm_kind || !phase) {
      return std::nullopt;
    }
    e.kind = *kind;
    e.api = *api;
    e.memcpy_kind = *memcpy_kind;
    e.comm_kind = *comm_kind;
    e.phase = *phase;
    e.start = std::stoll(f[5]);
    e.duration = std::stoll(f[6]);
    e.thread_id = std::stoi(f[7]);
    e.stream_id = std::stoi(f[8]);
    e.channel_id = std::stoi(f[9]);
    e.correlation_id = std::stoll(f[10]);
    e.layer_id = std::stoi(f[11]);
    e.marker_begin = std::stoi(f[13]) != 0;
    e.bytes = std::stoll(f[14]);
    e.name = f[15];
    // Negative times or payload sizes violate simulator invariants (progress
    // and earliest-start bounds must be monotone): reject the record.
    if (e.start < 0 || e.duration < 0 || e.bytes < 0) {
      return std::nullopt;
    }
    return e;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& os) {
  os << kHeader << "\n";
  os << "model\t" << SanitizeField(trace.model_name()) << "\n";
  os << "config\t" << SanitizeField(trace.config()) << "\n";
  for (const GradientInfo& g : trace.gradients()) {
    os << "grad\t" << g.layer_id << "\t" << g.bytes << "\t" << g.bucket_id << "\n";
  }
  for (const TraceEvent& e : trace.events()) {
    WriteEvent(e, os);
  }
}

bool WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  WriteTrace(trace, out);
  return out.good();
}

std::optional<Trace> ReadTrace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return std::nullopt;
  }
  Trace trace;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> f = StrSplit(line, '\t');
    if (f[0] == "model" && f.size() == 2) {
      trace.set_model_name(f[1]);
    } else if (f[0] == "config" && f.size() == 2) {
      trace.set_config(f[1]);
    } else if (f[0] == "grad" && f.size() == 4) {
      try {
        GradientInfo g;
        g.layer_id = std::stoi(f[1]);
        g.bytes = std::stoll(f[2]);
        g.bucket_id = std::stoi(f[3]);
        if (g.bytes < 0) {
          return std::nullopt;  // negative gradient size is nonsensical
        }
        trace.AddGradientInfo(g);
      } catch (const std::exception&) {
        return std::nullopt;
      }
    } else if (f[0] == "ev") {
      std::optional<TraceEvent> e = ParseEvent(f);
      if (!e.has_value()) {
        return std::nullopt;
      }
      trace.Add(*std::move(e));
    } else {
      return std::nullopt;
    }
  }
  return trace;
}

std::optional<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return std::nullopt;
  }
  return ReadTrace(in);
}

}  // namespace daydream

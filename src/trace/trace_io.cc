#include "src/trace/trace_io.h"

#include <fstream>
#include <sstream>

#include "src/trace/import_chrome.h"
#include "src/trace/import_cupti.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

constexpr char kHeader[] = "daydream-trace v1";

// The format is line- and tab-delimited, so free-text fields (event names,
// model name, config) must not contain tabs, newlines, or carriage returns.
// Replace them with spaces on write to keep the round trip lossless enough
// that ReadTrace never rejects a file we produced.
std::string SanitizeField(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

// Names may contain spaces but not tabs/newlines; they go last on the line.
void WriteEvent(const TraceEvent& e, std::ostream& os) {
  os << "ev\t" << static_cast<int>(e.kind) << "\t" << static_cast<int>(e.api) << "\t"
     << static_cast<int>(e.memcpy_kind) << "\t" << static_cast<int>(e.comm_kind) << "\t"
     << e.start << "\t" << e.duration << "\t" << e.thread_id << "\t" << e.stream_id << "\t"
     << e.channel_id << "\t" << e.correlation_id << "\t" << e.layer_id << "\t"
     << static_cast<int>(e.phase) << "\t" << (e.marker_begin ? 1 : 0) << "\t" << e.bytes << "\t"
     << SanitizeField(e.name) << "\n";
}

// Range-checked enum decode: an out-of-range integer (corrupt or
// foreign-version file) must reject the record, not produce an enum value no
// switch in the pipeline handles. `last` is the enum's maximum enumerator.
template <typename E>
std::optional<E> ParseEnum(const std::string& field, E last) {
  const std::optional<int> value = ParseInt32(field);
  if (!value.has_value() || *value < 0 || *value > static_cast<int>(last)) {
    return std::nullopt;
  }
  return static_cast<E>(value.value());
}

std::optional<TraceEvent> ParseEvent(const std::vector<std::string>& f) {
  // "ev" + 15 fields.
  if (f.size() != 16) {
    return std::nullopt;
  }
  TraceEvent e;
  const auto kind = ParseEnum(f[1], EventKind::kCommunication);
  const auto api = ParseEnum(f[2], ApiKind::kOther);
  const auto memcpy_kind = ParseEnum(f[3], MemcpyKind::kDeviceToDevice);
  const auto comm_kind = ParseEnum(f[4], CommKind::kP2p);
  const auto phase = ParseEnum(f[12], Phase::kWeightUpdate);
  if (!kind || !api || !memcpy_kind || !comm_kind || !phase) {
    return std::nullopt;
  }
  e.kind = *kind;
  e.api = *api;
  e.memcpy_kind = *memcpy_kind;
  e.comm_kind = *comm_kind;
  e.phase = *phase;
  // Strict full-field numeric parsing (src/util/string_util.h): std::stoll
  // used to accept leading whitespace and trailing garbage, so "1abc"
  // misparsed as 1 instead of rejecting the record.
  const auto start = ParseInt64(f[5]);
  const auto duration = ParseInt64(f[6]);
  const auto thread_id = ParseInt32(f[7]);
  const auto stream_id = ParseInt32(f[8]);
  const auto channel_id = ParseInt32(f[9]);
  const auto correlation_id = ParseInt64(f[10]);
  const auto layer_id = ParseInt32(f[11]);
  const auto marker_begin = ParseInt32(f[13]);
  const auto bytes = ParseInt64(f[14]);
  if (!start || !duration || !thread_id || !stream_id || !channel_id || !correlation_id ||
      !layer_id || !marker_begin || !bytes) {
    return std::nullopt;
  }
  e.start = *start;
  e.duration = *duration;
  e.thread_id = *thread_id;
  e.stream_id = *stream_id;
  e.channel_id = *channel_id;
  e.correlation_id = *correlation_id;
  e.layer_id = *layer_id;
  e.marker_begin = *marker_begin != 0;
  e.bytes = *bytes;
  e.name = f[15];
  // Negative times or payload sizes violate simulator invariants (progress
  // and earliest-start bounds must be monotone): reject the record.
  if (e.start < 0 || e.duration < 0 || e.bytes < 0) {
    return std::nullopt;
  }
  // Location ids: -1 is the "unset" sentinel; anything below is corrupt, and
  // the lane the event's kind actually runs on must be set. Values like
  // stream_id=-500 would otherwise alias the Chrome-export row bands
  // (RowTid's 1000+/2000+ offsets) and break graph-builder lane assignment.
  if (e.thread_id < -1 || e.stream_id < -1 || e.channel_id < -1) {
    return std::nullopt;
  }
  if ((e.is_cpu() && e.thread_id < 0) || (e.is_gpu() && e.stream_id < 0) ||
      (e.is_comm() && e.channel_id < 0)) {
    return std::nullopt;
  }
  return e;
}

}  // namespace

void WriteTrace(const Trace& trace, std::ostream& os) {
  os << kHeader << "\n";
  os << "model\t" << SanitizeField(trace.model_name()) << "\n";
  os << "config\t" << SanitizeField(trace.config()) << "\n";
  for (const GradientInfo& g : trace.gradients()) {
    os << "grad\t" << g.layer_id << "\t" << g.bytes << "\t" << g.bucket_id << "\n";
  }
  for (const TraceEvent& e : trace.events()) {
    WriteEvent(e, os);
  }
}

bool WriteTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  WriteTrace(trace, out);
  return out.good();
}

std::optional<Trace> ReadTrace(std::istream& is) {
  std::string line;
  // Files that crossed a Windows toolchain arrive with CRLF line endings;
  // getline keeps the '\r', which used to fail the header compare and, when
  // only the body was CRLF, silently append '\r' to the last field (e.name).
  auto strip_cr = [](std::string* text) {
    if (!text->empty() && text->back() == '\r') {
      text->pop_back();
    }
  };
  if (!std::getline(is, line)) {
    return std::nullopt;
  }
  strip_cr(&line);
  if (line != kHeader) {
    return std::nullopt;
  }
  Trace trace;
  while (std::getline(is, line)) {
    strip_cr(&line);
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> f = StrSplit(line, '\t');
    if (f[0] == "model" && f.size() == 2) {
      trace.set_model_name(f[1]);
    } else if (f[0] == "config" && f.size() == 2) {
      trace.set_config(f[1]);
    } else if (f[0] == "grad" && f.size() == 4) {
      const auto layer_id = ParseInt32(f[1]);
      const auto bytes = ParseInt64(f[2]);
      const auto bucket_id = ParseInt32(f[3]);
      if (!layer_id || !bytes || !bucket_id || *bytes < 0) {
        return std::nullopt;  // malformed or negative gradient size
      }
      GradientInfo g;
      g.layer_id = *layer_id;
      g.bytes = *bytes;
      g.bucket_id = *bucket_id;
      trace.AddGradientInfo(g);
    } else if (f[0] == "ev") {
      std::optional<TraceEvent> e = ParseEvent(f);
      if (!e.has_value()) {
        return std::nullopt;
      }
      trace.Add(*std::move(e));
    } else {
      return std::nullopt;
    }
  }
  return trace;
}

std::optional<Trace> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return std::nullopt;
  }
  return ReadTrace(in);
}

std::optional<TraceFormat> ParseTraceFormat(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "ddtrace") {
    return TraceFormat::kDdtrace;
  }
  if (lower == "cupti") {
    return TraceFormat::kCupti;
  }
  if (lower == "chrome") {
    return TraceFormat::kChrome;
  }
  return std::nullopt;
}

const char* ToString(TraceFormat format) {
  switch (format) {
    case TraceFormat::kDdtrace:
      return "ddtrace";
    case TraceFormat::kCupti:
      return "cupti";
    case TraceFormat::kChrome:
      return "chrome";
  }
  return "?";
}

std::optional<Trace> ReadTraceFileAs(const std::string& path, TraceFormat format,
                                     std::string* error) {
  switch (format) {
    case TraceFormat::kDdtrace: {
      std::optional<Trace> trace = ReadTraceFile(path);
      if (!trace.has_value() && error != nullptr) {
        *error = "cannot parse " + path + " as a daydream trace";
      }
      return trace;
    }
    case TraceFormat::kCupti:
      return ImportCuptiTraceFile(path, error);
    case TraceFormat::kChrome:
      return ImportChromeTraceFile(path, error);
  }
  if (error != nullptr) {
    *error = "unknown trace format";
  }
  return std::nullopt;
}

}  // namespace daydream

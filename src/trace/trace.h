// Trace container: the full profiling output of one training iteration.
//
// Besides the raw event stream, a Trace carries the side-channel data the paper
// obtains by instrumenting the framework (Section 4.1 / Phase 1): gradient
// tensor sizes per layer and the layer->bucket grouping PyTorch uses for NCCL
// allReduce calls. Daydream's graph builder consumes exactly this object.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "src/trace/trace_event.h"
#include "src/util/time_units.h"

namespace daydream {

// CPU-side [begin, end] window of one layer phase, reconstructed from layer
// markers. Used by the synchronization-free task-to-layer mapping (§4.3).
struct LayerSpan {
  int layer_id = -1;
  std::string layer_name;
  Phase phase = Phase::kUnknown;
  int thread_id = -1;
  TimeNs begin = 0;
  TimeNs end = 0;
};

// Instrumented gradient metadata for one layer (collected in a single-worker
// profile, used to build the distributed dependency graph).
struct GradientInfo {
  int layer_id = -1;
  int64_t bytes = 0;      // size of this layer's weight gradients
  int bucket_id = -1;     // PyTorch DDP gradient bucket this layer maps to
};

// Result of Trace::Validate(). ok() iff no violations were recorded.
struct TraceValidation {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

class Trace {
 public:
  Trace() = default;

  // Metadata.
  void set_model_name(std::string name) { model_name_ = std::move(name); }
  const std::string& model_name() const { return model_name_; }
  void set_config(std::string config) { config_ = std::move(config); }
  const std::string& config() const { return config_; }

  // Event stream.
  void Add(TraceEvent event) { events_.push_back(std::move(event)); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent>& mutable_events() { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Sorts events by (start, kind) — executors may emit out of order.
  void SortByStart();

  // Instrumentation side channel.
  void AddGradientInfo(GradientInfo info) { gradients_.push_back(info); }
  const std::vector<GradientInfo>& gradients() const { return gradients_; }

  // Whole-trace time bounds.
  TimeNs begin_time() const;
  TimeNs end_time() const;
  TimeNs makespan() const { return end_time() - begin_time(); }

  // Views (computed on demand; event order follows the stored order).
  std::vector<const TraceEvent*> CpuEvents(int thread_id) const;
  std::vector<const TraceEvent*> GpuEvents(int stream_id) const;
  std::vector<int> CpuThreadIds() const;
  std::vector<int> GpuStreamIds() const;
  std::vector<int> CommChannelIds() const;
  int CountKind(EventKind kind) const;

  // Reconstructs per-layer CPU windows from the kLayerMarker events. Markers
  // must nest properly per (layer, phase); violations are a validation error.
  std::vector<LayerSpan> ExtractLayerSpans() const;

  // Structural validation:
  //  - events in the same CPU thread do not overlap in time,
  //  - events in the same GPU stream do not overlap in time,
  //  - correlation ids pair exactly one launch API with one GPU task,
  //  - every GPU task has a launching API that *precedes* it,
  //  - layer markers pair begin/end correctly,
  //  - durations are non-negative.
  TraceValidation Validate() const;

 private:
  std::string model_name_;
  std::string config_;
  std::vector<TraceEvent> events_;
  std::vector<GradientInfo> gradients_;
};

}  // namespace daydream

#endif  // SRC_TRACE_TRACE_H_

// Chrome trace-event JSON importer.
//
// Round-trips the output of WriteChromeTrace (src/trace/chrome_trace.h) back
// into an equivalent Trace: a timeline exported for chrome://tracing /
// Perfetto is a first-class ingestion format, not a dead end. The file is an
// array of event objects; this importer drives the streaming tokenizer from
// src/util/json_stream.h, so a multi-gigabyte timeline is parsed with bounded
// memory — peak state is one event's fields plus the output Trace.
//
// Accepted rows (anything else is a line-item error, never a crash):
//   - "ph":"M" metadata: "thread_name" rows are ignored (rows are derived
//     from events on export); "daydream_trace" carries model/config;
//     "daydream_gradient" carries one GradientInfo per row. Unknown metadata
//     names are skipped for compatibility with real Chrome dumps.
//   - "ph":"X" complete events: `cat` names the EventKind, `tid` encodes the
//     lane (CPU thread < 1000, GPU stream 1000+, comm channel 2000+ — the
//     RowTid bands), `ts`/`dur` are decimal microseconds decoded exactly to
//     ns, and `args` carries layer/phase/corr/bytes plus the api/copy/comm/
//     stream attributes the exporter emits for losslessness.
//   - "ph":"i" instants: layer markers named "<layer>/<phase>/<begin|end>",
//     with the layer id in args.
//
// Timestamps decode via ParseDecimalUsToNs (integer arithmetic, exact past
// 2^53 ns); ids and sizes must be pure integers. Malformed input — negative
// lane ids, garbage numbers, truncated arrays, absurd nesting — rejects the
// import with an offset-tagged error.
#ifndef SRC_TRACE_IMPORT_CHROME_H_
#define SRC_TRACE_IMPORT_CHROME_H_

#include <cstdint>
#include <istream>
#include <optional>
#include <string>

#include "src/trace/trace.h"

namespace daydream {

struct ChromeImportStats {
  uint64_t events = 0;         // TraceEvents produced (X rows + markers)
  uint64_t gradients = 0;      // daydream_gradient metadata rows
  uint64_t skipped_rows = 0;   // metadata rows ignored (thread_name, foreign)
};

// Returns nullopt with *error naming the byte offset and cause on failure.
std::optional<Trace> ImportChromeTrace(std::istream& in, std::string* error = nullptr,
                                       ChromeImportStats* stats = nullptr);
std::optional<Trace> ImportChromeTraceFile(const std::string& path, std::string* error = nullptr,
                                           ChromeImportStats* stats = nullptr);

}  // namespace daydream

#endif  // SRC_TRACE_IMPORT_CHROME_H_

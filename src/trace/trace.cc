#include "src/trace/trace.h"

#include <algorithm>
#include <limits>
#include <set>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

std::string TraceValidation::Summary() const {
  if (ok()) {
    return "trace valid";
  }
  std::string out = StrFormat("%zu violations:", violations.size());
  const size_t show = std::min<size_t>(violations.size(), 10);
  for (size_t i = 0; i < show; ++i) {
    out += "\n  " + violations[i];
  }
  if (violations.size() > show) {
    out += StrFormat("\n  ... and %zu more", violations.size() - show);
  }
  return out;
}

void Trace::SortByStart() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.start < b.start; });
}

TimeNs Trace::begin_time() const {
  TimeNs t = std::numeric_limits<TimeNs>::max();
  for (const TraceEvent& e : events_) {
    t = std::min(t, e.start);
  }
  return events_.empty() ? 0 : t;
}

TimeNs Trace::end_time() const {
  TimeNs t = std::numeric_limits<TimeNs>::min();
  for (const TraceEvent& e : events_) {
    t = std::max(t, e.end());
  }
  return events_.empty() ? 0 : t;
}

std::vector<const TraceEvent*> Trace::CpuEvents(int thread_id) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& e : events_) {
    if (e.is_cpu() && e.thread_id == thread_id) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<const TraceEvent*> Trace::GpuEvents(int stream_id) const {
  std::vector<const TraceEvent*> out;
  for (const TraceEvent& e : events_) {
    if (e.is_gpu() && e.stream_id == stream_id) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<int> Trace::CpuThreadIds() const {
  std::set<int> ids;
  for (const TraceEvent& e : events_) {
    if (e.is_cpu()) {
      ids.insert(e.thread_id);
    }
  }
  return {ids.begin(), ids.end()};
}

std::vector<int> Trace::GpuStreamIds() const {
  std::set<int> ids;
  for (const TraceEvent& e : events_) {
    if (e.is_gpu()) {
      ids.insert(e.stream_id);
    }
  }
  return {ids.begin(), ids.end()};
}

std::vector<int> Trace::CommChannelIds() const {
  std::set<int> ids;
  for (const TraceEvent& e : events_) {
    if (e.is_comm()) {
      ids.insert(e.channel_id);
    }
  }
  return {ids.begin(), ids.end()};
}

int Trace::CountKind(EventKind kind) const {
  int n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) {
      ++n;
    }
  }
  return n;
}

std::vector<LayerSpan> Trace::ExtractLayerSpans() const {
  // Key: (layer_id, phase). Markers for the same key must alternate begin/end.
  std::map<std::pair<int, int>, TraceEvent> open;
  std::vector<LayerSpan> spans;
  for (const TraceEvent& e : events_) {
    if (e.kind != EventKind::kLayerMarker) {
      continue;
    }
    const auto key = std::make_pair(e.layer_id, static_cast<int>(e.phase));
    if (e.marker_begin) {
      open[key] = e;
    } else {
      auto it = open.find(key);
      if (it == open.end()) {
        continue;  // Validate() reports this; keep extraction best-effort.
      }
      LayerSpan span;
      span.layer_id = e.layer_id;
      span.layer_name = it->second.name;
      span.phase = e.phase;
      span.thread_id = e.thread_id;
      span.begin = it->second.start;
      span.end = e.start;
      spans.push_back(span);
      open.erase(it);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const LayerSpan& a, const LayerSpan& b) { return a.begin < b.begin; });
  return spans;
}

namespace {

// Checks that the events (already filtered to one execution lane) do not overlap.
void CheckNoOverlap(const std::vector<const TraceEvent*>& lane, const char* lane_kind, int lane_id,
                    std::vector<std::string>* violations) {
  std::vector<const TraceEvent*> sorted = lane;
  std::sort(sorted.begin(), sorted.end(),
            [](const TraceEvent* a, const TraceEvent* b) { return a->start < b->start; });
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i]->start < sorted[i - 1]->end()) {
      violations->push_back(StrFormat(
          "%s %d: overlap between '%s' [%.3f,%.3f)us and '%s' [%.3f,%.3f)us", lane_kind, lane_id,
          sorted[i - 1]->name.c_str(), ToUs(sorted[i - 1]->start), ToUs(sorted[i - 1]->end()),
          sorted[i]->name.c_str(), ToUs(sorted[i]->start), ToUs(sorted[i]->end())));
    }
  }
}

}  // namespace

TraceValidation Trace::Validate() const {
  TraceValidation result;
  auto* v = &result.violations;

  for (const TraceEvent& e : events_) {
    if (e.duration < 0) {
      v->push_back(StrFormat("negative duration: %s", e.DebugString().c_str()));
    }
    if (e.is_cpu() && e.thread_id < 0) {
      v->push_back(StrFormat("cpu event without thread id: %s", e.DebugString().c_str()));
    }
    if (e.is_gpu() && e.stream_id < 0) {
      v->push_back(StrFormat("gpu event without stream id: %s", e.DebugString().c_str()));
    }
  }

  // Lane exclusivity. Layer markers are instantaneous instrumentation stamps,
  // not scheduled tasks, so they are excluded from the overlap check.
  for (int tid : CpuThreadIds()) {
    std::vector<const TraceEvent*> lane;
    for (const TraceEvent* e : CpuEvents(tid)) {
      if (e->kind != EventKind::kLayerMarker) {
        lane.push_back(e);
      }
    }
    CheckNoOverlap(lane, "cpu thread", tid, v);
  }
  for (int sid : GpuStreamIds()) {
    CheckNoOverlap(GpuEvents(sid), "gpu stream", sid, v);
  }

  // Correlation consistency: one launching API <-> one GPU task per id; the API
  // must start before its GPU task starts (kernels launch asynchronously).
  std::map<int64_t, const TraceEvent*> launches;
  std::map<int64_t, const TraceEvent*> gpu_tasks;
  for (const TraceEvent& e : events_) {
    if (e.correlation_id == 0) {
      continue;
    }
    if (e.kind == EventKind::kRuntimeApi &&
        (e.api == ApiKind::kLaunchKernel || e.api == ApiKind::kMemcpyAsync ||
         e.api == ApiKind::kMemcpySync)) {
      if (!launches.emplace(e.correlation_id, &e).second) {
        v->push_back(StrFormat("duplicate launch correlation id %lld",
                               static_cast<long long>(e.correlation_id)));
      }
    } else if (e.is_gpu()) {
      if (!gpu_tasks.emplace(e.correlation_id, &e).second) {
        v->push_back(StrFormat("duplicate gpu correlation id %lld",
                               static_cast<long long>(e.correlation_id)));
      }
    }
  }
  for (const auto& [corr, gpu] : gpu_tasks) {
    auto it = launches.find(corr);
    if (it == launches.end()) {
      v->push_back(StrFormat("gpu task '%s' (corr %lld) has no launching API",
                             gpu->name.c_str(), static_cast<long long>(corr)));
      continue;
    }
    if (it->second->start > gpu->start) {
      v->push_back(StrFormat("gpu task '%s' starts before its launch API (corr %lld)",
                             gpu->name.c_str(), static_cast<long long>(corr)));
    }
  }

  // Layer markers must pair begin/end per (layer, phase).
  std::map<std::pair<int, int>, int> marker_depth;
  for (const TraceEvent& e : events_) {
    if (e.kind != EventKind::kLayerMarker) {
      continue;
    }
    const auto key = std::make_pair(e.layer_id, static_cast<int>(e.phase));
    marker_depth[key] += e.marker_begin ? 1 : -1;
    if (marker_depth[key] < 0) {
      v->push_back(StrFormat("layer %d %s: end marker without begin", e.layer_id,
                             ToString(e.phase)));
      marker_depth[key] = 0;
    }
  }
  for (const auto& [key, depth] : marker_depth) {
    if (depth != 0) {
      v->push_back(
          StrFormat("layer %d phase %d: %d unmatched begin markers", key.first, key.second, depth));
    }
  }

  return result;
}

}  // namespace daydream

// CUPTI-style trace events.
//
// The runtime executor (src/runtime) emits these; Daydream (src/core) consumes
// them. The schema mirrors what the paper extracts from CUPTI plus the light
// framework instrumentation it adds:
//   - CPU-side CUDA runtime API calls (cudaLaunchKernel, cudaMemcpyAsync, ...)
//     with thread id and a correlation id,
//   - GPU kernels and memory copies with stream id and the matching correlation id,
//   - per-layer begin/end markers (framework instrumentation, Section 4.3),
//   - data-loading tasks, and
//   - communication primitives (allReduce / push / pull) for distributed runs.
#ifndef SRC_TRACE_TRACE_EVENT_H_
#define SRC_TRACE_TRACE_EVENT_H_

#include <cstdint>
#include <string>

#include "src/util/time_units.h"

namespace daydream {

enum class EventKind {
  kRuntimeApi,     // CPU-side CUDA API call.
  kKernel,         // GPU kernel execution.
  kMemcpy,         // GPU memory copy (occupies a stream like a kernel; §4.2.1).
  kLayerMarker,    // Framework instrumentation: begin/end of a layer phase on CPU.
  kDataLoad,       // Mini-batch load from disk to host memory (CPU-side task).
  kCommunication,  // Network primitive execution (distributed traces only).
};

enum class ApiKind {
  kNone,               // Not a runtime API event.
  kLaunchKernel,       // cudaLaunchKernel
  kMemcpyAsync,        // cudaMemcpyAsync
  kMemcpySync,         // cudaMemcpy (synchronous)
  kDeviceSynchronize,  // cudaDeviceSynchronize
  kStreamSynchronize,  // cudaStreamSynchronize
  kEventRecord,        // cudaEventRecord
  kMalloc,             // cudaMalloc
  kFree,               // cudaFree
  kOther,              // other CUDA-visible CPU work
};

enum class MemcpyKind {
  kNone,
  kHostToDevice,
  kDeviceToHost,
  kDeviceToDevice,
};

enum class CommKind {
  kNone,
  kAllReduce,
  kReduceScatter,
  kAllGather,
  kPush,  // parameter-server push (worker -> server)
  kPull,  // parameter-server pull (server -> worker)
  kP2p,   // point-to-point transfer (pipeline-parallel activation/gradient)
};

// Which phase of the training iteration a layer marker / task belongs to.
enum class Phase {
  kUnknown,
  kDataLoad,
  kForward,
  kBackward,
  kWeightUpdate,
};

const char* ToString(EventKind kind);
const char* ToString(ApiKind kind);
const char* ToString(MemcpyKind kind);
const char* ToString(CommKind kind);
const char* ToString(Phase phase);

// One trace record. Which fields are meaningful depends on `kind`; unused
// fields keep their defaults. Sizes are bytes; times are TimeNs.
struct TraceEvent {
  EventKind kind = EventKind::kRuntimeApi;
  ApiKind api = ApiKind::kNone;
  MemcpyKind memcpy_kind = MemcpyKind::kNone;
  CommKind comm_kind = CommKind::kNone;

  std::string name;
  TimeNs start = 0;
  TimeNs duration = 0;

  // Execution location. CPU events carry thread_id; GPU events carry stream_id;
  // communication events carry channel_id. Exactly one is >= 0.
  int thread_id = -1;
  int stream_id = -1;
  int channel_id = -1;

  // Links a kLaunchKernel / kMemcpyAsync API call to the GPU task it triggers.
  // CUPTI provides the same mechanism ("correlation ID", §4.2.2). 0 = none.
  int64_t correlation_id = 0;

  // Layer markers: which layer/phase, and whether this is the begin or end stamp.
  int layer_id = -1;
  Phase phase = Phase::kUnknown;
  bool marker_begin = false;

  // Payload size for memcpys and communication primitives.
  int64_t bytes = 0;

  TimeNs end() const { return start + duration; }

  bool is_cpu() const {
    return kind == EventKind::kRuntimeApi || kind == EventKind::kLayerMarker ||
           kind == EventKind::kDataLoad;
  }
  bool is_gpu() const { return kind == EventKind::kKernel || kind == EventKind::kMemcpy; }
  bool is_comm() const { return kind == EventKind::kCommunication; }

  std::string DebugString() const;
};

}  // namespace daydream

#endif  // SRC_TRACE_TRACE_EVENT_H_

#include "src/trace/chrome_trace.h"

#include <fstream>

#include "src/util/string_util.h"

namespace daydream {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Chrome timestamps are decimal microseconds. Formatting through double
// (%.3f on ToUs) rounds the last nanosecond once |ns| passes 2^53 — real
// CUPTI epoch timestamps live out there — so format straight from the
// integer instead; ImportChromeTrace decodes with the same integer math.
std::string FormatUs(TimeNs ns) {
  // Negate via unsigned so INT64_MIN doesn't overflow.
  const unsigned long long magnitude =
      ns < 0 ? 0ULL - static_cast<unsigned long long>(ns) : static_cast<unsigned long long>(ns);
  return StrFormat("%s%llu.%03llu", ns < 0 ? "-" : "", magnitude / 1000, magnitude % 1000);
}

// Stable row ids: CPU threads first, then GPU streams, then comm channels.
int RowTid(const TraceEvent& e) {
  if (e.is_cpu()) {
    return e.thread_id;
  }
  if (e.is_gpu()) {
    return 1000 + e.stream_id;
  }
  return 2000 + e.channel_id;
}

}  // namespace

void WriteChromeTrace(const Trace& trace, std::ostream& os) {
  os << "[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << line;
  };

  // Daydream side-channel metadata: model/config and the gradient table ride
  // along as "M" rows so ImportChromeTrace can reconstruct the full Trace,
  // not just the timeline. Viewers ignore metadata they don't know.
  emit(StrFormat(R"({"name":"daydream_trace","ph":"M","pid":1,"args":{"model":"%s","config":"%s"}})",
                 JsonEscape(trace.model_name()).c_str(), JsonEscape(trace.config()).c_str()));
  for (const GradientInfo& g : trace.gradients()) {
    emit(StrFormat(R"({"name":"daydream_gradient","ph":"M","pid":1,)"
                   R"("args":{"layer":%d,"bytes":%lld,"bucket":%d}})",
                   g.layer_id, static_cast<long long>(g.bytes), g.bucket_id));
  }

  // Row name metadata.
  for (int tid : trace.CpuThreadIds()) {
    emit(StrFormat(R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                   R"("args":{"name":"CPU thread %d"}})",
                   tid, tid));
  }
  for (int sid : trace.GpuStreamIds()) {
    emit(StrFormat(R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                   R"("args":{"name":"GPU stream %d"}})",
                   1000 + sid, sid));
  }
  for (int cid : trace.CommChannelIds()) {
    emit(StrFormat(R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                   R"("args":{"name":"comm channel %d"}})",
                   2000 + cid, cid));
  }

  for (const TraceEvent& e : trace.events()) {
    if (e.kind == EventKind::kLayerMarker) {
      // Markers become instantaneous events; the layer id rides in args.
      emit(StrFormat(
          R"({"name":"%s/%s/%s","ph":"i","pid":1,"tid":%d,"ts":%s,"s":"t","args":{"layer":%d}})",
          JsonEscape(e.name).c_str(), ToString(e.phase), e.marker_begin ? "begin" : "end",
          RowTid(e), FormatUs(e.start).c_str(), e.layer_id));
      continue;
    }
    std::string args =
        StrFormat(R"("layer":%d,"phase":"%s","corr":%lld,"bytes":%lld)", e.layer_id,
                  ToString(e.phase), static_cast<long long>(e.correlation_id),
                  static_cast<long long>(e.bytes));
    // Kind-specific attributes the tid/cat pair cannot carry, so the importer
    // can rebuild the event exactly.
    if (e.kind == EventKind::kRuntimeApi && e.api != ApiKind::kNone) {
      args += StrFormat(R"(,"api":"%s")", ToString(e.api));
    }
    if (e.kind == EventKind::kMemcpy && e.memcpy_kind != MemcpyKind::kNone) {
      args += StrFormat(R"(,"copy":"%s")", ToString(e.memcpy_kind));
    }
    if (e.kind == EventKind::kCommunication && e.comm_kind != CommKind::kNone) {
      args += StrFormat(R"(,"comm":"%s")", ToString(e.comm_kind));
    }
    if (e.is_cpu() && e.stream_id >= 0) {
      args += StrFormat(R"(,"stream":%d)", e.stream_id);  // sync-call target stream
    }
    emit(StrFormat(R"({"name":"%s","cat":"%s","ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,)"
                   R"("args":{%s}})",
                   JsonEscape(e.name).c_str(), ToString(e.kind), RowTid(e),
                   FormatUs(e.start).c_str(), FormatUs(e.duration).c_str(), args.c_str()));
  }
  os << "\n]\n";
}

bool WriteChromeTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  WriteChromeTrace(trace, out);
  return out.good();
}

}  // namespace daydream

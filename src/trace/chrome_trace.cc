#include "src/trace/chrome_trace.h"

#include <fstream>

#include "src/util/string_util.h"

namespace daydream {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Stable row ids: CPU threads first, then GPU streams, then comm channels.
int RowTid(const TraceEvent& e) {
  if (e.is_cpu()) {
    return e.thread_id;
  }
  if (e.is_gpu()) {
    return 1000 + e.stream_id;
  }
  return 2000 + e.channel_id;
}

}  // namespace

void WriteChromeTrace(const Trace& trace, std::ostream& os) {
  os << "[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << line;
  };

  // Row name metadata.
  for (int tid : trace.CpuThreadIds()) {
    emit(StrFormat(R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                   R"("args":{"name":"CPU thread %d"}})",
                   tid, tid));
  }
  for (int sid : trace.GpuStreamIds()) {
    emit(StrFormat(R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                   R"("args":{"name":"GPU stream %d"}})",
                   1000 + sid, sid));
  }
  for (int cid : trace.CommChannelIds()) {
    emit(StrFormat(R"({"name":"thread_name","ph":"M","pid":1,"tid":%d,)"
                   R"("args":{"name":"comm channel %d"}})",
                   2000 + cid, cid));
  }

  for (const TraceEvent& e : trace.events()) {
    if (e.kind == EventKind::kLayerMarker) {
      // Markers become instantaneous events.
      emit(StrFormat(R"({"name":"%s/%s/%s","ph":"i","pid":1,"tid":%d,"ts":%.3f,"s":"t"})",
                     JsonEscape(e.name).c_str(), ToString(e.phase),
                     e.marker_begin ? "begin" : "end", RowTid(e), ToUs(e.start)));
      continue;
    }
    emit(StrFormat(
        R"({"name":"%s","cat":"%s","ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,)"
        R"("args":{"layer":%d,"phase":"%s","corr":%lld,"bytes":%lld}})",
        JsonEscape(e.name).c_str(), ToString(e.kind), RowTid(e), ToUs(e.start), ToUs(e.duration),
        e.layer_id, ToString(e.phase), static_cast<long long>(e.correlation_id),
        static_cast<long long>(e.bytes)));
  }
  os << "\n]\n";
}

bool WriteChromeTraceFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  WriteChromeTrace(trace, out);
  return out.good();
}

}  // namespace daydream

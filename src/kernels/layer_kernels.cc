#include "src/kernels/layer_kernels.h"

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

constexpr int64_t kFp32 = 4;

KernelSpec Make(std::string name, KernelClass cls, int64_t flops, int64_t bytes, int layer_id,
                Phase phase) {
  KernelSpec k;
  k.name = std::move(name);
  k.cls = cls;
  k.flops = flops;
  k.bytes = bytes;
  k.layer_id = layer_id;
  k.phase = phase;
  return k;
}

void ExpandConv(const Layer& l, LayerKernelSet* out) {
  // 3x3 convolutions typically pick Winograd; others implicit GEMM.
  const bool small_filter = l.fwd_flops > 0 && l.param_tensor_elems[0] % 9 == 0;
  const char* algo = small_filter ? "scudnn_winograd_128x128" : "scudnn_128x64_implicit_gemm";
  out->forward.push_back(Make(StrFormat("%s_fprop", algo), KernelClass::kConv, l.fwd_flops,
                              l.fwd_bytes, l.id, Phase::kForward));
  const bool has_bias = l.param_tensor_elems.size() > 1;
  if (has_bias) {
    out->forward.push_back(Make("elementwise_kernel_bias_add", KernelClass::kElementwise,
                                l.output_elems, 2 * l.output_elems * kFp32, l.id,
                                Phase::kForward));
  }
  out->backward.push_back(Make(StrFormat("%s_dgrad", algo), KernelClass::kConv, l.fwd_flops,
                               l.fwd_bytes, l.id, Phase::kBackward));
  out->backward.push_back(Make(StrFormat("%s_wgrad", algo), KernelClass::kConv, l.fwd_flops,
                               l.fwd_bytes, l.id, Phase::kBackward));
  if (has_bias) {
    out->backward.push_back(Make("reduce_kernel_bias_grad", KernelClass::kReduction,
                                 l.output_elems, l.output_elems * kFp32, l.id, Phase::kBackward));
  }
}

void ExpandBatchNorm(const Layer& l, LayerKernelSet* out) {
  const int64_t e = l.output_elems;
  out->forward.push_back(Make("batch_norm_collect_statistics_kernel", KernelClass::kBatchNorm,
                              4 * e, e * kFp32, l.id, Phase::kForward));
  out->forward.push_back(Make("batch_norm_transform_input_kernel", KernelClass::kBatchNorm, 4 * e,
                              2 * e * kFp32, l.id, Phase::kForward));
  out->backward.push_back(Make("batch_norm_backward_reduce_kernel", KernelClass::kBatchNorm,
                               4 * e, 2 * e * kFp32, l.id, Phase::kBackward));
  out->backward.push_back(Make("batch_norm_backward_elemt_kernel", KernelClass::kBatchNorm, 4 * e,
                               2 * e * kFp32, l.id, Phase::kBackward));
}

void ExpandElementwise(const Layer& l, const char* op, int64_t fwd_flops_per_elem,
                       LayerKernelSet* out) {
  const int64_t e = l.output_elems;
  out->forward.push_back(Make(StrFormat("elementwise_kernel_%s_fwd", op),
                              KernelClass::kElementwise, fwd_flops_per_elem * e, 2 * e * kFp32,
                              l.id, Phase::kForward));
  out->backward.push_back(Make(StrFormat("elementwise_kernel_%s_bwd", op),
                               KernelClass::kElementwise, fwd_flops_per_elem * e, 3 * e * kFp32,
                               l.id, Phase::kBackward));
}

void ExpandPool(const Layer& l, LayerKernelSet* out) {
  out->forward.push_back(Make("pooling_fwd_4d_kernel", KernelClass::kPooling, l.fwd_flops,
                              l.fwd_bytes, l.id, Phase::kForward));
  out->backward.push_back(Make("pooling_bwd_4d_kernel", KernelClass::kPooling, l.fwd_flops,
                               2 * l.fwd_bytes, l.id, Phase::kBackward));
}

void ExpandLinear(const Layer& l, LayerKernelSet* out) {
  const int64_t m = l.batch;        // rows
  const int64_t k = l.aux_in;
  const int64_t n = l.aux_out;
  const int64_t gemm_flops = 2 * m * k * n;
  const int64_t gemm_bytes = (m * k + k * n + m * n) * kFp32;
  out->forward.push_back(Make("volta_sgemm_128x64_nn", KernelClass::kGemm, gemm_flops, gemm_bytes,
                              l.id, Phase::kForward));
  const bool has_bias = l.param_tensor_elems.size() > 1;
  if (has_bias) {
    out->forward.push_back(Make("elementwise_kernel_bias_add", KernelClass::kElementwise, m * n,
                                2 * m * n * kFp32, l.id, Phase::kForward));
  }
  out->backward.push_back(Make("volta_sgemm_128x64_nt", KernelClass::kGemm, gemm_flops,
                               gemm_bytes, l.id, Phase::kBackward));
  out->backward.push_back(Make("volta_sgemm_128x64_tn", KernelClass::kGemm, gemm_flops,
                               gemm_bytes, l.id, Phase::kBackward));
  if (has_bias) {
    out->backward.push_back(Make("reduce_kernel_bias_grad", KernelClass::kReduction, m * n,
                                 m * n * kFp32, l.id, Phase::kBackward));
  }
}

void ExpandEmbedding(const Layer& l, LayerKernelSet* out) {
  out->forward.push_back(Make("indexSelectLargeIndex", KernelClass::kEmbedding, 0,
                              2 * l.output_elems * kFp32, l.id, Phase::kForward));
  out->backward.push_back(Make("embedding_dense_backward_kernel", KernelClass::kEmbedding, 0,
                               3 * l.output_elems * kFp32, l.id, Phase::kBackward));
}

void ExpandLstm(const Layer& l, LayerKernelSet* out) {
  const int64_t b = l.batch;
  const int64_t s = l.seq_len;
  const int64_t in = l.aux_in;
  const int64_t h = l.aux_out;
  const int dirs = l.bidirectional ? 2 : 1;

  const int64_t ih_flops = 2 * b * s * 4 * h * in;
  const int64_t ih_bytes = (b * s * in + 4 * h * in + b * s * 4 * h) * kFp32;
  const int64_t hh_flops = 2 * b * 4 * h * h;
  const int64_t hh_bytes = (b * h + 4 * h * h + b * 4 * h) * kFp32;
  const int64_t cell_elems = b * h;

  for (int d = 0; d < dirs; ++d) {
    // Input projection for the whole sequence in one gemm (cuDNN-style).
    out->forward.push_back(Make("volta_sgemm_128x64_nn_lstm_ih", KernelClass::kGemm, ih_flops,
                                ih_bytes, l.id, Phase::kForward));
    for (int64_t t = 0; t < s; ++t) {
      out->forward.push_back(Make("volta_sgemm_128x64_nn_lstm_hh", KernelClass::kGemm, hh_flops,
                                  hh_bytes, l.id, Phase::kForward));
      out->forward.push_back(Make("elementwise_kernel_lstm_cell_fwd", KernelClass::kElementwise,
                                  10 * cell_elems, 10 * cell_elems * kFp32, l.id,
                                  Phase::kForward));
    }
    for (int64_t t = 0; t < s; ++t) {
      out->backward.push_back(Make("elementwise_kernel_lstm_cell_bwd", KernelClass::kElementwise,
                                   12 * cell_elems, 12 * cell_elems * kFp32, l.id,
                                   Phase::kBackward));
      out->backward.push_back(Make("volta_sgemm_128x64_nt_lstm_hh", KernelClass::kGemm, hh_flops,
                                   hh_bytes, l.id, Phase::kBackward));
    }
    out->backward.push_back(Make("volta_sgemm_128x64_nt_lstm_ih", KernelClass::kGemm, ih_flops,
                                 ih_bytes, l.id, Phase::kBackward));
    out->backward.push_back(Make("volta_sgemm_128x64_tn_lstm_wgrad_ih", KernelClass::kGemm,
                                 ih_flops, ih_bytes, l.id, Phase::kBackward));
    out->backward.push_back(Make("volta_sgemm_128x64_tn_lstm_wgrad_hh", KernelClass::kGemm,
                                 hh_flops * s, hh_bytes, l.id, Phase::kBackward));
  }
}

void ExpandAttention(const Layer& l, LayerKernelSet* out) {
  const int64_t b = l.batch;
  const int64_t a = l.heads;
  const int64_t s = l.seq_len;
  const int64_t d = l.aux_out;
  const int64_t gemm_flops = 2 * b * a * s * s * d;
  const int64_t gemm_bytes = (2 * b * a * s * d + b * a * s * s) * kFp32;
  const int64_t score_elems = b * a * s * s;
  const int64_t ctx_elems = b * a * s * d;

  // Framework glue around the batched gemms: head split/merge permutes,
  // score scaling, attention-mask add, contiguous copies. Individually tiny,
  // but there are many of them per block — a large share of the CPU launch
  // overhead in transformer training scripts.
  auto glue = [&](const char* op, Phase phase) {
    return Make(StrFormat("elementwise_kernel_%s", op), KernelClass::kElementwise, ctx_elems,
                2 * ctx_elems * kFp32, l.id, phase);
  };

  for (const char* op : {"permute_q", "permute_k", "permute_v"}) {
    out->forward.push_back(glue(op, Phase::kForward));
  }
  out->forward.push_back(Make("volta_sgemm_128x64_nt_batched", KernelClass::kGemm, gemm_flops,
                              gemm_bytes, l.id, Phase::kForward));
  out->forward.push_back(glue("scores_scale", Phase::kForward));
  out->forward.push_back(glue("attention_mask_add", Phase::kForward));
  out->forward.push_back(Make("softmax_warp_fwd", KernelClass::kSoftmax, 5 * score_elems,
                              2 * score_elems * kFp32, l.id, Phase::kForward));
  out->forward.push_back(glue("attention_dropout", Phase::kForward));
  out->forward.push_back(Make("volta_sgemm_128x64_nn_batched", KernelClass::kGemm, gemm_flops,
                              gemm_bytes, l.id, Phase::kForward));
  out->forward.push_back(glue("permute_context", Phase::kForward));
  out->forward.push_back(glue("contiguous_context", Phase::kForward));

  out->backward.push_back(glue("contiguous_context_bwd", Phase::kBackward));
  out->backward.push_back(glue("permute_context_bwd", Phase::kBackward));
  out->backward.push_back(Make("volta_sgemm_128x64_nt_batched", KernelClass::kGemm, gemm_flops,
                               gemm_bytes, l.id, Phase::kBackward));
  out->backward.push_back(Make("volta_sgemm_128x64_tn_batched", KernelClass::kGemm, gemm_flops,
                               gemm_bytes, l.id, Phase::kBackward));
  out->backward.push_back(glue("attention_dropout_bwd", Phase::kBackward));
  out->backward.push_back(Make("softmax_warp_bwd", KernelClass::kSoftmax, 5 * score_elems,
                               3 * score_elems * kFp32, l.id, Phase::kBackward));
  out->backward.push_back(glue("attention_mask_add_bwd", Phase::kBackward));
  out->backward.push_back(glue("scores_scale_bwd", Phase::kBackward));
  out->backward.push_back(Make("volta_sgemm_128x64_nt_batched", KernelClass::kGemm, gemm_flops,
                               gemm_bytes, l.id, Phase::kBackward));
  out->backward.push_back(Make("volta_sgemm_128x64_tn_batched", KernelClass::kGemm, gemm_flops,
                               gemm_bytes, l.id, Phase::kBackward));
  for (const char* op : {"permute_q_bwd", "permute_k_bwd", "permute_v_bwd", "accum_qkv_grad"}) {
    out->backward.push_back(glue(op, Phase::kBackward));
  }
}

void ExpandLayerNorm(const Layer& l, LayerKernelSet* out) {
  const int64_t e = l.output_elems;
  out->forward.push_back(Make("layer_norm_fwd_kernel", KernelClass::kBatchNorm, 8 * e,
                              2 * e * kFp32, l.id, Phase::kForward));
  out->backward.push_back(Make("layer_norm_bwd_kernel", KernelClass::kBatchNorm, 8 * e,
                               3 * e * kFp32, l.id, Phase::kBackward));
}

void ExpandSoftmaxLoss(const Layer& l, LayerKernelSet* out) {
  out->forward.push_back(Make("softmax_cross_entropy_fwd", KernelClass::kSoftmax, l.fwd_flops,
                              l.fwd_bytes, l.id, Phase::kForward));
  out->forward.push_back(Make("reduce_kernel_loss", KernelClass::kReduction, l.batch,
                              l.batch * kFp32, l.id, Phase::kForward));
  out->backward.push_back(Make("softmax_cross_entropy_bwd", KernelClass::kSoftmax, l.fwd_flops,
                               l.fwd_bytes, l.id, Phase::kBackward));
}

}  // namespace

const char* ToString(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgdMomentum:
      return "sgd_momentum";
    case OptimizerKind::kAdam:
      return "adam";
  }
  return "?";
}

LayerKernelSet ExpandLayer(const Layer& layer) {
  LayerKernelSet out;
  switch (layer.kind) {
    case LayerKind::kConv2d:
      ExpandConv(layer, &out);
      break;
    case LayerKind::kBatchNorm:
      ExpandBatchNorm(layer, &out);
      break;
    case LayerKind::kReLU:
      ExpandElementwise(layer, "relu", 1, &out);
      break;
    case LayerKind::kGelu:
      ExpandElementwise(layer, "gelu", 8, &out);
      break;
    case LayerKind::kDropout:
      ExpandElementwise(layer, "dropout", 2, &out);
      break;
    case LayerKind::kAdd:
      ExpandElementwise(layer, "add", 1, &out);
      break;
    case LayerKind::kConcat: {
      const int64_t e = layer.output_elems;
      out.forward.push_back(Make("cat_array_batched_copy", KernelClass::kElementwise, 0,
                                 2 * e * kFp32, layer.id, Phase::kForward));
      out.backward.push_back(Make("cat_array_batched_copy_bwd", KernelClass::kElementwise, 0,
                                  2 * e * kFp32, layer.id, Phase::kBackward));
      break;
    }
    case LayerKind::kMaxPool:
    case LayerKind::kAvgPool:
      ExpandPool(layer, &out);
      break;
    case LayerKind::kLinear:
      ExpandLinear(layer, &out);
      break;
    case LayerKind::kEmbedding:
      ExpandEmbedding(layer, &out);
      break;
    case LayerKind::kLstm:
      ExpandLstm(layer, &out);
      break;
    case LayerKind::kAttention:
      ExpandAttention(layer, &out);
      break;
    case LayerKind::kLayerNorm:
      ExpandLayerNorm(layer, &out);
      break;
    case LayerKind::kSoftmaxLoss:
      ExpandSoftmaxLoss(layer, &out);
      break;
  }
  return out;
}

std::vector<KernelSpec> ExpandWeightUpdate(const Layer& layer, OptimizerKind optimizer) {
  std::vector<KernelSpec> out;
  if (!layer.has_params()) {
    return out;
  }
  for (int64_t elems : layer.param_tensor_elems) {
    switch (optimizer) {
      case OptimizerKind::kSgdMomentum:
        out.push_back(Make("elementwise_kernel_sgd_momentum", KernelClass::kElementwise, 2 * elems,
                           3 * elems * kFp32, layer.id, Phase::kWeightUpdate));
        out.push_back(Make("elementwise_kernel_sgd_apply", KernelClass::kElementwise, elems,
                           3 * elems * kFp32, layer.id, Phase::kWeightUpdate));
        break;
      case OptimizerKind::kAdam:
        // PyTorch's unfused Adam: a chain of pointwise tensor ops per tensor
        // (exp_avg mul/add, exp_avg_sq mul/addcmul, sqrt, div, bias
        // corrections, addcdiv, ...). Each pass reads/writes ~2 tensors.
        for (int i = 0; i < kAdamKernelsPerTensor; ++i) {
          out.push_back(Make(StrFormat("elementwise_kernel_adam_op%d", i),
                             KernelClass::kElementwise, elems, 2 * elems * kFp32, layer.id,
                             Phase::kWeightUpdate));
        }
        if (elems >= kWeightDecayMinElems) {
          out.push_back(Make("elementwise_kernel_adam_weight_decay", KernelClass::kElementwise,
                             elems, 2 * elems * kFp32, layer.id, Phase::kWeightUpdate));
        }
        break;
    }
  }
  return out;
}

int CountWeightUpdateKernels(const ModelGraph& model, OptimizerKind optimizer) {
  int n = 0;
  for (const Layer& l : model.layers()) {
    n += static_cast<int>(ExpandWeightUpdate(l, optimizer).size());
  }
  return n;
}

}  // namespace daydream

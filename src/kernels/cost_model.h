// Roofline kernel cost model.
//
// duration = max(flops / effective_compute, bytes / effective_bandwidth) + floor
//
// Effective rates apply a per-class efficiency to the GPU peaks (GEMMs hit
// ~65% of peak, convolutions ~55%, elementwise kernels ~75% of DRAM bandwidth,
// gathers much less). The floor models fixed kernel startup/teardown, which is
// what makes thousands-of-tiny-kernel phases (BERT's Adam step) launch-bound.
//
// FP16 pricing is only used by the ground-truth executor; Daydream's AMP
// prediction scales FP32 durations by name class exactly as the paper does.
#ifndef SRC_KERNELS_COST_MODEL_H_
#define SRC_KERNELS_COST_MODEL_H_

#include "src/kernels/gpu_spec.h"
#include "src/kernels/kernel_spec.h"
#include "src/util/time_units.h"

namespace daydream {

class CostModel {
 public:
  explicit CostModel(GpuSpec spec);

  const GpuSpec& gpu() const { return spec_; }

  // Duration of one kernel at the given precision.
  TimeNs KernelDuration(const KernelSpec& kernel, Precision precision) const;

  // Duration of a host<->device memory copy of `bytes` over PCIe.
  TimeNs MemcpyDuration(int64_t bytes) const;

  // Per-class efficiency factors (exposed for tests). Compute efficiency is
  // size-dependent: small GEMMs/convolutions cannot fill the SMs and reach a
  // fraction of peak (tile quantization, low occupancy).
  static double ComputeEfficiency(KernelClass cls, int64_t flops);
  static double MemoryEfficiency(KernelClass cls);

  // Fixed per-kernel device-side overhead.
  static constexpr TimeNs kKernelFloorNs = 1500;

 private:
  GpuSpec spec_;
};

}  // namespace daydream

#endif  // SRC_KERNELS_COST_MODEL_H_

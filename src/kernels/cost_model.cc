#include "src/kernels/cost_model.h"

#include <algorithm>

#include "src/util/logging.h"

namespace daydream {

CostModel::CostModel(GpuSpec spec) : spec_(std::move(spec)) {
  DD_CHECK_GT(spec_.fp32_tflops, 0.0);
  DD_CHECK_GT(spec_.mem_bw_gbps, 0.0);
}

double CostModel::ComputeEfficiency(KernelClass cls, int64_t flops) {
  double peak_fraction = 0.30;  // memory-bound classes rarely hit compute limits
  if (cls == KernelClass::kGemm) {
    peak_fraction = 0.68;
  } else if (cls == KernelClass::kConv) {
    peak_fraction = 0.58;
  } else {
    return peak_fraction;
  }
  // Utilization ramp: tiny problems are launch/occupancy limited.
  if (flops < 500'000'000LL) {
    peak_fraction *= 0.45;
  } else if (flops < 5'000'000'000LL) {
    peak_fraction *= 0.75;
  }
  return peak_fraction;
}

double CostModel::MemoryEfficiency(KernelClass cls) {
  switch (cls) {
    case KernelClass::kGemm:
    case KernelClass::kConv:
      return 0.80;
    case KernelClass::kElementwise:
      return 0.75;
    case KernelClass::kBatchNorm:
      return 0.85;  // cuDNN's persistent BN kernels are close to streaming
    case KernelClass::kReduction:
      return 0.65;
    case KernelClass::kSoftmax:
      return 0.55;
    case KernelClass::kEmbedding:
      return 0.25;  // irregular gathers
    case KernelClass::kPooling:
      return 0.60;
    case KernelClass::kMemcpy:
      return 0.90;
  }
  return 0.5;
}

TimeNs CostModel::KernelDuration(const KernelSpec& kernel, Precision precision) const {
  const bool tensor_core =
      precision == Precision::kFp16 && spec_.has_tensor_cores && IsComputeBound(kernel.cls);
  const double peak_tflops = tensor_core ? spec_.fp16_tflops : spec_.fp32_tflops;
  const double flops_per_ns = peak_tflops * 1e3 * ComputeEfficiency(kernel.cls, kernel.flops);

  // FP16 halves DRAM traffic for every kernel class.
  const double bytes = precision == Precision::kFp16
                           ? static_cast<double>(kernel.bytes) * 0.5
                           : static_cast<double>(kernel.bytes);
  const double bytes_per_ns = spec_.mem_bw_gbps * MemoryEfficiency(kernel.cls);

  const double compute_ns = static_cast<double>(kernel.flops) / flops_per_ns;
  const double memory_ns = bytes / bytes_per_ns;
  return kKernelFloorNs + static_cast<TimeNs>(std::max(compute_ns, memory_ns));
}

TimeNs CostModel::MemcpyDuration(int64_t bytes) const {
  const double bytes_per_ns = spec_.pcie_gbps;  // GB/s == bytes/ns
  return kKernelFloorNs + static_cast<TimeNs>(static_cast<double>(bytes) / bytes_per_ns);
}

}  // namespace daydream

// GPU hardware descriptions for the kernel cost model.
//
// Presets match the two devices in the paper's evaluation: RTX 2080 Ti
// (Figures 5-9) and Quadro P4000 (the P3 experiments, Figure 10).
#ifndef SRC_KERNELS_GPU_SPEC_H_
#define SRC_KERNELS_GPU_SPEC_H_

#include <string>

namespace daydream {

enum class Precision { kFp32, kFp16 };

const char* ToString(Precision precision);

struct GpuSpec {
  std::string name;
  double fp32_tflops = 0.0;   // peak FP32 throughput
  double fp16_tflops = 0.0;   // peak FP16 (tensor core) throughput
  double mem_bw_gbps = 0.0;   // GB/s device memory bandwidth
  double pcie_gbps = 0.0;     // GB/s effective host<->device bandwidth
  bool has_tensor_cores = false;

  // Turing consumer flagship used for the main evaluation.
  static GpuSpec Rtx2080Ti();
  // Pascal workstation card used for the P3 experiments (no tensor cores).
  static GpuSpec P4000();
};

}  // namespace daydream

#endif  // SRC_KERNELS_GPU_SPEC_H_

// Layer -> kernel-sequence expansion.
//
// Expands each Layer of a ModelGraph into the cuDNN/cuBLAS-style kernel
// sequences a framework would actually launch for the forward pass, the
// backward pass and the optimizer step. The expansion reproduces the
// structural facts the paper's results hinge on, most importantly the
// per-parameter-tensor unfused Adam kernels (13 pointwise ops per tensor plus
// a weight-decay op for matrix tensors), which yield ~2.6k/5.2k weight-update
// kernels for BERT base/large (§6.3).
#ifndef SRC_KERNELS_LAYER_KERNELS_H_
#define SRC_KERNELS_LAYER_KERNELS_H_

#include <vector>

#include "src/kernels/kernel_spec.h"
#include "src/models/layer.h"
#include "src/models/model_graph.h"

namespace daydream {

enum class OptimizerKind {
  kSgdMomentum,  // CNNs (ResNet / VGG / DenseNet)
  kAdam,         // GNMT / BERT (which is what makes FusedAdam applicable, §6.3)
};

const char* ToString(OptimizerKind kind);

struct LayerKernelSet {
  std::vector<KernelSpec> forward;
  std::vector<KernelSpec> backward;  // in backward execution order
};

// Number of pointwise kernels an unfused Adam step launches per parameter
// tensor (mul/add/addcmul/sqrt/div/bias-correction/... chain).
inline constexpr int kAdamKernelsPerTensor = 13;
// Tensors at least this large additionally get a decoupled weight-decay kernel
// (matrices yes; biases / norm scales no).
inline constexpr int64_t kWeightDecayMinElems = 16384;

// Forward + backward kernels of one layer. layer_id/phase fields are filled in.
LayerKernelSet ExpandLayer(const Layer& layer);

// Optimizer-step kernels of one layer (empty if the layer has no parameters).
std::vector<KernelSpec> ExpandWeightUpdate(const Layer& layer, OptimizerKind optimizer);

// Convenience: total weight-update kernel count for a whole model.
int CountWeightUpdateKernels(const ModelGraph& model, OptimizerKind optimizer);

}  // namespace daydream

#endif  // SRC_KERNELS_LAYER_KERNELS_H_

// Kernel descriptions: what the cost model prices and what the executor runs.
//
// Names follow cuDNN / cuBLAS / PyTorch conventions ("volta_sgemm_*",
// "scudnn_*", "elementwise_kernel_*", "batch_norm_*"), because Daydream's
// optimization models select kernels by name substring exactly as the paper's
// Select primitive does (e.g. AMP: "sgemm" or "scudnn" in name -> 3x).
#ifndef SRC_KERNELS_KERNEL_SPEC_H_
#define SRC_KERNELS_KERNEL_SPEC_H_

#include <cstdint>
#include <string>

#include "src/trace/trace_event.h"

namespace daydream {

enum class KernelClass {
  kGemm,         // cuBLAS sgemm — compute bound
  kConv,         // cuDNN convolution (fprop/dgrad/wgrad) — compute bound
  kElementwise,  // pointwise arithmetic — memory bound
  kBatchNorm,    // statistics / normalize — memory bound
  kReduction,    // sums, loss reductions — memory bound
  kSoftmax,      // warp softmax — memory bound
  kEmbedding,    // gather / scatter-add — memory bound, poor locality
  kPooling,      // cuDNN pooling — memory bound
  kMemcpy,       // cuda memcpy (priced by PCIe/DRAM bandwidth)
};

const char* ToString(KernelClass cls);

// True for kernel classes that use tensor cores under mixed precision and thus
// get the ~3x AMP speedup; the rest are memory bound and get ~2x (§5.1).
bool IsComputeBound(KernelClass cls);

struct KernelSpec {
  std::string name;
  KernelClass cls = KernelClass::kElementwise;
  int64_t flops = 0;
  int64_t bytes = 0;  // DRAM traffic

  // Provenance, copied into trace events for the layer mapping.
  int layer_id = -1;
  Phase phase = Phase::kForward;
};

}  // namespace daydream

#endif  // SRC_KERNELS_KERNEL_SPEC_H_

#include "src/kernels/kernel_spec.h"

namespace daydream {

const char* ToString(KernelClass cls) {
  switch (cls) {
    case KernelClass::kGemm:
      return "gemm";
    case KernelClass::kConv:
      return "conv";
    case KernelClass::kElementwise:
      return "elementwise";
    case KernelClass::kBatchNorm:
      return "batchnorm";
    case KernelClass::kReduction:
      return "reduction";
    case KernelClass::kSoftmax:
      return "softmax";
    case KernelClass::kEmbedding:
      return "embedding";
    case KernelClass::kPooling:
      return "pooling";
    case KernelClass::kMemcpy:
      return "memcpy";
  }
  return "?";
}

bool IsComputeBound(KernelClass cls) {
  return cls == KernelClass::kGemm || cls == KernelClass::kConv;
}

}  // namespace daydream

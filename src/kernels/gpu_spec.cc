#include "src/kernels/gpu_spec.h"

namespace daydream {

const char* ToString(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "FP32";
    case Precision::kFp16:
      return "FP16";
  }
  return "?";
}

GpuSpec GpuSpec::Rtx2080Ti() {
  GpuSpec spec;
  spec.name = "RTX 2080 Ti";
  spec.fp32_tflops = 13.45;
  spec.fp16_tflops = 53.8;  // tensor cores with FP32 accumulate
  spec.mem_bw_gbps = 616.0;
  spec.pcie_gbps = 12.0;  // PCIe 3.0 x16 effective
  spec.has_tensor_cores = true;
  return spec;
}

GpuSpec GpuSpec::P4000() {
  GpuSpec spec;
  spec.name = "Quadro P4000";
  spec.fp32_tflops = 5.3;
  spec.fp16_tflops = 5.3;  // Pascal: no tensor cores, FP16 at FP32 rate
  spec.mem_bw_gbps = 243.0;
  spec.pcie_gbps = 12.0;
  spec.has_tensor_cores = false;
  return spec;
}

}  // namespace daydream

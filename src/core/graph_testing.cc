#include "src/core/graph_testing.h"

#include <memory>
#include <utility>

#include "src/util/logging.h"

namespace daydream {

void GraphCorruptor::AddRawChild(DependencyGraph* graph, TaskId from, TaskId to) {
  graph->node(from).children.push_back(to);
}

void GraphCorruptor::AddRawParent(DependencyGraph* graph, TaskId to, TaskId from) {
  graph->node(to).parents.push_back(from);
}

void GraphCorruptor::DuplicateFirstChildEdge(DependencyGraph* graph, TaskId from) {
  auto& children = graph->node(from).children;
  DD_CHECK(!children.empty()) << "task " << from << " has no edge to duplicate";
  const TaskId to = children.front();
  children.push_back(to);
  graph->node(to).parents.push_back(from);
}

void GraphCorruptor::AddSelfEdge(DependencyGraph* graph, TaskId id) {
  graph->node(id).children.push_back(id);
  graph->node(id).parents.push_back(id);
}

void GraphCorruptor::KillInPlace(DependencyGraph* graph, TaskId id) {
  DependencyGraph::Node& n = graph->node(id);
  DD_CHECK(n.alive);
  n.alive = false;
  --graph->num_alive_;
}

void GraphCorruptor::BreakSeqPrev(DependencyGraph* graph, TaskId id, TaskId bogus) {
  graph->node(id).seq_prev = bogus;
}

void GraphCorruptor::BreakSeqNext(DependencyGraph* graph, TaskId id, TaskId bogus) {
  graph->node(id).seq_next = bogus;
}

void GraphCorruptor::SetLaneField(DependencyGraph* graph, TaskId id, int32_t lane) {
  graph->node(id).lane = lane;
}

void GraphCorruptor::SetLaneTail(DependencyGraph* graph, int lane, TaskId tail) {
  graph->threads_[static_cast<size_t>(lane)].tail = tail;
}

void GraphCorruptor::SetLaneAliveCount(DependencyGraph* graph, int lane, int count) {
  graph->threads_[static_cast<size_t>(lane)].alive_count = count;
}

void GraphCorruptor::DetachFromChain(DependencyGraph* graph, TaskId id) {
  // Unlink does a clean splice-out (neighbours, head/tail, alive_count) but
  // leaves the node alive — exactly the orphan shape.
  graph->Unlink(id);
}

int GraphCorruptor::LaneOf(const DependencyGraph& graph, TaskId id) {
  return graph.node(id).lane;
}

SimPlan::Structure* PlanCorruptor::MutableStructure(SimPlan* plan) {
  DD_CHECK(!plan->empty());
  auto copy = std::make_shared<SimPlan::Structure>(*plan->structure_);
  SimPlan::Structure* raw = copy.get();
  plan->structure_ = std::move(copy);
  return raw;
}

void PlanCorruptor::BumpGraphStamp(SimPlan* plan) {
  MutableStructure(plan)->graph_stamp += 1;
}

void PlanCorruptor::BreakPredCount(SimPlan* plan, int plan_index, int32_t count) {
  MutableStructure(plan)->pred_count[static_cast<size_t>(plan_index)] = count;
}

void PlanCorruptor::RedirectSucc(SimPlan* plan, int slot, int32_t target) {
  MutableStructure(plan)->succ[static_cast<size_t>(slot)] = target;
}

void PlanCorruptor::BreakLane(SimPlan* plan, int plan_index, int32_t lane) {
  MutableStructure(plan)->lane[static_cast<size_t>(plan_index)] = lane;
}

void PlanCorruptor::BreakDuration(SimPlan* plan, int plan_index, TimeNs duration) {
  plan->duration_[static_cast<size_t>(plan_index)] = duration;
}


void ShardCorruptor::BreakLaneShard(ShardPlan* shards, int lane, int32_t shard) {
  shards->shard_of_lane_[static_cast<size_t>(lane)] = shard;
}

void ShardCorruptor::BreakTaskCount(ShardPlan* shards, int shard, int32_t count) {
  shards->shard_task_count_[static_cast<size_t>(shard)] = count;
}

void ShardCorruptor::RedirectWindowEntry(ShardPlan* shards, int slot, int32_t pos) {
  shards->edge_window_pos_[static_cast<size_t>(slot)] = pos;
}

void ShardCorruptor::BreakWindowSource(ShardPlan* shards, int pos, int32_t source) {
  shards->window_source_[static_cast<size_t>(pos)] = source;
}

void ShardCorruptor::BreakStaticBound(ShardPlan* shards, int plan_index, TimeNs bound) {
  shards->static_start_lb_[static_cast<size_t>(plan_index)] = bound;
}

void ShardCorruptor::SwapWindowBounds(ShardPlan* shards, int pos_a, int pos_b) {
  std::swap(shards->window_end_[static_cast<size_t>(pos_a)],
            shards->window_end_[static_cast<size_t>(pos_b)]);
}

}  // namespace daydream

// Graph-transformation primitives (§4.4).
//
// The paper's what-if interface: Select tasks of interest, Scale/Shrink their
// durations, Insert or Remove tasks, and override the scheduler. Optimization
// models (src/core/optimizations) are built exclusively from these.
//
// The selector builders return TaskQuery values that expose their phase /
// layer / type structure as data, so DependencyGraph::Select can answer from
// its secondary indexes in O(matches). All() merges structure; Any() and
// Not() have no indexable form and compose into the generic residual, and a
// bare lambda still works through the TaskPredicate fallback.
#ifndef SRC_CORE_TRANSFORM_H_
#define SRC_CORE_TRANSFORM_H_

#include <string>
#include <vector>

#include "src/core/dependency_graph.h"

namespace daydream {

// ---- Select queries ----

TaskQuery IsOnGpu();
TaskQuery IsOnCpu();
TaskQuery IsComm();
TaskQuery NameContains(std::string needle);
TaskQuery PhaseIs(Phase phase);
TaskQuery LayerIs(int layer_id);
TaskQuery ApiIs(ApiKind api);
TaskQuery CommIs(CommKind comm);
TaskQuery All(TaskQuery a, TaskQuery b);
TaskQuery Any(TaskQuery a, TaskQuery b);
TaskQuery Not(TaskQuery a);

// GPU tasks of one layer and phase, sorted by measured start time — the
// anchor lookup every layer-structured what-if (Gist, vDNN, P3) performs.
std::vector<TaskId> SelectLayerGpuSortedByStart(const DependencyGraph& graph, int layer_id,
                                                Phase phase);

// Iteration segmentation of a (possibly multi-iteration) profile: ascending
// start markers such that a task belongs to iteration i when
// starts[i] <= task.start < starts[i+1] (the last iteration is unbounded).
// Derived from the GPU phase cycle — a forward-phase task that appears after
// backward/weight-update work opens the next iteration. Single-iteration
// profiles yield one marker. What-ifs that anchor edges on "the last backward"
// or "the first weight update" must resolve those anchors per iteration, or
// they wire edges backward in time on multi-iteration traces.
std::vector<TimeNs> IterationStarts(const DependencyGraph& graph);

// ---- Scale / shrink ----

// Divides the duration of each selected task by `divisor` (> 0). A divisor of
// 2 is the paper's "shrink by 2x"; a divisor of 0.5 doubles the duration.
void ShrinkBy(DependencyGraph* graph, const std::vector<TaskId>& ids, double divisor);
// Multiplies durations by `factor`.
void ScaleBy(DependencyGraph* graph, const std::vector<TaskId>& ids, double factor);
void SetDurations(DependencyGraph* graph, const std::vector<TaskId>& ids, TimeNs duration);

// ---- Remove / insert ----

void RemoveAll(DependencyGraph* graph, const std::vector<TaskId>& ids);

// Inserts a GPU task together with its launching CPU task (Figure 4b):
// the CPU launch is spliced after `cpu_anchor` on its CPU thread, the GPU
// task after `gpu_anchor`'s position on `stream`, plus the correlation edge.
// Returns the new GPU task id.
struct InsertedKernel {
  TaskId launch = kInvalidTask;
  TaskId kernel = kInvalidTask;
};
InsertedKernel InsertKernelAfter(DependencyGraph* graph, TaskId cpu_anchor, TaskId gpu_anchor,
                                 Task gpu_task, TimeNs launch_overhead = 7 * kMicrosecond);

// Total duration of the selected tasks (used to size fused replacements).
TimeNs TotalDuration(const DependencyGraph& graph, const std::vector<TaskId>& ids);

}  // namespace daydream

#endif  // SRC_CORE_TRANSFORM_H_

// Compiled simulation plans: a DependencyGraph frozen for dispatch.
//
// Simulation is Daydream's innermost loop — a sweep answers every what-if by
// re-simulating a transformed graph (§7.1), so on cluster-scale graphs the
// dispatch loop dominates end-to-end latency. Walking the graph's node
// objects during dispatch is cache-hostile: each step loads a ~200-byte Task
// (with a std::string name), chases per-node edge vectors, and virtual-calls
// the scheduler's tie-break several times per heap operation.
//
// A SimPlan freezes one graph + one scheduler into the dense form the event
// engine actually needs:
//   - structure-of-arrays timing: duration[] and gap[] indexed by a dense
//     plan index (alive tasks in ascending id order),
//   - CSR successor lists and predecessor counts (plain int32 spans instead
//     of per-node vectors),
//   - the interned lane table plus dense per-lane task sequences,
//   - pre-resolved scheduler keys: the comparator policy lowers to one
//     uint64 per task — packed (tie-break key << 32 | plan index) — so the
//     hot loop orders tasks with single integer compares, zero virtual calls
//     and zero graph indirection.
//
// The structure block (everything except durations/gaps/keys) is immutable
// and shared: Compile() with a donor plan — or Simulator::Compile(graph,
// &donor) — reuses it when the graph is structurally unchanged since the
// donor was compiled, which is how a sweep retimes timing-only what-ifs
// (AMP-style duration scaling) without re-walking a million edges.
//
// Invalidation: a plan captures the graph at compile time and never observes
// later mutations. DependencyGraph::structure_stamp() is the cheap validity
// check — Clone() carries the stamp, structural mutation bumps it, and
// CompatibleWith() compares it; timing edits through the mutable task()
// accessor do not invalidate the structure, they are exactly what Retime
// re-reads.
#ifndef SRC_CORE_SIM_PLAN_H_
#define SRC_CORE_SIM_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/dependency_graph.h"
#include "src/core/simulator.h"
#include "src/util/deadline.h"

namespace daydream {

class ShardPlan;
class ThreadPool;

class SimPlan {
 public:
  SimPlan() = default;

  // Freezes `graph` for `scheduler` (must be comparator_based()). Tie-break
  // keys come from Scheduler::StaticPlanKey when provided, otherwise from one
  // rank-assigning sort over TieBreakLess — always possible because the order
  // is state-independent.
  static SimPlan Compile(const DependencyGraph& graph, const Scheduler& scheduler);

  // Rebuilds only the timing and key arrays over `donor`'s shared structure
  // block. Requires `graph` to be structurally identical to the graph the
  // donor was compiled from: same structure_stamp(), same capacity — the
  // contract a Clone() that only edited durations/gaps/priorities satisfies.
  static SimPlan Retime(const SimPlan& donor, const DependencyGraph& graph,
                        const Scheduler& scheduler);

  // Dispatches the plan (implemented by the event engine,
  // src/core/event_engine.cc). Produces the same SimResult as
  // Simulator::RunReference on the graph the plan was compiled from.
  SimResult Run() const;

  bool empty() const { return structure_ == nullptr; }
  int num_tasks() const;
  int num_lanes() const;
  // True when `graph` is still the structure this plan was compiled from
  // (stamp + capacity match). Only meaningful between a graph and its clones;
  // see DependencyGraph::structure_stamp().
  bool CompatibleWith(const DependencyGraph& graph) const;

 private:
  friend SimResult RunEventEngine(const SimPlan& plan);
  friend SimResult RunShardedEngine(const ShardPlan& shards, ThreadPool* pool,
                                    const Deadline* deadline, bool* deadline_hit);
  // ShardPlan partitions the frozen arrays for parallel dispatch.
  friend class ShardPlan;
  // GraphLint's plan passes verify the frozen CSR/SoA arrays (and the
  // test-only corruptor in src/core/graph_testing.h injects defects there).
  friend class GraphLint;
  friend class PlanCorruptor;

  // Immutable after compilation; shared between a plan and its retimes.
  struct Structure {
    int capacity = 0;          // graph.capacity() — sizes SimResult start/end
    uint64_t graph_stamp = 0;  // graph.structure_stamp() at compile time
    std::vector<TaskId> task_ids;    // plan index -> task id (ascending)
    std::vector<int32_t> lane;       // plan index -> lane
    std::vector<ExecThread> lane_threads;  // lane -> ExecThread
    // CSR successors over plan indices.
    std::vector<int32_t> succ_offset;  // size num_tasks + 1
    std::vector<int32_t> succ;
    std::vector<int32_t> pred_count;   // in-degree per plan index
    // Dense per-lane task sequences (plan indices grouped by lane, ascending
    // within each lane): sizes the engine's per-lane ready structures and
    // gives analyses a map-free lane walk.
    std::vector<int32_t> lane_offset;  // size num_lanes + 1
    std::vector<int32_t> lane_tasks;
    // Plan indices with no predecessors — the initial ready set.
    std::vector<int32_t> initial_ready;
  };

  std::shared_ptr<const Structure> structure_;
  // Structure-of-arrays timing, rebuilt by Retime.
  std::vector<TimeNs> duration_;
  std::vector<TimeNs> gap_;
  // Packed dispatch order per task: (tie-break key << 32) | plan index.
  // Ascending packed order == scheduler tie-break refined by task id.
  std::vector<uint64_t> order_key_;

  void FillTimingAndKeys(const DependencyGraph& graph, const Scheduler& scheduler);
};

// Runs the event-driven engine over a compiled plan (same as plan.Run()).
SimResult RunEventEngine(const SimPlan& plan);

// A SimPlan partitioned for multi-core dispatch.
//
// Simulated start/end times depend only on each lane's local dispatch order,
// never on how dispatches interleave across lanes — so lanes that do not
// exchange edges can be simulated concurrently. A ShardPlan groups the plan's
// lanes into shards (connected components of the lane graph, ignoring
// compute<->comm edges so all-reduce/P2P channels cut the partition, packed
// into `num_shards` bins longest-first) and precomputes the cross-shard
// synchronization metadata:
//   - one window entry per cross-shard CSR edge, held by the *target* shard
//     and sorted by the source's static completion lower bound — the shard's
//     conservative horizon is the first unpublished entry,
//   - static lower bounds per task (longest duration-path over the frozen
//     CSR; lane contention ignored, so always <= the simulated time),
//   - per-edge window positions aligned with the CSR slot array, so dispatch
//     publishes completions with plain array writes.
//
// Run() executes the windowed barrier loop in the event engine
// (RunShardedEngine) and produces a SimResult byte-identical to plan.Run()
// and Simulator::RunReference for every shard count — equality is exact, not
// approximate (see docs/engine.md, "Parallel dispatch").
//
// Shard membership and window positions are structural; window bounds are
// timing. A ShardPlan captures both from one plan, so recompile it after
// Retime. The referencing-plan overload requires the plan to outlive the
// ShardPlan (the SweepRunner/bench pattern); the shared_ptr overload co-owns
// it (the session-cache pattern).
class ShardPlan {
 public:
  ShardPlan() = default;

  // Partitions `plan` into at most `num_shards` shards (fewer when the lane
  // graph has fewer components). `plan` must outlive the returned ShardPlan.
  static ShardPlan Compile(const SimPlan& plan, int num_shards);
  // As above, sharing ownership of the plan.
  static ShardPlan Compile(std::shared_ptr<const SimPlan> plan, int num_shards);

  // Dispatches every shard on `pool` (caller participates; a null pool runs
  // the barrier loop on the calling thread alone). The result is exactly
  // plan().Run(). A non-null `deadline` is checked between dispatch rounds:
  // on expiry the loop abandons the remaining rounds, sets *deadline_hit and
  // returns a partial result (serve-layer cooperative cancellation — the CLI
  // and benchmarks pass no deadline and always run to completion).
  SimResult Run(ThreadPool* pool = nullptr, const Deadline* deadline = nullptr,
                bool* deadline_hit = nullptr) const;

  bool empty() const { return plan_ == nullptr; }
  int num_shards() const { return num_shards_; }
  const SimPlan& plan() const { return *plan_; }

 private:
  friend SimResult RunShardedEngine(const ShardPlan& shards, ThreadPool* pool,
                                    const Deadline* deadline, bool* deadline_hit);
  // GraphLint::LintShards verifies the partition/window invariants; the
  // test-only ShardCorruptor (src/core/graph_testing.h) injects defects.
  friend class GraphLint;
  friend class ShardCorruptor;

  // Rebuilds the timing-dependent members (static bounds + window lists) from
  // plan_'s current durations; called by Compile after the structural part.
  void FillWindows();

  const SimPlan* plan_ = nullptr;
  std::shared_ptr<const SimPlan> owned_;  // set by the shared_ptr overload
  int num_shards_ = 0;

  // Lane partition: a disjoint cover of the plan's lanes.
  std::vector<int32_t> shard_of_lane_;      // lane -> shard
  std::vector<int32_t> shard_lane_offset_;  // shard -> [begin, end) in shard_lanes_
  std::vector<int32_t> shard_lanes_;        // lanes grouped by shard
  std::vector<int32_t> shard_task_count_;   // tasks per shard (binning weight)

  // Structural topological order of the plan indices (Kahn).
  std::vector<int32_t> topo_order_;

  // Static longest-path lower bound on each task's simulated start (timing).
  std::vector<TimeNs> static_start_lb_;

  // Cross-shard windows: entry j (within a shard's [window_offset_) range)
  // carries the source's static completion bound; entries per shard are
  // sorted ascending, so the first unpublished one is the horizon.
  std::vector<int32_t> window_offset_;  // shard -> [begin, end) in window_*
  std::vector<TimeNs> window_end_;      // static end bound of the source
  std::vector<int32_t> window_source_;  // source plan index (lint/debug)
  // CSR slot -> window entry (-1 for intra-shard edges). Aligned with
  // SimPlan::Structure::succ.
  std::vector<int32_t> edge_window_pos_;
};

// Runs the windowed barrier loop over a shard plan (same as shards.Run(pool,
// deadline, deadline_hit)).
SimResult RunShardedEngine(const ShardPlan& shards, ThreadPool* pool,
                           const Deadline* deadline = nullptr, bool* deadline_hit = nullptr);

// Dispatches `plan` across `sim_jobs` shards sharing `pool`; a null pool
// spawns a private pool sized to the shard count for the duration of the
// call. sim_jobs <= 1 is exactly the serial plan.Run(). Every path returns
// the identical SimResult. `deadline`/`deadline_hit` follow ShardPlan::Run
// (checked between rounds on the sharded path, before dispatch on the serial
// one).
SimResult RunPlanParallel(const SimPlan& plan, int sim_jobs, ThreadPool* pool = nullptr,
                          const Deadline* deadline = nullptr, bool* deadline_hit = nullptr);

}  // namespace daydream

#endif  // SRC_CORE_SIM_PLAN_H_

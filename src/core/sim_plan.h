// Compiled simulation plans: a DependencyGraph frozen for dispatch.
//
// Simulation is Daydream's innermost loop — a sweep answers every what-if by
// re-simulating a transformed graph (§7.1), so on cluster-scale graphs the
// dispatch loop dominates end-to-end latency. Walking the graph's node
// objects during dispatch is cache-hostile: each step loads a ~200-byte Task
// (with a std::string name), chases per-node edge vectors, and virtual-calls
// the scheduler's tie-break several times per heap operation.
//
// A SimPlan freezes one graph + one scheduler into the dense form the event
// engine actually needs:
//   - structure-of-arrays timing: duration[] and gap[] indexed by a dense
//     plan index (alive tasks in ascending id order),
//   - CSR successor lists and predecessor counts (plain int32 spans instead
//     of per-node vectors),
//   - the interned lane table plus dense per-lane task sequences,
//   - pre-resolved scheduler keys: the comparator policy lowers to one
//     uint64 per task — packed (tie-break key << 32 | plan index) — so the
//     hot loop orders tasks with single integer compares, zero virtual calls
//     and zero graph indirection.
//
// The structure block (everything except durations/gaps/keys) is immutable
// and shared: Compile() with a donor plan — or Simulator::Compile(graph,
// &donor) — reuses it when the graph is structurally unchanged since the
// donor was compiled, which is how a sweep retimes timing-only what-ifs
// (AMP-style duration scaling) without re-walking a million edges.
//
// Invalidation: a plan captures the graph at compile time and never observes
// later mutations. DependencyGraph::structure_stamp() is the cheap validity
// check — Clone() carries the stamp, structural mutation bumps it, and
// CompatibleWith() compares it; timing edits through the mutable task()
// accessor do not invalidate the structure, they are exactly what Retime
// re-reads.
#ifndef SRC_CORE_SIM_PLAN_H_
#define SRC_CORE_SIM_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/dependency_graph.h"
#include "src/core/simulator.h"

namespace daydream {

class SimPlan {
 public:
  SimPlan() = default;

  // Freezes `graph` for `scheduler` (must be comparator_based()). Tie-break
  // keys come from Scheduler::StaticPlanKey when provided, otherwise from one
  // rank-assigning sort over TieBreakLess — always possible because the order
  // is state-independent.
  static SimPlan Compile(const DependencyGraph& graph, const Scheduler& scheduler);

  // Rebuilds only the timing and key arrays over `donor`'s shared structure
  // block. Requires `graph` to be structurally identical to the graph the
  // donor was compiled from: same structure_stamp(), same capacity — the
  // contract a Clone() that only edited durations/gaps/priorities satisfies.
  static SimPlan Retime(const SimPlan& donor, const DependencyGraph& graph,
                        const Scheduler& scheduler);

  // Dispatches the plan (implemented by the event engine,
  // src/core/event_engine.cc). Produces the same SimResult as
  // Simulator::RunReference on the graph the plan was compiled from.
  SimResult Run() const;

  bool empty() const { return structure_ == nullptr; }
  int num_tasks() const;
  int num_lanes() const;
  // True when `graph` is still the structure this plan was compiled from
  // (stamp + capacity match). Only meaningful between a graph and its clones;
  // see DependencyGraph::structure_stamp().
  bool CompatibleWith(const DependencyGraph& graph) const;

 private:
  friend SimResult RunEventEngine(const SimPlan& plan);
  // GraphLint's plan passes verify the frozen CSR/SoA arrays (and the
  // test-only corruptor in src/core/graph_testing.h injects defects there).
  friend class GraphLint;
  friend class PlanCorruptor;

  // Immutable after compilation; shared between a plan and its retimes.
  struct Structure {
    int capacity = 0;          // graph.capacity() — sizes SimResult start/end
    uint64_t graph_stamp = 0;  // graph.structure_stamp() at compile time
    std::vector<TaskId> task_ids;    // plan index -> task id (ascending)
    std::vector<int32_t> lane;       // plan index -> lane
    std::vector<ExecThread> lane_threads;  // lane -> ExecThread
    // CSR successors over plan indices.
    std::vector<int32_t> succ_offset;  // size num_tasks + 1
    std::vector<int32_t> succ;
    std::vector<int32_t> pred_count;   // in-degree per plan index
    // Dense per-lane task sequences (plan indices grouped by lane, ascending
    // within each lane): sizes the engine's per-lane ready structures and
    // gives analyses a map-free lane walk.
    std::vector<int32_t> lane_offset;  // size num_lanes + 1
    std::vector<int32_t> lane_tasks;
    // Plan indices with no predecessors — the initial ready set.
    std::vector<int32_t> initial_ready;
  };

  std::shared_ptr<const Structure> structure_;
  // Structure-of-arrays timing, rebuilt by Retime.
  std::vector<TimeNs> duration_;
  std::vector<TimeNs> gap_;
  // Packed dispatch order per task: (tie-break key << 32) | plan index.
  // Ascending packed order == scheduler tie-break refined by task id.
  std::vector<uint64_t> order_key_;

  void FillTimingAndKeys(const DependencyGraph& graph, const Scheduler& scheduler);
};

// Runs the event-driven engine over a compiled plan (same as plan.Run()).
SimResult RunEventEngine(const SimPlan& plan);

}  // namespace daydream

#endif  // SRC_CORE_SIM_PLAN_H_

// Runtime simulation over the dependency graph — the paper's Algorithm 1.
//
// Traverses the graph, dispatching ready ("frontier") tasks onto their
// execution threads, advancing per-thread progress by duration + gap, and
// propagating completion times to children. The schedule() choice of which
// frontier task to dispatch first is pluggable: the default picks the task
// that can start earliest (the paper's default); optimizations like P3 and
// vDNN install custom policies (§4.4 "Schedule", appendix Algorithms 7/10).
#ifndef SRC_CORE_SIMULATOR_H_
#define SRC_CORE_SIMULATOR_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/dependency_graph.h"

namespace daydream {

struct SimResult {
  TimeNs makespan = 0;
  // Simulated start/end time per task id (dead tasks keep -1). Indexable by
  // graph.capacity().
  std::vector<TimeNs> start;
  std::vector<TimeNs> end;
  // Per-thread busy time (sum of durations) and final progress.
  std::map<ExecThread, TimeNs> thread_busy;
  std::map<ExecThread, TimeNs> thread_end;
  int dispatched = 0;

  TimeNs EndOf(TaskId id) const;
};

// Scheduling policy: given the frontier (ready tasks), pick which to dispatch.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  struct Context {
    const DependencyGraph* graph = nullptr;
    // Current progress of each execution thread.
    const std::map<ExecThread, TimeNs>* progress = nullptr;
    // Current earliest-start bound per task (updated by finished parents).
    const std::vector<TimeNs>* earliest = nullptr;

    // Feasible dispatch time of a task: max(thread progress, earliest bound).
    TimeNs FeasibleTime(TaskId id) const;
  };

  // Returns an index into `frontier`.
  virtual size_t Pick(const std::vector<TaskId>& frontier, const Context& context) = 0;
};

// Default policy: dispatch the frontier task with the earliest feasible start;
// ties broken by task id for determinism.
class EarliestStartScheduler : public Scheduler {
 public:
  size_t Pick(const std::vector<TaskId>& frontier, const Context& context) override;
};

// P3-style policy (appendix Algorithm 7): earliest feasible start, but among
// communication tasks that tie, the higher Task::priority wins.
class PriorityCommScheduler : public Scheduler {
 public:
  size_t Pick(const std::vector<TaskId>& frontier, const Context& context) override;
};

class Simulator {
 public:
  Simulator();
  explicit Simulator(std::shared_ptr<Scheduler> scheduler);

  SimResult Run(const DependencyGraph& graph) const;

 private:
  std::shared_ptr<Scheduler> scheduler_;
};

}  // namespace daydream

#endif  // SRC_CORE_SIMULATOR_H_

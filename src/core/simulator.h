// Runtime simulation over the dependency graph — the paper's Algorithm 1.
//
// Traverses the graph, dispatching ready ("frontier") tasks onto their
// execution threads, advancing per-thread progress by duration + gap, and
// propagating completion times to children. The schedule() choice of which
// frontier task to dispatch first is pluggable: the default picks the task
// that can start earliest (the paper's default); optimizations like P3 and
// vDNN install custom policies (§4.4 "Schedule", appendix Algorithms 7/10).
//
// Two engines implement the traversal:
//   - the compiled-plan event engine (src/core/sim_plan.h +
//     src/core/event_engine.h): the graph is first frozen into an immutable
//     structure-of-arrays / CSR SimPlan with the scheduler's tie-break
//     lowered to plain integer keys, then dispatched with an O(log F) indexed
//     ready set — the hot loop does no virtual calls and no node-object
//     indirection. Used whenever the scheduler expresses its policy as a
//     feasible-time order with a state-independent tie-break
//     (Scheduler::comparator_based()).
//   - the reference engine (Simulator::RunReference): the literal Algorithm-1
//     transcription with a linear frontier scan. It is the differential-
//     testing oracle and the compatibility path for custom Pick()-style
//     policies that need to see the whole frontier.
#ifndef SRC_CORE_SIMULATOR_H_
#define SRC_CORE_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/core/dependency_graph.h"

namespace daydream {

class SimPlan;

struct SimResult {
  TimeNs makespan = 0;
  // Simulated start/end time per task id (dead tasks keep -1). Indexable by
  // graph.capacity().
  std::vector<TimeNs> start;
  std::vector<TimeNs> end;
  // Flat per-lane accounting, indexed by the graph's interned lane table
  // (lane_threads mirrors lane -> ExecThread): busy is the sum of dispatched
  // durations, end the lane's final progress (duration + trailing gap of the
  // last task). Lanes that never dispatched keep busy 0 and end -1.
  std::vector<ExecThread> lane_threads;
  std::vector<TimeNs> lane_busy;
  std::vector<TimeNs> lane_end;
  int dispatched = 0;

  TimeNs EndOf(TaskId id) const;

  // Map-shaped compatibility accessors: one entry per lane that dispatched at
  // least one task (the shape the historical std::map members had).
  std::map<ExecThread, TimeNs> thread_busy() const;
  std::map<ExecThread, TimeNs> thread_end() const;
};

// Scheduling policy: given the frontier (ready tasks), pick which to dispatch.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  struct Context {
    const DependencyGraph* graph = nullptr;
    // Current progress of each execution lane, indexed by the graph's
    // interned lane table (graph->lane_of(id)).
    const std::vector<TimeNs>* progress = nullptr;
    // Current earliest-start bound per task (updated by finished parents).
    const std::vector<TimeNs>* earliest = nullptr;

    // Feasible dispatch time of a task: max(lane progress, earliest bound).
    TimeNs FeasibleTime(TaskId id) const;
  };

  // Returns an index into `frontier`. Only called by the reference engine;
  // comparator-based schedulers may delegate to their TieBreakLess order.
  virtual size_t Pick(const std::vector<TaskId>& frontier, const Context& context) = 0;

  // ---- Event-engine contract ----
  //
  // A scheduler whose policy is "dispatch the task with the earliest feasible
  // time, breaking ties with a fixed order" returns true here, and
  // Simulator::Run compiles the graph into a SimPlan and dispatches it with
  // the event-driven engine. Policies that need the whole frontier (custom
  // Pick overrides) keep the default false and run on the reference engine.
  virtual bool comparator_based() const { return false; }

  // Tie-break among tasks feasible at the same instant. Must be a strict weak
  // ordering and must not depend on mutable simulation state (progress,
  // frontier contents); the engine refines "equal" pairs by task id, so the
  // order need not be total. Default: ascending task id.
  virtual bool TieBreakLess(const Task& a, const Task& b) const;

  // Plan-compilation contract: lowers the tie-break to a per-task integer so
  // the compiled engine compares plain keys instead of virtual-dispatching
  // into TieBreakLess. Returns true and sets *key such that ascending
  // (key, task id) reproduces TieBreakLess refined by id. Schedulers that are
  // comparator-based but keep the default false still compile — SimPlan falls
  // back to ranking every task with one TieBreakLess sort at compile time.
  virtual bool StaticPlanKey(const Task& task, uint32_t* key) const;
};

// Default policy: dispatch the frontier task with the earliest feasible start;
// ties broken by task id for determinism.
class EarliestStartScheduler : public Scheduler {
 public:
  size_t Pick(const std::vector<TaskId>& frontier, const Context& context) override;
  bool comparator_based() const override { return true; }
  bool StaticPlanKey(const Task& task, uint32_t* key) const override;
};

// P3-style policy (appendix Algorithm 7): earliest feasible start, but among
// communication tasks that tie, the higher Task::priority wins.
//
// Tie-break order (both engines): effective priority — Task::priority for
// communication tasks, 0 for everything else — descending, then task id. The
// "effective priority" formulation makes the order a strict weak ordering
// (the historical frontier scan compared priorities only between two comm
// tasks, which was not transitive when comm and non-comm tasks tied); on
// graphs where communication tasks live on communication channels (every
// producer in this repo) it picks the same schedule.
class PriorityCommScheduler : public Scheduler {
 public:
  size_t Pick(const std::vector<TaskId>& frontier, const Context& context) override;
  bool comparator_based() const override { return true; }
  bool TieBreakLess(const Task& a, const Task& b) const override;
  bool StaticPlanKey(const Task& task, uint32_t* key) const override;
};

// Which engine a Simulator (or the CLI's --engine flag) drives.
//   kEvent:     compiled-plan event engine when the scheduler supports it,
//               reference otherwise (the default).
//   kReference: always the literal Algorithm-1 scan — the differential-
//               debugging path (`--engine=reference`).
enum class EngineKind { kEvent, kReference };

class Simulator {
 public:
  Simulator();
  explicit Simulator(std::shared_ptr<Scheduler> scheduler,
                     EngineKind engine = EngineKind::kEvent);

  // Simulates `graph`: compiled-plan event engine when the scheduler supports
  // it (and the engine kind allows), reference engine otherwise. Both produce
  // identical SimResults for the built-in schedulers.
  SimResult Run(const DependencyGraph& graph) const;

  // Literal Algorithm-1 transcription (O(F) frontier scan per dispatch).
  // Exposed as the differential-testing oracle.
  SimResult RunReference(const DependencyGraph& graph) const;

  // Freezes `graph` into an immutable plan for this simulator's scheduler
  // (requires scheduler()->comparator_based()). `donor` optionally shares a
  // previously compiled plan: when `graph` is structurally unchanged since
  // the donor was compiled (DependencyGraph::structure_stamp()), only the
  // timing/key arrays are rebuilt and the CSR structure block is reused.
  SimPlan Compile(const DependencyGraph& graph, const SimPlan* donor = nullptr) const;

  const std::shared_ptr<Scheduler>& scheduler() const { return scheduler_; }
  EngineKind engine() const { return engine_; }

 private:
  std::shared_ptr<Scheduler> scheduler_;
  EngineKind engine_ = EngineKind::kEvent;
};

}  // namespace daydream

#endif  // SRC_CORE_SIMULATOR_H_

#include "src/core/memory_model.h"

#include <algorithm>

#include "src/models/model_zoo.h"
#include "src/util/string_util.h"
#include "src/util/time_units.h"

namespace daydream {

namespace {

constexpr int64_t kFp32 = 4;

// Layers whose forward outputs autograd keeps for the backward pass. Dropout
// masks and pooling indices are folded into the activation term coarsely.
bool RetainsActivation(const Layer& layer) {
  switch (layer.kind) {
    case LayerKind::kConcat:  // views over already-counted producers
      return false;
    default:
      return true;
  }
}

}  // namespace

std::string MemoryEstimate::Summary() const {
  auto gib = [](int64_t bytes) { return static_cast<double>(bytes) / kGiB; };
  return StrFormat(
      "total %.2f GiB = weights %.2f + grads %.2f + optimizer %.2f + activations %.2f "
      "+ workspace %.2f",
      gib(total()), gib(weights), gib(gradients), gib(optimizer_state), gib(activations),
      gib(workspace));
}

MemoryEstimate EstimateTrainingMemory(const ModelGraph& model, OptimizerKind optimizer) {
  MemoryEstimate estimate;
  estimate.weights = model.TotalParamBytes();
  estimate.gradients = model.TotalParamBytes();
  switch (optimizer) {
    case OptimizerKind::kSgdMomentum:
      estimate.optimizer_state = model.TotalParamBytes();  // momentum buffer
      break;
    case OptimizerKind::kAdam:
      estimate.optimizer_state = 2 * model.TotalParamBytes();  // exp_avg + exp_avg_sq
      break;
  }
  int64_t max_conv_workspace = 0;
  for (const Layer& layer : model.layers()) {
    if (RetainsActivation(layer)) {
      estimate.activations += layer.output_elems * kFp32;
    }
    if (layer.kind == LayerKind::kConv2d) {
      // Implicit-gemm workspace roughly tracks the output tile.
      max_conv_workspace = std::max(max_conv_workspace, layer.output_elems * kFp32 / 4);
    }
  }
  estimate.workspace = max_conv_workspace;
  return estimate;
}

int64_t VdnnActivationSavings(const ModelGraph& model) {
  int64_t saved = 0;
  for (const Layer& layer : model.layers()) {
    if (layer.kind == LayerKind::kConv2d) {
      saved += layer.output_elems * kFp32;
    }
  }
  return saved;
}

int64_t GistActivationSavings(const ModelGraph& model, bool lossy) {
  int64_t saved = 0;
  for (const Layer& layer : model.layers()) {
    if (layer.kind == LayerKind::kReLU) {
      // 32-bit feature map -> 1-bit binarized map: 31/32 of the bytes freed.
      saved += layer.output_elems * kFp32 * 31 / 32;
    } else if (lossy &&
               (layer.kind == LayerKind::kMaxPool || layer.kind == LayerKind::kAvgPool)) {
      saved += layer.output_elems * kFp32 / 2;  // delayed precision reduction
    }
  }
  return saved;
}

int64_t MaxBatchForCapacity(ModelId model, OptimizerKind optimizer, int64_t capacity_bytes) {
  int64_t best = 0;
  // Exponential probe then binary search over batch sizes.
  int64_t lo = 1;
  int64_t hi = 1;
  auto fits = [&](int64_t batch) {
    const ModelGraph g = BuildModel(model, batch);
    return EstimateTrainingMemory(g, optimizer).total() <= capacity_bytes;
  };
  if (!fits(1)) {
    return 0;
  }
  while (fits(hi) && hi < (1 << 14)) {
    best = hi;
    lo = hi;
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const int64_t mid = (lo + hi) / 2;
    if (fits(mid)) {
      best = mid;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace daydream

#include "src/core/graph_builder.h"

#include <algorithm>
#include <map>

#include "src/util/logging.h"

namespace daydream {

namespace {

bool IsBlockingSyncApi(const TraceEvent& e) {
  return e.kind == EventKind::kRuntimeApi &&
         (e.api == ApiKind::kDeviceSynchronize || e.api == ApiKind::kStreamSynchronize);
}

}  // namespace

DependencyGraph BuildDependencyGraph(const Trace& trace, const GraphBuildOptions& options) {
  DependencyGraph graph;
  const std::vector<TraceEvent>& events = trace.events();

  LayerMap layer_map;
  if (options.map_layers) {
    layer_map = LayerMap::Compute(trace);
  }

  // Blocking DtoH memcpy APIs are recognized by the DtoH kind of the GPU copy
  // sharing their correlation id.
  std::map<int64_t, const TraceEvent*> gpu_by_correlation;
  for (const TraceEvent& e : events) {
    if (e.is_gpu() && e.correlation_id != 0) {
      gpu_by_correlation[e.correlation_id] = &e;
    }
  }
  auto is_blocking_dtoh_api = [&](const TraceEvent& e) {
    if (e.kind != EventKind::kRuntimeApi || e.api != ApiKind::kMemcpyAsync ||
        e.correlation_id == 0) {
      return false;
    }
    auto it = gpu_by_correlation.find(e.correlation_id);
    return it != gpu_by_correlation.end() &&
           it->second->memcpy_kind == MemcpyKind::kDeviceToHost;
  };

  // Create tasks in time order so thread sequences come out sorted.
  std::vector<size_t> order(events.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return events[a].start < events[b].start;
  });

  std::vector<TaskId> task_of_event(events.size(), kInvalidTask);
  for (size_t idx : order) {
    const TraceEvent& e = events[idx];
    if (e.kind == EventKind::kLayerMarker) {
      continue;  // instrumentation stamps, not tasks
    }
    Task t;
    t.name = e.name;
    t.start = e.start;
    t.duration = e.duration;
    t.api = e.api;
    t.comm = e.comm_kind;
    t.correlation_id = e.correlation_id;
    t.bytes = e.bytes;
    if (options.map_layers) {
      const LayerAssignment& a = layer_map.assignment(idx);
      t.layer_id = a.layer_id;
      t.phase = a.phase;
    } else {
      t.layer_id = e.layer_id;
      t.phase = e.phase;
    }
    switch (e.kind) {
      case EventKind::kRuntimeApi:
        t.type = TaskType::kCpu;
        t.thread = ExecThread::Cpu(e.thread_id);
        if (IsBlockingSyncApi(e)) {
          t.duration = std::min(t.duration, options.sync_api_floor);
        } else if (is_blocking_dtoh_api(e)) {
          t.duration = std::min(t.duration, options.memcpy_api_floor);
        }
        break;
      case EventKind::kDataLoad:
        t.type = TaskType::kDataLoad;
        t.thread = ExecThread::Cpu(e.thread_id);
        t.phase = Phase::kDataLoad;
        break;
      case EventKind::kKernel:
      case EventKind::kMemcpy:
        t.type = TaskType::kGpu;
        t.thread = ExecThread::Gpu(e.stream_id);
        break;
      case EventKind::kCommunication:
        t.type = TaskType::kComm;
        t.thread = ExecThread::Comm(e.channel_id);
        break;
      case EventKind::kLayerMarker:
        break;  // unreachable
    }
    task_of_event[idx] = graph.AddTask(std::move(t));
  }

  // Dependency types 1, 2 and 5: per-lane sequential order.
  graph.LinkSequential();

  // Gaps: measured idle time between consecutive CPU events on a thread,
  // computed against the *measured* end (not the clipped duration): a blocking
  // API's wait lives in the GPU->CPU edge, while its gap stays the small
  // framework overhead that follows the measured return.
  {
    std::map<int, std::vector<size_t>> cpu_events_by_thread;
    for (size_t idx : order) {
      const TraceEvent& e = events[idx];
      if (e.is_cpu() && e.kind != EventKind::kLayerMarker) {
        cpu_events_by_thread[e.thread_id].push_back(idx);
      }
    }
    for (const auto& [tid, idxs] : cpu_events_by_thread) {
      for (size_t i = 0; i + 1 < idxs.size(); ++i) {
        const TraceEvent& cur = events[idxs[i]];
        const TraceEvent& next = events[idxs[i + 1]];
        graph.task(task_of_event[idxs[i]]).gap = std::max<TimeNs>(0, next.start - cur.end());
      }
    }
  }

  // Dependency type 3: correlation edges (launch API -> GPU task).
  std::map<int64_t, TaskId> launch_by_correlation;
  for (size_t idx = 0; idx < events.size(); ++idx) {
    const TraceEvent& e = events[idx];
    if (e.kind == EventKind::kRuntimeApi && e.correlation_id != 0 &&
        (e.api == ApiKind::kLaunchKernel || e.api == ApiKind::kMemcpyAsync ||
         e.api == ApiKind::kMemcpySync)) {
      launch_by_correlation[e.correlation_id] = task_of_event[idx];
    }
  }
  std::map<int64_t, TaskId> gpu_task_by_correlation;
  for (size_t idx = 0; idx < events.size(); ++idx) {
    const TraceEvent& e = events[idx];
    if (e.is_gpu() && e.correlation_id != 0) {
      gpu_task_by_correlation[e.correlation_id] = task_of_event[idx];
      auto it = launch_by_correlation.find(e.correlation_id);
      if (it != launch_by_correlation.end()) {
        graph.AddEdge(it->second, task_of_event[idx]);
      }
    }
  }

  // Dependency type 4: CUDA synchronizations. Scan CPU events in time order,
  // tracking the last GPU task enqueued on each stream; a blocking API makes
  // the *next* CPU task on its thread depend on those GPU tasks, so that the
  // measured wait is reproduced — and shrinks when the GPU work shrinks.
  std::map<int, TaskId> last_enqueued;  // stream -> gpu task
  auto next_on_thread = [&](TaskId id) { return graph.NextInThread(id); };
  for (size_t idx : order) {
    const TraceEvent& e = events[idx];
    if (e.kind == EventKind::kLayerMarker) {
      continue;
    }
    if (e.kind == EventKind::kRuntimeApi && e.correlation_id != 0) {
      auto it = gpu_by_correlation.find(e.correlation_id);
      if (it != gpu_by_correlation.end()) {
        last_enqueued[it->second->stream_id] = gpu_task_by_correlation[e.correlation_id];
      }
    }
    TaskId blocked = kInvalidTask;
    std::vector<TaskId> wait_on;
    if (IsBlockingSyncApi(e)) {
      blocked = next_on_thread(task_of_event[idx]);
      if (e.api == ApiKind::kStreamSynchronize && e.stream_id >= 0) {
        auto it = last_enqueued.find(e.stream_id);
        if (it != last_enqueued.end()) {
          wait_on.push_back(it->second);
        }
      } else {
        for (const auto& [stream, gpu_task] : last_enqueued) {
          wait_on.push_back(gpu_task);
        }
      }
    } else if (is_blocking_dtoh_api(e)) {
      blocked = next_on_thread(task_of_event[idx]);
      wait_on.push_back(gpu_task_by_correlation[e.correlation_id]);
    }
    if (blocked != kInvalidTask) {
      for (TaskId gpu_task : wait_on) {
        graph.AddEdge(gpu_task, blocked);
      }
    }
  }

  return graph;
}

}  // namespace daydream

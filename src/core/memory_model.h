// GPU memory-footprint estimation.
//
// "Does GPU memory capacity limit the performance of my model?" is one of the
// paper's motivating what-if questions (§1), and vDNN/Gist trade runtime for
// exactly this footprint. This module estimates training memory from the
// model graph — weights, gradients, optimizer state, and the forward
// activations autograd must keep alive until the backward pass — and the
// savings under the vDNN / Gist policies, so their time overhead (predicted
// by the graph transformations) can be weighed against the bytes they free.
#ifndef SRC_CORE_MEMORY_MODEL_H_
#define SRC_CORE_MEMORY_MODEL_H_

#include <cstdint>
#include <string>

#include "src/kernels/layer_kernels.h"
#include "src/models/model_graph.h"
#include "src/models/model_zoo.h"

namespace daydream {

struct MemoryEstimate {
  int64_t weights = 0;          // parameters (fp32)
  int64_t gradients = 0;        // one gradient per parameter
  int64_t optimizer_state = 0;  // momentum (SGD) or exp_avg + exp_avg_sq (Adam)
  int64_t activations = 0;      // forward outputs retained for backward
  int64_t workspace = 0;        // cuDNN scratch (coarse)

  int64_t total() const {
    return weights + gradients + optimizer_state + activations + workspace;
  }
  std::string Summary() const;
};

// Baseline training footprint.
MemoryEstimate EstimateTrainingMemory(const ModelGraph& model, OptimizerKind optimizer);

// Activation bytes freed by offloading every convolution feature map to host
// memory (the vDNN_conv policy modeled by WhatIfVdnn).
int64_t VdnnActivationSavings(const ModelGraph& model);

// Activation bytes freed by Gist's encodings: ReLU outputs stored as 1-bit
// maps (lossless) and, in lossy mode, pooling outputs at half precision.
int64_t GistActivationSavings(const ModelGraph& model, bool lossy);

// Largest batch size whose estimated footprint fits in `capacity_bytes`
// (activations scale with batch; weights/optimizer do not). Returns 0 when
// even batch 1 does not fit.
int64_t MaxBatchForCapacity(ModelId model, OptimizerKind optimizer, int64_t capacity_bytes);

}  // namespace daydream

#endif  // SRC_CORE_MEMORY_MODEL_H_

#include "src/core/critical_path.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

double Pct(TimeNs part, TimeNs total) {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(total);
}

}  // namespace

double CriticalPathReport::CpuPct() const { return Pct(cpu_time, makespan); }
double CriticalPathReport::GpuPct() const { return Pct(gpu_time, makespan); }
double CriticalPathReport::CommPct() const { return Pct(comm_time, makespan); }
double CriticalPathReport::GapPct() const { return Pct(gap_time, makespan); }

std::string CriticalPathReport::Summary() const {
  return StrFormat(
      "critical path: %.1f ms over %zu tasks — gpu %.0f%%, cpu %.0f%%, comm %.0f%%, "
      "gaps %.0f%%, other wait %.0f%%",
      ToMs(makespan), path.size(), GpuPct(), CpuPct(), CommPct(), GapPct(),
      Pct(wait_time, makespan));
}

CriticalPathReport ComputeCriticalPath(const DependencyGraph& graph, const SimResult& sim) {
  CriticalPathReport report;
  report.makespan = sim.makespan;
  if (graph.num_alive() == 0) {
    return report;
  }

  // Walk backwards from the task that finishes last. At each step, pick the
  // blocker: the dependency (or same-thread predecessor) whose completion
  // determined this task's simulated start time.
  TaskId current = kInvalidTask;
  for (TaskId id : graph.AliveTasks()) {
    if (current == kInvalidTask || sim.EndOf(id) > sim.EndOf(current)) {
      current = id;
    }
  }

  // Same-thread predecessor lookup, precomputed so each path step is O(1)
  // instead of a linear scan of the thread's sequence. One pass buckets alive
  // tasks by the graph's interned lane index (no map lookups); each lane is
  // then ordered by simulated start, which may differ from the sequence order
  // under priority scheduling.
  std::vector<TaskId> predecessor(static_cast<size_t>(graph.capacity()), kInvalidTask);
  std::vector<std::vector<TaskId>> lane_tasks(static_cast<size_t>(graph.num_lanes()));
  for (TaskId id : graph.AliveTasks()) {
    lane_tasks[static_cast<size_t>(graph.lane_of(id))].push_back(id);
  }
  for (std::vector<TaskId>& seq : lane_tasks) {
    std::sort(seq.begin(), seq.end(), [&](TaskId a, TaskId b) {
      return sim.start[static_cast<size_t>(a)] < sim.start[static_cast<size_t>(b)];
    });
    for (size_t i = 1; i < seq.size(); ++i) {
      predecessor[static_cast<size_t>(seq[i])] = seq[i - 1];
    }
  }
  auto thread_predecessor = [&](TaskId id) { return predecessor[static_cast<size_t>(id)]; };

  std::vector<TaskId> reversed;
  while (current != kInvalidTask) {
    reversed.push_back(current);
    const TimeNs start = sim.start[static_cast<size_t>(current)];
    if (start == 0) {
      break;
    }
    // Candidate blockers: dependency parents and the thread predecessor.
    TaskId blocker = kInvalidTask;
    TimeNs blocker_release = -1;
    auto consider = [&](TaskId candidate, TimeNs release) {
      if (candidate == kInvalidTask) {
        return;
      }
      if (release > blocker_release) {
        blocker_release = release;
        blocker = candidate;
      }
    };
    for (TaskId p : graph.parents(current)) {
      consider(p, sim.EndOf(p));
    }
    const TaskId prev = thread_predecessor(current);
    if (prev != kInvalidTask) {
      // Thread progress includes the predecessor's trailing gap.
      consider(prev, sim.EndOf(prev) + graph.task(prev).gap);
    }
    if (blocker == kInvalidTask) {
      break;
    }
    current = blocker;
  }
  std::reverse(reversed.begin(), reversed.end());
  report.path = std::move(reversed);

  // Attribution: task durations by type; the space between a path task's end
  // and the next path task's start is either the gap (same thread) or an
  // unexplained wait (scheduling artifacts).
  TimeNs covered = 0;
  for (size_t i = 0; i < report.path.size(); ++i) {
    const Task& t = graph.task(report.path[i]);
    switch (t.type) {
      case TaskType::kCpu:
      case TaskType::kDataLoad:
        report.cpu_time += t.duration;
        break;
      case TaskType::kGpu:
        report.gpu_time += t.duration;
        break;
      case TaskType::kComm:
        report.comm_time += t.duration;
        break;
    }
    covered += t.duration;
    if (i + 1 < report.path.size()) {
      const TimeNs hole = sim.start[static_cast<size_t>(report.path[i + 1])] -
                          sim.EndOf(report.path[i]);
      if (hole > 0) {
        const bool same_thread = t.thread == graph.task(report.path[i + 1]).thread;
        if (same_thread && hole <= t.gap) {
          report.gap_time += hole;
        } else if (same_thread) {
          report.gap_time += t.gap;
          report.wait_time += hole - t.gap;
        } else {
          report.wait_time += hole;
        }
        covered += hole;
      }
    }
  }
  // Leading idle time before the first path task (rare) counts as wait.
  if (!report.path.empty()) {
    report.wait_time += sim.start[static_cast<size_t>(report.path.front())];
  }
  return report;
}

CriticalPathReport ComputeCriticalPath(const DependencyGraph& graph) {
  return ComputeCriticalPath(graph, Simulator().Run(graph));
}

}  // namespace daydream

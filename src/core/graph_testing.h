// Test-only corruption hooks for GraphLint's property suite.
//
// GraphLint exists to catch graphs and plans that violated invariants the
// public mutation API cannot violate — a transform bug, a future refactor, a
// memory stomp. Testing the verifier therefore needs a way to *inject* each
// defect class directly into the private representation. GraphCorruptor and
// PlanCorruptor are the sanctioned back doors: friends of DependencyGraph /
// SimPlan that break exactly one invariant per method, named after the lint
// pass that must catch them.
//
// Linked from the test binaries only (graph_testing.cc is not part of the
// daydream library target); nothing in src/ may include this header outside
// of its own implementation.
#ifndef SRC_CORE_GRAPH_TESTING_H_
#define SRC_CORE_GRAPH_TESTING_H_

#include "src/core/dependency_graph.h"
#include "src/core/sim_plan.h"

namespace daydream {

class GraphCorruptor {
 public:
  // edge-integrity defects.
  static void AddRawChild(DependencyGraph* graph, TaskId from, TaskId to);  // asymmetric
  static void AddRawParent(DependencyGraph* graph, TaskId to, TaskId from);
  static void DuplicateFirstChildEdge(DependencyGraph* graph, TaskId from);
  static void AddSelfEdge(DependencyGraph* graph, TaskId id);
  // Marks `id` dead without unlinking it from edges or its thread chain:
  // dangling edges + thread-sequence "dead task linked" in one move.
  static void KillInPlace(DependencyGraph* graph, TaskId id);

  // thread-sequence defects.
  static void BreakSeqPrev(DependencyGraph* graph, TaskId id, TaskId bogus);
  static void BreakSeqNext(DependencyGraph* graph, TaskId id, TaskId bogus);
  static void SetLaneField(DependencyGraph* graph, TaskId id, int32_t lane);
  static void SetLaneTail(DependencyGraph* graph, int lane, TaskId tail);
  static void SetLaneAliveCount(DependencyGraph* graph, int lane, int count);
  // orphan-lane: unlinks `id` from its chain but leaves it alive (and fixes
  // the neighbours/lane bookkeeping so only the orphanhood is broken).
  static void DetachFromChain(DependencyGraph* graph, TaskId id);

  static int LaneOf(const DependencyGraph& graph, TaskId id);
};

class PlanCorruptor {
 public:
  // plan-stamp: pretends the plan was compiled from a different structure.
  static void BumpGraphStamp(SimPlan* plan);
  // plan-csr: desynchronizes pred_count from the successor lists.
  static void BreakPredCount(SimPlan* plan, int plan_index, int32_t count);
  // plan-csr: rewrites one successor slot.
  static void RedirectSucc(SimPlan* plan, int slot, int32_t target);
  // plan-lane: reassigns a task's lane id without touching the sequences.
  static void BreakLane(SimPlan* plan, int plan_index, int32_t lane);
  // plan-timing: edits the frozen SoA duration directly.
  static void BreakDuration(SimPlan* plan, int plan_index, TimeNs duration);

 private:
  // Plans share their structure block; corruption clones it first so other
  // plans (and the donor) stay intact.
  static SimPlan::Structure* MutableStructure(SimPlan* plan);
};

class ShardCorruptor {
 public:
  // shard-partition: reassigns one lane without touching the grouped lists.
  static void BreakLaneShard(ShardPlan* shards, int lane, int32_t shard);
  // shard-partition: desynchronizes a shard's task count.
  static void BreakTaskCount(ShardPlan* shards, int shard, int32_t count);
  // shard-edges: points one cross-shard edge at a different window entry.
  static void RedirectWindowEntry(ShardPlan* shards, int slot, int32_t pos);
  // shard-edges: rewrites a window entry's recorded source.
  static void BreakWindowSource(ShardPlan* shards, int pos, int32_t source);
  // shard-horizon: corrupts one static lower bound.
  static void BreakStaticBound(ShardPlan* shards, int plan_index, TimeNs bound);
  // shard-horizon: swaps two window bounds so the horizon moves backward.
  static void SwapWindowBounds(ShardPlan* shards, int pos_a, int pos_b);
};

}  // namespace daydream

#endif  // SRC_CORE_GRAPH_TESTING_H_

#include "src/core/task.h"

#include "src/util/string_util.h"

namespace daydream {

const char* ToString(TaskType type) {
  switch (type) {
    case TaskType::kCpu:
      return "cpu";
    case TaskType::kGpu:
      return "gpu";
    case TaskType::kDataLoad:
      return "dataload";
    case TaskType::kComm:
      return "comm";
  }
  return "?";
}

std::string ExecThread::Label() const {
  switch (kind) {
    case Kind::kCpuThread:
      return StrFormat("cpu:%d", id);
    case Kind::kGpuStream:
      return StrFormat("gpu:%d", id);
    case Kind::kCommChannel:
      return StrFormat("comm:%d", id);
  }
  return "?";
}

std::string Task::DebugString() const {
  return StrFormat("[#%d %s '%s' %s start=%.3fus dur=%.3fus gap=%.3fus layer=%d %s]", id,
                   ToString(type), name.c_str(), thread.Label().c_str(), ToUs(start),
                   ToUs(duration), ToUs(gap), layer_id, ToString(phase));
}

}  // namespace daydream

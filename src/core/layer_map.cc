#include "src/core/layer_map.h"

#include <algorithm>
#include <map>

#include "src/util/logging.h"

namespace daydream {

LayerMap LayerMap::Compute(const Trace& trace) {
  LayerMap map;
  map.assignments_.assign(trace.size(), LayerAssignment{});

  // CPU windows per thread, sorted by begin (spans of one thread are disjoint
  // because layer phases execute sequentially on the control thread).
  std::map<int, std::vector<LayerSpan>> spans_by_thread;
  for (LayerSpan& span : trace.ExtractLayerSpans()) {
    spans_by_thread[span.thread_id].push_back(span);
  }
  for (auto& [tid, spans] : spans_by_thread) {
    std::sort(spans.begin(), spans.end(),
              [](const LayerSpan& a, const LayerSpan& b) { return a.begin < b.begin; });
  }

  auto find_span = [&](int thread_id, TimeNs t) -> const LayerSpan* {
    auto it = spans_by_thread.find(thread_id);
    if (it == spans_by_thread.end()) {
      return nullptr;
    }
    const std::vector<LayerSpan>& spans = it->second;
    // Last span with begin <= t.
    auto pos = std::upper_bound(spans.begin(), spans.end(), t,
                                [](TimeNs value, const LayerSpan& s) { return value < s.begin; });
    if (pos == spans.begin()) {
      return nullptr;
    }
    --pos;
    if (t <= pos->end) {
      return &*pos;
    }
    return nullptr;
  };

  // Pass 1: CPU events -> enclosing layer window; collect launch correlations.
  std::map<int64_t, LayerAssignment> by_correlation;
  const std::vector<TraceEvent>& events = trace.events();
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (!e.is_cpu() || e.kind == EventKind::kLayerMarker) {
      continue;
    }
    const LayerSpan* span = find_span(e.thread_id, e.start);
    if (span == nullptr) {
      continue;
    }
    map.assignments_[i] = LayerAssignment{span->layer_id, span->phase};
    if (e.correlation_id != 0) {
      by_correlation[e.correlation_id] = map.assignments_[i];
    }
  }

  // Pass 2: GPU events inherit via correlation id (Figure 3).
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (!e.is_gpu() || e.correlation_id == 0) {
      continue;
    }
    auto it = by_correlation.find(e.correlation_id);
    if (it != by_correlation.end()) {
      map.assignments_[i] = it->second;
    }
  }
  return map;
}

const LayerAssignment& LayerMap::assignment(size_t event_index) const {
  DD_CHECK_LT(event_index, assignments_.size());
  return assignments_[event_index];
}

double LayerMap::GpuCoverage(const Trace& trace) const {
  int gpu = 0;
  int assigned = 0;
  const std::vector<TraceEvent>& events = trace.events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (!events[i].is_gpu()) {
      continue;
    }
    ++gpu;
    if (assignments_[i].layer_id >= 0) {
      ++assigned;
    }
  }
  return gpu == 0 ? 1.0 : static_cast<double>(assigned) / gpu;
}

}  // namespace daydream

// Runtime breakdown analysis (Figure 6).
//
// Decomposes an iteration into the paper's three components:
//   CPU-only:  CPU busy while no GPU kernel executes (total - GPU busy time),
//   GPU-only:  CPU blocked waiting on the GPU (sync APIs / blocking DtoH),
//   CPU+GPU:   both sides busy.
#ifndef SRC_CORE_BREAKDOWN_H_
#define SRC_CORE_BREAKDOWN_H_

#include <string>

#include "src/trace/trace.h"

namespace daydream {

struct RuntimeBreakdown {
  TimeNs total = 0;
  TimeNs cpu_only = 0;
  TimeNs gpu_only = 0;
  TimeNs overlap = 0;

  double CpuOnlyPct() const;
  double GpuOnlyPct() const;
  double OverlapPct() const;
  std::string Summary() const;
};

// Computes the breakdown over the worker's events (loader thread excluded).
RuntimeBreakdown ComputeBreakdown(const Trace& trace);

}  // namespace daydream

#endif  // SRC_CORE_BREAKDOWN_H_

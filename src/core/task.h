// Task: one node of Daydream's kernel-granularity dependency graph (§4.2.1).
//
// A task is the smallest unit of execution: one GPU kernel, one CUDA memory
// copy, one CPU-side API call, one data-loading job or one communication
// primitive. Every task carries its execution thread (CPU thread / GPU stream
// / communication channel), measured duration, the trailing "gap" that models
// non-CUDA CPU time, and the DNN layer it maps back to.
#ifndef SRC_CORE_TASK_H_
#define SRC_CORE_TASK_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/trace_event.h"
#include "src/util/time_units.h"

namespace daydream {

enum class TaskType {
  kCpu,       // CUDA API call or other CPU work
  kGpu,       // GPU kernel or memory copy
  kDataLoad,  // mini-batch loading
  kComm,      // communication primitive (allReduce / push / pull)
};

const char* ToString(TaskType type);

// Execution lane of a task (§4.2.1 "ExecutionThread").
struct ExecThread {
  enum class Kind { kCpuThread, kGpuStream, kCommChannel };
  Kind kind = Kind::kCpuThread;
  int id = 0;

  bool operator==(const ExecThread& other) const = default;
  // Total order so ExecThread can key maps.
  bool operator<(const ExecThread& other) const {
    if (kind != other.kind) {
      return static_cast<int>(kind) < static_cast<int>(other.kind);
    }
    return id < other.id;
  }
  std::string Label() const;

  static ExecThread Cpu(int id) { return {Kind::kCpuThread, id}; }
  static ExecThread Gpu(int id) { return {Kind::kGpuStream, id}; }
  static ExecThread Comm(int id) { return {Kind::kCommChannel, id}; }
};

using TaskId = int;
inline constexpr TaskId kInvalidTask = -1;

struct Task {
  TaskId id = kInvalidTask;
  TaskType type = TaskType::kCpu;
  std::string name;
  ExecThread thread;

  // Measured placement. `start` doubles as the earliest-start lower bound in
  // Algorithm 1 (initialized to 0 before simulation).
  TimeNs start = 0;
  TimeNs duration = 0;
  // Idle CPU time between this task and the next one on the same thread that
  // CUPTI cannot see (Python, framework dispatch) — §4.2.1 "Gap".
  TimeNs gap = 0;

  // Provenance / domain knowledge.
  ApiKind api = ApiKind::kNone;
  CommKind comm = CommKind::kNone;
  int64_t correlation_id = 0;
  int layer_id = -1;
  Phase phase = Phase::kUnknown;
  int64_t bytes = 0;

  // Free-form priority used by custom schedulers (P3's prioritization).
  int priority = 0;

  bool is_gpu() const { return type == TaskType::kGpu; }
  bool is_cpu() const { return type == TaskType::kCpu || type == TaskType::kDataLoad; }
  bool is_comm() const { return type == TaskType::kComm; }

  TimeNs end() const { return start + duration; }
  std::string DebugString() const;
};

using TaskPredicate = std::function<bool(const Task&)>;

// One bit per TaskType, for TaskQuery's type constraint.
inline constexpr uint8_t TaskTypeBit(TaskType type) {
  return static_cast<uint8_t>(uint8_t{1} << static_cast<int>(type));
}
inline constexpr uint8_t kAnyTaskType =
    TaskTypeBit(TaskType::kCpu) | TaskTypeBit(TaskType::kGpu) | TaskTypeBit(TaskType::kDataLoad) |
    TaskTypeBit(TaskType::kComm);

// A select query with its indexable structure exposed.
//
// The graph keeps secondary indexes keyed on phase and layer; a query that
// carries those fields as *data* (instead of burying them in an opaque
// closure) lets DependencyGraph::Select answer from a bucket in O(matches)
// rather than scanning every task. The predicate builders in
// src/core/transform.h produce TaskQuery values, and All() merges their
// structured keys; anything the indexes cannot serve (name substrings,
// arbitrary lambdas, Any/Not compositions) rides along in `residual`.
//
// A TaskQuery is itself a predicate (callable on a Task), so code and tests
// that apply selectors directly keep working.
struct TaskQuery {
  // Structured keys. Unset fields do not constrain the match.
  std::optional<Phase> phase;
  std::optional<int> layer_id;
  uint8_t type_mask = kAnyTaskType;
  // Contradictory keys (e.g. All of two different phases): matches nothing.
  bool impossible = false;
  // Unindexable constraints; every one must hold.
  std::vector<TaskPredicate> residual;

  TaskQuery() = default;
  // Generic fallback: an opaque predicate, evaluated by full scan.
  TaskQuery(TaskPredicate predicate) {  // NOLINT(google-explicit-constructor)
    residual.push_back(std::move(predicate));
  }

  bool Matches(const Task& t) const {
    if (impossible || (type_mask & TaskTypeBit(t.type)) == 0 ||
        (phase.has_value() && t.phase != *phase) ||
        (layer_id.has_value() && t.layer_id != *layer_id)) {
      return false;
    }
    for (const TaskPredicate& p : residual) {
      if (!p(t)) {
        return false;
      }
    }
    return true;
  }
  bool operator()(const Task& t) const { return Matches(t); }
};

}  // namespace daydream

#endif  // SRC_CORE_TASK_H_

#include "src/core/breakdown.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "src/util/string_util.h"

namespace daydream {

namespace {

constexpr int kLoaderThread = 1;

// Sorts and merges intervals, returning the union length and the merged list.
std::vector<std::pair<TimeNs, TimeNs>> MergeIntervals(std::vector<std::pair<TimeNs, TimeNs>> v) {
  std::sort(v.begin(), v.end());
  std::vector<std::pair<TimeNs, TimeNs>> merged;
  for (const auto& [a, b] : v) {
    if (a >= b) {
      continue;
    }
    if (!merged.empty() && a <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, b);
    } else {
      merged.emplace_back(a, b);
    }
  }
  return merged;
}

TimeNs UnionLength(const std::vector<std::pair<TimeNs, TimeNs>>& merged) {
  TimeNs total = 0;
  for (const auto& [a, b] : merged) {
    total += b - a;
  }
  return total;
}

TimeNs IntersectionLength(const std::vector<std::pair<TimeNs, TimeNs>>& a,
                          const std::vector<std::pair<TimeNs, TimeNs>>& b) {
  TimeNs total = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const TimeNs lo = std::max(a[i].first, b[j].first);
    const TimeNs hi = std::min(a[i].second, b[j].second);
    if (lo < hi) {
      total += hi - lo;
    }
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

bool IsWaitApi(const TraceEvent& e) {
  if (e.kind != EventKind::kRuntimeApi) {
    return false;
  }
  if (e.api == ApiKind::kDeviceSynchronize || e.api == ApiKind::kStreamSynchronize) {
    return true;
  }
  // Blocking DtoH read-backs carry long durations; treat them as waits.
  return e.api == ApiKind::kMemcpyAsync && StrContains(e.name, "dtoh");
}

}  // namespace

double RuntimeBreakdown::CpuOnlyPct() const {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(cpu_only) / static_cast<double>(total);
}
double RuntimeBreakdown::GpuOnlyPct() const {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(gpu_only) / static_cast<double>(total);
}
double RuntimeBreakdown::OverlapPct() const {
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(overlap) / static_cast<double>(total);
}

std::string RuntimeBreakdown::Summary() const {
  return StrFormat("total=%.1fms cpu_only=%.1fms (%.0f%%) gpu_only=%.1fms (%.0f%%) "
                   "overlap=%.1fms (%.0f%%)",
                   ToMs(total), ToMs(cpu_only), CpuOnlyPct(), ToMs(gpu_only), GpuOnlyPct(),
                   ToMs(overlap), OverlapPct());
}

RuntimeBreakdown ComputeBreakdown(const Trace& trace) {
  std::vector<std::pair<TimeNs, TimeNs>> gpu;
  std::vector<std::pair<TimeNs, TimeNs>> waits;
  TimeNs first = std::numeric_limits<TimeNs>::max();
  TimeNs last = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.thread_id == kLoaderThread || e.kind == EventKind::kLayerMarker) {
      continue;
    }
    first = std::min(first, e.start);
    last = std::max(last, e.end());
    if (e.is_gpu()) {
      gpu.emplace_back(e.start, e.end());
    } else if (IsWaitApi(e)) {
      waits.emplace_back(e.start, e.end());
    }
  }

  RuntimeBreakdown out;
  if (last <= first) {
    return out;
  }
  const auto gpu_merged = MergeIntervals(std::move(gpu));
  const auto wait_merged = MergeIntervals(std::move(waits));
  out.total = last - first;
  const TimeNs gpu_busy = UnionLength(gpu_merged);
  // Paper definitions: CPU-only = total - GPU busy; GPU-only = CPU waiting
  // while the GPU works; CPU+GPU = the rest of the GPU-busy time.
  out.cpu_only = out.total - gpu_busy;
  out.gpu_only = IntersectionLength(gpu_merged, wait_merged);
  out.overlap = gpu_busy - out.gpu_only;
  return out;
}

}  // namespace daydream

#include "src/core/graph_lint.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <queue>
#include <sstream>
#include <utility>

#include "src/core/sim_plan.h"
#include "src/core/transform.h"
#include "src/trace/chrome_trace.h"  // JsonEscape
#include "src/util/string_util.h"

namespace daydream {

const char* ToString(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

const LintFinding* LintReport::FirstError() const {
  for (const LintFinding& f : findings) {
    if (f.severity == LintSeverity::kError) {
      return &f;
    }
  }
  return nullptr;
}

std::string LintReport::Summary() const {
  if (num_errors == 0 && num_warnings == 0) {
    return StrFormat("clean, %zu passes", passes_run.size());
  }
  return StrFormat("%d error%s, %d warning%s (%zu passes%s)", num_errors,
                   num_errors == 1 ? "" : "s", num_warnings, num_warnings == 1 ? "" : "s",
                   passes_run.size(), truncated ? ", findings truncated" : "");
}

std::string LintReport::ToString() const {
  std::ostringstream os;
  for (const LintFinding& f : findings) {
    os << "[" << daydream::ToString(f.severity) << "] " << f.pass << ": " << f.message << "\n";
  }
  os << Summary() << "\n";
  return os.str();
}

std::string LintReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << StrFormat("  \"ok\": %s,\n  \"errors\": %d,\n  \"warnings\": %d,\n"
                  "  \"truncated\": %s,\n",
                  ok() ? "true" : "false", num_errors, num_warnings,
                  truncated ? "true" : "false");
  os << "  \"passes\": [";
  for (size_t i = 0; i < passes_run.size(); ++i) {
    os << "\"" << JsonEscape(passes_run[i]) << "\"" << (i + 1 < passes_run.size() ? ", " : "");
  }
  os << "],\n  \"findings\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    os << StrFormat("    {\"pass\": \"%s\", \"severity\": \"%s\", \"message\": \"%s\", ",
                    JsonEscape(f.pass).c_str(), daydream::ToString(f.severity),
                    JsonEscape(f.message).c_str());
    os << "\"tasks\": [";
    for (size_t t = 0; t < f.tasks.size(); ++t) {
      os << f.tasks[t] << (t + 1 < f.tasks.size() ? ", " : "");
    }
    os << StrFormat("], \"lane\": \"%s\"}%s\n", JsonEscape(f.lane).c_str(),
                    i + 1 < findings.size() ? "," : "");
  }
  os << "  ]\n}\n";
  return os.str();
}

// Collects findings and enforces the max_findings cap. Passes check full()
// at loop heads so a badly broken graph does not drown the report (or the
// runtime) in repeats of one defect.
struct GraphLint::Sink {
  explicit Sink(LintReport* report, const LintOptions& options)
      : report_(report), max_(options.max_findings) {}

  void BeginPass(const char* name) { report_->passes_run.push_back(name); }

  void Emit(LintFinding finding) {
    if (full()) {
      report_->truncated = true;
      return;
    }
    if (finding.severity == LintSeverity::kError) {
      ++report_->num_errors;
    } else {
      ++report_->num_warnings;
    }
    report_->findings.push_back(std::move(finding));
  }

  // A pass consulting full() is about to skip work when it returns true, so
  // reaching the cap marks the report truncated: findings past the cap are
  // never even computed, let alone recorded.
  bool full() const {
    if (static_cast<int>(report_->findings.size()) >= max_) {
      report_->truncated = true;
      return true;
    }
    return false;
  }

  LintReport* report_;
  int max_;
};

namespace {

// "task 12 ('vgg_conv3_fwd')" — the shape every finding names tasks in.
std::string TaskRef(const DependencyGraph& graph, TaskId id) {
  if (id < 0 || id >= static_cast<TaskId>(graph.capacity())) {
    return StrFormat("task %d (out of range)", id);
  }
  const Task& t = graph.task(id);
  if (t.name.empty()) {
    return StrFormat("task %d", id);
  }
  return StrFormat("task %d ('%s')", id, t.name.c_str());
}

LintFinding MakeFinding(const char* pass, LintSeverity severity, std::string message,
                        std::vector<TaskId> tasks = {}, std::string lane = {}) {
  LintFinding f;
  f.pass = pass;
  f.severity = severity;
  f.message = std::move(message);
  f.tasks = std::move(tasks);
  f.lane = std::move(lane);
  return f;
}

}  // namespace

void GraphLint::PassEdgeIntegrity(const DependencyGraph& graph, Sink* sink) {
  sink->BeginPass("edge-integrity");
  const TaskId capacity = static_cast<TaskId>(graph.capacity());
  std::vector<TaskId> scratch;
  for (const auto& n : graph.tasks_) {
    if (!n.alive || sink->full()) {
      continue;
    }
    const TaskId id = n.task.id;
    for (TaskId c : n.children) {
      if (c < 0 || c >= capacity || !graph.tasks_[static_cast<size_t>(c)].alive) {
        sink->Emit(MakeFinding("edge-integrity", LintSeverity::kError,
                               StrFormat("dangling edge %s -> %s: target is %s",
                                         TaskRef(graph, id).c_str(), TaskRef(graph, c).c_str(),
                                         (c < 0 || c >= capacity) ? "out of range" : "dead"),
                               {id, c}));
        continue;
      }
      if (c == id) {
        sink->Emit(MakeFinding("edge-integrity", LintSeverity::kError,
                               StrFormat("self edge on %s", TaskRef(graph, id).c_str()), {id}));
        continue;
      }
      // count == 0 means the back-link is missing; a count above 1 is a
      // duplicated-but-symmetric edge, which the duplicate check below
      // reports under its own name.
      const auto& back = graph.tasks_[static_cast<size_t>(c)].parents;
      if (std::count(back.begin(), back.end(), id) == 0) {
        sink->Emit(MakeFinding(
            "edge-integrity", LintSeverity::kError,
            StrFormat("asymmetric edge %s -> %s: child does not record the parent",
                      TaskRef(graph, id).c_str(), TaskRef(graph, c).c_str()),
            {id, c}));
      }
    }
    for (TaskId p : n.parents) {
      if (p < 0 || p >= capacity || !graph.tasks_[static_cast<size_t>(p)].alive) {
        sink->Emit(MakeFinding("edge-integrity", LintSeverity::kError,
                               StrFormat("dangling reverse edge %s <- %s: parent is %s",
                                         TaskRef(graph, id).c_str(), TaskRef(graph, p).c_str(),
                                         (p < 0 || p >= capacity) ? "out of range" : "dead"),
                               {id, p}));
        continue;
      }
      const auto& fwd = graph.tasks_[static_cast<size_t>(p)].children;
      if (std::count(fwd.begin(), fwd.end(), id) == 0) {
        sink->Emit(MakeFinding(
            "edge-integrity", LintSeverity::kError,
            StrFormat("asymmetric edge %s -> %s: parent does not record the child",
                      TaskRef(graph, p).c_str(), TaskRef(graph, id).c_str()),
            {p, id}));
      }
    }
    // Duplicate check over a sorted scratch copy: O(d log d), usable on
    // post-Remove high-fanout nodes.
    scratch.assign(n.children.begin(), n.children.end());
    std::sort(scratch.begin(), scratch.end());
    const auto dup = std::adjacent_find(scratch.begin(), scratch.end());
    if (dup != scratch.end()) {
      sink->Emit(MakeFinding("edge-integrity", LintSeverity::kError,
                             StrFormat("duplicate edge %s -> %s", TaskRef(graph, id).c_str(),
                                       TaskRef(graph, *dup).c_str()),
                             {id, *dup}));
    }
    scratch.assign(n.parents.begin(), n.parents.end());
    std::sort(scratch.begin(), scratch.end());
    const auto rdup = std::adjacent_find(scratch.begin(), scratch.end());
    if (rdup != scratch.end()) {
      sink->Emit(MakeFinding("edge-integrity", LintSeverity::kError,
                             StrFormat("duplicate reverse edge %s <- %s",
                                       TaskRef(graph, id).c_str(), TaskRef(graph, *rdup).c_str()),
                             {id, *rdup}));
    }
  }
}

void GraphLint::PassAcyclic(const DependencyGraph& graph, Sink* sink, int* starved) {
  sink->BeginPass("acyclic");
  *starved = 0;
  const size_t capacity = graph.tasks_.size();

  // Kahn count first: cheap, and the processed count sizes the starved set
  // for schedule-smell whether or not the DFS below finds a printable cycle.
  {
    std::vector<int32_t> refs(capacity, 0);
    std::queue<TaskId> ready;
    int processed = 0;
    for (const auto& n : graph.tasks_) {
      if (!n.alive) {
        continue;
      }
      refs[static_cast<size_t>(n.task.id)] = static_cast<int32_t>(n.parents.size());
      if (n.parents.empty()) {
        ready.push(n.task.id);
      }
    }
    while (!ready.empty()) {
      const TaskId id = ready.front();
      ready.pop();
      ++processed;
      for (TaskId c : graph.tasks_[static_cast<size_t>(id)].children) {
        if (c < 0 || c >= static_cast<TaskId>(capacity) ||
            !graph.tasks_[static_cast<size_t>(c)].alive) {
          continue;  // dangling edges are edge-integrity findings
        }
        if (--refs[static_cast<size_t>(c)] == 0) {
          ready.push(c);
        }
      }
    }
    *starved = graph.num_alive_ - processed;
    if (*starved == 0) {
      return;  // acyclic
    }
  }

  // There is a cycle: find one concrete path with an iterative DFS (explicit
  // stack; cluster graphs are far too deep for recursion).
  std::vector<uint8_t> color(capacity, 0);  // 0 white / 1 on stack / 2 done
  struct Frame {
    TaskId id;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  for (const auto& root : graph.tasks_) {
    if (!root.alive || color[static_cast<size_t>(root.task.id)] != 0) {
      continue;
    }
    stack.clear();
    stack.push_back({root.task.id});
    color[static_cast<size_t>(root.task.id)] = 1;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& children = graph.tasks_[static_cast<size_t>(frame.id)].children;
      if (frame.next_child < children.size()) {
        const TaskId c = children[frame.next_child++];
        if (c < 0 || c >= static_cast<TaskId>(capacity) ||
            !graph.tasks_[static_cast<size_t>(c)].alive) {
          continue;
        }
        if (color[static_cast<size_t>(c)] == 0) {
          color[static_cast<size_t>(c)] = 1;
          stack.push_back({c});
          continue;
        }
        if (color[static_cast<size_t>(c)] != 1) {
          continue;  // finished subtree
        }
        // Found a back edge: the cycle is c .. top-of-stack, closed by c.
        std::vector<TaskId> cycle;
        size_t from = 0;
        while (from < stack.size() && stack[from].id != c) {
          ++from;
        }
        for (size_t i = from; i < stack.size(); ++i) {
          cycle.push_back(stack[i].id);
        }
        cycle.push_back(c);

        std::ostringstream path;
        const size_t kMaxShown = 12;
        for (size_t i = 0; i < cycle.size(); ++i) {
          if (cycle.size() > kMaxShown + 2 && i == kMaxShown) {
            path << " -> ... (" << cycle.size() - kMaxShown - 1 << " more)";
            i = cycle.size() - 2;  // resume at the closing task
            continue;
          }
          if (i > 0) {
            path << " -> ";
          }
          path << TaskRef(graph, cycle[i]);
        }
        // Message built before std::move(cycle): the two are arguments of the
        // same call, and argument evaluation order is unspecified.
        std::string message =
            StrFormat("dependency cycle of length %zu: %s", cycle.size() - 1,
                      path.str().c_str());
        sink->Emit(MakeFinding("acyclic", LintSeverity::kError, std::move(message),
                               std::move(cycle)));
        return;  // one concrete path explains the defect; Kahn sized the rest
      }
      color[static_cast<size_t>(frame.id)] = 2;
      stack.pop_back();
    }
  }
}

void GraphLint::PassThreadSequence(const DependencyGraph& graph, Sink* sink) {
  sink->BeginPass("thread-sequence");
  sink->BeginPass("orphan-lane");
  const TaskId capacity = static_cast<TaskId>(graph.tasks_.size());
  std::vector<uint8_t> on_chain(static_cast<size_t>(capacity), 0);

  for (size_t lane = 0; lane < graph.threads_.size(); ++lane) {
    const auto& seq = graph.threads_[lane];
    const std::string label = seq.thread.Label();
    int count = 0;
    TaskId prev = kInvalidTask;
    bool walk_ok = true;
    for (TaskId id = seq.head; id != kInvalidTask;) {
      if (id < 0 || id >= capacity) {
        sink->Emit(MakeFinding("thread-sequence", LintSeverity::kError,
                               StrFormat("sequence link on lane %s points at %s", label.c_str(),
                                         TaskRef(graph, id).c_str()),
                               {id}, label));
        walk_ok = false;
        break;
      }
      if (count > graph.num_alive_) {
        sink->Emit(MakeFinding(
            "thread-sequence", LintSeverity::kError,
            StrFormat("sequence cycle on lane %s (chain revisits %s)", label.c_str(),
                      TaskRef(graph, id).c_str()),
            {id}, label));
        walk_ok = false;
        break;
      }
      const auto& n = graph.tasks_[static_cast<size_t>(id)];
      if (!n.alive) {
        sink->Emit(MakeFinding("thread-sequence", LintSeverity::kError,
                               StrFormat("dead %s still linked on lane %s",
                                         TaskRef(graph, id).c_str(), label.c_str()),
                               {id}, label));
      } else if (on_chain[static_cast<size_t>(id)] != 0) {
        sink->Emit(MakeFinding("thread-sequence", LintSeverity::kError,
                               StrFormat("%s linked on more than one lane chain",
                                         TaskRef(graph, id).c_str()),
                               {id}, label));
      } else {
        on_chain[static_cast<size_t>(id)] = 1;
      }
      if (n.lane != static_cast<int32_t>(lane) || !(n.task.thread == seq.thread)) {
        sink->Emit(MakeFinding(
            "thread-sequence", LintSeverity::kError,
            StrFormat("%s filed under the wrong thread: chained on lane %s but records "
                      "lane %d / thread %s",
                      TaskRef(graph, id).c_str(), label.c_str(), n.lane,
                      n.task.thread.Label().c_str()),
            {id}, label));
      }
      if (n.seq_prev != prev) {
        sink->Emit(MakeFinding(
            "thread-sequence", LintSeverity::kError,
            StrFormat("asymmetric splice at %s on lane %s: prev link is %d, chain "
                      "predecessor is %d",
                      TaskRef(graph, id).c_str(), label.c_str(), n.seq_prev, prev),
            {id}, label));
      }
      prev = id;
      id = n.seq_next;
      ++count;
      if (sink->full()) {
        return;
      }
    }
    if (!walk_ok) {
      continue;
    }
    if (prev != seq.tail) {
      sink->Emit(MakeFinding("thread-sequence", LintSeverity::kError,
                             StrFormat("stale tail on lane %s: chain ends at %d, tail records %d",
                                       label.c_str(), prev, seq.tail),
                             {}, label));
    }
    if (count != seq.alive_count) {
      sink->Emit(MakeFinding(
          "thread-sequence", LintSeverity::kError,
          StrFormat("alive-count drift on lane %s: chain holds %d tasks, lane records %d",
                    label.c_str(), count, seq.alive_count),
          {}, label));
    }
    if (seq.alive_count > 0 && count == 0) {
      sink->Emit(MakeFinding(
          "orphan-lane", LintSeverity::kError,
          StrFormat("lane %s records %d alive tasks but its chain is empty", label.c_str(),
                    seq.alive_count),
          {}, label));
    }
  }

  for (const auto& n : graph.tasks_) {
    if (sink->full()) {
      return;
    }
    if (n.alive && on_chain[static_cast<size_t>(n.task.id)] == 0) {
      sink->Emit(MakeFinding(
          "orphan-lane", LintSeverity::kError,
          StrFormat("alive %s (thread %s) is not linked on any lane chain",
                    TaskRef(graph, n.task.id).c_str(), n.task.thread.Label().c_str()),
          {n.task.id}, n.task.thread.Label()));
    }
  }
}

void GraphLint::PassDurationSanity(const DependencyGraph& graph, Sink* sink) {
  sink->BeginPass("duration-sanity");
  for (const auto& n : graph.tasks_) {
    if (!n.alive) {
      continue;
    }
    if (sink->full()) {
      return;
    }
    if (n.task.duration < 0) {
      sink->Emit(MakeFinding("duration-sanity", LintSeverity::kError,
                             StrFormat("%s has negative duration %lld ns",
                                       TaskRef(graph, n.task.id).c_str(),
                                       static_cast<long long>(n.task.duration)),
                             {n.task.id}));
    }
    if (n.task.gap < 0) {
      sink->Emit(MakeFinding("duration-sanity", LintSeverity::kError,
                             StrFormat("%s has negative gap %lld ns",
                                       TaskRef(graph, n.task.id).c_str(),
                                       static_cast<long long>(n.task.gap)),
                             {n.task.id}));
    }
  }
}

void GraphLint::PassTimestampMonotone(const DependencyGraph& graph, Sink* sink) {
  sink->BeginPass("timestamp-monotone");
  const TaskId capacity = static_cast<TaskId>(graph.tasks_.size());
  for (size_t lane = 0; lane < graph.threads_.size(); ++lane) {
    const auto& seq = graph.threads_[lane];
    TaskId prev_id = kInvalidTask;
    TimeNs prev_start = 0;
    int count = 0;
    for (TaskId id = seq.head; id != kInvalidTask; id = graph.tasks_[static_cast<size_t>(id)].seq_next) {
      // Bounded, validity-guarded walk: broken splices are thread-sequence
      // findings, not a reason to loop or crash here.
      if (id < 0 || id >= capacity || ++count > graph.num_alive_ || sink->full()) {
        break;
      }
      const Task& t = graph.tasks_[static_cast<size_t>(id)].task;
      // start == 0 is the unmeasured shape (transform-inserted tasks); the
      // simulator assigns their placement, so only measured starts are held
      // to the profile's per-thread order.
      if (t.start == 0) {
        continue;
      }
      if (prev_id != kInvalidTask && t.start < prev_start) {
        sink->Emit(MakeFinding(
            "timestamp-monotone", LintSeverity::kWarning,
            StrFormat("measured start goes backward on lane %s: %s at %lld ns follows %s "
                      "at %lld ns",
                      seq.thread.Label().c_str(), TaskRef(graph, id).c_str(),
                      static_cast<long long>(t.start), TaskRef(graph, prev_id).c_str(),
                      static_cast<long long>(prev_start)),
            {prev_id, id}, seq.thread.Label()));
      }
      prev_id = id;
      prev_start = t.start;
    }
  }
}

void GraphLint::PassIterationAnchor(const DependencyGraph& graph, Sink* sink) {
  sink->BeginPass("iteration-anchor");
  const std::vector<TimeNs> starts = IterationStarts(graph);
  if (starts.size() <= 1) {
    return;  // single-iteration profile: no windows to violate
  }
  auto window_of = [&starts](TimeNs start) {
    const auto it = std::upper_bound(starts.begin(), starts.end(), start);
    return static_cast<size_t>(it - starts.begin()) - 1;
  };
  const TaskId capacity = static_cast<TaskId>(graph.tasks_.size());
  for (const auto& n : graph.tasks_) {
    if (!n.alive || n.task.start == 0) {
      continue;
    }
    if (sink->full()) {
      return;
    }
    const size_t from_window = window_of(n.task.start);
    for (TaskId c : n.children) {
      if (c < 0 || c >= capacity || !graph.tasks_[static_cast<size_t>(c)].alive) {
        continue;  // edge-integrity territory
      }
      const Task& child = graph.tasks_[static_cast<size_t>(c)].task;
      if (child.start == 0) {
        continue;  // unmeasured (inserted) tasks have no window yet
      }
      const size_t to_window = window_of(child.start);
      if (from_window > to_window) {
        sink->Emit(MakeFinding(
            "iteration-anchor", LintSeverity::kError,
            StrFormat("edge %s -> %s points backward across iteration windows (%zu -> %zu): "
                      "anchors must be resolved per IterationStarts window",
                      TaskRef(graph, n.task.id).c_str(), TaskRef(graph, c).c_str(), from_window,
                      to_window),
            {n.task.id, c}));
      }
    }
  }
}

void GraphLint::PassScheduleSmell(const DependencyGraph& graph, int starved, Sink* sink) {
  sink->BeginPass("schedule-smell");
  if (starved > 0) {
    sink->Emit(MakeFinding(
        "schedule-smell", LintSeverity::kError,
        StrFormat("%d task%s can never become ready (blocked behind a cycle); simulation "
                  "would stall",
                  starved, starved == 1 ? "" : "s")));
  }
  for (const auto& n : graph.tasks_) {
    if (!n.alive) {
      continue;
    }
    if (sink->full()) {
      return;
    }
    if (n.task.is_comm() && n.task.bytes > 0 && n.task.duration == 0) {
      sink->Emit(MakeFinding(
          "schedule-smell", LintSeverity::kWarning,
          StrFormat("zero-duration communication %s carries %lld priced bytes on lane %s "
                    "(mispriced link?)",
                    TaskRef(graph, n.task.id).c_str(), static_cast<long long>(n.task.bytes),
                    n.task.thread.Label().c_str()),
          {n.task.id}, n.task.thread.Label()));
    }
  }
}

LintReport GraphLint::LintStructure(const DependencyGraph& graph, const LintOptions& options) {
  LintReport report;
  Sink sink(&report, options);
  PassEdgeIntegrity(graph, &sink);
  PassThreadSequence(graph, &sink);
  int starved = 0;
  PassAcyclic(graph, &sink, &starved);
  return report;
}

LintReport GraphLint::LintGraph(const DependencyGraph& graph, const LintOptions& options) {
  LintReport report;
  Sink sink(&report, options);
  PassEdgeIntegrity(graph, &sink);
  PassThreadSequence(graph, &sink);
  int starved = 0;
  PassAcyclic(graph, &sink, &starved);
  PassDurationSanity(graph, &sink);
  if (options.timing_passes) {
    PassTimestampMonotone(graph, &sink);
    PassIterationAnchor(graph, &sink);
  }
  if (options.smell_passes) {
    PassScheduleSmell(graph, starved, &sink);
  }
  return report;
}

void GraphLint::PassPlanStamp(const SimPlan& plan, const DependencyGraph& graph, Sink* sink,
                              bool* stale) {
  sink->BeginPass("plan-stamp");
  *stale = true;
  if (plan.empty()) {
    sink->Emit(MakeFinding("plan-stamp", LintSeverity::kError,
                           "plan is empty (never compiled)"));
    return;
  }
  const auto& s = *plan.structure_;
  if (s.graph_stamp != graph.structure_stamp()) {
    sink->Emit(MakeFinding(
        "plan-stamp", LintSeverity::kError,
        StrFormat("stale structure stamp: plan compiled at stamp %llu, graph is at %llu — "
                  "the graph mutated structurally after Compile (Retime cannot cover this)",
                  static_cast<unsigned long long>(s.graph_stamp),
                  static_cast<unsigned long long>(graph.structure_stamp()))));
    return;
  }
  if (s.capacity != graph.capacity()) {
    sink->Emit(MakeFinding("plan-stamp", LintSeverity::kError,
                           StrFormat("capacity mismatch: plan froze %d task slots, graph has %d",
                                     s.capacity, graph.capacity())));
    return;
  }
  if (static_cast<int>(s.task_ids.size()) != graph.num_alive()) {
    sink->Emit(MakeFinding(
        "plan-stamp", LintSeverity::kError,
        StrFormat("task-set mismatch: plan holds %zu tasks, graph has %d alive",
                  s.task_ids.size(), graph.num_alive())));
    return;
  }
  bool ids_ok = true;
  for (size_t i = 0; i < s.task_ids.size(); ++i) {
    if (!graph.alive(s.task_ids[i]) || (i > 0 && s.task_ids[i] <= s.task_ids[i - 1])) {
      sink->Emit(MakeFinding(
          "plan-stamp", LintSeverity::kError,
          StrFormat("plan index %zu maps to %s, which is %s", i,
                    TaskRef(graph, s.task_ids[i]).c_str(),
                    graph.alive(s.task_ids[i]) ? "out of ascending id order" : "not alive"),
          {s.task_ids[i]}));
      ids_ok = false;
      break;
    }
  }
  *stale = !ids_ok;
}

void GraphLint::PassPlanCsr(const SimPlan& plan, const DependencyGraph& graph, bool stale,
                            Sink* sink) {
  sink->BeginPass("plan-csr");
  if (plan.empty()) {
    return;  // plan-stamp already said so
  }
  const auto& s = *plan.structure_;
  const size_t n = s.task_ids.size();
  if (s.succ_offset.size() != n + 1 || s.pred_count.size() != n || plan.duration_.size() != n ||
      plan.gap_.size() != n || plan.order_key_.size() != n) {
    sink->Emit(MakeFinding(
        "plan-csr", LintSeverity::kError,
        StrFormat("array sizes disagree: %zu tasks but succ_offset %zu, pred_count %zu, "
                  "duration %zu, gap %zu, order_key %zu",
                  n, s.succ_offset.size(), s.pred_count.size(), plan.duration_.size(),
                  plan.gap_.size(), plan.order_key_.size())));
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (s.succ_offset[i] > s.succ_offset[i + 1]) {
      sink->Emit(MakeFinding("plan-csr", LintSeverity::kError,
                             StrFormat("succ_offset not monotone at plan index %zu (%d > %d)", i,
                                       s.succ_offset[i], s.succ_offset[i + 1])));
      return;
    }
  }
  if (s.succ_offset[0] != 0 || static_cast<size_t>(s.succ_offset[n]) != s.succ.size()) {
    sink->Emit(MakeFinding("plan-csr", LintSeverity::kError,
                           StrFormat("succ_offset does not cover succ: [%d, %d] vs %zu entries",
                                     s.succ_offset[0], s.succ_offset[n], s.succ.size())));
    return;
  }

  // Successor symmetry: the indegree implied by the successor lists must be
  // exactly pred_count, and the zero-indegree set must be initial_ready.
  std::vector<int32_t> indegree(n, 0);
  for (size_t i = 0; i < n && !sink->full(); ++i) {
    for (int32_t slot = s.succ_offset[i]; slot < s.succ_offset[i + 1]; ++slot) {
      const int32_t target = s.succ[static_cast<size_t>(slot)];
      if (target < 0 || target >= static_cast<int32_t>(n)) {
        sink->Emit(MakeFinding(
            "plan-csr", LintSeverity::kError,
            StrFormat("successor of plan index %zu (%s) is out of range: %d", i,
                      TaskRef(graph, s.task_ids[i]).c_str(), target),
            {s.task_ids[i]}));
        continue;
      }
      ++indegree[static_cast<size_t>(target)];
    }
  }
  for (size_t i = 0; i < n && !sink->full(); ++i) {
    if (indegree[i] != s.pred_count[i]) {
      sink->Emit(MakeFinding(
          "plan-csr", LintSeverity::kError,
          StrFormat("pred-count asymmetry at plan index %zu (%s): successor lists imply "
                    "indegree %d, pred_count records %d",
                    i, TaskRef(graph, s.task_ids[i]).c_str(), indegree[i], s.pred_count[i]),
          {s.task_ids[i]}));
    }
  }
  std::vector<int32_t> expected_ready;
  for (size_t i = 0; i < n; ++i) {
    if (s.pred_count[i] == 0) {
      expected_ready.push_back(static_cast<int32_t>(i));
    }
  }
  if (expected_ready != s.initial_ready) {
    sink->Emit(MakeFinding(
        "plan-csr", LintSeverity::kError,
        StrFormat("initial_ready (%zu entries) is not the zero-indegree set (%zu entries)",
                  s.initial_ready.size(), expected_ready.size())));
  }
  for (size_t i = 0; i < n && !sink->full(); ++i) {
    if (static_cast<uint32_t>(plan.order_key_[i]) != static_cast<uint32_t>(i)) {
      sink->Emit(MakeFinding(
          "plan-csr", LintSeverity::kError,
          StrFormat("order key at plan index %zu does not embed its own index (low bits %u)", i,
                    static_cast<uint32_t>(plan.order_key_[i]))));
    }
  }

  // Cross-check against the graph's adjacency (only meaningful when the plan
  // still describes this graph).
  if (stale) {
    return;
  }
  std::vector<int32_t> plan_of(static_cast<size_t>(graph.capacity()), -1);
  for (size_t i = 0; i < n; ++i) {
    plan_of[static_cast<size_t>(s.task_ids[i])] = static_cast<int32_t>(i);
  }
  std::vector<int32_t> expected;
  std::vector<int32_t> actual;
  for (size_t i = 0; i < n && !sink->full(); ++i) {
    expected.clear();
    for (TaskId c : graph.children(s.task_ids[i])) {
      expected.push_back(plan_of[static_cast<size_t>(c)]);
    }
    actual.assign(s.succ.begin() + s.succ_offset[i], s.succ.begin() + s.succ_offset[i + 1]);
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    if (expected != actual) {
      sink->Emit(MakeFinding(
          "plan-csr", LintSeverity::kError,
          StrFormat("successor list of plan index %zu (%s) disagrees with the graph's "
                    "children (%zu vs %zu edges)",
                    i, TaskRef(graph, s.task_ids[i]).c_str(), actual.size(), expected.size()),
          {s.task_ids[i]}));
    }
  }
}

void GraphLint::PassPlanLane(const SimPlan& plan, const DependencyGraph& graph, bool stale,
                             Sink* sink) {
  sink->BeginPass("plan-lane");
  if (plan.empty()) {
    return;
  }
  const auto& s = *plan.structure_;
  const size_t n = s.task_ids.size();
  const int32_t num_lanes = static_cast<int32_t>(s.lane_threads.size());
  if (s.lane.size() != n || s.lane_offset.size() != static_cast<size_t>(num_lanes) + 1 ||
      s.lane_tasks.size() != n) {
    sink->Emit(MakeFinding(
        "plan-lane", LintSeverity::kError,
        StrFormat("lane array sizes disagree: %zu tasks / %d lanes but lane %zu, "
                  "lane_offset %zu, lane_tasks %zu",
                  n, num_lanes, s.lane.size(), s.lane_offset.size(), s.lane_tasks.size())));
    return;
  }
  std::vector<uint8_t> seen(n, 0);
  for (int32_t lane = 0; lane < num_lanes && !sink->full(); ++lane) {
    if (s.lane_offset[static_cast<size_t>(lane)] > s.lane_offset[static_cast<size_t>(lane) + 1]) {
      sink->Emit(MakeFinding("plan-lane", LintSeverity::kError,
                             StrFormat("lane_offset not monotone at lane %d", lane), {},
                             s.lane_threads[static_cast<size_t>(lane)].Label()));
      return;
    }
    int32_t prev = -1;
    for (int32_t slot = s.lane_offset[static_cast<size_t>(lane)];
         slot < s.lane_offset[static_cast<size_t>(lane) + 1]; ++slot) {
      const int32_t index = s.lane_tasks[static_cast<size_t>(slot)];
      const std::string label = s.lane_threads[static_cast<size_t>(lane)].Label();
      if (index < 0 || index >= static_cast<int32_t>(n)) {
        sink->Emit(MakeFinding("plan-lane", LintSeverity::kError,
                               StrFormat("lane %s sequence entry out of range: %d",
                                         label.c_str(), index),
                               {}, label));
        continue;
      }
      if (seen[static_cast<size_t>(index)]++ != 0) {
        sink->Emit(MakeFinding(
            "plan-lane", LintSeverity::kError,
            StrFormat("plan index %d (%s) appears in more than one lane sequence", index,
                      TaskRef(graph, s.task_ids[static_cast<size_t>(index)]).c_str()),
            {s.task_ids[static_cast<size_t>(index)]}, label));
      }
      if (s.lane[static_cast<size_t>(index)] != lane) {
        sink->Emit(MakeFinding(
            "plan-lane", LintSeverity::kError,
            StrFormat("plan index %d is sequenced on lane %s but records lane %d", index,
                      label.c_str(), s.lane[static_cast<size_t>(index)]),
            {s.task_ids[static_cast<size_t>(index)]}, label));
      }
      if (prev >= index) {
        sink->Emit(MakeFinding(
            "plan-lane", LintSeverity::kError,
            StrFormat("lane %s sequence is not ascending at plan index %d", label.c_str(),
                      index),
            {}, label));
      }
      prev = index;
    }
  }
  if (static_cast<size_t>(s.lane_offset[static_cast<size_t>(num_lanes)]) != n) {
    sink->Emit(MakeFinding(
        "plan-lane", LintSeverity::kError,
        StrFormat("lane sequences cover %d tasks, plan holds %zu",
                  s.lane_offset[static_cast<size_t>(num_lanes)], n)));
  }
  if (stale) {
    return;
  }
  for (size_t i = 0; i < n && !sink->full(); ++i) {
    if (graph.lane_of(s.task_ids[i]) != static_cast<int>(s.lane[i])) {
      sink->Emit(MakeFinding(
          "plan-lane", LintSeverity::kError,
          StrFormat("%s changed lanes since compile: plan records %d, graph says %d",
                    TaskRef(graph, s.task_ids[i]).c_str(), s.lane[i],
                    graph.lane_of(s.task_ids[i])),
          {s.task_ids[i]}));
    }
  }
}

void GraphLint::PassPlanTiming(const SimPlan& plan, const DependencyGraph& graph, bool stale,
                               Sink* sink) {
  sink->BeginPass("plan-timing");
  if (plan.empty() || stale) {
    return;
  }
  const auto& s = *plan.structure_;
  const size_t n = std::min(s.task_ids.size(), plan.duration_.size());
  for (size_t i = 0; i < n; ++i) {
    if (sink->full()) {
      return;
    }
    const Task& t = graph.task(s.task_ids[i]);
    if (plan.duration_[i] != t.duration || plan.gap_[i] != t.gap) {
      sink->Emit(MakeFinding(
          "plan-timing", LintSeverity::kError,
          StrFormat("stale timing for %s: plan holds duration %lld / gap %lld, graph says "
                    "%lld / %lld — Retime the plan after timing edits",
                    TaskRef(graph, s.task_ids[i]).c_str(),
                    static_cast<long long>(plan.duration_[i]),
                    static_cast<long long>(plan.gap_[i]), static_cast<long long>(t.duration),
                    static_cast<long long>(t.gap)),
          {s.task_ids[i]}));
    }
  }
}

LintReport GraphLint::LintPlan(const SimPlan& plan, const DependencyGraph& graph,
                               const LintOptions& options) {
  LintReport report;
  Sink sink(&report, options);
  bool stale = false;
  PassPlanStamp(plan, graph, &sink, &stale);
  PassPlanCsr(plan, graph, stale, &sink);
  PassPlanLane(plan, graph, stale, &sink);
  PassPlanTiming(plan, graph, stale, &sink);
  return report;
}

void GraphLint::PassShardPartition(const ShardPlan& shards, Sink* sink, bool* broken) {
  sink->BeginPass("shard-partition");
  *broken = true;
  if (shards.empty()) {
    sink->Emit(MakeFinding("shard-partition", LintSeverity::kError,
                           "shard plan is empty (never compiled)"));
    return;
  }
  const SimPlan::Structure& s = *shards.plan_->structure_;
  const size_t num_lanes = s.lane_threads.size();
  const int num_shards = shards.num_shards_;
  if (num_shards < 1) {
    sink->Emit(MakeFinding("shard-partition", LintSeverity::kError,
                           StrFormat("invalid shard count %d", num_shards)));
    return;
  }
  if (shards.shard_of_lane_.size() != num_lanes ||
      shards.shard_lane_offset_.size() != static_cast<size_t>(num_shards) + 1 ||
      shards.shard_lanes_.size() != num_lanes ||
      shards.shard_task_count_.size() != static_cast<size_t>(num_shards)) {
    sink->Emit(MakeFinding(
        "shard-partition", LintSeverity::kError,
        StrFormat("partition arrays disagree with the plan: %zu lane assignments, %zu grouped "
                  "lanes, %zu offsets, %zu task counts for %zu lanes / %d shards",
                  shards.shard_of_lane_.size(), shards.shard_lanes_.size(),
                  shards.shard_lane_offset_.size(), shards.shard_task_count_.size(), num_lanes,
                  num_shards)));
    return;
  }
  if (shards.shard_lane_offset_.front() != 0 ||
      shards.shard_lane_offset_.back() != static_cast<int32_t>(num_lanes)) {
    sink->Emit(MakeFinding("shard-partition", LintSeverity::kError,
                           StrFormat("shard lane offsets span [%d, %d), expected [0, %zu)",
                                     shards.shard_lane_offset_.front(),
                                     shards.shard_lane_offset_.back(), num_lanes)));
    return;
  }
  bool ok = true;
  std::vector<uint8_t> seen(num_lanes, 0);
  for (int b = 0; b < num_shards && ok; ++b) {
    const int32_t begin = shards.shard_lane_offset_[static_cast<size_t>(b)];
    const int32_t end = shards.shard_lane_offset_[static_cast<size_t>(b) + 1];
    if (end < begin) {
      sink->Emit(MakeFinding("shard-partition", LintSeverity::kError,
                             StrFormat("shard %d has a decreasing lane range [%d, %d)", b,
                                       begin, end)));
      ok = false;
      break;
    }
    int64_t tasks = 0;
    for (int32_t j = begin; j < end; ++j) {
      const int32_t lane = shards.shard_lanes_[static_cast<size_t>(j)];
      if (lane < 0 || static_cast<size_t>(lane) >= num_lanes ||
          seen[static_cast<size_t>(lane)] != 0 ||
          shards.shard_of_lane_[static_cast<size_t>(lane)] != b) {
        sink->Emit(MakeFinding(
            "shard-partition", LintSeverity::kError,
            StrFormat("lane %d in shard %d's group is %s — the lane partition is not a "
                      "disjoint cover",
                      lane, b,
                      (lane < 0 || static_cast<size_t>(lane) >= num_lanes) ? "out of range"
                      : seen[static_cast<size_t>(lane)] != 0              ? "listed twice"
                                                  : "assigned to a different shard"),
            {}, lane >= 0 && static_cast<size_t>(lane) < num_lanes
                    ? s.lane_threads[static_cast<size_t>(lane)].Label()
                    : std::string()));
        ok = false;
        break;
      }
      seen[static_cast<size_t>(lane)] = 1;
      tasks += s.lane_offset[static_cast<size_t>(lane) + 1] -
               s.lane_offset[static_cast<size_t>(lane)];
    }
    if (ok && tasks != shards.shard_task_count_[static_cast<size_t>(b)]) {
      sink->Emit(MakeFinding(
          "shard-partition", LintSeverity::kError,
          StrFormat("shard %d claims %d tasks but its lanes hold %lld", b,
                    shards.shard_task_count_[static_cast<size_t>(b)],
                    static_cast<long long>(tasks))));
      ok = false;
    }
  }
  // A disjoint cover of equal size covers everything; no second scan needed.
  *broken = !ok;
}

void GraphLint::PassShardEdges(const ShardPlan& shards, bool broken, Sink* sink) {
  sink->BeginPass("shard-edges");
  if (broken) {
    return;  // partition unusable: every cross-check below would misfire
  }
  const SimPlan::Structure& s = *shards.plan_->structure_;
  const size_t n = s.task_ids.size();
  if (shards.edge_window_pos_.size() != s.succ.size() ||
      shards.window_end_.size() != shards.window_source_.size() ||
      shards.window_offset_.size() != static_cast<size_t>(shards.num_shards_) + 1 ||
      shards.window_offset_.back() != static_cast<int32_t>(shards.window_end_.size())) {
    sink->Emit(MakeFinding(
        "shard-edges", LintSeverity::kError,
        StrFormat("window arrays disagree: %zu edge positions for %zu CSR slots, %zu bounds, "
                  "%zu sources, offsets end at %d",
                  shards.edge_window_pos_.size(), s.succ.size(), shards.window_end_.size(),
                  shards.window_source_.size(),
                  shards.window_offset_.empty() ? -1 : shards.window_offset_.back())));
    return;
  }
  std::vector<uint8_t> used(shards.window_end_.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    if (sink->full()) {
      return;
    }
    const int32_t si = shards.shard_of_lane_[static_cast<size_t>(s.lane[i])];
    for (int32_t k = s.succ_offset[i]; k < s.succ_offset[i + 1]; ++k) {
      const size_t ci = static_cast<size_t>(s.succ[static_cast<size_t>(k)]);
      const int32_t sc = shards.shard_of_lane_[static_cast<size_t>(s.lane[ci])];
      const int32_t pos = shards.edge_window_pos_[static_cast<size_t>(k)];
      if (sc == si) {
        if (pos != -1) {
          sink->Emit(MakeFinding(
              "shard-edges", LintSeverity::kError,
              StrFormat("intra-shard edge task %d -> task %d carries window entry %d — "
                        "cross-shard edge lists do not match the CSR",
                        s.task_ids[i], s.task_ids[ci], pos),
              {s.task_ids[i], s.task_ids[ci]}));
        }
        continue;
      }
      const int32_t wbegin = shards.window_offset_[static_cast<size_t>(sc)];
      const int32_t wend = shards.window_offset_[static_cast<size_t>(sc) + 1];
      if (pos < wbegin || pos >= wend) {
        sink->Emit(MakeFinding(
            "shard-edges", LintSeverity::kError,
            StrFormat("cross-shard edge (plan %zu -> %zu, shard %d -> %d) has window entry %d "
                      "outside the target's range [%d, %d)",
                      i, ci, si, sc, pos, wbegin, wend)));
        continue;
      }
      if (used[static_cast<size_t>(pos)] != 0) {
        sink->Emit(MakeFinding("shard-edges", LintSeverity::kError,
                               StrFormat("window entry %d is shared by two cross-shard edges",
                                         pos)));
        continue;
      }
      used[static_cast<size_t>(pos)] = 1;
      if (shards.window_source_[static_cast<size_t>(pos)] != static_cast<int32_t>(i)) {
        sink->Emit(MakeFinding(
            "shard-edges", LintSeverity::kError,
            StrFormat("window entry %d records source plan index %d but the CSR edge "
                      "originates at %zu",
                      pos, shards.window_source_[static_cast<size_t>(pos)], i)));
      }
    }
  }
  for (size_t pos = 0; pos < used.size(); ++pos) {
    if (sink->full()) {
      return;
    }
    if (used[pos] == 0) {
      sink->Emit(MakeFinding(
          "shard-edges", LintSeverity::kError,
          StrFormat("window entry %zu corresponds to no cross-shard CSR edge", pos)));
    }
  }
}

void GraphLint::PassShardHorizon(const ShardPlan& shards, bool broken, Sink* sink) {
  sink->BeginPass("shard-horizon");
  if (broken) {
    return;
  }
  const SimPlan::Structure& s = *shards.plan_->structure_;
  const std::vector<TimeNs>& duration = shards.plan_->duration_;
  const size_t n = s.task_ids.size();
  if (shards.static_start_lb_.size() != n) {
    sink->Emit(MakeFinding(
        "shard-horizon", LintSeverity::kError,
        StrFormat("static bound array holds %zu entries for %zu tasks",
                  shards.static_start_lb_.size(), n)));
    return;
  }
  // Recompute the longest-path bounds from scratch (fresh Kahn order — the
  // stored topo order is itself under test) and require exact equality.
  std::vector<TimeNs> expected(n, 0);
  std::vector<int32_t> degree = s.pred_count;
  std::vector<int32_t> order;
  order.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (degree[i] == 0) {
      order.push_back(static_cast<int32_t>(i));
    }
  }
  for (size_t cursor = 0; cursor < order.size(); ++cursor) {
    const size_t i = static_cast<size_t>(order[cursor]);
    const TimeNs end_lb = expected[i] + duration[i];
    for (int32_t k = s.succ_offset[i]; k < s.succ_offset[i + 1]; ++k) {
      const size_t ci = static_cast<size_t>(s.succ[static_cast<size_t>(k)]);
      expected[ci] = std::max(expected[ci], end_lb);
      if (--degree[ci] == 0) {
        order.push_back(static_cast<int32_t>(ci));
      }
    }
  }
  if (order.size() != n) {
    sink->Emit(MakeFinding("shard-horizon", LintSeverity::kError,
                           "plan CSR is cyclic; static bounds are undefined"));
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (sink->full()) {
      return;
    }
    if (shards.static_start_lb_[i] != expected[i]) {
      sink->Emit(MakeFinding(
          "shard-horizon", LintSeverity::kError,
          StrFormat("static bound of plan index %zu is %lld, longest-path recurrence gives "
                    "%lld",
                    i, static_cast<long long>(shards.static_start_lb_[i]),
                    static_cast<long long>(expected[i])),
          {s.task_ids[i]}));
    }
  }
  for (int b = 0; b < shards.num_shards_; ++b) {
    const int32_t wbegin = shards.window_offset_[static_cast<size_t>(b)];
    const int32_t wend = shards.window_offset_[static_cast<size_t>(b) + 1];
    for (int32_t pos = wbegin; pos < wend; ++pos) {
      if (sink->full()) {
        return;
      }
      const size_t src = static_cast<size_t>(shards.window_source_[static_cast<size_t>(pos)]);
      if (src < n) {
        const TimeNs bound = shards.static_start_lb_[src] + duration[src];
        if (shards.window_end_[static_cast<size_t>(pos)] != bound) {
          sink->Emit(MakeFinding(
              "shard-horizon", LintSeverity::kError,
              StrFormat("window entry %d holds bound %lld but its source (plan %zu) completes "
                        "no earlier than %lld",
                        pos, static_cast<long long>(shards.window_end_[static_cast<size_t>(pos)]),
                        src, static_cast<long long>(bound))));
        }
      }
      if (pos > wbegin && shards.window_end_[static_cast<size_t>(pos)] <
                              shards.window_end_[static_cast<size_t>(pos) - 1]) {
        sink->Emit(MakeFinding(
            "shard-horizon", LintSeverity::kError,
            StrFormat("shard %d's window bounds are not monotone: entry %d (%lld) < entry %d "
                      "(%lld) — the horizon would move backward",
                      b, pos, static_cast<long long>(shards.window_end_[static_cast<size_t>(pos)]),
                      pos - 1,
                      static_cast<long long>(shards.window_end_[static_cast<size_t>(pos) - 1]))));
      }
    }
  }
}

LintReport GraphLint::LintShards(const ShardPlan& shards, const LintOptions& options) {
  LintReport report;
  Sink sink(&report, options);
  bool broken = false;
  PassShardPartition(shards, &sink, &broken);
  PassShardEdges(shards, broken, &sink);
  PassShardHorizon(shards, broken, &sink);
  return report;
}

}  // namespace daydream

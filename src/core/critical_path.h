// Critical-path analysis over the dependency graph.
//
// Answers the "why did my DNN training workload run slowly?" question (§1)
// quantitatively: the longest dependency chain through the simulated
// execution, attributed to CPU work, GPU kernels, communication and framework
// gaps. Optimizations only help when they shorten this path — the attribution
// tells a user which of the what-if families is worth exploring first.
#ifndef SRC_CORE_CRITICAL_PATH_H_
#define SRC_CORE_CRITICAL_PATH_H_

#include <string>
#include <vector>

#include "src/core/dependency_graph.h"
#include "src/core/simulator.h"

namespace daydream {

struct CriticalPathReport {
  // Task ids along the path, in execution order.
  std::vector<TaskId> path;
  TimeNs makespan = 0;
  // Attribution of the makespan.
  TimeNs cpu_time = 0;    // CPU task durations on the path
  TimeNs gpu_time = 0;    // GPU task durations on the path
  TimeNs comm_time = 0;   // communication task durations on the path
  TimeNs gap_time = 0;    // framework gaps between consecutive path tasks
  TimeNs wait_time = 0;   // idle time on the path not explained by gaps

  double CpuPct() const;
  double GpuPct() const;
  double CommPct() const;
  double GapPct() const;
  std::string Summary() const;
};

// Computes the critical path of `graph` under the given simulation result
// (the result must come from simulating exactly this graph).
CriticalPathReport ComputeCriticalPath(const DependencyGraph& graph, const SimResult& sim);

// Convenience: simulate with the default scheduler, then analyze.
CriticalPathReport ComputeCriticalPath(const DependencyGraph& graph);

}  // namespace daydream

#endif  // SRC_CORE_CRITICAL_PATH_H_

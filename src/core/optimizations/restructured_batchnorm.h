// What-if model for Restructuring Batch Normalization (Algorithm 5, §6.4).
//
// Jung et al. split each BN layer and fuse its halves with the neighbouring
// convolution/activation layers. Modeled as: remove the GPU tasks (and their
// launches) of every ReLU layer that directly follows a BN layer — those are
// memory-bound kernels now fused into the convolutions — and shrink BN kernels
// 2x because the reconstructed layers load half the data from GPU memory.
#ifndef SRC_CORE_OPTIMIZATIONS_RESTRUCTURED_BATCHNORM_H_
#define SRC_CORE_OPTIMIZATIONS_RESTRUCTURED_BATCHNORM_H_

#include "src/core/dependency_graph.h"
#include "src/models/model_graph.h"

namespace daydream {

void WhatIfRestructuredBatchnorm(DependencyGraph* graph, const ModelGraph& model);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_RESTRUCTURED_BATCHNORM_H_

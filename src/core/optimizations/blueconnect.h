// What-if model for BlueConnect (Algorithm 8, §5.2).
//
// BlueConnect decomposes each allReduce into an intra-node reduce-scatter, an
// inter-node reduce-scatter, an inter-node all-gather and an intra-node
// all-gather, running the inter-node phases on one parallel channel per local
// GPU. Applied on top of WhatIfDistributed: each inserted allReduce task is
// replaced by the decomposed task pipeline on its own set of channels.
#ifndef SRC_CORE_OPTIMIZATIONS_BLUECONNECT_H_
#define SRC_CORE_OPTIMIZATIONS_BLUECONNECT_H_

#include "src/comm/network_spec.h"
#include "src/core/dependency_graph.h"

namespace daydream {

void WhatIfBlueConnect(DependencyGraph* graph, const ClusterConfig& cluster);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_BLUECONNECT_H_

// What-if model for Automatic Mixed Precision (appendix Algorithm 3, §5.1).
//
// Select every GPU task; compute-intensive kernels (name contains "sgemm" or
// "scudnn") shrink 3x (tensor cores), everything else 2x (halved memory
// traffic). CPU tasks are untouched — which is exactly why AMP's end-to-end
// speedup is far below 2-3x on CPU-bound models (Figure 6).
#ifndef SRC_CORE_OPTIMIZATIONS_AMP_H_
#define SRC_CORE_OPTIMIZATIONS_AMP_H_

#include "src/core/dependency_graph.h"

namespace daydream {

struct AmpWhatIf {
  double compute_bound_divisor = 3.0;  // kernels with sgemm/scudnn in the name
  double memory_bound_divisor = 2.0;   // all other GPU kernels
};

void WhatIfAmp(DependencyGraph* graph, const AmpWhatIf& options = AmpWhatIf{});

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_AMP_H_

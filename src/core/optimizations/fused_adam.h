// What-if model for the Apex FusedAdam optimizer (Algorithm 4, §5.1/§6.3).
//
// Uses the kernel-to-layer mapping to find every CPU/GPU task of the weight-
// update phase, removes them all, and inserts a single fused GPU kernel whose
// duration is the sum of the removed GPU kernels. Removing the thousands of
// cudaLaunchKernel calls (2.6k/5.2k for BERT base/large) is where the real
// speedup comes from.
#ifndef SRC_CORE_OPTIMIZATIONS_FUSED_ADAM_H_
#define SRC_CORE_OPTIMIZATIONS_FUSED_ADAM_H_

#include "src/core/dependency_graph.h"

namespace daydream {

void WhatIfFusedAdam(DependencyGraph* graph);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_FUSED_ADAM_H_

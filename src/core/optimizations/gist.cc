#include "src/core/optimizations/gist.h"

#include <algorithm>

#include "src/core/transform.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

TaskId LaunchOf(const DependencyGraph& graph, TaskId gpu) {
  for (TaskId p : graph.parents(gpu)) {
    const Task& t = graph.task(p);
    if (t.is_cpu() && t.api == ApiKind::kLaunchKernel) {
      return p;
    }
  }
  return kInvalidTask;
}

// One training iteration's worth of a layer's forward/backward GPU tasks.
struct IterationSpan {
  std::vector<TaskId> fwd;
  std::vector<TaskId> bwd;
};

// Buckets a layer's (start-sorted) forward and backward task lists by the
// profile's IterationStarts windows. Encoding the last forward of iteration 2
// and splicing its decode before the first backward of iteration 1 used to
// point an edge backward in time — a cycle — on every multi-iteration
// profile (e.g. the 2-iteration traces P3 needs).
std::vector<IterationSpan> SplitIterations(const DependencyGraph& graph,
                                           const std::vector<TimeNs>& iteration_starts,
                                           const std::vector<TaskId>& fwd,
                                           const std::vector<TaskId>& bwd) {
  std::vector<IterationSpan> spans(iteration_starts.size());
  auto window_of = [&](TimeNs start) {
    const auto it = std::upper_bound(iteration_starts.begin(), iteration_starts.end(), start);
    return static_cast<size_t>(it - iteration_starts.begin()) - 1;
  };
  for (TaskId id : fwd) {
    spans[window_of(graph.task(id).start)].fwd.push_back(id);
  }
  for (TaskId id : bwd) {
    spans[window_of(graph.task(id).start)].bwd.push_back(id);
  }
  return spans;
}

// Inserts one encode-after-forward / decode-before-backward pair for a
// layer's tasks within a single iteration.
void ApplyGistToSpan(DependencyGraph* graph, const Layer& layer, bool relu_target,
                     const GistWhatIf& options, const std::vector<TaskId>& fwd,
                     const std::vector<TaskId>& bwd) {
  // Estimate codec cost from this layer's own (elementwise) forward kernel:
  // encode/decode make one extra pass over the same activation data.
  const TimeNs codec = static_cast<TimeNs>(static_cast<double>(graph->task(fwd.back()).duration) *
                                           options.codec_cost_factor);
  const char* scheme = relu_target ? (options.lossy ? "binarize" : "ssdc") : "dpr";

  Task encode;
  encode.type = TaskType::kGpu;
  encode.name = StrFormat("elementwise_kernel_gist_encode_%s", scheme);
  encode.thread = graph->task(fwd.back()).thread;
  encode.duration = codec;
  encode.layer_id = layer.id;
  encode.phase = Phase::kForward;
  const TaskId fwd_launch = LaunchOf(*graph, fwd.back());
  const InsertedKernel enc = InsertKernelAfter(
      graph, fwd_launch == kInvalidTask ? fwd.back() : fwd_launch, fwd.back(),
      std::move(encode));
  graph->AddEdge(fwd.back(), enc.kernel);

  Task decode;
  decode.type = TaskType::kGpu;
  decode.name = StrFormat("elementwise_kernel_gist_decode_%s", scheme);
  decode.thread = graph->task(bwd.front()).thread;
  decode.duration = codec;
  decode.layer_id = layer.id;
  decode.phase = Phase::kBackward;
  const TaskId bwd_launch = LaunchOf(*graph, bwd.front());
  // Decode immediately before the backward task: splice the GPU task before
  // it on the stream so the backward consumes decoded data.
  const TaskId launch_anchor = bwd_launch == kInvalidTask ? bwd.front() : bwd_launch;
  Task decode_launch;
  decode_launch.type = TaskType::kCpu;
  decode_launch.api = ApiKind::kLaunchKernel;
  decode_launch.name = StrFormat("cudaLaunchKernel(%s)", decode.name.c_str());
  decode_launch.thread = graph->task(launch_anchor).is_cpu()
                             ? graph->task(launch_anchor).thread
                             : ExecThread::Cpu(0);
  decode_launch.duration = 7 * kMicrosecond;
  decode_launch.layer_id = layer.id;
  decode_launch.phase = Phase::kBackward;
  TaskId dl;
  if (graph->task(launch_anchor).is_cpu()) {
    dl = graph->InsertBefore(launch_anchor, std::move(decode_launch));
  } else {
    dl = graph->InsertAfter(launch_anchor, std::move(decode_launch));
  }
  const TaskId dk = graph->InsertBefore(bwd.front(), std::move(decode));
  graph->AddEdge(dl, dk);
  graph->AddEdge(enc.kernel, dk);
  graph->AddEdge(dk, bwd.front());
}

}  // namespace

void WhatIfGist(DependencyGraph* graph, const ModelGraph& model, const GistWhatIf& options) {
  const std::vector<TimeNs> iteration_starts = IterationStarts(*graph);
  for (const Layer& layer : model.layers()) {
    const bool relu_target = layer.kind == LayerKind::kReLU;
    const bool dpr_target = options.lossy && (layer.kind == LayerKind::kMaxPool ||
                                              layer.kind == LayerKind::kAvgPool);
    if (!relu_target && !dpr_target) {
      continue;
    }
    const std::vector<TaskId> all_fwd =
        SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kForward);
    const std::vector<TaskId> all_bwd =
        SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kBackward);
    // Encode/decode pairs must stay within one iteration (multi-iteration
    // profiles interleave fwd/bwd groups in time).
    for (const IterationSpan& span : SplitIterations(*graph, iteration_starts, all_fwd, all_bwd)) {
      if (span.fwd.empty() || span.bwd.empty()) {
        continue;
      }
      ApplyGistToSpan(graph, layer, relu_target, options, span.fwd, span.bwd);
    }
  }
}

}  // namespace daydream

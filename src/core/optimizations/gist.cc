#include "src/core/optimizations/gist.h"

#include <algorithm>

#include "src/core/transform.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

TaskId LaunchOf(const DependencyGraph& graph, TaskId gpu) {
  for (TaskId p : graph.parents(gpu)) {
    const Task& t = graph.task(p);
    if (t.is_cpu() && t.api == ApiKind::kLaunchKernel) {
      return p;
    }
  }
  return kInvalidTask;
}

}  // namespace

void WhatIfGist(DependencyGraph* graph, const ModelGraph& model, const GistWhatIf& options) {
  for (const Layer& layer : model.layers()) {
    const bool relu_target = layer.kind == LayerKind::kReLU;
    const bool dpr_target = options.lossy && (layer.kind == LayerKind::kMaxPool ||
                                              layer.kind == LayerKind::kAvgPool);
    if (!relu_target && !dpr_target) {
      continue;
    }
    const std::vector<TaskId> fwd = SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kForward);
    const std::vector<TaskId> bwd = SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kBackward);
    if (fwd.empty() || bwd.empty()) {
      continue;
    }
    // Estimate codec cost from this layer's own (elementwise) forward kernel:
    // encode/decode make one extra pass over the same activation data.
    const TimeNs codec = static_cast<TimeNs>(static_cast<double>(graph->task(fwd.back()).duration) *
                                             options.codec_cost_factor);
    const char* scheme = relu_target ? (options.lossy ? "binarize" : "ssdc") : "dpr";

    Task encode;
    encode.type = TaskType::kGpu;
    encode.name = StrFormat("elementwise_kernel_gist_encode_%s", scheme);
    encode.thread = graph->task(fwd.back()).thread;
    encode.duration = codec;
    encode.layer_id = layer.id;
    encode.phase = Phase::kForward;
    const TaskId fwd_launch = LaunchOf(*graph, fwd.back());
    const InsertedKernel enc = InsertKernelAfter(
        graph, fwd_launch == kInvalidTask ? fwd.back() : fwd_launch, fwd.back(),
        std::move(encode));
    graph->AddEdge(fwd.back(), enc.kernel);

    Task decode;
    decode.type = TaskType::kGpu;
    decode.name = StrFormat("elementwise_kernel_gist_decode_%s", scheme);
    decode.thread = graph->task(bwd.front()).thread;
    decode.duration = codec;
    decode.layer_id = layer.id;
    decode.phase = Phase::kBackward;
    const TaskId bwd_launch = LaunchOf(*graph, bwd.front());
    // Decode immediately before the backward task: splice the GPU task before
    // it on the stream so the backward consumes decoded data.
    const TaskId launch_anchor = bwd_launch == kInvalidTask ? bwd.front() : bwd_launch;
    Task decode_launch;
    decode_launch.type = TaskType::kCpu;
    decode_launch.api = ApiKind::kLaunchKernel;
    decode_launch.name = StrFormat("cudaLaunchKernel(%s)", decode.name.c_str());
    decode_launch.thread = graph->task(launch_anchor).is_cpu()
                               ? graph->task(launch_anchor).thread
                               : ExecThread::Cpu(0);
    decode_launch.duration = 7 * kMicrosecond;
    decode_launch.layer_id = layer.id;
    decode_launch.phase = Phase::kBackward;
    TaskId dl;
    if (graph->task(launch_anchor).is_cpu()) {
      dl = graph->InsertBefore(launch_anchor, std::move(decode_launch));
    } else {
      dl = graph->InsertAfter(launch_anchor, std::move(decode_launch));
    }
    const TaskId dk = graph->InsertBefore(bwd.front(), std::move(decode));
    graph->AddEdge(dl, dk);
    graph->AddEdge(enc.kernel, dk);
    graph->AddEdge(dk, bwd.front());
  }
}

}  // namespace daydream

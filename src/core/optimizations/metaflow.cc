#include "src/core/optimizations/metaflow.h"

#include "src/core/transform.h"

namespace daydream {

void MetaFlowRemoveLayer(DependencyGraph* graph, int layer_id) {
  RemoveAll(graph, graph->Select(All(IsOnGpu(), LayerIs(layer_id))));
  RemoveAll(graph,
            graph->Select(All(All(IsOnCpu(), LayerIs(layer_id)), ApiIs(ApiKind::kLaunchKernel))));
}

void MetaFlowScaleLayer(DependencyGraph* graph, int layer_id, double factor) {
  ScaleBy(graph, graph->Select(All(IsOnGpu(), LayerIs(layer_id))), factor);
}

void WhatIfMetaFlowFuseConvBn(DependencyGraph* graph, const ModelGraph& model,
                              double conv_scale) {
  for (const Layer& layer : model.layers()) {
    if (layer.kind != LayerKind::kBatchNorm || layer.inputs.empty()) {
      continue;
    }
    const Layer& producer = model.layer(layer.inputs[0]);
    if (producer.kind != LayerKind::kConv2d) {
      continue;
    }
    MetaFlowRemoveLayer(graph, layer.id);
    MetaFlowScaleLayer(graph, producer.id, conv_scale);
  }
}

}  // namespace daydream

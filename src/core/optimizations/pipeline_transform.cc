#include "src/core/optimizations/pipeline_transform.h"

#include <algorithm>
#include <utility>

#include "src/core/transform.h"
#include "src/util/logging.h"

namespace daydream {

namespace {

// Accumulates per-layer GPU time for one phase; returns the unattributed
// (layer_id < 0 or out-of-range) remainder.
TimeNs AccumulatePhase(const DependencyGraph& graph, Phase phase, int num_layers,
                       std::vector<TimeNs>* per_layer,
                       TimeNs PipelineLayerCost::*slot,
                       std::vector<PipelineLayerCost>* costs) {
  TimeNs unattributed = 0;
  graph.ForEachSelected(All(IsOnGpu(), PhaseIs(phase)), [&](const Task& t) {
    if (t.layer_id >= 0 && t.layer_id < num_layers) {
      (*per_layer)[static_cast<size_t>(t.layer_id)] += t.duration;
    } else {
      unattributed += t.duration;
    }
  });
  for (int l = 0; l < num_layers; ++l) {
    (*costs)[static_cast<size_t>(l)].*slot = (*per_layer)[static_cast<size_t>(l)];
    (*per_layer)[static_cast<size_t>(l)] = 0;
  }
  return unattributed;
}

// Spreads `extra` over the layers proportionally to their already-attributed
// time in `slot` (evenly when nothing was attributed), conserving totals.
void SpreadUnattributed(TimeNs extra, TimeNs PipelineLayerCost::*slot,
                        std::vector<PipelineLayerCost>* costs) {
  if (extra <= 0 || costs->empty()) {
    return;
  }
  TimeNs attributed = 0;
  for (const PipelineLayerCost& c : *costs) {
    attributed += c.*slot;
  }
  const int n = static_cast<int>(costs->size());
  if (attributed <= 0) {
    for (PipelineLayerCost& c : *costs) {
      c.*slot += extra / n;
    }
    return;
  }
  for (PipelineLayerCost& c : *costs) {
    c.*slot += static_cast<TimeNs>(static_cast<double>(extra) * static_cast<double>(c.*slot) /
                                   static_cast<double>(attributed));
  }
}

}  // namespace

std::vector<PipelineLayerCost> MeasureLayerCosts(const DependencyGraph& graph,
                                                 const ModelGraph& model) {
  const int num_layers = model.num_layers();
  DD_CHECK_GE(num_layers, 1) << "model has no layers";
  std::vector<PipelineLayerCost> costs(static_cast<size_t>(num_layers));
  std::vector<TimeNs> scratch(static_cast<size_t>(num_layers), 0);

  const TimeNs stray_fwd =
      AccumulatePhase(graph, Phase::kForward, num_layers, &scratch, &PipelineLayerCost::fwd, &costs);
  const TimeNs stray_bwd = AccumulatePhase(graph, Phase::kBackward, num_layers, &scratch,
                                           &PipelineLayerCost::bwd, &costs);
  SpreadUnattributed(stray_fwd, &PipelineLayerCost::fwd, &costs);
  SpreadUnattributed(stray_bwd, &PipelineLayerCost::bwd, &costs);

  for (int l = 0; l < num_layers; ++l) {
    const Layer& layer = model.layer(l);
    costs[static_cast<size_t>(l)].param_bytes = layer.param_bytes_fp32();
    costs[static_cast<size_t>(l)].activation_bytes = layer.output_elems * 4;
  }
  return costs;
}

TimeNs MeasureWeightUpdateTime(const DependencyGraph& graph) {
  TimeNs total = 0;
  graph.ForEachSelected(All(IsOnGpu(), PhaseIs(Phase::kWeightUpdate)),
                        [&](const Task& t) { total += t.duration; });
  return total;
}

PipelineBuild BuildPipelineWhatIf(const DependencyGraph& profiled, const ModelGraph& model,
                                  const PipelineWhatIf& options) {
  const std::vector<PipelineLayerCost> costs = MeasureLayerCosts(profiled, model);

  StagePartition partition;
  if (!options.boundaries.empty()) {
    partition = PartitionAtBoundaries(model.num_layers(), options.boundaries);
  } else {
    const int stages = std::clamp(options.num_stages, 1, model.num_layers());
    partition = PartitionBalanced(costs, stages);
  }

  PipelineScheduleOptions schedule;
  schedule.num_microbatches = std::max(1, options.num_microbatches);
  schedule.schedule = options.schedule;
  schedule.network = options.network;
  schedule.launch_overhead = options.launch_overhead;
  schedule.microbatch_efficiency = options.microbatch_efficiency;
  schedule.weight_update_total = MeasureWeightUpdateTime(profiled);
  return BuildPipelineGraph(costs, partition, schedule);
}

void WhatIfPipeline(DependencyGraph* graph, const ModelGraph& model,
                    const PipelineWhatIf& options) {
  PipelineBuild build = BuildPipelineWhatIf(*graph, model, options);
  *graph = std::move(build.graph);
}

}  // namespace daydream

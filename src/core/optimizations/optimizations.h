// Umbrella header: all what-if optimization models (paper §5, appendix A).
#ifndef SRC_CORE_OPTIMIZATIONS_OPTIMIZATIONS_H_
#define SRC_CORE_OPTIMIZATIONS_OPTIMIZATIONS_H_

#include "src/core/optimizations/amp.h"
#include "src/core/optimizations/blueconnect.h"
#include "src/core/optimizations/dgc.h"
#include "src/core/optimizations/distributed.h"
#include "src/core/optimizations/fused_adam.h"
#include "src/core/optimizations/gist.h"
#include "src/core/optimizations/metaflow.h"
#include "src/core/optimizations/p3.h"
#include "src/core/optimizations/pipeline_transform.h"
#include "src/core/optimizations/restructured_batchnorm.h"
#include "src/core/optimizations/vdnn.h"

#endif  // SRC_CORE_OPTIMIZATIONS_OPTIMIZATIONS_H_

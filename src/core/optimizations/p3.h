// What-if model for Priority-Based Parameter Propagation (Algorithm 7, §6.6).
//
// P3 slices each gradient tensor, pushes/pulls slices through the parameter
// server, and prioritizes slices needed earliest by the next forward pass.
// Modeled on a TWO-iteration single-GPU profile: push/pull tasks are inserted
// between a layer's backward tasks (iteration 1) and its forward tasks
// (iteration 2) — the steady-state cross-iteration dependency — and the
// simulator runs with the priority scheduler (the paper's Schedule override).
//
// The prediction knows the wire time of a slice (size / effective bandwidth)
// but not the server-side processing cost, which is why it overestimates P3's
// benefit at high bandwidths exactly as the paper reports (Figure 10).
#ifndef SRC_CORE_OPTIMIZATIONS_P3_H_
#define SRC_CORE_OPTIMIZATIONS_P3_H_

#include "src/comm/network_spec.h"
#include "src/comm/param_server.h"
#include "src/core/dependency_graph.h"
#include "src/core/predictor.h"
#include "src/models/model_graph.h"

namespace daydream {

struct PsWhatIf {
  NetworkSpec network;
  int num_servers = 1;
  // Worker/server NIC sharing (deployment knowledge the predictor has).
  double bandwidth_share = 0.5;
  // P3 slicing; slice_bytes <= 0 means whole-tensor transfers (baseline
  // MXNet kvstore) with FIFO scheduling.
  int64_t slice_bytes = kDefaultSliceBytes;
  bool prioritize = true;
};

// Channels used by inserted push/pull tasks.
inline constexpr int kPushChannel = 0;
inline constexpr int kPullChannel = 1;

// Transforms a 2-iteration graph in place: removes worker-side weight-update
// tasks (the server owns the update) and inserts prioritized push/pull chains.
void WhatIfP3(DependencyGraph* graph, const ModelGraph& model, const PsWhatIf& options);

// End-to-end helper: applies WhatIfP3 to the Daydream instance's 2-iteration
// graph, simulates with the priority scheduler and returns the predicted
// steady-state iteration time (span between the two end-of-iteration syncs).
TimeNs PredictPsIterationTime(const Daydream& daydream, const ModelGraph& model,
                              const PsWhatIf& options);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_P3_H_

// What-if model for distributed data-parallel training (Algorithm 6, §6.5).
//
// From a *single-GPU* profile, predicts multi-machine iteration time: one
// allReduce communication task is inserted per DDP gradient bucket (the
// instrumented layer->bucket grouping travels with the trace), depending on
// the backward GPU tasks of the bucket's layers and feeding the first
// weight-update task. AllReduce durations come from the ring formula,
// calibrated by the NCCL-kernel overhead measured in exclusive runs — the
// GPU-interference slowdown of overlapped execution is deliberately unknown
// to the prediction (it is the main source of Figure 8's error).
#ifndef SRC_CORE_OPTIMIZATIONS_DISTRIBUTED_H_
#define SRC_CORE_OPTIMIZATIONS_DISTRIBUTED_H_

#include <vector>

#include "src/comm/network_spec.h"
#include "src/core/dependency_graph.h"
#include "src/trace/trace.h"

namespace daydream {

struct DistributedWhatIf {
  ClusterConfig cluster;
  // Apply the exclusive-execution calibration (ring formula * NCCL kernel
  // overhead). Off = raw theoretical formula (the Figure 9 comparison).
  bool calibrate_nccl_overhead = true;
};

// The communication channel inserted allReduce tasks run on.
inline constexpr int kAllReduceChannel = 0;

void WhatIfDistributed(DependencyGraph* graph, const std::vector<GradientInfo>& gradients,
                       const DistributedWhatIf& options);

// Predicted duration of one allReduce under `options` (exposed for Figure 9).
TimeNs PredictAllReduceDuration(int64_t bytes, const DistributedWhatIf& options);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_DISTRIBUTED_H_

#include "src/core/optimizations/restructured_batchnorm.h"

#include "src/core/transform.h"

namespace daydream {

void WhatIfRestructuredBatchnorm(DependencyGraph* graph, const ModelGraph& model) {
  for (const Layer& layer : model.layers()) {
    const bool fused_relu = layer.kind == LayerKind::kReLU && !layer.inputs.empty() &&
                            model.layer(layer.inputs[0]).kind == LayerKind::kBatchNorm;
    if (fused_relu) {
      RemoveAll(graph, graph->Select(All(IsOnGpu(), LayerIs(layer.id))));
      RemoveAll(graph, graph->Select(All(All(IsOnCpu(), LayerIs(layer.id)),
                                         ApiIs(ApiKind::kLaunchKernel))));
    } else if (layer.kind == LayerKind::kBatchNorm) {
      ShrinkBy(graph, graph->Select(All(IsOnGpu(), LayerIs(layer.id))), 2.0);
    }
  }
}

}  // namespace daydream

#include "src/core/optimizations/distributed.h"

#include <algorithm>
#include <limits>
#include <map>

#include "src/comm/collectives.h"
#include "src/core/transform.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

TimeNs PredictAllReduceDuration(int64_t bytes, const DistributedWhatIf& options) {
  const TimeNs theoretical = RingAllReduceTime(bytes, options.cluster);
  if (!options.calibrate_nccl_overhead) {
    return theoretical;
  }
  return NcclExclusiveTime(theoretical);
}

namespace {

struct Bucket {
  int64_t bytes = 0;
  std::vector<int> layer_ids;
};

// Multi-iteration path: one DDP allReduce schedule per iteration window, each
// anchored on that window's own last-backward / first-weight-update tasks.
// Only reached for multi-iteration profiles (small: P3-style 2-iteration
// traces), so the extra IterationStarts scans are off the sweep's hot path.
void InsertPerIterationAllReduces(DependencyGraph* graph, const std::map<int, Bucket>& buckets,
                                  const DistributedWhatIf& options) {
  const std::vector<TimeNs> iterations = IterationStarts(*graph);
  const size_t num_iterations = iterations.size();
  auto iteration_of = [&](TimeNs start) {
    const auto it = std::upper_bound(iterations.begin(), iterations.end(), start);
    return static_cast<size_t>(it - iterations.begin()) - 1;
  };

  std::vector<TaskId> first_wu(num_iterations, kInvalidTask);
  std::vector<TimeNs> first_wu_start(num_iterations, 0);
  graph->ForEachSelected(PhaseIs(Phase::kWeightUpdate), [&](const Task& t) {
    const size_t i = iteration_of(t.start);
    if (first_wu[i] == kInvalidTask || t.start < first_wu_start[i]) {
      first_wu[i] = t.id;
      first_wu_start[i] = t.start;
    }
  });

  std::vector<std::map<int, std::pair<TaskId, TimeNs>>> last_bwd_gpu(num_iterations);
  graph->ForEachSelected(All(IsOnGpu(), PhaseIs(Phase::kBackward)), [&](const Task& t) {
    auto& per_layer = last_bwd_gpu[iteration_of(t.start)];
    auto [it, inserted] = per_layer.try_emplace(t.layer_id, t.id, t.start);
    if (!inserted && it->second.second < t.start) {
      it->second = {t.id, t.start};
    }
  });

  TaskId previous_comm = kInvalidTask;  // NCCL serializes across iterations too
  for (size_t i = 0; i < num_iterations; ++i) {
    if (first_wu[i] == kInvalidTask) {
      continue;  // truncated profile tail without an optimizer step
    }
    for (const auto& [bucket_id, bucket] : buckets) {
      Task comm;
      comm.type = TaskType::kComm;
      comm.comm = CommKind::kAllReduce;
      comm.name = StrFormat("allReduce_bucket%d_it%zu", bucket_id, i);
      comm.thread = ExecThread::Comm(kAllReduceChannel);
      comm.duration = PredictAllReduceDuration(bucket.bytes, options);
      comm.bytes = bucket.bytes;
      comm.phase = Phase::kBackward;
      const TaskId comm_id = graph->AddTask(std::move(comm));

      for (int layer_id : bucket.layer_ids) {
        auto it = last_bwd_gpu[i].find(layer_id);
        if (it != last_bwd_gpu[i].end()) {
          graph->AddEdge(it->second.first, comm_id);
        }
      }
      graph->AddEdge(comm_id, first_wu[i]);
      if (previous_comm != kInvalidTask) {
        graph->AddEdge(previous_comm, comm_id);
      }
      previous_comm = comm_id;
    }
  }
}

}  // namespace

void WhatIfDistributed(DependencyGraph* graph, const std::vector<GradientInfo>& gradients,
                       const DistributedWhatIf& options) {
  if (options.cluster.total_gpus() <= 1) {
    return;
  }

  std::map<int, Bucket> buckets;
  for (const GradientInfo& g : gradients) {
    DD_CHECK_GE(g.bucket_id, 0) << "trace lacks the layer->bucket instrumentation";
    buckets[g.bucket_id].bytes += g.bytes;
    buckets[g.bucket_id].layer_ids.push_back(g.layer_id);
  }

  // First weight-update task: every allReduce must finish before it
  // (Algorithm 6 line 7: AddDependencies(AllReduceTask -> WU)). The weight
  // update is a large fraction of the graph, so fold the minimum out of the
  // streaming select instead of materializing the id vector.
  TaskId first_wu = kInvalidTask;
  TimeNs first_wu_start = 0;
  graph->ForEachSelected(PhaseIs(Phase::kWeightUpdate), [&](const Task& t) {
    if (first_wu == kInvalidTask || t.start < first_wu_start) {
      first_wu = t.id;
      first_wu_start = t.start;
    }
  });
  DD_CHECK_NE(first_wu, kInvalidTask) << "no weight-update phase in the profile";

  // Last backward GPU task per layer (the moment that layer's gradients are
  // ready, per the synchronization-free layer mapping). max_bwd_start rides
  // along to certify the single-iteration shape below.
  std::map<int, std::pair<TaskId, TimeNs>> last_bwd_gpu;
  TimeNs max_bwd_start = std::numeric_limits<TimeNs>::min();
  graph->ForEachSelected(All(IsOnGpu(), PhaseIs(Phase::kBackward)), [&](const Task& t) {
    max_bwd_start = std::max(max_bwd_start, t.start);
    auto [it, inserted] = last_bwd_gpu.try_emplace(t.layer_id, t.id, t.start);
    if (!inserted && it->second.second < t.start) {
      it->second = {t.id, t.start};
    }
  });

  // Anchors must be resolved per training iteration: on a multi-iteration
  // profile the global "last backward" is iteration N's while the first
  // weight update is iteration 1's — wiring those together points an edge
  // backward in time (a cycle). A single-iteration profile (every backward
  // before the first optimizer step — certified by the folds above at no
  // extra cost, the shape every cluster-scale sweep case has) takes the
  // direct path; anything else re-resolves anchors per iteration window.
  if (max_bwd_start >= first_wu_start) {
    InsertPerIterationAllReduces(graph, buckets, options);
    return;
  }

  TaskId previous_comm = kInvalidTask;
  for (const auto& [bucket_id, bucket] : buckets) {
    Task comm;
    comm.type = TaskType::kComm;
    comm.comm = CommKind::kAllReduce;
    comm.name = StrFormat("allReduce_bucket%d", bucket_id);
    comm.thread = ExecThread::Comm(kAllReduceChannel);
    comm.duration = PredictAllReduceDuration(bucket.bytes, options);
    comm.bytes = bucket.bytes;
    comm.phase = Phase::kBackward;
    const TaskId comm_id = graph->AddTask(std::move(comm));

    for (int layer_id : bucket.layer_ids) {
      auto it = last_bwd_gpu.find(layer_id);
      if (it != last_bwd_gpu.end()) {
        graph->AddEdge(it->second.first, comm_id);
      }
    }
    graph->AddEdge(comm_id, first_wu);
    if (previous_comm != kInvalidTask) {
      // NCCL serializes collectives on one communicator/stream.
      graph->AddEdge(previous_comm, comm_id);
    }
    previous_comm = comm_id;
  }
}

}  // namespace daydream

#include "src/core/optimizations/distributed.h"

#include <algorithm>
#include <map>

#include "src/comm/collectives.h"
#include "src/core/transform.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

TimeNs PredictAllReduceDuration(int64_t bytes, const DistributedWhatIf& options) {
  const TimeNs theoretical = RingAllReduceTime(bytes, options.cluster);
  if (!options.calibrate_nccl_overhead) {
    return theoretical;
  }
  return NcclExclusiveTime(theoretical);
}

void WhatIfDistributed(DependencyGraph* graph, const std::vector<GradientInfo>& gradients,
                       const DistributedWhatIf& options) {
  if (options.cluster.total_gpus() <= 1) {
    return;
  }

  struct Bucket {
    int64_t bytes = 0;
    std::vector<int> layer_ids;
  };
  std::map<int, Bucket> buckets;
  for (const GradientInfo& g : gradients) {
    DD_CHECK_GE(g.bucket_id, 0) << "trace lacks the layer->bucket instrumentation";
    buckets[g.bucket_id].bytes += g.bytes;
    buckets[g.bucket_id].layer_ids.push_back(g.layer_id);
  }

  // First weight-update task: every allReduce must finish before it
  // (Algorithm 6 line 7: AddDependencies(AllReduceTask -> WU)). The weight
  // update is a large fraction of the graph, so fold the minimum out of the
  // streaming select instead of materializing the id vector.
  TaskId first_wu = kInvalidTask;
  TimeNs first_wu_start = 0;
  graph->ForEachSelected(PhaseIs(Phase::kWeightUpdate), [&](const Task& t) {
    if (first_wu == kInvalidTask || t.start < first_wu_start) {
      first_wu = t.id;
      first_wu_start = t.start;
    }
  });
  DD_CHECK_NE(first_wu, kInvalidTask) << "no weight-update phase in the profile";

  // Last backward GPU task per layer (the moment that layer's gradients are
  // ready, per the synchronization-free layer mapping).
  std::map<int, std::pair<TaskId, TimeNs>> last_bwd_gpu;
  graph->ForEachSelected(All(IsOnGpu(), PhaseIs(Phase::kBackward)), [&](const Task& t) {
    auto [it, inserted] = last_bwd_gpu.try_emplace(t.layer_id, t.id, t.start);
    if (!inserted && it->second.second < t.start) {
      it->second = {t.id, t.start};
    }
  });

  TaskId previous_comm = kInvalidTask;
  for (const auto& [bucket_id, bucket] : buckets) {
    Task comm;
    comm.type = TaskType::kComm;
    comm.comm = CommKind::kAllReduce;
    comm.name = StrFormat("allReduce_bucket%d", bucket_id);
    comm.thread = ExecThread::Comm(kAllReduceChannel);
    comm.duration = PredictAllReduceDuration(bucket.bytes, options);
    comm.bytes = bucket.bytes;
    comm.phase = Phase::kBackward;
    const TaskId comm_id = graph->AddTask(std::move(comm));

    for (int layer_id : bucket.layer_ids) {
      auto it = last_bwd_gpu.find(layer_id);
      if (it != last_bwd_gpu.end()) {
        graph->AddEdge(it->second.first, comm_id);
      }
    }
    graph->AddEdge(comm_id, first_wu);
    if (previous_comm != kInvalidTask) {
      // NCCL serializes collectives on one communicator/stream.
      graph->AddEdge(previous_comm, comm_id);
    }
    previous_comm = comm_id;
  }
}

}  // namespace daydream

#include "src/core/optimizations/fused_adam.h"

#include <algorithm>

#include "src/core/transform.h"
#include "src/util/logging.h"

namespace daydream {

void WhatIfFusedAdam(DependencyGraph* graph) {
  const std::vector<TaskId> wu_gpu =
      graph->Select(All(IsOnGpu(), PhaseIs(Phase::kWeightUpdate)));
  if (wu_gpu.empty()) {
    return;
  }
  // §5.1: the fused kernel's duration is "roughly estimated by the sum of all
  // removed compute-intensive kernels". Adam's pointwise chain is memory
  // bound, so the estimate is dominated by the floor — fusing collapses 13
  // redundant passes into one; what the estimate misses (the single remaining
  // traffic pass) is a deliberate source of prediction error (§7.4).
  const TimeNs fused_duration =
      TotalDuration(*graph, graph->Select(All(
                                All(IsOnGpu(), PhaseIs(Phase::kWeightUpdate)),
                                Any(NameContains("sgemm"), NameContains("scudnn"))))) +
      50 * kMicrosecond;

  // Keep the first weight-update kernel (in measured order) as the fused
  // kernel; its launching CPU task stays as the single remaining launch.
  TaskId kept = wu_gpu.front();
  for (TaskId id : wu_gpu) {
    if (graph->task(id).start < graph->task(kept).start) {
      kept = id;
    }
  }
  Task& fused = graph->task(kept);
  fused.name = "multi_tensor_apply_adam_fused";
  fused.duration = fused_duration;
  fused.layer_id = -1;  // spans every layer

  TaskId kept_launch = kInvalidTask;
  for (TaskId p : graph->parents(kept)) {
    const Task& parent = graph->task(p);
    if (parent.is_cpu() && parent.api == ApiKind::kLaunchKernel) {
      kept_launch = p;
      break;
    }
  }
  DD_CHECK_NE(kept_launch, kInvalidTask) << "fused kernel has no launching CPU task";

  for (TaskId id : wu_gpu) {
    if (id != kept) {
      graph->Remove(id);
    }
  }
  for (TaskId id : graph->Select(All(IsOnCpu(), PhaseIs(Phase::kWeightUpdate)))) {
    if (id != kept_launch) {
      graph->Remove(id);
    }
  }
}

}  // namespace daydream

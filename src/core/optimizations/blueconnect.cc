#include "src/core/optimizations/blueconnect.h"

#include <algorithm>

#include "src/comm/collectives.h"
#include "src/core/transform.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

// Channel layout: 100 = intra-node collective channel, 200+i = the i-th
// parallel inter-node channel (one per local GPU).
constexpr int kIntraChannel = 100;
constexpr int kInterChannelBase = 200;

Task CommTask(std::string name, CommKind kind, int channel, TimeNs duration, int64_t bytes) {
  Task t;
  t.type = TaskType::kComm;
  t.comm = kind;
  t.name = std::move(name);
  t.thread = ExecThread::Comm(channel);
  t.duration = duration;
  t.bytes = bytes;
  t.phase = Phase::kBackward;
  return t;
}

}  // namespace

void WhatIfBlueConnect(DependencyGraph* graph, const ClusterConfig& cluster) {
  const int g = std::max(cluster.gpus_per_machine, 1);
  const int m = cluster.machines;
  const NetworkSpec& net = cluster.network;

  const std::vector<TaskId> allreduces = graph->Select(CommIs(CommKind::kAllReduce));

  for (TaskId ar : allreduces) {
    const int64_t bytes = graph->task(ar).bytes;
    const std::string base = graph->task(ar).name;
    const std::vector<TaskId> parents = graph->parents(ar);
    const std::vector<TaskId> children = graph->children(ar);
    graph->Remove(ar);  // rewires parents->children; the pipeline adds the real path

    const TimeNs intra_rs =
        ReduceScatterTime(bytes, g, net.pcie_bytes_per_ns(), net.intra_node_latency);
    const TimeNs intra_ag =
        AllGatherTime(bytes, g, net.pcie_bytes_per_ns(), net.intra_node_latency);
    const double channel_bw = net.nic_bytes_per_ns() / g;
    const TimeNs inter_rs =
        ReduceScatterTime(bytes / g, m, channel_bw, net.inter_node_latency);
    const TimeNs inter_ag = AllGatherTime(bytes / g, m, channel_bw, net.inter_node_latency);

    const TaskId rs_intra = graph->AddTask(CommTask(base + "/reduceScatter_intra",
                                                    CommKind::kReduceScatter, kIntraChannel,
                                                    intra_rs, bytes));
    const TaskId ag_intra = graph->AddTask(
        CommTask(base + "/allGather_intra", CommKind::kAllGather, kIntraChannel, intra_ag, bytes));
    for (TaskId p : parents) {
      graph->AddEdge(p, rs_intra);
    }
    for (int i = 0; i < g; ++i) {
      const TaskId rs = graph->AddTask(CommTask(StrFormat("%s/reduceScatter_inter%d",
                                                          base.c_str(), i),
                                                CommKind::kReduceScatter, kInterChannelBase + i,
                                                inter_rs, bytes / g));
      const TaskId ag = graph->AddTask(CommTask(StrFormat("%s/allGather_inter%d", base.c_str(), i),
                                                CommKind::kAllGather, kInterChannelBase + i,
                                                inter_ag, bytes / g));
      graph->AddEdge(rs_intra, rs);
      graph->AddEdge(rs, ag);
      graph->AddEdge(ag, ag_intra);
    }
    for (TaskId c : children) {
      graph->AddEdge(ag_intra, c);
    }
  }
}

}  // namespace daydream

#include "src/core/optimizations/vdnn.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/core/transform.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

// The CPU launch task of a GPU task (its launching parent).
TaskId LaunchOf(const DependencyGraph& graph, TaskId gpu) {
  for (TaskId p : graph.parents(gpu)) {
    const Task& t = graph.task(p);
    if (t.is_cpu() && t.api == ApiKind::kLaunchKernel) {
      return p;
    }
  }
  return kInvalidTask;
}

Task CopyTask(const Layer& layer, const char* what, Phase phase, const VdnnWhatIf& options) {
  const int64_t bytes = layer.output_elems * 4;
  Task t;
  t.type = TaskType::kGpu;
  t.name = StrFormat("memcpy_%s_vdnn_%s_%s", phase == Phase::kForward ? "dtoh" : "htod",
                     phase == Phase::kForward ? "offload" : "prefetch", what);
  t.thread = ExecThread::Gpu(options.copy_stream);
  t.duration = static_cast<TimeNs>(static_cast<double>(bytes) / options.pcie_bytes_per_ns) +
               2 * kMicrosecond;
  t.bytes = bytes;
  t.layer_id = layer.id;
  t.phase = phase;
  return t;
}

}  // namespace

void WhatIfVdnn(DependencyGraph* graph, const ModelGraph& model, const VdnnWhatIf& options) {
  const std::vector<TimeNs> iteration_starts = IterationStarts(*graph);
  auto window_of = [&](TimeNs start) {
    const auto it = std::upper_bound(iteration_starts.begin(), iteration_starts.end(), start);
    return static_cast<size_t>(it - iteration_starts.begin()) - 1;
  };

  // Per-layer fwd/bwd GPU tasks, bucketed by iteration window. Offloading
  // the last forward of iteration 2 while prefetching into the first
  // backward of iteration 1 used to close a dependency cycle on every
  // multi-iteration profile — the same defect class gist and distributed
  // had. Anchors must stay inside one window.
  struct LayerWindow {
    std::vector<TaskId> fwd;
    std::vector<TaskId> bwd;
  };
  std::map<int, std::vector<LayerWindow>> windows_of_layer;
  for (const Layer& layer : model.layers()) {
    if (layer.kind != LayerKind::kConv2d) {
      continue;  // vDNN_conv policy: offload only convolution feature maps
    }
    std::vector<LayerWindow> windows(iteration_starts.size());
    for (TaskId id : SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kForward)) {
      windows[window_of(graph->task(id).start)].fwd.push_back(id);
    }
    for (TaskId id : SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kBackward)) {
      windows[window_of(graph->task(id).start)].bwd.push_back(id);
    }
    windows_of_layer.emplace(layer.id, std::move(windows));
  }

  // Copy-stream order matters: within each iteration, offloads issue during
  // the forward pass (layer order) and prefetches during the backward pass
  // (reverse layer order); across iterations, one iteration's copies all
  // precede the next's. copy_tail carries across windows so the stream
  // serializes in exactly that (time) order.
  TaskId copy_tail = kInvalidTask;
  for (size_t w = 0; w < iteration_starts.size(); ++w) {
    std::map<int, TaskId> offload_of_layer;
    for (const Layer& layer : model.layers()) {
      const auto windows = windows_of_layer.find(layer.id);
      if (windows == windows_of_layer.end()) {
        continue;
      }
      const std::vector<TaskId>& fwd = windows->second[w].fwd;
      if (fwd.empty()) {
        continue;
      }
      Task offload = CopyTask(layer, layer.name.c_str(), Phase::kForward, options);
      const TaskId fwd_launch = LaunchOf(*graph, fwd.back());
      const TaskId gpu_anchor = copy_tail == kInvalidTask ? fwd.back() : copy_tail;
      const InsertedKernel off = InsertKernelAfter(
          graph, fwd_launch == kInvalidTask ? fwd.back() : fwd_launch, gpu_anchor,
          std::move(offload));
      graph->AddEdge(fwd.back(), off.kernel);  // the feature map must exist first
      copy_tail = off.kernel;
      offload_of_layer[layer.id] = off.kernel;
    }

    // Prefetches run one conv layer ahead (vDNN's findPrefetchLayer policy):
    // while layer L+1's backward computes, layer L's feature map streams
    // back, hiding most of the PCIe latency behind compute.
    TaskId previous_bwd_launch = kInvalidTask;
    for (auto it = model.layers().rbegin(); it != model.layers().rend(); ++it) {
      const Layer& layer = *it;
      const auto off = offload_of_layer.find(layer.id);
      if (off == offload_of_layer.end()) {
        continue;
      }
      const std::vector<TaskId>& bwd = windows_of_layer.at(layer.id)[w].bwd;
      if (bwd.empty()) {
        continue;
      }
      Task prefetch = CopyTask(layer, layer.name.c_str(), Phase::kBackward, options);
      const TaskId own_launch = LaunchOf(*graph, bwd.front());
      TaskId anchor = previous_bwd_launch;  // one layer of lookahead
      if (anchor == kInvalidTask) {
        anchor = own_launch == kInvalidTask ? bwd.front() : own_launch;
      }
      const InsertedKernel pre = InsertKernelAfter(graph, anchor, copy_tail, std::move(prefetch));
      graph->AddEdge(off->second, pre.kernel);  // can only prefetch offloaded data
      graph->AddEdge(pre.kernel, bwd.front());  // the backward needs the feature map
      copy_tail = pre.kernel;
      previous_bwd_launch = own_launch == kInvalidTask ? bwd.front() : own_launch;
    }
  }
}

}  // namespace daydream

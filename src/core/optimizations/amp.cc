#include "src/core/optimizations/amp.h"

#include "src/core/transform.h"
#include "src/util/string_util.h"

namespace daydream {

void WhatIfAmp(DependencyGraph* graph, const AmpWhatIf& options) {
  for (TaskId id : graph->Select(IsOnGpu())) {
    Task& task = graph->task(id);
    const bool compute_bound =
        StrContains(task.name, "sgemm") || StrContains(task.name, "scudnn");
    const double divisor =
        compute_bound ? options.compute_bound_divisor : options.memory_bound_divisor;
    task.duration = static_cast<TimeNs>(static_cast<double>(task.duration) / divisor);
  }
}

}  // namespace daydream

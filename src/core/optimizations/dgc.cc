#include "src/core/optimizations/dgc.h"

#include <algorithm>

#include "src/comm/collectives.h"
#include "src/core/transform.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

TimeNs EstimateElementwiseDuration(const DependencyGraph& graph, int64_t bytes) {
  // Find the largest elementwise kernel with byte accounting and scale its
  // duration by the byte ratio; fall back to a bandwidth guess if none.
  TaskId best = kInvalidTask;
  for (TaskId id : graph.Select(All(IsOnGpu(), NameContains("elementwise")))) {
    const Task& t = graph.task(id);
    if (t.bytes <= 0) {
      continue;
    }
    if (best == kInvalidTask || t.bytes > graph.task(best).bytes) {
      best = id;
    }
  }
  if (best == kInvalidTask) {
    return static_cast<TimeNs>(static_cast<double>(bytes) / 400.0) + 2 * kMicrosecond;
  }
  const Task& ref = graph.task(best);
  const double scale = static_cast<double>(bytes) / static_cast<double>(ref.bytes);
  return std::max<TimeNs>(
      2 * kMicrosecond, static_cast<TimeNs>(static_cast<double>(ref.duration) * scale));
}

void WhatIfDgc(DependencyGraph* graph, const DgcWhatIf& options) {
  DD_CHECK_GT(options.compression_ratio, 0.0);
  const std::vector<TaskId> allreduces = graph->Select(CommIs(CommKind::kAllReduce));

  for (TaskId ar : allreduces) {
    Task& comm = graph->task(ar);
    const int64_t original_bytes = comm.bytes;
    const int64_t compressed =
        std::max<int64_t>(1, static_cast<int64_t>(static_cast<double>(original_bytes) *
                                                  options.compression_ratio));
    comm.bytes = compressed;
    comm.duration = NcclExclusiveTime(RingAllReduceTime(compressed, options.cluster));
    comm.name += "_dgc";

    // Compression runs on the GPU between the gradients and the transfer.
    Task compress;
    compress.type = TaskType::kGpu;
    compress.name = "elementwise_kernel_dgc_compress";
    compress.thread = ExecThread::Gpu(0);
    compress.duration = static_cast<TimeNs>(
        static_cast<double>(EstimateElementwiseDuration(*graph, original_bytes)) *
        options.compress_passes);
    compress.bytes = original_bytes;
    compress.phase = Phase::kBackward;

    // Splice: parents(gradients ready) -> compress -> allReduce.
    const std::vector<TaskId> parents = graph->parents(ar);
    TaskId gpu_anchor = kInvalidTask;
    for (TaskId p : parents) {
      if (graph->task(p).is_gpu()) {
        if (gpu_anchor == kInvalidTask ||
            graph->task(p).start > graph->task(gpu_anchor).start) {
          gpu_anchor = p;
        }
      }
    }
    if (gpu_anchor == kInvalidTask) {
      continue;  // allReduce without gradient producers; leave as-is
    }
    const TaskId comp_id = graph->InsertAfter(gpu_anchor, std::move(compress));
    graph->AddEdge(comp_id, ar);

    // Decompression before the weight update consumes the reduced gradients.
    Task decompress;
    decompress.type = TaskType::kGpu;
    decompress.name = "elementwise_kernel_dgc_decompress";
    decompress.thread = ExecThread::Gpu(0);
    decompress.duration = static_cast<TimeNs>(
        static_cast<double>(EstimateElementwiseDuration(*graph, original_bytes)) *
        options.decompress_passes);
    decompress.bytes = original_bytes;
    decompress.phase = Phase::kWeightUpdate;
    const TaskId decomp_id = graph->InsertAfter(comp_id, std::move(decompress));
    graph->AddEdge(ar, decomp_id);
    for (TaskId c : graph->children(ar)) {
      if (c != decomp_id && !graph->task(c).is_comm()) {
        graph->AddEdge(decomp_id, c);
      }
    }
  }
}

}  // namespace daydream

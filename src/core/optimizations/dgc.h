// What-if model for Deep Gradient Compression (Algorithm 12, §5.2).
//
// DGC compresses gradients before transmission (to ~0.1-1% of their size) and
// decompresses them before the weight update. Applied on top of
// WhatIfDistributed: every allReduce task's duration is rescaled to the
// compressed payload, and compression/decompression GPU kernels (estimated
// from existing elementwise kernels) are inserted around it.
#ifndef SRC_CORE_OPTIMIZATIONS_DGC_H_
#define SRC_CORE_OPTIMIZATIONS_DGC_H_

#include "src/comm/network_spec.h"
#include "src/core/dependency_graph.h"

namespace daydream {

struct DgcWhatIf {
  ClusterConfig cluster;
  double compression_ratio = 0.01;  // compressed bytes / original bytes
  // Compression makes ~3 passes over the gradients (threshold + select +
  // pack); decompression one sparse scatter.
  double compress_passes = 3.0;
  double decompress_passes = 1.0;
};

void WhatIfDgc(DependencyGraph* graph, const DgcWhatIf& options);

// Estimates an elementwise-kernel duration for `bytes` of traffic from the
// existing elementwise kernels in the graph (paper: "can be estimated
// according to the compression rate and duration of existing element-wise GPU
// kernels"). Exposed for tests.
TimeNs EstimateElementwiseDuration(const DependencyGraph& graph, int64_t bytes);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_DGC_H_

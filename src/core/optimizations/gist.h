// What-if model for Gist (Algorithm 11, §5.2).
//
// Gist stores encoded intermediate feature maps and decodes them before use,
// trading extra encode/decode kernels for memory footprint. Modeled by
// inserting an encode kernel after each targeted activation's forward tasks
// and a decode kernel before its backward tasks; durations are estimated from
// the layer's existing elementwise kernels, as the paper prescribes.
#ifndef SRC_CORE_OPTIMIZATIONS_GIST_H_
#define SRC_CORE_OPTIMIZATIONS_GIST_H_

#include "src/core/dependency_graph.h"
#include "src/models/model_graph.h"

namespace daydream {

struct GistWhatIf {
  // Lossy mode additionally inserts Delayed-Precision-Reduction kernels on
  // non-ReLU activations.
  bool lossy = false;
  // Cost of one encode/decode pass relative to the layer's own elementwise
  // forward kernel (they touch the same data once).
  double codec_cost_factor = 1.0;
};

void WhatIfGist(DependencyGraph* graph, const ModelGraph& model,
                const GistWhatIf& options = GistWhatIf{});

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_GIST_H_

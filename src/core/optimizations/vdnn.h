// What-if model for vDNN (Algorithm 10, §5.2).
//
// Virtualized DNN offloads convolution-layer feature maps to host memory
// during the forward pass and prefetches them back before the corresponding
// backward pass. Modeled by inserting DtoH/HtoD memory-copy tasks (with their
// CPU launch calls) on a dedicated copy stream: the cost of the what-if is the
// PCIe traffic and any late prefetch stalling a backward layer.
#ifndef SRC_CORE_OPTIMIZATIONS_VDNN_H_
#define SRC_CORE_OPTIMIZATIONS_VDNN_H_

#include "src/core/dependency_graph.h"
#include "src/models/model_graph.h"

namespace daydream {

struct VdnnWhatIf {
  double pcie_bytes_per_ns = 12.0;  // effective PCIe 3.0 x16 bandwidth
  int copy_stream = 2;              // dedicated memcpy stream
};

void WhatIfVdnn(DependencyGraph* graph, const ModelGraph& model,
                const VdnnWhatIf& options = VdnnWhatIf{});

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_VDNN_H_

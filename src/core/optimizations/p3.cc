#include "src/core/optimizations/p3.h"

#include <algorithm>
#include <map>
#include <memory>

#include "src/core/simulator.h"
#include "src/core/transform.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

TimeNs SliceWireTime(int64_t bytes, const PsWhatIf& options) {
  const double bytes_per_ns = options.network.nic_bytes_per_ns() * options.bandwidth_share;
  return static_cast<TimeNs>(static_cast<double>(bytes) / bytes_per_ns) +
         options.network.inter_node_latency;
}

}  // namespace

void WhatIfP3(DependencyGraph* graph, const ModelGraph& model, const PsWhatIf& options) {
  // Worker-side weight update is replaced by the server-side update.
  RemoveAll(graph, graph->Select(PhaseIs(Phase::kWeightUpdate)));

  const std::vector<PsSlice> slices =
      options.slice_bytes > 0 ? P3Slices(model, options.num_servers, options.slice_bytes)
                              : WholeTensorSlices(model, options.num_servers);
  std::map<int, std::vector<PsSlice>> by_layer;
  for (const PsSlice& s : slices) {
    by_layer[s.layer_id].push_back(s);
  }

  for (const Layer& layer : model.layers()) {
    if (!layer.has_params()) {
      continue;
    }
    const std::vector<TaskId> bwd = SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kBackward);
    const std::vector<TaskId> fwd = SelectLayerGpuSortedByStart(*graph, layer.id, Phase::kForward);
    if (bwd.empty() || fwd.empty()) {
      continue;
    }
    // Two profiled iterations: gradients produced by iteration 1's backward
    // feed iteration 2's forward. With identical per-iteration programs the
    // first half of the sorted tasks belongs to iteration 1.
    DD_CHECK_EQ(bwd.size() % 2, 0u) << "P3 modeling requires a 2-iteration profile";
    DD_CHECK_EQ(fwd.size() % 2, 0u);
    const TaskId grads_ready = bwd[bwd.size() / 2 - 1];   // last bwd GPU task, iter 1
    const TaskId weights_needed = fwd[fwd.size() / 2];    // first fwd GPU task, iter 2

    for (const PsSlice& slice : by_layer[layer.id]) {
      Task push;
      push.type = TaskType::kComm;
      push.comm = CommKind::kPush;
      push.name = StrFormat("push_layer%d_slice%d", slice.layer_id, slice.slice_index);
      push.thread = ExecThread::Comm(kPushChannel);
      push.duration = SliceWireTime(slice.bytes, options);
      push.bytes = slice.bytes;
      push.priority = options.prioritize ? slice.priority : 0;
      push.phase = Phase::kBackward;
      const TaskId push_id = graph->AddTask(std::move(push));

      Task pull;
      pull.type = TaskType::kComm;
      pull.comm = CommKind::kPull;
      pull.name = StrFormat("pull_layer%d_slice%d", slice.layer_id, slice.slice_index);
      pull.thread = ExecThread::Comm(kPullChannel);
      pull.duration = SliceWireTime(slice.bytes, options);
      pull.bytes = slice.bytes;
      pull.priority = options.prioritize ? slice.priority : 0;
      pull.phase = Phase::kForward;
      const TaskId pull_id = graph->AddTask(std::move(pull));

      graph->AddEdge(grads_ready, push_id);
      graph->AddEdge(push_id, pull_id);
      graph->AddEdge(pull_id, weights_needed);
    }
  }
}

TimeNs PredictPsIterationTime(const Daydream& daydream, const ModelGraph& model,
                              const PsWhatIf& options) {
  DependencyGraph graph = daydream.CloneGraph();

  // Iteration boundaries: the per-iteration cudaDeviceSynchronize tasks.
  std::vector<TaskId> boundaries =
      graph.Select(All(ApiIs(ApiKind::kDeviceSynchronize), NameContains("iter_end")));
  std::sort(boundaries.begin(), boundaries.end(), [&](TaskId a, TaskId b) {
    return graph.task(a).start < graph.task(b).start;
  });
  DD_CHECK_EQ(boundaries.size(), 2u) << "PS prediction requires a 2-iteration profile";

  WhatIfP3(&graph, model, options);

  std::shared_ptr<Scheduler> scheduler;
  if (options.prioritize) {
    scheduler = std::make_shared<PriorityCommScheduler>();
  } else {
    scheduler = std::make_shared<EarliestStartScheduler>();
  }
  const SimResult sim = Simulator(scheduler).Run(graph);
  // Steady-state period: distance between the two end-of-iteration syncs.
  return sim.EndOf(boundaries[1]) - sim.EndOf(boundaries[0]);
}

}  // namespace daydream

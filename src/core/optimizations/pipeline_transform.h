// What-if model for pipeline parallelism (GPipe / PipeDream-style 1F1B).
//
// From a *single-GPU* profile, predicts the per-iteration time of the same
// model trained as an S-stage pipeline with M micro-batches: per-layer
// forward/backward GPU costs are measured from the profiled dependency graph
// (the synchronization-free layer mapping attributes every kernel), the stage
// partitioner splits the layer range — balanced by measured cost, or at
// explicit boundaries — and the schedule builder (src/parallel/pipeline.h)
// emits the pipelined execution as a fresh dependency graph that replaces the
// profiled one. Inter-stage activation/gradient transfers are priced as P2P
// wire time over the configured network; per-stage optimizer time is the
// profile's weight-update GPU time split by parameter volume.
//
// Like every Daydream what-if, the prediction deliberately omits effects the
// profile cannot see: micro-batching efficiency loss defaults to none
// (options.microbatch_efficiency) and the per-stage CPU lanes carry only
// launch overhead, not the framework's Python dispatch structure.
#ifndef SRC_CORE_OPTIMIZATIONS_PIPELINE_TRANSFORM_H_
#define SRC_CORE_OPTIMIZATIONS_PIPELINE_TRANSFORM_H_

#include <vector>

#include "src/comm/network_spec.h"
#include "src/core/dependency_graph.h"
#include "src/models/model_graph.h"
#include "src/parallel/pipeline.h"

namespace daydream {

struct PipelineWhatIf {
  // Stage count is clamped to the model's layer count.
  int num_stages = 2;
  int num_microbatches = 4;
  PipelineScheduleKind schedule = PipelineScheduleKind::k1F1B;
  // Explicit partition: first layers of stages 1..S-1 (overrides num_stages
  // when non-empty). Empty = balanced by measured cost.
  std::vector<int> boundaries;
  // Inter-stage P2P link.
  NetworkSpec network;
  TimeNs launch_overhead = 7 * kMicrosecond;
  double microbatch_efficiency = 1.0;
};

// Per-layer costs measured from a profiled single-GPU graph: sums of GPU-task
// durations by (layer, phase). GPU time the layer map could not attribute
// (layer_id < 0) is spread across layers proportionally to their attributed
// cost so the pipelined total conserves the profiled compute. Parameter and
// activation sizes come from the model graph.
std::vector<PipelineLayerCost> MeasureLayerCosts(const DependencyGraph& graph,
                                                 const ModelGraph& model);

// Total weight-update GPU time of the profile (split across stages by the
// schedule builder).
TimeNs MeasureWeightUpdateTime(const DependencyGraph& graph);

// Builds the pipeline execution graph predicted for `profiled` under
// `options` without touching `profiled` (exposed for tests and benches that
// need the task-id maps).
PipelineBuild BuildPipelineWhatIf(const DependencyGraph& profiled, const ModelGraph& model,
                                  const PipelineWhatIf& options);

// The SweepRunner-shaped entry point: replaces `*graph` (a clone of the
// profiled single-GPU graph) with the predicted pipeline execution graph.
void WhatIfPipeline(DependencyGraph* graph, const ModelGraph& model,
                    const PipelineWhatIf& options);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_PIPELINE_TRANSFORM_H_

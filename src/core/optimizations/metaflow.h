// What-if model for MetaFlow's relaxed graph substitutions (Algorithm 9, §5.2).
//
// A MetaFlow policy ultimately removes layers or rescales their kernels; the
// paper models a given policy with the layer-wise Remove/Scale operations and
// notes Daydream can serve as the search's cost model. WhatIfMetaFlowFuseConvBn
// is a concrete demo policy: fold every BatchNorm that directly follows a
// convolution into the convolution (a classic MetaFlow/TASO substitution).
#ifndef SRC_CORE_OPTIMIZATIONS_METAFLOW_H_
#define SRC_CORE_OPTIMIZATIONS_METAFLOW_H_

#include "src/core/dependency_graph.h"
#include "src/models/model_graph.h"

namespace daydream {

// Algorithm 9's two building blocks.
void MetaFlowRemoveLayer(DependencyGraph* graph, int layer_id);
void MetaFlowScaleLayer(DependencyGraph* graph, int layer_id, double factor);

// Demo policy: fuse conv+BN pairs (BN removed, conv kernels scaled slightly
// up for the folded affine math).
void WhatIfMetaFlowFuseConvBn(DependencyGraph* graph, const ModelGraph& model,
                              double conv_scale = 1.05);

}  // namespace daydream

#endif  // SRC_CORE_OPTIMIZATIONS_METAFLOW_H_

// Dependency-graph construction from a CUPTI-style trace (§4.2).
//
// Implements the five dependency types of §4.2.2:
//   1. sequential order of CPU tasks in the same thread,
//   2. sequential order of GPU tasks in the same CUDA stream,
//   3. correlation from CUDA launch APIs to the GPU tasks they trigger,
//   4. CUDA synchronization: GPU -> CPU edges for cudaDeviceSynchronize,
//      cudaStreamSynchronize and blocking DtoH memcpys,
//   5. communication-channel ordering (communication tasks are otherwise
//      inserted by graph transformations, which add their semantic edges).
//
// Blocking CPU APIs are stored with their *API overhead* as duration; the
// waiting they exhibit in the measured trace is reproduced by the GPU->CPU
// edge instead, so that transformations that shrink GPU work automatically
// shrink the wait. Gaps are computed against the clipped durations so that
// simulating the untransformed graph reproduces the measured timeline.
#ifndef SRC_CORE_GRAPH_BUILDER_H_
#define SRC_CORE_GRAPH_BUILDER_H_

#include "src/core/dependency_graph.h"
#include "src/core/layer_map.h"
#include "src/trace/trace.h"

namespace daydream {

struct GraphBuildOptions {
  // Upper bound used for the stored duration of blocking sync APIs.
  TimeNs sync_api_floor = 4 * kMicrosecond;
  // Upper bound for the CPU-side duration of blocking DtoH memcpy APIs.
  TimeNs memcpy_api_floor = 9 * kMicrosecond;
  // Attach layer/phase assignments from the synchronization-free layer map.
  bool map_layers = true;
};

DependencyGraph BuildDependencyGraph(const Trace& trace,
                                     const GraphBuildOptions& options = GraphBuildOptions{});

}  // namespace daydream

#endif  // SRC_CORE_GRAPH_BUILDER_H_

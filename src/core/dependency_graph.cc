#include "src/core/dependency_graph.h"

#include <algorithm>
#include <queue>

#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

DependencyGraph::Node& DependencyGraph::node(TaskId id) {
  DD_CHECK_GE(id, 0);
  DD_CHECK_LT(id, static_cast<TaskId>(tasks_.size()));
  return tasks_[static_cast<size_t>(id)];
}

const DependencyGraph::Node& DependencyGraph::node(TaskId id) const {
  DD_CHECK_GE(id, 0);
  DD_CHECK_LT(id, static_cast<TaskId>(tasks_.size()));
  return tasks_[static_cast<size_t>(id)];
}

TaskId DependencyGraph::AddTask(Task task) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  task.id = id;
  sequences_[task.thread].push_back(id);
  Node n;
  n.task = std::move(task);
  tasks_.push_back(std::move(n));
  return id;
}

void DependencyGraph::AddEdge(TaskId from, TaskId to) {
  if (from == to) {
    return;
  }
  DD_CHECK(alive(from)) << "edge from dead task " << from;
  DD_CHECK(alive(to)) << "edge to dead task " << to;
  auto& children = node(from).children;
  if (std::find(children.begin(), children.end(), to) != children.end()) {
    return;
  }
  children.push_back(to);
  node(to).parents.push_back(from);
}

void DependencyGraph::RemoveEdge(TaskId from, TaskId to) {
  auto& children = node(from).children;
  auto cit = std::find(children.begin(), children.end(), to);
  if (cit == children.end()) {
    return;
  }
  children.erase(cit);
  auto& parents = node(to).parents;
  auto pit = std::find(parents.begin(), parents.end(), from);
  DD_CHECK(pit != parents.end());
  parents.erase(pit);
}

bool DependencyGraph::HasEdge(TaskId from, TaskId to) const {
  const auto& children = node(from).children;
  return std::find(children.begin(), children.end(), to) != children.end();
}

void DependencyGraph::LinkSequential() {
  for (const auto& [thread, seq] : sequences_) {
    TaskId prev = kInvalidTask;
    for (TaskId id : seq) {
      if (!alive(id)) {
        continue;
      }
      if (prev != kInvalidTask) {
        AddEdge(prev, id);
      }
      prev = id;
    }
  }
}

TaskId DependencyGraph::InsertAfter(TaskId anchor, Task task) {
  DD_CHECK(alive(anchor));
  const ExecThread thread = task.thread;  // may differ from the anchor's thread
  const TaskId id = static_cast<TaskId>(tasks_.size());
  task.id = id;
  Node n;
  n.task = std::move(task);
  tasks_.push_back(std::move(n));

  auto& seq = sequences_[thread];
  // If the anchor lives on the same thread, splice right after it; otherwise
  // append to the target thread's sequence tail.
  auto pos = std::find(seq.begin(), seq.end(), anchor);
  TaskId next = kInvalidTask;
  if (pos != seq.end()) {
    for (auto it = pos + 1; it != seq.end(); ++it) {
      if (alive(*it)) {
        next = *it;
        break;
      }
    }
    seq.insert(pos + 1, id);
    if (next != kInvalidTask && HasEdge(anchor, next)) {
      RemoveEdge(anchor, next);
    }
    AddEdge(anchor, id);
    if (next != kInvalidTask) {
      AddEdge(id, next);
    }
  } else {
    // Cross-thread insertion: sequential edge from the thread's current tail.
    TaskId tail = kInvalidTask;
    for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
      if (alive(*it)) {
        tail = *it;
        break;
      }
    }
    seq.push_back(id);
    if (tail != kInvalidTask) {
      AddEdge(tail, id);
    }
    AddEdge(anchor, id);
  }
  return id;
}

TaskId DependencyGraph::InsertBefore(TaskId anchor, Task task) {
  DD_CHECK(alive(anchor));
  const ExecThread thread = task.thread;
  DD_CHECK(thread == node(anchor).task.thread)
      << "InsertBefore requires the anchor's thread";
  const TaskId id = static_cast<TaskId>(tasks_.size());
  task.id = id;
  Node n;
  n.task = std::move(task);
  tasks_.push_back(std::move(n));

  auto& seq = sequences_[thread];
  auto pos = std::find(seq.begin(), seq.end(), anchor);
  DD_CHECK(pos != seq.end());
  TaskId prev = kInvalidTask;
  for (auto it = seq.begin(); it != pos; ++it) {
    if (alive(*it)) {
      prev = *it;
    }
  }
  seq.insert(pos, id);
  if (prev != kInvalidTask && HasEdge(prev, anchor)) {
    RemoveEdge(prev, anchor);
  }
  if (prev != kInvalidTask) {
    AddEdge(prev, id);
  }
  AddEdge(id, anchor);
  return id;
}

void DependencyGraph::Remove(TaskId id) {
  DD_CHECK(alive(id));
  Node& n = node(id);
  const std::vector<TaskId> parents = n.parents;
  const std::vector<TaskId> children = n.children;
  for (TaskId p : parents) {
    RemoveEdge(p, id);
  }
  for (TaskId c : children) {
    RemoveEdge(id, c);
  }
  for (TaskId p : parents) {
    for (TaskId c : children) {
      AddEdge(p, c);
    }
  }
  n.alive = false;
  auto& seq = sequences_[n.task.thread];
  auto pos = std::find(seq.begin(), seq.end(), id);
  if (pos != seq.end()) {
    seq.erase(pos);
  }
}

std::vector<TaskId> DependencyGraph::Select(const TaskPredicate& predicate) const {
  std::vector<TaskId> out;
  for (const Node& n : tasks_) {
    if (n.alive && predicate(n.task)) {
      out.push_back(n.task.id);
    }
  }
  return out;
}

Task& DependencyGraph::task(TaskId id) { return node(id).task; }
const Task& DependencyGraph::task(TaskId id) const { return node(id).task; }

bool DependencyGraph::alive(TaskId id) const {
  if (id < 0 || id >= static_cast<TaskId>(tasks_.size())) {
    return false;
  }
  return node(id).alive;
}

std::vector<TaskId> DependencyGraph::AliveTasks() const {
  std::vector<TaskId> out;
  out.reserve(tasks_.size());
  for (const Node& n : tasks_) {
    if (n.alive) {
      out.push_back(n.task.id);
    }
  }
  return out;
}

int DependencyGraph::num_alive() const {
  int n = 0;
  for (const Node& node : tasks_) {
    if (node.alive) {
      ++n;
    }
  }
  return n;
}

const std::vector<TaskId>& DependencyGraph::parents(TaskId id) const { return node(id).parents; }
const std::vector<TaskId>& DependencyGraph::children(TaskId id) const { return node(id).children; }

std::vector<ExecThread> DependencyGraph::Threads() const {
  std::vector<ExecThread> out;
  for (const auto& [thread, seq] : sequences_) {
    for (TaskId id : seq) {
      if (alive(id)) {
        out.push_back(thread);
        break;
      }
    }
  }
  return out;
}

std::vector<TaskId> DependencyGraph::ThreadSequence(const ExecThread& thread) const {
  std::vector<TaskId> out;
  auto it = sequences_.find(thread);
  if (it == sequences_.end()) {
    return out;
  }
  for (TaskId id : it->second) {
    if (alive(id)) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<TaskId> DependencyGraph::TopologicalOrder() const {
  std::vector<int> refs(tasks_.size(), 0);
  std::queue<TaskId> ready;
  int alive_count = 0;
  for (const Node& n : tasks_) {
    if (!n.alive) {
      continue;
    }
    ++alive_count;
    refs[static_cast<size_t>(n.task.id)] = static_cast<int>(n.parents.size());
    if (n.parents.empty()) {
      ready.push(n.task.id);
    }
  }
  std::vector<TaskId> order;
  order.reserve(static_cast<size_t>(alive_count));
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (TaskId c : node(id).children) {
      if (--refs[static_cast<size_t>(c)] == 0) {
        ready.push(c);
      }
    }
  }
  if (static_cast<int>(order.size()) != alive_count) {
    return {};  // cycle
  }
  return order;
}

bool DependencyGraph::Validate(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };
  for (const Node& n : tasks_) {
    if (!n.alive) {
      continue;
    }
    for (TaskId c : n.children) {
      if (!alive(c)) {
        return fail(StrFormat("task %d has dead child %d", n.task.id, c));
      }
      const auto& back = node(c).parents;
      if (std::count(back.begin(), back.end(), n.task.id) != 1) {
        return fail(StrFormat("asymmetric edge %d -> %d", n.task.id, c));
      }
    }
    if (std::count(n.children.begin(), n.children.end(), n.task.id) > 0) {
      return fail(StrFormat("self edge on %d", n.task.id));
    }
    for (size_t i = 0; i < n.children.size(); ++i) {
      for (size_t j = i + 1; j < n.children.size(); ++j) {
        if (n.children[i] == n.children[j]) {
          return fail(StrFormat("duplicate edge %d -> %d", n.task.id, n.children[i]));
        }
      }
    }
  }
  for (const auto& [thread, seq] : sequences_) {
    for (TaskId id : seq) {
      if (alive(id) && !(node(id).task.thread == thread)) {
        return fail(StrFormat("task %d filed under the wrong thread", id));
      }
    }
  }
  if (TopologicalOrder().empty() && num_alive() > 0) {
    return fail("graph contains a cycle");
  }
  return true;
}

DependencyGraph::Stats DependencyGraph::ComputeStats() const {
  Stats s;
  for (const Node& n : tasks_) {
    if (!n.alive) {
      continue;
    }
    ++s.tasks;
    s.edges += static_cast<int>(n.children.size());
    switch (n.task.type) {
      case TaskType::kCpu:
      case TaskType::kDataLoad:
        ++s.cpu_tasks;
        break;
      case TaskType::kGpu:
        ++s.gpu_tasks;
        break;
      case TaskType::kComm:
        ++s.comm_tasks;
        break;
    }
  }
  s.threads = static_cast<int>(Threads().size());
  return s;
}

}  // namespace daydream

#include "src/core/dependency_graph.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <utility>

#include "src/core/graph_lint.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"

namespace daydream {

namespace {

// Globally unique structural-version values: every structural mutation takes
// a fresh stamp from one process-wide counter, so equal stamps can only mean
// "same copy/clone lineage with zero structural mutations since" — two
// unrelated graphs that happen to have performed the same number of
// mutations can never collide.
uint64_t NextStructureStamp() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

DependencyGraph::Node& DependencyGraph::node(TaskId id) {
  DD_CHECK_GE(id, 0);
  DD_CHECK_LT(id, static_cast<TaskId>(tasks_.size()));
  return tasks_[static_cast<size_t>(id)];
}

const DependencyGraph::Node& DependencyGraph::node(TaskId id) const {
  DD_CHECK_GE(id, 0);
  DD_CHECK_LT(id, static_cast<TaskId>(tasks_.size()));
  return tasks_[static_cast<size_t>(id)];
}

int32_t DependencyGraph::InternThread(const ExecThread& thread) {
  const auto [it, inserted] =
      thread_index_.try_emplace(ThreadKey(thread), static_cast<int32_t>(threads_.size()));
  if (inserted) {
    ThreadSeq seq;
    seq.thread = thread;
    threads_.push_back(seq);
  }
  return it->second;
}

TaskId DependencyGraph::MakeNode(Task task) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  task.id = id;
  Node n;
  n.task = std::move(task);
  tasks_.push_back(std::move(n));
  ++num_alive_;
  structure_stamp_ = NextStructureStamp();
  return id;
}

void DependencyGraph::LinkAtTail(int32_t lane, TaskId id) {
  ThreadSeq& seq = threads_[static_cast<size_t>(lane)];
  Node& n = node(id);
  n.lane = lane;
  n.seq_prev = seq.tail;
  n.seq_next = kInvalidTask;
  if (seq.tail != kInvalidTask) {
    node(seq.tail).seq_next = id;
  } else {
    seq.head = id;
  }
  seq.tail = id;
  ++seq.alive_count;
}

void DependencyGraph::LinkAfter(TaskId anchor, TaskId id) {
  Node& a = node(anchor);
  const int32_t lane = a.lane;
  ThreadSeq& seq = threads_[static_cast<size_t>(lane)];
  const TaskId next = a.seq_next;
  Node& n = node(id);
  n.lane = lane;
  n.seq_prev = anchor;
  n.seq_next = next;
  node(anchor).seq_next = id;
  if (next != kInvalidTask) {
    node(next).seq_prev = id;
  } else {
    seq.tail = id;
  }
  ++seq.alive_count;
}

void DependencyGraph::LinkBefore(TaskId anchor, TaskId id) {
  Node& a = node(anchor);
  const int32_t lane = a.lane;
  ThreadSeq& seq = threads_[static_cast<size_t>(lane)];
  const TaskId prev = a.seq_prev;
  Node& n = node(id);
  n.lane = lane;
  n.seq_prev = prev;
  n.seq_next = anchor;
  node(anchor).seq_prev = id;
  if (prev != kInvalidTask) {
    node(prev).seq_next = id;
  } else {
    seq.head = id;
  }
  ++seq.alive_count;
}

void DependencyGraph::Unlink(TaskId id) {
  Node& n = node(id);
  DD_CHECK_GE(n.lane, 0);
  ThreadSeq& seq = threads_[static_cast<size_t>(n.lane)];
  if (n.seq_prev != kInvalidTask) {
    node(n.seq_prev).seq_next = n.seq_next;
  } else {
    seq.head = n.seq_next;
  }
  if (n.seq_next != kInvalidTask) {
    node(n.seq_next).seq_prev = n.seq_prev;
  } else {
    seq.tail = n.seq_prev;
  }
  n.seq_prev = kInvalidTask;
  n.seq_next = kInvalidTask;
  n.lane = -1;
  --seq.alive_count;
}

TaskId DependencyGraph::AddTask(Task task) {
  const int32_t lane = InternThread(task.thread);
  const TaskId id = MakeNode(std::move(task));
  LinkAtTail(lane, id);
  IndexNewTask(id);
  return id;
}

void DependencyGraph::Reserve(int tasks) { tasks_.reserve(static_cast<size_t>(tasks)); }

void DependencyGraph::AddEdge(TaskId from, TaskId to) {
  if (from == to) {
    return;
  }
  DD_CHECK(alive(from)) << "edge from dead task " << from;
  DD_CHECK(alive(to)) << "edge to dead task " << to;
  auto& children = node(from).children;
  if (std::find(children.begin(), children.end(), to) != children.end()) {
    return;
  }
  children.push_back(to);
  node(to).parents.push_back(from);
  structure_stamp_ = NextStructureStamp();
}

void DependencyGraph::RemoveEdge(TaskId from, TaskId to) {
  auto& children = node(from).children;
  auto cit = std::find(children.begin(), children.end(), to);
  if (cit == children.end()) {
    return;
  }
  children.erase(cit);
  auto& parents = node(to).parents;
  auto pit = std::find(parents.begin(), parents.end(), from);
  DD_CHECK(pit != parents.end());
  parents.erase(pit);
  structure_stamp_ = NextStructureStamp();
}

bool DependencyGraph::HasEdge(TaskId from, TaskId to) const {
  const auto& children = node(from).children;
  return std::find(children.begin(), children.end(), to) != children.end();
}

void DependencyGraph::LinkSequential() {
  for (const ThreadSeq& seq : threads_) {
    TaskId prev = kInvalidTask;
    for (TaskId id = seq.head; id != kInvalidTask; id = node(id).seq_next) {
      if (prev != kInvalidTask) {
        AddEdge(prev, id);
      }
      prev = id;
    }
  }
}

TaskId DependencyGraph::InsertAfter(TaskId anchor, Task task) {
  DD_CHECK(alive(anchor));
  // The anchor's position matters only when it lives on the target thread;
  // otherwise the task is appended to that thread's tail (cross-thread
  // insertion, e.g. a GPU task anchored on its CPU launch).
  const bool same_lane = task.thread == node(anchor).task.thread;
  const int32_t lane = same_lane ? -1 : InternThread(task.thread);
  const TaskId id = MakeNode(std::move(task));
  if (same_lane) {
    const TaskId next = node(anchor).seq_next;
    LinkAfter(anchor, id);
    if (next != kInvalidTask && HasEdge(anchor, next)) {
      RemoveEdge(anchor, next);
    }
    AddEdge(anchor, id);
    if (next != kInvalidTask) {
      AddEdge(id, next);
    }
  } else {
    // Sequential edge from the thread's current tail, then the semantic
    // anchor edge.
    const TaskId tail = threads_[static_cast<size_t>(lane)].tail;
    LinkAtTail(lane, id);
    if (tail != kInvalidTask) {
      AddEdge(tail, id);
    }
    AddEdge(anchor, id);
  }
  IndexNewTask(id);
  return id;
}

TaskId DependencyGraph::InsertBefore(TaskId anchor, Task task) {
  DD_CHECK(alive(anchor));
  DD_CHECK(task.thread == node(anchor).task.thread)
      << "InsertBefore requires the anchor's thread";
  const TaskId id = MakeNode(std::move(task));
  const TaskId prev = node(anchor).seq_prev;
  LinkBefore(anchor, id);
  if (prev != kInvalidTask && HasEdge(prev, anchor)) {
    RemoveEdge(prev, anchor);
  }
  if (prev != kInvalidTask) {
    AddEdge(prev, id);
  }
  AddEdge(id, anchor);
  IndexNewTask(id);
  return id;
}

void DependencyGraph::Remove(TaskId id) {
  DD_CHECK(alive(id));
  Unlink(id);
  Node& n = node(id);
  const std::vector<TaskId> parents = std::move(n.parents);
  const std::vector<TaskId> children = std::move(n.children);
  n.parents.clear();
  n.children.clear();
  for (TaskId p : parents) {
    auto& pc = node(p).children;
    pc.erase(std::find(pc.begin(), pc.end(), id));
  }
  for (TaskId c : children) {
    auto& cp = node(c).parents;
    cp.erase(std::find(cp.begin(), cp.end(), id));
  }
  // Figure 4 rewiring with an O(1) duplicate check: mark each parent's
  // existing children once instead of scanning its child list per candidate
  // (which made Remove O(parents x children x degree)).
  if (mark_.size() < tasks_.size()) {
    mark_.resize(tasks_.size(), 0);
  }
  for (TaskId p : parents) {
    ++mark_epoch_;
    auto& pc = node(p).children;
    for (TaskId existing : pc) {
      mark_[static_cast<size_t>(existing)] = mark_epoch_;
    }
    for (TaskId c : children) {
      if (c == p || mark_[static_cast<size_t>(c)] == mark_epoch_) {
        continue;
      }
      mark_[static_cast<size_t>(c)] = mark_epoch_;
      pc.push_back(c);
      node(c).parents.push_back(p);
    }
  }
  n.alive = false;
  --num_alive_;
  structure_stamp_ = NextStructureStamp();
  if (indexes_built_) {
    meta_[static_cast<size_t>(id)].bits = 0;  // bucket compaction drops the entry
  }
}

std::vector<TaskId> DependencyGraph::SelectByScan(const TaskQuery& query) const {
  std::vector<TaskId> out;
  for (const Node& n : tasks_) {
    if (n.alive && query.Matches(n.task)) {
      out.push_back(n.task.id);
    }
  }
  return out;
}

// One walk both answers the query and compacts entries that left the bucket
// (dead tasks, or tasks whose phase/layer was re-assigned). The walk streams
// the 8-byte meta records; the full ~200-byte node is only touched when the
// query carries residual predicates. Bucket ids are index-maintained, so they
// are in range by construction.
template <typename Emit>
void DependencyGraph::VisitBucket(Bucket& bucket, bool by_layer, const TaskQuery& query,
                                  Emit&& emit) const {
  if (!bucket.sorted) {
    std::sort(bucket.ids.begin(), bucket.ids.end());
    bucket.ids.erase(std::unique(bucket.ids.begin(), bucket.ids.end()), bucket.ids.end());
    bucket.sorted = true;
  }
  const bool need_task = !query.residual.empty();
  size_t keep = 0;
  for (size_t i = 0; i < bucket.ids.size(); ++i) {
    const TaskId id = bucket.ids[i];
    const TaskMeta m = meta_[static_cast<size_t>(id)];
    const bool belongs =
        m.alive() && (by_layer ? m.layer == *query.layer_id : m.phase() == *query.phase);
    if (!belongs) {
      continue;
    }
    if (keep != i) {
      bucket.ids[keep] = id;
    }
    ++keep;
    if ((query.type_mask & TaskTypeBit(m.type())) == 0) {
      continue;
    }
    if (by_layer && query.phase.has_value() && m.phase() != *query.phase) {
      continue;
    }
    if (!by_layer && query.layer_id.has_value() && m.layer != *query.layer_id) {
      continue;
    }
    if (need_task && !query.Matches(tasks_[static_cast<size_t>(id)].task)) {
      continue;
    }
    emit(id);
  }
  bucket.ids.resize(keep);
}

DependencyGraph::Bucket* DependencyGraph::BucketFor(const TaskQuery& query,
                                                    bool* by_layer) const {
  if (query.impossible || !select_indexing_enabled_ ||
      (!query.layer_id.has_value() && !query.phase.has_value())) {
    return nullptr;
  }
  EnsureSelectIndexes();
  FlushDirtyIndexEntries();
  if (query.layer_id.has_value()) {
    // Layer buckets are the more selective index (a layer holds a handful of
    // tasks; a phase holds a large fraction of the graph).
    *by_layer = true;
    return &layer_buckets_[*query.layer_id];
  }
  const size_t phase = static_cast<size_t>(*query.phase);
  DD_CHECK_LT(phase, kNumPhases);
  *by_layer = false;
  return &phase_buckets_[phase];
}

std::vector<TaskId> DependencyGraph::SelectFromBucket(Bucket& bucket, bool by_layer,
                                                      const TaskQuery& query) const {
  std::vector<TaskId> out;
  out.reserve(bucket.ids.size());
  VisitBucket(bucket, by_layer, query, [&out](TaskId id) { out.push_back(id); });
  return out;
}

std::vector<TaskId> DependencyGraph::Select(const TaskQuery& query) const {
  if (query.impossible) {
    return {};
  }
  bool by_layer = false;
  Bucket* bucket = BucketFor(query, &by_layer);
  if (bucket == nullptr) {
    return SelectByScan(query);
  }
  return SelectFromBucket(*bucket, by_layer, query);
}

void DependencyGraph::ForEachSelected(const TaskQuery& query,
                                      const std::function<void(const Task&)>& fn) const {
  if (query.impossible) {
    return;
  }
  bool by_layer = false;
  Bucket* bucket = BucketFor(query, &by_layer);
  if (bucket == nullptr) {
    for (const Node& n : tasks_) {
      if (n.alive && query.Matches(n.task)) {
        fn(n.task);
      }
    }
    return;
  }
  VisitBucket(*bucket, by_layer, query,
              [&](TaskId id) { fn(tasks_[static_cast<size_t>(id)].task); });
}

std::vector<TaskId> DependencyGraph::Select(const TaskPredicate& predicate) const {
  std::vector<TaskId> out;
  for (const Node& n : tasks_) {
    if (n.alive && predicate(n.task)) {
      out.push_back(n.task.id);
    }
  }
  return out;
}

void DependencyGraph::EnsureSelectIndexes() const {
  if (indexes_built_ || !select_indexing_enabled_) {
    return;
  }
  meta_.assign(tasks_.size(), TaskMeta{});
  for (const Node& n : tasks_) {
    if (!n.alive) {
      continue;
    }
    const size_t phase = static_cast<size_t>(n.task.phase);
    DD_CHECK_LT(phase, kNumPhases);
    phase_buckets_[phase].ids.push_back(n.task.id);
    layer_buckets_[n.task.layer_id].ids.push_back(n.task.id);
    meta_[static_cast<size_t>(n.task.id)] =
        TaskMeta{n.task.layer_id, TaskMeta::Bits(true, n.task.type, n.task.phase)};
  }
  indexes_built_ = true;
}

void DependencyGraph::IndexNewTask(TaskId id) const {
  if (!indexes_built_) {
    return;
  }
  const Task& t = node(id).task;
  const size_t phase = static_cast<size_t>(t.phase);
  DD_CHECK_LT(phase, kNumPhases);
  Bucket& pb = phase_buckets_[phase];
  pb.sorted = pb.sorted && (pb.ids.empty() || pb.ids.back() < id);
  pb.ids.push_back(id);
  Bucket& lb = layer_buckets_[t.layer_id];
  lb.sorted = lb.sorted && (lb.ids.empty() || lb.ids.back() < id);
  lb.ids.push_back(id);
  meta_.resize(tasks_.size(), TaskMeta{});
  meta_[static_cast<size_t>(id)] = TaskMeta{t.layer_id, TaskMeta::Bits(true, t.type, t.phase)};
}

void DependencyGraph::MarkDirty(TaskId id) {
  if (!indexes_built_) {
    return;
  }
  if (dirty_stamp_.size() < tasks_.size()) {
    dirty_stamp_.resize(tasks_.size(), 0);
  }
  uint32_t& stamp = dirty_stamp_[static_cast<size_t>(id)];
  if (stamp != dirty_epoch_) {
    stamp = dirty_epoch_;
    dirty_.push_back(id);
  }
}

void DependencyGraph::FlushDirtyIndexEntries() const {
  if (dirty_.empty()) {
    return;
  }
  for (TaskId id : dirty_) {
    const Node& n = node(id);
    if (!n.alive) {
      continue;  // bucket compaction drops it
    }
    TaskMeta& m = meta_[static_cast<size_t>(id)];
    if (m.phase() != n.task.phase) {
      const size_t phase = static_cast<size_t>(n.task.phase);
      DD_CHECK_LT(phase, kNumPhases);
      Bucket& pb = phase_buckets_[phase];
      pb.sorted = pb.sorted && (pb.ids.empty() || pb.ids.back() < id);
      pb.ids.push_back(id);
    }
    if (m.layer != n.task.layer_id) {
      Bucket& lb = layer_buckets_[n.task.layer_id];
      lb.sorted = lb.sorted && (lb.ids.empty() || lb.ids.back() < id);
      lb.ids.push_back(id);
    }
    m = TaskMeta{n.task.layer_id, TaskMeta::Bits(true, n.task.type, n.task.phase)};
  }
  dirty_.clear();
  ++dirty_epoch_;
}

Task& DependencyGraph::task(TaskId id) {
  // The caller may change any field, including phase/layer: remember the id so
  // the next structured Select re-buckets it. Exception: `thread` must not be
  // reassigned here — the intrusive lane sequences (and any compiled SimPlan)
  // key off it; moving a task between lanes is not a supported mutation.
  MarkDirty(id);
  return node(id).task;
}

const Task& DependencyGraph::task(TaskId id) const { return node(id).task; }

bool DependencyGraph::alive(TaskId id) const {
  if (id < 0 || id >= static_cast<TaskId>(tasks_.size())) {
    return false;
  }
  return node(id).alive;
}

std::vector<TaskId> DependencyGraph::AliveTasks() const {
  std::vector<TaskId> out;
  out.reserve(static_cast<size_t>(num_alive_));
  for (const Node& n : tasks_) {
    if (n.alive) {
      out.push_back(n.task.id);
    }
  }
  return out;
}

const std::vector<TaskId>& DependencyGraph::parents(TaskId id) const { return node(id).parents; }
const std::vector<TaskId>& DependencyGraph::children(TaskId id) const { return node(id).children; }

std::vector<ExecThread> DependencyGraph::Threads() const {
  std::vector<ExecThread> out;
  out.reserve(threads_.size());
  for (const ThreadSeq& seq : threads_) {
    if (seq.alive_count > 0) {
      out.push_back(seq.thread);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TaskId> DependencyGraph::ThreadSequence(const ExecThread& thread) const {
  std::vector<TaskId> out;
  auto it = thread_index_.find(ThreadKey(thread));
  if (it == thread_index_.end()) {
    return out;
  }
  const ThreadSeq& seq = threads_[static_cast<size_t>(it->second)];
  out.reserve(static_cast<size_t>(seq.alive_count));
  for (TaskId id = seq.head; id != kInvalidTask; id = node(id).seq_next) {
    out.push_back(id);
  }
  return out;
}

TaskId DependencyGraph::NextInThread(TaskId id) const {
  DD_CHECK(alive(id));
  return node(id).seq_next;
}

TaskId DependencyGraph::PrevInThread(TaskId id) const {
  DD_CHECK(alive(id));
  return node(id).seq_prev;
}

int DependencyGraph::lane_of(TaskId id) const {
  DD_CHECK(alive(id));
  return node(id).lane;
}

const ExecThread& DependencyGraph::lane_thread(int lane) const {
  DD_CHECK_GE(lane, 0);
  DD_CHECK_LT(lane, num_lanes());
  return threads_[static_cast<size_t>(lane)].thread;
}

DependencyGraph DependencyGraph::Clone() const {
  if (indexes_built_) {
    FlushDirtyIndexEntries();
  }
  DependencyGraph out;
  const size_t n = tasks_.size();
  // Headroom so the typical transform's inserts never trigger the O(V) node
  // move a capacity-exact copy pays on its first AddTask.
  out.tasks_.reserve(n + n / 8 + 64);
  for (const Node& src : tasks_) {
    if (src.alive) {
      out.tasks_.push_back(src);
    } else {
      // Dead slot: keep the id space (and tie-break determinism) but drop the
      // payload — nothing reads a dead task's data.
      Node dead;
      dead.task.id = src.task.id;
      dead.alive = false;
      out.tasks_.push_back(std::move(dead));
    }
  }
  out.num_alive_ = num_alive_;
  out.structure_stamp_ = structure_stamp_;
  out.threads_ = threads_;
  out.thread_index_ = thread_index_;
  out.select_indexing_enabled_ = select_indexing_enabled_;
  out.indexes_built_ = indexes_built_;
  if (indexes_built_) {
    out.phase_buckets_ = phase_buckets_;
    out.layer_buckets_ = layer_buckets_;
    out.meta_ = meta_;
  }
  return out;
}

std::vector<TaskId> DependencyGraph::TopologicalOrder() const {
  std::vector<int> refs(tasks_.size(), 0);
  std::queue<TaskId> ready;
  for (const Node& n : tasks_) {
    if (!n.alive) {
      continue;
    }
    refs[static_cast<size_t>(n.task.id)] = static_cast<int>(n.parents.size());
    if (n.parents.empty()) {
      ready.push(n.task.id);
    }
  }
  std::vector<TaskId> order;
  order.reserve(static_cast<size_t>(num_alive_));
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (TaskId c : node(id).children) {
      if (--refs[static_cast<size_t>(c)] == 0) {
        ready.push(c);
      }
    }
  }
  if (static_cast<int>(order.size()) != num_alive_) {
    return {};  // cycle
  }
  return order;
}

bool DependencyGraph::Validate(std::string* error) const {
  // The structural invariants are one GraphLint subset; stop at the first
  // finding since this API reports exactly one. Callers that want the full
  // report (all findings, cycle paths) call GraphLint directly.
  LintOptions options;
  options.max_findings = 1;
  const LintReport report = GraphLint::LintStructure(*this, options);
  if (report.ok()) {
    return true;
  }
  if (error != nullptr) {
    const LintFinding& f = report.findings.front();
    *error = f.pass + ": " + f.message;
  }
  return false;
}

DependencyGraph::Stats DependencyGraph::ComputeStats() const {
  Stats s;
  for (const Node& n : tasks_) {
    if (!n.alive) {
      continue;
    }
    ++s.tasks;
    s.edges += static_cast<int>(n.children.size());
    switch (n.task.type) {
      case TaskType::kCpu:
      case TaskType::kDataLoad:
        ++s.cpu_tasks;
        break;
      case TaskType::kGpu:
        ++s.gpu_tasks;
        break;
      case TaskType::kComm:
        ++s.comm_tasks;
        break;
    }
  }
  for (const ThreadSeq& seq : threads_) {
    if (seq.alive_count > 0) {
      ++s.threads;
    }
  }
  return s;
}

}  // namespace daydream

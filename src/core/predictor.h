// Daydream's top-level what-if API (Figure 2 workflow).
//
//   Trace trace = ...;                       // Phase 1: collected profile
//   Daydream dd(trace);                      // Phase 2: dependency graph
//   PredictionResult r = dd.Predict([](DependencyGraph& g) {
//     WhatIfAmp(&g);                         // Phase 3: graph transformation
//   });                                      // Phase 4: simulation
//   r.predicted / r.SpeedupPct() ...
#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <functional>
#include <memory>

#include "src/core/dependency_graph.h"
#include "src/core/graph_builder.h"
#include "src/core/sim_plan.h"
#include "src/core/simulator.h"
#include "src/trace/trace.h"

namespace daydream {

struct PredictionResult {
  TimeNs baseline = 0;   // simulated makespan of the untransformed graph
  TimeNs predicted = 0;  // simulated makespan after the transformation

  double SpeedupPct() const;   // (baseline - predicted) / baseline * 100
  double SpeedupRatio() const; // baseline / predicted
};

class Daydream {
 public:
  explicit Daydream(Trace trace, GraphBuildOptions options = GraphBuildOptions{});

  // Adopts a dependency graph that was already built (and verified) for
  // `trace` — the service layer builds the graph first so it can refuse a
  // malformed trace with a lint report instead of aborting mid-construction,
  // then hands the verified graph over without paying a second build.
  Daydream(Trace trace, DependencyGraph graph);

  const Trace& trace() const { return trace_; }
  const DependencyGraph& graph() const { return graph_; }
  // Cheap per-what-if copy (DependencyGraph::Clone): dead-node payloads are
  // compacted, insertion headroom is reserved, and the interned thread table
  // plus warm select indexes are carried over instead of being rebuilt.
  DependencyGraph CloneGraph() const { return graph_.Clone(); }

  // The baseline graph compiled once for the default scheduler ("profile
  // once"): Evaluate retimes it for timing-only what-ifs, and SweepRunner
  // shares its structure block across every case that leaves the graph
  // structure untouched.
  const SimPlan& baseline_plan() const { return baseline_plan_; }

  // Simulated makespan of the baseline graph — should reproduce the measured
  // iteration time (validated in tests).
  TimeNs BaselineSimTime() const;

  // Applies `transform` to a copy of the graph and simulates it.
  // `engine` selects the simulation engine (EngineKind::kReference is the
  // differential-debugging path behind `--engine=reference`).
  PredictionResult Predict(const std::function<void(DependencyGraph*)>& transform,
                           std::shared_ptr<Scheduler> scheduler = nullptr,
                           EngineKind engine = EngineKind::kEvent) const;

  // Simulates an already-transformed graph against this baseline.
  PredictionResult Evaluate(const DependencyGraph& transformed,
                            std::shared_ptr<Scheduler> scheduler = nullptr,
                            EngineKind engine = EngineKind::kEvent) const;

 private:
  // Shared tail of both constructors: validate, warm the select indexes,
  // compile + run the baseline plan.
  void InitBaseline();

  Trace trace_;
  DependencyGraph graph_;
  SimPlan baseline_plan_;
  TimeNs baseline_sim_;
};

}  // namespace daydream

#endif  // SRC_CORE_PREDICTOR_H_

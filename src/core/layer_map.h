// Synchronization-free task-to-layer mapping (§4.3, Figure 3).
//
// CUPTI events carry no application knowledge. The framework instrumentation
// stamps begin/end timestamps around each layer phase on the CPU; every CUDA
// launch that falls inside a layer's CPU window belongs to that layer, and the
// correlation id carries the assignment to the GPU kernel the launch triggers.
// No CUDA synchronization is needed, so profiling does not perturb the run.
#ifndef SRC_CORE_LAYER_MAP_H_
#define SRC_CORE_LAYER_MAP_H_

#include <vector>

#include "src/trace/trace.h"

namespace daydream {

struct LayerAssignment {
  int layer_id = -1;
  Phase phase = Phase::kUnknown;
};

class LayerMap {
 public:
  // Computes the mapping for every event in `trace`, using only the layer
  // markers, event timestamps and correlation ids (never the layer fields the
  // executor may have stamped on kernel events).
  static LayerMap Compute(const Trace& trace);

  // Assignment for the event at `event_index` in trace.events().
  const LayerAssignment& assignment(size_t event_index) const;

  size_t size() const { return assignments_.size(); }

  // Fraction of GPU events that received a layer assignment (diagnostics).
  double GpuCoverage(const Trace& trace) const;

 private:
  std::vector<LayerAssignment> assignments_;
};

}  // namespace daydream

#endif  // SRC_CORE_LAYER_MAP_H_

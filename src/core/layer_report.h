// Per-layer profiler report — the "framework built-in tool" view (§2.3).
//
// The paper argues that layer-level summaries are intuitive for "where does
// the time go" questions but insufficient for prediction. Daydream subsumes
// them: this module folds the kernel-level trace back up to layers using the
// synchronization-free mapping, giving per-layer CPU/GPU time per phase.
#ifndef SRC_CORE_LAYER_REPORT_H_
#define SRC_CORE_LAYER_REPORT_H_

#include <string>
#include <vector>

#include "src/trace/trace.h"

namespace daydream {

struct LayerPhaseStats {
  int layer_id = -1;
  std::string layer_name;
  Phase phase = Phase::kUnknown;
  TimeNs cpu_span = 0;   // begin->end window on the control thread
  TimeNs gpu_busy = 0;   // sum of mapped GPU kernel durations
  int kernels = 0;       // mapped GPU kernels
  int launches = 0;      // CPU launch APIs in the window
};

struct LayerReport {
  std::vector<LayerPhaseStats> rows;  // ordered by first occurrence

  // Aggregate GPU-busy time per phase across all layers.
  TimeNs GpuBusy(Phase phase) const;
  // Top-k rows by GPU busy time (ties by layer id), across all phases.
  std::vector<LayerPhaseStats> TopByGpuTime(size_t k) const;
  // ASCII rendering of the top-k table.
  std::string ToString(size_t top_k = 15) const;
};

// Builds the report from a profiled trace (uses the §4.3 mapping, so it works
// on any trace with layer markers — including reloaded ones).
LayerReport BuildLayerReport(const Trace& trace);

}  // namespace daydream

#endif  // SRC_CORE_LAYER_REPORT_H_

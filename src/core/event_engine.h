// Indexed, event-driven implementation of Algorithm 1.
//
// The reference engine re-scans the whole frontier on every dispatch and
// erases from the middle of a vector — O(N·F) on the wide graphs the
// distributed and P3 what-ifs produce. This engine keeps the ready set
// indexed so one dispatch costs O(log F):
//
//   per thread:   now    — ready tasks whose earliest-start bound has already
//                          passed; they are feasible exactly at the thread's
//                          progress, so only the scheduler tie-break orders
//                          them (std::set over TieBreakLess ∘ id).
//                 future — ready tasks still gated by a parent's completion,
//                          ordered by (earliest bound, tie-break). When the
//                          thread's progress advances past a bound the task
//                          migrates to `now` (each task migrates at most once).
//   globally:     one entry per thread — its head task keyed by feasible time
//                 and tie-break — in an ordered index; the minimum is the next
//                 dispatch, exactly the task Algorithm 1's scan would pick.
//
// Dispatching a task touches only its own thread's structures plus the threads
// of any children it makes ready, so the engine is event-driven in the DES
// sense: dispatch times are non-decreasing and no state is recomputed.
#ifndef SRC_CORE_EVENT_ENGINE_H_
#define SRC_CORE_EVENT_ENGINE_H_

#include "src/core/dependency_graph.h"
#include "src/core/simulator.h"

namespace daydream {

// Runs the event-driven engine; `scheduler` must be comparator-based
// (Scheduler::comparator_based() true). Produces the same SimResult as
// Simulator::RunReference for the built-in schedulers.
SimResult RunEventEngine(const DependencyGraph& graph, const Scheduler& scheduler);

}  // namespace daydream

#endif  // SRC_CORE_EVENT_ENGINE_H_

// Indexed, event-driven implementation of Algorithm 1 over a compiled plan.
//
// The reference engine re-scans the whole frontier on every dispatch and
// erases from the middle of a vector — O(N·F) on the wide graphs the
// distributed and P3 what-ifs produce. This engine runs over a SimPlan
// (src/core/sim_plan.h): the graph's structure is frozen into SoA/CSR arrays
// and the scheduler's tie-break into packed integer keys, so one dispatch
// costs O(log F) with no virtual calls and no graph indirection:
//
//   per lane:     now    — ready tasks whose earliest-start bound has already
//                          passed; they are feasible exactly at the lane's
//                          progress, so only the pre-resolved key orders them
//                          (a min-heap of packed uint64 keys).
//                 future — ready tasks still gated by a parent's completion,
//                          ordered by (earliest bound, key). When the lane's
//                          progress advances past a bound the task migrates
//                          to `now` (each task migrates at most once).
//   globally:     one entry per lane — its head task keyed by feasible time
//                 and key — in an ordered index; the minimum is the next
//                 dispatch, exactly the task Algorithm 1's scan would pick.
//
// Dispatching a task touches only its own lane's structures plus the lanes
// of any children it makes ready, so the engine is event-driven in the DES
// sense: dispatch times are non-decreasing and no state is recomputed.
#ifndef SRC_CORE_EVENT_ENGINE_H_
#define SRC_CORE_EVENT_ENGINE_H_

#include "src/core/dependency_graph.h"
#include "src/core/sim_plan.h"
#include "src/core/simulator.h"

namespace daydream {

// Compile-and-run convenience: freezes `graph` for `scheduler` (must be
// comparator-based) and dispatches the plan. Produces the same SimResult as
// Simulator::RunReference. Callers that simulate one graph repeatedly (or
// retime it) should hold the SimPlan themselves and call plan.Run().
SimResult RunEventEngine(const DependencyGraph& graph, const Scheduler& scheduler);

// The plan-dispatch loop itself is declared in src/core/sim_plan.h
// (RunEventEngine(const SimPlan&)) and defined in event_engine.cc.

}  // namespace daydream

#endif  // SRC_CORE_EVENT_ENGINE_H_

// GraphLint: a pass-based static verifier for dependency graphs and compiled
// simulation plans.
//
// Daydream's predictions are only as good as the graphs its what-if
// transforms synthesize, and the failure mode is silent: a transform that
// wires an anchor edge backward in time produces a cyclic graph that only
// surfaces as an abort deep inside the sweep (the multi-iteration
// WhatIfGist/WhatIfDistributed bug class). With planners generating thousands
// of candidate graphs per query, malformed candidates must be rejected
// *cheaply* and with diagnostics that say what is broken, where — not just
// "validate failed".
//
// GraphLint runs a catalog of named passes, each detecting one defect class:
//
//   graph passes (GraphLint::LintGraph / LintStructure):
//     edge-integrity      dangling (dead-endpoint), asymmetric, duplicate and
//                         self edges
//     acyclic             dependency cycles, reported with the actual cycle
//                         path (task ids + names), found by iterative DFS
//     thread-sequence     broken intrusive prev/next splices: asymmetric
//                         links, dead tasks still linked, wrong lane field,
//                         stale head/tail, alive-count drift, chain cycles
//     orphan-lane         alive tasks on no lane chain; lanes whose
//                         bookkeeping says they have tasks but whose chain is
//                         empty
//     duration-sanity     negative durations/gaps
//     timestamp-monotone  measured per-thread start times that go backward
//                         along a lane (unmeasured tasks — start == 0, the
//                         transform-inserted shape — are skipped)  [warning]
//     iteration-anchor    edges between measured tasks that point backward
//                         across IterationStarts windows — the exact
//                         cross-iteration anchor bug class PR 5 fixed
//     schedule-smell      feasibility smells: tasks starved behind a cycle,
//                         zero-duration communication carrying priced bytes
//                         [warning]
//
//   plan passes (GraphLint::LintPlan, against the graph the plan claims to
//   represent):
//     plan-stamp          stale structure_stamp / capacity / task-id set —
//                         the plan no longer describes this graph
//     plan-csr            CSR consistency: succ_offset monotone and in
//                         range, pred_count vs successor symmetry,
//                         initial_ready == the zero-indegree set
//     plan-lane           lane table consistency: lane ids in range, dense
//                         per-lane sequences are a grouped permutation, lane
//                         assignment matches the graph
//     plan-timing         SoA duration/gap arrays match the graph's current
//                         timings (detects a missed Retime)
//
//   shard passes (GraphLint::LintShards, against the plan the shard plan was
//   compiled from):
//     shard-partition     shard lane assignment is a disjoint cover of the
//                         plan's lanes; grouped lane lists and per-shard task
//                         counts agree with it
//     shard-edges         cross-shard window entries correspond 1:1 with the
//                         CSR's cross-shard edges (and intra-shard edges have
//                         none); sources match
//     shard-horizon       per-shard window bounds are monotone non-decreasing
//                         and equal the sources' static completion bounds;
//                         the static lower bounds satisfy the longest-path
//                         recurrence over the CSR
//
// Severities: kError findings mean simulation is meaningless or will abort;
// kWarning findings are smells worth surfacing but legal to simulate.
// Entry points:
//   - DependencyGraph::Validate() routes through LintStructure (structural
//     passes only) and reports the first error,
//   - SweepRunner lints every transformed case (full pass set in strict
//     mode — SweepOptions::validate / `daydream sweep --validate`),
//   - `daydream lint` exposes the full catalog on the CLI (--json for
//     machine-readable findings),
//   - planners prune broken candidates via LintGraph().ok().
#ifndef SRC_CORE_GRAPH_LINT_H_
#define SRC_CORE_GRAPH_LINT_H_

#include <string>
#include <vector>

#include "src/core/dependency_graph.h"

namespace daydream {

class ShardPlan;
class SimPlan;

enum class LintSeverity { kWarning, kError };
const char* ToString(LintSeverity severity);

// One defect found by one pass. `tasks` holds the offending task ids — for
// an "acyclic" finding it is the actual cycle path (first task repeated at
// the end); `lane` is the offending execution lane's label when the defect is
// lane-shaped.
struct LintFinding {
  std::string pass;
  LintSeverity severity = LintSeverity::kError;
  std::string message;
  std::vector<TaskId> tasks;
  std::string lane;
};

struct LintOptions {
  // Timing passes (timestamp-monotone, iteration-anchor) read measured start
  // times; disable for graphs with no meaningful measured placement.
  bool timing_passes = true;
  // Heuristic schedule-smell warnings.
  bool smell_passes = true;
  // Findings are capped so lint stays cheap and readable on badly broken
  // graphs; LintReport::truncated records that the cap was hit.
  int max_findings = 64;
};

struct LintReport {
  std::vector<LintFinding> findings;
  std::vector<std::string> passes_run;
  bool truncated = false;

  bool ok() const { return num_errors == 0; }
  int errors() const { return num_errors; }
  int warnings() const { return num_warnings; }
  const LintFinding* FirstError() const;

  // "clean, 9 passes" / "3 errors, 1 warning (9 passes)".
  std::string Summary() const;
  // Multi-line human-readable report: one "[severity] pass: message" line per
  // finding plus the summary.
  std::string ToString() const;
  // Machine-readable form for `daydream lint --json` and planner consumers.
  std::string ToJson() const;

  // Maintained by the lint driver; callers only read.
  int num_errors = 0;
  int num_warnings = 0;
};

class GraphLint {
 public:
  // Full pass catalog over a graph.
  static LintReport LintGraph(const DependencyGraph& graph, const LintOptions& options = {});

  // Structural passes only (edge-integrity, acyclic, thread-sequence,
  // orphan-lane, duration-sanity) — the invariant set every consumer of the
  // graph relies on. Backs DependencyGraph::Validate().
  static LintReport LintStructure(const DependencyGraph& graph, const LintOptions& options = {});

  // Plan passes: verifies `plan` against the graph it claims to represent.
  static LintReport LintPlan(const SimPlan& plan, const DependencyGraph& graph,
                             const LintOptions& options = {});

  // Shard passes: verifies a shard plan's partition and window metadata
  // against the plan it was compiled from. Sharded dispatch trusts this
  // metadata unconditionally (the engine indexes owner-partitioned arrays
  // with it), so `--validate` paths run these before a parallel run.
  static LintReport LintShards(const ShardPlan& shards, const LintOptions& options = {});

 private:
  // Finding collector with the max_findings cap; defined in the .cc.
  struct Sink;

  // One static member per pass (members of GraphLint so the friend grants in
  // DependencyGraph / SimPlan cover them; friendship does not extend to
  // nested classes' members).
  static void PassEdgeIntegrity(const DependencyGraph& graph, Sink* sink);
  // Emits the first cycle found (with its path); `starved` receives the
  // number of tasks that can never become ready, 0 when acyclic.
  static void PassAcyclic(const DependencyGraph& graph, Sink* sink, int* starved);
  static void PassThreadSequence(const DependencyGraph& graph, Sink* sink);
  static void PassDurationSanity(const DependencyGraph& graph, Sink* sink);
  static void PassTimestampMonotone(const DependencyGraph& graph, Sink* sink);
  static void PassIterationAnchor(const DependencyGraph& graph, Sink* sink);
  static void PassScheduleSmell(const DependencyGraph& graph, int starved, Sink* sink);
  static void PassPlanStamp(const SimPlan& plan, const DependencyGraph& graph, Sink* sink,
                            bool* stale);
  static void PassPlanCsr(const SimPlan& plan, const DependencyGraph& graph, bool stale,
                          Sink* sink);
  static void PassPlanLane(const SimPlan& plan, const DependencyGraph& graph, bool stale,
                           Sink* sink);
  static void PassPlanTiming(const SimPlan& plan, const DependencyGraph& graph, bool stale,
                             Sink* sink);
  static void PassShardPartition(const ShardPlan& shards, Sink* sink, bool* broken);
  static void PassShardEdges(const ShardPlan& shards, bool broken, Sink* sink);
  static void PassShardHorizon(const ShardPlan& shards, bool broken, Sink* sink);
};

}  // namespace daydream

#endif  // SRC_CORE_GRAPH_LINT_H_

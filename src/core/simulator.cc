#include "src/core/simulator.h"

#include <algorithm>

#include "src/core/sim_plan.h"
#include "src/util/logging.h"

namespace daydream {

TimeNs SimResult::EndOf(TaskId id) const {
  DD_CHECK_GE(id, 0);
  DD_CHECK_LT(id, static_cast<TaskId>(end.size()));
  return end[static_cast<size_t>(id)];
}

std::map<ExecThread, TimeNs> SimResult::thread_busy() const {
  std::map<ExecThread, TimeNs> out;
  for (size_t lane = 0; lane < lane_threads.size(); ++lane) {
    if (lane_end[lane] >= 0) {
      out[lane_threads[lane]] = lane_busy[lane];
    }
  }
  return out;
}

std::map<ExecThread, TimeNs> SimResult::thread_end() const {
  std::map<ExecThread, TimeNs> out;
  for (size_t lane = 0; lane < lane_threads.size(); ++lane) {
    if (lane_end[lane] >= 0) {
      out[lane_threads[lane]] = lane_end[lane];
    }
  }
  return out;
}

TimeNs Scheduler::Context::FeasibleTime(TaskId id) const {
  const TimeNs lane_progress = (*progress)[static_cast<size_t>(graph->lane_of(id))];
  return std::max(lane_progress, (*earliest)[static_cast<size_t>(id)]);
}

bool Scheduler::TieBreakLess(const Task& a, const Task& b) const { return a.id < b.id; }

bool Scheduler::StaticPlanKey(const Task& task, uint32_t* key) const {
  (void)task;
  (void)key;
  return false;
}

namespace {

// Frontier scan using the scheduler's TieBreakLess order refined by task id —
// the exact order the event engine indexes by, so both engines pick the same
// task no matter which one runs.
size_t PickByOrder(const Scheduler& scheduler, const std::vector<TaskId>& frontier,
                   const Scheduler::Context& context) {
  DD_CHECK(!frontier.empty());
  size_t best = 0;
  TimeNs best_time = context.FeasibleTime(frontier[0]);
  for (size_t i = 1; i < frontier.size(); ++i) {
    const TimeNs t = context.FeasibleTime(frontier[i]);
    if (t > best_time) {
      continue;
    }
    const Task& candidate = context.graph->task(frontier[i]);
    const Task& current = context.graph->task(frontier[best]);
    if (t < best_time || scheduler.TieBreakLess(candidate, current) ||
        (!scheduler.TieBreakLess(current, candidate) && frontier[i] < frontier[best])) {
      best = i;
      best_time = t;
    }
  }
  return best;
}

// Order-preserving map from an int priority to a uint32 key that *descends*
// with the priority: higher priority -> smaller key.
uint32_t DescendingPriorityKey(int priority) {
  // Bias to unsigned (order-preserving), then flip for descending order.
  return ~(static_cast<uint32_t>(priority) ^ 0x80000000u);
}

}  // namespace

size_t EarliestStartScheduler::Pick(const std::vector<TaskId>& frontier,
                                    const Context& context) {
  return PickByOrder(*this, frontier, context);
}

bool EarliestStartScheduler::StaticPlanKey(const Task& task, uint32_t* key) const {
  (void)task;
  *key = 0;  // tie-break is pure task id, carried by the packed plan index
  return true;
}

size_t PriorityCommScheduler::Pick(const std::vector<TaskId>& frontier, const Context& context) {
  return PickByOrder(*this, frontier, context);
}

bool PriorityCommScheduler::TieBreakLess(const Task& a, const Task& b) const {
  const int pa = a.is_comm() ? a.priority : 0;
  const int pb = b.is_comm() ? b.priority : 0;
  if (pa != pb) {
    return pa > pb;
  }
  return a.id < b.id;
}

bool PriorityCommScheduler::StaticPlanKey(const Task& task, uint32_t* key) const {
  *key = DescendingPriorityKey(task.is_comm() ? task.priority : 0);
  return true;
}

Simulator::Simulator() : scheduler_(std::make_shared<EarliestStartScheduler>()) {}

Simulator::Simulator(std::shared_ptr<Scheduler> scheduler, EngineKind engine)
    : scheduler_(std::move(scheduler)), engine_(engine) {
  DD_CHECK(scheduler_ != nullptr);
}

SimResult Simulator::Run(const DependencyGraph& graph) const {
  if (engine_ == EngineKind::kEvent && scheduler_->comparator_based()) {
    return SimPlan::Compile(graph, *scheduler_).Run();
  }
  return RunReference(graph);
}

SimPlan Simulator::Compile(const DependencyGraph& graph, const SimPlan* donor) const {
  if (donor != nullptr && donor->CompatibleWith(graph)) {
    return SimPlan::Retime(*donor, graph, *scheduler_);
  }
  return SimPlan::Compile(graph, *scheduler_);
}

SimResult Simulator::RunReference(const DependencyGraph& graph) const {
  SimResult result;
  result.start.assign(static_cast<size_t>(graph.capacity()), -1);
  result.end.assign(static_cast<size_t>(graph.capacity()), -1);
  const size_t num_lanes = static_cast<size_t>(graph.num_lanes());
  result.lane_threads.reserve(num_lanes);
  for (int lane = 0; lane < graph.num_lanes(); ++lane) {
    result.lane_threads.push_back(graph.lane_thread(lane));
  }
  result.lane_busy.assign(num_lanes, 0);
  result.lane_end.assign(num_lanes, -1);

  std::vector<TimeNs> earliest(static_cast<size_t>(graph.capacity()), 0);
  std::vector<int> refs(static_cast<size_t>(graph.capacity()), 0);
  // Lane progress, flat-indexed by the graph's interned lane table.
  std::vector<TimeNs> progress(num_lanes, 0);
  std::vector<bool> dispatched_any(num_lanes, false);

  std::vector<TaskId> frontier;
  for (TaskId id : graph.AliveTasks()) {
    refs[static_cast<size_t>(id)] = static_cast<int>(graph.parents(id).size());
    if (refs[static_cast<size_t>(id)] == 0) {
      frontier.push_back(id);
    }
  }

  Scheduler::Context context;
  context.graph = &graph;
  context.progress = &progress;
  context.earliest = &earliest;

  while (!frontier.empty()) {
    const size_t pick = scheduler_->Pick(frontier, context);
    DD_CHECK_LT(pick, frontier.size());
    const TaskId id = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));

    const Task& task = graph.task(id);
    const size_t lane = static_cast<size_t>(graph.lane_of(id));
    const TimeNs start = std::max(progress[lane], earliest[static_cast<size_t>(id)]);
    result.start[static_cast<size_t>(id)] = start;
    const TimeNs end = start + task.duration;
    result.end[static_cast<size_t>(id)] = end;
    progress[lane] = end + task.gap;  // gap occupies the thread (Alg. 1 line 13)
    dispatched_any[lane] = true;
    result.lane_busy[lane] += task.duration;
    result.makespan = std::max(result.makespan, end);
    ++result.dispatched;

    for (TaskId child : graph.children(id)) {
      auto& e = earliest[static_cast<size_t>(child)];
      // Deviation from Algorithm 1 line 16: the trailing gap is CPU-thread-
      // local overhead, so it delays the same thread (via progress above) but
      // not cross-thread children (a kernel may start right when its launch
      // API returns).
      e = std::max(e, end);
      if (--refs[static_cast<size_t>(child)] == 0) {
        frontier.push_back(child);
      }
    }
  }

  for (size_t lane = 0; lane < num_lanes; ++lane) {
    if (dispatched_any[lane]) {
      result.lane_end[lane] = progress[lane];
    }
  }
  DD_CHECK_EQ(result.dispatched, graph.num_alive()) << "cycle or disconnected bookkeeping";
  return result;
}

}  // namespace daydream

#include "src/core/simulator.h"

#include <algorithm>

#include "src/core/event_engine.h"
#include "src/util/logging.h"

namespace daydream {

TimeNs SimResult::EndOf(TaskId id) const {
  DD_CHECK_GE(id, 0);
  DD_CHECK_LT(id, static_cast<TaskId>(end.size()));
  return end[static_cast<size_t>(id)];
}

TimeNs Scheduler::Context::FeasibleTime(TaskId id) const {
  const Task& task = graph->task(id);
  TimeNs thread_progress = 0;
  auto it = progress->find(task.thread);
  if (it != progress->end()) {
    thread_progress = it->second;
  }
  return std::max(thread_progress, (*earliest)[static_cast<size_t>(id)]);
}

bool Scheduler::TieBreakLess(const Task& a, const Task& b) const { return a.id < b.id; }

namespace {

// Frontier scan using the scheduler's TieBreakLess order refined by task id —
// the exact order the event engine indexes by, so both engines pick the same
// task no matter which one runs.
size_t PickByOrder(const Scheduler& scheduler, const std::vector<TaskId>& frontier,
                   const Scheduler::Context& context) {
  DD_CHECK(!frontier.empty());
  size_t best = 0;
  TimeNs best_time = context.FeasibleTime(frontier[0]);
  for (size_t i = 1; i < frontier.size(); ++i) {
    const TimeNs t = context.FeasibleTime(frontier[i]);
    if (t > best_time) {
      continue;
    }
    const Task& candidate = context.graph->task(frontier[i]);
    const Task& current = context.graph->task(frontier[best]);
    if (t < best_time || scheduler.TieBreakLess(candidate, current) ||
        (!scheduler.TieBreakLess(current, candidate) && frontier[i] < frontier[best])) {
      best = i;
      best_time = t;
    }
  }
  return best;
}

}  // namespace

size_t EarliestStartScheduler::Pick(const std::vector<TaskId>& frontier,
                                    const Context& context) {
  return PickByOrder(*this, frontier, context);
}

size_t PriorityCommScheduler::Pick(const std::vector<TaskId>& frontier, const Context& context) {
  return PickByOrder(*this, frontier, context);
}

bool PriorityCommScheduler::TieBreakLess(const Task& a, const Task& b) const {
  const int pa = a.is_comm() ? a.priority : 0;
  const int pb = b.is_comm() ? b.priority : 0;
  if (pa != pb) {
    return pa > pb;
  }
  return a.id < b.id;
}

Simulator::Simulator() : scheduler_(std::make_shared<EarliestStartScheduler>()) {}

Simulator::Simulator(std::shared_ptr<Scheduler> scheduler) : scheduler_(std::move(scheduler)) {
  DD_CHECK(scheduler_ != nullptr);
}

SimResult Simulator::Run(const DependencyGraph& graph) const {
  if (scheduler_->comparator_based()) {
    return RunEventEngine(graph, *scheduler_);
  }
  return RunReference(graph);
}

SimResult Simulator::RunReference(const DependencyGraph& graph) const {
  SimResult result;
  result.start.assign(static_cast<size_t>(graph.capacity()), -1);
  result.end.assign(static_cast<size_t>(graph.capacity()), -1);

  std::vector<TimeNs> earliest(static_cast<size_t>(graph.capacity()), 0);
  std::vector<int> refs(static_cast<size_t>(graph.capacity()), 0);
  std::map<ExecThread, TimeNs> progress;

  std::vector<TaskId> frontier;
  for (TaskId id : graph.AliveTasks()) {
    refs[static_cast<size_t>(id)] = static_cast<int>(graph.parents(id).size());
    if (refs[static_cast<size_t>(id)] == 0) {
      frontier.push_back(id);
    }
  }

  Scheduler::Context context;
  context.graph = &graph;
  context.progress = &progress;
  context.earliest = &earliest;

  while (!frontier.empty()) {
    const size_t pick = scheduler_->Pick(frontier, context);
    DD_CHECK_LT(pick, frontier.size());
    const TaskId id = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<ptrdiff_t>(pick));

    const Task& task = graph.task(id);
    const TimeNs start = std::max(progress[task.thread], earliest[static_cast<size_t>(id)]);
    result.start[static_cast<size_t>(id)] = start;
    const TimeNs end = start + task.duration;
    result.end[static_cast<size_t>(id)] = end;
    progress[task.thread] = end + task.gap;  // gap occupies the thread (Alg. 1 line 13)
    result.thread_busy[task.thread] += task.duration;
    result.makespan = std::max(result.makespan, end);
    ++result.dispatched;

    for (TaskId child : graph.children(id)) {
      auto& e = earliest[static_cast<size_t>(child)];
      // Deviation from Algorithm 1 line 16: the trailing gap is CPU-thread-
      // local overhead, so it delays the same thread (via progress above) but
      // not cross-thread children (a kernel may start right when its launch
      // API returns).
      e = std::max(e, end);
      if (--refs[static_cast<size_t>(child)] == 0) {
        frontier.push_back(child);
      }
    }
  }

  for (const auto& [thread, p] : progress) {
    result.thread_end[thread] = p;
  }
  DD_CHECK_EQ(result.dispatched, graph.num_alive()) << "cycle or disconnected bookkeeping";
  return result;
}

}  // namespace daydream

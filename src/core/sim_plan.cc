#include "src/core/sim_plan.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "src/util/logging.h"

namespace daydream {

int SimPlan::num_tasks() const {
  return structure_ == nullptr ? 0 : static_cast<int>(structure_->task_ids.size());
}

int SimPlan::num_lanes() const {
  return structure_ == nullptr ? 0 : static_cast<int>(structure_->lane_threads.size());
}

bool SimPlan::CompatibleWith(const DependencyGraph& graph) const {
  return structure_ != nullptr && structure_->graph_stamp == graph.structure_stamp() &&
         structure_->capacity == graph.capacity();
}

SimResult SimPlan::Run() const { return RunEventEngine(*this); }

void SimPlan::FillTimingAndKeys(const DependencyGraph& graph, const Scheduler& scheduler) {
  const Structure& s = *structure_;
  const size_t n = s.task_ids.size();
  duration_.resize(n);
  gap_.resize(n);
  order_key_.resize(n);

  bool static_keys = true;
  for (size_t i = 0; i < n; ++i) {
    const Task& task = graph.task(s.task_ids[i]);
    duration_[i] = task.duration;
    gap_[i] = task.gap;
    uint32_t key = 0;
    if (!scheduler.StaticPlanKey(task, &key)) {
      static_keys = false;
      break;
    }
    order_key_[i] = (static_cast<uint64_t>(key) << 32) | static_cast<uint32_t>(i);
  }
  if (static_keys) {
    return;
  }

  // Fallback for comparator-based schedulers without a static key: rank every
  // task with one TieBreakLess sort. Plan indices ascend with task id, so
  // refining the tie-break by plan index preserves the documented id order.
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const Task& ta = graph.task(s.task_ids[static_cast<size_t>(a)]);
    const Task& tb = graph.task(s.task_ids[static_cast<size_t>(b)]);
    if (scheduler.TieBreakLess(ta, tb)) {
      return true;
    }
    if (scheduler.TieBreakLess(tb, ta)) {
      return false;
    }
    return a < b;
  });
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t i = static_cast<size_t>(order[rank]);
    const Task& task = graph.task(s.task_ids[i]);
    duration_[i] = task.duration;
    gap_[i] = task.gap;
    order_key_[i] = (static_cast<uint64_t>(rank) << 32) | static_cast<uint32_t>(i);
  }
}

SimPlan SimPlan::Compile(const DependencyGraph& graph, const Scheduler& scheduler) {
  DD_CHECK(scheduler.comparator_based()) << "plan compilation needs a comparator-based scheduler";

  auto s = std::make_shared<Structure>();
  s->capacity = graph.capacity();
  s->graph_stamp = graph.structure_stamp();

  const int num_lanes = graph.num_lanes();
  s->lane_threads.reserve(static_cast<size_t>(num_lanes));
  for (int lane = 0; lane < num_lanes; ++lane) {
    s->lane_threads.push_back(graph.lane_thread(lane));
  }

  const size_t n = static_cast<size_t>(graph.num_alive());
  s->task_ids.reserve(n);
  // Dense plan index <- alive ids in ascending order; the reverse map is only
  // needed during compilation.
  std::vector<int32_t> plan_of(static_cast<size_t>(graph.capacity()), -1);
  for (TaskId id = 0; id < graph.capacity(); ++id) {
    if (graph.alive(id)) {
      plan_of[static_cast<size_t>(id)] = static_cast<int32_t>(s->task_ids.size());
      s->task_ids.push_back(id);
    }
  }
  DD_CHECK_EQ(s->task_ids.size(), n);

  s->lane.resize(n);
  s->pred_count.resize(n);
  s->succ_offset.assign(n + 1, 0);
  s->lane_offset.assign(static_cast<size_t>(num_lanes) + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    const TaskId id = s->task_ids[i];
    s->lane[i] = static_cast<int32_t>(graph.lane_of(id));
    s->pred_count[i] = static_cast<int32_t>(graph.parents(id).size());
    s->succ_offset[i + 1] = static_cast<int32_t>(graph.children(id).size());
    ++s->lane_offset[static_cast<size_t>(s->lane[i]) + 1];
    if (s->pred_count[i] == 0) {
      s->initial_ready.push_back(static_cast<int32_t>(i));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    s->succ_offset[i + 1] += s->succ_offset[i];
  }
  for (int lane = 0; lane < num_lanes; ++lane) {
    s->lane_offset[static_cast<size_t>(lane) + 1] +=
        s->lane_offset[static_cast<size_t>(lane)];
  }

  s->succ.resize(static_cast<size_t>(s->succ_offset[n]));
  std::vector<int32_t> lane_cursor(s->lane_offset.begin(), s->lane_offset.end() - 1);
  s->lane_tasks.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const TaskId id = s->task_ids[i];
    int32_t cursor = s->succ_offset[i];
    for (TaskId child : graph.children(id)) {
      const int32_t child_index = plan_of[static_cast<size_t>(child)];
      DD_CHECK_GE(child_index, 0) << "edge to dead task " << child;
      s->succ[static_cast<size_t>(cursor++)] = child_index;
    }
    s->lane_tasks[static_cast<size_t>(lane_cursor[static_cast<size_t>(s->lane[i])]++)] =
        static_cast<int32_t>(i);
  }

  SimPlan plan;
  plan.structure_ = std::move(s);
  plan.FillTimingAndKeys(graph, scheduler);
  return plan;
}

SimPlan SimPlan::Retime(const SimPlan& donor, const DependencyGraph& graph,
                        const Scheduler& scheduler) {
  DD_CHECK(!donor.empty()) << "retime needs a compiled donor plan";
  DD_CHECK(scheduler.comparator_based()) << "plan compilation needs a comparator-based scheduler";
  DD_CHECK(donor.CompatibleWith(graph))
      << "retime requires a graph structurally unchanged since the donor was compiled "
      << "(stamp " << graph.structure_stamp() << " vs " << donor.structure_->graph_stamp << ")";
  DD_CHECK_EQ(static_cast<int>(donor.structure_->task_ids.size()), graph.num_alive());
  // Reassigning task.thread through the mutable accessor is unsupported (it
  // would desync the graph's intrusive lane sequences, not just this plan)
  // and does not bump the structure stamp — cheap insurance that the frozen
  // lane table still matches before the timings are trusted.
  for (size_t i = 0; i < donor.structure_->task_ids.size(); ++i) {
    DD_CHECK_EQ(graph.lane_of(donor.structure_->task_ids[i]),
                static_cast<int>(donor.structure_->lane[i]))
        << "task " << donor.structure_->task_ids[i] << " changed lanes since the donor compile";
  }

  SimPlan plan;
  plan.structure_ = donor.structure_;  // shared, immutable
  plan.FillTimingAndKeys(graph, scheduler);
  return plan;
}

}  // namespace daydream
